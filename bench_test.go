package vmdg

import (
	"runtime"
	"testing"

	"vmdg/internal/bench/nbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/boinc"
	"vmdg/internal/core"
	"vmdg/internal/cost"
	"vmdg/internal/engine"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// benchCfg runs the figures at full (paper) workload sizes with one
// repetition per point; determinism makes more repetitions redundant
// inside a testing.B loop.
func benchCfg() core.Config { return core.Config{Seed: 1, Reps: 1, Quick: false} }

// benchFigure runs one figure generator per iteration and reports the
// headline values as custom metrics.
func benchFigure(b *testing.B, fn func(core.Config) (*core.Result, error), metrics []string) {
	b.Helper()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fn(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		b.ReportMetric(res.Values[m], m)
	}
}

// BenchmarkFigure1 regenerates Figure 1 (7z guest slowdown). Paper:
// vmplayer 1.15×, virtualbox 1.20×, virtualpc 1.36×, qemu ≈2.1×.
func BenchmarkFigure1(b *testing.B) {
	benchFigure(b, core.Figure1, []string{"vmplayer", "virtualbox", "virtualpc", "qemu"})
}

// BenchmarkFigure2 regenerates Figure 2 (Matrix guest slowdown). Paper:
// all < 1.2× except qemu 1.30×.
func BenchmarkFigure2(b *testing.B) {
	benchFigure(b, core.Figure2, []string{"vmplayer", "virtualbox", "virtualpc", "qemu"})
}

// BenchmarkFigure3 regenerates Figure 3 (IOBench guest slowdown). Paper:
// vmplayer 1.3×, virtualbox ≈2×, virtualpc ≈2×, qemu ≈4.9×.
func BenchmarkFigure3(b *testing.B) {
	benchFigure(b, core.Figure3, []string{"vmplayer", "virtualbox", "virtualpc", "qemu"})
}

// BenchmarkFigure4 regenerates Figure 4 (NetBench Mbps). Paper: native
// 97.60, vmplayer 96.02 bridged / 3.68 NAT, qemu 65.91, virtualpc 35.56,
// virtualbox ≈1.3.
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, core.Figure4, []string{"native", "vmplayer", "vmplayer-nat", "qemu", "virtualpc", "virtualbox"})
}

// BenchmarkFigure5 regenerates Figure 5 (host MEM-index overhead).
// Paper: worst case < 5%.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, core.Figure5, []string{"vmplayer", "qemu", "virtualbox", "virtualpc"})
}

// BenchmarkFigure6 regenerates Figure 6 (host INT-index overhead).
// Paper: ≈2% across environments.
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, core.Figure6, []string{"vmplayer", "qemu", "virtualbox", "virtualpc"})
}

// BenchmarkFigureFP regenerates the FP-index companion the paper
// describes but omits ("practically no overhead").
func BenchmarkFigureFP(b *testing.B) {
	benchFigure(b, core.FigureFP, []string{"vmplayer", "qemu", "virtualbox", "virtualpc"})
}

// BenchmarkFigure7 regenerates Figure 7 (% CPU available to host 7z).
// Paper: no-vm 100/180; vmplayer 120 for two threads; others ≈160.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, core.Figure7, []string{"no-vm/2t", "vmplayer/2t", "qemu/2t", "virtualbox/2t", "virtualpc/2t"})
}

// BenchmarkFigure8 regenerates Figure 8 (host 7z MIPS ratio). Paper:
// vmplayer ≈0.70, others ≈0.90 for two threads.
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, core.Figure8, []string{"vmplayer/2t", "qemu/2t", "virtualbox/2t", "virtualpc/2t"})
}

// BenchmarkAblationTimesync measures the guest-clock error and its UDP
// correction (the §2 methodology ablation).
func BenchmarkAblationTimesync(b *testing.B) {
	var res *core.TimesyncResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.TimesyncAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GuestErr, "guest-err")
	b.ReportMetric(res.CorrectedErr, "corrected-err")
}

// BenchmarkAblationCheckpoint measures checkpoint/migration round trips.
func BenchmarkAblationCheckpoint(b *testing.B) {
	var res *core.MigrationResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.MigrationAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CheckpointBytes), "ckpt-bytes")
}

// ---- substrate micro-benchmarks (real CPU cost of the machinery) ----

// BenchmarkSimEventThroughput measures raw event-loop throughput.
func BenchmarkSimEventThroughput(b *testing.B) {
	s := sim.New()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			s.After(sim.Microsecond, "tick", next)
		}
	}
	b.ResetTimer()
	s.After(0, "start", next)
	s.Run()
}

// BenchmarkScheduler measures the host scheduler under a contended
// round-robin load.
func BenchmarkScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m, err := hw.NewMachine(s, hw.Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		o := hostos.Boot(m)
		p := o.NewProcess("load")
		for t := 0; t < 6; t++ {
			prog := &cost.Profile{Name: "w", Steps: []cost.Step{
				{Kind: cost.StepCompute, Cycles: 2.4e8, Mix: cost.Mix{Int: 0.6, Mem: 0.4}},
			}}
			o.Spawn(p, "w", hostos.PrioNormal, prog.Iter())
		}
		s.Run()
	}
}

// Benchmark7zCompress measures the real codec (capture-path cost).
func Benchmark7zCompress(b *testing.B) {
	src := sevenz.GenInput(1, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sevenz.Compress(src)
	}
}

// BenchmarkEinsteinChunk measures the real FFT worker chunk.
func BenchmarkEinsteinChunk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		boinc.EinsteinChunk(uint64(i))
	}
}

// BenchmarkNBenchSuite measures one pass of all ten real kernels.
func BenchmarkNBenchSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for k := nbench.NumericSort; k <= nbench.LUDecomp; k++ {
			if res := nbench.RunKernel(k, uint64(i)); !res.Check {
				b.Fatalf("%v failed", k)
			}
		}
	}
}

// ---- sensitivity ablations for the calibrated design choices ----

// BenchmarkAblationBusContention sweeps the shared-bus factor behind the
// 180% two-thread ceiling (DESIGN.md §5).
func BenchmarkAblationBusContention(b *testing.B) {
	ks := []float64{0, 0.225, 0.45, 0.675, 0.9}
	var ys []float64
	for i := 0; i < b.N; i++ {
		series, err := core.BusContentionSweep(benchCfg(), ks)
		if err != nil {
			b.Fatal(err)
		}
		ys = series.Lines["no-vm/2t"]
	}
	b.ReportMetric(ys[2], "pct-at-calibrated-K")
}

// BenchmarkAblationServiceDuty sweeps the VMM host-service duty that
// separates VmPlayer's intrusiveness from the others'.
func BenchmarkAblationServiceDuty(b *testing.B) {
	duties := []float64{0.15, 0.30, 0.45, 0.60, 0.68}
	var ys []float64
	for i := 0; i < b.N; i++ {
		series, err := core.ServiceDutySweep(benchCfg(), duties)
		if err != nil {
			b.Fatal(err)
		}
		ys = series.Lines["7z/2t"]
	}
	b.ReportMetric(ys[0], "pct-at-low-duty")
	b.ReportMetric(ys[len(ys)-1], "pct-at-vmplayer-duty")
}

// BenchmarkAblationNATQueue compares the shared NAT proxy queue against
// split per-direction queues with identical per-frame costs.
func BenchmarkAblationNATQueue(b *testing.B) {
	var shared, split float64
	var err error
	for i := 0; i < b.N; i++ {
		shared, split, err = core.NATQueueAblation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(shared, "shared-Mbps")
	b.ReportMetric(split, "split-Mbps")
}

// BenchmarkMultiVM measures the one-instance-per-core scaling of Csaba et
// al.'s multi-VM deployment (§5).
func BenchmarkMultiVM(b *testing.B) {
	var res *core.MultiVMResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.MultiVMExperiment(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Scaling, "scaling-x")
}

// BenchmarkAblationUDPLoss runs the iperf -u extension: a paced 10 Mbps
// UDP flood through bridged and NAT paths, measuring delivery and loss.
func BenchmarkAblationUDPLoss(b *testing.B) {
	var results []core.UDPLossResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = core.UDPLossExperiment(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.DeliveredMbps, r.Env+"-Mbps")
	}
}

// ---- experiment engine (internal/engine) ----

// engineFigures runs every figure experiment through the engine with the
// given worker count and a fresh cache, reporting shard throughput.
func engineFigures(b *testing.B, workers int) {
	b.Helper()
	cfg := core.Config{Seed: 1, Reps: 2, Quick: true}
	exps := engine.Default.ByKind(engine.KindFigure)
	for i := 0; i < b.N; i++ {
		r := engine.Runner{Workers: workers, Cache: engine.NewMemCache()}
		if _, _, err := r.Run(cfg, exps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(engine.TotalShards(cfg, exps)), "shards")
}

// BenchmarkEngineFiguresSerial measures the figure set on one worker —
// the baseline for the parallel speedup.
func BenchmarkEngineFiguresSerial(b *testing.B) { engineFigures(b, 1) }

// BenchmarkEngineFiguresParallel measures the same set with one worker
// per core; the ratio to the serial benchmark is the engine's speedup on
// this host.
func BenchmarkEngineFiguresParallel(b *testing.B) { engineFigures(b, runtime.NumCPU()) }

// BenchmarkEngineFiguresCached measures a warm-cache pass: every shard
// is served from the cache and only the merges run.
func BenchmarkEngineFiguresCached(b *testing.B) {
	cfg := core.Config{Seed: 1, Reps: 2, Quick: true}
	exps := engine.Default.ByKind(engine.KindFigure)
	r := engine.Runner{Workers: runtime.NumCPU(), Cache: engine.NewMemCache()}
	if _, _, err := r.Run(cfg, exps); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Run(cfg, exps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationConfinement measures the affinity negative result:
// aggregate availability is invariant to pinning the VM to one core.
func BenchmarkAblationConfinement(b *testing.B) {
	var res *core.ConfinementResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.ConfinementExperiment(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UnpinnedPct, "unpinned-pct")
	b.ReportMetric(res.PinnedPct, "pinned-pct")
}
