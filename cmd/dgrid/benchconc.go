package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// The -concurrent mode measures the engine as a multi-tenant service:
// N sweeps run at once through one shared worker pool, one shard
// cache, and one single-flight group — the serve-daemon shape — and
// the artifact records how much of the fleet's work collapsed. Runs
// alternate between two overlapping sweep specs (a policy sweep and a
// churn sweep over the same fleet, sharing their deadline/no-churn
// point), so the measurement exercises both full overlap (identical
// runs) and partial overlap (the shared point), exactly the tenant mix
// the single-flight group exists for.

// concurrentResult is the artifact's "concurrent" object.
type concurrentResult struct {
	Runs         int `json:"runs"`
	Machines     int `json:"machines"`
	PointsPerRun int `json:"points_per_run"`
	ShardsPerRun int `json:"shards_per_run"`
	// UniqueShards is the cross-run union of cache keys: the simulation
	// work N perfectly-deduplicated runs would cost. ComputedShards is
	// what this measurement actually computed (Σ misses); the
	// single-flight invariant makes them equal.
	UniqueShards   int `json:"unique_shards"`
	ComputedShards int `json:"computed_shards"`
	FlightHits     int `json:"flight_hits"`
	FlightShared   int `json:"flight_shared"`
	PoolWorkers    int `json:"pool_workers"`

	ColdElapsedSec       float64 `json:"cold_elapsed_sec"`
	AggregateHostsPerSec float64 `json:"aggregate_hosts_per_sec"`
	// Warm replay latency per run, p50 over the runs: once with the
	// in-memory payload tier serving (the tier the cold phase filled),
	// once through a fresh FileCache handle with no tier (every payload
	// read from disk).
	WarmMemP50Ms  float64 `json:"warm_mem_p50_ms"`
	WarmDiskP50Ms float64 `json:"warm_disk_p50_ms"`

	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	RSSReset     bool  `json:"rss_reset"`
}

// concurrentSpecs builds the two overlapping sweeps the runs alternate
// between: A sweeps policy (fifo, deadline), B sweeps churn on the
// deadline policy. The deadline/no-churn point appears in both, so
// distinct-spec runs share exactly one point's shards while same-spec
// runs share everything. The replication policy is deliberately
// absent: at full 480-minute scale one of its shards costs two orders
// of magnitude more than a fifo/deadline one, which would turn the
// dedup measurement into a replication-policy benchmark.
func concurrentSpecs(machines, minutes int) (a, b grid.Spec) {
	base := grid.Spec{
		Version:  1,
		Envs:     []string{"vmplayer"},
		Machines: []int{machines},
		Minutes:  []int{minutes},
	}
	a, b = base, base
	a.Name, a.Policy = "concA", []string{"fifo", "deadline"}
	b.Name, b.Policy, b.Churn = "concB", []string{"deadline"}, []bool{false, true}
	return a, b
}

// concurrentPoolWorkers sizes the shared pool: at least one worker per
// run (so tenants overlap in time even on a single-core container —
// a pool smaller than the run count serializes the runs and the
// measurement would never exercise the single-flight path), and never
// below GOMAXPROCS.
func concurrentPoolWorkers(runs int) int {
	w := runtime.GOMAXPROCS(0)
	if runs > w {
		w = runs
	}
	if w < 2 {
		w = 2
	}
	return w
}

// benchConcurrent runs the three-phase concurrency measurement: a cold
// barrier-started burst of N overlapping sweeps, then warm replays
// through the memory tier, then warm replays from disk only.
func benchConcurrent(runs, machines, minutes int, cfg core.Config) (*concurrentResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("bench: -concurrent wants at least 1 run, got %d", runs)
	}
	specA, specB := concurrentSpecs(machines, minutes)
	expA, err := engine.NewSweep("concA", "concurrent bench sweep A", specA)
	if err != nil {
		return nil, err
	}
	expB, err := engine.NewSweep("concB", "concurrent bench sweep B", specB)
	if err != nil {
		return nil, err
	}
	exps := make([]engine.Experiment, runs)
	for i := range exps {
		if i%2 == 0 {
			exps[i] = expA
		} else {
			exps[i] = expB
		}
	}

	// The union of cache keys across the runs: each spec has 2 points of
	// S shards; distinct specs share the deadline point, so two specs
	// cover 3 points. One run (or one spec) covers its own 2.
	scn := grid.Scenario{Machines: machines, Minutes: minutes,
		Policy: "fifo", Envs: specA.Envs, Quick: cfg.Quick}
	pointShards := scn.Normalize().Shards()
	shardsPerRun := expA.Shards(cfg)
	unique := 2 * pointShards
	if runs > 1 {
		unique = 3 * pointShards
	}

	dir, err := os.MkdirTemp("", "dgrid-bench-conc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fc, err := engine.NewFileCache(dir)
	if err != nil {
		return nil, err
	}
	fc.EnableMemTier(engine.DefaultMemTierBytes)
	pool := engine.NewPool(concurrentPoolWorkers(runs))
	defer pool.Close()
	reset := resetPeakRSS()

	// Phase 1 — cold burst: every run released at once, one shared pool
	// and flight group between them.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stats    []engine.Stats
		start    = make(chan struct{})
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(exp engine.Experiment) {
			defer wg.Done()
			r := engine.Runner{Pool: pool, Cache: fc}
			<-start
			_, st, err := r.Run(cfg, []engine.Experiment{exp})
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			stats = append(stats, st)
		}(exps[i])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	cold := time.Since(t0)
	if firstErr != nil {
		return nil, firstErr
	}

	res := &concurrentResult{
		Runs:           runs,
		Machines:       machines,
		PointsPerRun:   shardsPerRun / pointShards,
		ShardsPerRun:   shardsPerRun,
		UniqueShards:   unique,
		PoolWorkers:    pool.Workers(),
		ColdElapsedSec: cold.Seconds(),
		RSSReset:       reset,
	}
	hostsPerRun := machines * res.PointsPerRun
	res.AggregateHostsPerSec = float64(runs*hostsPerRun) / cold.Seconds()
	for _, st := range stats {
		res.ComputedShards += st.Misses
		res.FlightHits += st.FlightHits
		res.FlightShared += st.FlightShared
	}

	// Phase 2 — warm replays through the memory tier the cold burst
	// filled. Phase 3 — the same replays through a fresh handle with no
	// tier, so every payload is a file read. Both replay serially: the
	// p50 is a per-run latency, not another throughput burst.
	res.WarmMemP50Ms, err = replayP50(exps, cfg, fc)
	if err != nil {
		return nil, err
	}
	diskOnly, err := engine.NewFileCache(dir)
	if err != nil {
		return nil, err
	}
	res.WarmDiskP50Ms, err = replayP50(exps, cfg, diskOnly)
	if err != nil {
		return nil, err
	}
	res.PeakRSSBytes = peakRSS()

	fmt.Fprintf(os.Stderr,
		"dgrid: bench concurrent %d runs × %d hosts: %.2fs cold — %.0f hosts/s aggregate, %d/%d shards computed, %d flight hits; warm p50 %.1fms mem vs %.1fms disk\n",
		runs, hostsPerRun, res.ColdElapsedSec, res.AggregateHostsPerSec,
		res.ComputedShards, runs*shardsPerRun, res.FlightHits,
		res.WarmMemP50Ms, res.WarmDiskP50Ms)
	return res, nil
}

// replayP50 re-runs every sweep serially against cache and reports the
// median wall time in milliseconds.
func replayP50(exps []engine.Experiment, cfg core.Config, cache engine.Cache) (float64, error) {
	times := make([]time.Duration, 0, len(exps))
	for _, exp := range exps {
		r := engine.Runner{Workers: 1, Cache: cache}
		t0 := time.Now()
		if _, _, err := r.Run(cfg, []engine.Experiment{exp}); err != nil {
			return 0, err
		}
		times = append(times, time.Since(t0))
	}
	return float64(medianDuration(times)) / float64(time.Millisecond), nil
}

// medianDuration is the p50 of the samples (the mean of the middle two
// for even counts).
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}
