package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// preRefactorHostsPerSec is the measured throughput of the fleet
// pipeline before the aggregate-sampling / streaming-merge / pooled-
// event refactor: `dgrid fleet -machines 10000 -minutes 480 -cache off`
// (four environments, fifo, churn off, seed 1) completed in 16.8 s on
// the single-core reference container — 597 machines/second. The bench
// artifact reports every run's speedup against this fixed baseline so
// the performance trajectory stays visible in one number.
const preRefactorHostsPerSec = 597.0

// benchResult is the BENCH_fleet.json schema.
type benchResult struct {
	// Scenario identification.
	Machines int      `json:"machines"`
	Minutes  int      `json:"minutes"`
	Seed     uint64   `json:"seed"`
	Envs     []string `json:"envs"`
	Policy   string   `json:"policy"`
	Churn    bool     `json:"churn"`
	Shards   int      `json:"shards"`

	// Environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`

	// Measurements.
	ElapsedSec     float64 `json:"elapsed_sec"`
	HostsPerSec    float64 `json:"hosts_per_sec"`
	HostEnvsPerSec float64 `json:"host_envs_per_sec"`
	EventsFired    uint64  `json:"events_fired"`
	EventsPerSec   float64 `json:"events_per_sec"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`

	// Trajectory.
	BaselineHostsPerSec float64 `json:"baseline_hosts_per_sec"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline"`
}

// cmdBench runs the fleet pipeline end to end — shard simulation,
// worker pool, streaming merge — with the cache disabled, and writes a
// machine-readable benchmark artifact. The defaults are the
// million-host acceptance scenario; CI runs a reduced -machines.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dgrid bench", flag.ExitOnError)
	machines := fs.Int("machines", 1_000_000, "volunteer machines in the benchmark fleet")
	minutes := fs.Int("minutes", 480, "virtual minutes to simulate")
	seed := fs.Uint64("seed", 1, "simulation seed")
	env := fs.String("env", "", "single VM environment (default: the paper's four)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	out := fs.String("out", "BENCH_fleet.json", "benchmark artifact path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (bench takes flags only)", fs.Args())
	}
	if err := validateFleetFlags(*machines, *minutes, 1, "fifo"); err != nil {
		return err
	}

	scn := grid.Scenario{Machines: *machines, Minutes: *minutes}
	if *env != "" {
		scn.Envs = []string{*env}
	}
	scn = scn.Normalize()
	if err := scn.Validate(); err != nil {
		return err
	}

	// No cache: the benchmark must measure compute, not replay. The
	// calibration micro-sims stay inside the measured window — the
	// pre-refactor baseline paid for them too, so the speedup compares
	// like with like.
	runner := &engine.Runner{Workers: *workers}
	runner.OnEvent = progressLine("bench")
	cfg := core.Config{Seed: *seed}
	exp := engine.FleetScenario("fleet", "benchmark fleet scenario", scn)

	start := time.Now()
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fired, err := eventsFired(outcomes[0].Raw)
	if err != nil {
		return err
	}
	res := benchResult{
		Machines: scn.Machines,
		Minutes:  scn.Minutes,
		Seed:     *seed,
		Envs:     scn.Envs,
		Policy:   scn.Policy,
		Churn:    scn.Churn,
		Shards:   stats.Shards,

		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,

		ElapsedSec:     elapsed.Seconds(),
		HostsPerSec:    float64(scn.Machines) / elapsed.Seconds(),
		HostEnvsPerSec: float64(scn.Machines*len(scn.Envs)) / elapsed.Seconds(),
		EventsFired:    fired,
		EventsPerSec:   float64(fired) / elapsed.Seconds(),
		PeakRSSBytes:   peakRSS(),

		BaselineHostsPerSec: preRefactorHostsPerSec,
	}
	res.SpeedupVsBaseline = res.HostsPerSec / res.BaselineHostsPerSec

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"dgrid: bench %d hosts × %d min in %.2fs — %.0f hosts/s (%.1f× baseline), %d events, peak RSS %.0f MiB\n",
		scn.Machines, scn.Minutes, res.ElapsedSec, res.HostsPerSec, res.SpeedupVsBaseline,
		res.EventsFired, float64(res.PeakRSSBytes)/(1<<20))
	return nil
}

// eventsFired sums the determinism probe over every environment of the
// merged fleet payload.
func eventsFired(raw json.RawMessage) (uint64, error) {
	var payload struct {
		Variants []struct {
			Fleet struct {
				Envs []struct {
					Fired uint64
				}
			}
		}
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		return 0, fmt.Errorf("bench: parsing fleet payload: %w", err)
	}
	var fired uint64
	for _, v := range payload.Variants {
		for _, e := range v.Fleet.Envs {
			fired += e.Fired
		}
	}
	return fired, nil
}

// peakRSS reports the process's peak resident set in bytes: VmHWM on
// Linux, and the Go runtime's OS-memory estimate elsewhere (an
// overestimate of instantaneous RSS but a usable bound).
func peakRSS() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}
