package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
	"vmdg/internal/loadgen"
)

// preRefactorHostsPerSec is the measured throughput of the fleet
// pipeline before the aggregate-sampling / streaming-merge / pooled-
// event refactor: `dgrid fleet -machines 10000 -minutes 480 -cache off`
// (four environments, fifo, churn off, seed 1) completed in 16.8 s on
// the single-core reference container — 597 machines/second. The bench
// artifact reports every run's speedup against this fixed baseline so
// the performance trajectory stays visible in one number.
const preRefactorHostsPerSec = 597.0

// benchResult is the BENCH_fleet.json schema.
type benchResult struct {
	// Scenario identification.
	Machines int      `json:"machines"`
	Minutes  int      `json:"minutes"`
	Seed     uint64   `json:"seed"`
	Envs     []string `json:"envs"`
	Policy   string   `json:"policy"`
	Churn    bool     `json:"churn"`
	Shards   int      `json:"shards"`

	// Environment. Workers is the resolved pool size of the headline
	// run (never the literal 0 of an unset -workers flag); GOMAXPROCS
	// is read at measurement time.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`

	// Measurements.
	ElapsedSec     float64 `json:"elapsed_sec"`
	HostsPerSec    float64 `json:"hosts_per_sec"`
	HostEnvsPerSec float64 `json:"host_envs_per_sec"`
	EventsFired    uint64  `json:"events_fired"`
	EventsPerSec   float64 `json:"events_per_sec"`
	PeakRSSBytes   int64   `json:"peak_rss_bytes"`

	// Trajectory.
	BaselineHostsPerSec float64 `json:"baseline_hosts_per_sec"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline"`

	// Sweep holds the -sweep mode's per-worker-count measurements.
	Sweep []sweepPoint `json:"sweep,omitempty"`

	// Concurrent holds the -concurrent mode's multi-run measurement:
	// N overlapping sweeps through one shared pool, flight group, and
	// two-tier cache (see benchconc.go).
	Concurrent *concurrentResult `json:"concurrent,omitempty"`

	// Serve holds the served-sweep load measurement `dgrid loadtest
	// -out` merges in: latency percentiles per outcome class under a
	// concurrent client fleet, plus the accounting cross-check verdict
	// (see internal/loadgen). cmdBench carries it over when rewriting
	// the artifact, so re-benching the kernel never drops the serve
	// evidence.
	Serve *loadgen.Report `json:"serve,omitempty"`
}

// sweepPoint is one -sweep measurement: the same scenario run at one
// worker count. PerCoreEfficiency is the speedup over the sweep's
// single-worker point divided by the worker count — 1.0 means perfect
// scaling, and on a single-core container every multi-worker point
// honestly reports ~1/workers. RSSReset records whether the kernel
// peak-RSS counter was reset before the run; when false the point's
// PeakRSSBytes is a high-water mark over every run so far, not this
// run alone.
type sweepPoint struct {
	Workers           int     `json:"workers"`
	ElapsedSec        float64 `json:"elapsed_sec"`
	HostsPerSec       float64 `json:"hosts_per_sec"`
	PerCoreEfficiency float64 `json:"per_core_efficiency"`
	PeakRSSBytes      int64   `json:"peak_rss_bytes"`
	RSSReset          bool    `json:"rss_reset"`
}

// cmdBench runs the fleet pipeline end to end — shard simulation,
// worker pool, streaming merge — with the cache disabled, and writes a
// machine-readable benchmark artifact. The defaults are the
// million-host acceptance scenario; CI runs a reduced -machines.
//
// Two extra modes ride on the same measurement loop: -sweep re-runs
// the scenario at a list of worker counts and appends the per-count
// points to the artifact, and -check measures a reduced fleet and
// fails (non-zero exit) when its hosts/s regresses more than
// -tolerance below the committed artifact's — the CI performance gate.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("dgrid bench", flag.ExitOnError)
	machines := fs.Int("machines", 1_000_000, "volunteer machines in the benchmark fleet")
	minutes := fs.Int("minutes", 480, "virtual minutes to simulate")
	seed := fs.Uint64("seed", 1, "simulation seed")
	env := fs.String("env", "", "single VM environment (default: the paper's four)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	quick := fs.Bool("quick", false, "trim calibration windows (integration tests)")
	out := fs.String("out", "BENCH_fleet.json", "benchmark artifact path ('-' for stdout)")
	sweep := fs.String("sweep", "", "comma-separated worker counts to sweep (e.g. 1,4,8)")
	concurrent := fs.Int("concurrent", 0, "also measure N concurrent overlapping sweeps on one shared pool (0 = off)")
	concMachines := fs.Int("concurrent-machines", 20_000, "fleet size per sweep point in the -concurrent measurement")
	check := fs.Bool("check", false, "measure and fail on regression against -baseline instead of writing an artifact")
	baselinePath := fs.String("baseline", "BENCH_fleet.json", "committed artifact -check compares against")
	tolerance := fs.Float64("tolerance", 0.10, "fractional hosts/s regression -check tolerates")
	checkMachines := fs.Int("check-machines", 100_000, "fleet size for the -check measurement")
	slowdown := fs.Float64("slowdown", 1.0, "multiply measured elapsed time (gate tests only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (bench takes flags only)", fs.Args())
	}
	if *check {
		*machines = *checkMachines
	}
	if err := validateFleetFlags(*machines, *minutes, 1, "fifo"); err != nil {
		return err
	}

	scn := grid.Scenario{Machines: *machines, Minutes: *minutes, Quick: *quick}
	if *env != "" {
		scn.Envs = []string{*env}
	}
	scn = scn.Normalize()
	if err := scn.Validate(); err != nil {
		return err
	}
	cfg := core.Config{Seed: *seed, Quick: *quick}

	if *check {
		return benchCheck(scn, cfg, *workers, *baselinePath, *tolerance, *slowdown)
	}

	m, err := benchMeasure(scn, cfg, *workers)
	if err != nil {
		return err
	}
	elapsed := m.elapsed.Seconds() * *slowdown
	res := benchResult{
		Machines: scn.Machines,
		Minutes:  scn.Minutes,
		Seed:     *seed,
		Envs:     scn.Envs,
		Policy:   scn.Policy,
		Churn:    scn.Churn,
		Shards:   m.shards,

		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    m.workers,

		ElapsedSec:     elapsed,
		HostsPerSec:    float64(scn.Machines) / elapsed,
		HostEnvsPerSec: float64(scn.Machines*len(scn.Envs)) / elapsed,
		EventsFired:    m.fired,
		EventsPerSec:   float64(m.fired) / elapsed,
		PeakRSSBytes:   m.rss,

		BaselineHostsPerSec: preRefactorHostsPerSec,
	}
	res.SpeedupVsBaseline = res.HostsPerSec / res.BaselineHostsPerSec

	if *sweep != "" {
		counts, err := parseSweepCounts(*sweep)
		if err != nil {
			return err
		}
		res.Sweep, err = benchSweep(scn, cfg, counts)
		if err != nil {
			return err
		}
	}

	if *concurrent > 0 {
		res.Concurrent, err = benchConcurrent(*concurrent, *concMachines, *minutes, cfg)
		if err != nil {
			return err
		}
	}

	// A kernel re-bench must not drop the loadtest's serve section;
	// carry it over from the artifact being rewritten.
	if *out != "-" {
		if prev, err := readBenchBaseline(*out); err == nil {
			res.Serve = prev.Serve
		}
	}

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"dgrid: bench %d hosts × %d min in %.2fs — %.0f hosts/s (%.1f× baseline), %d workers, %d events, peak RSS %.0f MiB\n",
		scn.Machines, scn.Minutes, res.ElapsedSec, res.HostsPerSec, res.SpeedupVsBaseline,
		res.Workers, res.EventsFired, float64(res.PeakRSSBytes)/(1<<20))
	return nil
}

// measurement is one timed fleet run.
type measurement struct {
	workers  int // resolved pool size
	elapsed  time.Duration
	fired    uint64
	shards   int
	rss      int64
	rssReset bool
}

// benchMeasure runs the scenario once at the given worker count with
// the cache disabled — the benchmark must measure compute, not replay.
// The calibration micro-sims stay inside the measured window; the
// pre-refactor baseline paid for them too, so speedups compare like
// with like.
func benchMeasure(scn grid.Scenario, cfg core.Config, workers int) (*measurement, error) {
	reset := resetPeakRSS()
	runner := &engine.Runner{Workers: workers}
	runner.OnEvent = progressLine("bench")
	exp := engine.FleetScenario("fleet", "benchmark fleet scenario", scn)

	start := time.Now()
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	fired, err := eventsFired(outcomes[0].Raw)
	if err != nil {
		return nil, err
	}
	return &measurement{
		workers:  runner.ResolvedWorkers(),
		elapsed:  elapsed,
		fired:    fired,
		shards:   stats.Shards,
		rss:      peakRSS(),
		rssReset: reset,
	}, nil
}

// benchSweep measures the scenario once per worker count and derives
// per-core efficiency against the sweep's own single-worker point (or,
// when 1 is not in the list, its first point normalized per worker).
func benchSweep(scn grid.Scenario, cfg core.Config, counts []int) ([]sweepPoint, error) {
	points := make([]sweepPoint, 0, len(counts))
	for _, w := range counts {
		m, err := benchMeasure(scn, cfg, w)
		if err != nil {
			return nil, err
		}
		hps := float64(scn.Machines) / m.elapsed.Seconds()
		points = append(points, sweepPoint{
			Workers:      m.workers,
			ElapsedSec:   m.elapsed.Seconds(),
			HostsPerSec:  hps,
			PeakRSSBytes: m.rss,
			RSSReset:     m.rssReset,
		})
		fmt.Fprintf(os.Stderr, "dgrid: bench sweep workers=%d: %.2fs, %.0f hosts/s\n",
			m.workers, m.elapsed.Seconds(), hps)
	}
	// The reference point for efficiency: workers=1 if swept, else the
	// first point's per-worker throughput.
	ref := points[0].HostsPerSec / float64(points[0].Workers)
	for _, p := range points {
		if p.Workers == 1 {
			ref = p.HostsPerSec
			break
		}
	}
	for i := range points {
		points[i].PerCoreEfficiency = points[i].HostsPerSec / float64(points[i].Workers) / ref
	}
	return points, nil
}

// benchCheck is the CI regression gate: measure a reduced fleet and
// compare its hosts/s against the committed artifact's headline
// number. hosts/s is per-host work and thus comparable across fleet
// sizes; the tolerance absorbs machine-to-machine noise.
func benchCheck(scn grid.Scenario, cfg core.Config, workers int, baselinePath string, tolerance, slowdown float64) error {
	base, err := readBenchBaseline(baselinePath)
	if err != nil {
		return err
	}
	// Warm the per-process calibration memo outside the measured
	// window: the committed baseline amortizes the fixed calibration
	// cost over a million hosts, while a reduced check fleet would pay
	// it across a few seconds and read as a false regression.
	warm := scn
	warm.Machines = grid.ShardSize
	if _, err := benchMeasure(warm.Normalize(), cfg, workers); err != nil {
		return err
	}
	m, err := benchMeasure(scn, cfg, workers)
	if err != nil {
		return err
	}
	hps := float64(scn.Machines) / (m.elapsed.Seconds() * slowdown)
	fmt.Fprintf(os.Stderr,
		"dgrid: bench check %d hosts × %d min at %d workers: %.0f hosts/s vs committed %.0f (tolerance %.0f%%)\n",
		scn.Machines, scn.Minutes, m.workers, hps, base.HostsPerSec, tolerance*100)
	return benchGate(base.HostsPerSec, hps, tolerance)
}

// benchGate returns the gate verdict: an error iff measured hosts/s is
// more than tolerance below baseline. A regression of exactly the
// tolerance passes.
func benchGate(baseline, measured, tolerance float64) error {
	if baseline <= 0 {
		return fmt.Errorf("bench: baseline artifact has no positive hosts_per_sec to gate against")
	}
	floor := baseline * (1 - tolerance)
	if measured < floor {
		return fmt.Errorf("bench: regression: %.0f hosts/s is %.1f%% below the committed %.0f (floor %.0f at %.0f%% tolerance)",
			measured, (1-measured/baseline)*100, baseline, floor, tolerance*100)
	}
	return nil
}

// readBenchBaseline loads the committed artifact -check gates against.
func readBenchBaseline(path string) (*benchResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	var res benchResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	return &res, nil
}

// parseSweepCounts parses the -sweep list ("1,4,8") into worker
// counts.
func parseSweepCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench: -sweep %q: worker counts must be positive integers", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// eventsFired sums the determinism probe over every environment of the
// merged fleet payload.
func eventsFired(raw json.RawMessage) (uint64, error) {
	var payload struct {
		Variants []struct {
			Fleet struct {
				Envs []struct {
					Fired uint64
				}
			}
		}
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		return 0, fmt.Errorf("bench: parsing fleet payload: %w", err)
	}
	var fired uint64
	for _, v := range payload.Variants {
		for _, e := range v.Fleet.Envs {
			fired += e.Fired
		}
	}
	return fired, nil
}

// peakRSS reports the process's peak resident set in bytes: VmHWM on
// Linux, and the Go runtime's OS-memory estimate elsewhere (an
// overestimate of instantaneous RSS but a usable bound).
func peakRSS() int64 {
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// resetPeakRSS asks the kernel to reset the process's peak-RSS
// counter (writing "5" to clear_refs), so each sweep point's VmHWM
// reflects that run rather than the highest-water run before it. It
// reports success; the write needs a Linux kernel with
// CONFIG_PROC_PAGE_MONITOR and may be refused in locked-down
// sandboxes, in which case points carry a cumulative high-water mark.
func resetPeakRSS() bool {
	return os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) == nil
}
