package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// cmdFleet simulates the paper's motivating scenario at population
// scale: a desktop grid of volunteer machines (heterogeneous hardware,
// owners arriving and leaving) donating cycles to an
// Einstein@home-style project through sandboxed VMs, under a chosen
// server scheduling policy. The simulation runs through the experiment
// engine, so shards spread across the worker pool and completed shards
// are served from the content-keyed cache; output is bit-identical for
// any -workers value at a fixed seed.
func cmdFleet(args []string) error {
	// Flag defaults come from the scenario's own normalization, so the
	// help text can never drift from what an unset field actually runs.
	def := grid.Scenario{}.Normalize()
	fs := flag.NewFlagSet("dgrid fleet", flag.ExitOnError)
	machines := fs.Int("machines", def.Machines, "volunteer machines in the fleet")
	minutes := fs.Int("minutes", def.Minutes, "virtual minutes to simulate")
	env := fs.String("env", "", "single VM environment (default: the paper's four)")
	seed := fs.Uint64("seed", 1, "simulation seed (runs are deterministic per seed)")
	churn := fs.Bool("churn", false, "enable volunteer availability churn (power on/off sessions)")
	policy := fs.String("policy", def.Policy, "scheduling policy: "+strings.Join(grid.Policies(), ", "))
	replication := fs.Int("replication", def.Replication, "quorum size (replication policy)")
	deadline := fs.Float64("deadline", def.DeadlineMin, "work-unit deadline in virtual minutes (deadline policy)")
	faulty := fs.Float64("faulty", 0.02, "fraction of hosts returning corrupted results")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "shard cache directory; 'off' disables (default: the user cache dir)")
	quick := fs.Bool("quick", false, "trim calibration windows (faster, noisier)")
	jsonOut := fs.Bool("json", false, "emit the merged JSON payload instead of the table")
	csv := fs.Bool("csv", false, "emit CSV instead of the table")
	out := fs.String("out", "", "also write fleet.json and fleet.csv artifacts to this directory")
	verbose := fs.Bool("v", false, "log per-shard progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (fleet takes flags only, e.g. -machines 10000)", fs.Args())
	}

	scn := grid.Scenario{
		Machines:    *machines,
		Minutes:     *minutes,
		Churn:       *churn,
		Policy:      *policy,
		Replication: *replication,
		DeadlineMin: *deadline,
		FaultyFrac:  *faulty,
	}
	if *env != "" {
		scn.Envs = []string{*env}
	}
	// Validate rejects unknown environments with the valid name list.
	if err := scn.Validate(); err != nil {
		return err
	}

	runner, err := newRunner(*workers, *cache, *verbose)
	if err != nil {
		return err
	}
	cfg := core.Config{Seed: *seed, Quick: *quick}
	exp := engine.FleetScenario("fleet", "command-line fleet scenario", scn)
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return err
	}
	o := outcomes[0]
	switch {
	case *jsonOut:
		os.Stdout.Write(append(o.Raw, '\n'))
	case *csv:
		fmt.Print(o.CSV())
	default:
		fmt.Println(o.Render())
	}
	if *out != "" {
		if err := writeArtifacts(*out, outcomes); err != nil {
			return err
		}
	}
	summarize(stats)
	return nil
}
