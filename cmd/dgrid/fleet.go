package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// fleetOpts is everything `dgrid fleet` parses from its arguments: the
// single validated scenario plus the runner and output switches.
// parseFleetArgs fills it, so the whole command line is testable
// without executing a fleet.
type fleetOpts struct {
	scn     grid.Scenario
	seed    uint64
	quick   bool
	workers int
	cache   string
	resume  bool
	jsonOut bool
	csv     bool
	out     string
	verbose bool
	quiet   bool
}

// parseFleetArgs parses and validates the fleet command line. Flag
// defaults come from the spec's own normalization, so the help text
// can never drift from what an unset field actually runs (the spec
// layer owns the seed and faulty-fraction defaults that
// Scenario.Normalize cannot express).
func parseFleetArgs(args []string) (*fleetOpts, error) {
	def := grid.Spec{}.Normalize()
	fs := flag.NewFlagSet("dgrid fleet", flag.ContinueOnError)
	machines := fs.Int("machines", def.Machines[0], "volunteer machines in the fleet")
	minutes := fs.Int("minutes", def.Minutes[0], "virtual minutes to simulate")
	env := fs.String("env", "", "single VM environment (default: the paper's four)")
	seed := fs.Uint64("seed", def.Seed, "simulation seed (runs are deterministic per seed)")
	churn := fs.Bool("churn", def.Churn[0], "enable volunteer availability churn (power on/off sessions)")
	policy := fs.String("policy", def.Policy[0], "scheduling policy: "+strings.Join(grid.Policies(), ", "))
	replication := fs.Int("replication", def.Replication[0], "quorum size (replication policy)")
	deadline := fs.Float64("deadline", def.DeadlineMin[0], "work-unit deadline in virtual minutes (deadline policy)")
	faulty := fs.Float64("faulty", def.FaultyFrac[0], "fraction of hosts returning corrupted results")
	migration := fs.String("migration", def.Migration[0],
		"checkpoint migration policy: "+strings.Join(grid.MigrationPolicies(), ", "))
	bandwidth := fs.Float64("bandwidth", def.Bandwidth[0],
		"server frontend transfer capacity per population slice, Mbit/s (migration policies)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "shard cache directory; 'off' disables (default: the user cache dir)")
	resume := fs.Bool("resume", true, "journal fold progress and resume an interrupted identical run (needs the cache)")
	quick := fs.Bool("quick", false, "trim calibration windows (faster, noisier)")
	jsonOut := fs.Bool("json", false, "emit the merged JSON payload instead of the table")
	csv := fs.Bool("csv", false, "emit CSV instead of the table")
	out := fs.String("out", "", "also write fleet.json and fleet.csv artifacts to this directory")
	verbose := fs.Bool("v", false, "log per-shard progress to stderr")
	quiet := fs.Bool("quiet", false, "suppress progress and summary lines on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		// Parse already printed the message and usage to stderr.
		return nil, fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %v (fleet takes flags only, e.g. -machines 10000)", fs.Args())
	}
	if err := validateFleetFlags(*machines, *minutes, *replication, *policy); err != nil {
		return nil, err
	}

	sp := grid.Spec{
		Version:     grid.SpecVersion,
		Seed:        *seed,
		Quick:       *quick,
		Machines:    []int{*machines},
		Minutes:     []int{*minutes},
		Churn:       []bool{*churn},
		Policy:      []string{*policy},
		Replication: []int{*replication},
		DeadlineMin: []float64{*deadline},
		FaultyFrac:  []float64{*faulty},
		Migration:   []string{*migration},
		Bandwidth:   []float64{*bandwidth},
	}
	if *env != "" {
		sp.Envs = []string{*env}
	}
	// Spec validation covers what scenario validation did — unknown
	// policies and environments with the valid name lists, oversized
	// populations/horizons, replication beyond the population — plus
	// explicit non-positive values that normalization would otherwise
	// silently replace with defaults.
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	pts, err := sp.Points()
	if err != nil {
		return nil, err
	}
	return &fleetOpts{
		scn:     pts[0].Scenario,
		seed:    *seed,
		quick:   *quick,
		workers: *workers,
		cache:   *cache,
		resume:  *resume,
		jsonOut: *jsonOut,
		csv:     *csv,
		out:     *out,
		verbose: *verbose,
		quiet:   *quiet,
	}, nil
}

// cmdFleet simulates the paper's motivating scenario at population
// scale: a desktop grid of volunteer machines (heterogeneous hardware,
// owners arriving and leaving) donating cycles to an
// Einstein@home-style project through sandboxed VMs, under a chosen
// server scheduling policy — and, when -migration is set, moving
// checkpoints of departed hosts to new volunteers over the modeled
// network. The command is a thin adapter over grid.Spec — each flag
// pins one spec axis to a single value — so a fleet run is exactly a
// one-point sweep: same validation, same cache scoping, same engine
// path, and `dgrid sweep -set axis=...` widens any of these flags into
// a comparison without re-running this point.
func cmdFleet(args []string) error {
	o, err := parseFleetArgs(args)
	if err != nil {
		return usageExit(err)
	}
	runner, err := newRunner(o.workers, o.cache, o.resume, o.verbose)
	if err != nil {
		return err
	}
	if !o.verbose && !o.quiet {
		runner.OnEvent = progressLine("fleet")
	}
	// The config takes the flag values directly (not the normalized
	// spec's): an explicit -seed 0 runs seed 0, as it always has —
	// only in spec *files* does an absent seed mean grid.DefaultSeed.
	cfg := core.Config{Seed: o.seed, Quick: o.quick}
	exp := engine.FleetScenario("fleet", "command-line fleet scenario", o.scn)
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return err
	}
	res := outcomes[0]
	switch {
	case o.jsonOut:
		os.Stdout.Write(append(res.Raw, '\n'))
	case o.csv:
		fmt.Print(res.CSV())
	default:
		fmt.Println(res.Render())
	}
	if o.out != "" {
		if err := writeArtifacts(o.out, outcomes); err != nil {
			return err
		}
	}
	if !o.quiet {
		summarize(stats)
	}
	return nil
}

// validateFleetFlags rejects out-of-range flag values before scenario
// normalization can paper over them, with messages that state the valid
// range. The replication bound applies only to the replication policy —
// the flag's default is inert elsewhere. Everything else — unknown
// policies, migration policies, environments, non-positive bandwidth,
// the upper bounds re-checked after normalization — is Spec.Validate's
// job; the flags feed it unmodified.
func validateFleetFlags(machines, minutes, replication int, policy string) error {
	if machines < 1 || machines > grid.MaxMachines {
		return fmt.Errorf("-machines %d outside the valid range [1, %d]", machines, grid.MaxMachines)
	}
	if minutes < 1 || minutes > grid.MaxMinutes {
		return fmt.Errorf("-minutes %d outside the valid range [1, %d]", minutes, grid.MaxMinutes)
	}
	if policy == "replication" && (replication < 1 || replication > machines) {
		return fmt.Errorf("-replication %d outside the valid range [1, %d] (cannot exceed -machines)", replication, machines)
	}
	return nil
}

// progressLine returns an OnEvent hook that keeps one stderr line
// updated while a big run computes. Output is throttled (~10 Hz) and
// goes to stderr only, so stdout stays bit-identical across worker
// counts; the line is erased once the last task folds.
func progressLine(what string) func(engine.Event) {
	var last time.Time
	return func(ev engine.Event) {
		if ev.Kind == engine.EventExperimentMerged {
			return
		}
		done, total := ev.Done, ev.Total
		if total < 32 {
			return // small runs finish before a line is worth drawing
		}
		now := time.Now()
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		if done < total {
			fmt.Fprintf(os.Stderr, "\rdgrid: %s %d/%d shards", what, done, total)
		} else {
			fmt.Fprintf(os.Stderr, "\r%*s\r", len(what)+len("dgrid:  / shards")+14, "")
		}
	}
}
