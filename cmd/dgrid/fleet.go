package main

import (
	"flag"
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
	"vmdg/internal/stats"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// cmdFleet simulates the paper's motivating scenario end to end: a
// desktop grid of volunteer machines, each donating cycles to an
// Einstein@home-style project through a sandboxed virtual machine, while
// their owners keep using them interactively. For each environment it
// reports the science throughput (work units completed) and the
// intrusiveness the volunteer experiences (the latency stretch of
// periodic interactive tasks versus an idle machine).
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("dgrid fleet", flag.ExitOnError)
	machines := fs.Int("machines", 4, "volunteer machines per environment")
	minutes := fs.Int("minutes", 5, "virtual minutes to simulate")
	env := fs.String("env", "", "single environment (default: all four)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	envs := profiles.All()
	if *env != "" {
		p, ok := profiles.ByName(*env)
		if !ok {
			return fmt.Errorf("unknown environment %q", *env)
		}
		envs = []vmm.Profile{p}
	}

	fmt.Printf("desktop grid: %d machines × %d virtual minutes per environment\n\n",
		*machines, *minutes)
	fmt.Printf("%-12s %14s %18s %18s\n", "environment", "work units", "interactive p50", "interactive p95")
	for _, prof := range envs {
		units, p50, p95, err := simulateFleet(prof, *machines, *minutes, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %14d %17.1fms %17.1fms\n", prof.Name, units, p50, p95)
	}
	// Baseline: the same interactive load on a machine with no VM.
	_, p50, p95, err := simulateFleet(vmm.Profile{}, 1, *minutes, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %17.1fms %17.1fms\n", "no-vm", "-", p50, p95)
	return nil
}

// interactiveBurst is one interactive task: 40 ms of mixed compute,
// issued once per second — an editor keystroke storm, a page render.
const interactiveBurst = 0.040 * 2.4e9

// simulateFleet runs the fleet for the given duration and aggregates
// results. An empty profile (Name == "") simulates volunteers without VMs
// for the baseline.
func simulateFleet(prof vmm.Profile, machines, minutes int, seed uint64) (units int, p50, p95 float64, err error) {
	lat := &stats.Sample{}
	for m := 0; m < machines; m++ {
		s := sim.New()
		mc, err := hw.NewMachine(s, hw.Config{Seed: seed + uint64(m)})
		if err != nil {
			return 0, 0, 0, err
		}
		host := hostos.Boot(mc)

		var worker *boinc.Worker
		var vm *vmm.VM
		if prof.Name != "" {
			vm, err = vmm.New(host, vmm.Config{Prof: prof})
			if err != nil {
				return 0, 0, 0, err
			}
			wu := boinc.WorkUnit{ID: fmt.Sprintf("wu-%d", m), Seed: seed + uint64(m), Chunks: 800, CheckpointEvery: 100}
			worker = boinc.NewWorker(boinc.Progress{WorkUnit: wu})
			vm.SpawnGuest("einstein", worker)
			vm.PowerOn(hostos.PrioIdle)
		}

		// The owner's interactive workload: one burst per second, with
		// latency recorded per burst.
		user := host.NewProcess("user")
		var issue func()
		issue = func() {
			start := s.Now()
			prog := &cost.Profile{Name: "burst", Steps: []cost.Step{
				{Kind: cost.StepCompute, Cycles: interactiveBurst, Mix: cost.Mix{Int: 0.5, Mem: 0.3, FP: 0.2}},
			}}
			th := host.Spawn(user, "burst", hostos.PrioNormal, prog.Iter())
			th.OnExit = func() {
				lat.Add((s.Now() - start).Seconds() * 1000)
			}
			s.After(sim.Second, "user-think", issue)
		}
		s.After(100*sim.Millisecond, "user-start", issue)

		host.RunFor(sim.Time(minutes) * 60 * sim.Second)
		if worker != nil {
			units += worker.UnitsDone()
			vm.PowerOff()
		}
	}
	if lat.N() == 0 {
		return units, 0, 0, nil
	}
	return units, lat.Percentile(0.50), lat.Percentile(0.95), nil
}
