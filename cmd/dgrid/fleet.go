package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// cmdFleet simulates the paper's motivating scenario at population
// scale: a desktop grid of volunteer machines (heterogeneous hardware,
// owners arriving and leaving) donating cycles to an
// Einstein@home-style project through sandboxed VMs, under a chosen
// server scheduling policy. The simulation runs through the experiment
// engine, so shards spread across the worker pool and completed shards
// are served from the content-keyed cache; output is bit-identical for
// any -workers value at a fixed seed.
func cmdFleet(args []string) error {
	// Flag defaults come from the scenario's own normalization, so the
	// help text can never drift from what an unset field actually runs.
	def := grid.Scenario{}.Normalize()
	fs := flag.NewFlagSet("dgrid fleet", flag.ExitOnError)
	machines := fs.Int("machines", def.Machines, "volunteer machines in the fleet")
	minutes := fs.Int("minutes", def.Minutes, "virtual minutes to simulate")
	env := fs.String("env", "", "single VM environment (default: the paper's four)")
	seed := fs.Uint64("seed", 1, "simulation seed (runs are deterministic per seed)")
	churn := fs.Bool("churn", false, "enable volunteer availability churn (power on/off sessions)")
	policy := fs.String("policy", def.Policy, "scheduling policy: "+strings.Join(grid.Policies(), ", "))
	replication := fs.Int("replication", def.Replication, "quorum size (replication policy)")
	deadline := fs.Float64("deadline", def.DeadlineMin, "work-unit deadline in virtual minutes (deadline policy)")
	faulty := fs.Float64("faulty", 0.02, "fraction of hosts returning corrupted results")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "shard cache directory; 'off' disables (default: the user cache dir)")
	quick := fs.Bool("quick", false, "trim calibration windows (faster, noisier)")
	jsonOut := fs.Bool("json", false, "emit the merged JSON payload instead of the table")
	csv := fs.Bool("csv", false, "emit CSV instead of the table")
	out := fs.String("out", "", "also write fleet.json and fleet.csv artifacts to this directory")
	verbose := fs.Bool("v", false, "log per-shard progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (fleet takes flags only, e.g. -machines 10000)", fs.Args())
	}
	if err := validateFleetFlags(*machines, *minutes, *replication, *policy); err != nil {
		return err
	}

	scn := grid.Scenario{
		Machines:    *machines,
		Minutes:     *minutes,
		Churn:       *churn,
		Policy:      *policy,
		Replication: *replication,
		DeadlineMin: *deadline,
		FaultyFrac:  *faulty,
	}
	if *env != "" {
		scn.Envs = []string{*env}
	}
	// Validate rejects unknown environments with the valid name list,
	// oversized populations/horizons, and replication beyond the
	// population.
	if err := scn.Validate(); err != nil {
		return err
	}

	runner, err := newRunner(*workers, *cache, *verbose)
	if err != nil {
		return err
	}
	if !*verbose {
		runner.ShardDone = progressLine("fleet")
	}
	cfg := core.Config{Seed: *seed, Quick: *quick}
	exp := engine.FleetScenario("fleet", "command-line fleet scenario", scn)
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return err
	}
	o := outcomes[0]
	switch {
	case *jsonOut:
		os.Stdout.Write(append(o.Raw, '\n'))
	case *csv:
		fmt.Print(o.CSV())
	default:
		fmt.Println(o.Render())
	}
	if *out != "" {
		if err := writeArtifacts(*out, outcomes); err != nil {
			return err
		}
	}
	summarize(stats)
	return nil
}

// validateFleetFlags rejects out-of-range flag values before scenario
// normalization can paper over them, with messages that state the valid
// range. The replication bound applies only to the replication policy —
// the flag's default is inert elsewhere. Scenario.Validate re-checks
// the upper bounds (and replication against the population) after
// normalization.
func validateFleetFlags(machines, minutes, replication int, policy string) error {
	if machines < 1 || machines > grid.MaxMachines {
		return fmt.Errorf("-machines %d outside the valid range [1, %d]", machines, grid.MaxMachines)
	}
	if minutes < 1 || minutes > grid.MaxMinutes {
		return fmt.Errorf("-minutes %d outside the valid range [1, %d]", minutes, grid.MaxMinutes)
	}
	if policy == "replication" && (replication < 1 || replication > machines) {
		return fmt.Errorf("-replication %d outside the valid range [1, %d] (cannot exceed -machines)", replication, machines)
	}
	return nil
}

// progressLine returns a ShardDone hook that keeps one stderr line
// updated while a big fleet computes. Output is throttled (~10 Hz) and
// goes to stderr only, so stdout stays bit-identical across worker
// counts; the line is erased once the run completes.
func progressLine(what string) func(done, total int) {
	var last time.Time
	return func(done, total int) {
		if total < 32 {
			return // small runs finish before a line is worth drawing
		}
		now := time.Now()
		if done < total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		if done < total {
			fmt.Fprintf(os.Stderr, "\rdgrid: %s %d/%d shards", what, done, total)
		} else {
			fmt.Fprintf(os.Stderr, "\r%*s\r", len(what)+len("dgrid:  / shards")+14, "")
		}
	}
}
