package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmdg/internal/core"
)

// TestBenchGateMath pins the gate's boundary arithmetic: a regression
// of exactly the tolerance passes, anything beyond fails, and a
// baseline without a positive hosts/s cannot vouch for anything.
func TestBenchGateMath(t *testing.T) {
	if err := benchGate(1000, 1000, 0.10); err != nil {
		t.Errorf("equal throughput failed the gate: %v", err)
	}
	if err := benchGate(1000, 900, 0.10); err != nil {
		t.Errorf("regression of exactly the tolerance failed the gate: %v", err)
	}
	if err := benchGate(1000, 899, 0.10); err == nil {
		t.Error("10.1% regression passed a 10% gate")
	}
	if err := benchGate(1000, 1500, 0.10); err != nil {
		t.Errorf("speedup failed the gate: %v", err)
	}
	if err := benchGate(0, 1000, 0.10); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestParseSweepCounts(t *testing.T) {
	counts, err := parseSweepCounts("1, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 4 || counts[2] != 8 {
		t.Fatalf("parseSweepCounts = %v, want [1 4 8]", counts)
	}
	for _, bad := range []string{"", "0", "-1", "two", "1,,2"} {
		if _, err := parseSweepCounts(bad); err == nil {
			t.Errorf("parseSweepCounts(%q) accepted", bad)
		}
	}
}

// TestBenchSweepArtifactAndCheckGate runs the bench command end to end
// on a small quick fleet: the artifact must record the resolved worker
// count (never the unset flag's 0) and the sweep points, a -check run
// against that artifact must pass with a generous tolerance, and a
// -check run with a deliberately injected 2.5× slowdown must fail a
// 10% gate — the acceptance criterion for the CI regression gate.
func TestBenchSweepArtifactAndCheckGate(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_fleet.json")
	base := []string{
		"-quick", "-machines", "6000", "-minutes", "60", "-env", "vmplayer", "-seed", "1",
	}

	// Warm the in-process calibration cache before the baseline
	// measurement: the first fleet run of a process pays the
	// calibration micro-sims, and a baseline measured cold would let a
	// deliberately slowed warm run pass the gate.
	if err := cmdBench(append(base, "-out", filepath.Join(dir, "warmup.json"))); err != nil {
		t.Fatal(err)
	}

	if err := cmdBench(append(base, "-sweep", "1,2", "-out", artifact)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.Workers <= 0 {
		t.Errorf("artifact records workers=%d; the resolved pool size must be positive", res.Workers)
	}
	if res.GOMAXPROCS <= 0 {
		t.Errorf("artifact records gomaxprocs=%d", res.GOMAXPROCS)
	}
	if res.Machines != 6000 || res.HostsPerSec <= 0 || res.EventsFired == 0 {
		t.Errorf("implausible headline measurement: %+v", res)
	}
	if len(res.Sweep) != 2 {
		t.Fatalf("sweep recorded %d points, want 2", len(res.Sweep))
	}
	for i, want := range []int{1, 2} {
		p := res.Sweep[i]
		if p.Workers != want {
			t.Errorf("sweep point %d: workers=%d, want %d", i, p.Workers, want)
		}
		if p.HostsPerSec <= 0 || p.ElapsedSec <= 0 || p.PerCoreEfficiency <= 0 {
			t.Errorf("sweep point %d implausible: %+v", i, p)
		}
	}
	if res.Sweep[0].PerCoreEfficiency != 1.0 {
		t.Errorf("single-worker sweep point is its own reference; efficiency = %v, want 1",
			res.Sweep[0].PerCoreEfficiency)
	}

	// The gate against our own just-measured artifact passes with a
	// tolerance wide enough to swallow quick-run timing noise.
	checkArgs := append(base, "-check", "-check-machines", "6000",
		"-baseline", artifact, "-tolerance", "0.9")
	if err := cmdBench(checkArgs); err != nil {
		t.Fatalf("check against own artifact failed: %v", err)
	}

	// An injected 4× slowdown is a 75% hosts/s regression: even with
	// timing noise it must trip a 10% gate.
	slowArgs := append(base, "-check", "-check-machines", "6000",
		"-baseline", artifact, "-tolerance", "0.10", "-slowdown", "4")
	if err := cmdBench(slowArgs); err == nil {
		t.Fatal("4× slowdown passed the 10% regression gate")
	}
}

func TestMedianDuration(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	if got := medianDuration(nil); got != 0 {
		t.Errorf("median of nothing = %v", got)
	}
	if got := medianDuration([]time.Duration{ms(7)}); got != ms(7) {
		t.Errorf("median of one = %v, want 7ms", got)
	}
	if got := medianDuration([]time.Duration{ms(9), ms(1), ms(5)}); got != ms(5) {
		t.Errorf("odd median = %v, want 5ms", got)
	}
	if got := medianDuration([]time.Duration{ms(8), ms(2), ms(4), ms(6)}); got != ms(5) {
		t.Errorf("even median = %v, want 5ms", got)
	}
}

// TestBenchConcurrentSmall runs the -concurrent measurement on a tiny
// quick fleet and pins its deterministic invariants: the single-flight
// group holds computed shards to exactly the cross-run unique-key
// union, the work accounting is self-consistent, and both warm-replay
// p50s are real measurements. Flight-hit counts are timing-dependent
// (no gates in the production path), so only the computed==unique
// consequence — which holds under every interleaving — is asserted.
func TestBenchConcurrentSmall(t *testing.T) {
	cfg := core.Config{Seed: 1, Quick: true}
	res, err := benchConcurrent(3, 600, 60, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || res.PointsPerRun != 2 {
		t.Fatalf("geometry: %+v", res)
	}
	// 600 machines → 2 population shards per point; specs A and B cover
	// 3 distinct policy points.
	if res.ShardsPerRun != 4 || res.UniqueShards != 6 {
		t.Fatalf("shards per run %d / unique %d, want 4 / 6", res.ShardsPerRun, res.UniqueShards)
	}
	if res.ComputedShards != res.UniqueShards {
		t.Errorf("computed %d shards, want the unique union %d — single-flight or cache dedup broke",
			res.ComputedShards, res.UniqueShards)
	}
	if res.FlightHits != res.FlightShared {
		t.Errorf("flight hits %d != flight shared %d", res.FlightHits, res.FlightShared)
	}
	if res.ColdElapsedSec <= 0 || res.AggregateHostsPerSec <= 0 {
		t.Errorf("implausible cold measurement: %+v", res)
	}
	if res.WarmMemP50Ms <= 0 || res.WarmDiskP50Ms <= 0 {
		t.Errorf("warm replays not measured: mem %.3fms disk %.3fms", res.WarmMemP50Ms, res.WarmDiskP50Ms)
	}
	if res.PoolWorkers < 3 {
		t.Errorf("pool workers %d < runs; the cold burst would serialize", res.PoolWorkers)
	}
}
