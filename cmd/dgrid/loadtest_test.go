package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmdg/internal/loadgen"
)

func TestParseLoadtestArgs(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
		check   func(*loadtestOpts) bool
	}{
		{name: "defaults", args: nil,
			check: func(o *loadtestOpts) bool {
				return o.clients == 200 && o.requests == 5 && o.specs == 8 &&
					o.sse == 0.5 && o.tolerance == 0.10 && !o.check && o.out == ""
			}},
		{name: "quick reduces shape", args: []string{"-quick"},
			check: func(o *loadtestOpts) bool { return o.requests == 2 && o.specs == 4 }},
		{name: "quick keeps explicit shape", args: []string{"-quick", "-requests", "7", "-specs", "3"},
			check: func(o *loadtestOpts) bool { return o.requests == 7 && o.specs == 3 }},
		{name: "check flags", args: []string{"-check", "-baseline", "B.json", "-tolerance", "0.5"},
			check: func(o *loadtestOpts) bool {
				return o.check && o.baseline == "B.json" && o.tolerance == 0.5
			}},
		{name: "addr", args: []string{"-addr", "http://127.0.0.1:8787"},
			check: func(o *loadtestOpts) bool { return o.addr == "http://127.0.0.1:8787" }},
		{name: "zero clients", args: []string{"-clients", "0"}, wantErr: "must be positive"},
		{name: "sse out of range", args: []string{"-sse", "1.5"}, wantErr: "outside [0, 1]"},
		{name: "negative tolerance", args: []string{"-tolerance", "-1"}, wantErr: "non-negative"},
		{name: "positional junk", args: []string{"extra"}, wantErr: "unexpected arguments"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseLoadtestArgs(tc.args)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want contains %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !tc.check(o) {
				t.Errorf("parsed opts = %+v", o)
			}
		})
	}
}

// cleanLoadReport is a report that passes the hard half of the gate.
func cleanLoadReport(warmP99 float64) *loadgen.Report {
	return &loadgen.Report{
		Requests: 10,
		Warm:     loadgen.Summary{Count: 8, P99Ms: warmP99},
		Accounting: loadgen.Accounting{
			MissesMatch: true, ActiveRunsDrained: true,
			RunLocksDrained: true, CountersConsistent: true,
		},
	}
}

// writeBaselineWithServe commits a bench artifact whose serve section
// has the given warm p99.
func writeBaselineWithServe(t *testing.T, warmP99 float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	res := benchResult{HostsPerSec: 20000, Serve: cleanLoadReport(warmP99)}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadtestGate: the latency SLO boundary math — a warm p99 at
// exactly the ceiling passes, above it fails, and the hard invariants
// short-circuit the latency comparison.
func TestLoadtestGate(t *testing.T) {
	baseline := writeBaselineWithServe(t, 10.0)

	if err := loadtestGate(cleanLoadReport(10.9), baseline, 0.10); err != nil {
		t.Errorf("p99 below ceiling failed the gate: %v", err)
	}
	if err := loadtestGate(cleanLoadReport(11.0), baseline, 0.10); err != nil {
		t.Errorf("p99 at the ceiling failed the gate: %v", err)
	}
	err := loadtestGate(cleanLoadReport(11.2), baseline, 0.10)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("p99 above ceiling: err = %v, want regression", err)
	}

	bad := cleanLoadReport(5.0)
	bad.Failed = 1
	bad.FailureSamples = []string{"boom"}
	if err := loadtestGate(bad, baseline, 0.10); err == nil {
		t.Error("failed request passed the gate")
	}

	mismatch := cleanLoadReport(5.0)
	mismatch.Accounting.MissesMatch = false
	if err := loadtestGate(mismatch, baseline, 0.10); err == nil {
		t.Error("accounting mismatch passed the gate")
	}

	empty := cleanLoadReport(5.0)
	empty.Warm = loadgen.Summary{}
	if err := loadtestGate(empty, baseline, 0.10); err == nil {
		t.Error("a run with no warm requests passed the latency gate")
	}
}

// TestLoadtestGateMissingServeSection: gating against an artifact that
// never recorded a serve section names the fix instead of passing
// vacuously.
func TestLoadtestGateMissingServeSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet.json")
	b, _ := json.Marshal(benchResult{HostsPerSec: 20000})
	os.WriteFile(path, b, 0o644)
	err := loadtestGate(cleanLoadReport(5.0), path, 0.10)
	if err == nil || !strings.Contains(err.Error(), "no serve section") {
		t.Errorf("err = %v, want 'no serve section'", err)
	}
}

// TestWriteServeSectionMergePreserves: merging into an existing
// artifact keeps every kernel measurement; a second merge replaces the
// serve section; a fresh path gets a serve-only document.
func TestWriteServeSectionMergePreserves(t *testing.T) {
	path := writeBaselineWithServe(t, 10.0)
	if err := writeServeSection(path, cleanLoadReport(3.0)); err != nil {
		t.Fatal(err)
	}
	res, err := readBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostsPerSec != 20000 {
		t.Errorf("merge dropped hosts_per_sec: %v", res.HostsPerSec)
	}
	if res.Serve == nil || res.Serve.Warm.P99Ms != 3.0 {
		t.Errorf("merge did not replace the serve section: %+v", res.Serve)
	}

	fresh := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := writeServeSection(fresh, cleanLoadReport(4.0)); err != nil {
		t.Fatal(err)
	}
	res2, err := readBenchBaseline(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Serve == nil || res2.Serve.Warm.P99Ms != 4.0 {
		t.Errorf("fresh artifact serve section = %+v", res2.Serve)
	}
	if res2.HostsPerSec != 0 {
		t.Errorf("fresh artifact invented kernel numbers: %+v", res2)
	}
}

// TestBenchRewritePreservesServeSection: cmdBench carrying the serve
// section over when the kernel artifact is regenerated (the read half
// is readBenchBaseline; this pins the copy).
func TestBenchRewritePreservesServeSection(t *testing.T) {
	path := writeBaselineWithServe(t, 10.0)
	prev, err := readBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	res := benchResult{HostsPerSec: 30000, Serve: prev.Serve}
	b, _ := json.MarshalIndent(res, "", "  ")
	os.WriteFile(path, b, 0o644)
	got, err := readBenchBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serve == nil || got.Serve.Warm.P99Ms != 10.0 || got.HostsPerSec != 30000 {
		t.Errorf("rewrite lost data: %+v", got)
	}
}
