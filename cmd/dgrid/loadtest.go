package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"vmdg/internal/loadgen"
)

// loadtestOpts is everything `dgrid loadtest` parses from its
// arguments.
type loadtestOpts struct {
	clients  int
	requests int
	specs    int
	sse      float64
	seed     uint64
	retries  int
	addr     string
	cache    string
	workers  int
	maxRuns  int
	quick    bool
	out      string

	check     bool
	baseline  string
	tolerance float64
}

// parseLoadtestArgs parses the loadtest command line.
func parseLoadtestArgs(args []string) (*loadtestOpts, error) {
	fs := flag.NewFlagSet("dgrid loadtest", flag.ContinueOnError)
	clients := fs.Int("clients", 200, "concurrent clients in the fleet")
	requests := fs.Int("requests", 5, "sequential requests per client")
	specs := fs.Int("specs", 8, "distinct specs in the overlapping mix (the cold-shard budget)")
	sse := fs.Float64("sse", 0.5, "fraction of requests streamed as SSE (time-to-first-frame source)")
	seed := fs.Uint64("seed", 1, "client-fleet RNG seed (spec choice, SSE choice, backoff jitter)")
	retries := fs.Int("retries", 100, "429 retry budget per request before it counts as failed")
	addr := fs.String("addr", "", "drive a running daemon at this base URL instead of an in-process one")
	cache := fs.String("cache", "", "in-process daemon's cache dir (default: a fresh temp dir, guaranteeing a cold start)")
	workers := fs.Int("workers", 0, "in-process daemon's worker pool (0 = GOMAXPROCS)")
	maxRuns := fs.Int("max-runs", 0, "in-process daemon's admission bound (0 = 2× workers)")
	quick := fs.Bool("quick", false, "reduced smoke shape: 2 requests/client over a 4-spec mix")
	out := fs.String("out", "", "merge the serve section into this bench artifact (e.g. BENCH_fleet.json)")
	check := fs.Bool("check", false, "gate against -baseline's serve section instead of writing an artifact")
	baseline := fs.String("baseline", "BENCH_fleet.json", "committed artifact -check compares against")
	tolerance := fs.Float64("tolerance", 0.10, "fractional warm-p99 regression -check tolerates")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: dgrid loadtest [flags]\n\n"+
			"drive a serve daemon with a fleet of concurrent clients over an overlapping\n"+
			"spec mix, record cold/warm/deduped/rejected latency percentiles and\n"+
			"time-to-first-SSE-frame, and cross-check request accounting against the\n"+
			"daemon's /healthz and /v1/cache counters. by default the daemon is\n"+
			"in-process on a fresh cache; -addr points at a real one (which must be\n"+
			"otherwise idle for the accounting cross-checks to be meaningful)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %v (loadtest takes flags only)", fs.Args())
	}
	o := &loadtestOpts{
		clients: *clients, requests: *requests, specs: *specs, sse: *sse,
		seed: *seed, retries: *retries, addr: *addr, cache: *cache,
		workers: *workers, maxRuns: *maxRuns, quick: *quick, out: *out,
		check: *check, baseline: *baseline, tolerance: *tolerance,
	}
	if o.clients < 1 || o.requests < 1 || o.specs < 1 {
		return nil, fmt.Errorf("%w: -clients, -requests, and -specs must be positive", errUsage)
	}
	if o.sse < 0 || o.sse > 1 {
		return nil, fmt.Errorf("%w: -sse %g outside [0, 1]", errUsage, o.sse)
	}
	if o.tolerance < 0 {
		return nil, fmt.Errorf("%w: -tolerance must be non-negative", errUsage)
	}
	if o.quick {
		if o.requests == 5 {
			o.requests = 2
		}
		if o.specs == 8 {
			o.specs = 4
		}
	}
	return o, nil
}

// cmdLoadtest runs the load-generation harness (internal/loadgen)
// against a serve daemon and reports latency percentiles per outcome
// class plus the accounting cross-check verdict. -out merges the
// measurement into the bench artifact as its "serve" section; -check
// instead gates the run against the committed artifact — any failed
// request, any accounting mismatch, or a warm-p99 more than -tolerance
// above the committed one fails the command.
func cmdLoadtest(args []string) error {
	o, err := parseLoadtestArgs(args)
	if err != nil {
		return usageExit(err)
	}

	base := o.addr
	if base == "" {
		dir := o.cache
		if dir == "" {
			tmp, err := os.MkdirTemp("", "dgrid-loadtest-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		url, shutdown, err := loadgen.Local(o.workers, o.maxRuns, dir, nil)
		if err != nil {
			return err
		}
		defer shutdown()
		base = url
	}

	cfg := loadgen.Config{
		BaseURL:     base,
		Clients:     o.clients,
		Requests:    o.requests,
		Specs:       loadgen.DefaultSpecMix(o.specs),
		SSEFraction: o.sse,
		Seed:        o.seed,
		MaxRetries:  o.retries,
	}
	where := "in-process daemon"
	if o.addr != "" {
		where = o.addr
	}
	fmt.Fprintf(os.Stderr, "dgrid: loadtest %d clients × %d requests (%d-spec mix, sse %.2f) against %s\n",
		o.clients, o.requests, o.specs, o.sse, where)

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	printLoadReport(rep)

	if o.check {
		return loadtestGate(rep, o.baseline, o.tolerance)
	}
	if o.out != "" {
		if err := writeServeSection(o.out, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dgrid: serve section written to %s\n", o.out)
	}
	return rep.Check()
}

// printLoadReport renders the human summary on stderr, artifact-free.
func printLoadReport(r *loadgen.Report) {
	fmt.Fprintf(os.Stderr, "dgrid: loadtest done in %.2fs — %.0f req/s over %d requests (daemon: %d workers, %d max runs)\n",
		r.ElapsedSec, r.RequestsPerSec, r.Requests, r.Workers, r.MaxRuns)
	fmt.Fprintf(os.Stderr, "  %-10s %7s %9s %9s %9s %9s\n", "class", "count", "p50 ms", "p90 ms", "p99 ms", "max ms")
	row := func(name string, s loadgen.Summary) {
		if s.Count == 0 {
			fmt.Fprintf(os.Stderr, "  %-10s %7d %9s %9s %9s %9s\n", name, 0, "-", "-", "-", "-")
			return
		}
		fmt.Fprintf(os.Stderr, "  %-10s %7d %9.2f %9.2f %9.2f %9.2f\n", name, s.Count, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs)
	}
	row("cold", r.Cold)
	row("warm", r.Warm)
	row("deduped", r.Deduped)
	row("rejected", r.Rejected)
	row("ttff(sse)", r.TTFF)
	fmt.Fprintf(os.Stderr, "  429s %d, retries %d, failed %d\n", r.Rejected429, r.Retries, r.Failed)
	a := r.Accounting
	verdict := "ok"
	if err := r.Check(); err != nil {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(os.Stderr,
		"  accounting [%s]: Σmisses %d vs %d new cache entries; admitted %d = completed %d + canceled %d + failed %d; rejected %d; runs drained %v, locks drained %v\n",
		verdict, a.SumMisses, a.NewCacheEntries, a.Admitted, a.Completed, a.Canceled, a.FailedRuns,
		a.Rejected, a.ActiveRunsDrained, a.RunLocksDrained)
}

// loadtestGate is the serve-path regression gate: the hard invariants
// first (zero failures, accounting holds), then the latency SLO — the
// measured warm p99 may not regress more than tolerance above the
// committed artifact's. Warm is the gated class because it is the
// daemon's steady state and the least noisy: cold depends on shard
// compute cost, rejected on backoff luck.
func loadtestGate(rep *loadgen.Report, baselinePath string, tolerance float64) error {
	if err := rep.Check(); err != nil {
		return err
	}
	base, err := readBenchBaseline(baselinePath)
	if err != nil {
		return err
	}
	if base.Serve == nil || base.Serve.Warm.P99Ms <= 0 {
		return fmt.Errorf("loadtest: baseline %s has no serve section to gate against (run `dgrid loadtest -out %s` first)",
			baselinePath, baselinePath)
	}
	committed := base.Serve.Warm.P99Ms
	ceiling := committed * (1 + tolerance)
	fmt.Fprintf(os.Stderr, "dgrid: loadtest check: warm p99 %.2fms vs committed %.2fms (ceiling %.2fms at %.0f%% tolerance)\n",
		rep.Warm.P99Ms, committed, ceiling, tolerance*100)
	if rep.Warm.Count == 0 {
		return fmt.Errorf("loadtest: no warm requests measured; nothing to gate")
	}
	if rep.Warm.P99Ms > ceiling {
		return fmt.Errorf("loadtest: regression: warm p99 %.2fms is %.1f%% above the committed %.2fms (ceiling %.2fms at %.0f%% tolerance)",
			rep.Warm.P99Ms, (rep.Warm.P99Ms/committed-1)*100, committed, ceiling, tolerance*100)
	}
	return nil
}

// writeServeSection merges the load report into the bench artifact as
// its "serve" section, preserving every other committed measurement.
// A missing artifact gets a serve-only document rather than a fully
// zeroed benchResult, so reduced CI runs can write standalone files.
func writeServeSection(path string, rep *loadgen.Report) error {
	res, err := readBenchBaseline(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		b, err := json.MarshalIndent(struct {
			Serve *loadgen.Report `json:"serve"`
		}{rep}, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644)
	}
	res.Serve = rep
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
