package main

import (
	"flag"
	"fmt"
	"time"

	"vmdg/internal/engine"
)

// cmdCache inspects and maintains the on-disk shard cache. Without
// flags it prints the cache location and contents; -prune applies the
// retention caps and -clear empties it.
func cmdCache(args []string) error {
	fs := flag.NewFlagSet("dgrid cache", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory (default: the user cache dir)")
	prune := fs.Bool("prune", false, "apply the retention caps now")
	maxAge := fs.Duration("max-age", engine.DefaultMaxAge, "with -prune: remove entries older than this (0 = no age cap)")
	maxBytes := fs.Int64("max-bytes", engine.DefaultMaxBytes, "with -prune: keep at most this many payload bytes (oldest removed first; 0 = no cap)")
	clear := fs.Bool("clear", false, "remove every cache entry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (cache takes flags only)", fs.Args())
	}
	if *clear && *prune {
		return fmt.Errorf("-clear and -prune are mutually exclusive")
	}

	path := *dir
	if path == "" {
		var err error
		if path, err = engine.DefaultCacheDir(); err != nil {
			return fmt.Errorf("resolving cache dir (use -dir): %w", err)
		}
	}
	fc, err := engine.NewFileCache(path)
	if err != nil {
		return err
	}

	switch {
	case *clear:
		removed, freed, err := fc.Clear()
		if err != nil {
			return err
		}
		fmt.Printf("cleared %d entries (%s) from %s\n", removed, formatBytes(freed), fc.Dir())
	case *prune:
		removed, freed, err := fc.Prune(*maxAge, *maxBytes)
		if err != nil {
			return err
		}
		fmt.Printf("pruned %d entries (%s) from %s\n", removed, formatBytes(freed), fc.Dir())
	}

	st, err := fc.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("cache %s: %d entries, %s", fc.Dir(), st.Entries, formatBytes(st.Bytes))
	if st.Entries > 0 {
		fmt.Printf(", oldest %s ago", time.Since(st.Oldest).Round(time.Minute))
	}
	fmt.Println()

	// Fold manifests: the journals that make interrupted sweeps
	// resumable. A "resumable" manifest is an interrupted run — the
	// same command line picks it up at the cursor shown here.
	mis, err := fc.Manifests().List()
	if err != nil {
		return err
	}
	if len(mis) > 0 {
		fmt.Printf("manifests: %d (%d resumable, %s)\n", st.Manifests, st.Resumable, formatBytes(st.ManifestBytes))
		for _, mi := range mis {
			state := "complete"
			switch {
			case mi.Torn:
				state = "resumable (torn tail)"
			case !mi.Complete:
				state = "resumable"
			}
			fmt.Printf("  %.12s  %4d/%-4d tasks folded  %s\n", mi.Identity, mi.Cursor, mi.Tasks, state)
		}
	}
	return nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
