package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vmdg/internal/engine"
	"vmdg/internal/serve"
)

// cmdCache inspects and maintains the on-disk shard cache. Without
// flags it prints the cache location and contents; -prune applies the
// retention caps, -clear empties it, and -json emits the same report
// as one machine-readable object (operation summaries then go to
// stderr so stdout is exactly the JSON).
func cmdCache(args []string) error {
	fs := flag.NewFlagSet("dgrid cache", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory (default: the user cache dir)")
	prune := fs.Bool("prune", false, "apply the retention caps now")
	maxAge := fs.Duration("max-age", engine.DefaultMaxAge, "with -prune: remove entries older than this (0 = no age cap)")
	maxBytes := fs.Int64("max-bytes", engine.DefaultMaxBytes, "with -prune: keep at most this many payload bytes (oldest removed first; 0 = no cap)")
	clear := fs.Bool("clear", false, "remove every cache entry")
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v (cache takes flags only)", fs.Args())
	}
	if *clear && *prune {
		return fmt.Errorf("-clear and -prune are mutually exclusive")
	}

	path := *dir
	if path == "" {
		var err error
		if path, err = engine.DefaultCacheDir(); err != nil {
			return fmt.Errorf("resolving cache dir (use -dir): %w", err)
		}
	}
	fc, err := engine.NewFileCache(path)
	if err != nil {
		return err
	}
	// Enable the tier the run commands use, so -json reports its
	// configured capacity alongside the disk stats.
	fc.EnableMemTier(engine.DefaultMemTierBytes)

	opOut := os.Stdout
	if *jsonOut {
		opOut = os.Stderr
	}
	switch {
	case *clear:
		removed, freed, err := fc.Clear()
		if err != nil {
			return err
		}
		fmt.Fprintf(opOut, "cleared %d entries (%s) from %s\n", removed, formatBytes(freed), fc.Dir())
	case *prune:
		removed, freed, err := fc.Prune(*maxAge, *maxBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(opOut, "pruned %d entries (%s) from %s\n", removed, formatBytes(freed), fc.Dir())
	}

	// The -json report shares its schema (and builder) with the serve
	// daemon's GET /v1/cache, so scrapers see one format everywhere.
	if *jsonOut {
		rep, err := serve.BuildCacheReport(fc)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		os.Stdout.Write(b)
		return nil
	}

	st, err := fc.Stats()
	if err != nil {
		return err
	}
	mis, err := fc.Manifests().List()
	if err != nil {
		return err
	}

	fmt.Printf("cache %s: %d entries, %s", fc.Dir(), st.Entries, formatBytes(st.Bytes))
	if st.Entries > 0 {
		fmt.Printf(", oldest %s ago", time.Since(st.Oldest).Round(time.Minute))
	}
	fmt.Println()
	if st.ActiveRuns > 0 {
		fmt.Printf("active runs: %d (their journaled payloads are prune-protected; -clear refuses)\n", st.ActiveRuns)
	}

	// Fold manifests: the journals that make interrupted sweeps
	// resumable. A "resumable" manifest is an interrupted run — the
	// same command line picks it up at the cursor shown here.
	if len(mis) > 0 {
		fmt.Printf("manifests: %d (%d resumable, %s)\n", st.Manifests, st.Resumable, formatBytes(st.ManifestBytes))
		for _, mi := range mis {
			state := "complete"
			switch {
			case mi.Torn:
				state = "resumable (torn tail)"
			case !mi.Complete:
				state = "resumable"
			}
			fmt.Printf("  %.12s  %4d/%-4d tasks folded  %s\n", mi.Identity, mi.Cursor, mi.Tasks, state)
		}
	}
	return nil
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
