package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vmdg/internal/core"
	"vmdg/internal/engine"
)

// runFlags are the engine options shared by `dgrid run` and
// `dgrid report`.
type runFlags struct {
	workers int
	seed    uint64
	reps    int
	quick   bool
	cache   string
	resume  bool
	verbose bool
	quiet   bool
}

func (f *runFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&f.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.Uint64Var(&f.seed, "seed", 1, "experiment seed (runs are deterministic per seed)")
	fs.IntVar(&f.reps, "reps", 3, "measurement repetitions per data point")
	fs.BoolVar(&f.quick, "quick", false, "trim workload sizes (faster, noisier)")
	fs.StringVar(&f.cache, "cache", "", "shard cache directory; 'off' disables (default: the user cache dir)")
	fs.BoolVar(&f.resume, "resume", true, "journal fold progress and resume an interrupted identical run (needs the cache)")
	fs.BoolVar(&f.verbose, "v", false, "log per-shard progress to stderr")
	fs.BoolVar(&f.quiet, "quiet", false, "suppress progress and summary lines on stderr")
}

func (f *runFlags) config() core.Config {
	return core.Config{Seed: f.seed, Reps: f.reps, Quick: f.quick}
}

// runner builds the pool from the flags.
func (f *runFlags) runner() (*engine.Runner, error) {
	return newRunner(f.workers, f.cache, f.resume, f.verbose)
}

// newRunner builds a worker pool (shared by run, report, fleet, and
// sweep). Progress and summary lines go to stderr so stdout stays
// bit-identical across worker counts and cache states. With resume (the
// default) and an on-disk cache, the runner journals fold progress to
// the cache's manifest store, so a killed run picks up where it folded.
func newRunner(workers int, cache string, resume, verbose bool) (*engine.Runner, error) {
	r := &engine.Runner{Workers: workers}
	switch cache {
	case "off":
	case "":
		dir, err := engine.DefaultCacheDir()
		if err != nil {
			return nil, fmt.Errorf("resolving cache dir (use -cache DIR or -cache off): %w", err)
		}
		if r.Cache, err = engine.NewFileCache(dir); err != nil {
			return nil, err
		}
	default:
		var err error
		if r.Cache, err = engine.NewFileCache(cache); err != nil {
			return nil, err
		}
	}
	// Keep the on-disk cache inside its retention caps on every run —
	// stale builds' entries never hit again (the key embeds the build
	// fingerprint), so without this the directory only ever grows.
	// Best-effort: a prune failure is at worst future cache misses.
	// Prune runs before the manifest store is handed to the runner, so
	// any journal whose payloads it evicts is truncated first and the
	// run's resume point is already consistent.
	if fc, ok := r.Cache.(*engine.FileCache); ok {
		// Warm replays within this process serve shard payloads from
		// memory instead of re-reading their files; disk stays the
		// durable tier underneath.
		fc.EnableMemTier(engine.DefaultMemTierBytes)
		fc.Prune(engine.DefaultMaxAge, engine.DefaultMaxBytes)
		if resume {
			r.Manifests = fc.Manifests()
		}
	}
	if verbose {
		r.OnEvent = func(ev engine.Event) {
			switch ev.Kind {
			case engine.EventShardComputed:
				fmt.Fprintf(os.Stderr, "dgrid: ran %s shard %d/%d\n", ev.Experiment, ev.Shard+1, ev.Shards)
			case engine.EventShardCached:
				fmt.Fprintf(os.Stderr, "dgrid: cached %s shard %d/%d\n", ev.Experiment, ev.Shard+1, ev.Shards)
			case engine.EventExperimentMerged:
				fmt.Fprintf(os.Stderr, "dgrid: merged %s\n", ev.Experiment)
			}
		}
	}
	return r, nil
}

func summarize(stats engine.Stats) {
	if stats.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "dgrid: resumed from manifest: %d tasks verified and replayed from cache\n",
			stats.Resumed)
	}
	fmt.Fprintf(os.Stderr, "dgrid: %d experiments, %d shards (%d cached, %d computed) in %s\n",
		stats.Experiments, stats.Shards, stats.Hits, stats.Misses, stats.Elapsed.Round(stats.Elapsed/100+1))
	if stats.FlightHits > 0 || stats.FlightShared > 0 {
		fmt.Fprintf(os.Stderr, "dgrid: single-flight: took %d shards from concurrent runs, handed %d to them\n",
			stats.FlightHits, stats.FlightShared)
	}
}

// cmdRun executes experiments and prints their reports in registry
// order.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("dgrid run", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	csv := fs.Bool("csv", false, "emit CSV instead of ASCII charts")
	out := fs.String("out", "", "also write per-experiment JSON and CSV artifacts to this directory")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dgrid run <names|all> [flags]\n\nnames is 'all' or a comma-separated experiment list (see 'dgrid list')")
		fs.PrintDefaults()
	}

	// Accept the selection before or after the flags: `dgrid run fig1
	// -workers 8` and `dgrid run -workers 8 fig1` both work.
	names := ""
	rest := args
	if len(rest) > 0 && rest[0] != "" && rest[0][0] != '-' {
		names, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	switch {
	case fs.NArg() == 0:
	case fs.NArg() == 1 && names == "":
		names = fs.Arg(0)
	default:
		return fmt.Errorf("unexpected arguments %v (give one selection, before or after the flags)", fs.Args())
	}
	if names == "" {
		names = "all"
	}

	exps, err := engine.Default.Select(names)
	if err != nil {
		return err
	}
	runner, err := rf.runner()
	if err != nil {
		return err
	}
	outcomes, stats, err := runner.Run(rf.config(), exps)
	if err != nil {
		return err
	}
	engine.Emit(os.Stdout, outcomes, *csv)
	if *out != "" {
		if err := writeArtifacts(*out, outcomes); err != nil {
			return err
		}
	}
	if !rf.quiet {
		summarize(stats)
	}
	return nil
}

// writeArtifacts stores each outcome as <dir>/<name>.json (the merged
// payload) and, for experiments with tabular data, <dir>/<name>.csv.
func writeArtifacts(dir string, outcomes []*engine.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, o := range outcomes {
		if err := os.WriteFile(filepath.Join(dir, o.Name+".json"), o.Raw, 0o644); err != nil {
			return err
		}
		if c := o.CSV(); c != "" {
			if err := os.WriteFile(filepath.Join(dir, o.Name+".csv"), []byte(c), 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "dgrid: wrote %d artifacts to %s\n", len(outcomes), dir)
	return nil
}

// cmdList prints the experiment catalog.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("dgrid list", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	fmt.Printf("%-14s %-12s %7s  %s\n", "name", "kind", "shards", "title")
	for _, e := range engine.Default.Experiments() {
		fmt.Printf("%-14s %-12s %7d  %s\n", e.Name(), e.Kind(), e.Shards(cfg), e.Title())
	}
	return nil
}

// cmdReport regenerates the paper-vs-measured markdown artifact from
// every registered experiment.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("dgrid report", flag.ExitOnError)
	var rf runFlags
	rf.register(fs)
	out := fs.String("o", "EXPERIMENTS.md", "output file ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner, err := rf.runner()
	if err != nil {
		return err
	}
	outcomes, stats, err := runner.Run(rf.config(), engine.Default.Experiments())
	if err != nil {
		return err
	}
	md := engine.ExperimentsMarkdown(rf.config(), outcomes)
	if *out == "-" {
		fmt.Print(md)
	} else if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		return err
	}
	if !rf.quiet {
		summarize(stats)
	}
	return nil
}
