package main

import (
	"flag"
	"fmt"
	"runtime"

	"vmdg/internal/serve"
)

// cmdVersion prints the build identity — the same string GET /healthz
// returns, so a daemon and its CLI can be matched exactly.
func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("dgrid version", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("dgrid %s %s\n", serve.Version(), runtime.Version())
	return nil
}
