package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// multiFlag collects a repeatable string flag (-set a=1 -set b=2).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// sweepOpts is everything `dgrid sweep` parses from its arguments: the
// normalized, validated spec plus the runner and output switches.
type sweepOpts struct {
	spec    grid.Spec
	workers int
	cache   string
	resume  bool
	jsonOut bool
	csv     bool
	out     string
	verbose bool
	quiet   bool
}

// parseSweepArgs parses the sweep command line into a validated spec:
// the -spec file (if any) first, then -set overrides in order, then
// the -seed/-quick scalars.
func parseSweepArgs(args []string) (*sweepOpts, error) {
	fs := flag.NewFlagSet("dgrid sweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (JSON; see examples/sweep.json)")
	var sets multiFlag
	fs.Var(&sets, "set", "override a spec axis, e.g. -set policy=fifo,deadline (repeatable; axes: "+
		strings.Join(grid.AxisNames(), ", ")+"; scalars: seed, quick, envs, name)")
	seed := fs.Uint64("seed", 0, "override the spec's seed (0: use the spec's)")
	quick := fs.Bool("quick", false, "trim calibration windows on every point (faster, noisier)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "shard cache directory; 'off' disables (default: the user cache dir)")
	resume := fs.Bool("resume", true, "journal fold progress and resume an interrupted identical sweep (needs the cache)")
	jsonOut := fs.Bool("json", false, "emit the merged JSON payload instead of the table")
	csv := fs.Bool("csv", false, "emit CSV instead of the table")
	out := fs.String("out", "", "also write sweep.json and sweep.csv artifacts to this directory")
	verbose := fs.Bool("v", false, "log per-shard progress to stderr")
	quiet := fs.Bool("quiet", false, "suppress progress and summary lines on stderr")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: dgrid sweep [-spec file.json] [-set axis=v1,v2,...] [flags]\n\n"+
			"a spec describes a family of fleet scenarios; every multi-value axis is swept\n"+
			"and the cartesian grid runs as one cached, worker-count-invariant experiment")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		// Parse already printed the message and usage to stderr.
		return nil, fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %v (sweep takes flags only)", fs.Args())
	}

	sp := grid.Spec{Version: grid.SpecVersion}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return nil, err
		}
		if sp, err = grid.ParseSpec(data); err != nil {
			return nil, err
		}
	}
	for _, assign := range sets {
		if err := sp.Set(assign); err != nil {
			return nil, err
		}
	}
	if *seed != 0 {
		sp.Seed = *seed
	}
	if *quick {
		sp.Quick = true
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sweepOpts{
		spec:    sp,
		workers: *workers,
		cache:   *cache,
		resume:  *resume,
		jsonOut: *jsonOut,
		csv:     *csv,
		out:     *out,
		verbose: *verbose,
		quiet:   *quiet,
	}, nil
}

// cmdSweep runs a declarative scenario sweep: a grid.Spec (from a JSON
// file, -set overrides, or both) expands into its cartesian grid of
// scenarios, every point runs through the engine's worker pool and
// shard cache, and the output is one merged table/CSV/JSON keyed by
// the swept axis values. Each point is its own cache scope, so
// re-running a sweep with one axis widened simulates only the new
// points.
func cmdSweep(args []string) error {
	o, err := parseSweepArgs(args)
	if err != nil {
		return usageExit(err)
	}
	sp := o.spec
	exp, err := engine.NewSweep("sweep", "command-line scenario sweep", sp)
	if err != nil {
		return err
	}
	runner, err := newRunner(o.workers, o.cache, o.resume, o.verbose)
	if err != nil {
		return err
	}
	if !o.verbose && !o.quiet {
		runner.OnEvent = progressLine("sweep")
	}
	// The spec governs seed and quick: copy them into the run config
	// so cache keys and scenario resolution agree.
	cfg := core.Config{Seed: sp.Seed, Quick: sp.Quick}
	if axes := sp.SweptAxes(); len(axes) > 0 && !o.quiet {
		fmt.Fprintf(os.Stderr, "dgrid: sweeping %d points over %s\n", sp.NPoints(), strings.Join(axes, " × "))
	}
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{exp})
	if err != nil {
		return err
	}
	res := outcomes[0]
	switch {
	case o.jsonOut:
		os.Stdout.Write(append(res.Raw, '\n'))
	case o.csv:
		fmt.Print(res.CSV())
	default:
		fmt.Println(res.Render())
	}
	if o.out != "" {
		if err := writeArtifacts(o.out, outcomes); err != nil {
			return err
		}
	}
	if !o.quiet {
		summarize(stats)
	}
	return nil
}
