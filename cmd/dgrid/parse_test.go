package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vmdg/internal/grid"
)

// TestParseFleetDefaults: a bare `dgrid fleet` must run exactly the
// spec layer's default point — the CLI adds nothing of its own.
func TestParseFleetDefaults(t *testing.T) {
	o, err := parseFleetArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := grid.Spec{}.Normalize().Points()
	if err != nil {
		t.Fatal(err)
	}
	want := pts[0].Scenario
	want.Seed = grid.DefaultSeed
	if !reflect.DeepEqual(o.scn, want) {
		t.Fatalf("default fleet scenario\n%+v\nwant\n%+v", o.scn, want)
	}
	if o.scn.Migration != "none" || o.scn.BandwidthMbps != grid.DefaultBandwidthMbps {
		t.Fatalf("migration defaults wrong: %+v", o.scn)
	}
}

// TestParseFleetFlags: every flag lands on its scenario field,
// including the migration axes.
func TestParseFleetFlags(t *testing.T) {
	o, err := parseFleetArgs([]string{
		"-machines", "1000", "-minutes", "200", "-churn", "-policy", "deadline",
		"-deadline", "45", "-faulty", "0.1", "-env", "qemu", "-seed", "9",
		"-migration", "on-departure", "-bandwidth", "250",
		"-workers", "3", "-quick", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	scn := o.scn
	if scn.Machines != 1000 || scn.Minutes != 200 || !scn.Churn || scn.Policy != "deadline" ||
		scn.DeadlineMin != 45 || scn.FaultyFrac != 0.1 || scn.Seed != 9 ||
		!reflect.DeepEqual(scn.Envs, []string{"qemu"}) {
		t.Fatalf("flags not applied: %+v", scn)
	}
	if scn.Migration != "on-departure" || scn.BandwidthMbps != 250 {
		t.Fatalf("migration flags not applied: %+v", scn)
	}
	if o.workers != 3 || !o.quick || !o.csv || o.jsonOut {
		t.Fatalf("runner/output flags not applied: %+v", o)
	}
}

// TestParseResumeFlag: fold journaling is on by default and
// -resume=false opts out, identically on fleet and sweep.
func TestParseResumeFlag(t *testing.T) {
	if o, err := parseFleetArgs(nil); err != nil || !o.resume {
		t.Fatalf("fleet default: resume=%v err=%v, want on", o != nil && o.resume, err)
	}
	if o, err := parseFleetArgs([]string{"-resume=false"}); err != nil || o.resume {
		t.Fatalf("fleet -resume=false not applied: %+v err=%v", o, err)
	}
	if o, err := parseSweepArgs([]string{"-set", "envs=vmplayer"}); err != nil || !o.resume {
		t.Fatalf("sweep default: resume=%v err=%v, want on", o != nil && o.resume, err)
	}
	if o, err := parseSweepArgs([]string{"-set", "envs=vmplayer", "-resume=false"}); err != nil || o.resume {
		t.Fatalf("sweep -resume=false not applied: %+v err=%v", o, err)
	}
}

// TestParseFleetErrors covers the flag-validation error paths with
// their user-facing messages.
func TestParseFleetErrors(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"zero machines", []string{"-machines", "0"}, "-machines 0 outside"},
		{"machines beyond cap", []string{"-machines", "10000001"}, "-machines 10000001 outside"},
		{"zero minutes", []string{"-minutes", "0"}, "-minutes 0 outside"},
		{"replication beyond machines", []string{"-machines", "3", "-policy", "replication", "-replication", "4"},
			"-replication 4 outside"},
		{"unknown policy", []string{"-policy", "lifo"}, "unknown policy"},
		{"unknown env", []string{"-env", "xen"}, "unknown environment"},
		{"unknown migration", []string{"-migration", "live"}, `unknown migration policy "live"`},
		{"zero bandwidth", []string{"-bandwidth", "0"}, "bandwidth value 0 must be positive"},
		{"negative bandwidth", []string{"-bandwidth", "-40"}, "bandwidth value -40 must be positive"},
		{"positional args", []string{"10000"}, "unexpected arguments"},
		{"unknown flag", []string{"-cores", "4"}, "not defined"},
	} {
		_, err := parseFleetArgs(tc.args)
		if err == nil {
			t.Fatalf("%s: accepted %v", tc.name, tc.args)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestParseSweepSets: -set overrides (including integer ranges and the
// migration axes) land on the spec in order.
func TestParseSweepSets(t *testing.T) {
	o, err := parseSweepArgs([]string{
		"-set", "machines=64..256*2",
		"-set", "minutes=10..30+10",
		"-set", "policy=fifo,deadline",
		"-set", "migration=none,on-departure,eager",
		"-set", "bandwidth=100,1000",
		"-set", "envs=vmplayer",
		"-seed", "7", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := o.spec
	if !reflect.DeepEqual(sp.Machines, []int{64, 128, 256}) ||
		!reflect.DeepEqual(sp.Minutes, []int{10, 20, 30}) ||
		!reflect.DeepEqual(sp.Policy, []string{"fifo", "deadline"}) {
		t.Fatalf("sets not applied: %+v", sp)
	}
	if !reflect.DeepEqual(sp.Migration, []string{"none", "on-departure", "eager"}) ||
		!reflect.DeepEqual(sp.Bandwidth, []float64{100, 1000}) {
		t.Fatalf("migration axes not applied: %+v", sp)
	}
	if sp.Seed != 7 || !sp.Quick {
		t.Fatalf("scalar overrides not applied: seed=%d quick=%t", sp.Seed, sp.Quick)
	}
	if got := sp.NPoints(); got != 3*3*2*3*2 {
		t.Fatalf("expansion = %d points", got)
	}
}

// TestParseSweepSpecFileAndOverride: a spec file loads, and later -set
// flags override its axes.
func TestParseSweepSpecFileAndOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := `{"version":1,"name":"f","envs":["vmplayer"],"machines":[64],"migration":["eager"],"bandwidth":[100]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := parseSweepArgs([]string{"-spec", path, "-set", "migration=none,on-departure"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.spec.Migration, []string{"none", "on-departure"}) {
		t.Fatalf("-set did not override the file: %v", o.spec.Migration)
	}
	if !reflect.DeepEqual(o.spec.Bandwidth, []float64{100}) || o.spec.Name != "f" {
		t.Fatalf("file fields lost: %+v", o.spec)
	}
}

// TestParseSweepErrors covers the sweep's error paths, -set range
// syntax edge cases included.
func TestParseSweepErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.json")
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"machines":[64]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown axis", []string{"-set", "cores=4"}, "unknown axis"},
		{"missing equals", []string{"-set", "machines"}, "axis=value"},
		{"descending range", []string{"-set", "machines=256..64"}, "descending"},
		{"mul step below 2", []string{"-set", "machines=64..256*1"}, "*k step"},
		{"add step below 1", []string{"-set", "minutes=10..30+0"}, "+k step"},
		{"range too wide", []string{"-set", "machines=1..100000"}, "expands past"},
		{"not an integer", []string{"-set", "machines=a..b"}, "not an integer"},
		{"zero bandwidth", []string{"-set", "bandwidth=0"}, "bandwidth"},
		{"bad migration point", []string{"-set", "migration=live", "-set", "envs=vmplayer"},
			"unknown migration policy"},
		{"spec file missing", []string{"-spec", missing}, "no such file"},
		{"spec file versionless", []string{"-spec", bad}, "no version"},
		{"positional args", []string{"run"}, "unexpected arguments"},
	} {
		_, err := parseSweepArgs(tc.args)
		if err == nil {
			t.Fatalf("%s: accepted %v", tc.name, tc.args)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestParseQuietFlag: -quiet lands on every command that draws
// progress/summary lines.
func TestParseQuietFlag(t *testing.T) {
	fo, err := parseFleetArgs([]string{"-quiet"})
	if err != nil || !fo.quiet {
		t.Fatalf("fleet -quiet: %+v, %v", fo, err)
	}
	so, err := parseSweepArgs([]string{"-quiet"})
	if err != nil || !so.quiet {
		t.Fatalf("sweep -quiet: %+v, %v", so, err)
	}
	if fo2, _ := parseFleetArgs(nil); fo2.quiet {
		t.Fatal("fleet is quiet by default")
	}
}

// TestParseServeArgs: defaults, overrides, and the rejections that keep
// the daemon coherent (it exists to share a cache).
func TestParseServeArgs(t *testing.T) {
	o, err := parseServeArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8787" || !o.resume || o.maxRuns != 0 || o.drain <= 0 {
		t.Fatalf("serve defaults: %+v", o)
	}
	o, err = parseServeArgs([]string{
		"-addr", ":9000", "-cache", "/tmp/c", "-workers", "4",
		"-max-runs", "2", "-drain", "5s", "-resume=false",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9000" || o.cache != "/tmp/c" || o.workers != 4 ||
		o.maxRuns != 2 || o.drain != 5*time.Second || o.resume {
		t.Fatalf("serve flags not applied: %+v", o)
	}
	if _, err := parseServeArgs([]string{"-cache", "off"}); err == nil {
		t.Fatal("serve accepted -cache off")
	}
	if _, err := parseServeArgs([]string{"positional"}); err == nil {
		t.Fatal("serve accepted positional arguments")
	}
}
