// Command dgrid is the reproduction's experiment driver: a subcommand
// CLI over the parallel experiment engine (internal/engine) plus the
// original desktop-grid fleet simulation.
//
//	dgrid list                      # catalog of registered experiments
//	dgrid run all                   # every experiment, ASCII + paper bands
//	dgrid run fig4 -workers 8       # one figure across 8 workers
//	dgrid run fig1,fig3 -csv        # machine-readable output
//	dgrid run all -out artifacts/   # also write per-experiment JSON/CSV
//	dgrid report -o EXPERIMENTS.md  # paper-vs-measured markdown artifact
//	dgrid fleet -machines 10000 -churn -policy deadline
//	                                # churn-aware volunteer-fleet simulation
//	dgrid fleet -machines 1000000 -minutes 480
//	                                # million-host fleet, a working day
//	dgrid fleet -machines 10000 -churn -migration on-departure -bandwidth 100
//	                                # churned-off hosts migrate their VM
//	                                # checkpoints over the modeled network
//	dgrid sweep -spec examples/sweep.json
//	                                # declarative scenario sweep: the spec's
//	                                # multi-value axes expand into a cached,
//	                                # axis-keyed cartesian grid of fleets
//	dgrid sweep -set policy=fifo,deadline -set machines=256..1024*2
//	                                # the same, from axis overrides alone
//	dgrid bench -out BENCH_fleet.json
//	                                # fleet throughput benchmark artifact
//	dgrid cache -prune              # shard-cache retention maintenance
//	dgrid cache                     # cache contents + resumable manifests
//	dgrid serve -addr :8787         # sweep daemon: POST /v1/sweeps, shared
//	                                # pool/cache/single-flight across clients
//	dgrid loadtest -clients 200     # drive a daemon with a client fleet:
//	                                # latency percentiles per outcome class,
//	                                # accounting cross-checks, bench artifact
//	dgrid version                   # build identity (matches /healthz)
//
// Experiment runs are deterministic per seed and independent of the
// worker count: `dgrid run all -workers 1` and `-workers 8` emit
// bit-identical output. Completed shards are cached on disk (keyed by
// experiment × seed × parameters), so repeated invocations skip work
// already done; -cache off disables this.
//
// Runs over the on-disk cache are also durable: the fold journals its
// progress to a manifest alongside the cache, so a crashed or killed
// sweep re-run with the same arguments resumes at the first unfolded
// shard and replays the rest from cache — byte-identical to an
// uninterrupted run. -resume=false opts out.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
)

func main() {
	// Fleet simulations are batch computations whose live heap is small
	// (streamed merges, pooled events) but whose allocation rate is
	// high; the default GOGC spends a measurable slice of every run in
	// the collector. Trade a little headroom for throughput unless the
	// operator set their own policy.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "run":
		err = cmdRun(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	case "version":
		err = cmdVersion(os.Args[2:])
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "dgrid: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgrid:", err)
		os.Exit(1)
	}
}

// errUsage tags a malformed command line. The parse functions use
// flag.ContinueOnError so they stay testable; usageExit restores the
// CLI's historical exit-code contract (2 for usage errors, 1 for run
// failures) that flag.ExitOnError used to provide.
var errUsage = errors.New("usage error")

// usageExit converts a parse error into the command's return: help is
// not an error, a usage error exits 2 on the spot (the flag package
// already printed it), and anything else propagates as a run failure.
func usageExit(err error) error {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return nil
	case errors.Is(err, errUsage):
		os.Exit(2)
		return nil // unreachable
	default:
		return err
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: dgrid <command> [flags]

commands:
  list             list every registered experiment
  run <names|all>  run experiments (comma-separated names) on a worker pool
  report           regenerate the paper-vs-measured EXPERIMENTS.md tables
  fleet            simulate a churn-aware volunteer desktop-grid fleet
  sweep            run a declarative scenario sweep (spec file / -set axes)
  bench            benchmark the fleet pipeline, write BENCH_fleet.json
  cache            show, prune, or clear the on-disk shard cache
  serve            serve sweeps over HTTP from one shared pool and cache
  loadtest         drive a serve daemon with a concurrent client fleet
  version          print the build identity (module version, VCS revision)
  help             show this message

run 'dgrid <command> -h' for the command's flags
`)
}
