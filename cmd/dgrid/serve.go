package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vmdg/internal/engine"
	"vmdg/internal/serve"
)

// serveOpts is everything `dgrid serve` parses from its arguments.
type serveOpts struct {
	addr    string
	cache   string
	workers int
	maxRuns int
	drain   time.Duration
	resume  bool
}

// parseServeArgs parses the serve command line.
func parseServeArgs(args []string) (*serveOpts, error) {
	fs := flag.NewFlagSet("dgrid serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8787", "listen address")
	cache := fs.String("cache", "", "shard cache directory shared by every request (default: the user cache dir)")
	workers := fs.Int("workers", 0, "shared worker pool size bounding the whole daemon (0 = GOMAXPROCS)")
	maxRuns := fs.Int("max-runs", 0, "concurrent sweep runs admitted; excess requests get 429 (0 = 2× workers)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for active runs on SIGTERM/SIGINT")
	resume := fs.Bool("resume", true, "journal every run's fold so a killed daemon resumes interrupted sweeps")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: dgrid serve [flags]\n\n"+
			"serve sweeps over HTTP: POST a grid.Spec to /v1/sweeps (SSE progress with\n"+
			"Accept: text/event-stream), GET /healthz and /v1/cache for daemon state.\n"+
			"all requests share one worker pool, shard cache, and single-flight group")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments %v (serve takes flags only)", fs.Args())
	}
	if *cache == "off" {
		return nil, fmt.Errorf("-cache off: the daemon's whole point is a shared cache; give it a directory")
	}
	return &serveOpts{
		addr:    *addr,
		cache:   *cache,
		workers: *workers,
		maxRuns: *maxRuns,
		drain:   *drain,
		resume:  *resume,
	}, nil
}

// cmdServe runs the sweep daemon: one shared worker pool, one shared
// mem-tiered shard cache, and one single-flight group under an HTTP
// surface, so many clients drive the simulator concurrently at ~1× the
// work. SIGTERM/SIGINT stops accepting requests and drains active runs
// within the -drain budget — a run cut off by the deadline leaves its
// fold journal resumable, like any killed sweep.
func cmdServe(args []string) error {
	o, err := parseServeArgs(args)
	if err != nil {
		return usageExit(err)
	}

	dir := o.cache
	if dir == "" {
		if dir, err = engine.DefaultCacheDir(); err != nil {
			return fmt.Errorf("resolving cache dir (use -cache DIR): %w", err)
		}
	}
	fc, err := engine.NewFileCache(dir)
	if err != nil {
		return err
	}
	fc.EnableMemTier(engine.DefaultMemTierBytes)
	fc.Prune(engine.DefaultMaxAge, engine.DefaultMaxBytes)

	pool := engine.DefaultPool()
	if o.workers > 0 {
		pool = engine.NewPool(o.workers)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	s := &serve.Server{
		Pool:    pool,
		Cache:   fc,
		MaxRuns: o.maxRuns,
		Resume:  o.resume,
		Log:     log,
	}
	srv := &http.Server{Addr: o.addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("dgrid serve listening",
		"addr", o.addr, "cache", fc.Dir(), "workers", pool.Workers(),
		"version", serve.Version(), "go", runtime.Version())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Info("draining", "budget", o.drain.String())
		dctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		// Shutdown stops the listener and waits for in-flight requests;
		// it does not cancel their contexts, so active runs complete
		// (and seal their manifest journals) unless the budget expires.
		if err := srv.Shutdown(dctx); err != nil {
			log.Warn("drain budget expired; interrupted folds stay resumable", "err", err)
			return nil
		}
		log.Info("drained")
		return nil
	}
}
