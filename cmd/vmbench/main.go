// Command vmbench regenerates the figures of "Evaluating the Performance
// and Intrusiveness of Virtual Machines for Desktop Grid Computing"
// (Domingues, Araujo & Silva, IPDPS 2009 workshops) on the vmdg simulated
// testbed.
//
// Usage:
//
//	vmbench                    # all figures, standard sizes
//	vmbench -figure fig4       # one figure
//	vmbench -quick -reps 2     # fast pass
//	vmbench -csv               # machine-readable output
//	vmbench -figure ablations  # timing/migration/memory ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vmdg/internal/core"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure to regenerate: all, fig1..fig8, figFP, ablations")
		seed   = flag.Uint64("seed", 1, "experiment seed (runs are deterministic per seed)")
		reps   = flag.Int("reps", 3, "measurement repetitions per data point")
		quick  = flag.Bool("quick", false, "trim workload sizes (faster, noisier)")
		csv    = flag.Bool("csv", false, "emit CSV instead of ASCII charts")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed, Reps: *reps, Quick: *quick}
	if err := run(cfg, strings.ToLower(*figure), *csv); err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}

var figureFns = map[string]func(core.Config) (*core.Result, error){
	"fig1": core.Figure1, "fig2": core.Figure2, "fig3": core.Figure3,
	"fig4": core.Figure4, "fig5": core.Figure5, "fig6": core.Figure6,
	"figfp": core.FigureFP, "fig7": core.Figure7, "fig8": core.Figure8,
}

func run(cfg core.Config, figure string, csv bool) error {
	switch figure {
	case "all":
		results, err := core.AllFigures(cfg)
		if err != nil {
			return err
		}
		for _, r := range results {
			emit(r, csv)
		}
		return runAblations(cfg)
	case "ablations":
		return runAblations(cfg)
	default:
		fn, ok := figureFns[figure]
		if !ok {
			return fmt.Errorf("unknown figure %q (want all, fig1..fig8, figFP, ablations)", figure)
		}
		r, err := fn(cfg)
		if err != nil {
			return err
		}
		emit(r, csv)
		return nil
	}
}

func emit(r *core.Result, csv bool) {
	if csv {
		fmt.Printf("# %s\n%s", r.ID, r.Figure.CSV())
		if r.Series != nil {
			fmt.Printf("# %s series\n%s", r.ID, r.Series.CSV())
		}
		return
	}
	fmt.Println(r.Figure.Render())
	if r.Series != nil {
		fmt.Println(r.Series.Render())
	}
	if band, ok := core.PaperTargets[r.ID]; ok {
		fmt.Println("paper comparison:")
		for label, b := range band {
			got := r.Values[label]
			verdict := "OK"
			if !b.In(got) {
				verdict = "OUTSIDE BAND"
			}
			fmt.Printf("  %-16s paper %-8.4g measured %-8.4g band [%.4g, %.4g]  %s\n",
				label, b.Paper, got, b.Lo, b.Hi, verdict)
		}
		fmt.Println()
	}
}

func runAblations(cfg core.Config) error {
	ts, err := core.TimesyncAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A1 — external UDP timing (§2 methodology)")
	fmt.Printf("  work unit true duration : %8.3f s\n", ts.TrueSeconds)
	fmt.Printf("  guest-clock measurement : %8.3f s (error %.1f%%)\n", ts.GuestSeconds, ts.GuestErr*100)
	fmt.Printf("  UDP-corrected           : %8.3f s (error %.2f%%)\n\n", ts.CorrectedSeconds, ts.CorrectedErr*100)

	mig, err := core.MigrationAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A3 — checkpoint and migration (§1)")
	fmt.Printf("  chunks done on machine A: %d\n", mig.ChunksBeforeMigration)
	fmt.Printf("  chunks restored on B    : %d\n", mig.ChunksAfterRestore)
	fmt.Printf("  checkpoint blob         : %d bytes (overlay %d bytes)\n", mig.CheckpointBytes, mig.OverlayBytes)
	fmt.Printf("  unit completed on B     : %v\n\n", mig.UnitCompleted)

	mem, err := core.MemoryFootprint()
	if err != nil {
		return err
	}
	fmt.Println(mem.Figure.Render())

	udp, err := core.UDPLossExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Extension X1 — iperf -u: 10 Mbps UDP flood per network path")
	for _, r := range udp {
		fmt.Printf("  %-14s delivered %6.2f Mbps  loss %5.1f%%  drops %d\n",
			r.Env, r.DeliveredMbps, r.LossFraction*100, r.Drops)
	}
	fmt.Println()

	conf, err := core.ConfinementExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Extension — VM core confinement (work-conservation negative result)")
	fmt.Printf("  host 7z 2-thread availability: unpinned %.1f%%, pinned %.1f%%\n\n",
		conf.UnpinnedPct, conf.PinnedPct)

	multi, err := core.MultiVMExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Extension A5 — one VM instance per core (shared base image)")
	fmt.Printf("  work units: 1 VM = %d, 2 VMs = %d (scaling %.2fx)\n",
		multi.UnitsOneVM, multi.UnitsTwoVMs, multi.Scaling)
	return nil
}
