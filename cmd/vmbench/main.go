// Command vmbench regenerates the figures of "Evaluating the Performance
// and Intrusiveness of Virtual Machines for Desktop Grid Computing"
// (Domingues, Araujo & Silva, IPDPS 2009 workshops) on the vmdg simulated
// testbed. It is a thin front end over the parallel experiment engine
// (internal/engine); `dgrid run` is the fuller subcommand interface.
//
// Usage:
//
//	vmbench                    # all figures + ablations, standard sizes
//	vmbench -figure fig4       # one figure
//	vmbench -quick -reps 2     # fast pass
//	vmbench -csv               # machine-readable output
//	vmbench -figure ablations  # ablation/sensitivity/extension set only
//	vmbench -workers 8         # size the worker pool explicitly
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/engine"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "what to regenerate: all, fig1..fig8, figFP, ablations, or any name from 'dgrid list'")
		seed    = flag.Uint64("seed", 1, "experiment seed (runs are deterministic per seed)")
		reps    = flag.Int("reps", 3, "measurement repetitions per data point")
		quick   = flag.Bool("quick", false, "trim workload sizes (faster, noisier)")
		csv     = flag.Bool("csv", false, "emit CSV instead of ASCII charts")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed, Reps: *reps, Quick: *quick}
	if err := run(cfg, *figure, *csv, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}

func run(cfg core.Config, figure string, csv bool, workers int) error {
	var exps []engine.Experiment
	switch strings.ToLower(figure) {
	case "ablations":
		exps = engine.Default.ByKind(engine.KindAblation, engine.KindSensitivity, engine.KindExtension)
	default:
		var err error
		if exps, err = engine.Default.Select(figure); err != nil {
			return err
		}
	}
	runner := &engine.Runner{Workers: workers}
	outcomes, _, err := runner.Run(cfg, exps)
	if err != nil {
		return err
	}
	engine.Emit(os.Stdout, outcomes, csv)
	return nil
}
