// Command timeserver runs the real UDP time service of the paper's
// methodology (§4): "a simple UDP time server running on the host
// machine" that measurement harnesses query to sidestep unreliable guest
// clocks. The wire protocol is implemented in vmdg/internal/timesync.
//
// Usage:
//
//	timeserver -addr :3737          # serve
//	timeserver -query host:3737     # one-shot client: print offset and RTT
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vmdg/internal/timesync"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:3737", "address to bind")
		query = flag.String("query", "", "query a running server instead of serving")
	)
	flag.Parse()

	if *query != "" {
		offset, rtt, err := timesync.Query(*query, 3*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeserver:", err)
			os.Exit(1)
		}
		fmt.Printf("offset %v  rtt %v\n", offset, rtt)
		return
	}

	srv, err := timesync.NewServer(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "timeserver:", err)
		os.Exit(1)
	}
	fmt.Printf("timeserver listening on %s\n", srv.Addr())
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "timeserver:", err)
		os.Exit(1)
	}
}
