module vmdg

go 1.24
