// Checkpoint demonstrates the VM state portability the paper highlights
// in its introduction: a volunteer task checkpointed on one physical
// machine, migrated as a byte blob, and resumed on another — with the
// copy-on-write disk overlay and the BOINC client's progress travelling
// together.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/boinc"
	"vmdg/internal/core"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

func main() {
	// --- Machine A: start a work unit under VMware Player ---
	sA := sim.New()
	mA, err := hw.NewMachine(sA, hw.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	hostA := hostos.Boot(mA)
	base := vmm.NewRawImage("ubuntu-base.img", 0, 1<<30)
	overlay := vmm.NewCOWImage("volunteer.cow", base, 2<<30)
	vmA, err := vmm.New(hostA, vmm.Config{Name: "volunteer-a", Prof: profiles.VMwarePlayer(), Image: overlay})
	if err != nil {
		log.Fatal(err)
	}
	wu := boinc.WorkUnit{ID: "einstein-0042", Seed: 7, Chunks: 300, CheckpointEvery: 40}
	worker := boinc.NewWorker(boinc.Progress{WorkUnit: wu})
	vmA.SpawnGuest("einstein", worker)
	vmA.PowerOn(hostos.PrioIdle)

	for worker.State.ChunksDone < wu.Chunks/2 {
		next, ok := sA.NextEventTime()
		if !ok {
			log.Fatal("simulation drained before the halfway mark")
		}
		sA.RunUntil(next)
	}
	fmt.Printf("machine A: %d/%d chunks done at t=%v\n",
		worker.State.ChunksDone, wu.Chunks, sA.Now())

	ck := vmA.Checkpoint(worker.State.Marshal())
	vmA.PowerOff()
	blob, err := ck.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes (disk overlay %d KB, guest clock %v)\n",
		len(blob), ck.OverlayBytes>>10, ck.TakenAtGuest)

	// --- Machine B: restore and finish ---
	sB := sim.New()
	mB, err := hw.NewMachine(sB, hw.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	hostB := hostos.Boot(mB)
	base2 := vmm.NewRawImage("ubuntu-base.img", 0, 1<<30)
	overlay2 := vmm.NewCOWImage("volunteer.cow", base2, 2<<30)
	vmB, err := vmm.New(hostB, vmm.Config{Name: "volunteer-b", Prof: profiles.VMwarePlayer(), Image: overlay2})
	if err != nil {
		log.Fatal(err)
	}
	ck2, err := vmm.DecodeCheckpoint(blob)
	if err != nil {
		log.Fatal(err)
	}
	if err := vmB.Restore(ck2); err != nil {
		log.Fatal(err)
	}
	progress, err := boinc.UnmarshalProgress(ck2.Payload)
	if err != nil {
		log.Fatal(err)
	}
	resumed := boinc.NewFiniteWorker(progress, 1)
	vmB.SpawnGuest("einstein", resumed)
	vmB.PowerOn(hostos.PrioIdle)
	if !hostB.RunUntilFinished(vmB.Proc, 600*sim.Second) {
		log.Fatal("machine B did not finish the unit")
	}
	fmt.Printf("machine B: resumed at chunk %d, unit complete at t=%v\n",
		progress.ChunksDone, sB.Now())

	// The same machinery powers the harness-level ablation:
	res, err := core.MigrationAblation(core.Config{Seed: 3, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nablation check: %d chunks preserved across migration, completed=%v\n",
		res.ChunksAfterRestore, res.UnitCompleted)
}
