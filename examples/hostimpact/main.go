// Hostimpact regenerates the paper's intrusiveness study (Figures 5–8):
// what a volunteer's machine loses while a VM crunches Einstein@home at
// 100% of its virtual CPU — NBench index overheads for single-threaded
// hosts and the 7z availability/MIPS drop for multi-threaded ones.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/core"
)

func main() {
	cfg := core.Config{Seed: 1, Reps: 1, Quick: true}

	for _, fn := range []func(core.Config) (*core.Result, error){
		core.Figure5, core.Figure6, core.FigureFP, core.Figure7, core.Figure8,
	} {
		res, err := fn(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Figure.Render())
	}

	fmt.Println("Reading: a dual-core volunteer machine absorbs a VM at 100% vCPU")
	fmt.Println("with marginal impact on single-threaded host work; multi-threaded")
	fmt.Println("host work loses 10-35%, and the fastest guest environment")
	fmt.Println("(VmPlayer) is the most intrusive — the paper's headline result.")
}
