// Quickstart: build one virtual machine on the simulated testbed, run a
// real benchmark inside it, and compare against native — the smallest
// complete use of the vmdg API.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/bench/sevenz"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

func main() {
	// Capture the 7z benchmark's cost profile by running the real
	// LZ77+range-coder codec once (round-trip verified).
	prof7z, run := sevenz.Profile(42, 256<<10, 2)
	if !run.RoundTrip {
		log.Fatal("codec round trip failed")
	}
	fmt.Printf("7z benchmark: %.1f MB in, ratio %.2f, %.0fM instructions\n\n",
		float64(run.InBytes)/(1<<20), run.Ratio, run.Instructions()/1e6)

	for _, env := range []vmm.Profile{profiles.Native(), profiles.VMwarePlayer(), profiles.QEMU()} {
		// One simulated Core 2 Duo testbed per run.
		s := sim.New()
		machine, err := hw.NewMachine(s, hw.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		host := hostos.Boot(machine)

		// A VM under this environment's cost profile; the guest kernel
		// runs the captured benchmark as its only thread.
		vm, err := vmm.New(host, vmm.Config{Prof: env})
		if err != nil {
			log.Fatal(err)
		}
		vm.SpawnGuest("7z", prof7z.Iter())
		vm.PowerOn(hostos.PrioNormal)

		if !host.RunUntilFinished(vm.Proc, 600*sim.Second) {
			log.Fatalf("%s: benchmark did not finish", env.Name)
		}
		wall := host.Sim.Now()
		vm.PowerOff()

		mips := run.Instructions() / wall.Seconds() / 1e6
		fmt.Printf("%-10s wall %8v   %7.1f MIPS\n", env.Name, wall, mips)
	}
}
