// Timesync demonstrates the paper's measurement methodology (§2, §4.2.2):
// guest clocks drift badly when the host is loaded — which is why the
// paper times everything with an external UDP time server, and why NBench
// could not run inside guests at all. The example reproduces the drift,
// the UDP correction, and (bonus) exercises the real wire protocol over
// the loopback interface.
package main

import (
	"fmt"
	"log"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/timesync"
)

func main() {
	// Simulated: time an Einstein work unit three ways while the host is
	// saturated with owner work.
	res, err := core.TimesyncAblation(core.Config{Seed: 1, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("timing one Einstein work unit in a VmPlayer VM (idle priority)")
	fmt.Println("while the host runs two compute-bound user threads:")
	fmt.Printf("  ground truth          %8.3f s\n", res.TrueSeconds)
	fmt.Printf("  guest clock           %8.3f s   error %5.1f%%  <- what naive in-guest timing reports\n",
		res.GuestSeconds, res.GuestErr*100)
	fmt.Printf("  UDP-corrected         %8.3f s   error %5.2f%%  <- the paper's method\n",
		res.CorrectedSeconds, res.CorrectedErr*100)

	// Real: the same protocol over an actual UDP socket.
	srv, err := timesync.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Clock = func() time.Time { return time.Now().Add(3 * time.Second) } // a skewed "host"
	go srv.Serve()
	offset, rtt, err := timesync.Query(srv.Addr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreal UDP exchange against %s: measured offset %v (expected ~3s), rtt %v\n",
		srv.Addr(), offset.Round(time.Millisecond), rtt)
}
