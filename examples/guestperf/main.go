// Guestperf regenerates the paper's guest-performance study (Figures 1–4):
// CPU integer, CPU floating point, disk, and network benchmarks inside
// each virtualization environment, normalized against native execution.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/core"
)

func main() {
	cfg := core.Config{Seed: 1, Reps: 2, Quick: true}

	for _, fn := range []func(core.Config) (*core.Result, error){
		core.Figure1, core.Figure2, core.Figure3, core.Figure4,
	} {
		res, err := fn(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Figure.Render())
		if res.Series != nil {
			fmt.Println(res.Series.Render())
		}
		if targets, ok := core.PaperTargets[res.ID]; ok {
			fmt.Println("  vs paper:")
			for label, band := range targets {
				fmt.Printf("    %-14s measured %-8.4g paper %-8.4g\n",
					label, res.Values[label], band.Paper)
			}
		}
		fmt.Println()
	}
}
