// Engine example: drive the parallel experiment engine from code — list
// the registry, run a figure across a worker pool with an in-memory
// shard cache, and show that a re-run is served entirely from cache.
package main

import (
	"fmt"
	"log"
	"runtime"

	"vmdg/internal/core"
	"vmdg/internal/engine"
)

func main() {
	// The Default registry is pre-populated with the paper's nine
	// figures plus the ablation/sensitivity/extension experiments.
	fmt.Println("registered experiments:")
	for _, e := range engine.Default.Experiments() {
		fmt.Printf("  %-14s [%s] %s\n", e.Name(), e.Kind(), e.Title())
	}

	// A runner fans the shards of the selected experiments across a
	// worker pool. Each shard boots its own simulated machine, so the
	// simulations stay single-threaded and deterministic while the pool
	// keeps every core busy.
	cfg := core.Config{Seed: 1, Reps: 2, Quick: true}
	runner := &engine.Runner{
		Workers: runtime.NumCPU(),
		Cache:   engine.NewMemCache(),
	}
	outcomes, stats, err := runner.RunNames(cfg, "fig1,fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold run: %d shards in %s (%d computed)\n\n",
		stats.Shards, stats.Elapsed, stats.Misses)
	for _, o := range outcomes {
		fmt.Println(o.Render())
	}

	// Shard results are content-keyed (experiment × seed × params), so
	// repeating the run costs almost nothing — and merging cached
	// payloads reproduces the outcome bit for bit.
	again, stats, err := runner.RunNames(cfg, "fig1,fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run: %d shards in %s (%d cached)\n",
		stats.Shards, stats.Elapsed, stats.Hits)
	fmt.Printf("bit-identical to cold run: %v\n",
		again[0].Render() == outcomes[0].Render() && again[1].Render() == outcomes[1].Render())
}
