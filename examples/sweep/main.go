// Sweep example: drive a declarative scenario sweep from code — build
// a grid.Spec with multi-value axes, expand and run it as one engine
// experiment, watch progress through the runner's event callback, and
// show that widening an axis re-simulates only the new points.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

func main() {
	// A Spec is a family of fleet scenarios: every multi-value axis is
	// swept, and the family is the cartesian product. This one is
	// 2 policies × 2 populations × 2 churn modes = 8 points.
	spec := grid.Spec{
		Version:  grid.SpecVersion,
		Name:     "example",
		Seed:     1,
		Quick:    true, // trimmed calibration, example-sized
		Envs:     []string{"vmplayer"},
		Machines: []int{128, 256},
		Minutes:  []int{30},
		Churn:    []bool{false, true},
		Policy:   []string{"fifo", "deadline"},
	}
	pts, err := spec.Points()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec expands to %d points over axes %v:\n", len(pts), spec.SweptAxes())
	for _, pt := range pts {
		fmt.Printf("  %s\n", pt.Label())
	}

	// The whole grid runs as ONE experiment: every point's shards share
	// the worker pool and the content-keyed cache, and the merge emits
	// a single table keyed by axis values.
	sweep, err := engine.NewSweep("sweep", "example sweep", spec)
	if err != nil {
		log.Fatal(err)
	}
	cache := engine.NewMemCache()
	runner := &engine.Runner{
		Workers: 4,
		Cache:   cache,
		// The event callback replaces ad-hoc progress plumbing: one
		// shard event per task, in deterministic order, from the
		// caller's goroutine.
		OnEvent: func(ev engine.Event) {
			if ev.Kind != engine.EventExperimentMerged {
				fmt.Printf("  [%2d/%2d] %s shard done\n", ev.Done, ev.Total, ev.Experiment)
			}
		},
	}
	cfg := core.Config{Seed: spec.Seed, Quick: spec.Quick}
	outcomes, stats, err := runner.Run(cfg, []engine.Experiment{sweep})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold sweep: %d shards in %s (%d computed)\n\n", stats.Shards, stats.Elapsed, stats.Misses)
	fmt.Println(outcomes[0].Render())

	// Widen one axis: the eight existing points replay from cache; only
	// the four new replication points simulate. Sweep point = cache
	// scope, so the grid can grow without repeating finished work.
	spec.Policy = append(spec.Policy, "replication")
	wider, err := engine.NewSweep("sweep", "example sweep, widened", spec)
	if err != nil {
		log.Fatal(err)
	}
	_, stats, err = runner.Run(cfg, []engine.Experiment{wider})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("widened sweep: %d shards — %d cached, only %d newly computed\n",
		stats.Shards, stats.Hits, stats.Misses)
}
