// Project runs a complete volunteer-computing round trip: a BOINC-style
// project server distributes replicated Einstein@home work units to a
// fleet of VM-sandboxed volunteers (one of them faulty), the volunteers
// compute inside their guests, and the server validates results by
// quorum — the full scenario the paper's introduction motivates, with the
// sandboxing benefit made concrete: the faulty volunteer corrupts its own
// results, never its host.
package main

import (
	"fmt"
	"log"

	"vmdg/internal/boinc"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// volunteer couples a simulated machine with its VM and pending work.
type volunteer struct {
	name   string
	faulty bool
	host   *hostos.OS
	vm     *vmm.VM
	unit   boinc.WorkUnit
	worker *boinc.FiniteWorker
	busy   bool
}

func main() {
	server := boinc.NewProject("einstein", 2, 48, 2026)
	names := []string{"alice", "bob", "carol", "mallory"}

	var fleet []*volunteer
	for i, name := range names {
		s := sim.New()
		m, err := hw.NewMachine(s, hw.Config{Seed: uint64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
		host := hostos.Boot(m)
		vm, err := vmm.New(host, vmm.Config{Name: name, Prof: profiles.VMwarePlayer()})
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, &volunteer{
			name: name, faulty: name == "mallory", host: host, vm: vm,
		})
	}

	// Scheduling rounds: assign, compute, report. Each volunteer's
	// machine advances its own virtual time; the server is instantaneous
	// (its latency is irrelevant at work-unit granularity).
	for round := 0; round < 24; round++ {
		for _, v := range fleet {
			if !v.busy {
				v.unit = server.RequestWork(v.name)
				v.worker = boinc.NewFiniteWorker(boinc.Progress{WorkUnit: v.unit}, 1)
				v.vm.SpawnGuest(v.unit.ID, v.worker)
				if round == 0 {
					v.vm.PowerOn(hostos.PrioIdle)
				}
				v.busy = true
				continue
			}
			// Advance this volunteer until its unit completes.
			deadline := v.host.Sim.Now() + 600*sim.Second
			for v.host.Sim.Now() < deadline && v.worker.UnitsDone() == 0 {
				next, ok := v.host.Sim.NextEventTime()
				if !ok {
					break
				}
				v.host.Sim.RunUntil(next)
			}
			if v.worker.UnitsDone() == 0 {
				log.Fatalf("%s wedged on %s", v.name, v.unit.ID)
			}
			result := boinc.TrueResult(v.unit)
			if v.faulty {
				result = -1 // a corrupted computation, confined to the VM
			}
			if server.SubmitResult(v.name, v.unit.ID, result) {
				canonical, _ := server.Canonical(v.unit.ID)
				fmt.Printf("round %2d: %s validated with peak bin %d (reported by %s)\n",
					round, v.unit.ID, canonical, v.name)
			}
			v.busy = false
		}
	}

	fmt.Printf("\nvalidated units : %d\n", server.Validated())
	fmt.Printf("invalid reports : %d (all from mallory's sandboxed VM)\n", server.Invalid())
	fmt.Printf("outstanding     : %d\n", server.Outstanding())
	for _, v := range fleet {
		v.host.Settle()
		fmt.Printf("%-8s donated %8.2fs of vCPU virtual time\n",
			v.name, v.vm.VCPU().CPUTime().Seconds())
	}
}
