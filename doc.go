// Package vmdg is a reproduction of Domingues, Araujo & Silva,
// "Evaluating the Performance and Intrusiveness of Virtual Machines for
// Desktop Grid Computing" (IPDPS 2009 workshops / PCGrid).
//
// The library lives under internal/: a deterministic simulation of the
// paper's testbed (dual-core machine, Windows-like host scheduler,
// Linux-like guest kernel, four calibrated VMM cost models) plus real
// implementations of every benchmark the paper runs (7z/LZMA-style codec,
// matrix multiply, IOBench, iperf-style NetBench, the ten NBench/ByteMark
// kernels, and an Einstein@home-style FFT worker under a BOINC-style
// client). internal/core regenerates Figures 1–8; bench_test.go at this
// level exposes one testing.B benchmark per figure.
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured data.
package vmdg
