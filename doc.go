// Package vmdg is a reproduction of Domingues, Araujo & Silva,
// "Evaluating the Performance and Intrusiveness of Virtual Machines for
// Desktop Grid Computing" (IPDPS 2009 workshops / PCGrid).
//
// The library lives under internal/: a deterministic simulation of the
// paper's testbed (dual-core machine, Windows-like host scheduler,
// Linux-like guest kernel, four calibrated VMM cost models) plus real
// implementations of every benchmark the paper runs (7z/LZMA-style codec,
// matrix multiply, IOBench, iperf-style NetBench, the ten NBench/ByteMark
// kernels, and an Einstein@home-style FFT worker under a BOINC-style
// client). internal/core defines the experiments that regenerate Figures
// 1–8, each decomposed into independent deterministic shards.
//
// internal/engine layers a registry and a parallel runner on top: every
// figure, ablation, and sensitivity experiment registers against an
// Experiment interface, and a worker pool fans their shards out across
// cores — each simulation stays single-threaded, results are
// bit-identical for any worker count, and completed shards are cached by
// content key so repeated invocations skip finished work. The `dgrid`
// subcommand CLI (run/list/report/fleet) and `vmbench` drive the engine;
// bench_test.go at this level exposes one testing.B benchmark per figure
// plus engine throughput benchmarks.
//
// See README.md for a tour and EXPERIMENTS.md for the machine-generated
// paper-vs-measured tables (`dgrid report` regenerates them).
package vmdg
