package netbench

import (
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

func TestProfileTotals(t *testing.T) {
	p := Profile(StreamBytes)
	sent, _ := p.TotalNetBytes()
	if sent != StreamBytes {
		t.Fatalf("profile sends %d, want %d", sent, StreamBytes)
	}
	for _, st := range p.Steps {
		if st.Kind == cost.StepNetSend && st.Conn != ConnID {
			t.Fatalf("send on conn %d, want %d", st.Conn, ConnID)
		}
	}
}

func TestProfileNonAlignedTotal(t *testing.T) {
	p := Profile(100000)
	sent, _ := p.TotalNetBytes()
	if sent != 100000 {
		t.Fatalf("sent %d", sent)
	}
}

func TestProfileRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-byte stream")
		}
	}()
	Profile(0)
}

func TestMbps(t *testing.T) {
	// 10 MB in 1 s = 83.886 Mbps.
	got := Mbps(10<<20, sim.Second)
	if got < 83.8 || got > 84.0 {
		t.Fatalf("Mbps = %v", got)
	}
	if Mbps(1, 0) != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}
