// Package netbench implements the paper's NetBench (§2): a wrapper around
// an iperf-style throughput measurement. The default mode transfers a
// 10 MB data stream over one TCP connection from the guest to a remote
// station on a 100 Mbps LAN and reports the achieved bandwidth; a UDP
// mode floods the path at a fixed offered rate and reports delivery and
// loss (the X1 extension experiment).
package netbench
