package netbench

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// Defaults matching the paper's iperf invocation.
const (
	// StreamBytes is the default transfer size (10 MB).
	StreamBytes = 10 << 20
	// ConnID is the TCP connection identifier the profile uses; harnesses
	// must Dial this id before spawning the profile.
	ConnID = 1
	// appChunk is the per-write size of the sending application.
	appChunk = 64 << 10
)

// Profile captures the sender application: write StreamBytes into the
// socket in appChunk pieces. All transport behaviour (windowing, ACK
// pacing, device paths) happens live in the guest network stack during
// replay — throughput is an output of the simulation, not of this profile.
func Profile(total int64) *cost.Profile {
	if total <= 0 {
		panic(fmt.Sprintf("netbench: stream of %d bytes", total))
	}
	m := cost.NewMeter(fmt.Sprintf("netbench-%dMB", total>>20))
	for off := int64(0); off < total; off += appChunk {
		n := int64(appChunk)
		if total-off < n {
			n = total - off
		}
		m.NetSend(ConnID, n)
	}
	return m.Profile()
}

// UDPDatagram is the iperf -u payload size (fits one Ethernet frame).
const UDPDatagram = 1470

// UDPProfile captures an iperf -u sender: datagrams of UDPDatagram bytes
// paced to the offered bit rate for the given duration. Loss happens in
// the network (a bounded NAT proxy buffer), not in this profile.
func UDPProfile(offeredBps float64, duration sim.Time) *cost.Profile {
	if offeredBps <= 0 || duration <= 0 {
		panic("netbench: UDP profile needs positive rate and duration")
	}
	interval := sim.FromSeconds(UDPDatagram * 8 / offeredBps)
	if interval <= 0 {
		interval = sim.Microsecond
	}
	m := cost.NewMeter(fmt.Sprintf("netbench-udp-%.0fMbps", offeredBps/1e6))
	for at := sim.Time(0); at < duration; at += interval {
		m.NetSend(ConnID, UDPDatagram)
		m.Sleep(interval)
	}
	return m.Profile()
}

// Mbps converts a transfer of bytes over elapsed time into the megabits
// per second figure iperf reports.
func Mbps(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds() / 1e6
}
