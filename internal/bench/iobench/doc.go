// Package iobench implements the paper's IOBench (§2): a filesystem
// benchmark that writes and then reads back randomly generated files whose
// sizes double from 128 KB to 32 MB, timing each phase. The original is a
// Python script; this implementation captures the same behaviour as a cost
// profile (data generation, 64 KB syscall-sized transfers, fsync after the
// write phase, a cache drop before the read phase) replayed through the
// guest filesystem.
package iobench
