package iobench

import (
	"fmt"

	"vmdg/internal/cost"
)

// Sizes returns the paper's file-size sweep: 128 KB, 256 KB, ..., 32 MB.
func Sizes() []int64 {
	var out []int64
	for s := int64(128 << 10); s <= 32<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// chunk is the per-syscall transfer size of the benchmark's read/write
// loop (Python file I/O through a 64 KB buffer).
const chunk = 64 << 10

// Data-generation cost: the benchmark fills its write buffers from a
// pseudo-random generator (≈4 integer ops plus streaming stores per byte,
// interpreter overhead included).
const (
	genIntPerByte = 4.0
	genMemPerByte = 0.25
)

// FileName names the benchmark file for a given size.
func FileName(size int64) string { return fmt.Sprintf("iobench-%dK", size>>10) }

// WriteProfile captures the write phase for one file size: generate random
// data, write it in chunks, fsync.
func WriteProfile(size int64) *cost.Profile {
	m := cost.NewMeter(fmt.Sprintf("iobench-write-%dK", size>>10))
	name := FileName(size)
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if size-off < int64(n) {
			n = int(size - off)
		}
		m.Ops(cost.Counts{
			IntOps: uint64(genIntPerByte * float64(n)),
			MemOps: uint64(genMemPerByte * float64(n)),
		})
		m.DiskWrite(name, off, int64(n))
	}
	m.DiskSync(name)
	return m.Profile()
}

// ReadProfile captures the read phase: drop caches, then read the file
// back in chunks, verifying as it goes (a checksum pass over the data).
func ReadProfile(size int64) *cost.Profile {
	m := cost.NewMeter(fmt.Sprintf("iobench-read-%dK", size>>10))
	name := FileName(size)
	m.DropCaches()
	for off := int64(0); off < size; off += chunk {
		n := chunk
		if size-off < int64(n) {
			n = int(size - off)
		}
		m.DiskRead(name, off, int64(n))
		m.Ops(cost.Counts{IntOps: uint64(n), MemOps: uint64(n) / 8}) // checksum pass
	}
	return m.Profile()
}

// SweepProfile concatenates write+read phases over the full size sweep —
// one complete IOBench run as a single guest program.
func SweepProfile() *cost.Profile {
	p := &cost.Profile{Name: "iobench-sweep"}
	for _, size := range Sizes() {
		p.Steps = append(p.Steps, WriteProfile(size).Steps...)
		p.Steps = append(p.Steps, ReadProfile(size).Steps...)
	}
	return p
}
