package iobench

import (
	"testing"

	"vmdg/internal/cost"
)

func TestSizesSweep(t *testing.T) {
	s := Sizes()
	if len(s) != 9 {
		t.Fatalf("%d sizes, want 9 (128K..32M doubling)", len(s))
	}
	if s[0] != 128<<10 || s[len(s)-1] != 32<<20 {
		t.Fatalf("sweep endpoints: %d..%d", s[0], s[len(s)-1])
	}
	for i := 1; i < len(s); i++ {
		if s[i] != 2*s[i-1] {
			t.Fatalf("size %d not double of predecessor", s[i])
		}
	}
}

func TestWriteProfileShape(t *testing.T) {
	p := WriteProfile(256 << 10)
	_, written := p.TotalDiskBytes()
	if written != 256<<10 {
		t.Fatalf("write bytes = %d", written)
	}
	var syncs, writes int
	for _, st := range p.Steps {
		switch st.Kind {
		case cost.StepDiskSync:
			syncs++
		case cost.StepDiskWrite:
			writes++
			if st.File != FileName(256<<10) {
				t.Fatalf("wrong file %q", st.File)
			}
		}
	}
	if syncs != 1 {
		t.Fatalf("syncs = %d, want 1", syncs)
	}
	if writes != 4 { // 256 KB in 64 KB chunks
		t.Fatalf("writes = %d, want 4", writes)
	}
	if p.TotalCycles() <= 0 {
		t.Fatal("no data-generation compute captured")
	}
}

func TestReadProfileShape(t *testing.T) {
	p := ReadProfile(128 << 10)
	read, _ := p.TotalDiskBytes()
	if read != 128<<10 {
		t.Fatalf("read bytes = %d", read)
	}
	if p.Steps[0].Kind != cost.StepCompute && p.Steps[0].Kind != cost.StepDropCaches {
		t.Fatalf("first step = %v", p.Steps[0].Kind)
	}
	var drops int
	for _, st := range p.Steps {
		if st.Kind == cost.StepDropCaches {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("cache drops = %d, want 1", drops)
	}
}

func TestSweepProfileTotals(t *testing.T) {
	p := SweepProfile()
	read, written := p.TotalDiskBytes()
	var want int64
	for _, s := range Sizes() {
		want += s
	}
	if read != want || written != want {
		t.Fatalf("sweep bytes r=%d w=%d, want %d each", read, written, want)
	}
}

func TestOffsetsAreContiguous(t *testing.T) {
	p := WriteProfile(192 << 10) // non-power-of-two: final short chunk
	var next int64
	for _, st := range p.Steps {
		if st.Kind != cost.StepDiskWrite {
			continue
		}
		if st.Offset != next {
			t.Fatalf("write at %d, want %d", st.Offset, next)
		}
		next = st.Offset + st.Bytes
	}
	if next != 192<<10 {
		t.Fatalf("total written %d", next)
	}
}
