package matrix

import (
	"fmt"
	"math"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// Sizes used in the paper.
const (
	Small = 512
	Large = 1024
)

// Multiply computes C = A·B with the linear (non-blocked, non-vectorized)
// algorithm and tallies its operations: per inner iteration one multiply,
// one add (2 FP ops), two loads and the accumulator traffic.
func Multiply(a, b []float64, n int) ([]float64, cost.Counts) {
	if len(a) != n*n || len(b) != n*n {
		panic(fmt.Sprintf("matrix: operands %d,%d for n=%d", len(a), len(b), n))
	}
	c := make([]float64, n*n)
	var ops cost.Counts
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
		// Tally per row of output to keep the hot loop clean: n² inner
		// iterations per row batch of n outputs. The inner loop is two
		// flops plus trivial register-resident induction; the column walk
		// of B generates the benchmark's bus traffic.
		ops.FPOps += uint64(2 * n * n)
		ops.MemOps += uint64(n*n) / 4
		ops.IntOps += uint64(n*n) / 2
	}
	return c, ops
}

// GenOperand builds a deterministic matrix with entries in [-1, 1).
func GenOperand(seed uint64, n int) []float64 {
	rng := sim.NewRNG(seed)
	m := make([]float64, n*n)
	for i := range m {
		m[i] = 2*rng.Float64() - 1
	}
	return m
}

// Result summarizes a run.
type Result struct {
	N        int
	Counts   cost.Counts
	Checksum float64 // Frobenius norm of the product, for verification
}

// Run multiplies two generated n×n matrices.
func Run(seed uint64, n int) Result {
	a := GenOperand(seed, n)
	b := GenOperand(seed+1, n)
	c, ops := Multiply(a, b, n)
	var norm float64
	for _, v := range c {
		norm += v * v
	}
	return Result{N: n, Counts: ops, Checksum: math.Sqrt(norm)}
}

// Profile captures the benchmark for simulator replay: reps multiplications
// at size n (the paper repeats each test ≥50 times; replay makes that
// cheap).
func Profile(seed uint64, n, reps int) (*cost.Profile, Result) {
	res := Run(seed, n)
	m := cost.NewMeter(fmt.Sprintf("matrix-%d", n))
	for r := 0; r < reps; r++ {
		m.Ops(res.Counts)
	}
	return m.Profile(), res
}
