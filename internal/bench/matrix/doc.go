// Package matrix implements the paper's Matrix benchmark (§2): the
// multiplication of two square matrices of float64 with the plain
// non-optimized triple loop, at the paper's two sizes (512² and 1024²).
// It measures floating-point performance with a heavy streaming-memory
// component (the naive loop order walks one operand column-wise).
package matrix
