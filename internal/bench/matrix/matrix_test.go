package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"vmdg/internal/cost"
)

func TestMultiplyIdentity(t *testing.T) {
	n := 8
	a := GenOperand(1, n)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c, _ := Multiply(a, id, n)
	for i := range a {
		if math.Abs(c[i]-a[i]) > 1e-12 {
			t.Fatalf("A·I ≠ A at %d: %v vs %v", i, c[i], a[i])
		}
	}
	c2, _ := Multiply(id, a, n)
	for i := range a {
		if math.Abs(c2[i]-a[i]) > 1e-12 {
			t.Fatalf("I·A ≠ A at %d", i)
		}
	}
}

func TestMultiplyKnownProduct(t *testing.T) {
	// [1 2; 3 4]·[5 6; 7 8] = [19 22; 43 50]
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c, _ := Multiply(a, b, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestMultiplyAssociatesWithScalingProperty(t *testing.T) {
	// (αA)·B == α(A·B): checks the arithmetic path with random operands.
	f := func(seed uint16) bool {
		n := 6
		a := GenOperand(uint64(seed), n)
		b := GenOperand(uint64(seed)+9, n)
		scaled := make([]float64, len(a))
		for i := range a {
			scaled[i] = 2.5 * a[i]
		}
		ab, _ := Multiply(a, b, n)
		sab, _ := Multiply(scaled, b, n)
		for i := range ab {
			if math.Abs(sab[i]-2.5*ab[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplyPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	Multiply(make([]float64, 4), make([]float64, 9), 3)
}

func TestOpCountsScaleCubically(t *testing.T) {
	r1 := Run(1, 32)
	r2 := Run(1, 64)
	ratio := float64(r2.Counts.FPOps) / float64(r1.Counts.FPOps)
	if math.Abs(ratio-8) > 0.01 {
		t.Fatalf("FP ops ratio for 2x size = %v, want 8 (cubic)", ratio)
	}
	if r1.Counts.FPOps != uint64(2*32*32*32) {
		t.Fatalf("FP ops = %d, want 2n³", r1.Counts.FPOps)
	}
}

func TestMixIsFPDominatedWithMemoryComponent(t *testing.T) {
	// Figure 2's gentle slowdowns rely on Matrix being FP-heavy; the
	// naive loop's column walk keeps a visible memory share.
	res := Run(1, 128)
	mix := res.Counts.Mix()
	if mix.FP < 0.35 {
		t.Fatalf("FP share = %.3f, want ≥0.35", mix.FP)
	}
	if mix.Mem < 0.15 || mix.Mem > 0.45 {
		t.Fatalf("Mem share = %.3f, outside [0.15,0.45]", mix.Mem)
	}
}

func TestDeterministicChecksum(t *testing.T) {
	a := Run(5, 64)
	b := Run(5, 64)
	if a.Checksum != b.Checksum {
		t.Fatal("checksums diverged for identical seeds")
	}
	c := Run(6, 64)
	if a.Checksum == c.Checksum {
		t.Fatal("different seeds gave identical checksum")
	}
}

func TestProfileRepeats(t *testing.T) {
	p, res := Profile(1, 32, 5)
	want := res.Counts.Cycles() * 5
	if math.Abs(p.TotalCycles()-want) > want*1e-9 {
		t.Fatalf("profile cycles %v, want %v", p.TotalCycles(), want)
	}
	if p.OverallMix().FP == 0 {
		t.Fatal("profile lost FP share")
	}
	var _ cost.Counts = res.Counts
}
