package sevenz

import (
	"bytes"
	"testing"
	"testing/quick"

	"vmdg/internal/sim"
)

func TestRoundTripSimple(t *testing.T) {
	cases := [][]byte{
		[]byte(""),
		[]byte("a"),
		[]byte("abcabcabcabcabcabc"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte("x"), 10000),
		bytes.Repeat([]byte("abcdefgh"), 2000),
	}
	for i, src := range cases {
		comp, _ := Compress(src)
		back, _ := Decompress(comp, len(src))
		if !bytes.Equal(back, src) {
			t.Fatalf("case %d: round trip failed (%d bytes)", i, len(src))
		}
	}
}

func TestRoundTripGeneratedInput(t *testing.T) {
	for _, size := range []int{1, 100, 4096, 1 << 16, 1 << 18} {
		src := GenInput(42, size)
		comp, _ := Compress(src)
		back, _ := Decompress(comp, len(src))
		if !bytes.Equal(back, src) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp, _ := Compress(data)
		back, _ := Decompress(comp, len(data))
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	src := GenInput(7, 1<<18)
	comp, _ := Compress(src)
	ratio := float64(len(comp)) / float64(len(src))
	if ratio > 0.8 {
		t.Fatalf("ratio %.3f on compressible input; codec is not compressing", ratio)
	}
	if ratio < 0.05 {
		t.Fatalf("ratio %.3f suspiciously small; input generator too trivial", ratio)
	}
}

func TestIncompressibleInputSurvives(t *testing.T) {
	rng := sim.NewRNG(3)
	src := make([]byte, 1<<16)
	for i := range src {
		src[i] = byte(rng.Uint64())
	}
	comp, _ := Compress(src)
	back, _ := Decompress(comp, len(src))
	if !bytes.Equal(back, src) {
		t.Fatal("round trip failed on noise")
	}
	if float64(len(comp)) > 1.10*float64(len(src)) {
		t.Fatalf("noise expanded by %.2fx", float64(len(comp))/float64(len(src)))
	}
}

func TestDistSlotRoundTripProperty(t *testing.T) {
	f := func(draw uint32) bool {
		d := draw % windowSize
		slot, db, dv := distSlotOf(d)
		if db < 0 || db > 30 {
			return false
		}
		return distFromSlot(slot, dv) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGenInputDeterministicAndSized(t *testing.T) {
	a := GenInput(1, 10000)
	b := GenInput(1, 10000)
	if !bytes.Equal(a, b) {
		t.Fatal("GenInput not deterministic")
	}
	if len(a) != 10000 {
		t.Fatalf("len = %d", len(a))
	}
	c := GenInput(2, 10000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds gave identical input")
	}
}

func TestRunReportsOps(t *testing.T) {
	res := Run(1, 1<<16, 2)
	if !res.RoundTrip {
		t.Fatal("round trip failed in Run")
	}
	if res.InBytes != 2<<16 {
		t.Fatalf("InBytes = %d", res.InBytes)
	}
	if res.Counts.IntOps == 0 || res.Counts.MemOps == 0 {
		t.Fatal("no operations counted")
	}
	if res.Instructions() <= 0 {
		t.Fatal("no instructions")
	}
	if res.Ratio <= 0 || res.Ratio >= 1 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
}

func TestProfileMatchesRun(t *testing.T) {
	prof, res := Profile(1, 1<<16, 4)
	if len(prof.Steps) == 0 {
		t.Fatal("empty profile")
	}
	// The profile's cycle total must equal the tally's (up to per-pass
	// integer division truncation).
	wantMin := res.Counts.Cycles() * 0.99
	if prof.TotalCycles() < wantMin || prof.TotalCycles() > res.Counts.Cycles() {
		t.Fatalf("profile cycles %v vs tally %v", prof.TotalCycles(), res.Counts.Cycles())
	}
}

func TestMemShareInCalibratedBand(t *testing.T) {
	// The host-impact experiments (Figures 5–8) depend on 7z's memory-
	// cycle share: the paper's 180% two-thread ceiling pins it near 0.40.
	// Guard the band so instrumentation changes do not silently decalibrate
	// the reproduction.
	_, res := Profile(1, 1<<18, 2)
	mem := res.Counts.Mix().Mem
	if mem < 0.40 || mem > 0.58 {
		t.Fatalf("7z memory share = %.3f, outside the calibrated [0.40,0.58] band", mem)
	}
}
