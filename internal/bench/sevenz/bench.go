package sevenz

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// Benchmark-mode parameters, mirroring `7z b`: the benchmark compresses
// and decompresses synthetic dictionary data and reports a speed rating.
const (
	// DefaultBlock is the per-iteration input size.
	DefaultBlock = 1 << 20
	// DefaultPasses is how many blocks one benchmark run processes.
	DefaultPasses = 8
)

// GenInput produces the benchmark's deterministic, compressible input:
// a blend of repeated phrases (dictionary hits), counter-structured
// records, and incompressible noise — the texture 7z's own benchmark
// generator aims for (moderately compressible data that exercises both
// the match finder and the literal coder).
func GenInput(seed uint64, size int) []byte {
	rng := sim.NewRNG(seed)
	phrases := make([][]byte, 16)
	for i := range phrases {
		p := make([]byte, 8+rng.Intn(40))
		for j := range p {
			p[j] = byte('a' + rng.Intn(26))
		}
		phrases[i] = p
	}
	out := make([]byte, 0, size)
	rec := 0
	for len(out) < size {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // phrase repetition
			out = append(out, phrases[rng.Intn(len(phrases))]...)
		case 5, 6, 7: // structured record
			out = append(out, []byte(fmt.Sprintf("rec=%08d;", rec))...)
			rec++
		default: // noise
			n := 4 + rng.Intn(12)
			for i := 0; i < n; i++ {
				out = append(out, byte(rng.Uint64()))
			}
		}
	}
	return out[:size]
}

// Result summarizes one benchmark run.
type Result struct {
	InBytes   int64
	OutBytes  int64
	Counts    cost.Counts // total operation tally (compress + decompress)
	Ratio     float64     // compressed/original
	RoundTrip bool        // decompression verified
}

// Instructions is the instruction count underlying the MIPS metric:
// 7z's rating counts retired instructions, which in this model is the
// total operation tally.
func (r Result) Instructions() float64 {
	c := r.Counts
	return float64(c.IntOps + c.FPOps + c.MemOps + c.KernelOps)
}

// Run executes the real codec over passes blocks of the given size,
// verifying each round trip.
func Run(seed uint64, block, passes int) Result {
	var res Result
	res.RoundTrip = true
	for p := 0; p < passes; p++ {
		src := GenInput(seed+uint64(p), block)
		comp, cc := Compress(src)
		back, dc := Decompress(comp, len(src))
		if string(back) != string(src) {
			res.RoundTrip = false
		}
		res.InBytes += int64(len(src))
		res.OutBytes += int64(len(comp))
		res.Counts.Add(cc)
		res.Counts.Add(dc)
	}
	res.Ratio = float64(res.OutBytes) / float64(res.InBytes)
	return res
}

// Profile captures the benchmark's cost profile for simulator replay: one
// thread's work for the given passes. The capture runs the real codec once
// (cached by callers); MIPS under an environment is
// Result.Instructions() / simulated wall time.
func Profile(seed uint64, block, passes int) (*cost.Profile, Result) {
	res := Run(seed, block, passes)
	m := cost.NewMeter(fmt.Sprintf("7z-b%d-p%d", block, passes))
	// Re-emit the tally pass by pass so the profile has preemption-sized
	// steps rather than one giant block.
	per := res.Counts
	div := func(v uint64) uint64 { return v / uint64(passes) }
	for p := 0; p < passes; p++ {
		m.Ops(cost.Counts{
			IntOps: div(per.IntOps), FPOps: div(per.FPOps),
			MemOps: div(per.MemOps), KernelOps: div(per.KernelOps),
		})
	}
	return m.Profile(), res
}
