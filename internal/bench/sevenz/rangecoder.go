// Package sevenz implements the paper's 7z benchmark (§2): a real
// LZ77+range-coder compressor in the LZMA family, with the benchmark mode
// the paper drives via `7z b` — deterministic input generation, an
// operation-counting instrumentation layer, a MIPS metric, and a
// configurable thread count (`-mmt`).
//
// The codec is genuinely functional (round-trip verified by the tests);
// the instrumentation counts algorithm-level operations so the simulator
// can replay the benchmark's cost profile under any environment.
package sevenz

import "vmdg/internal/cost"

// Range coder constants (LZMA-style binary range coder with 11-bit
// adaptive probabilities).
const (
	probBits     = 11
	probInit     = 1 << (probBits - 1)
	probMoveBits = 5
	topValue     = 1 << 24
)

// opCount tallies the work of encoding/decoding at algorithm level. The
// weights model a Core 2-class machine: a coded bit is a dozen ALU ops
// plus probability-table traffic; dictionary probes hit cold memory.
type opCount struct{ c cost.Counts }

func (o *opCount) bit()     { o.c.IntOps += 12; o.c.MemOps += 1 }
func (o *opCount) probe()   { o.c.IntOps += 6; o.c.MemOps += 2 }
func (o *opCount) literal() { o.c.IntOps += 8; o.c.MemOps += 1 }
func (o *opCount) matchCopy(n int) {
	o.c.IntOps += uint64(2 * n)
	o.c.MemOps += uint64(n) / 2
}
func (o *opCount) hashInsert() { o.c.IntOps += 5; o.c.MemOps += 1 }

// rangeEncoder is the arithmetic-coding back end.
type rangeEncoder struct {
	low      uint64
	rng      uint32
	cache    byte
	cacheLen int
	out      []byte
	ops      *opCount
}

func newRangeEncoder(ops *opCount) *rangeEncoder {
	return &rangeEncoder{rng: 0xFFFFFFFF, cacheLen: 1, ops: ops}
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low>>32) != 0 || uint32(e.low) < 0xFF000000 {
		carry := byte(e.low >> 32)
		for ; e.cacheLen > 0; e.cacheLen-- {
			e.out = append(e.out, e.cache+carry)
			e.cache = 0xFF
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheLen++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// encodeBit codes one bit against an adaptive probability.
func (e *rangeEncoder) encodeBit(p *uint16, bit int) {
	e.ops.bit()
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> probMoveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> probMoveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// encodeDirect codes n bits with fixed 1/2 probability.
func (e *rangeEncoder) encodeDirect(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		e.ops.bit()
		e.rng >>= 1
		bit := (v >> uint(i)) & 1
		if bit != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

func (e *rangeEncoder) flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// rangeDecoder mirrors the encoder.
type rangeDecoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
	ops  *opCount
}

func newRangeDecoder(data []byte, ops *opCount) *rangeDecoder {
	d := &rangeDecoder{rng: 0xFFFFFFFF, in: data, ops: ops}
	d.pos = 1 // first byte is the encoder's initial zero cache
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *rangeDecoder) next() byte {
	if d.pos >= len(d.in) {
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

func (d *rangeDecoder) decodeBit(p *uint16) int {
	d.ops.bit()
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> probMoveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> probMoveBits
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
	return bit
}

func (d *rangeDecoder) decodeDirect(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		d.ops.bit()
		d.rng >>= 1
		d.code -= d.rng
		t := 0 - (d.code >> 31)
		d.code += d.rng & t
		v = v<<1 | (t + 1)
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.next())
		}
	}
	return v
}

// bitTree codes fixed-width values MSB-first through a probability tree.
type bitTree struct {
	probs []uint16
	bits  int
}

func newBitTree(bits int) *bitTree {
	probs := make([]uint16, 1<<bits)
	for i := range probs {
		probs[i] = probInit
	}
	return &bitTree{probs: probs, bits: bits}
}

func (t *bitTree) encode(e *rangeEncoder, v uint32) {
	node := uint32(1)
	for i := t.bits - 1; i >= 0; i-- {
		bit := int((v >> uint(i)) & 1)
		e.encodeBit(&t.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

func (t *bitTree) decode(d *rangeDecoder) uint32 {
	node := uint32(1)
	for i := 0; i < t.bits; i++ {
		node = node<<1 | uint32(d.decodeBit(&t.probs[node]))
	}
	return node - 1<<t.bits
}
