// Package sevenz implements the paper's 7-Zip benchmark (§2, §4.2.3): the
// LZMA-style compression self-test 7z's `b` command runs, built from a
// real match-finder and range coder over generated benchmark data. The
// paper uses it both as a guest CPU benchmark and — in one- and
// two-thread forms — as the host workload whose slowdown measures VM
// intrusiveness, including the shared-bus ceiling that caps two threads
// at ≈180% of one core.
package sevenz
