package sevenz

import "vmdg/internal/cost"

// LZ77 parameters. A 64 KB window with hash-chain matching keeps the codec
// honest (real dictionary searches, real cache-unfriendly probes) while
// staying fast enough to run thousands of times in tests.
const (
	windowBits = 16
	windowSize = 1 << windowBits
	minMatch   = 3
	maxMatch   = 273
	hashBits   = 15
	maxProbes  = 32 // hash-chain search depth
)

// model is the shared probability state of encoder and decoder.
type model struct {
	isMatch  [1 << 8]uint16 // ctx: low bits of position ⊕ prev byte
	literals *bitTree       // order-0 byte coder
	lengths  *bitTree       // match length - minMatch, 8 bits (capped)
	distSlot *bitTree       // 6-bit distance slot
}

func newModel() *model {
	m := &model{
		literals: newBitTree(8),
		lengths:  newBitTree(8),
		distSlot: newBitTree(6),
	}
	for i := range m.isMatch {
		m.isMatch[i] = probInit
	}
	return m
}

func matchCtx(pos int, prev byte) int {
	return (pos ^ int(prev)) & 0xFF
}

// distSlotOf maps a distance to its slot: slot = 2*log2(d) roughly, as in
// LZMA. Distances 1..4 are their own slots; beyond that slot encodes the
// exponent and one mantissa bit, with the remaining bits coded directly.
func distSlotOf(d uint32) (slot uint32, directBits int, directVal uint32) {
	if d < 4 {
		return d, 0, 0
	}
	// Find the highest set bit.
	n := 31
	for d>>(uint(n)) == 0 {
		n--
	}
	slot = uint32(n)<<1 | (d>>(uint(n)-1))&1
	directBits = n - 1
	directVal = d & (1<<uint(directBits) - 1)
	return slot, directBits, directVal
}

func distFromSlot(slot uint32, directVal uint32) uint32 {
	if slot < 4 {
		return slot
	}
	n := slot >> 1
	base := (2 | slot&1) << (n - 1)
	return base | directVal
}

// Compress encodes src and returns the compressed stream plus the
// operation tally of the encoding work.
func Compress(src []byte) ([]byte, cost.Counts) {
	ops := &opCount{}
	enc := newRangeEncoder(ops)
	m := newModel()

	// Hash chains: head[h] is the most recent position with hash h;
	// prev[pos & (windowSize-1)] links back.
	var head [1 << hashBits]int32
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, windowSize)

	hash := func(p int) uint32 {
		if p+minMatch > len(src) {
			return 0
		}
		h := uint32(src[p]) | uint32(src[p+1])<<8 | uint32(src[p+2])<<16
		h *= 2654435761
		return h >> (32 - hashBits)
	}

	insert := func(p int) {
		ops.hashInsert()
		h := hash(p)
		prev[p&(windowSize-1)] = head[h]
		head[h] = int32(p)
	}

	// findMatch returns the best (length, distance) at pos, or length 0.
	findMatch := func(pos int) (int, uint32) {
		if pos+minMatch > len(src) {
			return 0, 0
		}
		bestLen, bestDist := 0, uint32(0)
		cand := head[hash(pos)]
		limit := len(src) - pos
		if limit > maxMatch {
			limit = maxMatch
		}
		for probes := 0; cand >= 0 && probes < maxProbes; probes++ {
			ops.probe()
			c := int(cand)
			if pos-c >= windowSize {
				break
			}
			l := 0
			for l < limit && src[c+l] == src[pos+l] {
				l++
			}
			ops.matchCopy(l)
			if l > bestLen {
				bestLen, bestDist = l, uint32(pos-c)
				if l == limit {
					break
				}
			}
			cand = prev[c&(windowSize-1)]
		}
		if bestLen < minMatch {
			return 0, 0
		}
		return bestLen, bestDist
	}

	pos := 0
	var prevByte byte
	for pos < len(src) {
		length, dist := findMatch(pos)
		ctx := matchCtx(pos, prevByte)
		if length >= minMatch {
			enc.encodeBit(&m.isMatch[ctx], 1)
			capped := length - minMatch
			if capped > 255 {
				capped = 255
				length = 255 + minMatch
			}
			m.lengths.encode(enc, uint32(capped))
			slot, db, dv := distSlotOf(dist)
			m.distSlot.encode(enc, slot)
			if db > 0 {
				enc.encodeDirect(dv, db)
			}
			for i := 0; i < length; i++ {
				insert(pos + i)
			}
			pos += length
			prevByte = src[pos-1]
			continue
		}
		enc.encodeBit(&m.isMatch[ctx], 0)
		ops.literal()
		m.literals.encode(enc, uint32(src[pos]))
		insert(pos)
		prevByte = src[pos]
		pos++
	}
	return enc.flush(), ops.c
}

// Decompress reverses Compress. dstLen must be the original length.
func Decompress(data []byte, dstLen int) ([]byte, cost.Counts) {
	ops := &opCount{}
	dec := newRangeDecoder(data, ops)
	m := newModel()
	dst := make([]byte, 0, dstLen)
	var prevByte byte
	for len(dst) < dstLen {
		ctx := matchCtx(len(dst), prevByte)
		if dec.decodeBit(&m.isMatch[ctx]) == 1 {
			length := int(m.lengths.decode(dec)) + minMatch
			slot := m.distSlot.decode(dec)
			var dv uint32
			if slot >= 4 {
				db := int(slot>>1) - 1
				dv = dec.decodeDirect(db)
			}
			dist := int(distFromSlot(slot, dv))
			start := len(dst) - dist
			for i := 0; i < length; i++ {
				dst = append(dst, dst[start+i])
			}
			ops.matchCopy(length)
			prevByte = dst[len(dst)-1]
			continue
		}
		b := byte(m.literals.decode(dec))
		ops.literal()
		dst = append(dst, b)
		prevByte = b
	}
	return dst, ops.c
}
