package nbench

import (
	"math"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// ---- Fourier: numerical Fourier coefficients (FP index) ----

// runFourier computes the first fourierCoeffs Fourier series coefficients
// of f(x) = (x+1)^x over [0,2] by trapezoid-rule integration, exactly as
// BYTEmark's FOURIER kernel does, and spot-checks the constant term
// against a finer integration.
const fourierCoeffs = 48

func runFourier(seed uint64) KernelResult {
	_ = seed // the integrand is fixed; seed kept for interface symmetry
	var ops cost.Counts
	f := func(x float64) float64 {
		ops.FPOps += 8
		return math.Pow(x+1, x)
	}
	integrate := func(lo, hi float64, n int, g func(float64) float64) float64 {
		h := (hi - lo) / float64(n)
		sum := (g(lo) + g(hi)) / 2
		for i := 1; i < n; i++ {
			sum += g(lo + float64(i)*h)
			ops.FPOps += 3
		}
		return sum * h
	}
	const steps = 200
	a := make([]float64, fourierCoeffs)
	b := make([]float64, fourierCoeffs)
	a[0] = integrate(0, 2, steps, f) / 2
	for k := 1; k < fourierCoeffs; k++ {
		w := float64(k) * math.Pi
		a[k] = integrate(0, 2, steps, func(x float64) float64 {
			ops.FPOps += 3
			return f(x) * math.Cos(w*x)
		})
		b[k] = integrate(0, 2, steps, func(x float64) float64 {
			ops.FPOps += 3
			return f(x) * math.Sin(w*x)
		})
	}
	// Verification: a finer grid must agree with the coarse constant term.
	fine := integrate(0, 2, 4*steps, f) / 2
	ok := math.Abs(fine-a[0]) < 1e-3*math.Abs(fine)
	return KernelResult{Kernel: Fourier, Counts: ops, Check: ok && b[1] != 0}
}

// ---- neural net: back-propagation training (FP index) ----

const (
	nnInputs  = 8
	nnHidden  = 8
	nnOutputs = 4
	nnEpochs  = 120
	nnRate    = 0.4
)

// runNeuralNet trains a small MLP to map 8-bit patterns to their 4-bit
// popcount (one-hot-ish targets), verifying that training reduces the
// error — a real gradient-descent workload, as in BYTEmark's NNET.
func runNeuralNet(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts

	w1 := make([][]float64, nnInputs+1) // +1 bias
	for i := range w1 {
		w1[i] = make([]float64, nnHidden)
		for j := range w1[i] {
			w1[i][j] = rng.Float64() - 0.5
		}
	}
	w2 := make([][]float64, nnHidden+1)
	for i := range w2 {
		w2[i] = make([]float64, nnOutputs)
		for j := range w2[i] {
			w2[i][j] = rng.Float64() - 0.5
		}
	}
	sigmoid := func(x float64) float64 {
		ops.FPOps += 6
		return 1 / (1 + math.Exp(-x))
	}

	patterns := make([][nnInputs]float64, 16)
	targets := make([][nnOutputs]float64, 16)
	for p := range patterns {
		bitsSet := 0
		for i := 0; i < nnInputs; i++ {
			bit := (p >> (i % 4)) & 1
			patterns[p][i] = float64(bit ^ (i / 4 & 1))
			if patterns[p][i] > 0.5 {
				bitsSet++
			}
		}
		targets[p][bitsSet%nnOutputs] = 1
	}

	train := func() float64 {
		var total float64
		for p := range patterns {
			// The working set (a few KB of weights) is cache-resident;
			// only a trickle of traffic reaches the shared bus.
			ops.MemOps += 16
			// Forward.
			hid := make([]float64, nnHidden)
			for j := 0; j < nnHidden; j++ {
				sum := w1[nnInputs][j]
				for i := 0; i < nnInputs; i++ {
					sum += patterns[p][i] * w1[i][j]
					ops.FPOps += 2
				}
				hid[j] = sigmoid(sum)
			}
			out := make([]float64, nnOutputs)
			for k := 0; k < nnOutputs; k++ {
				sum := w2[nnHidden][k]
				for j := 0; j < nnHidden; j++ {
					sum += hid[j] * w2[j][k]
					ops.FPOps += 2
				}
				out[k] = sigmoid(sum)
			}
			// Backward.
			dOut := make([]float64, nnOutputs)
			for k := range dOut {
				err := targets[p][k] - out[k]
				total += err * err
				dOut[k] = err * out[k] * (1 - out[k])
				ops.FPOps += 5
			}
			dHid := make([]float64, nnHidden)
			for j := 0; j < nnHidden; j++ {
				var s float64
				for k := 0; k < nnOutputs; k++ {
					s += dOut[k] * w2[j][k]
					ops.FPOps += 2
				}
				dHid[j] = s * hid[j] * (1 - hid[j])
				ops.FPOps += 3
			}
			for k := 0; k < nnOutputs; k++ {
				for j := 0; j < nnHidden; j++ {
					w2[j][k] += nnRate * dOut[k] * hid[j]
					ops.FPOps += 3
				}
				w2[nnHidden][k] += nnRate * dOut[k]
				ops.FPOps += 2
			}
			for j := 0; j < nnHidden; j++ {
				for i := 0; i < nnInputs; i++ {
					w1[i][j] += nnRate * dHid[j] * patterns[p][i]
					ops.FPOps += 3
				}
				w1[nnInputs][j] += nnRate * dHid[j]
				ops.FPOps += 2
			}
		}
		return total
	}

	first := train()
	var last float64
	for e := 1; e < nnEpochs; e++ {
		last = train()
	}
	return KernelResult{Kernel: NeuralNet, Counts: ops, Check: last < first*0.7}
}

// ---- LU decomposition with partial pivoting (FP index) ----

const luN = 64

// runLUDecomp factors PA = LU and verifies the reconstruction error.
func runLUDecomp(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts
	a := make([][]float64, luN)
	orig := make([][]float64, luN)
	for i := range a {
		a[i] = make([]float64, luN)
		orig[i] = make([]float64, luN)
		for j := range a[i] {
			v := rng.Float64()*2 - 1
			a[i][j] = v
			orig[i][j] = v
		}
		a[i][i] += float64(luN) // diagonal dominance: well-conditioned
		orig[i][i] += float64(luN)
	}
	perm := make([]int, luN)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < luN; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < luN; r++ {
			ops.FPOps++
			ops.MemOps++
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if p != col {
			a[p], a[col] = a[col], a[p]
			perm[p], perm[col] = perm[col], perm[p]
		}
		// Eliminate.
		for r := col + 1; r < luN; r++ {
			m := a[r][col] / a[col][col]
			a[r][col] = m
			ops.FPOps += 2
			for cc := col + 1; cc < luN; cc++ {
				a[r][cc] -= m * a[col][cc]
				ops.FPOps += 2
			}
			// L2-resident matrix: bus traffic is a fraction of touches.
			ops.MemOps += uint64(luN-col-1) / 6
		}
	}
	// Verify: (L·U)[i][j] must equal orig[perm[i]][j], where L has an
	// implicit unit diagonal and both factors are packed into a.
	maxErr := 0.0
	for i := 0; i < luN; i++ {
		for j := 0; j < luN; j++ {
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				l := a[i][k]
				if k == i {
					l = 1
				}
				sum += l * a[k][j]
			}
			if err := math.Abs(sum - orig[perm[i]][j]); err > maxErr {
				maxErr = err
			}
		}
	}
	return KernelResult{Kernel: LUDecomp, Counts: ops, Check: maxErr < 1e-8}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
