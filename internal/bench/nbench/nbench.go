package nbench

import (
	"fmt"
	"math"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// Kernel identifies one benchmark kernel.
type Kernel int

// The ten BYTEmark kernels.
const (
	NumericSort Kernel = iota
	StringSort
	Bitfield
	FPEmulation
	Fourier
	Assignment
	IDEA
	Huffman
	NeuralNet
	LUDecomp
	numKernels
)

var kernelNames = [...]string{
	"numeric-sort", "string-sort", "bitfield", "fp-emulation", "fourier",
	"assignment", "idea", "huffman", "neural-net", "lu-decomp",
}

func (k Kernel) String() string {
	if k < 0 || k >= numKernels {
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
	return kernelNames[k]
}

// Index is one of the three summary figures NBench reports.
type Index int

// The three NBench indexes.
const (
	MemIndex Index = iota
	IntIndex
	FPIndex
)

func (i Index) String() string { return [...]string{"MEM", "INT", "FP"}[i] }

// Members returns the kernels aggregated into index i.
func (i Index) Members() []Kernel {
	switch i {
	case MemIndex:
		return []Kernel{StringSort, Bitfield, Assignment}
	case IntIndex:
		return []Kernel{NumericSort, FPEmulation, IDEA, Huffman}
	default:
		return []Kernel{Fourier, NeuralNet, LUDecomp}
	}
}

// KernelResult is the outcome of one kernel iteration.
type KernelResult struct {
	Kernel Kernel
	Counts cost.Counts
	// Check is a kernel-specific verification value (sorted? decoded?).
	Check bool
}

// RunKernel executes one iteration of kernel k with deterministic input.
func RunKernel(k Kernel, seed uint64) KernelResult {
	switch k {
	case NumericSort:
		return runNumericSort(seed)
	case StringSort:
		return runStringSort(seed)
	case Bitfield:
		return runBitfield(seed)
	case FPEmulation:
		return runFPEmulation(seed)
	case Fourier:
		return runFourier(seed)
	case Assignment:
		return runAssignment(seed)
	case IDEA:
		return runIDEA(seed)
	case Huffman:
		return runHuffman(seed)
	case NeuralNet:
		return runNeuralNet(seed)
	case LUDecomp:
		return runLUDecomp(seed)
	default:
		panic(fmt.Sprintf("nbench: unknown kernel %d", int(k)))
	}
}

// Profile captures iters iterations of kernel k for simulator replay.
func Profile(k Kernel, seed uint64, iters int) (*cost.Profile, KernelResult) {
	res := RunKernel(k, seed)
	m := cost.NewMeter("nbench-" + k.String())
	for i := 0; i < iters; i++ {
		m.Ops(res.Counts)
	}
	return m.Profile(), res
}

// SuiteProfile captures one pass over every kernel (iters iterations
// each), concatenated in suite order — the workload of one NBench run.
func SuiteProfile(seed uint64, iters int) *cost.Profile {
	m := cost.NewMeter("nbench-suite")
	for k := Kernel(0); k < numKernels; k++ {
		res := RunKernel(k, seed+uint64(k))
		if !res.Check {
			panic("nbench: kernel self-check failed during capture: " + k.String())
		}
		for i := 0; i < iters; i++ {
			m.Ops(res.Counts)
		}
	}
	return m.Profile()
}

// ---- numeric sort: heapsort of int32 arrays ----

const numSortN = 8 * 1024

func runNumericSort(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	a := make([]int32, numSortN)
	for i := range a {
		a[i] = int32(rng.Uint64())
	}
	var ops cost.Counts
	heapSort(a, &ops)
	ok := true
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			ok = false
		}
	}
	ops.IntOps += uint64(len(a)) // verification scan
	return KernelResult{Kernel: NumericSort, Counts: ops, Check: ok}
}

func heapSort(a []int32, ops *cost.Counts) {
	// The 32 KB array is L2-resident; the sift path is mostly compares and
	// index arithmetic, with a fraction of touches reaching the bus.
	var siftSteps uint64
	sift := func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child > hi {
				return
			}
			siftSteps++
			if child+1 <= hi && a[child] < a[child+1] {
				child++
			}
			if a[root] >= a[child] {
				return
			}
			a[root], a[child] = a[child], a[root]
			root = child
		}
	}
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n-1)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		sift(0, i-1)
	}
	ops.IntOps += 9 * siftSteps
	ops.MemOps += siftSteps / 2
}

// ---- bitfield: set/clear/complement runs over a bitmap ----

const bitfieldWords = 32 * 1024

func runBitfield(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	bits := make([]uint32, bitfieldWords)
	var ops cost.Counts
	totalBits := uint32(bitfieldWords * 32)
	setCount := 0
	for op := 0; op < 2048; op++ {
		start := uint32(rng.Uint64()) % totalBits
		length := uint32(rng.Uint64())%512 + 1
		mode := op % 3
		for b := start; b < start+length && b < totalBits; b++ {
			w, m := b/32, uint32(1)<<(b%32)
			ops.IntOps += 3
			ops.MemOps += 2
			switch mode {
			case 0:
				bits[w] |= m
			case 1:
				bits[w] &^= m
			default:
				bits[w] ^= m
			}
		}
	}
	for _, w := range bits {
		setCount += popcount(w)
		ops.IntOps += 2
		ops.MemOps += 1
	}
	return KernelResult{Kernel: Bitfield, Counts: ops, Check: setCount > 0}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// ---- FP emulation: software floating point on a 32-bit format ----

// softFloat is a toy IEEE-like format: 1 sign, 8 exponent, 23 mantissa,
// operated on entirely with integer arithmetic, as BYTEmark's emulation
// kernel does.
type softFloat uint32

func softFromFloat(f float64) softFloat { return softFloat(math.Float32bits(float32(f))) }
func (s softFloat) toFloat() float64    { return float64(math.Float32frombits(uint32(s))) }

func softMul(a, b softFloat, ops *cost.Counts) softFloat {
	ops.IntOps += 30
	ops.MemOps += 2
	sa, ea, ma := uint32(a)>>31, (uint32(a)>>23)&0xFF, uint32(a)&0x7FFFFF
	sb, eb, mb := uint32(b)>>31, (uint32(b)>>23)&0xFF, uint32(b)&0x7FFFFF
	if ea == 0 || eb == 0 {
		return softFloat((sa ^ sb) << 31) // flush denormals/zero
	}
	ma |= 1 << 23
	mb |= 1 << 23
	prod := (uint64(ma) * uint64(mb)) >> 23
	exp := int32(ea) + int32(eb) - 127
	for prod >= 1<<24 {
		prod >>= 1
		exp++
	}
	if exp <= 0 {
		return softFloat((sa ^ sb) << 31)
	}
	if exp >= 255 {
		return softFloat(((sa ^ sb) << 31) | 0x7F800000)
	}
	return softFloat(((sa ^ sb) << 31) | uint32(exp)<<23 | uint32(prod)&0x7FFFFF)
}

func runFPEmulation(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts
	ok := true
	for i := 0; i < 4096; i++ {
		x := rng.Float64()*100 + 0.5
		y := rng.Float64()*100 + 0.5
		got := softMul(softFromFloat(x), softFromFloat(y), &ops).toFloat()
		want := x * y
		if math.Abs(got-want) > 1e-3*math.Abs(want) {
			ok = false
		}
	}
	return KernelResult{Kernel: FPEmulation, Counts: ops, Check: ok}
}
