package nbench

import (
	"container/heap"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// ---- IDEA: the International Data Encryption Algorithm (INT index) ----

const ideaRounds = 8

type ideaKey [52]uint16

// ideaExpandKey derives the 52 encryption subkeys from a 128-bit key via
// the standard schedule: successive 16-bit words of the key rotated left
// by 25 bits for each group of eight subkeys.
func ideaExpandKey(key [16]byte) ideaKey {
	var ek ideaKey
	for i := 0; i < 8; i++ {
		ek[i] = uint16(key[2*i])<<8 | uint16(key[2*i+1])
	}
	for j := 8; j < 52; j++ {
		switch j & 7 {
		case 6:
			ek[j] = ek[j-7]&127<<9 | ek[j-14]>>7
		case 7:
			ek[j] = ek[j-15]&127<<9 | ek[j-14]>>7
		default:
			ek[j] = ek[j-7]&127<<9 | ek[j-6]>>7
		}
	}
	return ek
}

// ideaInvKey computes the decryption subkeys: the additive and
// multiplicative inverses of the encryption keys in reverse round order,
// with the middle additive keys swapped for the inner rounds (they are
// not swapped for the transforms adjacent to the outermost rounds).
func ideaInvKey(ek ideaKey) ideaKey {
	var dk ideaKey
	dk[0] = mulInv(ek[48])
	dk[1] = negMod(ek[49])
	dk[2] = negMod(ek[50])
	dk[3] = mulInv(ek[51])
	dk[4] = ek[46]
	dk[5] = ek[47]
	for d := 1; d < ideaRounds; d++ {
		e := 48 - 6*d // matching encryption round's key base
		dk[6*d+0] = mulInv(ek[e+0])
		dk[6*d+1] = negMod(ek[e+2]) // swapped middle
		dk[6*d+2] = negMod(ek[e+1])
		dk[6*d+3] = mulInv(ek[e+3])
		dk[6*d+4] = ek[e-2]
		dk[6*d+5] = ek[e-1]
	}
	dk[48] = mulInv(ek[0])
	dk[49] = negMod(ek[1])
	dk[50] = negMod(ek[2])
	dk[51] = mulInv(ek[3])
	return dk
}

// ideaMul is multiplication modulo 2^16+1 with 0 ≡ 2^16.
func ideaMul(a, b uint16) uint16 {
	if a == 0 {
		return uint16(1 - int32(b)) // 65537 - b mod 65536
	}
	if b == 0 {
		return uint16(1 - int32(a))
	}
	p := uint32(a) * uint32(b)
	hi, lo := p>>16, p&0xFFFF
	if lo >= hi {
		return uint16(lo - hi)
	}
	return uint16(lo - hi + 1)
}

// mulInv is the multiplicative inverse modulo 2^16+1.
func mulInv(x uint16) uint16 {
	if x <= 1 {
		return x
	}
	t1 := uint32(65537) / uint32(x)
	y := uint32(65537) % uint32(x)
	if y == 1 {
		return uint16(1 - t1)
	}
	t0 := uint32(1)
	xv := uint32(x)
	for y != 1 {
		q := xv / y
		xv %= y
		t0 += q * t1
		if xv == 1 {
			return uint16(t0)
		}
		q = y / xv
		y %= xv
		t1 += q * t0
	}
	return uint16(1 - t1)
}

func negMod(x uint16) uint16 { return uint16(-int32(x)) }

// ideaCrypt processes one 64-bit block with the given subkeys.
func ideaCrypt(block [4]uint16, k ideaKey, ops *cost.Counts) [4]uint16 {
	x1, x2, x3, x4 := block[0], block[1], block[2], block[3]
	ki := 0
	for r := 0; r < ideaRounds; r++ {
		// State lives in registers; only the subkey stream touches memory.
		ops.IntOps += 34
		ops.MemOps += 1
		x1 = ideaMul(x1, k[ki])
		x2 += k[ki+1]
		x3 += k[ki+2]
		x4 = ideaMul(x4, k[ki+3])
		t := x1 ^ x3
		t = ideaMul(t, k[ki+4])
		u := (x2 ^ x4) + t
		u = ideaMul(u, k[ki+5])
		t += u
		x1 ^= u
		x4 ^= t
		x2, x3 = x3^u, x2^t
		ki += 6
	}
	ops.IntOps += 10
	return [4]uint16{
		ideaMul(x1, k[ki]),
		x3 + k[ki+1],
		x2 + k[ki+2],
		ideaMul(x4, k[ki+3]),
	}
}

func runIDEA(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var key [16]byte
	for i := range key {
		key[i] = byte(rng.Uint64())
	}
	ek := ideaExpandKey(key)
	dk := ideaInvKey(ek)
	var ops cost.Counts
	ok := true
	for i := 0; i < 2048; i++ {
		var blk [4]uint16
		for j := range blk {
			blk[j] = uint16(rng.Uint64())
		}
		enc := ideaCrypt(blk, ek, &ops)
		dec := ideaCrypt(enc, dk, &ops)
		if dec != blk {
			ok = false
		}
	}
	return KernelResult{Kernel: IDEA, Counts: ops, Check: ok}
}

// ---- Huffman: build a code from symbol frequencies, encode, decode ----

type huffNode struct {
	freq        int
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

func runHuffman(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts
	// Skewed symbol distribution so codes have interesting lengths.
	src := make([]byte, 16*1024)
	for i := range src {
		r := rng.Intn(100)
		switch {
		case r < 40:
			src[i] = 'e'
		case r < 60:
			src[i] = 't'
		case r < 75:
			src[i] = byte('a' + rng.Intn(4))
		default:
			src[i] = byte(rng.Intn(64))
		}
		ops.MemOps++
	}
	freq := map[int]int{}
	for _, b := range src {
		freq[int(b)]++
		ops.IntOps += 2
	}
	h := &huffHeap{}
	for sym, f := range freq {
		*h = append(*h, &huffNode{freq: f, sym: sym})
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
		ops.IntOps += 12
		ops.MemOps += 4
	}
	root := heap.Pop(h).(*huffNode)

	codes := map[int][]bool{}
	var walk func(n *huffNode, prefix []bool)
	walk = func(n *huffNode, prefix []bool) {
		if n.sym >= 0 {
			codes[n.sym] = append([]bool(nil), prefix...)
			return
		}
		walk(n.left, append(prefix, false))
		walk(n.right, append(prefix, true))
	}
	if root.sym >= 0 { // degenerate single-symbol tree
		codes[root.sym] = []bool{false}
	} else {
		walk(root, nil)
	}

	var bits []bool
	for _, b := range src {
		bits = append(bits, codes[int(b)]...)
		ops.IntOps += 6
		ops.MemOps += 1
	}
	// Decode and verify.
	ok := true
	n := root
	var out []byte
	bitSteps := uint64(0)
	for _, bit := range bits {
		bitSteps++
		if n.sym < 0 {
			if bit {
				n = n.right
			} else {
				n = n.left
			}
		}
		if n.sym >= 0 {
			out = append(out, byte(n.sym))
			n = root
		}
	}
	ops.IntOps += 5 * bitSteps
	ops.MemOps += bitSteps / 3
	if len(out) != len(src) {
		ok = false
	} else {
		for i := range out {
			if out[i] != src[i] {
				ok = false
				break
			}
		}
	}
	return KernelResult{Kernel: Huffman, Counts: ops, Check: ok}
}
