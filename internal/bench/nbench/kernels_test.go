package nbench

import (
	"math"
	"sort"
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// TestHeapSortAdversarialInputs exercises the sorter on shapes that break
// naive implementations.
func TestHeapSortAdversarialInputs(t *testing.T) {
	cases := [][]int32{
		{},
		{1},
		{2, 1},
		{1, 1, 1, 1},
		{5, 4, 3, 2, 1},
		{1, 2, 3, 4, 5},
		{math.MaxInt32, math.MinInt32, 0, -1, 1},
	}
	for i, in := range cases {
		a := append([]int32(nil), in...)
		var ops cost.Counts
		heapSort(a, &ops)
		want := append([]int32(nil), in...)
		sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
		for j := range want {
			if a[j] != want[j] {
				t.Fatalf("case %d: sorted %v, want %v", i, a, want)
			}
		}
	}
}

// TestAssignmentOptimalAgainstBruteForce verifies the Hungarian solver's
// optimality certificate on small random instances by exhaustive search.
func TestAssignmentOptimalAgainstBruteForce(t *testing.T) {
	// We cannot call runAssignment on a custom matrix (it generates its
	// own); instead validate the same primal/dual argument it relies on:
	// solve a small instance with the identical algorithm inline.
	solve := func(orig [][]int64) int64 {
		n := len(orig)
		c := make([][]int64, n)
		for i := range c {
			c[i] = append([]int64(nil), orig[i]...)
		}
		rowRed := make([]int64, n)
		colRed := make([]int64, n)
		for i := 0; i < n; i++ {
			min := c[i][0]
			for j := 1; j < n; j++ {
				if c[i][j] < min {
					min = c[i][j]
				}
			}
			rowRed[i] = min
			for j := 0; j < n; j++ {
				c[i][j] -= min
			}
		}
		for j := 0; j < n; j++ {
			min := c[0][j]
			for i := 1; i < n; i++ {
				if c[i][j] < min {
					min = c[i][j]
				}
			}
			colRed[j] = min
			for i := 0; i < n; i++ {
				c[i][j] -= min
			}
		}
		matchRow := make([]int, n)
		matchCol := make([]int, n)
		for i := range matchRow {
			matchRow[i] = -1
			matchCol[i] = -1
		}
		var try func(c [][]int64, row int, visR, visC []bool) bool
		try = func(c [][]int64, row int, visR, visC []bool) bool {
			visR[row] = true
			for j := 0; j < n; j++ {
				if c[row][j] != 0 || visC[j] {
					continue
				}
				visC[j] = true
				if matchCol[j] == -1 || try(c, matchCol[j], visR, visC) {
					matchRow[row] = j
					matchCol[j] = row
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for {
				visR := make([]bool, n)
				visC := make([]bool, n)
				if try(c, i, visR, visC) {
					break
				}
				delta := int64(1 << 62)
				for r := 0; r < n; r++ {
					if !visR[r] {
						continue
					}
					for j := 0; j < n; j++ {
						if !visC[j] && c[r][j] < delta {
							delta = c[r][j]
						}
					}
				}
				for r := 0; r < n; r++ {
					if visR[r] {
						for j := 0; j < n; j++ {
							c[r][j] -= delta
						}
					}
				}
				for j := 0; j < n; j++ {
					if visC[j] {
						for r := 0; r < n; r++ {
							c[r][j] += delta
						}
					}
				}
			}
		}
		var total int64
		for i, j := range matchRow {
			total += orig[i][j]
		}
		return total
	}

	brute := func(orig [][]int64) int64 {
		n := len(orig)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := int64(1 << 62)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				var c int64
				for r, j := range perm {
					c += orig[r][j]
				}
				if c < best {
					best = c
				}
				return
			}
			for k := i; k < n; k++ {
				perm[i], perm[k] = perm[k], perm[i]
				rec(i + 1)
				perm[i], perm[k] = perm[k], perm[i]
			}
		}
		rec(0)
		return best
	}

	rng := sim.NewRNG(17)
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4) // 3..6: brute force tractable
		m := make([][]int64, n)
		for i := range m {
			m[i] = make([]int64, n)
			for j := range m[i] {
				m[i][j] = int64(rng.Intn(100))
			}
		}
		if got, want := solve(m), brute(m); got != want {
			t.Fatalf("trial %d (n=%d): hungarian %d, brute force %d", trial, n, got, want)
		}
	}
}

// TestBitfieldKnownPattern checks set/clear on a hand-computed region.
func TestBitfieldKnownPattern(t *testing.T) {
	// The kernel itself randomizes; verify the popcount helper and the
	// semantics its verification relies on with direct word operations.
	bits := make([]uint32, 4)
	for b := uint32(10); b < 50; b++ {
		bits[b/32] |= 1 << (b % 32)
	}
	total := 0
	for _, w := range bits {
		total += popcount(w)
	}
	if total != 40 {
		t.Fatalf("set 40 bits, counted %d", total)
	}
}

// TestFourierConstantTermAnalytic checks the a0 coefficient against a
// high-precision numerical reference for the kernel's integrand.
func TestFourierConstantTermAnalytic(t *testing.T) {
	// a0 = (1/2)∫₀² (x+1)^x dx ≈ 2.882 (dense trapezoid reference).
	f := func(x float64) float64 { return math.Pow(x+1, x) }
	n := 1 << 20
	h := 2.0 / float64(n)
	sum := (f(0) + f(2)) / 2
	for i := 1; i < n; i++ {
		sum += f(float64(i) * h)
	}
	ref := sum * h / 2
	if ref < 2.85 || ref > 2.92 {
		t.Fatalf("reference integral %v out of expected range", ref)
	}
	// The kernel's own verification compares coarse vs fine grids; ensure
	// the kernel runs and passes it.
	if res := runFourier(0); !res.Check {
		t.Fatal("fourier self-check failed")
	}
}

// TestLUDiagonalDominanceNoPivotBlowup: the factorization must stay
// stable (check bounded multipliers implicitly via reconstruction) across
// seeds.
func TestLUStableAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		if res := runLUDecomp(seed); !res.Check {
			t.Fatalf("seed %d: LU reconstruction failed", seed)
		}
	}
}

// TestNeuralNetLearns: training error must drop by the kernel's own
// criterion for several seeds (a flaky optimizer would break the MEM/INT
// figures' capture step).
func TestNeuralNetLearnsAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		if res := runNeuralNet(seed); !res.Check {
			t.Fatalf("seed %d: training did not reduce error", seed)
		}
	}
}

// TestStringSortOrdersArena: directly exercise the comparator semantics.
func TestStringSortOrdersArena(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		if res := runStringSort(seed); !res.Check {
			t.Fatalf("seed %d: arena not sorted", seed)
		}
	}
}

// TestIDEADifferentKeysDifferentCiphertext: sanity against degenerate key
// schedules.
func TestIDEADifferentKeysDifferentCiphertext(t *testing.T) {
	blk := [4]uint16{1, 2, 3, 4}
	var k1, k2 [16]byte
	k2[15] = 1
	var ops cost.Counts
	c1 := ideaCrypt(blk, ideaExpandKey(k1), &ops)
	c2 := ideaCrypt(blk, ideaExpandKey(k2), &ops)
	if c1 == c2 {
		t.Fatal("one-bit key change produced identical ciphertext")
	}
}
