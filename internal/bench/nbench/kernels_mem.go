package nbench

import (
	"sort"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// ---- string sort: arena-backed string array sorting (MEM index) ----

const stringSortCount = 2048

func runStringSort(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	// BYTEmark's string sort moves actual string bytes around an arena,
	// which is what makes it a memory benchmark rather than a pointer
	// shuffle. We replicate that: strings live in one arena and sorting
	// reorders the bytes themselves via insertion into a fresh arena.
	var ops cost.Counts
	strs := make([][]byte, stringSortCount)
	for i := range strs {
		n := 4 + rng.Intn(60)
		s := make([]byte, n)
		for j := range s {
			s[j] = byte('A' + rng.Intn(54))
		}
		strs[i] = s
		ops.MemOps += uint64(n)
	}
	// Sort indices by content (real comparisons: byte loads).
	idx := make([]int, len(strs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := strs[idx[a]], strs[idx[b]]
		n := len(sa)
		if len(sb) < n {
			n = len(sb)
		}
		for i := 0; i < n; i++ {
			ops.MemOps += 2
			ops.IntOps += 2
			if sa[i] != sb[i] {
				return sa[i] < sb[i]
			}
		}
		return len(sa) < len(sb)
	})
	// Materialize the sorted arena (the heavy memmove phase).
	arena := make([]byte, 0, 70*stringSortCount)
	for _, i := range idx {
		arena = append(arena, strs[i]...)
		ops.MemOps += uint64(2 * len(strs[i]))
		ops.IntOps += 4
	}
	// Verify ordering.
	ok := true
	for i := 1; i < len(idx); i++ {
		if string(strs[idx[i-1]]) > string(strs[idx[i]]) {
			ok = false
		}
	}
	return KernelResult{Kernel: StringSort, Counts: ops, Check: ok && len(arena) > 0}
}

// ---- assignment: task-assignment cost minimization (MEM index) ----

const assignN = 101 // BYTEmark's matrix is 101×101

// runAssignment solves an assignment problem with row/column reduction
// followed by augmenting-path matching on zeros (the Munkres skeleton, as
// in BYTEmark). It verifies that the result is a valid permutation and
// that its cost matches the dual lower bound (optimality certificate).
func runAssignment(seed uint64) KernelResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts
	c := make([][]int64, assignN)
	orig := make([][]int64, assignN)
	for i := range c {
		c[i] = make([]int64, assignN)
		orig[i] = make([]int64, assignN)
		for j := range c[i] {
			v := int64(rng.Intn(10000))
			c[i][j] = v
			orig[i][j] = v
		}
	}
	rowRed := make([]int64, assignN)
	colRed := make([]int64, assignN)

	// Row reduction.
	for i := 0; i < assignN; i++ {
		min := c[i][0]
		for j := 1; j < assignN; j++ {
			ops.MemOps++
			ops.IntOps++
			if c[i][j] < min {
				min = c[i][j]
			}
		}
		rowRed[i] = min
		for j := 0; j < assignN; j++ {
			c[i][j] -= min
			ops.MemOps++
		}
	}
	// Column reduction.
	for j := 0; j < assignN; j++ {
		min := c[0][j]
		for i := 1; i < assignN; i++ {
			ops.MemOps++
			ops.IntOps++
			if c[i][j] < min {
				min = c[i][j]
			}
		}
		colRed[j] = min
		for i := 0; i < assignN; i++ {
			c[i][j] -= min
			ops.MemOps++
		}
	}

	// Augmenting-path matching over zeros, with dual updates when the
	// matching cannot be extended (Hungarian algorithm).
	matchRow := make([]int, assignN) // row -> col
	matchCol := make([]int, assignN) // col -> row
	for i := range matchRow {
		matchRow[i] = -1
		matchCol[i] = -1
	}
	for i := 0; i < assignN; i++ {
		for {
			visR := make([]bool, assignN)
			visC := make([]bool, assignN)
			if tryAssign(c, i, visR, visC, matchRow, matchCol, &ops) {
				break
			}
			// Dual update: smallest uncovered value.
			delta := int64(1 << 62)
			for r := 0; r < assignN; r++ {
				if !visR[r] {
					continue
				}
				for j := 0; j < assignN; j++ {
					ops.MemOps++
					if !visC[j] && c[r][j] < delta {
						delta = c[r][j]
					}
				}
			}
			for r := 0; r < assignN; r++ {
				if visR[r] {
					rowRed[r] += delta
					for j := 0; j < assignN; j++ {
						c[r][j] -= delta
						ops.MemOps++
					}
				}
			}
			for j := 0; j < assignN; j++ {
				if visC[j] {
					colRed[j] -= delta
					for r := 0; r < assignN; r++ {
						c[r][j] += delta
						ops.MemOps++
					}
				}
			}
		}
	}

	// Verify: valid permutation and primal cost equals the dual bound.
	var cost64, dual int64
	seen := make([]bool, assignN)
	ok := true
	for i, j := range matchRow {
		if j < 0 || seen[j] {
			ok = false
			continue
		}
		seen[j] = true
		cost64 += orig[i][j]
	}
	for i := 0; i < assignN; i++ {
		dual += rowRed[i] + colRed[i]
	}
	if cost64 != dual {
		ok = false
	}
	return KernelResult{Kernel: Assignment, Counts: ops, Check: ok}
}

func tryAssign(c [][]int64, row int, visR, visC []bool, matchRow, matchCol []int, ops *cost.Counts) bool {
	visR[row] = true
	for j := 0; j < assignN; j++ {
		ops.MemOps++
		ops.IntOps++
		if c[row][j] != 0 || visC[j] {
			continue
		}
		visC[j] = true
		if matchCol[j] == -1 || tryAssign(c, matchCol[j], visR, visC, matchRow, matchCol, ops) {
			matchRow[row] = j
			matchCol[j] = row
			return true
		}
	}
	return false
}
