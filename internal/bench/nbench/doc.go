// Package nbench implements the NBench/ByteMark suite the paper uses to
// measure host-side intrusiveness (§4.2.2): ten real algorithm kernels
// grouped into the MEM, INT and FP indexes. Each kernel runs its genuine
// algorithm (verified by tests) while tallying operations for simulator
// replay.
//
// Index grouping follows BYTEmark:
//
//	INT: numeric sort, FP emulation, IDEA, Huffman
//	MEM: string sort, bitfield, assignment
//	FP:  Fourier, neural net, LU decomposition
//
// The paper could not run NBench inside guests (timer imprecision, §4.2.2)
// — only on the host. The vmdg reproduction honours that: Figures 5 and 6
// replay these profiles as host threads.
package nbench
