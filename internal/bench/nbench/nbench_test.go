package nbench

import (
	"testing"
	"testing/quick"
)

func TestAllKernelsSelfCheck(t *testing.T) {
	for k := Kernel(0); k < numKernels; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			res := RunKernel(k, 17)
			if !res.Check {
				t.Fatalf("%v self-check failed", k)
			}
			if res.Counts.Cycles() <= 0 {
				t.Fatalf("%v counted no work", k)
			}
			if res.Kernel != k {
				t.Fatalf("result kernel mismatch: %v", res.Kernel)
			}
		})
	}
}

func TestKernelsSelfCheckAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 99, 12345} {
		for k := Kernel(0); k < numKernels; k++ {
			if res := RunKernel(k, seed); !res.Check {
				t.Fatalf("%v failed with seed %d", k, seed)
			}
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	for k := Kernel(0); k < numKernels; k++ {
		a := RunKernel(k, 7)
		b := RunKernel(k, 7)
		if a.Counts != b.Counts {
			t.Fatalf("%v op counts nondeterministic: %+v vs %+v", k, a.Counts, b.Counts)
		}
	}
}

func TestIndexMembershipPartition(t *testing.T) {
	seen := map[Kernel]Index{}
	for _, idx := range []Index{MemIndex, IntIndex, FPIndex} {
		for _, k := range idx.Members() {
			if prev, dup := seen[k]; dup {
				t.Fatalf("%v in both %v and %v", k, prev, idx)
			}
			seen[k] = idx
		}
	}
	if len(seen) != int(numKernels) {
		t.Fatalf("indexes cover %d kernels, want %d", len(seen), numKernels)
	}
}

func TestMixCharacterByIndex(t *testing.T) {
	// The intrusiveness figures depend on each index having its expected
	// architectural character: MEM kernels bus-heavy, FP kernels
	// bus-light. Guard the calibration.
	avgShare := func(idx Index) (mem, fp float64) {
		var cycles float64
		for _, k := range idx.Members() {
			res := RunKernel(k, 3)
			c := res.Counts.Cycles()
			m := res.Counts.Mix()
			mem += m.Mem * c
			fp += m.FP * c
			cycles += c
		}
		return mem / cycles, fp / cycles
	}
	memShare, _ := avgShare(MemIndex)
	if memShare < 0.40 {
		t.Errorf("MEM index memory share = %.3f, want ≥0.40", memShare)
	}
	intShare, _ := avgShare(IntIndex)
	if intShare > 0.40 {
		t.Errorf("INT index memory share = %.3f, want ≤0.40", intShare)
	}
	fpMem, fpShare := avgShare(FPIndex)
	if fpMem > 0.20 {
		t.Errorf("FP index memory share = %.3f, want ≤0.20", fpMem)
	}
	if fpShare < 0.5 {
		t.Errorf("FP index floating-point share = %.3f, want ≥0.5", fpShare)
	}
}

func TestIDEAMulInvProperty(t *testing.T) {
	f := func(x uint16) bool {
		if x == 0 {
			return true // 0 represents 2^16; inverse handled separately
		}
		inv := mulInv(x)
		return ideaMul(x, inv) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIDEAKeyInversion(t *testing.T) {
	var key [16]byte
	for i := range key {
		key[i] = byte(i*37 + 11)
	}
	ek := ideaExpandKey(key)
	dk := ideaInvKey(ek)
	var ops KernelResult
	_ = ops
	blk := [4]uint16{0x1234, 0x5678, 0x9ABC, 0xDEF0}
	var c1, c2 KernelResult
	_ = c1
	_ = c2
	enc := ideaCrypt(blk, ek, &c1.Counts)
	dec := ideaCrypt(enc, dk, &c2.Counts)
	if dec != blk {
		t.Fatalf("IDEA round trip failed: %v -> %v -> %v", blk, enc, dec)
	}
	if enc == blk {
		t.Fatal("IDEA encryption is the identity")
	}
}

func TestSoftFloatAgainstHardware(t *testing.T) {
	var ops KernelResult
	cases := [][2]float64{{1, 1}, {2, 3}, {0.5, 8}, {100, 0.25}, {7.5, 7.5}}
	for _, c := range cases {
		got := softMul(softFromFloat(c[0]), softFromFloat(c[1]), &ops.Counts).toFloat()
		want := c[0] * c[1]
		if got < want*0.999 || got > want*1.001 {
			t.Fatalf("softMul(%v,%v) = %v, want ≈%v", c[0], c[1], got, want)
		}
	}
	// Zero handling.
	if softMul(softFromFloat(0), softFromFloat(5), &ops.Counts).toFloat() != 0 {
		t.Fatal("0·5 ≠ 0")
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 3: 2, 0xFF: 8, 0xFFFFFFFF: 32, 0x80000001: 2}
	for in, want := range cases {
		if got := popcount(in); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", in, got, want)
		}
	}
}

func TestProfileAndSuiteProfile(t *testing.T) {
	p, res := Profile(NumericSort, 1, 3)
	if !res.Check {
		t.Fatal("kernel failed during profile capture")
	}
	want := res.Counts.Cycles() * 3
	if p.TotalCycles() < want*0.999 || p.TotalCycles() > want*1.001 {
		t.Fatalf("profile cycles %v, want %v", p.TotalCycles(), want)
	}
	sp := SuiteProfile(1, 1)
	if sp.TotalCycles() <= p.TotalCycles() {
		t.Fatal("suite profile smaller than a single kernel")
	}
}

func TestKernelAndIndexStrings(t *testing.T) {
	for k := Kernel(0); k < numKernels; k++ {
		if k.String() == "" {
			t.Fatal("empty kernel name")
		}
	}
	if Kernel(99).String() == "" {
		t.Fatal("unknown kernel name empty")
	}
	for _, idx := range []Index{MemIndex, IntIndex, FPIndex} {
		if idx.String() == "" {
			t.Fatal("empty index name")
		}
	}
}

func TestUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown kernel")
		}
	}()
	RunKernel(Kernel(42), 1)
}
