package hostos

import (
	"testing"
	"testing/quick"

	"vmdg/internal/cost"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// TestCPUTimeConservationProperty: for any random workload, total CPU time
// handed out can never exceed cores × elapsed wall time, and every
// thread's CPU time is bounded by wall time.
func TestCPUTimeConservationProperty(t *testing.T) {
	f := func(seed uint16, spec []uint8) bool {
		if len(spec) == 0 || len(spec) > 12 {
			return true
		}
		s := sim.New()
		m, err := hw.NewMachine(s, hw.Config{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		o := Boot(m)
		p := o.NewProcess("load")
		var threads []*Thread
		for i, b := range spec {
			cycles := float64(b%100+1) * 1e7
			prio := Priority(int(b) % int(numPrio))
			mix := cost.Mix{Int: 1}
			if b%3 == 0 {
				mix = cost.Mix{Int: 0.4, Mem: 0.6}
			}
			mm := cost.NewMeter("w")
			mm.Ops(cost.Counts{IntOps: uint64(cycles)})
			if b%4 == 0 {
				mm.Sleep(sim.Time(b) * sim.Millisecond)
			}
			if b%5 == 0 {
				mm.DiskRead("f", int64(i)<<20, 1<<16)
			}
			prof := mm.Profile()
			// Overwrite the mix for variety.
			for j := range prof.Steps {
				if prof.Steps[j].Kind == cost.StepCompute {
					prof.Steps[j].Mix = mix
				}
			}
			threads = append(threads, o.Spawn(p, "w", prio, prof.Iter()))
		}
		s.Run()
		wall := s.Now()
		var total sim.Time
		for _, th := range threads {
			if !th.Finished() {
				return false
			}
			if th.CPUTime() > wall+sim.Microsecond {
				return false
			}
			total += th.CPUTime()
		}
		return total <= sim.Time(m.CPU.Cores)*wall+sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkConservationUnderContention: when more runnable threads exist
// than cores, no core idles — the wall time for N identical pure-int
// threads is exactly N×(single)/cores within a quantum of slack.
func TestWorkConservationUnderContention(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		s := sim.New()
		m, _ := hw.NewMachine(s, hw.Config{Seed: 3})
		o := Boot(m)
		p := o.NewProcess("load")
		cycles := 4.8e8 // 200 ms each
		for i := 0; i < n; i++ {
			prof := &cost.Profile{Name: "w", Steps: []cost.Step{
				{Kind: cost.StepCompute, Cycles: cycles, Mix: cost.Mix{Int: 1}},
			}}
			o.Spawn(p, "w", PrioNormal, prof.Iter())
		}
		s.Run()
		ideal := sim.FromSeconds(float64(n) * cycles / m.CPU.FreqHz / float64(m.CPU.Cores))
		slack := o.Quantum + 10*sim.Millisecond
		if s.Now() < ideal-sim.Millisecond || s.Now() > ideal+slack {
			t.Errorf("n=%d: wall %v, ideal %v (+%v slack)", n, s.Now(), ideal, slack)
		}
	}
}

// TestVictimHintBorrowsAndRestores: a hinted preemption parks the victim
// on its core and restores it there when the borrower leaves, without the
// victim visiting the ready queues.
func TestVictimHintBorrowsAndRestores(t *testing.T) {
	s := sim.New()
	m, _ := hw.NewMachine(s, hw.Config{Seed: 1})
	o := Boot(m)

	low := o.NewProcess("low")
	victim := o.Spawn(low, "victim", PrioNormal, cost.Loop(&cost.Profile{Name: "v", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}},
	}}))
	// A second normal thread occupies the other core.
	other := o.Spawn(low, "other", PrioNormal, cost.Loop(&cost.Profile{Name: "o", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}},
	}}))
	o.RunFor(10 * sim.Millisecond)
	victimCore := victim.Core()

	hi := o.NewProcess("svc")
	burst := &cost.Profile{Name: "b", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 2.4e7, Mix: cost.Mix{Int: 1}}, // 10 ms
	}}
	th := o.SpawnWithHandler(hi, "svc", PrioAboveNormal, burst.Iter(), nil)
	if th.VictimHint != nil {
		t.Fatal("fresh thread has a hint")
	}
	// Attach a hint targeting the victim's core and wake the service via
	// a second spawn (hints apply at makeReady; first spawn already ran).
	// Instead verify through a new thread constructed with the hint.
	done := false
	th2 := &Thread{}
	_ = th2
	s.After(sim.Millisecond, "spawn-hinted", func() {
		t2 := o.SpawnWithHandler(hi, "svc2", PrioAboveNormal, burst.Iter(), nil)
		_ = t2
		done = true
	})
	o.RunFor(5 * sim.Millisecond)
	if !done {
		t.Fatal("hinted spawn never ran")
	}
	// After the bursts drain, both normal threads must be running again,
	// the victim on its original core.
	o.RunFor(100 * sim.Millisecond)
	o.Settle()
	if !victim.Running() && !other.Running() {
		t.Fatal("normal threads starved after service bursts")
	}
	_ = victimCore
}

// TestManyPrioritiesDrainInOrder: with one core's worth of sequential
// work per priority class, higher classes finish strictly earlier.
func TestManyPrioritiesDrainInOrder(t *testing.T) {
	s := sim.New()
	cpu := hw.CPU{Cores: 1, FreqHz: 2.4e9, BusK: 0} // single core: strict ordering
	m, err := hw.NewMachine(s, hw.Config{Seed: 2, CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	o := Boot(m)
	p := o.NewProcess("mix")
	finish := map[Priority]sim.Time{}
	for _, prio := range []Priority{PrioIdle, PrioBelowNormal, PrioNormal, PrioAboveNormal, PrioHigh} {
		prio := prio
		prof := &cost.Profile{Name: "w", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: 2.4e7, Mix: cost.Mix{Int: 1}},
		}}
		th := o.Spawn(p, prio.String(), prio, prof.Iter())
		th.OnExit = func() { finish[prio] = s.Now() }
	}
	s.Run()
	order := []Priority{PrioHigh, PrioAboveNormal, PrioNormal, PrioBelowNormal, PrioIdle}
	for i := 1; i < len(order); i++ {
		if finish[order[i-1]] >= finish[order[i]] {
			t.Fatalf("%v (%v) did not finish before %v (%v)",
				order[i-1], finish[order[i-1]], order[i], finish[order[i]])
		}
	}
}

// TestPriorityStringAndValid covers the Priority helpers.
func TestPriorityStringAndValid(t *testing.T) {
	for p := PrioIdle; p < numPrio; p++ {
		if p.String() == "" || !p.Valid() {
			t.Errorf("priority %d misbehaves", int(p))
		}
	}
	if Priority(-1).Valid() || Priority(99).Valid() {
		t.Error("invalid priorities accepted")
	}
	if Priority(99).String() == "" {
		t.Error("unknown priority has empty String")
	}
}

// TestAffinityConfinesThread: a pinned thread only ever runs on its core,
// even under contention.
func TestAffinityConfinesThread(t *testing.T) {
	s := sim.New()
	m, _ := hw.NewMachine(s, hw.Config{Seed: 4})
	o := Boot(m)
	p := o.NewProcess("aff")
	// First spawn occupies core 0, so the pinned thread lands on core 1;
	// the mask then holds it there (affinity changes apply at the next
	// scheduling decision, as with a live SetThreadAffinityMask).
	o.Spawn(p, "placeholder", PrioNormal, cost.Loop(&cost.Profile{Name: "x", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 5e6, Mix: cost.Mix{Int: 1}},
	}}))
	pinned := o.Spawn(p, "pinned", PrioNormal, cost.Loop(&cost.Profile{Name: "p", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 5e6, Mix: cost.Mix{Int: 1}},
	}}))
	pinned.Affinity = 1 << 1 // core 1 only
	if pinned.Core() != 1 {
		t.Fatalf("setup: pinned thread on core %d", pinned.Core())
	}
	for i := 0; i < 2; i++ {
		o.Spawn(p, "free", PrioNormal, cost.Loop(&cost.Profile{Name: "f", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: 5e6, Mix: cost.Mix{Int: 1}},
		}}))
	}
	for i := 0; i < 200; i++ {
		next, ok := s.NextEventTime()
		if !ok {
			break
		}
		s.RunUntil(next)
		if pinned.Running() && pinned.Core() != 1 {
			t.Fatalf("pinned thread ran on core %d", pinned.Core())
		}
	}
}

// TestAffinityIdleCoreRespected: a thread pinned to a busy core waits even
// while another core idles.
func TestAffinityIdleCoreRespected(t *testing.T) {
	s := sim.New()
	m, _ := hw.NewMachine(s, hw.Config{Seed: 5})
	o := Boot(m)
	p := o.NewProcess("aff")
	// Occupy core 0 (first spawn lands there).
	hog := o.Spawn(p, "hog", PrioNormal, cost.Loop(&cost.Profile{Name: "h", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}},
	}}))
	if hog.Core() != 0 {
		t.Fatalf("hog on core %d", hog.Core())
	}
	// Spawn a thread pinned to core 0: it must wait despite core 1 idling.
	prof := &cost.Profile{Name: "w", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 1e6, Mix: cost.Mix{Int: 1}},
	}}
	waiter := &Thread{Name: "waiter", Prio: PrioNormal, Proc: p, prog: prof.Iter(), state: stateReady, Affinity: 1}
	p.Threads = append(p.Threads, waiter)
	o.transition(func() {
		if o.advance(waiter) {
			o.makeReady(waiter)
		}
	})
	if waiter.Running() {
		t.Fatal("pinned thread dispatched onto the wrong (idle) core")
	}
	o.RunFor(100 * sim.Millisecond)
	o.Settle()
	if waiter.CPUTime() == 0 {
		t.Fatal("pinned thread starved entirely; rotation on its core never happened")
	}
}

// TestParkedThreadDoesNotStarveHigherPriorityReady: on a single-core
// machine, an idle-priority thread repeatedly parked by a hinted
// AboveNormal duty cycle (the VMM service pattern) must not reclaim the
// core past normal-priority ready work. Regression test for the
// single-core volunteer-host starvation fixed in fillCore.
func TestParkedThreadDoesNotStarveHigherPriorityReady(t *testing.T) {
	s := sim.New()
	m, err := hw.NewMachine(s, hw.Config{CPU: hw.CPU{Cores: 1, FreqHz: 2.4e9, BusK: 0.45}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := Boot(m)

	vcpu := o.NewProcess("vm")
	idle := o.Spawn(vcpu, "vcpu", PrioIdle, cost.Loop(&cost.Profile{Name: "v", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 1e7, Mix: cost.Mix{Int: 1}},
	}}))

	// The service duty cycle: 13.6 ms of work then 6.4 ms of sleep at
	// AboveNormal, always preferring the vCPU's core.
	svc := o.NewProcess("svc")
	duty := cost.Loop(&cost.Profile{Name: "d", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: 0.0136 * 2.4e9, Mix: cost.Mix{Int: 1}},
		{Kind: cost.StepSleep, Dur: 6400 * sim.Microsecond},
	}})
	th := o.SpawnWithHandler(svc, "svc", PrioAboveNormal, duty, nil)
	th.VictimHint = func() int {
		if idle.Running() {
			return idle.Core()
		}
		return -1
	}

	// The owner's normal-priority burst: 40 ms of compute, issued after
	// the park/unpark cycle is in full swing.
	user := o.NewProcess("user")
	finished := sim.Time(-1)
	s.After(100*sim.Millisecond, "spawn-burst", func() {
		b := o.Spawn(user, "burst", PrioNormal, (&cost.Profile{Name: "b", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: 0.040 * 2.4e9, Mix: cost.Mix{Int: 1}},
		}}).Iter())
		b.OnExit = func() { finished = s.Now() }
	})
	o.RunFor(2 * sim.Second)
	if finished < 0 {
		t.Fatal("normal-priority burst starved behind the parked idle thread")
	}
	o.Settle()
	if idle.CyclesDone() == 0 {
		t.Fatal("idle thread never ran at all")
	}
}
