package hostos

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

type threadState int

const (
	stateReady threadState = iota
	stateRunning
	stateBlocked
	stateDone
)

var stateNames = [...]string{"ready", "running", "blocked", "done"}

func (s threadState) String() string { return stateNames[s] }

// Thread is a schedulable entity executing a cost.Program.
type Thread struct {
	Name string
	Prio Priority
	Proc *Process

	// Handler, if non-nil, services non-compute steps the default handler
	// cannot (network steps, guest clock reads). It is consulted first for
	// every non-compute step.
	Handler StepHandler

	// OnExit fires when the program ends.
	OnExit func()

	// Affinity, if non-zero, is a bit mask of cores the thread may run
	// on (bit i = core i) — SetProcessAffinityMask semantics. Zero means
	// all cores. Desktop-grid volunteers use it to confine a VM to a
	// subset of the machine.
	Affinity uint64

	// VictimHint, if set, nominates the core this thread should preempt
	// when it wakes and no core is idle (-1 for no preference). VMM
	// service threads point it at their vCPU's core: device emulation and
	// timer work displace the VM they serve, not an unrelated process —
	// unless the vCPU is itself starved, in which case the work lands
	// wherever the scheduler can place it (the Figure 7 mechanism).
	VictimHint func() int

	prog  cost.Program
	state threadState
	core  int // valid while running

	// Current compute step, expanded progress model.
	remaining float64 // cycles left in the current compute step
	mix       cost.Mix
	rate      float64  // cycles/sec at last refresh
	settled   sim.Time // time up to which remaining reflects progress

	sliceEnd sim.Time // quantum expiry for the current dispatch

	// Accounting.
	cpuTime    sim.Time // time spent dispatched on a core
	cyclesDone float64  // compute cycles retired
	dispatches uint64
	preempted  uint64
}

// State description helpers (primarily for tests and traces).

// Running reports whether the thread is currently dispatched on a core.
func (t *Thread) Running() bool { return t.state == stateRunning }

// Core returns the core the thread last ran on (valid while Running).
func (t *Thread) Core() int { return t.core }

// Blocked reports whether the thread is waiting on I/O, sleep, or a wake.
func (t *Thread) Blocked() bool { return t.state == stateBlocked }

// Finished reports whether the thread's program has ended.
func (t *Thread) Finished() bool { return t.state == stateDone }

// CPUTime returns the accumulated time the thread has been dispatched.
// Call OS.Settle first for an instantaneously exact figure.
func (t *Thread) CPUTime() sim.Time { return t.cpuTime }

// CyclesDone returns compute cycles retired so far.
func (t *Thread) CyclesDone() float64 { return t.cyclesDone }

// Dispatches returns how many times the thread was placed on a core.
func (t *Thread) Dispatches() uint64 { return t.dispatches }

// Preemptions returns how many times the thread was involuntarily removed
// from a core by a higher-priority thread.
func (t *Thread) Preemptions() uint64 { return t.preempted }

// allowedOn reports whether the affinity mask admits the given core.
func (t *Thread) allowedOn(core int) bool {
	return t.Affinity == 0 || t.Affinity&(1<<uint(core)) != 0
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread{%s %v %v}", t.Name, t.Prio, t.state)
}

// Process groups threads for accounting, mirroring an OS process. VM
// monitors, benchmarks, and BOINC clients are each a Process.
type Process struct {
	Name    string
	Threads []*Thread
}

// CPUTime sums the CPU time of all threads in the process.
func (p *Process) CPUTime() sim.Time {
	var total sim.Time
	for _, t := range p.Threads {
		total += t.cpuTime
	}
	return total
}

// CyclesDone sums retired compute cycles across the process's threads.
func (p *Process) CyclesDone() float64 {
	var total float64
	for _, t := range p.Threads {
		total += t.cyclesDone
	}
	return total
}

// Finished reports whether every thread in the process has exited.
func (p *Process) Finished() bool {
	for _, t := range p.Threads {
		if t.state != stateDone {
			return false
		}
	}
	return true
}

// StepHandler services non-compute steps on behalf of a thread. Handle
// returns true if the thread must block; in that case the handler (or the
// subsystem it delegated to) is responsible for calling OS.Unblock(t)
// exactly once when the operation completes. Returning false means the
// step completed synchronously and execution continues.
type StepHandler interface {
	Handle(t *Thread, s cost.Step) (blocked bool)
}

// StepHandlerFunc adapts a function to the StepHandler interface.
type StepHandlerFunc func(t *Thread, s cost.Step) bool

// Handle implements StepHandler.
func (f StepHandlerFunc) Handle(t *Thread, s cost.Step) bool { return f(t, s) }
