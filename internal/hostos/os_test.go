package hostos

import (
	"math"
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

func newOS(t *testing.T) *OS {
	t.Helper()
	s := sim.New()
	m, err := hw.NewMachine(s, hw.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return Boot(m)
}

// computeProfile builds a profile of total cycles of compute with the given
// mix, split into chunks so quantum preemption has boundaries to respect.
func computeProfile(name string, cycles float64, mix cost.Mix) *cost.Profile {
	const chunk = 10e6
	p := &cost.Profile{Name: name}
	for cycles > 0 {
		c := math.Min(cycles, chunk)
		p.Steps = append(p.Steps, cost.Step{Kind: cost.StepCompute, Cycles: c, Mix: mix})
		cycles -= c
	}
	return p
}

func TestSingleThreadTiming(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("bench")
	cycles := 2.4e9 // exactly one second at 2.4 GHz
	var finished sim.Time
	th := o.Spawn(p, "w", PrioNormal, computeProfile("w", cycles, cost.Mix{Int: 1}).Iter())
	th.OnExit = func() { finished = o.Sim.Now() }
	o.Sim.Run()
	if math.Abs(finished.Seconds()-1.0) > 1e-6 {
		t.Fatalf("1s of work finished at %v", finished)
	}
	if math.Abs(th.CyclesDone()-cycles) > 1 {
		t.Fatalf("cycles done = %v", th.CyclesDone())
	}
	if math.Abs(th.CPUTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("cpu time = %v", th.CPUTime())
	}
}

func TestTwoALUThreadsPerfectScaling(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("bench")
	cycles := 2.4e9
	var done int
	var last sim.Time
	for i := 0; i < 2; i++ {
		th := o.Spawn(p, "w", PrioNormal, computeProfile("w", cycles, cost.Mix{Int: 1}).Iter())
		th.OnExit = func() { done++; last = o.Sim.Now() }
	}
	o.Sim.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	// Pure ALU threads do not contend: both finish in ~1 s.
	if math.Abs(last.Seconds()-1.0) > 1e-6 {
		t.Fatalf("two ALU threads finished at %v, want 1s", last)
	}
}

func TestMemoryContentionSlowsCoRunners(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("bench")
	cycles := 2.4e9
	mix := cost.Mix{Int: 0.5, Mem: 0.5}
	var last sim.Time
	for i := 0; i < 2; i++ {
		th := o.Spawn(p, "w", PrioNormal, computeProfile("w", cycles, mix).Iter())
		th.OnExit = func() { last = o.Sim.Now() }
	}
	o.Sim.Run()
	want := 1 + o.M.CPU.BusK*0.25 // slowdown 1 + K·m²
	if math.Abs(last.Seconds()-want) > 1e-3 {
		t.Fatalf("contended finish = %v, want ~%vs", last, want)
	}
}

func TestThreeThreadsTwoCoresFairShare(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("bench")
	cycles := 2.4e9
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		th := o.Spawn(p, "w", PrioNormal, computeProfile("w", cycles, cost.Mix{Int: 1}).Iter())
		th.OnExit = func() { finish = append(finish, o.Sim.Now()) }
	}
	o.Sim.Run()
	if len(finish) != 3 {
		t.Fatalf("finished %d", len(finish))
	}
	// 3 seconds of aggregate work on 2 cores: last finisher ≥ 1.5 s, and
	// round-robin should keep completions within ~a quantum of each other
	// near the theoretical 1.5 s.
	last := finish[2].Seconds()
	if last < 1.499 || last > 1.6 {
		t.Fatalf("last finish = %v, want ~1.5s", last)
	}
}

func TestPriorityPreemption(t *testing.T) {
	o := newOS(t)
	low := o.NewProcess("low")
	cycles := 2.4e9
	// Fill both cores with low-priority work.
	for i := 0; i < 2; i++ {
		o.Spawn(low, "low", PrioBelowNormal, computeProfile("l", cycles, cost.Mix{Int: 1}).Iter())
	}
	// At t=100ms, a normal-priority thread arrives and must preempt.
	var hiStart, hiEnd sim.Time
	o.Sim.At(100*sim.Millisecond, "spawn-hi", func() {
		hi := o.NewProcess("hi")
		hiStart = o.Sim.Now()
		th := o.Spawn(hi, "hi", PrioNormal, computeProfile("h", cycles/4, cost.Mix{Int: 1}).Iter())
		th.OnExit = func() { hiEnd = o.Sim.Now() }
	})
	o.Sim.Run()
	// 0.25 s of work, dispatched immediately via preemption.
	if got := (hiEnd - hiStart).Seconds(); math.Abs(got-0.25) > 1e-3 {
		t.Fatalf("high-prio latency = %v, want 0.25s", got)
	}
}

func TestIdlePriorityStarvedByNormal(t *testing.T) {
	o := newOS(t)
	cycles := 2.4e9
	pn := o.NewProcess("normal")
	var normalEnd sim.Time
	for i := 0; i < 2; i++ {
		th := o.Spawn(pn, "n", PrioNormal, computeProfile("n", cycles, cost.Mix{Int: 1}).Iter())
		th.OnExit = func() { normalEnd = o.Sim.Now() }
	}
	pi := o.NewProcess("idle")
	idle := o.Spawn(pi, "i", PrioIdle, computeProfile("i", cycles, cost.Mix{Int: 1}).Iter())
	o.RunFor(500 * sim.Millisecond)
	o.Settle()
	if idle.CPUTime() != 0 {
		t.Fatalf("idle thread ran %v while normal threads saturate cores", idle.CPUTime())
	}
	o.Sim.Run()
	if !idle.Finished() {
		t.Fatal("idle thread never finished after cores freed")
	}
	_ = normalEnd
}

func TestQuantumRoundRobinCounts(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("rr")
	cycles := 2.4e9
	ths := make([]*Thread, 4)
	for i := range ths {
		ths[i] = o.Spawn(p, "w", PrioNormal, computeProfile("w", cycles, cost.Mix{Int: 1}).Iter())
	}
	o.Sim.Run()
	for i, th := range ths {
		if th.Dispatches() < 10 {
			t.Errorf("thread %d dispatched only %d times; round-robin broken?", i, th.Dispatches())
		}
	}
	// Aggregate: 4 s of work on 2 cores → 2 s wall.
	if got := o.Sim.Now().Seconds(); math.Abs(got-2.0) > 0.05 {
		t.Fatalf("wall = %v, want ~2s", got)
	}
}

func TestDiskStepBlocksThread(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("io")
	m := cost.NewMeter("io")
	m.Int(1e6)
	m.DiskRead("f", 0, 1<<20)
	m.Int(1e6)
	prof := m.Profile()
	var end sim.Time
	th := o.Spawn(p, "io", PrioNormal, prof.Iter())
	th.OnExit = func() { end = o.Sim.Now() }
	o.Sim.Run()
	if !th.Finished() {
		t.Fatal("io thread did not finish")
	}
	// Wall time must include the disk service (≥ ~11 ms seek + transfer)
	// but CPU time only the compute portion.
	if end < 10*sim.Millisecond {
		t.Fatalf("finished at %v, disk latency missing", end)
	}
	if th.CPUTime() >= end {
		t.Fatalf("cpu time %v not less than wall %v despite blocking", th.CPUTime(), end)
	}
	if o.M.Disk.Reads != 1 {
		t.Fatalf("disk reads = %d", o.M.Disk.Reads)
	}
}

func TestSleepStep(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("s")
	m := cost.NewMeter("s")
	m.Sleep(250 * sim.Millisecond)
	var end sim.Time
	th := o.Spawn(p, "s", PrioNormal, m.Profile().Iter())
	th.OnExit = func() { end = o.Sim.Now() }
	o.Sim.Run()
	if end < 250*sim.Millisecond {
		t.Fatalf("woke at %v", end)
	}
	if th.CPUTime() > sim.Millisecond {
		t.Fatalf("sleeping burned %v CPU", th.CPUTime())
	}
}

func TestClockStepSynchronous(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("c")
	m := cost.NewMeter("c")
	m.Clock()
	m.Int(100)
	th := o.Spawn(p, "c", PrioNormal, m.Profile().Iter())
	o.Sim.Run()
	if !th.Finished() {
		t.Fatal("clock step wedged the thread")
	}
}

func TestCustomHandler(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("h")
	m := cost.NewMeter("h")
	m.NetSend(1, 1000)
	var sawSend bool
	handler := StepHandlerFunc(func(tt *Thread, s cost.Step) bool {
		if s.Kind == cost.StepNetSend {
			sawSend = true
			o.Sim.After(sim.Millisecond, "net-done", func() { o.Unblock(tt) })
			return true
		}
		return false
	})
	th := o.SpawnWithHandler(p, "h", PrioNormal, m.Profile().Iter(), handler)
	o.Sim.Run()
	if !th.Finished() {
		t.Fatal("handler thread did not finish")
	}
	if !sawSend {
		t.Fatal("handler never saw the net step")
	}
}

func TestUnhandledNetStepPanics(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("x")
	m := cost.NewMeter("x")
	m.NetSend(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for net step without handler")
		}
	}()
	o.Spawn(p, "x", PrioNormal, m.Profile().Iter())
	o.Sim.Run()
}

func TestInvalidPriorityPanics(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid priority")
		}
	}()
	o.Spawn(p, "x", Priority(99), computeProfile("x", 1, cost.Mix{Int: 1}).Iter())
}

func TestPreemptionCounted(t *testing.T) {
	o := newOS(t)
	lowp := o.NewProcess("low")
	cycles := 2.4e9
	lows := make([]*Thread, 2)
	for i := range lows {
		lows[i] = o.Spawn(lowp, "low", PrioIdle, computeProfile("l", cycles, cost.Mix{Int: 1}).Iter())
	}
	o.Sim.At(50*sim.Millisecond, "hi", func() {
		hp := o.NewProcess("hi")
		o.Spawn(hp, "hi", PrioNormal, computeProfile("h", cycles/10, cost.Mix{Int: 1}).Iter())
	})
	o.Sim.Run()
	if lows[0].Preemptions()+lows[1].Preemptions() == 0 {
		t.Fatal("no preemption recorded")
	}
}

func TestProcessAccounting(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("acc")
	cycles := 1.2e9
	o.Spawn(p, "a", PrioNormal, computeProfile("a", cycles, cost.Mix{Int: 1}).Iter())
	o.Spawn(p, "b", PrioNormal, computeProfile("b", cycles, cost.Mix{Int: 1}).Iter())
	o.Sim.Run()
	if math.Abs(p.CyclesDone()-2*cycles) > 1 {
		t.Fatalf("process cycles = %v", p.CyclesDone())
	}
	if !p.Finished() {
		t.Fatal("process not finished")
	}
	if math.Abs(p.CPUTime().Seconds()-1.0) > 1e-6 {
		t.Fatalf("process cpu = %v, want 1s total", p.CPUTime())
	}
}

func TestIdleTimeAccounting(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("i")
	o.Spawn(p, "w", PrioNormal, computeProfile("w", 2.4e9, cost.Mix{Int: 1}).Iter())
	o.Sim.Run()
	// Core 0 busy 1 s; core 1 idle throughout.
	if o.IdleTime(1) < 999*sim.Millisecond {
		t.Fatalf("core 1 idle = %v, want ~1s", o.IdleTime(1))
	}
	if o.IdleTime(0) > sim.Millisecond {
		t.Fatalf("core 0 idle = %v, want ~0", o.IdleTime(0))
	}
}

func TestRunUntilFinished(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("f")
	o.Spawn(p, "w", PrioNormal, computeProfile("w", 2.4e8, cost.Mix{Int: 1}).Iter())
	if !o.RunUntilFinished(p, 10*sim.Second) {
		t.Fatal("process did not finish before deadline")
	}
	o2 := newOS(t)
	p2 := o2.NewProcess("f2")
	o2.Spawn(p2, "w", PrioNormal, computeProfile("w", 2.4e12, cost.Mix{Int: 1}).Iter())
	if o2.RunUntilFinished(p2, 10*sim.Millisecond) {
		t.Fatal("1000s of work claimed finished in 10ms")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, float64, uint64) {
		s := sim.New()
		m, _ := hw.NewMachine(s, hw.Config{Seed: 99})
		o := Boot(m)
		p := o.NewProcess("d")
		for i := 0; i < 5; i++ {
			mm := cost.NewMeter("w")
			mm.Int(5e8)
			mm.DiskRead("f", int64(i)<<20, 1<<19)
			mm.FP(3e8)
			mm.Sleep(3 * sim.Millisecond)
			mm.Mem(1e8)
			o.Spawn(p, "w", PrioNormal, mm.Profile().Iter())
		}
		s.Run()
		return s.Now(), p.CyclesDone(), s.Fired()
	}
	t1, c1, f1 := run()
	t2, c2, f2 := run()
	if t1 != t2 || c1 != c2 || f1 != f2 {
		t.Fatalf("runs diverged: (%v,%v,%d) vs (%v,%v,%d)", t1, c1, f1, t2, c2, f2)
	}
}

func TestThreadStringAndStates(t *testing.T) {
	o := newOS(t)
	p := o.NewProcess("s")
	th := o.Spawn(p, "w", PrioNormal, computeProfile("w", 1e6, cost.Mix{Int: 1}).Iter())
	if th.String() == "" {
		t.Fatal("empty String")
	}
	if !th.Running() {
		t.Fatal("spawned thread with free core should be running")
	}
	o.Sim.Run()
	if !th.Finished() || th.Running() || th.Blocked() {
		t.Fatalf("bad final state: %v", th)
	}
}
