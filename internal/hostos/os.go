package hostos

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// DefaultQuantum approximates the Windows XP workstation timeslice
// (2 clock ticks × ~15.6 ms, foreground-boosted threads get more; a single
// representative value suffices for the ratios studied here).
const DefaultQuantum = 30 * sim.Millisecond

// zeroStepLimit bounds how many zero-cost steps a thread may retire inside
// one scheduler event before the OS declares the program defective. It
// protects the simulator from spinning on a degenerate infinite program.
const zeroStepLimit = 1 << 20

type coreState struct {
	t     *Thread
	event *sim.Event // pending step-done-or-quantum event
	// parked holds a thread displaced by a hinted preemption: the
	// preemptor borrows this core's slot and the parked thread resumes
	// here as soon as the core frees, without re-entering the ready
	// queues (VMM service work runs in its VM's scheduling context).
	parked *Thread
}

// OS is the host operating system instance for one machine.
type OS struct {
	M       *hw.Machine
	Sim     *sim.Simulator
	Quantum sim.Time

	cores []coreState
	ready [numPrio][]*Thread
	procs []*Process

	idleTime []sim.Time // per-core idle accumulation
	lastIdle []sim.Time // per-core: when the core last became idle
}

// Boot creates the OS for machine m.
func Boot(m *hw.Machine) *OS {
	o := &OS{
		M:        m,
		Sim:      m.Sim,
		Quantum:  DefaultQuantum,
		cores:    make([]coreState, m.CPU.Cores),
		idleTime: make([]sim.Time, m.CPU.Cores),
		lastIdle: make([]sim.Time, m.CPU.Cores),
	}
	return o
}

// NewProcess registers an empty process.
func (o *OS) NewProcess(name string) *Process {
	p := &Process{Name: name}
	o.procs = append(o.procs, p)
	return p
}

// Spawn creates a thread in process p running prog at priority prio and
// makes it immediately runnable.
func (o *OS) Spawn(p *Process, name string, prio Priority, prog cost.Program) *Thread {
	return o.SpawnWithHandler(p, name, prio, prog, nil)
}

// SpawnWithHandler is Spawn with a custom StepHandler attached before the
// program's first step executes (required for programs whose very first
// step needs the handler, e.g. network benchmarks).
func (o *OS) SpawnWithHandler(p *Process, name string, prio Priority, prog cost.Program, h StepHandler) *Thread {
	if !prio.Valid() {
		panic(fmt.Sprintf("hostos: invalid priority %d", int(prio)))
	}
	t := &Thread{Name: name, Prio: prio, Proc: p, prog: prog, state: stateReady, Handler: h}
	p.Threads = append(p.Threads, t)
	o.transition(func() {
		if !o.advance(t) {
			return // program blocked or exited on its very first step
		}
		o.makeReady(t)
	})
	return t
}

// Unblock marks a blocked thread runnable again. Subsystems that accepted
// a blocking step (disk, network, timers) call this exactly once per block.
func (o *OS) Unblock(t *Thread) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("hostos: Unblock of %v", t))
	}
	o.transition(func() {
		t.state = stateReady
		if !o.advance(t) {
			return
		}
		o.makeReady(t)
	})
}

// Settle brings all running threads' accounting up to the current instant.
// Call before reading CPUTime/CyclesDone mid-run.
func (o *OS) Settle() { o.settleAll() }

// IdleTime reports accumulated idle time for core i.
func (o *OS) IdleTime(core int) sim.Time {
	it := o.idleTime[core]
	if o.cores[core].t == nil {
		it += o.Sim.Now() - o.lastIdle[core]
	}
	return it
}

// ----- scheduler internals -----

// transition wraps every scheduling mutation: settle progress, mutate
// dispatch state, then refresh rates and completion events machine-wide
// (a dispatch change on one core shifts bus contention on all cores).
func (o *OS) transition(mutate func()) {
	o.settleAll()
	mutate()
	o.refreshAll()
}

func (o *OS) settleAll() {
	now := o.Sim.Now()
	for i := range o.cores {
		t := o.cores[i].t
		if t == nil {
			continue
		}
		dt := now - t.settled
		if dt <= 0 {
			continue
		}
		done := t.rate * dt.Seconds()
		if done > t.remaining {
			done = t.remaining
		}
		t.remaining -= done
		t.cyclesDone += done
		t.cpuTime += dt
		t.settled = now
	}
}

func (o *OS) refreshAll() {
	now := o.Sim.Now()
	shares := make([]float64, len(o.cores))
	for i := range o.cores {
		if t := o.cores[i].t; t != nil {
			shares[i] = t.mix.Mem
		} else {
			shares[i] = -1
		}
	}
	rates := o.M.CPU.Rates(shares)
	for i := range o.cores {
		c := &o.cores[i]
		if c.event != nil {
			c.event.Cancel()
			c.event = nil
		}
		t := c.t
		if t == nil {
			continue
		}
		t.rate = rates[i]
		t.settled = now
		finish := now + sim.FromSeconds(t.remaining/t.rate)
		if finish <= now {
			// Sub-nanosecond residue: force progress so rounding can never
			// produce a same-timestamp reschedule livelock.
			finish = now + 1
		}
		wake := finish
		label := "step-done"
		if t.sliceEnd < finish {
			wake = t.sliceEnd
			label = "quantum"
		}
		core := i
		c.event = o.Sim.At(wake, label, func() { o.coreEvent(core) })
	}
}

// coreEvent fires when the running thread either completes its compute
// step or exhausts its quantum, whichever came first.
func (o *OS) coreEvent(core int) {
	o.transition(func() {
		c := &o.cores[core]
		t := c.t
		if t == nil {
			return // stale event that escaped cancellation
		}
		c.event = nil
		// Completion epsilon must exceed the worst-case event-time rounding
		// error of 0.5 ns × rate (≈1.2 cycles at 2.4 GHz), or a step can
		// land just above zero and masquerade as a quantum expiry.
		if t.remaining <= 2 { // step complete (within rounding)
			t.remaining = 0
			if o.advance(t) {
				// More compute: keep running, fresh completion below. The
				// thread keeps its core; quantum continues.
				return
			}
			// advance blocked or exited the thread; free the core.
			o.undispatch(core, false)
			o.fillCore(core)
			return
		}
		// Quantum expiry: round-robin only if an equal-or-higher priority
		// thread that may run here waits; otherwise renew the slice.
		if o.hasReadyAtLeastFor(t.Prio, core) {
			o.undispatch(core, true)
			o.makeReadyBack(t)
			o.fillCore(core)
			return
		}
		t.sliceEnd = o.Sim.Now() + o.Quantum
	})
}

// advance pulls steps from t's program until it produces compute work,
// blocks, or exits. Returns true if t has compute work and should be
// runnable; false if it blocked or exited (state already updated).
func (o *OS) advance(t *Thread) bool {
	for spins := 0; ; spins++ {
		if spins > zeroStepLimit {
			panic(fmt.Sprintf("hostos: thread %s made no progress over %d steps", t.Name, spins))
		}
		step, ok := t.prog.Next()
		if !ok {
			t.state = stateDone
			if t.OnExit != nil {
				exit := t.OnExit
				// Fire after the transition completes so the callback sees
				// settled accounting; zero delay keeps ordering deterministic.
				o.Sim.After(0, "thread-exit", exit)
			}
			return false
		}
		if step.Kind == cost.StepCompute {
			if step.Cycles <= 0 {
				continue
			}
			t.remaining = step.Cycles
			t.mix = step.Mix
			return true
		}
		if t.Handler != nil {
			if t.Handler.Handle(t, step) {
				t.state = stateBlocked
				return false
			}
			continue
		}
		if o.defaultHandle(t, step) {
			t.state = stateBlocked
			return false
		}
	}
}

// defaultHandle services steps every host thread supports natively.
func (o *OS) defaultHandle(t *Thread, step cost.Step) (blocked bool) {
	switch step.Kind {
	case cost.StepDiskRead:
		o.M.Disk.Submit(step.File, step.Offset, step.Bytes, false, func() { o.Unblock(t) })
		return true
	case cost.StepDiskWrite, cost.StepDiskSync:
		o.M.Disk.Submit(step.File, step.Offset, step.Bytes, true, func() { o.Unblock(t) })
		return true
	case cost.StepSleep:
		o.Sim.After(step.Dur, "sleep-wake", func() { o.Unblock(t) })
		return true
	case cost.StepClock:
		return false // host clock reads are exact and instantaneous here
	default:
		panic(fmt.Sprintf("hostos: thread %s issued %v with no handler attached", t.Name, step.Kind))
	}
}

func (o *OS) makeReady(t *Thread) {
	t.state = stateReady
	// Try an idle core first (affinity-permitting).
	for i := range o.cores {
		if o.cores[i].t == nil && t.allowedOn(i) {
			o.dispatch(t, i)
			return
		}
	}
	// A victim hint borrows the named core when it is preemptible: the
	// displaced thread parks on the core and resumes there when it frees.
	if t.VictimHint != nil {
		if c := t.VictimHint(); c >= 0 && c < len(o.cores) && t.allowedOn(c) &&
			o.cores[c].t != nil && o.cores[c].t.Prio < t.Prio && o.cores[c].parked == nil {
			v := o.cores[c].t
			o.undispatch(c, true)
			v.state = stateReady
			o.cores[c].parked = v
			o.dispatch(t, c)
			return
		}
	}
	// Otherwise preempt the lowest-priority running thread, if strictly
	// lower; the victim keeps its turn at the front of its queue.
	victimCore, victimPrio := -1, t.Prio
	for i := range o.cores {
		if !t.allowedOn(i) {
			continue
		}
		if rp := o.cores[i].t.Prio; rp < victimPrio {
			victimCore, victimPrio = i, rp
		}
	}
	if victimCore >= 0 {
		v := o.cores[victimCore].t
		o.undispatch(victimCore, true)
		o.ready[v.Prio] = append([]*Thread{v}, o.ready[v.Prio]...) // front: keeps its turn
		v.state = stateReady
		o.dispatch(t, victimCore)
		return
	}
	o.ready[t.Prio] = append(o.ready[t.Prio], t)
}

func (o *OS) makeReadyBack(t *Thread) {
	t.state = stateReady
	o.ready[t.Prio] = append(o.ready[t.Prio], t)
}

func (o *OS) dispatch(t *Thread, core int) {
	if was := o.cores[core].t; was != nil {
		panic(fmt.Sprintf("hostos: dispatch onto busy core %d (%v)", core, was))
	}
	o.idleTime[core] += o.Sim.Now() - o.lastIdle[core]
	o.cores[core].t = t
	t.state = stateRunning
	t.core = core
	t.settled = o.Sim.Now()
	t.sliceEnd = o.Sim.Now() + o.Quantum
	t.dispatches++
}

// undispatch removes the running thread from core. preempt marks the
// removal involuntary for accounting.
func (o *OS) undispatch(core int, preempt bool) {
	c := &o.cores[core]
	t := c.t
	if t == nil {
		panic("hostos: undispatch of idle core")
	}
	if c.event != nil {
		c.event.Cancel()
		c.event = nil
	}
	if preempt {
		t.preempted++
	}
	c.t = nil
	o.lastIdle[core] = o.Sim.Now()
}

// fillCore dispatches the highest-priority ready thread onto a free core.
// A thread parked by a hinted preemption reclaims its core first — ahead
// of its own priority queue, but not past strictly higher-priority ready
// work: on a single-core machine an idle-priority vCPU parked by its VMM
// service thread would otherwise monopolize the core while the owner's
// normal-priority work starved in the ready queue.
func (o *OS) fillCore(core int) {
	if o.cores[core].t != nil {
		return
	}
	if v := o.cores[core].parked; v != nil {
		o.cores[core].parked = nil
		if !o.hasReadyAbove(v.Prio, core) {
			o.dispatch(v, core)
			return
		}
		o.ready[v.Prio] = append([]*Thread{v}, o.ready[v.Prio]...) // front: keeps its turn
	}
	for p := numPrio - 1; p >= 0; p-- {
		q := o.ready[p]
		for i, t := range q {
			if !t.allowedOn(core) {
				continue // affinity-bound thread waits for its core
			}
			o.ready[p] = append(q[:i], q[i+1:]...)
			o.dispatch(t, core)
			return
		}
	}
}

// hasReadyAbove reports whether a ready thread of priority strictly
// above p whose affinity admits the given core is waiting.
func (o *OS) hasReadyAbove(p Priority, core int) bool {
	if p+1 >= numPrio {
		return false
	}
	return o.hasReadyAtLeastFor(p+1, core)
}

// hasReadyAtLeastFor reports whether a ready thread of priority ≥ p whose
// affinity admits the given core is waiting.
func (o *OS) hasReadyAtLeastFor(p Priority, core int) bool {
	for q := p; q < numPrio; q++ {
		for _, t := range o.ready[q] {
			if t.allowedOn(core) {
				return true
			}
		}
	}
	return false
}

// RunFor advances the simulation by d of virtual time.
func (o *OS) RunFor(d sim.Time) { o.Sim.RunUntil(o.Sim.Now() + d) }

// RunUntilFinished runs the simulation until the given process exits or
// the deadline passes; it reports whether the process finished.
func (o *OS) RunUntilFinished(p *Process, deadline sim.Time) bool {
	for o.Sim.Now() < deadline {
		next, ok := o.Sim.NextEventTime()
		if !ok {
			break
		}
		if next > deadline {
			break
		}
		o.Sim.RunUntil(next)
		if p.Finished() {
			return true
		}
	}
	return p.Finished()
}
