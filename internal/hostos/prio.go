// Package hostos models the hosting operating system of the paper's
// testbed: a Windows-XP-like preemptive priority scheduler over the
// machine's physical cores.
//
// The scheduler is the mechanism behind the paper's intrusiveness results
// (Figures 5–8): a virtual machine set to Idle priority should in theory
// never disturb Normal-priority host work, yet the measured impact is
// 10–35% for multi-threaded hosts — because the VMM's own service work
// (device emulation, binary-translation upkeep, timer delivery) does not
// run at the guest's priority. hostos reproduces exactly that interaction.
//
// Threads execute cost.Program step streams under a fluid-rate model: a
// dispatched thread progresses at the rate hw.CPU assigns its core, which
// varies with shared-bus pressure from the other core. All state changes
// (dispatch, preemption, block, wake, quantum expiry) settle outstanding
// progress first, so accounting is exact at every instant.
package hostos

import "fmt"

// Priority is a Windows-style scheduling class. Higher values preempt
// lower ones; equal values round-robin on quantum expiry.
type Priority int

// Priority classes, lowest to highest. PrioIdle corresponds to the
// IDLE_PRIORITY_CLASS the paper assigns VMs "to minimize impact, and
// reproduce real conditions" (§4.2.3).
const (
	PrioIdle Priority = iota
	PrioBelowNormal
	PrioNormal
	PrioAboveNormal
	PrioHigh
	PrioTimeCritical
	numPrio
)

var prioNames = [...]string{"idle", "below-normal", "normal", "above-normal", "high", "time-critical"}

func (p Priority) String() string {
	if p < 0 || p >= numPrio {
		return fmt.Sprintf("Priority(%d)", int(p))
	}
	return prioNames[p]
}

// Valid reports whether p is a defined class.
func (p Priority) Valid() bool { return p >= 0 && p < numPrio }
