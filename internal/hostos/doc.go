// Package hostos models the volunteer machine's operating system: a
// priority-preemptive thread scheduler in the style of the Windows XP
// workstation kernel the paper's testbed dual-boots, multiplexing
// processes and threads over the hw machine's cores.
//
// Threads execute cost.Program step streams. Compute steps progress at
// the fluid rates internal/hw derives from bus contention; disk, sleep,
// and custom handler steps block the thread until the owning subsystem
// calls Unblock. Scheduling is strict priority with round-robin quanta
// inside a class, plus one deliberate refinement: a thread spawned with
// a VictimHint can borrow a specific core, parking the displaced thread
// so it resumes there without re-entering the ready queues — how VMM
// service work runs in its VM's scheduling context. A parked thread
// never reclaims its core past strictly higher-priority ready work,
// which matters on the fleet's single-core volunteer machines.
//
// Everything is deterministic: the scheduler mutates state only inside
// simulator events, and ties are broken by event insertion order.
package hostos
