package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
)

// maxRequestBytes bounds a sweep request's body; a grid.Spec is a few
// hundred bytes, so anything near this limit is not a spec.
const maxRequestBytes = 1 << 20

// SweepRequest is the POST /v1/sweeps body: a grid.Spec document plus
// the same override surface the CLI exposes — -set assignments applied
// in order, then the seed/quick scalars. Spec alone, Set alone, or
// both work, exactly as `dgrid sweep -spec file.json -set axis=...`.
type SweepRequest struct {
	Spec  json.RawMessage `json:"spec,omitempty"`
	Set   []string        `json:"set,omitempty"`
	Seed  uint64          `json:"seed,omitempty"`
	Quick bool            `json:"quick,omitempty"`
}

// Resolve builds the normalized, validated spec the request describes,
// mirroring the CLI's precedence: the spec document first, then the
// Set overrides in order, then the scalar overrides.
func (req *SweepRequest) Resolve() (grid.Spec, error) {
	sp := grid.Spec{Version: grid.SpecVersion}
	if len(req.Spec) > 0 {
		var err error
		if sp, err = grid.ParseSpec(req.Spec); err != nil {
			return grid.Spec{}, err
		}
	}
	for _, assign := range req.Set {
		if err := sp.Set(assign); err != nil {
			return grid.Spec{}, err
		}
	}
	if req.Seed != 0 {
		sp.Seed = req.Seed
	}
	if req.Quick {
		sp.Quick = true
	}
	sp = sp.Normalize()
	return sp, sp.Validate()
}

// Event is the wire form of one engine progress event, the data
// payload of every SSE "shard"/"merged" frame. MarshalEvent is the
// single encoder, so a streamed run's frames byte-match a serial run's
// OnEvent sequence encoded the same way.
type Event struct {
	Kind       string `json:"kind"` // "computed", "cached", "merged"
	Experiment string `json:"experiment"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
}

// MarshalEvent encodes one engine event as its wire JSON.
func MarshalEvent(ev engine.Event) []byte {
	kind := "computed"
	switch ev.Kind {
	case engine.EventShardCached:
		kind = "cached"
	case engine.EventExperimentMerged:
		kind = "merged"
	}
	b, _ := json.Marshal(Event{
		Kind:       kind,
		Experiment: ev.Experiment,
		Shard:      ev.Shard,
		Shards:     ev.Shards,
		Done:       ev.Done,
		Total:      ev.Total,
	})
	return b
}

// SweepResult is the final answer of a sweep request: the same three
// artifact forms `dgrid sweep` can emit (table, CSV, merged JSON,
// byte-identical to the CLI's), plus the run's engine stats. It is the
// buffered response body and the SSE "result" frame.
type SweepResult struct {
	Name  string          `json:"name"`
	Table string          `json:"table"`
	CSV   string          `json:"csv"`
	JSON  json.RawMessage `json:"json"`
	Stats RunStats        `json:"stats"`
}

// RunStats mirrors engine.Stats in snake_case.
type RunStats struct {
	Experiments  int   `json:"experiments"`
	Shards       int   `json:"shards"`
	Hits         int   `json:"hits"`
	Misses       int   `json:"misses"`
	Resumed      int   `json:"resumed"`
	FlightHits   int   `json:"flight_hits"`
	FlightShared int   `json:"flight_shared"`
	ElapsedMS    int64 `json:"elapsed_ms"`
}

func newRunStats(st engine.Stats) RunStats {
	return RunStats{
		Experiments:  st.Experiments,
		Shards:       st.Shards,
		Hits:         st.Hits,
		Misses:       st.Misses,
		Resumed:      st.Resumed,
		FlightHits:   st.FlightHits,
		FlightShared: st.FlightShared,
		ElapsedMS:    st.Elapsed.Milliseconds(),
	}
}

// handleSweeps admits, runs, and answers one sweep. The engine side is
// a per-request Runner over the daemon's shared pool, cache, and
// flight group; the request's context is the run's context, so a
// disconnected client cancels its own run (and only its own — see
// engine.RunContext).
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	s.init()
	log := s.Log.With("req", s.reqSeq.Add(1))

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request: " + err.Error()})
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding request: " + err.Error()})
		return
	}
	sp, err := req.Resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// The experiment name matches the CLI's, so served artifacts (whose
	// JSON embeds the name) are byte-identical to `dgrid sweep` output
	// and both share cached shards and manifests.
	exp, err := engine.NewSweep("sweep", "served scenario sweep", sp)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Admission: never queue behind the semaphore — a saturated daemon
	// says so immediately and the client retries, instead of holding
	// connections open against an invisible backlog.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.ctr.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: fmt.Sprintf("at capacity (%d runs active); retry shortly", s.MaxRuns)})
		log.Warn("sweep rejected", "active", s.active.Load(), "max_runs", s.MaxRuns)
		return
	}
	s.ctr.admitted.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	runner := &engine.Runner{Pool: s.Pool, Cache: s.Cache}
	if s.Resume {
		runner.Manifests = s.Cache.Manifests()
	}
	// The spec governs seed and quick, as in the CLI, so cache keys and
	// scenario resolution agree across transports.
	cfg := core.Config{Seed: sp.Seed, Quick: sp.Quick}
	log.Info("sweep admitted",
		"points", sp.NPoints(), "axes", strings.Join(sp.SweptAxes(), "x"), "seed", sp.Seed, "quick", sp.Quick)

	if wantsSSE(r) {
		s.streamSweep(w, r, log, runner, cfg, exp)
	} else {
		s.bufferSweep(w, r, log, runner, cfg, exp)
	}
}

// wantsSSE reports whether the client asked for a progress stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// bufferSweep is the plain-JSON fallback: run to completion, answer
// with the full SweepResult.
func (s *Server) bufferSweep(w http.ResponseWriter, r *http.Request, log *slog.Logger,
	runner *engine.Runner, cfg core.Config, exp engine.Experiment) {
	outcomes, stats, err := runner.RunContext(r.Context(), cfg, []engine.Experiment{exp})
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone; there is no one to answer.
			s.ctr.canceled.Add(1)
			log.Info("sweep canceled", "reason", "client disconnected", "folded", stats.Hits+stats.Misses)
			return
		}
		s.ctr.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		log.Error("sweep failed", "err", err)
		return
	}
	// Compact, not indented: re-indenting would reformat the embedded
	// JSON artifact, which must stay byte-identical to the CLI's.
	s.ctr.completed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.Marshal(sweepResult(outcomes[0], stats))
	w.Write(append(b, '\n'))
	logDone(log, stats)
}

// streamSweep answers as Server-Sent Events: one "shard" frame per
// folded task and one "merged" frame per experiment — in the engine's
// deterministic collector order — then a final "result" frame carrying
// the same SweepResult the buffered path returns. The engine calls
// OnEvent from the collector goroutine, which here is the handler's
// own, so frames are written race-free and in order.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, log *slog.Logger,
	runner *engine.Runner, cfg core.Config, exp engine.Experiment) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.bufferSweep(w, r, log, runner, cfg, exp)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	runner.OnEvent = func(ev engine.Event) {
		name := "shard"
		if ev.Kind == engine.EventExperimentMerged {
			name = "merged"
		}
		writeSSE(w, fl, name, MarshalEvent(ev))
	}
	outcomes, stats, err := runner.RunContext(r.Context(), cfg, []engine.Experiment{exp})
	if err != nil {
		if r.Context().Err() != nil {
			s.ctr.canceled.Add(1)
			log.Info("sweep canceled", "reason", "client disconnected", "folded", stats.Hits+stats.Misses)
			return
		}
		s.ctr.failed.Add(1)
		b, _ := json.Marshal(errorBody{Error: err.Error()})
		writeSSE(w, fl, "error", b)
		log.Error("sweep failed", "err", err)
		return
	}
	s.ctr.completed.Add(1)
	b, _ := json.Marshal(sweepResult(outcomes[0], stats))
	writeSSE(w, fl, "result", b)
	logDone(log, stats)
}

func sweepResult(o *engine.Outcome, stats engine.Stats) SweepResult {
	return SweepResult{
		Name:  o.Name,
		Table: o.Render(),
		CSV:   o.CSV(),
		JSON:  o.Raw,
		Stats: newRunStats(stats),
	}
}

// writeSSE emits one event frame and flushes it to the client. Data is
// a single JSON document (no newlines), so one data: line suffices.
func writeSSE(w io.Writer, fl http.Flusher, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}

func logDone(log *slog.Logger, st engine.Stats) {
	log.Info("sweep done",
		"shards", st.Shards, "computed", st.Misses, "cached", st.Hits,
		"resumed", st.Resumed, "flight_hits", st.FlightHits, "flight_shared", st.FlightShared,
		"elapsed", st.Elapsed.Round(st.Elapsed/100+1).String())
}
