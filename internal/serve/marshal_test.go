package serve

// White-box tests for the SSE encoding layer: writeSSE emits exactly
// one data: line per frame because the payload is a single JSON
// document — JSON escapes every newline — and MarshalEvent is the
// single encoder both transports share. These tests pin that contract
// on the payloads most likely to break it: strings carrying newlines,
// quotes, multi-byte UTF-8, and empty artifacts.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vmdg/internal/engine"
)

// nopFlusher satisfies http.Flusher for writeSSE against a buffer.
type nopFlusher struct{}

func (nopFlusher) Flush() {}

// parseSSEFrame splits one wire frame back into (event, data),
// asserting the frame's shape: an event: line, exactly one data:
// line, a blank terminator, nothing else.
func parseSSEFrame(t *testing.T, frame string) (event, data string) {
	t.Helper()
	if !strings.HasSuffix(frame, "\n\n") {
		t.Fatalf("frame does not end in a blank line: %q", frame)
	}
	lines := strings.Split(strings.TrimSuffix(frame, "\n\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("frame has %d lines, want exactly event: and data:\n%q", len(lines), frame)
	}
	if !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
		t.Fatalf("malformed frame lines: %q", frame)
	}
	return strings.TrimPrefix(lines[0], "event: "), strings.TrimPrefix(lines[1], "data: ")
}

// TestMarshalEventRoundTrip: every event payload — including
// experiment names with newlines, quotes, and multi-byte UTF-8 —
// fits one data: line, parses back, and re-encodes byte-identically.
func TestMarshalEventRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   engine.Event
	}{
		{"computed", engine.Event{Kind: engine.EventShardComputed, Experiment: "sweep", Shard: 3, Shards: 8, Done: 4, Total: 8}},
		{"cached", engine.Event{Kind: engine.EventShardCached, Experiment: "sweep", Shard: 0, Shards: 1, Done: 1, Total: 1}},
		{"merged", engine.Event{Kind: engine.EventExperimentMerged, Experiment: "sweep", Done: 8, Total: 8}},
		{"empty name", engine.Event{Kind: engine.EventShardComputed}},
		{"newlines", engine.Event{Kind: engine.EventShardComputed, Experiment: "line one\nline two\r\nline three"}},
		{"quotes and backslashes", engine.Event{Kind: engine.EventShardCached, Experiment: `say "hello" \ goodbye`}},
		{"utf-8", engine.Event{Kind: engine.EventExperimentMerged, Experiment: "flotte—παράδειγμα—艦隊 🛰"}},
		{"control bytes", engine.Event{Kind: engine.EventShardComputed, Experiment: "tab\there\x00null"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := MarshalEvent(tc.ev)
			if bytes.ContainsAny(b, "\n\r") {
				t.Fatalf("marshaled event contains raw newline bytes: %q", b)
			}

			var buf bytes.Buffer
			writeSSE(&buf, nopFlusher{}, "shard", b)
			event, data := parseSSEFrame(t, buf.String())
			if event != "shard" {
				t.Errorf("event = %q, want shard", event)
			}
			if data != string(b) {
				t.Errorf("frame data differs from the marshaled event:\n%q\nvs\n%q", data, b)
			}

			var back Event
			if err := json.Unmarshal([]byte(data), &back); err != nil {
				t.Fatalf("frame data does not parse back: %v", err)
			}
			again, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, b) {
				t.Errorf("re-encoded event differs:\n%s\nvs\n%s", again, b)
			}
		})
	}
}

// TestMarshalEventKinds: the engine→wire kind mapping, exhaustively.
func TestMarshalEventKinds(t *testing.T) {
	for kind, want := range map[engine.EventKind]string{
		engine.EventShardComputed:    "computed",
		engine.EventShardCached:      "cached",
		engine.EventExperimentMerged: "merged",
	} {
		var ev Event
		if err := json.Unmarshal(MarshalEvent(engine.Event{Kind: kind}), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind != want {
			t.Errorf("kind %d marshals to %q, want %q", kind, ev.Kind, want)
		}
	}
}

// TestResultFrameRoundTrip: the terminal result frame carries whole
// artifacts — ASCII tables full of newlines, CSV, embedded JSON — and
// must survive the same single-line framing. Empty artifacts (a table
// with no rows, an empty CSV) must round-trip too, not degenerate to
// null or a missing field.
func TestResultFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		res  SweepResult
	}{
		{"empty table", SweepResult{Name: "sweep", Table: "", CSV: "", JSON: json.RawMessage(`{}`)}},
		{"multi-line table", SweepResult{
			Name:  "sweep",
			Table: "policy  machines  done\nfifo    60        8\ndeadline 90       7\n",
			CSV:   "policy,machines,done\r\nfifo,60,8\r\n",
			JSON:  json.RawMessage(`{"variants":[{"label":"policy=fifo"}]}`),
			Stats: RunStats{Experiments: 1, Shards: 4, Misses: 4, ElapsedMS: 12},
		}},
		{"quotes and utf-8", SweepResult{
			Name:  `sweep "quoted"`,
			Table: "env: qemu—π\n\"quoted cell\"\n",
			CSV:   `env,"with,comma"` + "\n",
			JSON:  json.RawMessage(`{"name":"π 🛰"}`),
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.res)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.ContainsAny(b, "\n\r") {
				t.Fatalf("marshaled result contains raw newline bytes: %q", b)
			}
			var buf bytes.Buffer
			writeSSE(&buf, nopFlusher{}, "result", b)
			event, data := parseSSEFrame(t, buf.String())
			if event != "result" {
				t.Errorf("event = %q, want result", event)
			}
			var back SweepResult
			if err := json.Unmarshal([]byte(data), &back); err != nil {
				t.Fatalf("result frame does not parse back: %v", err)
			}
			if back.Table != tc.res.Table || back.CSV != tc.res.CSV || back.Name != tc.res.Name {
				t.Errorf("artifacts did not survive the frame:\n%+v\nvs\n%+v", back, tc.res)
			}
			again, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, b) {
				t.Errorf("re-encoded result differs:\n%s\nvs\n%s", again, b)
			}
		})
	}
}
