package serve

import "vmdg/internal/engine"

// CacheReport is the machine-readable state of a shard cache: the
// on-disk tier, the fold manifests, and the in-memory payload tier.
// It is the GET /v1/cache body and the `dgrid cache -json` schema —
// one struct, so the daemon and the CLI can never drift. The mem
// counters are per-process: a fresh CLI invocation reports the tier
// empty, a long-lived daemon reports its real hit rate.
type CacheReport struct {
	Dir           string          `json:"dir"`
	Entries       int             `json:"entries"`
	Bytes         int64           `json:"bytes"`
	OldestUnix    int64           `json:"oldest_unix,omitempty"`
	NewestUnix    int64           `json:"newest_unix,omitempty"`
	ActiveRuns    int             `json:"active_runs"`
	Manifests     int             `json:"manifests"`
	Resumable     int             `json:"resumable"`
	ManifestBytes int64           `json:"manifest_bytes"`
	List          []CacheManifest `json:"manifest_list,omitempty"`
	Mem           *MemReport      `json:"mem,omitempty"`
}

// CacheManifest is one fold journal's summary.
type CacheManifest struct {
	Identity string `json:"identity"`
	Tasks    int    `json:"tasks"`
	Cursor   int    `json:"cursor"`
	Complete bool   `json:"complete"`
	Torn     bool   `json:"torn"`
}

// MemReport mirrors engine.MemTierStats in snake_case.
type MemReport struct {
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	MaxBytes  int64   `json:"max_bytes"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// BuildCacheReport assembles the report for one FileCache.
func BuildCacheReport(fc *engine.FileCache) (*CacheReport, error) {
	st, err := fc.Stats()
	if err != nil {
		return nil, err
	}
	mis, err := fc.Manifests().List()
	if err != nil {
		return nil, err
	}
	rep := &CacheReport{
		Dir:           fc.Dir(),
		Entries:       st.Entries,
		Bytes:         st.Bytes,
		ActiveRuns:    st.ActiveRuns,
		Manifests:     st.Manifests,
		Resumable:     st.Resumable,
		ManifestBytes: st.ManifestBytes,
	}
	if !st.Oldest.IsZero() {
		rep.OldestUnix = st.Oldest.Unix()
		rep.NewestUnix = st.Newest.Unix()
	}
	for _, mi := range mis {
		rep.List = append(rep.List, CacheManifest{
			Identity: mi.Identity, Tasks: mi.Tasks, Cursor: mi.Cursor,
			Complete: mi.Complete, Torn: mi.Torn,
		})
	}
	if ms, ok := fc.MemStats(); ok {
		rep.Mem = &MemReport{
			Entries: ms.Entries, Bytes: ms.Bytes, MaxBytes: ms.MaxBytes,
			Hits: ms.Hits, Misses: ms.Misses, Evictions: ms.Evictions,
			HitRate: ms.HitRate(),
		}
	}
	return rep, nil
}
