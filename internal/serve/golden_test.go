package serve_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// -update regenerates the endpoint schema fixtures under
// testdata/golden/serve. Legitimate when a field was deliberately
// added; a diff that *removes* or *retypes* a field is a breaking
// change for deployed clients and needs the same scrutiny as any wire
// break.
var update = flag.Bool("update", false, "rewrite golden fixtures")

// normalizeJSON reduces a JSON document to its schema: object keys
// survive, every leaf value becomes a type placeholder, and arrays
// collapse to their first element's schema. The result is rendered
// with sorted keys so the fixture is byte-stable across runs.
func normalizeJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("endpoint body is not JSON: %v\n%s", err, raw)
	}
	var b strings.Builder
	writeSchema(&b, v, 0)
	b.WriteString("\n")
	return b.String()
}

func writeSchema(b *strings.Builder, v any, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("{\n")
		for i, k := range keys {
			fmt.Fprintf(b, "%s  %q: ", indent, k)
			writeSchema(b, x[k], depth+1)
			if i < len(keys)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(indent + "}")
	case []any:
		if len(x) == 0 {
			b.WriteString("[]")
			return
		}
		b.WriteString("[\n" + indent + "  ")
		writeSchema(b, x[0], depth+1)
		b.WriteString("\n" + indent + "]")
	case string:
		b.WriteString(`"<string>"`)
	case float64:
		b.WriteString(`"<number>"`)
	case bool:
		b.WriteString(`"<bool>"`)
	case nil:
		b.WriteString(`"<null>"`)
	default:
		panic(fmt.Sprintf("unhandled JSON node %T", v))
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", "serve", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test ./internal/serve -run Golden -update`): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s schema drifted from the golden fixture.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// TestEndpointSchemasGolden pins the /healthz and /v1/cache response
// schemas — the surface both the loadtest accounting cross-check and
// external monitoring scrape. The sweep beforehand matters: it
// populates the optional sections (manifest list, timestamps, mem
// tier), so omitempty fields are pinned present, not silently absent.
func TestEndpointSchemasGolden(t *testing.T) {
	ts, _ := newServer(t, 4, nil)
	postSweep(t, ts.URL, smallSpec)

	for name, url := range map[string]string{
		"healthz.json": ts.URL + "/healthz",
		"cache.json":   ts.URL + "/v1/cache",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q, want application/json", url, ct)
		}
		checkGolden(t, name, normalizeJSON(t, body))
	}
}
