package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vmdg/internal/engine"
	"vmdg/internal/serve"
)

// killSpecs are three distinct 16-shard sweeps in the bigSpec weight
// class (4 population slices × the default four environments, several
// hundred milliseconds each): after the first shard frame, ~15/16 of
// the run remains, so a client that cancels there is reliably still
// mid-run. Two clients land on each spec, so a kill can hit either
// side of a shared shard flight.
var killSpecs = []string{
	`{"version":1,"quick":true,"machines":[2000],"minutes":[480],"churn":[true],"policy":["fifo"]}`,
	`{"version":1,"quick":true,"machines":[2150],"minutes":[480],"churn":[true],"policy":["deadline"]}`,
	`{"version":1,"quick":true,"machines":[2300],"minutes":[480],"churn":[true],"policy":["fifo"]}`,
}

// TestKillRandomSSEClientsProperty is the seeded chaos property: under
// concurrent load, a random subset of SSE clients disconnects
// mid-stream. Whatever the interleaving, the daemon must end the round
// with
//
//   - active_runs back at 0 (admission slots all released),
//   - zero manifest run locks held (no stale lock — /v1/cache
//     active_runs), and
//   - every surviving client's artifacts byte-identical to a serial
//     run of the same spec.
func TestKillRandomSSEClientsProperty(t *testing.T) {
	// Serial references, one per spec, computed once on a private
	// cache.
	refs := make([]*engine.Outcome, len(killSpecs))
	for i, spec := range killSpecs {
		refs[i], _ = serialSweep(t, spec)
	}

	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		// A fresh daemon per round: the kill set must hit cold runs
		// (in-flight simulation), not warm replays, and lock/counter
		// assertions start from zero.
		ts, _ := newServer(t, 12, nil)

		const fleet = 6
		killed := map[int]bool{}
		for n := 1 + rng.Intn(fleet-1); len(killed) < n; {
			killed[rng.Intn(fleet)] = true
		}

		type answer struct {
			client int
			res    *serve.SweepResult
		}
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			survivors []answer
		)
		for c := 0; c < fleet; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				specIdx := c % len(killSpecs)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				resp, r := startSSE(t, ctx, ts.URL, killSpecs[specIdx])
				defer resp.Body.Close()
				if killed[c] {
					// Read one frame so the run is inside the simulate
					// loop, then vanish.
					r.next()
					cancel()
					resp.Body.Close()
					return
				}
				for {
					event, data, err := r.next()
					if err == io.EOF {
						t.Errorf("seed %d client %d: stream ended without result", seed, c)
						return
					}
					if err != nil {
						t.Errorf("seed %d client %d: %v", seed, c, err)
						return
					}
					if event == "error" {
						t.Errorf("seed %d client %d: server error frame: %s", seed, c, data)
						return
					}
					if event == "result" {
						var res serve.SweepResult
						if err := json.Unmarshal([]byte(data), &res); err != nil {
							t.Errorf("seed %d client %d: result frame: %v", seed, c, err)
							return
						}
						mu.Lock()
						survivors = append(survivors, answer{c, &res})
						mu.Unlock()
						return
					}
				}
			}(c)
		}
		wg.Wait()

		// Survivors got the serial bytes, despite sharing flights with
		// runs that died.
		for _, a := range survivors {
			ref := refs[a.client%len(killSpecs)]
			if a.res.Table != ref.Render() || a.res.CSV != ref.CSV() || !bytes.Equal(a.res.JSON, ref.Raw) {
				t.Errorf("seed %d client %d: artifacts differ from the serial reference", seed, a.client)
			}
		}
		if want := fleet - len(killed); len(survivors) != want {
			t.Errorf("seed %d: %d survivors answered, want %d", seed, len(survivors), want)
		}

		// The daemon drains: admission slots released, every admitted
		// run terminal, and no manifest run lock left behind.
		deadline := time.Now().Add(15 * time.Second)
		for {
			var h serve.Health
			getJSON(t, ts.URL+"/healthz", &h)
			if h.ActiveRuns == 0 && h.Sweeps.Admitted == h.Sweeps.Completed+h.Sweeps.Canceled+h.Sweeps.Failed {
				if h.Sweeps.Admitted != fleet || h.Sweeps.Failed != 0 {
					t.Errorf("seed %d: counters %+v, want %d admitted, 0 failed", seed, h.Sweeps, fleet)
				}
				if h.Sweeps.Canceled != uint64(len(killed)) {
					t.Errorf("seed %d: %d canceled, want %d (the kill set)", seed, h.Sweeps.Canceled, len(killed))
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: daemon did not drain: %+v", seed, h)
			}
			time.Sleep(10 * time.Millisecond)
		}
		var rep serve.CacheReport
		getJSON(t, ts.URL+"/v1/cache", &rep)
		if rep.ActiveRuns != 0 {
			t.Errorf("seed %d: %d manifest run locks still held after drain (stale lock)", seed, rep.ActiveRuns)
		}
	}
}
