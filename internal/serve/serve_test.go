package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vmdg/internal/core"
	"vmdg/internal/engine"
	"vmdg/internal/grid"
	"vmdg/internal/serve"
)

// smallSpec is a 2×2 (policy × machines) quick grid: four one-shard
// points, the same shape the engine's own sweep tests use.
const smallSpec = `{"version":1,"quick":true,"envs":["vmplayer"],"machines":[60,90],"minutes":[30],"churn":[true],"policy":["fifo","deadline"]}`

// bigSpec is one 16-shard point (4 population slices × the default
// four environments) that runs for several hundred milliseconds: after
// its first shard folds, enough work remains that a test can act
// (disconnect, saturate) while the run is reliably still in flight.
const bigSpec = `{"version":1,"quick":true,"machines":[2000],"minutes":[480],"churn":[true],"policy":["fifo"]}`

// otherSpec is a distinct small point, sharing no cache keys with the
// spec above.
const otherSpec = `{"version":1,"quick":true,"envs":["vmplayer"],"machines":[75],"minutes":[30],"churn":[true],"policy":["fifo"]}`

func newServer(t *testing.T, maxRuns int, logW io.Writer) (*httptest.Server, *serve.Server) {
	t.Helper()
	pool := engine.NewPool(2)
	t.Cleanup(pool.Close)
	fc, err := engine.NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fc.EnableMemTier(engine.DefaultMemTierBytes)
	if logW == nil {
		logW = io.Discard
	}
	s := &serve.Server{
		Pool: pool, Cache: fc, MaxRuns: maxRuns, Resume: true,
		Log: slog.New(slog.NewTextHandler(logW, nil)),
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// serialSweep runs the spec serially on a private runner and returns
// the reference outcome plus the wire-encoded OnEvent sequence.
func serialSweep(t *testing.T, specJSON string) (*engine.Outcome, []string) {
	t.Helper()
	sp, err := grid.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	exp, err := engine.NewSweep("sweep", "serial reference", sp)
	if err != nil {
		t.Fatal(err)
	}
	var events []string
	r := &engine.Runner{Workers: 1, Cache: engine.NewMemCache(), OnEvent: func(ev engine.Event) {
		events = append(events, string(serve.MarshalEvent(ev)))
	}}
	outs, _, err := r.Run(core.Config{Seed: sp.Seed, Quick: sp.Quick}, []engine.Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	return outs[0], events
}

func postSweep(t *testing.T, url, specJSON string) (*serve.SweepResult, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweeps", "application/json",
		strings.NewReader(`{"spec":`+specJSON+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/sweeps: %s: %s", resp.Status, b)
	}
	var res serve.SweepResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res, resp
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// sseReader yields SSE frames one at a time.
type sseReader struct{ s *bufio.Scanner }

func newSSEReader(r io.Reader) *sseReader { return &sseReader{s: bufio.NewScanner(r)} }

func (r *sseReader) next() (event, data string, err error) {
	for r.s.Scan() {
		line := r.s.Text()
		switch {
		case line == "":
			if event != "" || data != "" {
				return event, data, nil
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := r.s.Err(); err != nil {
		return "", "", err
	}
	return "", "", io.EOF
}

// startSSE opens a streaming sweep request on ctx.
func startSSE(t *testing.T, ctx context.Context, url, specJSON string) (*http.Response, *sseReader) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/v1/sweeps",
		strings.NewReader(`{"spec":`+specJSON+`}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /v1/sweeps (SSE): %s: %s", resp.Status, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return resp, newSSEReader(resp.Body)
}

func TestHealthz(t *testing.T) {
	ts, _ := newServer(t, 0, nil)
	var h serve.Health
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Version == "" || h.Go == "" {
		t.Errorf("healthz = %+v, want ok status with build identity", h)
	}
	if h.Workers != 2 || h.MaxRuns != 4 || h.ActiveRuns != 0 {
		t.Errorf("healthz = %+v, want workers 2, max_runs 4 (2× workers), no active runs", h)
	}
	if h.Version != serve.Version() {
		t.Errorf("healthz version %q != serve.Version() %q", h.Version, serve.Version())
	}
}

// TestSweepBufferedMatchesSerial: a served sweep's three artifact forms
// are byte-identical to a serial `dgrid sweep` run, a repeat request is
// answered warm from the manifest + cache, and /v1/cache accounts for
// exactly the unique shard keys.
func TestSweepBufferedMatchesSerial(t *testing.T) {
	ts, _ := newServer(t, 0, nil)
	ref, _ := serialSweep(t, smallSpec)

	res, _ := postSweep(t, ts.URL, smallSpec)
	if res.Name != "sweep" || res.Table != ref.Render() || res.CSV != ref.CSV() {
		t.Errorf("served artifacts differ from the serial reference:\n%s\nvs\n%s", res.Table, ref.Render())
	}
	if !bytes.Equal(res.JSON, ref.Raw) {
		t.Error("served JSON artifact differs from the serial reference")
	}
	if res.Stats.Shards != 4 || res.Stats.Misses != 4 || res.Stats.Hits != 0 {
		t.Errorf("cold stats = %+v, want 4 computed shards", res.Stats)
	}

	// Warm repeat: the journaled fold verifies against the cache and
	// replays without simulating.
	res2, _ := postSweep(t, ts.URL, smallSpec)
	if res2.Table != ref.Render() {
		t.Error("warm artifacts differ from the serial reference")
	}
	if res2.Stats.Misses != 0 || res2.Stats.Hits != 4 || res2.Stats.Resumed != 4 {
		t.Errorf("warm stats = %+v, want 4 hits, 4 resumed, 0 misses", res2.Stats)
	}

	var rep serve.CacheReport
	getJSON(t, ts.URL+"/v1/cache", &rep)
	if rep.Entries != 4 {
		t.Errorf("cache entries = %d, want 4 (one per unique shard key)", rep.Entries)
	}
	if rep.Manifests != 1 || rep.Resumable != 0 {
		t.Errorf("cache report = %+v, want one complete manifest", rep)
	}
}

// TestConcurrentIdenticalSweepsComputeOnce is the acceptance invariant:
// two concurrent identical requests compute each shard once — however
// they interleave, Σmisses across both equals the unique key count
// reported by /v1/cache — and both receive the serial artifacts.
func TestConcurrentIdenticalSweepsComputeOnce(t *testing.T) {
	ts, _ := newServer(t, 0, nil)
	ref, _ := serialSweep(t, smallSpec)

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		got []*serve.SweepResult
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := postSweep(t, ts.URL, smallSpec)
			mu.Lock()
			got = append(got, res)
			mu.Unlock()
		}()
	}
	wg.Wait()

	var rep serve.CacheReport
	getJSON(t, ts.URL+"/v1/cache", &rep)
	if rep.Entries != 4 {
		t.Errorf("cache entries = %d, want 4 (one per unique shard key)", rep.Entries)
	}
	misses := 0
	for _, res := range got {
		misses += res.Stats.Misses
		if res.Table != ref.Render() || res.CSV != ref.CSV() || !bytes.Equal(res.JSON, ref.Raw) {
			t.Error("a concurrent request's artifacts differ from the serial reference")
		}
	}
	if misses != rep.Entries {
		t.Errorf("Σmisses = %d != %d unique keys: concurrent identical sweeps re-computed shards", misses, rep.Entries)
	}
}

// TestSSEEventsMatchSerialOrder: the streamed shard/merged frames are
// byte-identical, in order, to a serial run's OnEvent sequence encoded
// with the same MarshalEvent — the stream exposes the engine's
// deterministic collector order, nothing else.
func TestSSEEventsMatchSerialOrder(t *testing.T) {
	ts, _ := newServer(t, 0, nil)
	ref, refEvents := serialSweep(t, smallSpec)

	resp, r := startSSE(t, context.Background(), ts.URL, smallSpec)
	defer resp.Body.Close()
	var events []string
	var result *serve.SweepResult
	for {
		event, data, err := r.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch event {
		case "shard", "merged":
			events = append(events, data)
		case "result":
			var res serve.SweepResult
			if err := json.Unmarshal([]byte(data), &res); err != nil {
				t.Fatal(err)
			}
			result = &res
		case "error":
			t.Fatalf("server sent error frame: %s", data)
		}
	}
	if len(events) != len(refEvents) {
		t.Fatalf("streamed %d events, serial run emitted %d", len(events), len(refEvents))
	}
	for i := range events {
		if events[i] != refEvents[i] {
			t.Errorf("event %d differs:\n stream: %s\n serial: %s", i, events[i], refEvents[i])
		}
	}
	if result == nil {
		t.Fatal("stream ended without a result frame")
	}
	if result.Table != ref.Render() || !bytes.Equal(result.JSON, ref.Raw) {
		t.Error("streamed result differs from the serial reference")
	}
}

// TestClientDisconnectCancelsRun: dropping an SSE consumer mid-sweep
// cancels that run — and only that run. The concurrent request's
// artifacts still match its serial reference, and the daemon's
// active-run gauge drains to zero.
func TestClientDisconnectCancelsRun(t *testing.T) {
	var logbuf syncBuffer
	ts, _ := newServer(t, 0, &logbuf)
	ref, _ := serialSweep(t, otherSpec)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, r := startSSE(t, ctx, ts.URL, bigSpec)
	defer resp.Body.Close()
	// One folded shard means the run is well inside the simulate loop.
	if event, _, err := r.next(); err != nil || event != "shard" {
		t.Fatalf("first frame = %q, %v; want a shard event", event, err)
	}

	// Overlap a second, different request, then drop the first client.
	done := make(chan *serve.SweepResult, 1)
	go func() {
		res, _ := postSweep(t, ts.URL, otherSpec)
		done <- res
	}()
	cancel()
	resp.Body.Close()

	res := <-done
	if res.Table != ref.Render() || !bytes.Equal(res.JSON, ref.Raw) {
		t.Error("the surviving request's artifacts differ from its serial reference")
	}

	// The canceled run must release its admission slot promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var h serve.Health
		getJSON(t, ts.URL+"/healthz", &h)
		if h.ActiveRuns == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("active_runs still %d after disconnect", h.ActiveRuns)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if log := logbuf.String(); !strings.Contains(log, "sweep canceled") {
		t.Errorf("daemon log records no cancellation:\n%s", log)
	}
}

// TestAdmissionSaturationAnswers429: with one admission slot occupied
// by an in-flight sweep, the next request is turned away immediately
// with 429 + Retry-After instead of queueing.
func TestAdmissionSaturationAnswers429(t *testing.T) {
	ts, _ := newServer(t, 1, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, r := startSSE(t, ctx, ts.URL, bigSpec)
	defer resp.Body.Close()
	if event, _, err := r.next(); err != nil || event != "shard" {
		t.Fatalf("first frame = %q, %v; want a shard event", event, err)
	}

	resp2, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"spec":`+smallSpec+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %s, want 429", resp2.Status)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
}

// TestBadRequests: malformed bodies and invalid specs are 400s with a
// JSON error, not admitted runs.
func TestBadRequests(t *testing.T) {
	ts, _ := newServer(t, 0, nil)
	for _, body := range []string{
		`{not json`,
		`{"unknown_field":1}`,
		`{"set":["nosuchaxis=1"]}`,
		`{"spec":{"version":1,"machines":[-5]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var eb struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil || eb.Error == "" {
			t.Errorf("POST %q = %s (decode err %v), want 400 with a JSON error", body, resp.Status, err)
		}
	}
}

// syncBuffer is an io.Writer safe for the handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
