package serve

import "runtime/debug"

// Version reports the build's identity from the embedded build info:
// the main module's version, plus the VCS revision (truncated, with a
// +dirty marker for modified trees) when the build recorded one.
// `dgrid version` prints it and GET /healthz returns it verbatim, so
// an operator can match a running daemon to a checkout.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		v += " (" + rev + dirty + ")"
	}
	return v
}
