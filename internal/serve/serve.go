// Package serve exposes the experiment engine as a long-lived HTTP
// service: the simulator you can query instead of re-run. A daemon
// holds one shared worker pool, one shared mem-tiered shard cache, and
// one single-flight group; every POST /v1/sweeps constructs a
// per-request Runner over that shared substrate, so N clients asking
// overlapping questions cost ~1× the simulation work, and a client that
// disconnects cancels only its own run (see engine.RunContext's
// contract — shared flights are handed off, never poisoned).
//
// The operational surface is deliberately small: bounded admission
// (a semaphore ahead of the pool; saturation answers 429 with
// Retry-After rather than queueing unboundedly), GET /healthz for
// liveness and build identity, GET /v1/cache for the shared cache's
// state in the same schema as `dgrid cache -json`, and structured
// one-line logs keyed by a per-request ID.
package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"vmdg/internal/engine"
)

// Server is the daemon's state: the shared engine substrate plus the
// admission bound. The zero value is not usable — Pool and Cache are
// required; Handler wires the routes.
type Server struct {
	// Pool is the shared worker pool every admitted run executes on
	// (and, through it, the shared single-flight group).
	Pool *engine.Pool
	// Cache is the shared shard cache. All runs read and write it; the
	// mem tier should be enabled by the caller so warm sweeps are
	// served from memory.
	Cache *engine.FileCache
	// MaxRuns bounds concurrently admitted sweep runs; <= 0 means
	// twice the pool's worker count (enough to keep the pool busy
	// while bounding the daemon's memory).
	MaxRuns int
	// Resume journals every run's fold to the cache's manifest store,
	// so a daemon killed mid-sweep resumes the fold on the next
	// identical request (concurrent identical runs journal once; see
	// engine.ErrManifestBusy).
	Resume bool
	// Log receives the structured one-liners; nil means slog.Default.
	Log *slog.Logger

	once   sync.Once
	sem    chan struct{}
	reqSeq atomic.Uint64
	active atomic.Int64
	ctr    counters
}

// counters is the daemon's cumulative sweep accounting, monotonic over
// the process lifetime. Every admitted run ends in exactly one of
// completed, canceled, or failed, so once the daemon is idle
//
//	admitted == completed + canceled + failed
//
// holds exactly — the invariant the loadgen harness cross-checks
// against its own client-side bookkeeping (see internal/loadgen).
// Rejected counts 429 answers; requests turned away before admission
// (malformed bodies, invalid specs) are not counted here.
type counters struct {
	admitted  atomic.Uint64
	completed atomic.Uint64
	canceled  atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
}

// Counters is the wire form of the daemon's sweep accounting, nested
// in the GET /healthz body.
type Counters struct {
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	Rejected  uint64 `json:"rejected"`
}

// init resolves the defaults once, on first request.
func (s *Server) init() {
	s.once.Do(func() {
		n := s.MaxRuns
		if n <= 0 {
			n = 2 * s.Pool.Workers()
		}
		s.MaxRuns = n
		s.sem = make(chan struct{}, n)
		if s.Log == nil {
			s.Log = slog.Default()
		}
	})
}

// Handler returns the daemon's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweeps)
	return mux
}

// Health is the GET /healthz body.
type Health struct {
	Status string `json:"status"`
	// Version is serve.Version() verbatim — the same string
	// `dgrid version` prints.
	Version string `json:"version"`
	Go      string `json:"go"`
	// Workers is the shared pool's bound; ActiveRuns counts sweeps
	// currently admitted (of MaxRuns).
	Workers    int   `json:"workers"`
	ActiveRuns int64 `json:"active_runs"`
	MaxRuns    int   `json:"max_runs"`
	// Sweeps is the cumulative request accounting; see Counters.
	Sweeps Counters `json:"sweeps"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.init()
	writeJSON(w, http.StatusOK, Health{
		Status:     "ok",
		Version:    Version(),
		Go:         runtime.Version(),
		Workers:    s.Pool.Workers(),
		ActiveRuns: s.active.Load(),
		MaxRuns:    s.MaxRuns,
		Sweeps: Counters{
			Admitted:  s.ctr.admitted.Load(),
			Completed: s.ctr.completed.Load(),
			Canceled:  s.ctr.canceled.Load(),
			Failed:    s.ctr.failed.Load(),
			Rejected:  s.ctr.rejected.Load(),
		},
	})
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	s.init()
	rep, err := BuildCacheReport(s.Cache)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// errorBody is every non-200 JSON answer.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
