package sim

import "testing"

// The scheduling benchmarks drove the allocation-lean kernel: At allocates
// an Event plus (typically) a caller-side closure per schedule, while
// Schedule recycles pooled events through generation-checked handles and
// amortizes to zero allocations. Run with -benchmem to see the contrast.

func BenchmarkAtClosure(b *testing.B) {
	b.ReportAllocs()
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(Second, "tick", tick)
		}
	}
	s.After(Second, "tick", tick)
	b.ResetTimer()
	s.Run()
}

type benchTicker struct {
	s *Simulator
	n int
	b *testing.B
}

func (t *benchTicker) Fire(now Time) {
	t.n++
	if t.n < t.b.N {
		t.s.Schedule(now+Second, "tick", t)
	}
}

func BenchmarkSchedulePooled(b *testing.B) {
	b.ReportAllocs()
	s := New()
	tk := &benchTicker{s: s, b: b}
	s.Schedule(Second, "tick", tk)
	b.ResetTimer()
	s.Run()
}

// BenchmarkCancelReschedule models the fleet's hot pattern: a pending
// completion event moved on every rate change. Reschedule fixes the heap
// in place instead of leaving a cancelled tombstone plus a fresh event.
func BenchmarkCancelReschedule(b *testing.B) {
	b.ReportAllocs()
	s := New()
	tk := &benchTicker{s: s, b: b}
	h := s.Schedule(Second, "tick", tk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Reschedule(h, s.Now()+Second+Time(i%64)) {
			h = s.Schedule(s.Now()+Second, "tick", tk)
		}
	}
}

// BenchmarkHeapChurn measures raw push/pop through a populated heap, the
// per-event floor of every fleet shard.
func BenchmarkHeapChurn(b *testing.B) {
	b.ReportAllocs()
	s := New()
	r := NewRNG(1)
	const population = 1024
	tk := &benchTicker{s: s, b: b}
	for i := 0; i < population; i++ {
		s.Schedule(Time(r.Intn(1_000_000)+1), "seed", tk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(s.now+Time(r.Intn(1_000_000)+1), "churn", tk)
		s.step()
	}
}

func BenchmarkBinomial(b *testing.B) {
	b.ReportAllocs()
	r := NewRNG(3)
	b.Run("small-mean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Binomial(600, 0.01)
		}
	})
	b.Run("normal-approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Binomial(600, 0.3)
		}
	})
}
