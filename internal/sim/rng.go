package sim

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. It is the only
// randomness source permitted inside a simulation: all jitter (disk seek
// variance, measurement repetition noise) must flow through an RNG derived
// from the experiment seed so that runs are exactly reproducible.
//
// SplitMix64 is chosen over math/rand for three reasons: the stream is
// stable across Go releases, the state is a single uint64 (trivially
// checkpointable alongside VM state), and Split allows carving independent
// deterministic substreams for subsystems without sharing mutable state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new RNG whose stream is independent of r's future output.
// Use it to give each subsystem (disk, NIC, scheduler) its own stream so
// adding a consumer in one subsystem cannot perturb another.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, via the Box–Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Jitter returns a multiplicative jitter factor drawn from a normal
// distribution centred on 1 with relative standard deviation rel, clamped
// to [0.5, 1.5] so a tail draw cannot produce a negative or absurd service
// time. rel = 0 returns exactly 1.
func (r *RNG) Jitter(rel float64) float64 {
	if rel == 0 {
		return 1
	}
	j := r.Normal(1, rel)
	if j < 0.5 {
		j = 0.5
	}
	if j > 1.5 {
		j = 1.5
	}
	return j
}

// Binomial returns a draw from Binomial(n, p): the number of successes in
// n independent trials of probability p. Three regimes keep the cost
// bounded by O(min(n, np) + 1) instead of O(n): tiny n counts Bernoulli
// trials exactly, a small mean inverts the CDF from the shorter tail, and
// a large mean uses the normal approximation with continuity correction
// (the regime where the approximation error is far below the sampling
// noise of the counts themselves). The draw consumes a deterministic
// function of the stream, so results are exactly reproducible per seed.
func (r *RNG) Binomial(n int64, p float64) int64 {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	// Work with the smaller tail so inversion stays cheap.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if n <= 16 {
		var k int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 32 {
		// CDF inversion via the recurrence
		// pmf(k+1) = pmf(k) · (n-k)/(k+1) · p/(1-p).
		u := r.Float64()
		pmf := math.Exp(float64(n) * math.Log1p(-p))
		ratio := p / (1 - p)
		cum := pmf
		var k int64
		for u > cum && k < n {
			pmf *= float64(n-k) / float64(k+1) * ratio
			cum += pmf
			k++
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int64(math.Floor(mean + sd*r.Normal(0, 1) + 0.5))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// State returns the internal generator state, for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously obtained from State.
func (r *RNG) SetState(s uint64) { r.state = s }
