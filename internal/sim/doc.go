// Package sim provides the deterministic discrete-event simulation kernel
// underlying the vmdg reproduction.
//
// The kernel is intentionally small: a virtual clock, a binary-heap event
// queue with stable FIFO ordering for simultaneous events, and a seeded
// SplitMix64 random number generator. Determinism is a hard requirement —
// every experiment in the paper is a ratio of two runs, and reproducible
// ratios demand bit-identical scheduling decisions for a given seed.
//
// Higher layers (internal/hw, internal/hostos, internal/vmm) are written in
// event-callback style rather than goroutine-per-process style: goroutine
// scheduling is nondeterministic, while a single-threaded event loop is not.
package sim
