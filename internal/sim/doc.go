// Package sim provides the deterministic discrete-event simulation kernel
// underlying the vmdg reproduction.
//
// The kernel is intentionally small: a virtual clock, a 4-ary-heap event
// queue with stable FIFO ordering for simultaneous events, and a seeded
// SplitMix64 random number generator. Determinism is a hard requirement —
// every experiment in the paper is a ratio of two runs, and reproducible
// ratios demand bit-identical scheduling decisions for a given seed.
//
// Two scheduling APIs share the queue. At/After take a closure and
// return a caller-owned *Event — convenient for the detailed stack,
// one or two heap allocations per schedule. Schedule/Reschedule take a
// Caller (closure-free) and recycle events through a per-simulator
// pool addressed by generation-checked Handles, so steady-state
// scheduling allocates nothing — the fleet simulator's event budget
// (hundreds of millions of events per run) depends on it.
//
// Higher layers (internal/hw, internal/hostos, internal/vmm) are written in
// event-callback style rather than goroutine-per-process style: goroutine
// scheduling is nondeterministic, while a single-threaded event loop is not.
package sim
