package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{Microsecond, "1.000us"},
		{1500 * Microsecond, "1.500ms"},
		{2 * Second, "2.000000s"},
		{-Second, "-1.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1, 0.5, 1e-9, 3.25, 1e4} {
		got := FromSeconds(s).Seconds()
		if math.Abs(got-s) > 1e-9*math.Max(1, s) {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
	if FromSeconds(-2) != -2*Second {
		t.Errorf("FromSeconds(-2) = %v", FromSeconds(-2))
	}
}

func TestFromDuration(t *testing.T) {
	if FromDuration(3*time.Millisecond) != 3*Millisecond {
		t.Fatal("FromDuration mismatch")
	}
	if (5 * Millisecond).Duration() != 5*time.Millisecond {
		t.Fatal("Duration mismatch")
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, "c", func() { got = append(got, 3) })
	s.At(10, "a", func() { got = append(got, 1) })
	s.At(20, "b", func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, "tie", func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events not FIFO: %v", got)
	}
}

func TestScheduleFromCallback(t *testing.T) {
	s := New()
	var trace []Time
	s.At(5, "first", func() {
		trace = append(trace, s.Now())
		s.After(7, "second", func() { trace = append(trace, s.Now()) })
	})
	s.Run()
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 12 {
		t.Fatalf("trace = %v, want [5 12]", trace)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, "x", func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	e := s.At(20, "victim", func() { fired = true })
	s.At(10, "canceller", func() { e.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, "neg", func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, "e", func() { fired = append(fired, at) })
	}
	s.RunUntil(15)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 5,10,15", fired)
	}
	if s.Now() != 15 {
		t.Fatalf("clock = %v, want 15", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 || s.Now() != 100 {
		t.Fatalf("after second RunUntil: fired=%v now=%v", fired, s.Now())
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(1, "a", func() { count++; s.Stop() })
	s.At(2, "b", func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: count = %d", count)
	}
	s.Run() // resumes with remaining events
	if count != 2 {
		t.Fatalf("second Run did not fire remaining event: count = %d", count)
	}
}

func TestFiredCounterAndPending(t *testing.T) {
	s := New()
	for i := Time(1); i <= 5; i++ {
		s.At(i, "e", func() {})
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", s.Pending())
	}
}

func TestTracer(t *testing.T) {
	s := New()
	var seen []string
	s.SetTracer(func(_ Time, label string) { seen = append(seen, label) })
	s.At(1, "alpha", func() {})
	s.At(2, "", func() {}) // unlabeled: not traced
	s.At(3, "beta", func() {})
	s.Run()
	if len(seen) != 2 || seen[0] != "alpha" || seen[1] != "beta" {
		t.Fatalf("tracer saw %v", seen)
	}
}

func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime on empty queue reported an event")
	}
	e := s.At(9, "x", func() {})
	s.At(11, "y", func() {})
	if at, ok := s.NextEventTime(); !ok || at != 9 {
		t.Fatalf("NextEventTime = %v,%v want 9,true", at, ok)
	}
	e.Cancel()
	if at, ok := s.NextEventTime(); !ok || at != 11 {
		t.Fatalf("NextEventTime after cancel = %v,%v want 11,true", at, ok)
	}
}

// Property: any batch of events fires in nondecreasing time order, and
// insertion order breaks ties.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			s.At(at, "p", func() { fired = append(fired, at) })
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs coincided %d/1000 times", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split()
	v1 := s1.Uint64()
	// Splitting again from the parent must not replay the child's stream.
	s2 := r.Split()
	if s2.Uint64() == v1 {
		t.Fatal("split streams identical")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d count %d, want ~1000", v, c)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(4)
	if r.Jitter(0) != 1 {
		t.Fatal("Jitter(0) != 1")
	}
	for i := 0; i < 10000; i++ {
		j := r.Jitter(0.3)
		if j < 0.5 || j > 1.5 {
			t.Fatalf("Jitter out of clamp range: %v", j)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(9)
	r.Uint64()
	saved := r.State()
	a := r.Uint64()
	r.SetState(saved)
	if b := r.Uint64(); a != b {
		t.Fatalf("state restore diverged: %v vs %v", a, b)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		s := New()
		r := NewRNG(11)
		var rec func()
		n := 0
		rec = func() {
			n++
			if n < 500 {
				s.After(Time(r.Intn(1000)+1), "rec", rec)
				if n%3 == 0 {
					s.After(Time(r.Intn(50)), "leaf", func() {})
				}
			}
		}
		s.At(0, "start", rec)
		s.Run()
		return s.Fired(), s.Now()
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("two identical runs diverged: (%d,%v) vs (%d,%v)", f1, t1, f2, t2)
	}
}

// resetCaller counts fires, standing in for a model arm.
type resetCaller struct{ fired int }

func (c *resetCaller) Fire(now Time) { c.fired++ }

// TestResetRestoresZeroState: a reset simulator must be observationally
// identical to a fresh one — clock, sequence order, fired counter — and
// Handles from before the reset must degrade to no-ops.
func TestResetRestoresZeroState(t *testing.T) {
	s := New()
	c := &resetCaller{}
	s.Schedule(Second, "a", c)
	stale := s.Schedule(2*Second, "b", c)
	s.RunUntil(Second) // fires "a", leaves "b" queued

	s.Reset()
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 {
		t.Fatalf("reset left now=%v fired=%d pending=%d", s.Now(), s.Fired(), s.Pending())
	}
	if stale.Active() {
		t.Fatal("pre-reset handle still active")
	}
	stale.Cancel() // must be a no-op on whatever reused the event

	// A schedule/run cycle after Reset must behave exactly like on a
	// fresh simulator, including tie-breaking by insertion order.
	var order []string
	rec := func(name string) Caller { return callerFunc(func(Time) { order = append(order, name) }) }
	s.Schedule(Second, "x", rec("x"))
	s.Schedule(Second, "y", rec("y"))
	s.Run()
	if len(order) != 2 || order[0] != "x" || order[1] != "y" {
		t.Fatalf("post-reset tie order %v, want [x y]", order)
	}
	if s.Fired() != 2 {
		t.Fatalf("post-reset fired %d, want 2", s.Fired())
	}
	if c.fired != 1 {
		t.Fatalf("pre-reset callbacks fired %d times, want 1", c.fired)
	}
}

// callerFunc adapts a func to Caller for tests.
type callerFunc func(Time)

func (f callerFunc) Fire(now Time) { f(now) }

// TestResetReusesPooledEvents: after a Reset, scheduling draws from the
// free pool rather than allocating — the arena-reuse contract.
func TestResetReusesPooledEvents(t *testing.T) {
	s := New()
	c := &resetCaller{}
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i)*Millisecond, "warm", c)
	}
	s.RunUntil(32 * Millisecond) // fire some, leave the rest queued
	s.Reset()

	allocs := testing.AllocsPerRun(10, func() {
		h := s.Schedule(Second, "steady", c)
		s.Reset()
		_ = h
	})
	if allocs > 0 {
		t.Fatalf("schedule after Reset allocates %.1f per op, want 0", allocs)
	}
}
