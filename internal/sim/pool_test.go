package sim

import (
	"math"
	"testing"
)

// fireCounter is a minimal Caller for pooled-event tests.
type fireCounter struct {
	fired []Time
}

func (c *fireCounter) Fire(now Time) { c.fired = append(c.fired, now) }

func TestScheduleFiresWithScheduledTime(t *testing.T) {
	s := New()
	c := &fireCounter{}
	s.Schedule(10, "a", c)
	s.Schedule(5, "b", c)
	s.Run()
	if len(c.fired) != 2 || c.fired[0] != 5 || c.fired[1] != 10 {
		t.Fatalf("pooled events fired %v, want [5 10]", c.fired)
	}
}

func TestHandleCancelWhileQueued(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h := s.Schedule(10, "victim", c)
	if !h.Active() {
		t.Fatal("freshly scheduled handle not active")
	}
	h.Cancel()
	if h.Active() {
		t.Fatal("cancelled handle still active")
	}
	s.Run()
	if len(c.fired) != 0 {
		t.Fatal("cancelled pooled event fired")
	}
}

func TestHandleCancelAfterFireIsNoOp(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h := s.Schedule(10, "x", c)
	s.Run()
	if len(c.fired) != 1 {
		t.Fatalf("event fired %d times, want 1", len(c.fired))
	}
	// The occurrence fired and its Event was recycled; a late Cancel
	// must be a generation-checked no-op.
	h.Cancel()
	if h.Active() {
		t.Fatal("fired handle reports active")
	}
	h2 := s.Schedule(20, "y", c)
	h.Cancel() // stale handle again, now with h2 holding the reused Event
	s.Run()
	if len(c.fired) != 2 {
		t.Fatal("stale Cancel killed a reused pooled event")
	}
	_ = h2
}

// TestPooledEventReuse pins the recycling contract: a fired pooled event
// is handed back by the very next Schedule, with a bumped generation so
// stale handles cannot touch the new occurrence.
func TestPooledEventReuse(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h1 := s.Schedule(1, "first", c)
	s.Run()
	h2 := s.Schedule(2, "second", c)
	if h1.e != h2.e {
		t.Fatal("fired pooled event was not recycled by the next Schedule")
	}
	if h1.gen == h2.gen {
		t.Fatal("recycled event kept its generation")
	}
	h1.Cancel() // stale: must not cancel h2's occurrence
	if !h2.Active() {
		t.Fatal("stale handle cancelled the reused event")
	}
	s.Run()
	if len(c.fired) != 2 {
		t.Fatalf("fired %v, want two occurrences", c.fired)
	}
}

// TestCancelledPooledEventReaped checks the lazy-deletion path: a
// cancelled pooled occurrence is recycled when it surfaces, and the next
// Schedule reuses it safely.
func TestCancelledPooledEventReaped(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h := s.Schedule(5, "doomed", c)
	s.Schedule(10, "survivor", c)
	h.Cancel()
	s.Run()
	if len(c.fired) != 1 || c.fired[0] != 10 {
		t.Fatalf("fired %v, want only the survivor at 10", c.fired)
	}
	h3 := s.Schedule(20, "reuse", c)
	if !h3.Active() {
		t.Fatal("event reused after cancellation reap is not active")
	}
	s.Run()
	if len(c.fired) != 2 {
		t.Fatal("reused event did not fire")
	}
}

func TestScheduleFromFireReusesSameEvent(t *testing.T) {
	s := New()
	r := &rescheduler{s: s}
	r.h = s.Schedule(1, "tick", r)
	s.Run()
	if r.count != 5 {
		t.Fatalf("fired %d ticks, want 5", r.count)
	}
}

type rescheduler struct {
	s     *Simulator
	h     Handle
	count int
}

func (r *rescheduler) Fire(now Time) {
	r.count++
	if r.count < 5 {
		// The pool hands the just-fired event straight back.
		r.h = r.s.Schedule(now+1, "tick", r)
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h := s.Schedule(10, "move", c)
	if !s.Reschedule(h, 30) {
		t.Fatal("reschedule of a queued handle failed")
	}
	s.Schedule(20, "other", c)
	s.Run()
	if len(c.fired) != 2 || c.fired[0] != 20 || c.fired[1] != 30 {
		t.Fatalf("fired %v, want [20 30]", c.fired)
	}
	if s.Reschedule(h, 40) {
		t.Fatal("reschedule of a fired handle succeeded")
	}
	h2 := s.Schedule(50, "late", c)
	h2.Cancel()
	if s.Reschedule(h2, 60) {
		t.Fatal("reschedule of a cancelled handle succeeded")
	}
}

func TestRescheduleEarlier(t *testing.T) {
	s := New()
	c := &fireCounter{}
	h := s.Schedule(100, "move", c)
	s.Schedule(50, "mid", c)
	if !s.Reschedule(h, 10) {
		t.Fatal("reschedule earlier failed")
	}
	s.Run()
	if len(c.fired) != 2 || c.fired[0] != 10 || c.fired[1] != 50 {
		t.Fatalf("fired %v, want [10 50]", c.fired)
	}
}

func TestZeroHandleInert(t *testing.T) {
	var h Handle
	h.Cancel() // must not panic
	if h.Active() {
		t.Fatal("zero handle active")
	}
	if (New()).Reschedule(h, 10) {
		t.Fatal("zero handle rescheduled")
	}
}

// TestPooledDeterminism runs an event storm twice through the pooled API
// and requires identical fire counts — pooling must not perturb ordering.
func TestPooledDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		s := New()
		r := NewRNG(17)
		d := &stormDriver{s: s, r: r}
		d.h = s.Schedule(0, "storm", d)
		s.Run()
		return s.Fired(), s.Now()
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("pooled runs diverged: (%d,%v) vs (%d,%v)", f1, t1, f2, t2)
	}
}

type stormDriver struct {
	s *Simulator
	r *RNG
	h Handle
	n int
}

func (d *stormDriver) Fire(now Time) {
	d.n++
	if d.n >= 500 {
		return
	}
	d.h = d.s.Schedule(now+Time(d.r.Intn(1000)+1), "storm", d)
	if d.n%3 == 0 {
		// Churn the pool: schedule and sometimes cancel a second event.
		h := d.s.Schedule(now+Time(d.r.Intn(50)+1), "leaf", nopCaller{})
		if d.r.Float64() < 0.5 {
			h.Cancel()
		}
	}
	if d.n%7 == 0 {
		d.s.Reschedule(d.h, now+Time(d.r.Intn(2000)+1))
	}
}

type nopCaller struct{}

func (nopCaller) Fire(Time) {}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100, 0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100, 1) = %d", got)
	}
	for i := 0; i < 1000; i++ {
		n := int64(r.Intn(1000) + 1)
		p := r.Float64()
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %g) = %d out of range", n, p, k)
		}
	}
}

// TestBinomialMoments checks mean and variance across the three sampling
// regimes (Bernoulli counting, CDF inversion, normal approximation).
func TestBinomialMoments(t *testing.T) {
	r := NewRNG(2)
	cases := []struct {
		n int64
		p float64
	}{
		{10, 0.3},    // Bernoulli counting
		{1000, 0.01}, // CDF inversion (small mean)
		{1000, 0.99}, // mirrored inversion
		{5000, 0.4},  // normal approximation
	}
	for _, c := range cases {
		const draws = 20000
		var sum, sumsq float64
		for i := 0; i < draws; i++ {
			k := float64(r.Binomial(c.n, c.p))
			sum += k
			sumsq += k * k
		}
		mean := sum / draws
		variance := sumsq/draws - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		seMean := math.Sqrt(wantVar / draws)
		if math.Abs(mean-wantMean) > 6*seMean+0.02 {
			t.Errorf("Binomial(%d,%g) mean %.3f, want %.3f", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("Binomial(%d,%g) variance %.3f, want %.3f", c.n, c.p, variance, wantVar)
		}
	}
}
