package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in (At, seq) order: ties on At
// are broken by insertion order, which makes simultaneous events
// deterministic without requiring callers to avoid them.
type Event struct {
	At     Time   // virtual time at which Fn fires
	Fn     func() // callback; runs with the clock set to At
	Label  string // optional, for traces and debugging
	seq    uint64 // insertion order, breaks ties
	index  int    // heap index; -1 once popped or cancelled
	cancel bool
}

// Cancel marks the event so it will be discarded instead of fired. Cancelling
// an already-fired event is a no-op. Cancel is O(1); the event is dropped
// lazily when it reaches the top of the heap.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the event queue. It is not safe for
// concurrent use; the entire simulation runs on one goroutine by design.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	running bool
	stopped bool
	tracer  func(Time, string)
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far, a cheap progress and
// determinism probe (two identical runs must fire identical counts).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// cancelled-but-unreaped ones).
func (s *Simulator) Pending() int { return len(s.queue) }

// SetTracer installs a callback invoked for every labelled event fired.
// A nil tracer disables tracing.
func (s *Simulator) SetTracer(fn func(Time, string)) { s.tracer = fn }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every measurement downstream.
func (s *Simulator) At(at Time, label string, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", label, at, s.now))
	}
	e := &Event{At: at, Fn: fn, Label: label, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, label string, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", delay, label))
	}
	return s.At(s.now+delay, label, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// step fires the earliest non-cancelled event. It reports false when the
// queue is exhausted.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.At
		s.fired++
		if s.tracer != nil && e.Label != "" {
			s.tracer(s.now, e.Label)
		}
		e.Fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called. It panics if
// invoked re-entrantly from inside an event callback.
func (s *Simulator) Run() {
	if s.running {
		panic("sim: re-entrant Run")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for !s.stopped && s.step() {
	}
}

// RunUntil fires events with At <= deadline, then advances the clock to
// exactly deadline. Events scheduled at the deadline itself do fire.
func (s *Simulator) RunUntil(deadline Time) {
	if s.running {
		panic("sim: re-entrant RunUntil")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek returns the time of the earliest live event.
func (s *Simulator) peek() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].cancel {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].At, true
	}
	return 0, false
}

// NextEventTime exposes peek for schedulers that want to coalesce wakeups.
func (s *Simulator) NextEventTime() (Time, bool) { return s.peek() }
