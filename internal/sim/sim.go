package sim

import "fmt"

// Event is a scheduled callback. Events fire in (At, seq) order: ties on At
// are broken by insertion order, which makes simultaneous events
// deterministic without requiring callers to avoid them.
//
// Events come in two flavours. At/After return a fresh *Event per call and
// never recycle it, so holding the pointer (and calling Cancel at any later
// point) is always safe. Schedule draws events from the simulator's free
// pool and recycles them the moment they fire or their cancellation is
// reaped; pooled events are addressed through generation-checked Handles,
// never raw pointers.
type Event struct {
	At     Time   // virtual time at which the callback fires
	Fn     func() // closure callback (At/After); nil for pooled events
	Label  string // optional, for traces and debugging
	call   Caller // closure-free callback (Schedule); nil for At/After
	seq    uint64 // insertion order, breaks ties
	index  int    // heap index; -1 once popped or cancelled
	gen    uint32 // bumped on every recycle, validates Handles
	cancel bool
	pooled bool
}

// Cancel marks the event so it will be discarded instead of fired. Cancelling
// an already-fired event is a no-op. Cancel is O(1); the event is dropped
// lazily when it reaches the top of the heap.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel has been called.
func (e *Event) Cancelled() bool { return e.cancel }

// Caller is the closure-free callback of a pooled event: Fire receives the
// virtual time the event was scheduled for. Implementations are typically
// named pointer aliases of the model struct itself (see internal/grid's
// timer arms), so scheduling allocates nothing at steady state.
type Caller interface {
	Fire(now Time)
}

// Handle addresses one scheduled occurrence of a pooled event. A Handle
// stays safe forever: once the occurrence fires or its cancellation is
// reaped, the underlying Event is recycled with a bumped generation and the
// stale Handle's Cancel/Active degrade to no-ops. The zero Handle is valid
// and inert.
type Handle struct {
	e   *Event
	gen uint32
}

// Cancel marks the occurrence for discard. Cancelling a fired, reaped, or
// zero Handle is a no-op — the generation check prevents a stale Handle
// from cancelling an unrelated occurrence that reused the Event.
func (h Handle) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.cancel = true
	}
}

// Active reports whether the occurrence is still queued and uncancelled.
func (h Handle) Active() bool {
	return h.e != nil && h.e.gen == h.gen && !h.e.cancel && h.e.index >= 0
}

// cell is one slot of the event heap: the ordering key is kept inline so
// comparisons never chase the Event pointer, and sifting moves 24-byte
// cells instead of swapping pointers three writes at a time.
type cell struct {
	at  Time
	seq uint64
	e   *Event
}

func cellLess(a, b cell) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulator owns the virtual clock and the event queue. It is not safe for
// concurrent use; the entire simulation runs on one goroutine by design.
type Simulator struct {
	now     Time
	queue   []cell   // 4-ary min-heap on (at, seq)
	free    []*Event // recycled pooled events
	seq     uint64
	fired   uint64
	running bool
	stopped bool
	tracer  func(Time, string)
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far, a cheap progress and
// determinism probe (two identical runs must fire identical counts).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// cancelled-but-unreaped ones).
func (s *Simulator) Pending() int { return len(s.queue) }

// SetTracer installs a callback invoked for every labelled event fired.
// A nil tracer disables tracing.
func (s *Simulator) SetTracer(fn func(Time, string)) { s.tracer = fn }

// The heap is hand-rolled rather than container/heap because event
// push/pop is the innermost loop of every simulation: interface dispatch,
// binary fan-out, and pointer-swap write barriers together cost ~2× on
// the hot path. A 4-ary heap halves the depth (4 levels for a thousand
// events), and the hole-style sifts below move each displaced cell once
// instead of swapping it three writes at a time.

// up sifts cell c toward the root from the hole at i.
func (s *Simulator) up(i int, c cell) {
	for i > 0 {
		parent := (i - 1) / 4
		if !cellLess(c, s.queue[parent]) {
			break
		}
		s.queue[i] = s.queue[parent]
		s.queue[i].e.index = i
		i = parent
	}
	s.queue[i] = c
	c.e.index = i
}

// down sifts cell c toward the leaves from the hole at i.
func (s *Simulator) down(i int, c cell) {
	n := len(s.queue)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if cellLess(s.queue[j], s.queue[best]) {
				best = j
			}
		}
		if !cellLess(s.queue[best], c) {
			break
		}
		s.queue[i] = s.queue[best]
		s.queue[i].e.index = i
		i = best
	}
	s.queue[i] = c
	c.e.index = i
}

// fix restores the heap around i after its key changed in place.
func (s *Simulator) fix(i int) {
	c := s.queue[i]
	s.down(i, c)
	if c.e.index == i {
		s.up(i, c)
	}
}

// push inserts e and assigns its sequence number.
func (s *Simulator) push(e *Event) {
	e.seq = s.seq
	s.seq++
	c := cell{at: e.At, seq: e.seq, e: e}
	s.queue = append(s.queue, c)
	s.up(len(s.queue)-1, c)
}

// pop removes and returns the earliest event.
func (s *Simulator) pop() *Event {
	e := s.queue[0].e
	n := len(s.queue) - 1
	last := s.queue[n]
	s.queue[n] = cell{}
	s.queue = s.queue[:n]
	if n > 0 {
		s.down(0, last)
	}
	e.index = -1
	return e
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every measurement downstream.
func (s *Simulator) At(at Time, label string, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", label, at, s.now))
	}
	e := &Event{At: at, Fn: fn, Label: label}
	s.push(e)
	return e
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, label string, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", delay, label))
	}
	return s.At(s.now+delay, label, fn)
}

// Schedule schedules c.Fire(at) at absolute virtual time at on a pooled
// event: the Event is drawn from the simulator's free pool and recycled as
// soon as it fires or its cancellation is reaped, so steady-state
// scheduling allocates nothing. The returned Handle is the only valid way
// to cancel the occurrence.
func (s *Simulator) Schedule(at Time, label string, c Caller) Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event %q at %v before now %v", label, at, s.now))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.cancel = false
	} else {
		e = &Event{pooled: true}
	}
	e.At, e.Label, e.call = at, label, c
	s.push(e)
	return Handle{e: e, gen: e.gen}
}

// Reschedule moves a still-pending pooled occurrence to a new time in
// place (an O(log n) heap fix — cheaper than Cancel plus Schedule, and it
// leaves no cancelled tombstone behind). It reports false when the Handle
// is stale, cancelled, or already fired; the caller should then Schedule a
// fresh occurrence. The occurrence keeps its original insertion sequence.
func (s *Simulator) Reschedule(h Handle, at Time) bool {
	if !h.Active() {
		return false
	}
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event %q to %v before now %v", h.e.Label, at, s.now))
	}
	e := h.e
	e.At = at
	s.queue[e.index].at = at
	s.fix(e.index)
	return true
}

// release recycles a pooled event after it fired or its cancellation was
// reaped. Bumping the generation invalidates every outstanding Handle.
func (s *Simulator) release(e *Event) {
	if !e.pooled {
		return
	}
	e.gen++
	e.call = nil
	e.cancel = false
	s.free = append(s.free, e)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Reset returns the simulator to the zero-clock empty state while
// keeping its allocations: queued pooled events are recycled into the
// free pool (their generations bump, so outstanding Handles degrade to
// no-ops exactly as after a fire), and the queue's backing array is
// retained. A reset simulator is indistinguishable from New() to any
// model code — sequence numbers, the clock, and the fired counter all
// restart at zero — which is what lets a worker arena reuse one
// Simulator across many shard runs without a single steady-state
// allocation. Resetting mid-Run panics.
func (s *Simulator) Reset() {
	if s.running {
		panic("sim: Reset during Run")
	}
	for _, c := range s.queue {
		c.e.index = -1
		s.release(c.e) // non-pooled events are simply dropped
	}
	clear(s.queue)
	s.queue = s.queue[:0]
	s.now, s.seq, s.fired = 0, 0, 0
	s.stopped = false
	s.tracer = nil
}

// step fires the earliest non-cancelled event. It reports false when the
// queue is exhausted.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		e := s.pop()
		if e.cancel {
			s.release(e)
			continue
		}
		s.now = e.At
		s.fired++
		if s.tracer != nil && e.Label != "" {
			s.tracer(s.now, e.Label)
		}
		if e.pooled {
			// Recycle before firing: the callback may immediately
			// schedule again and get this very event back.
			c, at := e.call, e.At
			s.release(e)
			c.Fire(at)
		} else {
			e.Fn()
		}
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called. It panics if
// invoked re-entrantly from inside an event callback.
func (s *Simulator) Run() {
	if s.running {
		panic("sim: re-entrant Run")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for !s.stopped && s.step() {
	}
}

// RunUntil fires events with At <= deadline, then advances the clock to
// exactly deadline. Events scheduled at the deadline itself do fire.
func (s *Simulator) RunUntil(deadline Time) {
	if s.running {
		panic("sim: re-entrant RunUntil")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// peek returns the time of the earliest live event.
func (s *Simulator) peek() (Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].e.cancel {
			s.release(s.pop())
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// NextEventTime exposes peek for schedulers that want to coalesce wakeups.
func (s *Simulator) NextEventTime() (Time, bool) { return s.peek() }
