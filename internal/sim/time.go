package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in integer nanoseconds since the
// start of the simulation. Integer nanoseconds keep event ordering exact and
// free of floating-point drift over long runs; at nanosecond resolution an
// int64 covers ~292 simulated years, far beyond any experiment here.
type Time int64

// Common durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t (as a delta) to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with adaptive units for logs and traces.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromSeconds converts floating-point seconds to a Time delta, rounding to
// the nearest nanosecond.
func FromSeconds(s float64) Time {
	if s < 0 {
		return -FromSeconds(-s)
	}
	return Time(s*float64(Second) + 0.5)
}

// FromDuration converts a time.Duration to a Time delta.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }
