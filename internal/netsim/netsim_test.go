package netsim

import (
	"testing"

	"vmdg/internal/sim"
)

// recorder collects completion instants in callback order.
type recorder struct {
	done []completion
}

type completion struct {
	t  *Transfer
	at sim.Time
}

func (r *recorder) TransferDone(now sim.Time, t *Transfer) {
	r.done = append(r.done, completion{t: t, at: now})
}

// within asserts got is within a microsecond of want — the fluid model
// computes drain times in float seconds, so ns-exact equality would
// test the rounding, not the model.
func within(t *testing.T, what string, got, want sim.Time) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > sim.Microsecond {
		t.Fatalf("%s at %v, want %v", what, got, want)
	}
}

const mbps = 1e6 // bits/second

func TestSingleTransferDrainsAtLinkRate(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 80 * mbps})
	r := &recorder{}
	n.Start(1_000_000, 8*mbps, r) // 8 Mbit over an 8 Mbps link
	s.Run()
	if len(r.done) != 1 {
		t.Fatalf("%d completions, want 1", len(r.done))
	}
	within(t, "link-limited drain", r.done[0].at, sim.Second)
	if n.Completed != 1 || n.CompletedBytes != 1_000_000 {
		t.Fatalf("stats %d/%d", n.Completed, n.CompletedBytes)
	}
}

func TestAggregateCapSharesEqually(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 80 * mbps})
	r := &recorder{}
	// Two fast-link transfers: each gets half the 80 Mbps frontend.
	a := n.Start(1_000_000, 100*mbps, r)
	b := n.Start(1_000_000, 100*mbps, r)
	s.Run()
	if len(r.done) != 2 {
		t.Fatalf("%d completions, want 2", len(r.done))
	}
	want := sim.FromSeconds(8e6 / (40 * mbps))
	within(t, "first drain", r.done[0].at, want)
	within(t, "second drain", r.done[1].at, want)
	// Simultaneous drains complete in start order.
	if r.done[0].t != a || r.done[1].t != b {
		t.Fatal("simultaneous completions not in start order")
	}
}

// TestMaxMinFairShare: a slow link must not drag the fast one down to
// an equal split — progressive filling hands the slow transfer its
// link rate and the fast one everything left.
func TestMaxMinFairShare(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 90 * mbps})
	r := &recorder{}
	slow := n.Start(10_000_000, 10*mbps, r) // 80 Mbit at 10 Mbps → 8 s
	fast := n.Start(10_000_000, 100*mbps, r)
	s.Run()
	if r.done[0].t != fast {
		t.Fatal("fast transfer did not finish first")
	}
	// Fast: 80 Mbit at 80 Mbps → 1 s. Slow: unaffected throughout.
	within(t, "fast drain", r.done[0].at, sim.Second)
	if r.done[1].t != slow {
		t.Fatal("slow transfer missing")
	}
	within(t, "slow drain", r.done[1].at, 8*sim.Second)
}

// TestCompletionReallocatesCapacity: when one transfer drains, the
// survivor's rate rises for its remaining bytes.
func TestCompletionReallocatesCapacity(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 80 * mbps})
	r := &recorder{}
	n.Start(1_000_000, 100*mbps, r) // 8 Mbit at 40 Mbps → drains at 0.2 s
	n.Start(2_000_000, 100*mbps, r) // half done by then, then 80 Mbps
	s.Run()
	within(t, "short drain", r.done[0].at, 200*sim.Millisecond)
	// Survivor: 8 Mbit left at 80 Mbps → 0.1 s more.
	within(t, "long drain", r.done[1].at, 300*sim.Millisecond)
}

func TestCancelDropsTransferAndReallocates(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 80 * mbps})
	r := &recorder{}
	doomed := n.Start(10_000_000, 100*mbps, r) // 80 Mbit
	n.Start(6_000_000, 100*mbps, r)            // 48 Mbit
	s.At(sim.Second, "cancel", func() { n.Cancel(doomed) })
	s.Run()
	if len(r.done) != 1 {
		t.Fatalf("%d completions, want 1 (cancelled sink must not fire)", len(r.done))
	}
	// Survivor: 40 Mbit moved by the cancel at t=1s, the remaining
	// 8 Mbit then drain at the full 80 Mbps.
	within(t, "survivor drain", r.done[0].at, sim.Second+100*sim.Millisecond)
	if n.Cancelled != 1 || n.Completed != 1 {
		t.Fatalf("stats cancelled=%d completed=%d", n.Cancelled, n.Completed)
	}
	if doomed.Active() {
		t.Fatal("cancelled transfer still active")
	}
	n.Cancel(doomed) // idempotent
	if n.Cancelled != 1 {
		t.Fatal("double cancel counted twice")
	}
}

// TestLateStartResharesCapacity: a transfer arriving mid-flight slows
// the incumbent from its arrival instant only.
func TestLateStartResharesCapacity(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 80 * mbps})
	r := &recorder{}
	n.Start(2_000_000, 100*mbps, r) // 16 Mbit; alone at 80 Mbps
	s.At(100*sim.Millisecond, "late", func() { n.Start(10_000_000, 100*mbps, r) })
	s.Run()
	// Incumbent: 8 Mbit in the first 100 ms, 8 Mbit left at 40 Mbps.
	within(t, "incumbent drain", r.done[0].at, 100*sim.Millisecond+sim.FromSeconds(8e6/(40*mbps)))
}

func TestUncappedNetworkRunsAtLinkRate(t *testing.T) {
	s := sim.New()
	n := New(s, Config{})
	r := &recorder{}
	for i := 0; i < 4; i++ {
		n.Start(1_000_000, 8*mbps, r)
	}
	s.Run()
	for _, d := range r.done {
		within(t, "uncapped drain", d.at, sim.Second)
	}
}

// TestDeterministicReplay: the same scripted sequence of starts and
// cancels produces bit-identical completion instants.
func TestDeterministicReplay(t *testing.T) {
	script := func() []completion {
		s := sim.New()
		n := New(s, Config{AggregateBps: 48 * mbps})
		r := &recorder{}
		var xfers []*Transfer
		for i := 0; i < 7; i++ {
			bytes := int64(500_000 + 250_000*i)
			link := float64(10+7*i) * mbps
			at := sim.Time(i) * 300 * sim.Millisecond
			s.At(at, "start", func() { xfers = append(xfers, n.Start(bytes, link, r)) })
		}
		s.At(time900, "cancel", func() { n.Cancel(xfers[0]) })
		s.Run()
		return r.done
	}
	a, b := script(), script()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at {
			t.Fatalf("completion %d at %v vs %v", i, a[i].at, b[i].at)
		}
	}
}

const time900 = 900 * sim.Millisecond

func TestStartRejectsDegenerateTransfers(t *testing.T) {
	s := sim.New()
	n := New(s, Config{AggregateBps: 8 * mbps})
	for _, tc := range []struct {
		name  string
		bytes int64
		link  float64
	}{
		{"zero bytes", 0, 8 * mbps},
		{"negative bytes", -1, 8 * mbps},
		{"zero link", 1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			n.Start(tc.bytes, tc.link, &recorder{})
		}()
	}
}
