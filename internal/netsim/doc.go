// Package netsim models the volunteer grid's wide-area transfer plane:
// a star network with every host's uplink/downlink on the edge and a
// capacity-limited server frontend at the center.
//
// The model is fluid rather than per-packet. A transfer is a byte count
// draining at a rate set by max-min fair sharing: each active transfer
// receives an equal share of the frontend's aggregate capacity, except
// that a transfer whose own access link is slower than its share is
// capped at its link rate and the spare capacity is redistributed to
// the rest (progressive filling). Rates are recomputed only when the
// set of active transfers changes — a start, completion, or cancel —
// so a transfer costs O(active) arithmetic per membership change and
// exactly one pooled simulator event, not an event per byte or frame.
// (Per-frame fidelity lives in internal/hw and internal/vmm's NIC
// models; netsim is the scale-out counterpart for fleets, where a
// million concurrent byte streams could never be framed individually.)
//
// Determinism: transfers are tracked in start order, rate assignment
// iterates in a deterministic order, and completion events go through
// the simulator's (time, insertion-seq) queue, so identical call
// sequences produce bit-identical completion times. There is no
// randomness inside the package — callers draw per-host link rates
// from their own seeded streams.
package netsim
