package netsim

import (
	"fmt"

	"vmdg/internal/sim"
)

// Config sizes a Network.
type Config struct {
	// AggregateBps is the server frontend's total transfer capacity in
	// bits/second, shared max-min fairly by every active transfer in
	// both directions (a frontend's NIC is the bottleneck, not its
	// duplex halves). Zero or negative means uncapped: every transfer
	// runs at its own link rate.
	AggregateBps float64
}

// Sink receives a transfer's completion. Implementations are typically
// named pointer aliases of the owning model struct (the grid's hosts),
// so registering one allocates nothing.
type Sink interface {
	// TransferDone fires exactly once per completed transfer, at the
	// virtual instant its last byte drains. Cancelled transfers never
	// fire it.
	TransferDone(now sim.Time, t *Transfer)
}

// Network is one star network: hosts on the edge, a capacity-limited
// server frontend at the center. It is not safe for concurrent use —
// like the simulator it schedules on, a Network belongs to exactly one
// shard's event loop.
type Network struct {
	s      *sim.Simulator
	aggBps float64

	// active holds the in-flight transfers in start order — the
	// deterministic iteration order of every rate assignment.
	active []*Transfer
	last   sim.Time // rates are exact as of this instant

	// Stats.
	Started        int
	Completed      int
	Cancelled      int
	CompletedBytes int64
}

// New returns an empty network scheduling on s.
func New(s *sim.Simulator, cfg Config) *Network {
	return &Network{s: s, aggBps: cfg.AggregateBps}
}

// Transfer is one in-flight byte stream between a host and the server.
type Transfer struct {
	n         *Network
	bytes     int64
	linkBps   float64
	remaining float64 // bytes still to move
	rate      float64 // bytes/second under the current fair share
	h         sim.Handle
	sink      Sink
	done      bool
	cancelled bool
}

// xferArm is the completion caller of a Transfer (see sim.Caller): a
// free pointer conversion, so scheduling a completion allocates only
// the pooled event.
type xferArm Transfer

func (a *xferArm) Fire(now sim.Time) {
	t := (*Transfer)(a)
	t.n.finish(t, now)
}

// Bytes returns the transfer's total size.
func (t *Transfer) Bytes() int64 { return t.bytes }

// Remaining returns the bytes not yet moved (0 once complete).
func (t *Transfer) Remaining() int64 {
	if t.done {
		return 0
	}
	r := int64(t.remaining + 0.5)
	if r < 0 {
		r = 0
	}
	return r
}

// Active reports whether the transfer is still in flight.
func (t *Transfer) Active() bool { return !t.done && !t.cancelled }

// Start begins moving bytes over a host link of linkBps bits/second
// and returns the transfer; sink fires when the last byte drains.
// Sizes and rates must be positive — a zero-byte or zero-rate transfer
// is a model bug, not a network condition.
func (n *Network) Start(bytes int64, linkBps float64, sink Sink) *Transfer {
	if bytes <= 0 {
		panic(fmt.Sprintf("netsim: transfer of %d bytes", bytes))
	}
	if linkBps <= 0 {
		panic(fmt.Sprintf("netsim: transfer on a %g bps link", linkBps))
	}
	n.advance(n.s.Now())
	t := &Transfer{n: n, bytes: bytes, linkBps: linkBps, remaining: float64(bytes), sink: sink}
	n.active = append(n.active, t)
	n.Started++
	n.reflow()
	return t
}

// Cancel abandons an in-flight transfer; its sink never fires and the
// untransferred remainder is dropped. Cancelling a finished or already
// cancelled transfer is a no-op.
func (n *Network) Cancel(t *Transfer) {
	if !t.Active() {
		return
	}
	n.advance(n.s.Now())
	t.cancelled = true
	t.h.Cancel()
	t.h = sim.Handle{}
	n.remove(t)
	n.Cancelled++
	n.reflow()
}

// InFlight reports the number of active transfers.
func (n *Network) InFlight() int { return len(n.active) }

// finish completes t at its scheduled drain instant.
func (n *Network) finish(t *Transfer, now sim.Time) {
	n.advance(now)
	t.done = true
	t.remaining = 0
	t.h = sim.Handle{}
	n.remove(t)
	n.Completed++
	n.CompletedBytes += t.bytes
	n.reflow()
	t.sink.TransferDone(now, t)
}

// remove drops t from the active set, preserving start order.
func (n *Network) remove(t *Transfer) {
	for i, a := range n.active {
		if a == t {
			n.active = append(n.active[:i], n.active[i+1:]...)
			return
		}
	}
}

// advance drains every active transfer up to now at the prevailing
// rates. Rates only change when the active set does, so each window is
// constant-rate by construction.
func (n *Network) advance(now sim.Time) {
	dt := (now - n.last).Seconds()
	if dt > 0 {
		for _, t := range n.active {
			t.remaining -= t.rate * dt
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
	}
	n.last = now
}

// reflow recomputes max-min fair rates for the active set and
// (re)schedules each transfer's drain event. Call after every
// membership change, with remainders already advanced to now.
func (n *Network) reflow() {
	if len(n.active) == 0 {
		return
	}
	n.assignRates()
	now := n.s.Now()
	for _, t := range n.active {
		eta := now + sim.FromSeconds(t.remaining/t.rate)
		if !n.s.Reschedule(t.h, eta) {
			t.h = n.s.Schedule(eta, "xfer-drain", (*xferArm)(t))
		}
	}
}

// assignRates implements progressive filling: transfers whose access
// link is below the equal share are capped at their link and the spare
// capacity re-divides among the rest, iterating until the share
// settles. O(active²) worst case, O(active) typical — active sets are
// membership-change sized, not fleet sized.
func (n *Network) assignRates() {
	if n.aggBps <= 0 {
		for _, t := range n.active {
			t.rate = t.linkBps / 8
		}
		return
	}
	for _, t := range n.active {
		t.rate = -1
	}
	capLeft := n.aggBps
	unassigned := len(n.active)
	for unassigned > 0 {
		share := capLeft / float64(unassigned)
		capped := false
		for _, t := range n.active {
			if t.rate < 0 && t.linkBps <= share {
				t.rate = t.linkBps
				capLeft -= t.linkBps
				unassigned--
				capped = true
			}
		}
		if !capped {
			// No one is link-limited at this share: the rest split the
			// remaining capacity equally. Guard the (unreachable in
			// practice) exact-exhaustion case so a drain time can never
			// be infinite.
			if share <= 0 {
				share = 1
			}
			for _, t := range n.active {
				if t.rate < 0 {
					t.rate = share
				}
			}
			break
		}
	}
	// Rates so far are bits/second; transfers drain bytes.
	for _, t := range n.active {
		t.rate /= 8
	}
}
