package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// NewSweep expands a declarative scenario spec (grid.Spec) into its
// cartesian grid of points and wraps the whole grid as one experiment:
// every point's shards run on the shared worker pool, each point keys
// the cache by its own scenario (sweep point = cache scope, via
// ShardScope), and the merge emits a single cross-scenario table, CSV,
// and JSON artifact keyed by the spec's swept axis values. Re-running
// a sweep with one axis widened simulates only the new points — the
// rest replay from cache.
//
// The run config's Seed and Quick override the spec's for cache-key
// coherence; callers that want the spec to govern (the CLI does) copy
// them into the config first.
func NewSweep(name, title string, spec grid.Spec) (Experiment, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	vs := make([]fleetVariant, len(pts))
	for i, pt := range pts {
		vs[i] = fleetVariant{label: pt.Label(), scn: pt.Scenario}
	}
	return sweepExperiment{
		fleetExperiment: fleetExperiment{name: name, title: title, variants: vs},
		spec:            spec,
		points:          pts,
	}, nil
}

// sweepExperiment is a fleet experiment whose variants are the points
// of a spec's cartesian grid; only the kind and the merged rendering
// differ (one axis-keyed table instead of one table per variant).
type sweepExperiment struct {
	fleetExperiment
	spec   grid.Spec
	points []grid.Point
}

func (s sweepExperiment) Kind() Kind { return KindSweep }

func (s sweepExperiment) Fold(cfg core.Config) (Fold, error) {
	return &sweepFold{exp: s, cfg: normalize(cfg), variantFold: newVariantFold(s.resolve(cfg))}, nil
}

// Merge replays the shards through the same fold, so the batch and
// streaming paths cannot drift.
func (s sweepExperiment) Merge(cfg core.Config, shards [][]byte) (*Outcome, error) {
	fold, err := s.Fold(cfg)
	if err != nil {
		return nil, err
	}
	for i, b := range shards {
		if err := fold.Absorb(i, b); err != nil {
			return nil, err
		}
	}
	return fold.Finish()
}

// sweepPayload is the merged JSON artifact: the spec that generated
// the grid plus one fleet result per point, keyed by axis values.
type sweepPayload struct {
	Name   string
	Spec   grid.Spec
	Points []sweepPointResult
}

type sweepPointResult struct {
	Axes  []grid.AxisValue
	Fleet *grid.FleetResult
}

// sweepFold renders the absorbed points as one cross-scenario table.
type sweepFold struct {
	exp sweepExperiment
	cfg core.Config
	variantFold
}

func (fd *sweepFold) Finish() (*Outcome, error) {
	frs, err := fd.results()
	if err != nil {
		return nil, err
	}
	pts := fd.exp.points
	payload := sweepPayload{Name: fd.exp.name}
	if payload.Name == "" {
		payload.Name = fd.exp.spec.Name
	}
	payload.Spec = fd.exp.spec
	// The run config's Seed and Quick govern what actually simulated
	// (resolve applies them to every point); stamp them into the
	// recorded spec so the artifact's provenance matches the table.
	payload.Spec.Seed = fd.cfg.Seed
	payload.Spec.Quick = fd.cfg.Quick
	for i, pt := range pts {
		payload.Points = append(payload.Points, sweepPointResult{Axes: pt.Axes, Fleet: frs[i]})
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Name:    fd.exp.name,
		Kind:    KindSweep,
		Text:    renderSweep(fd.exp.spec, fd.cfg, pts, frs),
		CSVText: sweepCSV(fd.exp.spec, pts, frs),
		Raw:     raw,
	}, nil
}

// renderSweep builds the merged table: one row per (point,
// environment), keyed by the swept axis values. When any point
// migrates checkpoints the table gains the migration columns (for
// every row — columns must agree down the table); a migration-free
// sweep renders in its pre-migration byte-exact form.
func renderSweep(spec grid.Spec, cfg core.Config, pts []grid.Point, frs []*grid.FleetResult) string {
	axes := spec.SweptAxes()
	mig := spec.Migrates()
	var b strings.Builder
	axisDesc := "no swept axes"
	if len(axes) > 0 {
		axisDesc = "axes " + strings.Join(axes, " × ")
	}
	fmt.Fprintf(&b, "sweep: %d points (%s) × %d env(s), seed %d\n\n",
		len(pts), axisDesc, len(spec.Normalize().Envs), cfg.Seed)

	labelW := len("point")
	for _, pt := range pts {
		if l := len(pointLabel(pt)); l > labelW {
			labelW = l
		}
	}
	fmt.Fprintf(&b, "%-*s %-14s %9s %6s %4s %7s %6s %10s %7s %7s %7s",
		labelW, "point", "environment", "validated", "outst", "bad", "invalid",
		"evict", "lost-chnk", "avail%", "p50ms", "p95ms")
	if mig {
		fmt.Fprintf(&b, " %6s %9s %7s %7s", "migr", "saved-min", "tx-MB", "rx-MB")
	}
	b.WriteByte('\n')
	for i, pt := range pts {
		fr := frs[i]
		for _, st := range fr.Envs {
			horizon := float64(fr.Scenario.Minutes) * 60 * float64(st.Hosts)
			avail := 0.0
			if horizon > 0 {
				avail = 100 * st.OnSeconds / horizon
			}
			fmt.Fprintf(&b, "%-*s %-14s %9d %6d %4d %7d %6d %10d %7.1f %7.1f %7.1f",
				labelW, pointLabel(pt), st.Env,
				st.Policy.Validated, st.Policy.Outstanding, st.Policy.Bad,
				st.Policy.Invalid, st.Evictions, st.LostChunks, avail,
				st.Latency.Percentile(0.50), st.Latency.Percentile(0.95))
			if mig {
				fmt.Fprintf(&b, " %6d %9.1f %7.1f %7.1f",
					st.Migrations, st.MigSavedSec/60,
					float64(st.MigTxBytes)/1e6, float64(st.MigRxBytes)/1e6)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// sweepCSV emits one column per swept axis ahead of the full fleet
// columns, so the artifact is directly groupable by axis value. With
// nothing swept it degrades to the plain fleet CSV.
func sweepCSV(spec grid.Spec, pts []grid.Point, frs []*grid.FleetResult) string {
	axes := spec.SweptAxes()
	header, rows := grid.CSVHeader(), (*grid.FleetResult).CSVRows
	if spec.Migrates() {
		header, rows = grid.MigCSVHeader(), (*grid.FleetResult).MigCSVRows
	}
	var b strings.Builder
	if len(axes) == 0 {
		b.WriteString(header)
		for i := range pts {
			b.WriteString(rows(frs[i], ""))
		}
		return b.String()
	}
	// The header leads with a free-form "variant" column; the sweep
	// replaces it with the axis columns and passes the point's axis
	// values as that cell, which the CSV writer emits verbatim.
	b.WriteString(strings.Join(axes, ","))
	b.WriteByte(',')
	b.WriteString(strings.TrimPrefix(header, "variant,"))
	for i, pt := range pts {
		vals := make([]string, len(pt.Axes))
		for j, av := range pt.Axes {
			vals[j] = av.Value
		}
		b.WriteString(rows(frs[i], strings.Join(vals, ",")))
	}
	return b.String()
}

// pointLabel is the table key for one point; a sweep of a single point
// has no swept axes to show.
func pointLabel(pt grid.Point) string {
	if l := pt.Label(); l != "" {
		return l
	}
	return "(spec)"
}
