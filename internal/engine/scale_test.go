package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// scaleScenario draws one 100k+-host fleet scenario from a fixed-seed
// stream: big enough that the span scheduler dispatches hundreds of
// shards across every worker count under test, varied enough (policy,
// churn, faulty fraction, horizon) that invariance is checked on more
// than one code path. A failure reproduces exactly from the seed.
func scaleScenario(rng *rand.Rand) grid.Scenario {
	policies := []string{"fifo", "deadline"}
	return grid.Scenario{
		Machines:   100_000 + rng.Intn(40_000),
		Minutes:    45 + rng.Intn(45),
		Seed:       1,
		Quick:      true,
		Churn:      rng.Intn(2) == 0,
		Policy:     policies[rng.Intn(len(policies))],
		FaultyFrac: float64(rng.Intn(3)) * 0.02,
		Envs:       []string{"vmplayer"},
	}.Normalize()
}

// TestScaleInvarianceAcrossWorkerCounts is the scale-invariance
// contract behind the multi-core fleet kernel: a six-figure-host
// scenario must produce byte-identical table, CSV, and JSON artifacts
// — and the same deterministic event sequence — whether one worker
// runs every shard or eight workers race over contiguous spans of
// them. Each run uses its own cold cache, so every worker count
// simulates every shard rather than replaying the first run's bytes.
func TestScaleInvarianceAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 100k+-host fleets three times per scenario")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2; i++ {
		scn := scaleScenario(rng)
		label := scn.Key()
		if scn.Machines < 100_000 {
			t.Fatalf("%s: population below the 100k floor the test promises", label)
		}

		type artifact struct {
			workers int
			text    string
			csv     string
			raw     []byte
			events  []Event
		}
		var base *artifact
		for _, workers := range []int{1, 4, 8} {
			var events []Event
			r := &Runner{
				Workers: workers,
				Cache:   NewMemCache(),
				OnEvent: func(ev Event) { events = append(events, ev) },
			}
			exp := FleetScenario(fmt.Sprintf("scale%d", i), "scale invariance", scn)
			outs, stats, err := r.Run(core.Config{Seed: 1, Quick: true}, []Experiment{exp})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", label, workers, err)
			}
			if stats.Hits != 0 {
				t.Fatalf("%s workers=%d: %d cache hits on a cold cache — the run compared replayed bytes, not simulation",
					label, workers, stats.Hits)
			}
			got := &artifact{workers: workers, text: outs[0].Render(), csv: outs[0].CSV(), raw: outs[0].Raw, events: events}
			if base == nil {
				base = got
				continue
			}
			if got.text != base.text {
				t.Errorf("%s: table differs between %d and %d workers", label, base.workers, got.workers)
			}
			if got.csv != base.csv {
				t.Errorf("%s: CSV differs between %d and %d workers", label, base.workers, got.workers)
			}
			if !bytes.Equal(got.raw, base.raw) {
				t.Errorf("%s: JSON differs between %d and %d workers", label, base.workers, got.workers)
			}
			if len(got.events) != len(base.events) {
				t.Fatalf("%s: %d events at %d workers vs %d at %d workers",
					label, len(got.events), got.workers, len(base.events), base.workers)
			}
			for j := range got.events {
				if got.events[j] != base.events[j] {
					t.Fatalf("%s: event %d differs between %d and %d workers: %+v vs %+v",
						label, j, base.workers, got.workers, base.events[j], got.events[j])
					break
				}
			}
		}
	}
}
