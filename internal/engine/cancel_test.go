package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// These tests pin the RunContext cancellation contract the serve daemon
// depends on: a canceled run returns promptly, frees its pool queue,
// and never poisons work shared with concurrent runs — led flights are
// retired for waiters to recompute, joined flights are abandoned so the
// leader's delivery counts stay honest. The interleavings are pinned
// with the in-package task/lead gates, so every count asserted below is
// an invariant, not a race lottery.

// TestRunContextPreCanceled: a run whose context is already dead does
// no simulation work at all.
func TestRunContextPreCanceled(t *testing.T) {
	fake := newFake("precancel", 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	r := Runner{Workers: 2, Cache: NewMemCache()}
	_, st, err := r.RunContext(ctx, quickCfg(), []Experiment{fake})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fake.runs.Load() != 0 {
		t.Errorf("RunShard executed %d times after pre-cancel, want 0", fake.runs.Load())
	}
	if st.Misses != 0 {
		t.Errorf("Misses = %d, want 0", st.Misses)
	}
}

// TestRunContextCancelMidRunSharedPool: canceling one tenant of a
// shared pool stops its dispatch short and leaves the other tenant —
// and the pool itself — fully functional.
func TestRunContextCancelMidRunSharedPool(t *testing.T) {
	const shardsA, shardsB = 64, 12
	pool := NewPool(2)
	defer pool.Close()
	cache := NewMemCache()
	cfg := quickCfg()

	fakeA := newFake("cancelA", shardsA)
	fakeB := newFake("cancelB", shardsB)

	serial := Runner{Workers: 1, Cache: NewMemCache()}
	refB, _, err := serial.Run(cfg, []Experiment{fakeB})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	rA := Runner{Pool: pool, Cache: cache, taskGate: func(string) {
		if started.Add(1) == 5 {
			cancel()
		}
	}}
	rB := Runner{Pool: pool, Cache: cache}

	var (
		wg         sync.WaitGroup
		stA, stB   Stats
		errA, errB error
		outB       []*Outcome
	)
	wg.Add(2)
	go func() { defer wg.Done(); _, stA, errA = rA.RunContext(ctx, cfg, []Experiment{fakeA}) }()
	go func() { defer wg.Done(); outB, stB, errB = rB.Run(cfg, []Experiment{fakeB}) }()
	wg.Wait()

	if !errors.Is(errA, context.Canceled) {
		t.Fatalf("canceled run err = %v, want context.Canceled", errA)
	}
	if stA.Misses >= shardsA {
		t.Errorf("canceled run computed %d of %d shards; cancellation did not cut dispatch short", stA.Misses, shardsA)
	}
	if errB != nil {
		t.Fatalf("concurrent run failed: %v", errB)
	}
	if stB.Misses != shardsB {
		t.Errorf("concurrent run Misses = %d, want %d", stB.Misses, shardsB)
	}
	if outB[0].Render() != refB[0].Render() {
		t.Error("concurrent run's output differs from serial reference")
	}

	// The pool must still serve new runs after the cancellation: the
	// canceled tenant's queue drained instead of wedging the rotation.
	refA, _, err := serial.Run(cfg, []Experiment{fakeA})
	if err != nil {
		t.Fatal(err)
	}
	again := Runner{Pool: pool, Cache: cache}
	outA, stA2, err := again.Run(cfg, []Experiment{fakeA})
	if err != nil {
		t.Fatalf("post-cancel run on the shared pool failed: %v", err)
	}
	if outA[0].Render() != refA[0].Render() {
		t.Error("post-cancel run's output differs from serial reference")
	}
	if stA.Misses+stA2.Misses != shardsA {
		t.Errorf("cancel-then-rerun computed %d+%d shards, want %d total (cached remainder)",
			stA.Misses, stA2.Misses, shardsA)
	}
}

// TestRunContextCanceledLeaderRetiresFlight: a leader canceled between
// claiming a flight and simulating hands the key back; the waiting run
// recomputes it instead of failing, and the shard is still computed
// exactly once.
func TestRunContextCanceledLeaderRetiresFlight(t *testing.T) {
	fake := newFake("retire", 1)
	cache := NewMemCache()
	flights := NewFlightGroup()
	cfg := quickCfg()

	serial := Runner{Workers: 1, Cache: NewMemCache()}
	ref, _, err := serial.Run(cfg, []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	refRuns := fake.runs.Load()

	ctx, cancel := context.WithCancel(context.Background())
	aLeads := make(chan struct{})
	canceled := make(chan struct{})

	rA := Runner{
		Workers: 1, Cache: cache, Flights: flights,
		leadGate: func(key string) {
			close(aLeads)
			awaitWaiters(flights, key, 1)
			<-canceled
		},
	}
	rB := Runner{
		Workers: 1, Cache: cache, Flights: flights,
		taskGate: func(string) { <-aLeads },
	}

	var (
		wg         sync.WaitGroup
		errA, errB error
		stB        Stats
		outB       []*Outcome
	)
	wg.Add(2)
	go func() { defer wg.Done(); _, _, errA = rA.RunContext(ctx, cfg, []Experiment{fake}) }()
	go func() { defer wg.Done(); outB, stB, errB = rB.Run(cfg, []Experiment{fake}) }()

	<-aLeads
	// A's leadGate holds until B joins as a waiter; cancel now so A's
	// post-gate context check fires and the flight is retired to B.
	cancel()
	close(canceled)
	wg.Wait()

	if !errors.Is(errA, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", errA)
	}
	if errB != nil {
		t.Fatalf("waiter poisoned by canceled leader: %v", errB)
	}
	if got := fake.runs.Load() - refRuns; got != 1 {
		t.Errorf("RunShard executed %d times, want 1 (waiter recomputes once)", got)
	}
	if stB.Misses != 1 || stB.FlightHits != 0 {
		t.Errorf("waiter stats = %+v, want Misses 1 / FlightHits 0 (it led the retried flight)", stB)
	}
	if outB[0].Render() != ref[0].Render() {
		t.Error("waiter's output differs from serial reference")
	}
}

// TestRunContextCanceledWaiterAbandonsFlight: a waiter canceled while
// parked on someone else's flight withdraws, so the leader's
// FlightShared counts only deliveries someone received.
func TestRunContextCanceledWaiterAbandonsFlight(t *testing.T) {
	fake := newFake("abandon", 1)
	cache := NewMemCache()
	flights := NewFlightGroup()
	cfg := quickCfg()

	serial := Runner{Workers: 1, Cache: NewMemCache()}
	ref, _, err := serial.Run(cfg, []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	refRuns := fake.runs.Load()

	ctx, cancel := context.WithCancel(context.Background())
	aLeads := make(chan struct{})
	bGone := make(chan struct{})

	rA := Runner{
		Workers: 1, Cache: cache, Flights: flights,
		leadGate: func(key string) {
			close(aLeads)
			awaitWaiters(flights, key, 1)
			<-bGone // hold the flight open until the waiter has left
		},
	}
	rB := Runner{
		Workers: 1, Cache: cache, Flights: flights,
		taskGate: func(string) { <-aLeads },
	}

	var (
		wg         sync.WaitGroup
		errA, errB error
		stA, stB   Stats
		outA       []*Outcome
	)
	wg.Add(1)
	go func() { defer wg.Done(); outA, stA, errA = rA.Run(cfg, []Experiment{fake}) }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, stB, errB = rB.RunContext(ctx, cfg, []Experiment{fake})
	}()
	<-aLeads
	// B is (or is about to be) the flight's waiter; cancel it and wait
	// for its run to return before letting A publish.
	cancel()
	<-done
	close(bGone)
	wg.Wait()

	if !errors.Is(errB, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", errB)
	}
	if errA != nil {
		t.Fatalf("leader failed: %v", errA)
	}
	if got := fake.runs.Load() - refRuns; got != 1 {
		t.Errorf("RunShard executed %d times, want 1", got)
	}
	if stA.FlightShared != 0 {
		t.Errorf("leader FlightShared = %d, want 0 (its only waiter abandoned)", stA.FlightShared)
	}
	if stB.Misses != 0 || stB.FlightHits != 0 {
		t.Errorf("canceled waiter stats = %+v, want no work recorded", stB)
	}
	if outA[0].Render() != ref[0].Render() {
		t.Error("leader's output differs from serial reference")
	}
}

// TestManifestBusySecondIdenticalRun: two identical concurrent runs
// over one FileCache journal once, not twice — the second opener
// proceeds un-journaled (ErrManifestBusy is absorbed by the runner) and
// the single journal seals complete.
func TestManifestBusySecondIdenticalRun(t *testing.T) {
	const shards = 6
	fake := newFake("busy", shards)
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flights := NewFlightGroup()
	gate := newArrivalGate(2)
	cfg := quickCfg()

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats []Stats
		errs  []error
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := Runner{
				Workers: 2, Cache: fc, Manifests: fc.Manifests(),
				Flights: flights, taskGate: gate.wait,
			}
			_, st, err := r.Run(cfg, []Experiment{fake})
			mu.Lock()
			defer mu.Unlock()
			stats = append(stats, st)
			errs = append(errs, err)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	mis, err := fc.Manifests().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 1 || !mis[0].Complete || mis[0].Cursor != shards {
		t.Fatalf("manifests after concurrent identical runs = %+v, want one complete journal of %d tasks", mis, shards)
	}

	// The surviving journal must vouch for the whole fold: an identical
	// re-run replays everything from cache.
	r := Runner{Workers: 1, Cache: fc, Manifests: fc.Manifests()}
	_, st, err := r.Run(cfg, []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	if st.Resumed != shards || st.Misses != 0 {
		t.Errorf("re-run stats = %+v, want Resumed %d / Misses 0", st, shards)
	}
}
