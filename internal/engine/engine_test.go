package engine

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"vmdg/internal/core"
)

// quickCfg mirrors the core test configuration: trimmed workloads, two
// repetitions.
func quickCfg() core.Config { return core.Config{Seed: 1, Reps: 2, Quick: true} }

// fakeExp is a synthetic experiment for exercising runner mechanics:
// deterministic payloads, an execution counter, and an optional failing
// shard.
type fakeExp struct {
	name   string
	shards int
	fail   int // failing shard index, -1 for none
	runs   atomic.Int64
}

func (f *fakeExp) Name() string           { return f.name }
func (f *fakeExp) Title() string          { return "fake " + f.name }
func (f *fakeExp) Kind() Kind             { return KindFigure }
func (f *fakeExp) Scope() string          { return f.name }
func (f *fakeExp) Shards(core.Config) int { return f.shards }

func (f *fakeExp) RunShard(cfg core.Config, shard int) ([]byte, error) {
	f.runs.Add(1)
	if shard == f.fail {
		return nil, fmt.Errorf("shard %d exploded", shard)
	}
	return json.Marshal(map[string]float64{"v": float64(shard) * 1.5})
}

func (f *fakeExp) Merge(cfg core.Config, shards [][]byte) (*Outcome, error) {
	total := 0.0
	for _, b := range shards {
		var p map[string]float64
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, err
		}
		total += p["v"]
	}
	return &Outcome{
		Name: f.name,
		Kind: KindFigure,
		Text: fmt.Sprintf("%s total %.3f over %d shards\n", f.name, total, len(shards)),
	}, nil
}

func newFake(name string, shards int) *fakeExp {
	return &fakeExp{name: name, shards: shards, fail: -1}
}

// TestRunnerWorkerCountInvariance is the acceptance property: the same
// seed produces bit-identical results whether the pool has one worker or
// eight.
func TestRunnerWorkerCountInvariance(t *testing.T) {
	exp, ok := Default.Lookup("fig1")
	if !ok {
		t.Fatal("fig1 not registered")
	}
	serial := Runner{Workers: 1}
	parallel := Runner{Workers: 8}

	a, _, err := serial.Run(quickCfg(), []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := parallel.Run(quickCfg(), []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b[0].Render(), a[0].Render(); got != want {
		t.Errorf("render differs across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", want, got)
	}
	if !reflect.DeepEqual(a[0].Result.Values, b[0].Result.Values) {
		t.Errorf("values differ: %v vs %v", a[0].Result.Values, b[0].Result.Values)
	}
	if string(a[0].Raw) != string(b[0].Raw) {
		t.Errorf("raw payloads differ across worker counts")
	}
}

// TestEngineMatchesSerialCore checks the engine path reproduces the
// serial core.Figure1 path bit for bit.
func TestEngineMatchesSerialCore(t *testing.T) {
	exp, _ := Default.Lookup("fig1")
	r := Runner{Workers: 4}
	out, _, err := r.Run(quickCfg(), []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Figure1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[0].Result.Values, direct.Values) {
		t.Errorf("engine values %v != serial core values %v", out[0].Result.Values, direct.Values)
	}
	if out[0].Result.Figure.Render() != direct.Figure.Render() {
		t.Errorf("engine figure render differs from serial core render")
	}
}

// TestRunnerCacheHitMiss verifies cold-run misses, warm-run hits, zero
// re-execution on a warm cache, and identical outcomes either way.
func TestRunnerCacheHitMiss(t *testing.T) {
	fake := newFake("cachefake", 7)
	cache := NewMemCache()
	r := Runner{Workers: 3, Cache: cache}

	cold, stats, err := r.Run(quickCfg(), []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 7 || stats.Hits != 0 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/7", stats.Hits, stats.Misses)
	}
	if got := fake.runs.Load(); got != 7 {
		t.Errorf("cold run executed %d shards, want 7", got)
	}
	if cache.Len() != 7 {
		t.Errorf("cache holds %d entries, want 7", cache.Len())
	}

	warm, stats, err := r.Run(quickCfg(), []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 7 || stats.Misses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want 7/0", stats.Hits, stats.Misses)
	}
	if got := fake.runs.Load(); got != 7 {
		t.Errorf("warm run re-executed shards: total runs %d, want 7", got)
	}
	if cold[0].Render() != warm[0].Render() {
		t.Errorf("cached outcome differs from computed outcome")
	}

	// A different seed must miss: the key is content-derived.
	other := quickCfg()
	other.Seed = 99
	if _, stats, err = r.Run(other, []Experiment{fake}); err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 7 {
		t.Errorf("different seed hit the cache: hits=%d misses=%d", stats.Hits, stats.Misses)
	}
}

// TestSharedScopeSharesCache verifies that experiments declaring the
// same cache scope (Figures 7 and 8) reuse each other's shards.
func TestSharedScopeSharesCache(t *testing.T) {
	fig7, _ := Default.Lookup("fig7")
	fig8, _ := Default.Lookup("fig8")
	if fig7.Scope() != fig8.Scope() {
		t.Fatalf("fig7 scope %q != fig8 scope %q", fig7.Scope(), fig8.Scope())
	}
	cfg := quickCfg()
	for s := 0; s < fig7.Shards(cfg); s++ {
		if CacheKey(fig7.Scope(), cfg, s) != CacheKey(fig8.Scope(), cfg, s) {
			t.Errorf("shard %d keys differ between fig7 and fig8", s)
		}
	}
}

// TestRunnerErrorPropagation verifies a failing shard aborts the run
// with a stable error, regardless of pool scheduling.
func TestRunnerErrorPropagation(t *testing.T) {
	bad := newFake("bad", 5)
	bad.fail = 2
	r := Runner{Workers: 4}
	_, _, err := r.Run(quickCfg(), []Experiment{bad})
	if err == nil {
		t.Fatal("failing shard did not surface an error")
	}
	if want := "engine: bad shard 2: shard 2 exploded"; err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}

// TestFileCacheRoundTrip exercises the on-disk cache.
func TestFileCacheRoundTrip(t *testing.T) {
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("fig1", quickCfg(), 0)
	if _, ok := fc.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	fc.Put(key, []byte(`{"native":[1.5]}`))
	b, ok := fc.Get(key)
	if !ok || string(b) != `{"native":[1.5]}` {
		t.Fatalf("round trip failed: ok=%v payload=%s", ok, b)
	}
	if _, ok := fc.Get(CacheKey("fig1", quickCfg(), 1)); ok {
		t.Fatal("different shard index hit the same entry")
	}
}

// TestRegistry exercises registration order, case-insensitive lookup,
// duplicate rejection, and selection.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(newFake("Alpha", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(newFake("beta", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(newFake("ALPHA", 1)); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"Alpha", "beta"}) {
		t.Errorf("names %v not in registration order", got)
	}
	if _, err := r.Select("alpha,nosuch"); err == nil {
		t.Error("unknown selection accepted")
	}
	sel, err := r.Select("beta")
	if err != nil || len(sel) != 1 || sel[0].Name() != "beta" {
		t.Errorf("Select(beta) = %v, %v", sel, err)
	}
	all, err := r.Select("all")
	if err != nil || len(all) != 2 {
		t.Errorf("Select(all) = %d experiments, %v", len(all), err)
	}
}

// TestDefaultCatalog pins the built-in catalog: every figure with paper
// targets is registered, and names resolve the way the CLI advertises.
func TestDefaultCatalog(t *testing.T) {
	for id := range core.PaperTargets {
		e, ok := Default.Lookup(id)
		if !ok {
			t.Errorf("paper target %q has no registered experiment", id)
			continue
		}
		if e.Kind() != KindFigure {
			t.Errorf("%s registered as %s, want figure", id, e.Kind())
		}
	}
	if got := len(Default.ByKind(KindFigure)); got != 9 {
		t.Errorf("%d figures registered, want 9", got)
	}
	for _, name := range []string{"timesync", "migration", "memory", "udploss", "confinement", "multivm", "natqueue", "buscontention", "serviceduty"} {
		if _, ok := Default.Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
}
