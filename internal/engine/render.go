package engine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vmdg/internal/core"
)

// Emit writes outcomes to w the way the CLIs present them: each
// experiment's rendered ASCII report, or — when csv is set — a
// "# name" header followed by its CSV for experiments with tabular
// data.
func Emit(w io.Writer, outcomes []*Outcome, csv bool) {
	for _, o := range outcomes {
		if csv {
			if c := o.CSV(); c != "" {
				fmt.Fprintf(w, "# %s\n%s", o.Name, c)
			}
			continue
		}
		fmt.Fprintln(w, o.Render())
	}
}

// bandLabels orders a figure's paper-target labels deterministically:
// figure-row order first (the paper's presentation order), then any
// headline-only labels (Figures 5/6/FP key their bands by environment
// while the rows are environment/priority cells) sorted by name.
func bandLabels(res *core.Result, bands map[string]core.Band) []string {
	var labels []string
	seen := map[string]bool{}
	for _, row := range res.Figure.Rows {
		if _, ok := bands[row.Label]; ok && !seen[row.Label] {
			labels = append(labels, row.Label)
			seen[row.Label] = true
		}
	}
	var rest []string
	for label := range bands {
		if !seen[label] {
			rest = append(rest, label)
		}
	}
	sort.Strings(rest)
	return append(labels, rest...)
}

// PaperComparison renders the measured-vs-published check for a figure,
// or "" when the paper publishes no targets for it. Output order is
// deterministic (see bandLabels), so renders are bit-identical across
// runs and worker counts.
func PaperComparison(res *core.Result) string {
	bands, ok := core.PaperTargets[res.ID]
	if !ok {
		return ""
	}
	var b strings.Builder
	b.WriteString("paper comparison:\n")
	for _, label := range bandLabels(res, bands) {
		band := bands[label]
		got := res.Values[label]
		verdict := "OK"
		if !band.In(got) {
			verdict = "OUTSIDE BAND"
		}
		fmt.Fprintf(&b, "  %-16s paper %-8.4g measured %-8.4g band [%.4g, %.4g]  %s\n",
			label, band.Paper, got, band.Lo, band.Hi, verdict)
	}
	return b.String()
}

// ExperimentsMarkdown renders the machine-checkable paper-vs-measured
// artifact (EXPERIMENTS.md): one deviation table per figure with
// published targets, built from the core.PaperTargets constants, plus
// the text reports of the remaining experiments.
func ExperimentsMarkdown(cfg core.Config, outcomes []*Outcome) string {
	cfg = normalize(cfg)
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs measured\n\n")
	fmt.Fprintf(&b, "Regenerated with `dgrid report` at seed %d, %d repetitions, %s workload sizes.\n",
		cfg.Seed, cfg.Reps, map[bool]string{false: "full", true: "trimmed (quick)"}[cfg.Quick])
	b.WriteString("Every run is deterministic per seed; the acceptance bands come from\n")
	b.WriteString("`internal/core/paper.go` and bracket the values published in the paper\n")
	b.WriteString("(§4.1, §4.2), read from the text where quoted and off the plots otherwise.\n\n")

	inBand, total := 0, 0
	var figures, fleets, others []*Outcome
	for _, o := range outcomes {
		switch {
		case o.Result != nil && core.PaperTargets[o.Result.ID] != nil:
			figures = append(figures, o)
		case o.Kind == KindFleet:
			fleets = append(fleets, o)
		default:
			others = append(others, o)
		}
	}

	for _, o := range figures {
		res := o.Result
		bands := core.PaperTargets[res.ID]
		fmt.Fprintf(&b, "## %s\n\n", res.Figure.Title)
		fmt.Fprintf(&b, "| label | paper | measured | deviation | accept band | status |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
		for _, label := range bandLabels(res, bands) {
			band := bands[label]
			got := res.Values[label]
			status := "ok"
			total++
			if band.In(got) {
				inBand++
			} else {
				status = "**outside**"
			}
			dev := "—"
			if band.Paper != 0 {
				dev = fmt.Sprintf("%+.1f%%", 100*(got-band.Paper)/band.Paper)
			}
			fmt.Fprintf(&b, "| %s | %.4g | %.4g | %s | [%.4g, %.4g] | %s |\n",
				label, band.Paper, got, dev, band.Lo, band.Hi, status)
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "**Summary: %d of %d paper targets reproduced within their acceptance bands.**\n\n", inBand, total)

	if len(others) > 0 {
		b.WriteString("## Ablations, sensitivities, and extensions\n\n")
		for _, o := range others {
			text := o.Render()
			if text == "" {
				continue
			}
			fmt.Fprintf(&b, "```\n%s```\n\n", text)
		}
	}

	if len(fleets) > 0 {
		b.WriteString("## Fleet scenarios\n\n")
		b.WriteString("Churn-aware volunteer fleets (internal/grid) at population scale,\n")
		b.WriteString("calibrated against the detailed stack; see ARCHITECTURE.md.\n\n")
		for _, o := range fleets {
			text := o.Render()
			if text == "" {
				continue
			}
			fmt.Fprintf(&b, "```\n%s```\n\n", text)
		}
	}
	return b.String()
}
