package engine

import (
	"sync"
	"testing"

	"vmdg/internal/grid"
)

// arrivalGate is the deterministic interleaving pin for the tests
// below: wait(key) blocks until n callers have arrived at key, then
// releases them all. Hooked into the runner's taskGate it guarantees
// every participating run reaches a task before any of them can lead
// its flight — the overlap the single-flight group exists for, forced
// on every key instead of left to scheduling luck.
type arrivalGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived map[string]int
}

func newArrivalGate(n int) *arrivalGate {
	g := &arrivalGate{n: n, arrived: map[string]int{}}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *arrivalGate) wait(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.arrived[key]++
	if g.arrived[key] >= g.n {
		g.cond.Broadcast()
		return
	}
	for g.arrived[key] < g.n {
		g.cond.Wait()
	}
}

// TestConcurrentIdenticalRunsSingleFlight is the PR's acceptance test:
// eight identical cold sweeps through one shared cache and flight
// group cost one sweep's simulation work. The gates pin the worst-case
// interleaving — all eight runs reach every task before any leads — so
// the counts below are exact invariants, not timing-dependent bounds:
// each of the 12 keys is computed exactly once (one leader), and the
// other seven runs each take it as a flight hit.
func TestConcurrentIdenticalRunsSingleFlight(t *testing.T) {
	const (
		runs   = 8
		shards = 12
	)
	fake := newFake("flightfake", shards)
	cache := NewMemCache()
	flights := NewFlightGroup()
	gate := newArrivalGate(runs)
	cfg := quickCfg()

	// Serial reference for byte-identity, on its own cache.
	serial := Runner{Workers: 1, Cache: NewMemCache()}
	ref, _, err := serial.Run(cfg, []Experiment{fake})
	if err != nil {
		t.Fatal(err)
	}
	refRuns := fake.runs.Load()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		stats    []Stats
		failures []error
		renders  []string
	)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := Runner{
				Workers:  2,
				Cache:    cache,
				Flights:  flights,
				taskGate: gate.wait,
				leadGate: func(key string) { awaitWaiters(flights, key, runs-1) },
			}
			out, st, err := r.Run(cfg, []Experiment{fake})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures = append(failures, err)
				return
			}
			stats = append(stats, st)
			renders = append(renders, out[0].Render())
		}()
	}
	wg.Wait()
	for _, err := range failures {
		t.Fatal(err)
	}

	var hits, misses, flightHits, flightShared int
	for _, st := range stats {
		hits += st.Hits
		misses += st.Misses
		flightHits += st.FlightHits
		flightShared += st.FlightShared
	}
	// Exactly one compute per unique key across the whole process.
	if misses != shards {
		t.Errorf("Σmisses = %d across %d runs, want %d (one compute per key)", misses, runs, shards)
	}
	if got := fake.runs.Load() - refRuns; got != shards {
		t.Errorf("RunShard executed %d times across %d concurrent runs, want %d", got, runs, shards)
	}
	// Every other run took every key from the leader's flight: the
	// issue's bar is ≥ (runs-1) × shards; the gates make it exact.
	if want := (runs - 1) * shards; flightHits != want {
		t.Errorf("ΣFlightHits = %d, want %d", flightHits, want)
	}
	if want := (runs - 1) * shards; flightShared != want {
		t.Errorf("ΣFlightShared = %d, want %d", flightShared, want)
	}
	if hits+misses != runs*shards {
		t.Errorf("hits(%d)+misses(%d) != %d slots", hits, misses, runs*shards)
	}
	for i, r := range renders {
		if r != ref[0].Render() {
			t.Fatalf("concurrent run %d rendered differently from the serial reference", i)
		}
	}
}

// overlapSpecs builds the two sweeps the shared-pool test overlaps:
// both sweep machines {300, 700} (1 and 2 population shards), A over
// policies {fifo, deadline}, B over {deadline, replication}. The
// deadline points are the shared work: 3 cache keys in both key sets.
func overlapSpecs() (a, b grid.Spec) {
	base := grid.Spec{
		Version:  1,
		Envs:     []string{"vmplayer"},
		Machines: []int{300, 700},
		Minutes:  []int{60},
	}
	a, b = base, base
	a.Name, a.Policy = "sweepA", []string{"fifo", "deadline"}
	b.Name, b.Policy = "sweepB", []string{"deadline", "replication"}
	return a, b
}

// sweepKeys resolves the exact cache keys a sweep's tasks will use, in
// task order — the in-package ground truth the test pins its shared-key
// expectations to.
func sweepKeys(t *testing.T, exp Experiment, keys map[string]int) []string {
	t.Helper()
	cfg := normalize(quickCfg())
	n := exp.Shards(cfg)
	scopes, locals := shardScopes(exp, cfg, n)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = CacheKey(scopes[i], cfg, locals[i])
		keys[out[i]]++
	}
	return out
}

// TestConcurrentOverlappingSweepsSharedPool drives two different but
// overlapping sweeps through one shared Pool under the race detector:
// the runs split the pool's workers, the three shared shards are
// computed once and flight-delivered to the other run, the six
// non-shared shards are ordinary cold misses, and both runs' table,
// CSV, and JSON artifacts are byte-identical to serial runs of the
// same specs.
func TestConcurrentOverlappingSweepsSharedPool(t *testing.T) {
	specA, specB := overlapSpecs()
	expA, err := NewSweep("sweepA", "overlap A", specA)
	if err != nil {
		t.Fatal(err)
	}
	expB, err := NewSweep("sweepB", "overlap B", specB)
	if err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	sweepKeys(t, expA, counts)
	sweepKeys(t, expB, counts)
	shared := map[string]bool{}
	for k, n := range counts {
		if n > 1 {
			shared[k] = true
		}
	}
	if len(shared) != 3 || len(counts) != 9 {
		t.Fatalf("test geometry drifted: %d shared keys over %d unique, want 3 over 9", len(shared), len(counts))
	}

	pool := NewPool(8)
	defer pool.Close()
	cache := NewMemCache()
	gate := newArrivalGate(2)
	cfg := quickCfg()

	run := func(exp Experiment) (*Outcome, Stats, error) {
		r := Runner{
			Pool:  pool,
			Cache: cache,
			taskGate: func(key string) {
				if shared[key] {
					gate.wait(key)
				}
			},
			leadGate: func(key string) {
				if shared[key] {
					awaitWaiters(pool.Flights(), key, 1)
				}
			},
		}
		out, st, err := r.Run(cfg, []Experiment{exp})
		if err != nil {
			return nil, st, err
		}
		return out[0], st, nil
	}

	var (
		wg         sync.WaitGroup
		outA, outB *Outcome
		stA, stB   Stats
		errA, errB error
	)
	wg.Add(2)
	go func() { defer wg.Done(); outA, stA, errA = run(expA) }()
	go func() { defer wg.Done(); outB, stB, errB = run(expB) }()
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
	if errB != nil {
		t.Fatal(errB)
	}

	// Work accounting: the union computes once, the overlap flies once.
	if got := stA.Misses + stB.Misses; got != len(counts) {
		t.Errorf("Σmisses = %d, want %d (the unique-key union)", got, len(counts))
	}
	if got := stA.FlightHits + stB.FlightHits; got != len(shared) {
		t.Errorf("ΣFlightHits = %d, want %d (one per shared shard)", got, len(shared))
	}
	if got := stA.FlightShared + stB.FlightShared; got != len(shared) {
		t.Errorf("ΣFlightShared = %d, want %d", got, len(shared))
	}

	// Byte-identity against serial runs on fresh caches, no pool.
	for _, c := range []struct {
		name string
		exp  Experiment
		got  *Outcome
	}{{"sweepA", expA, outA}, {"sweepB", expB, outB}} {
		serial := Runner{Workers: 1, Cache: NewMemCache()}
		ref, _, err := serial.Run(cfg, []Experiment{c.exp})
		if err != nil {
			t.Fatal(err)
		}
		if c.got.Render() != ref[0].Render() {
			t.Errorf("%s: concurrent table differs from serial", c.name)
		}
		if c.got.CSV() != ref[0].CSV() {
			t.Errorf("%s: concurrent CSV differs from serial", c.name)
		}
		if string(c.got.Raw) != string(ref[0].Raw) {
			t.Errorf("%s: concurrent JSON artifact differs from serial", c.name)
		}
	}
}
