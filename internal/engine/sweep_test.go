package engine

import (
	"bytes"
	"strings"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// testSweepSpec is a 2×2 (policy × machines) grid, quick and small so
// the whole sweep is a handful of one-shard points.
func testSweepSpec() grid.Spec {
	return grid.Spec{
		Version:  grid.SpecVersion,
		Quick:    true,
		Envs:     []string{"vmplayer"},
		Machines: []int{60, 90},
		Minutes:  []int{30},
		Churn:    []bool{true},
		Policy:   []string{"fifo", "deadline"},
	}
}

// TestSweepWorkerCountInvariance: the merged sweep — table, CSV, and
// JSON — must be byte-identical for any worker count.
func TestSweepWorkerCountInvariance(t *testing.T) {
	cfg := core.Config{Seed: 1, Quick: true}
	var outs []*Outcome
	for _, workers := range []int{1, 8} {
		exp, err := NewSweep("sweep", "t", testSweepSpec())
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Workers: workers, Cache: NewMemCache()}
		got, stats, err := r.Run(cfg, []Experiment{exp})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shards != 4 {
			t.Fatalf("2×2 one-shard sweep ran %d shards", stats.Shards)
		}
		outs = append(outs, got[0])
	}
	if outs[0].CSV() != outs[1].CSV() || outs[0].CSV() == "" {
		t.Fatalf("sweep CSV differs across worker counts:\n%s\nvs\n%s", outs[0].CSV(), outs[1].CSV())
	}
	if outs[0].Render() != outs[1].Render() {
		t.Fatal("sweep table differs across worker counts")
	}
	if !bytes.Equal(outs[0].Raw, outs[1].Raw) {
		t.Fatal("sweep JSON differs across worker counts")
	}
	// The CSV is keyed by the swept axes, not a free-form variant label.
	if !strings.HasPrefix(outs[0].CSV(), "machines,policy,env,") {
		t.Fatalf("sweep CSV not keyed by axis columns:\n%s", outs[0].CSV())
	}
	for _, cell := range []string{"60,fifo,", "90,deadline,"} {
		if !strings.Contains(outs[0].CSV(), cell) {
			t.Fatalf("sweep CSV missing axis-keyed row %q:\n%s", cell, outs[0].CSV())
		}
	}
}

// TestSweepWidenedAxisHitsCache: re-running a sweep with one axis
// widened must replay every previously-run point from the cache and
// simulate only the new points. The on-disk entry count (via
// FileCache.Stats) pins that no old point was re-keyed.
func TestSweepWidenedAxisHitsCache(t *testing.T) {
	cfg := core.Config{Seed: 1, Quick: true}
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	exp, err := NewSweep("sweep", "t", testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 4, Cache: fc}
	_, stats, err := r.Run(cfg, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 4 || stats.Hits != 0 {
		t.Fatalf("cold 2×2 sweep: %d misses, %d hits", stats.Misses, stats.Hits)
	}
	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 4 {
		t.Fatalf("cold sweep stored %d cache entries, want 4", st.Entries)
	}

	// Widen the policy axis 2 → 3: 2 new points interleave into the
	// cartesian order, shifting every flat shard index after them.
	wide := testSweepSpec()
	wide.Policy = append(wide.Policy, "replication")
	wexp, err := NewSweep("sweep", "t", wide)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = r.Run(cfg, []Experiment{wexp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 4 {
		t.Fatalf("widened sweep replayed %d of 4 old points from cache", stats.Hits)
	}
	if stats.Misses != 2 {
		t.Fatalf("widened sweep computed %d points, want only the 2 new ones", stats.Misses)
	}
	st, err = fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 6 {
		t.Fatalf("widened sweep grew the cache to %d entries, want 6 (4 reused + 2 new)", st.Entries)
	}
}

// TestSweepSharesCacheWithFleet: a sweep point and an ad-hoc fleet run
// of the same scenario are the same cache scope.
func TestSweepSharesCacheWithFleet(t *testing.T) {
	cfg := core.Config{Seed: 1, Quick: true}
	cache := NewMemCache()
	spec := testSweepSpec()

	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: cache}
	fleet := FleetScenario("fleet", "t", pts[0].Scenario)
	if _, _, err := r.Run(cfg, []Experiment{fleet}); err != nil {
		t.Fatal(err)
	}

	exp, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := r.Run(cfg, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 1 {
		t.Fatalf("sweep re-simulated a scenario the fleet command already cached (%d hits)", stats.Hits)
	}
}

// TestSweepSingleNoAxes: a spec with nothing swept still runs — the
// degenerate one-point sweep — and degrades to plain fleet CSV.
func TestSweepSingleNoAxes(t *testing.T) {
	spec := testSweepSpec()
	spec.Machines = spec.Machines[:1]
	spec.Policy = spec.Policy[:1]
	exp, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: NewMemCache()}
	outs, _, err := r.Run(core.Config{Seed: 1, Quick: true}, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(outs[0].CSV(), grid.CSVHeader()) {
		t.Fatalf("single-point sweep CSV not in fleet form:\n%s", outs[0].CSV())
	}
	if !strings.Contains(outs[0].Render(), "1 points (no swept axes)") {
		t.Fatalf("single-point sweep header wrong:\n%s", outs[0].Render())
	}
}

// TestSweepDuplicatePoints: a duplicated axis value collapses the two
// identical points into one task (equal cache keys), whose payload is
// delivered out of flat-shard order — the fold's ordering buffer must
// absorb it, and the duplicate rows must be identical.
func TestSweepDuplicatePoints(t *testing.T) {
	spec := testSweepSpec()
	spec.Policy = []string{"fifo", "deadline", "fifo"}
	exp, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		r := &Runner{Workers: workers, Cache: NewMemCache()}
		outs, stats, err := r.Run(core.Config{Seed: 1, Quick: true}, []Experiment{exp})
		if err != nil {
			t.Fatalf("workers=%d: duplicate-point sweep failed: %v", workers, err)
		}
		// 2 machines × 3 policies = 6 slots, of which 2 are duplicates
		// supplied without compute.
		if stats.Shards != 6 || stats.Misses != 4 || stats.Hits != 2 {
			t.Fatalf("workers=%d: stats %+v, want 6 slots = 4 computed + 2 shared", workers, stats)
		}
		csv := outs[0].CSV()
		for _, machines := range []string{"60", "90"} {
			rows := strings.Split(csv, "\n")
			var fifo []string
			for _, row := range rows {
				if strings.HasPrefix(row, machines+",fifo,") {
					fifo = append(fifo, row)
				}
			}
			if len(fifo) != 2 || fifo[0] != fifo[1] {
				t.Fatalf("workers=%d: duplicate fifo points differ for machines=%s:\n%v", workers, machines, fifo)
			}
		}
	}
}

// TestFolderSharesShardsWithEarlierExperiment: a fleet experiment
// running alongside a sweep that contains the same scenario shares its
// tasks; the sweep's fold sees those shards out of order and must
// still merge correctly.
func TestFolderSharesShardsWithEarlierExperiment(t *testing.T) {
	spec := testSweepSpec()
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	// The fleet duplicates the sweep's LAST point, so the shared task
	// is created first and the sweep's earlier shards land later.
	fleet := FleetScenario("fleet", "t", pts[len(pts)-1].Scenario)
	sweep, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{Workers: 4, Cache: NewMemCache()}
	want, _, err := (&Runner{Workers: 1, Cache: NewMemCache()}).Run(core.Config{Seed: 1, Quick: true}, []Experiment{solo})
	if err != nil {
		t.Fatal(err)
	}
	outs, stats, err := r.Run(core.Config{Seed: 1, Quick: true}, []Experiment{fleet, sweep})
	if err != nil {
		t.Fatalf("shared-shard run failed: %v", err)
	}
	if stats.Misses != 4 || stats.Hits != 1 {
		t.Fatalf("stats %+v, want 4 computed + 1 shared slot", stats)
	}
	if outs[1].CSV() != want[0].CSV() {
		t.Fatal("sharing shards with a fleet changed the merged sweep")
	}
}

// TestSweepNonePointSharesAcrossBandwidth: bandwidth is inert when
// migration is off, so the none points of a bandwidth sweep collapse
// to one cache scope — the second is supplied without compute.
func TestSweepNonePointSharesAcrossBandwidth(t *testing.T) {
	spec := testSweepSpec()
	spec.Machines = spec.Machines[:1]
	spec.Policy = spec.Policy[:1]
	spec.Migration = []string{"none"}
	spec.Bandwidth = []float64{100, 1000}
	exp, err := NewSweep("sweep", "t", spec)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: NewMemCache()}
	_, stats, err := r.Run(core.Config{Seed: 1, Quick: true}, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 || stats.Misses != 1 || stats.Hits != 1 {
		t.Fatalf("stats %+v, want the none point simulated once and shared", stats)
	}
}

// TestNewSweepValidates: NewSweep rejects invalid specs up front.
func TestNewSweepValidates(t *testing.T) {
	spec := testSweepSpec()
	spec.Policy = []string{"fifo", "lifo"}
	if _, err := NewSweep("sweep", "t", spec); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
