package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// This file adapts internal/grid fleet scenarios to the Experiment
// interface, so fleets inherit the worker pool and the content-keyed
// shard cache, and registers the built-in fleet catalog.

// fleetVariant is one scenario inside a fleet experiment, with the
// label the merged report uses for it.
type fleetVariant struct {
	label string
	scn   grid.Scenario
}

// fleetExperiment runs one or more fleet scenario variants as a single
// experiment. Shard indices enumerate the variants' shards in variant
// order, so the engine can schedule every (variant, shard) cell onto
// the pool; the merge regroups them.
//
// The variant list is fixed: the config contributes only Seed and
// Quick, which CacheKey already carries. Scope must describe exactly
// what RunShard executes for every config — a config-dependent variant
// list would let two experiments share a scope while simulating
// different populations, silently cross-feeding cached shards.
type fleetExperiment struct {
	name, title string
	variants    []fleetVariant
}

func (f fleetExperiment) Name() string  { return f.name }
func (f fleetExperiment) Title() string { return f.title }
func (f fleetExperiment) Kind() Kind    { return KindFleet }

// resolve applies cfg to the variant list.
func (f fleetExperiment) resolve(cfg core.Config) []fleetVariant {
	vs := make([]fleetVariant, len(f.variants))
	copy(vs, f.variants)
	for i := range vs {
		vs[i].scn.Seed = cfg.Seed
		vs[i].scn.Quick = cfg.Quick
		vs[i].scn = vs[i].scn.Normalize()
	}
	return vs
}

// Scope keys the cache by every scenario parameter (Seed and Quick are
// contributed by CacheKey itself). It is descriptive only: the runner
// keys fleet shards per variant through ShardScope, so variants keep
// their cached shards when the list around them changes.
func (f fleetExperiment) Scope() string {
	var parts []string
	for _, v := range f.variants {
		parts = append(parts, "{"+v.scn.Normalize().Key()+"}")
	}
	return "fleet|" + strings.Join(parts, ";")
}

// ShardScopes keys each shard by its own variant's scenario (plus the
// variant-local shard index): the scope of a variant is independent of
// its position and of the labels or siblings around it. A sweep point,
// a registered multi-variant experiment, and an ad-hoc `dgrid fleet`
// run of the same scenario therefore all share cached shards.
func (f fleetExperiment) ShardScopes(cfg core.Config) (scopes []string, locals []int) {
	for _, v := range f.resolve(cfg) {
		scope := "fleet|{" + v.scn.Key() + "}"
		n := v.scn.Shards()
		for local := 0; local < n; local++ {
			scopes = append(scopes, scope)
			locals = append(locals, local)
		}
	}
	return scopes, locals
}

func (f fleetExperiment) Shards(cfg core.Config) int {
	n := 0
	for _, v := range f.resolve(cfg) {
		n += v.scn.Shards()
	}
	return n
}

// locate maps a flat shard index to its (variant, local shard) cell.
func (f fleetExperiment) locate(vs []fleetVariant, shard int) (int, int, error) {
	for i, v := range vs {
		if shard < v.scn.Shards() {
			return i, shard, nil
		}
		shard -= v.scn.Shards()
	}
	return 0, 0, fmt.Errorf("shard index %d out of range", shard)
}

func (f fleetExperiment) RunShard(cfg core.Config, shard int) ([]byte, error) {
	vs := f.resolve(cfg)
	vi, local, err := f.locate(vs, shard)
	if err != nil {
		return nil, err
	}
	res, err := grid.RunShard(vs[vi].scn, local)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// fleetPayload is the merged JSON artifact: one fleet result per
// variant.
type fleetPayload struct {
	Name     string
	Variants []fleetVariantResult
}

type fleetVariantResult struct {
	Label string
	Fleet *grid.FleetResult
}

// Fold returns the streaming accumulator the runner uses in place of
// Merge: one grid.Merger per variant, fed shard results in flat shard
// order and released immediately, so a thousand-shard fleet holds one
// decoded shard at a time instead of all of them.
func (f fleetExperiment) Fold(cfg core.Config) (Fold, error) {
	return &fleetFold{exp: f, variantFold: newVariantFold(f.resolve(cfg))}, nil
}

// variantFold streams flat shard indices onto per-variant mergers —
// the absorb half shared by fleet experiments and sweeps (whose shard
// spaces both concatenate independent scenarios).
type variantFold struct {
	vs      []fleetVariant
	mergers []*grid.Merger
	next    int // next expected flat shard
	vi      int // variant currently absorbing
	local   int // next local shard within vs[vi]
}

func newVariantFold(vs []fleetVariant) variantFold {
	fd := variantFold{vs: vs, mergers: make([]*grid.Merger, len(vs))}
	for i, v := range vs {
		fd.mergers[i] = grid.NewMerger(v.scn)
	}
	return fd
}

func (fd *variantFold) Absorb(shard int, payload []byte) error {
	if shard != fd.next {
		return fmt.Errorf("fleet shard %d absorbed out of order (want %d)", shard, fd.next)
	}
	fd.next++
	for fd.vi < len(fd.vs) && fd.local >= fd.vs[fd.vi].scn.Shards() {
		fd.vi++
		fd.local = 0
	}
	if fd.vi >= len(fd.vs) {
		total := 0
		for _, v := range fd.vs {
			total += v.scn.Shards()
		}
		return fmt.Errorf("fleet shard %d beyond the variants' %d shards", shard, total)
	}
	sr := &grid.ShardResult{}
	if err := json.Unmarshal(payload, sr); err != nil {
		return fmt.Errorf("fleet shard %d payload: %w", shard, err)
	}
	if err := fd.mergers[fd.vi].Absorb(fd.local, sr); err != nil {
		return err
	}
	fd.local++
	return nil
}

// results completes every merger and returns one fleet result per
// variant.
func (fd *variantFold) results() ([]*grid.FleetResult, error) {
	frs := make([]*grid.FleetResult, len(fd.vs))
	for i := range fd.vs {
		fr, err := fd.mergers[i].Finish()
		if err != nil {
			return nil, err
		}
		frs[i] = fr
	}
	return frs, nil
}

// fleetFold renders the absorbed variants as the fleet report: one
// table per variant.
type fleetFold struct {
	exp fleetExperiment
	variantFold
}

func (fd *fleetFold) Finish() (*Outcome, error) {
	frs, err := fd.results()
	if err != nil {
		return nil, err
	}
	payload := fleetPayload{Name: fd.exp.name}
	var text, csv strings.Builder
	// One variant that migrates widens the CSV for every row — columns
	// must agree across the artifact — while a migration-free artifact
	// keeps its pre-migration byte-exact form.
	mig := anyMigrates(fd.vs)
	if mig {
		csv.WriteString(grid.MigCSVHeader())
	} else {
		csv.WriteString(grid.CSVHeader())
	}
	for i, v := range fd.vs {
		fr := frs[i]
		payload.Variants = append(payload.Variants, fleetVariantResult{Label: v.label, Fleet: fr})
		if text.Len() > 0 {
			text.WriteByte('\n')
		}
		if v.label != "" {
			fmt.Fprintf(&text, "— %s —\n", v.label)
		}
		text.WriteString(fr.Render())
		if mig {
			csv.WriteString(fr.MigCSVRows(v.label))
		} else {
			csv.WriteString(fr.CSVRows(v.label))
		}
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return &Outcome{Name: fd.exp.name, Kind: KindFleet, Text: text.String(), CSVText: csv.String(), Raw: raw}, nil
}

// Merge is the batch form, kept for the Experiment contract (and any
// caller outside the runner): it simply replays the shards through the
// same fold, so the two paths cannot drift.
func (f fleetExperiment) Merge(cfg core.Config, shards [][]byte) (*Outcome, error) {
	fold, err := f.Fold(cfg)
	if err != nil {
		return nil, err
	}
	for i, b := range shards {
		if err := fold.Absorb(i, b); err != nil {
			return nil, err
		}
	}
	return fold.Finish()
}

// anyMigrates reports whether any variant's scenario migrates
// checkpoints (variants are normalized at construction/resolve).
func anyMigrates(vs []fleetVariant) bool {
	for _, v := range vs {
		if v.scn.Migrates() {
			return true
		}
	}
	return false
}

// FleetScenario wraps a single ad-hoc scenario (the `dgrid fleet`
// command line) as an experiment. Equal scenarios produce equal cache
// scopes, so a CLI run and a registered scenario with the same
// parameters share shard results.
func FleetScenario(name, title string, scn grid.Scenario) Experiment {
	return fleetExperiment{
		name:     name,
		title:    title,
		variants: []fleetVariant{{scn: scn.Normalize()}},
	}
}

// fleetMachines is the registered scenarios' population: big enough to
// exercise sharding, small enough that `dgrid run all` stays
// interactive. It must not depend on the config — see fleetExperiment.
// Quick runs trim only the calibration windows.
const fleetMachines = 2048

func init() {
	Default.mustRegister(fleetExperiment{
		name:  "fleetchurn",
		title: "Fleet F1 — volunteer fleet under availability churn, per environment",
		variants: []fleetVariant{{scn: grid.Scenario{
			Machines: fleetMachines, Minutes: 120,
			Churn: true, Policy: "deadline", FaultyFrac: 0.02,
		}}},
	})
	policyVariants := func() []fleetVariant {
		var vs []fleetVariant
		for _, pol := range grid.Policies() {
			vs = append(vs, fleetVariant{
				label: "policy " + pol,
				scn: grid.Scenario{
					Machines: fleetMachines, Minutes: 120,
					Churn: true, Policy: pol, FaultyFrac: 0.02,
					Envs: []string{"vmplayer"},
				},
			})
		}
		return vs
	}
	Default.mustRegister(fleetExperiment{
		name:     "fleetpolicy",
		title:    "Fleet F2 — scheduling policies under churn (fifo vs deadline vs replication)",
		variants: policyVariants(),
	})
	migrationVariants := func() []fleetVariant {
		var vs []fleetVariant
		for _, mig := range grid.MigrationPolicies() {
			vs = append(vs, fleetVariant{
				label: "migration " + mig,
				scn: grid.Scenario{
					Machines: fleetMachines, Minutes: 120,
					Churn: true, Policy: "fifo", FaultyFrac: 0.02,
					Migration: mig,
					Envs:      []string{"vmplayer"},
				},
			})
		}
		return vs
	}
	Default.mustRegister(fleetExperiment{
		name:     "fleetmigration",
		title:    "Fleet F3 — checkpoint migration over the modeled network (none vs on-departure vs eager)",
		variants: migrationVariants(),
	})
}
