package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRoundRobinFairness pins the scheduling contract: with one
// worker and three runs queued, execution interleaves the runs — no run
// is served twice before every other pending run is served once.
func TestPoolRoundRobinFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	var (
		mu      sync.Mutex
		order   []string
		wg      sync.WaitGroup
		started = make(chan struct{})
		release = make(chan struct{})
	)
	record := func(id string) func() {
		return func() {
			defer wg.Done()
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
	}
	a, b, c := p.register(), p.register(), p.register()

	// The first unit parks the pool's only worker until every other
	// unit is queued, so the pop order below is deterministic.
	wg.Add(1)
	a.submit(func() {
		defer wg.Done()
		mu.Lock()
		order = append(order, "a0")
		mu.Unlock()
		close(started)
		<-release
	})
	<-started
	for _, sub := range []struct {
		r   *poolRun
		ids []string
	}{{a, []string{"a1", "a2"}}, {b, []string{"b0", "b1", "b2"}}, {c, []string{"c0", "c1", "c2"}}} {
		for _, id := range sub.ids {
			wg.Add(1)
			sub.r.submit(record(id))
		}
	}
	close(release)
	wg.Wait()

	want := []string{"a0", "a1", "b0", "c0", "a2", "b1", "c1", "b2", "c2"}
	if len(order) != len(want) {
		t.Fatalf("executed %d units, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestPoolWorkerCap verifies the pool never runs more units at once
// than its worker bound, however many are queued.
func TestPoolWorkerCap(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	r := p.register()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		r.submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				m := peak.Load()
				if c <= m || peak.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("pool ran %d units concurrently, bound is 2", got)
	}
	if got := peak.Load(); got < 1 {
		t.Errorf("pool never ran a unit (peak %d)", got)
	}
}

// TestDefaultPool pins the process-wide pool: one instance, GOMAXPROCS
// workers, a single shared flight group.
func TestDefaultPool(t *testing.T) {
	p := DefaultPool()
	if p != DefaultPool() {
		t.Error("DefaultPool returned distinct pools")
	}
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default pool has %d workers, want GOMAXPROCS=%d", got, want)
	}
	if p.Flights() == nil || p.Flights() != p.Flights() {
		t.Error("default pool's flight group is not a stable singleton")
	}
}
