package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmdg/internal/core"
)

// Stats summarizes one Runner.Run call.
type Stats struct {
	// Experiments and Shards count the completed work.
	Experiments int
	Shards      int
	// Hits and Misses partition the shards: Misses were computed, Hits
	// were supplied without compute — from the cache, or from a
	// shared-scope sibling computed in the same run.
	Hits, Misses int
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// Runner executes experiments across a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, if non-nil, supplies and stores shard payloads.
	Cache Cache
	// Progress, if non-nil, receives one line per completed shard and
	// per merged experiment. It may be called from multiple goroutines.
	Progress func(format string, args ...any)
}

// slot addresses one (experiment, shard) payload cell.
type slot struct {
	exp   int // index into exps
	shard int
}

// task is one unit in the pool: a unique cache key plus every slot it
// fills. Experiments sharing a scope (Figures 7 and 8) collapse to one
// task per shard, so their common measurements run once even on a cold
// cache.
type task struct {
	key   string
	dests []slot
}

// Run executes every shard of every experiment on the pool, then merges
// in input order. Outcomes are returned in input order; their content is
// independent of the worker count, because merging is a pure function of
// the shard payloads. On shard failure the first error (in task order)
// is returned and remaining work is abandoned.
func (r *Runner) Run(cfg core.Config, exps []Experiment) ([]*Outcome, Stats, error) {
	start := time.Now()
	cfg = normalize(cfg)

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var (
		tasks  []task
		byKey  = map[string]int{} // cache key -> index into tasks
		nSlots int
	)
	payloads := make([][][]byte, len(exps))
	for i, e := range exps {
		n := e.Shards(cfg)
		payloads[i] = make([][]byte, n)
		for s := 0; s < n; s++ {
			nSlots++
			k := CacheKey(e.Scope(), cfg, s)
			ti, ok := byKey[k]
			if !ok {
				ti = len(tasks)
				byKey[k] = ti
				tasks = append(tasks, task{key: k})
			}
			tasks[ti].dests = append(tasks[ti].dests, slot{exp: i, shard: s})
		}
	}

	var (
		hits, misses atomic.Int64
		failed       atomic.Bool
		errMu        sync.Mutex
		firstErr     error
		firstErrAt   = len(tasks)
	)
	fail := func(at int, err error) {
		failed.Store(true)
		errMu.Lock()
		defer errMu.Unlock()
		// Keep the lowest-index error so the reported failure does not
		// depend on pool scheduling.
		if at < firstErrAt {
			firstErrAt, firstErr = at, err
		}
	}

	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range ch {
				if failed.Load() {
					continue
				}
				t := tasks[ti]
				// Any destination computes the same payload; run the
				// first and fan the bytes out to every slot.
				first := t.dests[0]
				e := exps[first.exp]
				fill := func(b []byte) {
					for _, d := range t.dests {
						payloads[d.exp][d.shard] = b
					}
				}
				if r.Cache != nil {
					if b, ok := r.Cache.Get(t.key); ok {
						hits.Add(int64(len(t.dests)))
						fill(b)
						r.progress("cached %s shard %d/%d", e.Name(), first.shard+1, e.Shards(cfg))
						continue
					}
				}
				b, err := e.RunShard(cfg, first.shard)
				if err != nil {
					fail(ti, fmt.Errorf("engine: %s shard %d: %w", e.Name(), first.shard, err))
					continue
				}
				misses.Add(1)
				// The extra destinations were supplied without compute:
				// count them as hits so hits+misses always equals the
				// slot total.
				hits.Add(int64(len(t.dests) - 1))
				if r.Cache != nil {
					r.Cache.Put(t.key, b)
				}
				fill(b)
				r.progress("ran %s shard %d/%d", e.Name(), first.shard+1, e.Shards(cfg))
			}
		}()
	}
	for ti := range tasks {
		ch <- ti
	}
	close(ch)
	wg.Wait()

	stats := Stats{
		Experiments: len(exps),
		Shards:      nSlots,
		Hits:        int(hits.Load()),
		Misses:      int(misses.Load()),
	}
	if failed.Load() {
		stats.Elapsed = time.Since(start)
		return nil, stats, firstErr
	}

	outcomes := make([]*Outcome, len(exps))
	for i, e := range exps {
		o, err := e.Merge(cfg, payloads[i])
		if err != nil {
			stats.Elapsed = time.Since(start)
			return nil, stats, fmt.Errorf("engine: %s merge: %w", e.Name(), err)
		}
		outcomes[i] = o
		r.progress("merged %s", e.Name())
	}
	stats.Elapsed = time.Since(start)
	return outcomes, stats, nil
}

// RunNames resolves names against the Default registry and runs them.
func (r *Runner) RunNames(cfg core.Config, names string) ([]*Outcome, Stats, error) {
	exps, err := Default.Select(names)
	if err != nil {
		return nil, Stats{}, err
	}
	return r.Run(cfg, exps)
}

func (r *Runner) progress(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}
