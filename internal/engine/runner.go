package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmdg/internal/core"
)

// Stats summarizes one Runner.Run call.
type Stats struct {
	// Experiments and Shards count the completed work.
	Experiments int
	Shards      int
	// Hits and Misses partition the shards: Misses were computed, Hits
	// were supplied without compute — from the cache, or from a
	// shared-scope sibling computed in the same run.
	Hits, Misses int
	// Resumed counts the tasks a prior run's fold manifest vouched for:
	// their cached payloads verified against the journaled digests, so
	// the fold replays them without simulation. Zero when the run has
	// no manifest store or no matching manifest.
	Resumed int
	// FlightHits counts the tasks this run received from another run's
	// in-flight computation (single-flight dedup; a subset of Hits).
	// FlightShared counts the deliveries of this run's computed
	// payloads to runs that were waiting on them. Both are zero unless
	// runs share a FlightGroup — directly or through a shared Pool.
	FlightHits, FlightShared int
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// EventKind classifies a progress Event.
type EventKind uint8

const (
	// EventShardComputed: a shard was simulated on the pool.
	EventShardComputed EventKind = iota
	// EventShardCached: a shard was supplied from the cache without
	// compute.
	EventShardCached
	// EventExperimentMerged: an experiment's outcome is complete.
	EventExperimentMerged
)

// Event is one progress notification from a Run call. Shard events
// carry the shard's index within its experiment plus the run-wide task
// counters; merge events carry the experiment counters instead.
type Event struct {
	// Kind says what completed.
	Kind EventKind
	// Experiment names the experiment the event belongs to. A task
	// shared by several experiments (equal cache keys) is attributed
	// to the first.
	Experiment string
	// Shard and Shards locate a shard event within its experiment.
	Shard, Shards int
	// Done and Total count tasks folded so far across the whole run
	// (shard events), or experiments merged so far (merge events).
	Done, Total int
}

// Runner executes experiments across a worker pool.
type Runner struct {
	// Workers is the private pool size; <= 0 means GOMAXPROCS. Ignored
	// for execution when Pool is set (the shared pool's worker bound
	// governs), but still consulted for span/window sizing when
	// positive.
	Workers int
	// Pool, if non-nil, executes this run's spans on a shared worker
	// pool instead of private goroutines: concurrent Run calls on the
	// same Pool split its workers fairly (round-robin over runs)
	// rather than oversubscribing the machine, and share its
	// single-flight group. Fold order, the reorder window, and
	// manifest journaling are per-run and unaffected.
	Pool *Pool
	// Flights, if non-nil, dedupes in-flight shard computations with
	// every other run sharing the same group. Defaults to the Pool's
	// group when a Pool is set; nil without a Pool means no cross-run
	// dedup (a single run never needs it — equal keys already collapse
	// into one task).
	Flights *FlightGroup
	// Cache, if non-nil, supplies and stores shard payloads.
	Cache Cache
	// Manifests, if non-nil (and Cache is set), makes the fold durable:
	// the run journals every folded task to a manifest keyed by the
	// run's canonical task list, and a later identical run resumes at
	// the first task the journal + cache can no longer vouch for,
	// replaying the verified prefix from cache instead of simulating.
	Manifests *ManifestStore
	// OnEvent, if non-nil, observes the run's progress: exactly one
	// shard event per task, then one merge event per experiment. It is
	// always called from the collector goroutine (the caller's), in
	// deterministic task order for every worker count, so
	// implementations need no locking.
	OnEvent func(Event)

	// Test hooks (in-package concurrency tests only). taskGate is
	// called at the start of every task, before the cache lookup;
	// leadGate is called after the run claims a flight's leadership,
	// before it computes. Both receive the task's cache key and let
	// tests pin the interleaving of concurrent runs deterministically.
	taskGate func(key string)
	leadGate func(key string)
}

// ShardScoper lets an experiment give each shard its own cache scope.
// Experiments whose shard space concatenates independent sub-scenarios
// (fleet variants, sweep points) implement it so a sub-scenario's
// cached shards survive re-indexing when the list around them changes:
// widening a sweep axis inserts new points without re-keying — and
// therefore without re-simulating — any point that already ran.
type ShardScoper interface {
	Experiment
	// ShardScopes maps every flat shard index to its cache scope and
	// scope-local shard index, in one call so the runner resolves the
	// experiment's sub-scenarios once, not once per shard. Each scope
	// must describe everything RunShard computes for that shard except
	// the fields the config's provenance already carries.
	ShardScopes(cfg core.Config) (scopes []string, locals []int)
}

// shardScopes resolves the cache identity of an experiment's shards:
// per-shard for ShardScoper experiments, the experiment-wide scope
// with flat indices otherwise.
func shardScopes(e Experiment, cfg core.Config, n int) (scopes []string, locals []int) {
	if ss, ok := e.(ShardScoper); ok {
		return ss.ShardScopes(cfg)
	}
	scopes = make([]string, n)
	locals = make([]int, n)
	scope := e.Scope()
	for s := 0; s < n; s++ {
		scopes[s], locals[s] = scope, s
	}
	return scopes, locals
}

// slot addresses one (experiment, shard) payload cell.
type slot struct {
	exp   int // index into exps
	shard int
}

// task is one unit in the pool: a unique cache key plus every slot it
// fills. Experiments sharing a scope (Figures 7 and 8) collapse to one
// task per shard, so their common measurements run once even on a cold
// cache.
type task struct {
	key   string
	dests []slot
}

// taskResult carries one computed payload from a worker to the
// collector; payload is nil when the task was skipped after a failure,
// and cached marks payloads served without compute.
type taskResult struct {
	ti      int
	payload []byte
	cached  bool
}

// span is one contiguous run of task indices handed to a worker. The
// feeder dispatches spans rather than single tasks so each worker
// settles a run of adjacent shards — adjacent tasks are slices of the
// same scenario — on one warm per-worker arena, and the collector's
// pending buffer fills in contiguous stretches instead of a scatter.
// On a multi-socket host this is also what keeps a shard range's slab
// memory on the NUMA node of the worker that first touched it.
type span struct{ lo, hi int }

// spanChunk sizes the contiguous spans: long enough that a worker
// amortizes its arena warm-up over several shards, short enough that
// every worker gets multiple spans (load balance) even on short runs.
func spanChunk(tasks, workers int) int {
	c := tasks / (4 * workers)
	if c < 1 {
		c = 1
	}
	if c > 8 {
		c = 8
	}
	return c
}

// reorderWindow bounds how far task dispatch may run ahead of the
// in-order fold: the collector holds at most this many out-of-order
// payloads, so memory stays constant no matter how many shards a run
// has. The window leaves every worker a couple of full spans of slack
// so a slow shard does not idle the pool.
func reorderWindow(workers, chunk int) int {
	w := 4 * workers
	if m := 2 * chunk * workers; m > w {
		w = m
	}
	if w < 16 {
		w = 16
	}
	return w
}

// ResolvedWorkers reports the pool size a Run call will actually use:
// Workers when positive, then the shared Pool's bound when one is set,
// otherwise GOMAXPROCS at call time. The bench harness records it so
// benchmark artifacts carry the real worker count rather than the
// unresolved zero.
func (r *Runner) ResolvedWorkers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	if r.Pool != nil {
		return r.Pool.Workers()
	}
	return runtime.GOMAXPROCS(0)
}

// flights resolves the single-flight group this run dedupes through:
// the explicit one, else the shared Pool's, else none.
func (r *Runner) flights() *FlightGroup {
	if r.Flights != nil {
		return r.Flights
	}
	if r.Pool != nil {
		return r.Pool.Flights()
	}
	return nil
}

// Run executes every shard of every experiment on the pool and merges
// in input order. Outcomes are returned in input order; their content is
// independent of the worker count, because merging is a pure function of
// the shard payloads. On shard failure the first error (in task order)
// is returned and remaining work is abandoned.
//
// Experiments implementing Folder are merged as a streaming fold: each
// payload is absorbed, in shard order, as soon as the in-order prefix of
// tasks completes, then released — so peak memory is bounded by the
// reorder window rather than the shard count. Other experiments keep
// the collect-then-merge path.
func (r *Runner) Run(cfg core.Config, exps []Experiment) ([]*Outcome, Stats, error) {
	return r.RunContext(context.Background(), cfg, exps)
}

// RunContext is Run with a cancellation contract, the shape a
// multi-tenant server needs: when ctx ends, the feeder stops
// dispatching, tasks not yet started short-circuit, and the run returns
// ctx's error within one span of in-flight work — without disturbing
// any other run sharing the Pool, the cache, or the FlightGroup. A
// canceled run that leads a shared flight either finishes that one
// shard normally (the payload is published to cache and waiters as
// usual) or, if it had not started simulating, retires the flight so a
// waiting run re-contends and computes it instead; a canceled run
// waiting on someone else's flight withdraws. The manifest journal, if
// any, closes resumable — a later identical run picks up at the
// journaled fold cursor exactly as after a crash.
func (r *Runner) RunContext(ctx context.Context, cfg core.Config, exps []Experiment) ([]*Outcome, Stats, error) {
	start := time.Now()
	cfg = normalize(cfg)

	workers := r.ResolvedWorkers()

	var (
		tasks  []task
		byKey  = map[string]int{} // cache key -> index into tasks
		nSlots int
	)
	// Buffered payload arrays exist only for non-streaming experiments;
	// folds absorb and drop their payloads instead.
	payloads := make([][][]byte, len(exps))
	folds := make([]Fold, len(exps))
	shardCounts := make([]int, len(exps))
	for i, e := range exps {
		n := e.Shards(cfg)
		shardCounts[i] = n
		if f, ok := e.(Folder); ok {
			fold, err := f.Fold(cfg)
			if err != nil {
				return nil, Stats{}, fmt.Errorf("engine: %s fold: %w", e.Name(), err)
			}
			// The wrapper re-establishes shard order when equal cache
			// keys collapse shards of this experiment into tasks that
			// complete out of its shard order (see orderedFold).
			folds[i] = newOrderedFold(fold)
		} else {
			payloads[i] = make([][]byte, n)
		}
		scopes, locals := shardScopes(e, cfg, n)
		for s := 0; s < n; s++ {
			nSlots++
			k := CacheKey(scopes[s], cfg, locals[s])
			ti, ok := byKey[k]
			if !ok {
				ti = len(tasks)
				byKey[k] = ti
				tasks = append(tasks, task{key: k})
			}
			tasks[ti].dests = append(tasks[ti].dests, slot{exp: i, shard: s})
		}
	}

	// Durable fold: verify any prior manifest's record prefix against
	// the cache (the resume point), then open the journal — atomically
	// rewritten to exactly that verified prefix — for this run's
	// appends. Tasks inside the prefix replay from cache; tasks past it
	// run normally and are journaled as the fold absorbs them.
	var (
		journal  *Journal
		jHashes  []string
		resumed  int
		jKept    []ManifestRecord
		manifest = r.Manifests != nil && r.Cache != nil && len(tasks) > 0
	)
	if manifest {
		jHashes = make([]string, len(tasks))
		for i, t := range tasks {
			jHashes[i] = keyHash(t.key)
		}
		id := manifestIdentity(jHashes)
		if m, err := r.Manifests.Load(id); err == nil {
			resumed = verifyResume(m, tasks, jHashes, r.Cache)
			if m != nil {
				jKept = m.Records[:resumed]
			}
		}
		var err error
		switch journal, err = r.Manifests.Start(id, len(tasks), jKept); {
		case errors.Is(err, ErrManifestBusy):
			// An identical run in this process is journaling this fold
			// right now; its journal vouches for the same records ours
			// would, so run un-journaled rather than race it.
			journal, resumed = nil, 0
		case err != nil:
			return nil, Stats{}, fmt.Errorf("engine: manifest: %w", err)
		default:
			defer journal.Close()
		}
	}

	var (
		hits, misses             atomic.Int64
		flightHits, flightShared atomic.Int64
		failed                   atomic.Bool
		errMu                    sync.Mutex
		firstErr                 error
		firstErrAt               = len(tasks)
	)
	fail := func(at int, err error) {
		failed.Store(true)
		errMu.Lock()
		defer errMu.Unlock()
		// Keep the lowest-index error so the reported failure does not
		// depend on pool scheduling.
		if at < firstErrAt {
			firstErrAt, firstErr = at, err
		}
	}

	chunk := spanChunk(len(tasks), workers)
	window := reorderWindow(workers, chunk)
	permits := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		permits <- struct{}{}
	}
	results := make(chan taskResult, window)
	flights := r.flights()

	// runTask resolves one task — cache, single-flight, or compute —
	// and reports its payload to the collector. The results channel's
	// capacity equals the permit window, so the send can never block: a
	// worker (shared-pool or private) always finishes a task without
	// parking on the collector.
	runTask := func(ti int) {
		if failed.Load() || ctx.Err() != nil {
			results <- taskResult{ti: ti}
			return
		}
		t := tasks[ti]
		// Any destination computes the same payload; run the first and
		// let the collector fan the bytes out.
		first := t.dests[0]
		e := exps[first.exp]
		if r.taskGate != nil {
			r.taskGate(t.key)
		}
		if r.Cache != nil {
			if b, ok := r.Cache.Get(t.key); ok {
				hits.Add(int64(len(t.dests)))
				results <- taskResult{ti: ti, payload: b, cached: true}
				return
			}
		}
		var fc *flightCall
		if flights != nil {
			for fc == nil {
				c, leader := flights.lead(t.key)
				if leader {
					fc = c
					break
				}
				// Another run is computing this payload right now: take
				// its bytes instead of simulating them again.
				b, err := c.wait(ctx)
				switch {
				case err == nil:
					hits.Add(int64(len(t.dests)))
					flightHits.Add(1)
					results <- taskResult{ti: ti, payload: b, cached: true}
					return
				case ctx.Err() != nil:
					// Our own run is done with this work: withdraw from
					// the flight so the leader's delivery count stays
					// honest, and let the collector drain us.
					flights.abandon(t.key, c)
					results <- taskResult{ti: ti}
					return
				case errors.Is(err, errFlightRetired):
					// The leader was canceled before computing. The key
					// is still ours to resolve: re-check the cache (a
					// different flight may have landed meanwhile) and
					// re-contend for leadership.
					if r.Cache != nil {
						if b, ok := r.Cache.Get(t.key); ok {
							hits.Add(int64(len(t.dests)))
							results <- taskResult{ti: ti, payload: b, cached: true}
							return
						}
					}
				default:
					fail(ti, fmt.Errorf("engine: %s shard %d (shared in-flight): %w", e.Name(), first.shard, err))
					results <- taskResult{ti: ti}
					return
				}
			}
			if r.leadGate != nil {
				r.leadGate(t.key)
			}
			// Leaders re-check the cache: between this run's miss above
			// and its leadership, a previous flight may have landed and
			// left its payload behind. The re-check is what guarantees
			// each key is computed at most once per process no matter
			// how runs interleave.
			if r.Cache != nil {
				if b, ok := r.Cache.Get(t.key); ok {
					flightShared.Add(int64(flights.complete(t.key, fc, b, nil)))
					hits.Add(int64(len(t.dests)))
					results <- taskResult{ti: ti, payload: b, cached: true}
					return
				}
			}
			// A canceled leader must not sit on the key: hand it back so
			// a concurrent run that still wants the payload computes it.
			if ctx.Err() != nil {
				flights.retire(t.key, fc)
				results <- taskResult{ti: ti}
				return
			}
		}
		b, err := e.RunShard(cfg, first.shard)
		if err != nil {
			if fc != nil {
				flights.complete(t.key, fc, nil, err)
			}
			fail(ti, fmt.Errorf("engine: %s shard %d: %w", e.Name(), first.shard, err))
			results <- taskResult{ti: ti}
			return
		}
		misses.Add(1)
		// The extra destinations were supplied without compute: count
		// them as hits so hits+misses always equals the slot total.
		hits.Add(int64(len(t.dests) - 1))
		// Cache before publish: a run that misses the flight must then
		// hit the cache, never recompute.
		if r.Cache != nil {
			r.Cache.Put(t.key, b)
		}
		if fc != nil {
			flightShared.Add(int64(flights.complete(t.key, fc, b, nil)))
		}
		results <- taskResult{ti: ti, payload: b}
	}
	execSpan := func(sp span) {
		for ti := sp.lo; ti < sp.hi; ti++ {
			runTask(ti)
		}
	}

	// Feeder: dispatches contiguous spans of the task list in index
	// order, acquiring one permit per task before a span goes out, so
	// dispatch never runs more than window tasks ahead of the in-order
	// fold (the collector returns a permit per folded task). That cap is
	// what bounds the reorder buffer. Span dispatch is the locality
	// schedule: a worker owns a contiguous shard range at a time, so its
	// recycled arena stays warm on one scenario and its results land
	// next to each other in the fold.
	//
	// With a shared Pool the same feeder submits each permit-backed span
	// to this run's pool queue instead of a private channel; the pool's
	// round-robin decides which run a freed worker serves next, while
	// the permit flow keeps this run's outstanding work window-bounded
	// either way.
	//
	// Cancellation stops the feeder at the next permit: spans past the
	// cancel point are never dispatched, so a canceled tenant's pool
	// queue drains to nothing instead of cycling no-op tasks through the
	// shared workers. The feeder always reports how many tasks it
	// actually dispatched — that count, not len(tasks), is what the
	// collector waits for.
	var wg sync.WaitGroup
	dispatched := make(chan int, 1)
	feed := func(dispatch func(span)) {
		n := 0
		defer func() { dispatched <- n }()
		for lo := 0; lo < len(tasks); lo += chunk {
			hi := lo + chunk
			if hi > len(tasks) {
				hi = len(tasks)
			}
			for i := lo; i < hi; i++ {
				select {
				case <-permits:
				case <-ctx.Done():
					return
				}
			}
			dispatch(span{lo, hi})
			n = hi
		}
	}
	if r.Pool != nil {
		pr := r.Pool.register()
		go feed(func(sp span) {
			wg.Add(1)
			pr.submit(func() {
				defer wg.Done()
				execSpan(sp)
			})
		})
	} else {
		ch := make(chan span)
		go func() {
			defer close(ch)
			feed(func(sp span) { ch <- sp })
		}()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sp := range ch {
					execSpan(sp)
				}
			}()
		}
	}

	// Collector: re-establishes task order behind the pool and folds the
	// contiguous prefix. pending holds only out-of-order payloads, and
	// the permit flow keeps it no larger than the reorder window. The
	// expected result count starts at len(tasks) and drops to the
	// feeder's dispatched count if cancellation cut dispatch short —
	// every dispatched task still reports exactly one result, even when
	// it short-circuits.
	pending := make(map[int]taskResult, window)
	contig := 0
	deliver := func(ti int, payload []byte) {
		if failed.Load() || payload == nil {
			return
		}
		for _, d := range tasks[ti].dests {
			if fold := folds[d.exp]; fold != nil {
				if err := fold.Absorb(d.shard, payload); err != nil {
					fail(ti, fmt.Errorf("engine: %s shard %d: %w", exps[d.exp].Name(), d.shard, err))
					return
				}
			} else {
				payloads[d.exp][d.shard] = payload
			}
		}
	}
	expected, dispatchedC := len(tasks), dispatched
	for received := 0; received < expected; {
		var res taskResult
		select {
		case res = <-results:
		case n := <-dispatchedC:
			expected, dispatchedC = n, nil
			continue
		}
		received++
		pending[res.ti] = res
		for {
			tr, ok := pending[contig]
			if !ok {
				break
			}
			delete(pending, contig)
			deliver(contig, tr.payload)
			// Journal the fold's progress: one record per absorbed task,
			// in fold order, after the fold holds it. Records inside the
			// resumed prefix are already in the journal. An append
			// failure aborts the run — a fold the journal cannot vouch
			// for is exactly what the manifest exists to prevent — and
			// the journal's intact prefix stays resumable.
			if journal != nil && contig >= resumed && tr.payload != nil && !failed.Load() {
				if err := journal.Append(contig, jHashes[contig], payloadDigest(tr.payload)); err != nil {
					fail(contig, fmt.Errorf("engine: manifest journal: %w", err))
				}
			}
			contig++
			permits <- struct{}{}
			if r.OnEvent != nil {
				kind := EventShardComputed
				if tr.cached {
					kind = EventShardCached
				}
				first := tasks[contig-1].dests[0]
				r.OnEvent(Event{
					Kind:       kind,
					Experiment: exps[first.exp].Name(),
					Shard:      first.shard,
					Shards:     shardCounts[first.exp],
					Done:       contig,
					Total:      len(tasks),
				})
			}
		}
	}
	wg.Wait()

	stats := Stats{
		Experiments:  len(exps),
		Shards:       nSlots,
		Hits:         int(hits.Load()),
		Misses:       int(misses.Load()),
		Resumed:      resumed,
		FlightHits:   int(flightHits.Load()),
		FlightShared: int(flightShared.Load()),
	}
	if failed.Load() {
		stats.Elapsed = time.Since(start)
		return nil, stats, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Canceled with no earlier shard failure: the fold is abandoned
		// but everything shared survives — payloads already computed are
		// cached, led flights were published or retired, and the journal
		// (closed by its defer) stays resumable at the fold cursor.
		stats.Elapsed = time.Since(start)
		return nil, stats, fmt.Errorf("engine: run canceled: %w", err)
	}

	outcomes := make([]*Outcome, len(exps))
	for i, e := range exps {
		var o *Outcome
		var err error
		if folds[i] != nil {
			o, err = folds[i].Finish()
		} else {
			o, err = e.Merge(cfg, payloads[i])
		}
		if err != nil {
			stats.Elapsed = time.Since(start)
			return nil, stats, fmt.Errorf("engine: %s merge: %w", e.Name(), err)
		}
		outcomes[i] = o
		if r.OnEvent != nil {
			r.OnEvent(Event{
				Kind:       EventExperimentMerged,
				Experiment: e.Name(),
				Shards:     shardCounts[i],
				Done:       i + 1,
				Total:      len(exps),
			})
		}
	}
	// Every task folded: seal the journal complete. Best-effort — the
	// outcomes above are already correct, and an unsealed journal merely
	// replays from cache on the next identical run.
	if journal != nil {
		journal.Finish()
	}
	stats.Elapsed = time.Since(start)
	return outcomes, stats, nil
}

// verifyResume returns the length of the manifest prefix the cache can
// still vouch for: records must be contiguous from zero, must name the
// key hashes the current task list derives (same canonical order), and
// must hash to payload bytes the cache holds. Everything past the first
// failure — an evicted payload, a corrupted entry, a torn journal tail
// — re-simulates.
func verifyResume(m *Manifest, tasks []task, hashes []string, cache Cache) int {
	if m == nil || m.Tasks != len(tasks) {
		return 0
	}
	n := 0
	for i, rec := range m.Records {
		if i >= len(tasks) || rec.KeyHash != hashes[i] {
			break
		}
		b, ok := cache.Get(tasks[i].key)
		if !ok || payloadDigest(b) != rec.Digest {
			break
		}
		n = i + 1
	}
	return n
}

// RunNames resolves names against the Default registry and runs them.
func (r *Runner) RunNames(cfg core.Config, names string) ([]*Outcome, Stats, error) {
	exps, err := Default.Select(names)
	if err != nil {
		return nil, Stats{}, err
	}
	return r.Run(cfg, exps)
}
