package engine

import (
	"context"
	"errors"
	"testing"
	"time"
)

// awaitWaiters polls until key has at least want blocked waiters, or
// gives up after a generous deadline (the caller's assertions then
// report the real failure).
func awaitWaiters(g *FlightGroup, key string, want int) {
	deadline := time.Now().Add(10 * time.Second)
	for g.waitersFor(key) < want && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}

// TestFlightLeaderWaitersAndRetire exercises the group's lifecycle: one
// leader per key, waiters counted and served the leader's bytes, and
// the flight retired on complete so the next arrival leads afresh.
func TestFlightLeaderWaitersAndRetire(t *testing.T) {
	g := NewFlightGroup()
	c, leader := g.lead("k")
	if !leader {
		t.Fatal("first arrival did not lead")
	}

	type got struct {
		payload []byte
		err     error
	}
	results := make(chan got, 3)
	for i := 0; i < 3; i++ {
		go func() {
			cc, lead := g.lead("k")
			if lead {
				t.Error("second arrival led an in-flight key")
				g.complete("k", cc, nil, nil)
				return
			}
			b, err := cc.wait(context.Background())
			results <- got{b, err}
		}()
	}
	awaitWaiters(g, "k", 3)
	if n := g.waitersFor("k"); n != 3 {
		t.Fatalf("waitersFor = %d, want 3", n)
	}
	if n := g.complete("k", c, []byte("bytes"), nil); n != 3 {
		t.Errorf("complete served %d waiters, want 3", n)
	}
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil || string(r.payload) != "bytes" {
			t.Errorf("waiter got (%q, %v), want (bytes, nil)", r.payload, r.err)
		}
	}

	if _, leader := g.lead("k"); !leader {
		t.Error("completed flight was not retired: next arrival did not lead")
	}
}

// TestFlightErrorPropagation verifies a failed computation reaches
// every waiter as the leader's error.
func TestFlightErrorPropagation(t *testing.T) {
	g := NewFlightGroup()
	c, _ := g.lead("bad")
	errs := make(chan error, 1)
	go func() {
		cc, _ := g.lead("bad")
		_, err := cc.wait(context.Background())
		errs <- err
	}()
	awaitWaiters(g, "bad", 1)
	boom := errors.New("shard exploded")
	g.complete("bad", c, nil, boom)
	if err := <-errs; !errors.Is(err, boom) {
		t.Errorf("waiter error = %v, want %v", err, boom)
	}
}
