package engine

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// TestPropertyRandomScenarios is a testing/quick-style loop over small
// random fleet scenarios — machines, horizon, churn, scheduling policy,
// migration policy, bandwidth, and faulty fraction all drawn from a
// fixed-seed stream, so a failure reproduces exactly. Every scenario is
// run at two worker counts and must hold the pipeline's invariants:
//
//   - worker-count invariance: table, CSV, and JSON byte-identical;
//   - churn off ⇒ no evictions and no migrations (eager may still burn
//     sync bandwidth — its client can't know churn is off — but nothing
//     downloads and nothing re-places);
//   - migration "none" ⇒ the transfer plane never engages;
//   - conservation: a migrated unit can never carry more checkpointed
//     chunks than a whole unit, so saved chunks are bounded by
//     migrations × chunks-per-unit, and every migration traces back to
//     a distinct eviction.
func TestPropertyRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	policies := grid.Policies()
	migs := grid.MigrationPolicies()
	bandwidths := []float64{50, 1000}
	for i := 0; i < 8; i++ {
		scn := grid.Scenario{
			Machines:      40 + rng.Intn(200),
			Minutes:       30 + rng.Intn(60),
			Seed:          1,
			Quick:         true,
			Churn:         rng.Intn(2) == 0,
			Policy:        policies[rng.Intn(len(policies))],
			FaultyFrac:    float64(rng.Intn(2)) * 0.05,
			Migration:     migs[rng.Intn(len(migs))],
			BandwidthMbps: bandwidths[rng.Intn(len(bandwidths))],
			Envs:          []string{"vmplayer"},
		}.Normalize()
		label := scn.Key()

		var outs []*Outcome
		for _, workers := range []int{1, 5} {
			r := &Runner{Workers: workers, Cache: NewMemCache()}
			got, _, err := r.Run(core.Config{Seed: 1, Quick: true},
				[]Experiment{FleetScenario("fleet", "property", scn)})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			outs = append(outs, got[0])
		}
		if !bytes.Equal(outs[0].Raw, outs[1].Raw) ||
			outs[0].Render() != outs[1].Render() || outs[0].CSV() != outs[1].CSV() {
			t.Fatalf("%s: output differs across worker counts", label)
		}

		var payload fleetPayload
		if err := json.Unmarshal(outs[0].Raw, &payload); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for _, v := range payload.Variants {
			for _, st := range v.Fleet.Envs {
				if st.MigSavedChunks < 0 || st.MigSavedSec < 0 || st.LostChunks < 0 {
					t.Errorf("%s/%s: negative accounting: %+v", label, st.Env, st)
				}
				if !scn.Churn {
					if st.Evictions != 0 || st.Migrations != 0 || st.MigRxBytes != 0 {
						t.Errorf("%s/%s: churn off but evictions=%d migrations=%d rx=%d",
							label, st.Env, st.Evictions, st.Migrations, st.MigRxBytes)
					}
					if scn.Migration != "eager" && st.MigTxBytes != 0 {
						t.Errorf("%s/%s: churn off but %d bytes uploaded", label, st.Env, st.MigTxBytes)
					}
				}
				if scn.Migration == "none" &&
					(st.Migrations != 0 || st.MigTxBytes != 0 || st.MigRxBytes != 0 ||
						st.MigSavedChunks != 0 || st.MigSavedSec != 0) {
					t.Errorf("%s/%s: migration none engaged the transfer plane: %+v", label, st.Env, st)
				}
				if st.MigSavedChunks > int64(st.Migrations)*int64(scn.ChunksPerUnit) {
					t.Errorf("%s/%s: %d saved chunks from %d migrations of ≤%d-chunk checkpoints",
						label, st.Env, st.MigSavedChunks, st.Migrations, scn.ChunksPerUnit)
				}
				if st.Migrations > st.Evictions {
					t.Errorf("%s/%s: %d migrations exceed %d evictions",
						label, st.Env, st.Migrations, st.Evictions)
				}
				if st.Policy.Validated > st.Policy.UnitsIssued {
					t.Errorf("%s/%s: validated %d of %d issued units",
						label, st.Env, st.Policy.Validated, st.Policy.UnitsIssued)
				}
			}
		}
	}
}
