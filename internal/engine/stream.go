package engine

import "vmdg/internal/core"

// Folder is implemented by experiments whose merge is an incremental
// fold over shard payloads in shard-index order. The runner merges such
// experiments as a stream: each payload is absorbed the moment the
// in-order prefix of work completes, then released, so a run's memory
// footprint is bounded by the pool's reorder window instead of the
// total shard count. Fleet experiments — whose shard counts reach the
// thousands at million-host populations — implement it; the small
// figure experiments keep the simpler batch Merge.
type Folder interface {
	Experiment
	// Fold returns a fresh accumulator for one run. The runner calls
	// Absorb from a single goroutine, in strictly increasing shard
	// order with no gaps, then Finish exactly once.
	Fold(cfg core.Config) (Fold, error)
}

// Fold accumulates shard payloads into an Outcome.
type Fold interface {
	// Absorb folds shard's payload into the accumulator. The payload
	// buffer is shared; implementations must not retain it.
	Absorb(shard int, payload []byte) error
	// Finish completes the fold. The result must be bit-identical to
	// the experiment's batch Merge over the same payloads.
	Finish() (*Outcome, error)
}
