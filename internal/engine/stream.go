package engine

import (
	"fmt"

	"vmdg/internal/core"
)

// Folder is implemented by experiments whose merge is an incremental
// fold over shard payloads in shard-index order. The runner merges such
// experiments as a stream: each payload is absorbed the moment the
// in-order prefix of work completes, then released, so a run's memory
// footprint is bounded by the pool's reorder window instead of the
// total shard count. Fleet experiments — whose shard counts reach the
// thousands at million-host populations — implement it; the small
// figure experiments keep the simpler batch Merge.
type Folder interface {
	Experiment
	// Fold returns a fresh accumulator for one run. The runner calls
	// Absorb from a single goroutine, in strictly increasing shard
	// order with no gaps, then Finish exactly once.
	Fold(cfg core.Config) (Fold, error)
}

// Fold accumulates shard payloads into an Outcome.
type Fold interface {
	// Absorb folds shard's payload into the accumulator. The payload
	// buffer is shared; implementations must not retain it.
	Absorb(shard int, payload []byte) error
	// Finish completes the fold. The result must be bit-identical to
	// the experiment's batch Merge over the same payloads.
	Finish() (*Outcome, error)
}

// orderedFold upholds the in-order Absorb contract when the runner's
// task order diverges from an experiment's shard order. That happens
// when equal cache keys collapse into one task: two identical sweep
// points (a duplicated axis value), or an experiment sharing shards
// with an earlier experiment in the same run, receive a payload for a
// later shard while earlier shards are still pending. The wrapper
// buffers such payloads (copying, since the runner's buffer is shared)
// and drains them the moment the gap fills. The buffer holds only
// key-shared stragglers — ordinary runs, where every shard is its own
// task in shard order, never buffer at all.
type orderedFold struct {
	fold    Fold
	next    int
	pending map[int][]byte
}

func newOrderedFold(f Fold) *orderedFold {
	return &orderedFold{fold: f, pending: map[int][]byte{}}
}

func (o *orderedFold) Absorb(shard int, payload []byte) error {
	if shard != o.next {
		o.pending[shard] = append([]byte(nil), payload...)
		return nil
	}
	if err := o.fold.Absorb(shard, payload); err != nil {
		return err
	}
	o.next++
	for {
		b, ok := o.pending[o.next]
		if !ok {
			return nil
		}
		delete(o.pending, o.next)
		if err := o.fold.Absorb(o.next, b); err != nil {
			return err
		}
		o.next++
	}
}

func (o *orderedFold) Finish() (*Outcome, error) {
	if len(o.pending) > 0 {
		return nil, fmt.Errorf("engine: fold finished with %d shards still pending before shard %d", len(o.pending), o.next)
	}
	return o.fold.Finish()
}
