package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// A sweep manifest is the durable record of one run's fold: which tasks
// the run comprises (in canonical fold order), how far the fold got,
// and the digest of every payload it absorbed. The shard cache already
// persists the payloads; the manifest is what turns those payloads back
// into a resumable run — a re-run of the same spec verifies the
// manifest's prefix against the cache and replays it instead of
// re-simulating, picking up at the first missing or unverifiable shard.
//
// The file is a versioned, append-only journal: a sealed header line,
// one sealed record line per folded task, and a sealed done line once
// every task folded. Every line carries a CRC-32 of its payload, so a
// reader accepts exactly the longest intact prefix — a torn or
// corrupted tail (a crash mid-append, a lost page) degrades to the last
// durable record instead of poisoning the file. The header and any
// resumed record prefix are written to a temp file, synced, and renamed
// into place, so a crash during journal (re)creation leaves either the
// old journal or the new one, never a hybrid; appends are single
// write(2) calls of whole sealed lines, synced every SyncEvery records
// and at close.

// manifestVersion is the journal format version. Bump it when the line
// grammar or header fields change; old journals then fail Load with
// ErrManifestVersion and the run starts a fresh manifest.
const manifestVersion = 1

// manifestExt names manifest files inside the store directory.
const manifestExt = ".manifest"

// DefaultSyncEvery is the store's default fsync cadence: one fsync per
// this many appended records (plus one at close). A process crash loses
// nothing that write(2) accepted; only an OS or power failure can lose
// the un-synced tail, and then resume just re-simulates those shards.
const DefaultSyncEvery = 64

// ErrManifestVersion reports a journal written by an incompatible
// format version.
var ErrManifestVersion = errors.New("engine: unsupported manifest version")

// ErrManifestBusy reports that another run in this process holds the
// identity's journal open right now. Identical identities fold the
// identical task list, so the concurrent run's journal records exactly
// what this run's would; the runner reacts by proceeding un-journaled
// rather than racing two writers over one file.
var ErrManifestBusy = errors.New("engine: manifest journal busy (identical run in flight)")

// LockStaleAfter is how long an untouched run lock keeps counting as an
// active run. An open journal touches its lock on every sync (at most
// every SyncEvery records), so a lock this stale means the run died
// without closing — typically a SIGKILL — and maintenance may proceed
// over it; the next resume re-acquires cleanly.
const LockStaleAfter = time.Hour

// ManifestRecord is one folded task: its index in the run's canonical
// task order, the payload's cache-file stem (hex SHA-256 of the cache
// key — the same name the payload cache stores it under, so manifests
// reconcile against payload files by name alone), and the hex SHA-256
// of the payload bytes the fold absorbed.
type ManifestRecord struct {
	Index   int
	KeyHash string
	Digest  string
}

// Manifest is a loaded journal: the run identity, its task count, and
// the valid record prefix.
type Manifest struct {
	Identity string
	Tasks    int
	Cache    string // cacheVersion that wrote the journal
	Records  []ManifestRecord
	// Complete marks a run whose every task folded (the done line).
	Complete bool
	// Torn marks a journal whose tail was damaged; Records holds the
	// intact prefix, which is exactly the resume point.
	Torn bool
}

// Cursor is the fold progress the journal vouches for.
func (m *Manifest) Cursor() int { return len(m.Records) }

// ManifestInfo summarizes one stored manifest for listings.
type ManifestInfo struct {
	Identity string
	Tasks    int
	Cursor   int
	Complete bool
	Torn     bool
	Bytes    int64
	Mod      time.Time
}

// ManifestStore keeps the journals for one cache directory, one file
// per run identity.
type ManifestStore struct {
	dir    string
	faults *Faults
	// SyncEvery overrides the fsync cadence; 0 means DefaultSyncEvery,
	// negative means sync only at close.
	SyncEvery int

	// open tracks the identities with a live Journal in this process,
	// so concurrent identical runs (the serve daemon's tenants) never
	// append to one journal file from two writers: Start refuses the
	// second opener with ErrManifestBusy.
	mu   sync.Mutex
	open map[string]bool
}

// NewManifestStore opens a store rooted at dir. The directory is
// created on first write, so read-only use never dirties the cache.
func NewManifestStore(dir string) *ManifestStore { return &ManifestStore{dir: dir} }

// tryOpen claims in-process ownership of identity's journal.
func (s *ManifestStore) tryOpen(identity string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open[identity] {
		return false
	}
	if s.open == nil {
		s.open = map[string]bool{}
	}
	s.open[identity] = true
	return true
}

// closeOpen releases in-process ownership (journal closed or Start
// aborted).
func (s *ManifestStore) closeOpen(identity string) {
	s.mu.Lock()
	delete(s.open, identity)
	s.mu.Unlock()
}

// Dir returns the store directory.
func (s *ManifestStore) Dir() string { return s.dir }

// SetFaults attaches a fault-injection plan (tests only).
func (s *ManifestStore) SetFaults(f *Faults) { s.faults = f }

func (s *ManifestStore) path(identity string) string {
	return filepath.Join(s.dir, identity+manifestExt)
}

// Run locks mark journals that belong to a live run, so cache
// maintenance (Prune, Clear, Reconcile) can detect and skip them
// instead of racing the run's appends and payload reads. A lock is one
// file per identity under the store's "locks" subdirectory, created by
// Start, freshened (mtime) by every journal sync, and removed by
// Finish and Close. Liveness is the file's mtime: older than
// LockStaleAfter means the owning process is gone (see LockStaleAfter).

func (s *ManifestStore) lockPath(identity string) string {
	return filepath.Join(s.dir, "locks", identity+".lock")
}

// acquireLock marks identity's run live. Lock trouble never fails a
// run — the lock is advisory, protecting the run from maintenance, not
// the other way around.
func (s *ManifestStore) acquireLock(identity string) {
	path := s.lockPath(identity)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	os.WriteFile(path, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644)
}

// touchLock freshens the lock's mtime so a long run never goes stale.
func (s *ManifestStore) touchLock(identity string) {
	now := time.Now()
	os.Chtimes(s.lockPath(identity), now, now)
}

// releaseLock retires the lock when the journal closes.
func (s *ManifestStore) releaseLock(identity string) {
	os.Remove(s.lockPath(identity))
}

// ActiveRuns lists the identities whose run locks are fresh — runs a
// maintenance pass must not disturb. Read-only: stale locks are
// reported by omission here and cleaned up by Reconcile.
func (s *ManifestStore) ActiveRuns() ([]string, error) {
	dirents, err := os.ReadDir(filepath.Join(s.dir, "locks"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("engine: manifest locks: %w", err)
	}
	cutoff := time.Now().Add(-LockStaleAfter)
	var out []string
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".lock") {
			continue
		}
		info, err := de.Info()
		if err != nil || info.ModTime().Before(cutoff) {
			continue
		}
		out = append(out, strings.TrimSuffix(de.Name(), ".lock"))
	}
	sort.Strings(out)
	return out, nil
}

func (s *ManifestStore) syncEvery() int {
	switch {
	case s.SyncEvery > 0:
		return s.SyncEvery
	case s.SyncEvery < 0:
		return 0
	}
	return DefaultSyncEvery
}

// manifestIdentity names a run: the digest of its ordered task-key
// hashes. Two runs resume each other exactly when they expand to the
// same tasks in the same order — same experiments, parameters, seed,
// cache version, and build (the cache key embeds all of these).
func manifestIdentity(keyHashes []string) string {
	h := sha256.New()
	for _, kh := range keyHashes {
		h.Write([]byte(kh))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// payloadDigest is the manifest's payload fingerprint.
func payloadDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// sealLine frames one journal line: the payload text, then its CRC-32
// in fixed-width hex. The fixed width lets openLine reject truncated
// checksums by length alone.
func sealLine(payload string) string {
	return fmt.Sprintf("%s #%08x\n", payload, crc32.ChecksumIEEE([]byte(payload)))
}

// openLine reverses sealLine; ok is false for torn or corrupted lines.
func openLine(line string) (payload string, ok bool) {
	i := strings.LastIndex(line, " #")
	if i < 0 || len(line) != i+10 {
		return "", false
	}
	var crc uint32
	if _, err := fmt.Sscanf(line[i+2:], "%08x", &crc); err != nil {
		return "", false
	}
	payload = line[:i]
	return payload, crc32.ChecksumIEEE([]byte(payload)) == crc
}

// nextLine splits one '\n'-terminated line off data. An unterminated
// remainder is a torn tail: it is returned with ok=false.
func nextLine(data []byte) (line string, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return string(data), nil, false
	}
	return string(data[:i]), data[i+1:], true
}

// Load reads the journal for identity. A missing journal is (nil, nil).
// An unusable one — wrong magic, unsupported version, malformed or
// mismatched header — is an error (the runner starts fresh either way,
// but tooling and tests want the distinction). A valid header followed
// by a damaged tail is NOT an error: the intact record prefix is the
// resume point the journal exists to keep.
func (s *ManifestStore) Load(identity string) (*Manifest, error) {
	data, err := os.ReadFile(s.path(identity))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return parseManifest(identity, data)
}

func parseManifest(identity string, data []byte) (*Manifest, error) {
	line, rest, ok := nextLine(data)
	if !ok {
		return nil, fmt.Errorf("engine: manifest %.12s: torn header", identity)
	}
	payload, ok := openLine(line)
	if !ok {
		return nil, fmt.Errorf("engine: manifest %.12s: corrupt header", identity)
	}
	var (
		ver, tasks int
		id, cache  string
	)
	if _, err := fmt.Sscanf(payload, "vmdg-manifest v%d id=%s tasks=%d cache=%s", &ver, &id, &tasks, &cache); err != nil {
		return nil, fmt.Errorf("engine: manifest %.12s: malformed header %q", identity, payload)
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("%w: v%d (this build reads v%d)", ErrManifestVersion, ver, manifestVersion)
	}
	if id != identity {
		return nil, fmt.Errorf("engine: manifest %.12s: header names %.12s", identity, id)
	}
	if tasks < 0 {
		return nil, fmt.Errorf("engine: manifest %.12s: negative task count %d", identity, tasks)
	}
	m := &Manifest{Identity: identity, Tasks: tasks, Cache: cache}
	for len(rest) > 0 {
		line, next, ok := nextLine(rest)
		if !ok {
			m.Torn = true
			return m, nil
		}
		rest = next
		payload, ok := openLine(line)
		if !ok {
			m.Torn = true
			return m, nil
		}
		switch {
		case strings.HasPrefix(payload, "fold "):
			var rec ManifestRecord
			if _, err := fmt.Sscanf(payload, "fold %d %s %s", &rec.Index, &rec.KeyHash, &rec.Digest); err != nil ||
				rec.Index != len(m.Records) || rec.Index >= tasks {
				m.Torn = true
				return m, nil
			}
			m.Records = append(m.Records, rec)
		case strings.HasPrefix(payload, "done "):
			var n int
			if _, err := fmt.Sscanf(payload, "done %d", &n); err == nil &&
				n == tasks && len(m.Records) == tasks {
				m.Complete = true
			}
			return m, nil
		default:
			m.Torn = true
			return m, nil
		}
	}
	return m, nil
}

// Journal is one run's open manifest: Start creates it, the runner's
// collector appends one record per folded task, and Finish (every task
// folded) or Close (crash-resumable) seals it.
type Journal struct {
	store    *ManifestStore
	f        *os.File
	path     string
	identity string
	tasks    int
	n        int // records in the file (kept prefix + appends)
	unsynced int
	closed   bool
}

// Start begins — or, on resume, atomically rewrites — the journal for
// one run: the header plus the verified record prefix a resume keeps go
// to a temp file, which is synced and renamed into place. A crash
// during Start leaves either the previous journal or the new one, never
// a hybrid. The returned Journal is open for appends at record
// len(keep).
func (s *ManifestStore) Start(identity string, tasks int, keep []ManifestRecord) (*Journal, error) {
	if !s.tryOpen(identity) {
		return nil, ErrManifestBusy
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		s.closeOpen(identity)
		return nil, fmt.Errorf("engine: manifest dir: %w", err)
	}
	dst := s.path(identity)
	if _, err := s.faults.check(OpCreate, dst); err != nil {
		s.closeOpen(identity)
		return nil, err
	}
	tmp, err := os.CreateTemp(s.dir, "journal-*")
	if err != nil {
		s.closeOpen(identity)
		return nil, fmt.Errorf("engine: manifest: %w", err)
	}
	j := &Journal{store: s, f: tmp, path: dst, identity: identity, tasks: tasks, n: len(keep)}
	abort := func(err error) (*Journal, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		s.closeOpen(identity)
		return nil, err
	}
	var head bytes.Buffer
	head.WriteString(sealLine(fmt.Sprintf("vmdg-manifest v%d id=%s tasks=%d cache=%s",
		manifestVersion, identity, tasks, cacheVersion)))
	for i, rec := range keep {
		if rec.Index != i {
			return abort(fmt.Errorf("engine: manifest: kept record %d indexed %d", i, rec.Index))
		}
		head.WriteString(sealLine(fmt.Sprintf("fold %d %s %s", rec.Index, rec.KeyHash, rec.Digest)))
	}
	if err := faultyWrite(s.faults, tmp, dst, head.Bytes()); err != nil {
		return abort(err)
	}
	if err := j.sync(); err != nil {
		return abort(err)
	}
	if _, err := s.faults.check(OpRename, dst); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return abort(fmt.Errorf("engine: manifest: %w", err))
	}
	// The renamed fd stays valid for appends — no reopen window in
	// which a concurrent run could swap the file underneath us.
	s.acquireLock(identity)
	return j, nil
}

// Append journals one folded task. Records must arrive in task order
// with no gaps — the collector's fold order.
func (j *Journal) Append(index int, keyHash, digest string) error {
	if j.closed {
		return fmt.Errorf("engine: journal: append after close")
	}
	if index != j.n {
		return fmt.Errorf("engine: journal: record %d out of order (want %d)", index, j.n)
	}
	line := sealLine(fmt.Sprintf("fold %d %s %s", index, keyHash, digest))
	if err := faultyWrite(j.store.faults, j.f, j.path, []byte(line)); err != nil {
		return err
	}
	j.n++
	j.unsynced++
	if se := j.store.syncEvery(); se > 0 && j.unsynced >= se {
		return j.sync()
	}
	return nil
}

func (j *Journal) sync() error {
	if _, err := j.store.faults.check(OpSync, j.path); err != nil {
		return err
	}
	j.unsynced = 0
	j.store.touchLock(j.identity)
	return j.f.Sync()
}

// Finish seals a completed run: the done line tells a later identical
// run the manifest is complete rather than resumable. The journal is
// closed either way.
func (j *Journal) Finish() error {
	if j.closed {
		return nil
	}
	if j.n != j.tasks {
		j.Close()
		return fmt.Errorf("engine: journal: finish with %d of %d records", j.n, j.tasks)
	}
	line := sealLine(fmt.Sprintf("done %d", j.tasks))
	err := faultyWrite(j.store.faults, j.f, j.path, []byte(line))
	if err == nil {
		err = j.sync()
	}
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.store.releaseLock(j.identity)
	j.store.closeOpen(j.identity)
	return err
}

// Close syncs and closes without marking complete — the journal stays
// resumable. A no-op after Finish or Close.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.store.releaseLock(j.identity)
	j.store.closeOpen(j.identity)
	return err
}

// List summarizes every loadable manifest in the store, sorted by
// identity for stable output. Unreadable or unparsable files are
// skipped here — Reconcile removes them.
func (s *ManifestStore) List() ([]ManifestInfo, error) {
	files, err := s.files()
	if err != nil {
		return nil, err
	}
	var out []ManifestInfo
	for _, f := range files {
		m, err := s.Load(f.identity)
		if err != nil || m == nil {
			continue
		}
		out = append(out, ManifestInfo{
			Identity: m.Identity,
			Tasks:    m.Tasks,
			Cursor:   m.Cursor(),
			Complete: m.Complete,
			Torn:     m.Torn,
			Bytes:    f.size,
			Mod:      f.mod,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Identity < out[j].Identity })
	return out, nil
}

// Reconcile reacts to payload eviction and age: a manifest can only
// vouch for folds whose payloads the cache still holds, so after a
// prune each journal is truncated at its first missing payload (the
// cursor a resume would land on anyway) and removed outright when
// nothing valid remains, when it has aged past maxAge, or when it is
// unparsable. has reports whether the payload file for a record's
// KeyHash survives; maxAge <= 0 disables the age cap.
//
// Journals whose run lock is fresh are skipped entirely — their run is
// live and appending, so truncating or removing them would race it.
// Stale lock files (a run that died without closing) are removed here.
func (s *ManifestStore) Reconcile(has func(keyHash string) bool, maxAge time.Duration) (removed int, freed int64, err error) {
	files, err := s.files()
	if err != nil {
		return 0, 0, err
	}
	active, err := s.ActiveRuns()
	if err != nil {
		return 0, 0, err
	}
	live := make(map[string]bool, len(active))
	for _, id := range active {
		live[id] = true
	}
	s.sweepStaleLocks(live)
	cutoff := time.Now().Add(-maxAge)
	for _, f := range files {
		if live[f.identity] {
			continue
		}
		if maxAge > 0 && f.mod.Before(cutoff) {
			if os.Remove(f.path) == nil {
				removed++
				freed += f.size
			}
			continue
		}
		m, lerr := s.Load(f.identity)
		if lerr != nil || m == nil {
			if os.Remove(f.path) == nil { // unusable: stranded by a format or identity change
				removed++
				freed += f.size
			}
			continue
		}
		valid := 0
		for _, rec := range m.Records {
			if !has(rec.KeyHash) {
				break
			}
			valid++
		}
		if valid == len(m.Records) {
			continue // every vouched-for payload survives; torn tails stay as-is
		}
		if valid == 0 {
			if os.Remove(f.path) == nil {
				removed++
				freed += f.size
			}
			continue
		}
		// Truncate to the verified prefix, atomically (Start's temp +
		// rename). The rewritten journal is incomplete by construction.
		j, serr := s.Start(m.Identity, m.Tasks, m.Records[:valid])
		if serr == nil {
			j.Close()
		}
	}
	return removed, freed, nil
}

// sweepStaleLocks removes lock files whose run is no longer in the
// live set — the leftovers of runs that died without closing.
func (s *ManifestStore) sweepStaleLocks(live map[string]bool) {
	dirents, err := os.ReadDir(filepath.Join(s.dir, "locks"))
	if err != nil {
		return
	}
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".lock") {
			continue
		}
		if id := strings.TrimSuffix(de.Name(), ".lock"); !live[id] {
			os.Remove(s.lockPath(id))
		}
	}
}

// Clear removes every manifest.
func (s *ManifestStore) Clear() (removed int, freed int64, err error) {
	files, err := s.files()
	if err != nil {
		return 0, 0, err
	}
	for _, f := range files {
		if os.Remove(f.path) == nil {
			removed++
			freed += f.size
		}
	}
	return removed, freed, nil
}

type manifestFile struct {
	identity string
	path     string
	size     int64
	mod      time.Time
}

// files lists the store's manifest files (a missing directory is an
// empty store; entries vanishing mid-scan are tolerated).
func (s *ManifestStore) files() ([]manifestFile, error) {
	dirents, err := os.ReadDir(s.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("engine: manifest dir: %w", err)
	}
	var out []manifestFile
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), manifestExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, manifestFile{
			identity: strings.TrimSuffix(de.Name(), manifestExt),
			path:     filepath.Join(s.dir, de.Name()),
			size:     info.Size(),
			mod:      info.ModTime(),
		})
	}
	return out, nil
}
