package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"vmdg/internal/core"
)

// cacheVersion invalidates every cached shard when the experiment
// definitions change shape. Bump it when a shard's payload layout or the
// meaning of a shard index changes.
const cacheVersion = "v2"

// buildFingerprint identifies the binary that produced a shard payload,
// so entries written by one build never serve another: any change to
// simulation or calibration code changes the executable, and with it
// every cache key. Unchanged source rebuilds reproducibly to the same
// binary, so the cache stays effective across `go run` invocations.
var buildFingerprint = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown-build"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown-build"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown-build"
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
})

// CacheKey derives the content key of one shard: the producing build,
// the experiment's cache scope, and every config field that can change
// the shard's payload. Experiments sharing a scope (Figures 7 and 8)
// produce identical keys and therefore share cached work.
func CacheKey(scope string, cfg core.Config, shard int) string {
	cfg = normalize(cfg)
	return fmt.Sprintf("%s|%s|%s|seed=%d|reps=%d|quick=%t|shard=%d",
		cacheVersion, buildFingerprint(), scope, cfg.Seed, cfg.Reps, cfg.Quick, shard)
}

// Cache stores shard payloads by content key. Implementations must be
// safe for concurrent use; Put may be called twice with the same key
// (two in-flight experiments sharing a scope) and must keep the entry
// readable throughout.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte)
}

// MemCache is an in-process Cache, used by tests and the benchmark
// harness.
type MemCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: map[string][]byte{}} }

// Get returns the stored payload.
func (c *MemCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.m[key]
	return b, ok
}

// Put stores a payload.
func (c *MemCache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), payload...)
}

// Len reports the number of entries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// FileCache persists shard payloads under a directory, one file per
// key, so results survive across CLI invocations. Writes go through a
// temp file + rename, so concurrent runners never observe a torn entry.
type FileCache struct {
	dir string
}

// NewFileCache creates (if needed) and opens a cache directory.
func NewFileCache(dir string) (*FileCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: cache dir: %w", err)
	}
	return &FileCache{dir: dir}, nil
}

// DefaultCacheDir returns the per-user shard cache location
// ($XDG_CACHE_HOME/vmdg or the OS equivalent).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "vmdg"), nil
}

// path maps a key to its file: a hash keeps names short and safe.
func (c *FileCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the stored payload.
func (c *FileCache) Get(key string) ([]byte, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put stores a payload atomically.
func (c *FileCache) Put(key string, payload []byte) {
	dst := c.path(key)
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return // cache misses are always recoverable; stay silent
	}
	name := tmp.Name()
	_, werr := tmp.Write(payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
	}
}
