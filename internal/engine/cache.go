package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vmdg/internal/core"
)

// cacheVersion invalidates every cached shard when the experiment
// definitions change shape. Bump it when a shard's payload layout or the
// meaning of a shard index changes.
//
// v3: fleet shards switched to aggregate burst sampling — the latency
// histogram is now settled by per-host multinomials and the event
// kernel fires a different (smaller) event count, so Latency and Fired
// in cached EnvStats payloads are not comparable with v2 entries even
// though the JSON shape is unchanged.
//
// v4: checkpoint migration — EnvStats grew the migration/transfer
// fields and scenario scopes grew the migration and bandwidth axes, so
// a v3 entry could satisfy a v4 key for a scenario that now means
// something different (and vice versa).
//
// v5: grouped burst settling — the latency histogram is settled by one
// multinomial chain per class on a shard-level stream instead of one
// per host, so Latency.Counts in cached EnvStats payloads are drawn
// differently than v4 entries (same distribution, different bytes).
const cacheVersion = "v5"

// buildFingerprint identifies the binary that produced a shard payload,
// so entries written by one build never serve another: any change to
// simulation or calibration code changes the executable, and with it
// every cache key. Unchanged source rebuilds reproducibly to the same
// binary, so the cache stays effective across `go run` invocations.
var buildFingerprint = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown-build"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown-build"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown-build"
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
})

// CacheKey derives the content key of one shard: the producing build,
// the experiment's cache scope, and the config's provenance string
// (every config field that can change the shard's payload; see
// core.Config.Provenance). Experiments sharing a scope (Figures 7 and
// 8) produce identical keys and therefore share cached work.
func CacheKey(scope string, cfg core.Config, shard int) string {
	cfg = normalize(cfg)
	return fmt.Sprintf("%s|%s|%s|%s|shard=%d",
		cacheVersion, buildFingerprint(), scope, cfg.Provenance(), shard)
}

// Cache stores shard payloads by content key. Implementations must be
// safe for concurrent use; Put may be called twice with the same key
// (two in-flight experiments sharing a scope) and must keep the entry
// readable throughout.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte)
}

// MemCache is an in-process Cache, used by tests and the benchmark
// harness.
type MemCache struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: map[string][]byte{}} }

// Get returns the stored payload.
func (c *MemCache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.m[key]
	return b, ok
}

// Put stores a payload.
func (c *MemCache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), payload...)
}

// Len reports the number of entries.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// FileCache persists shard payloads under a directory, one file per
// key, so results survive across CLI invocations. Writes go through a
// temp file + rename, so concurrent runners never observe a torn entry.
// Alongside the payloads it keeps a manifest store (the "manifests"
// subdirectory): the fold journals that make interrupted sweeps
// resumable. Stats, Prune, and Clear cover both, so the retention caps
// can never strand a manifest whose payloads were evicted.
//
// An optional in-memory tier (EnableMemTier) serves warm payloads
// without touching the directory; disk stays the durable source of
// truth and the tier is invalidated by Prune and Clear.
type FileCache struct {
	dir       string
	manifests *ManifestStore
	faults    *Faults
	mem       *memTier
}

// NewFileCache creates (if needed) and opens a cache directory.
func NewFileCache(dir string) (*FileCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: cache dir: %w", err)
	}
	return &FileCache{dir: dir, manifests: NewManifestStore(filepath.Join(dir, "manifests"))}, nil
}

// Manifests returns the cache's fold-journal store.
func (c *FileCache) Manifests() *ManifestStore { return c.manifests }

// DefaultMemTierBytes bounds the in-memory payload tier the CLI
// enables on every on-disk cache: generous enough to hold a whole warm
// sweep's shards, small next to the fleets' own working set.
const DefaultMemTierBytes int64 = 256 << 20 // 256 MiB

// EnableMemTier adds a bounded-bytes LRU payload tier in front of the
// directory: Get serves warm payloads from memory (filling on disk
// reads), Put writes through, and Prune/Clear invalidate, so the tier
// never vouches for bytes the directory no longer holds. maxBytes <= 0
// leaves the cache disk-only.
func (c *FileCache) EnableMemTier(maxBytes int64) {
	if maxBytes > 0 {
		c.mem = newMemTier(maxBytes)
	}
}

// MemStats reports the in-memory tier's contents and lifetime
// counters; ok is false when no tier is enabled.
func (c *FileCache) MemStats() (st MemTierStats, ok bool) {
	if c.mem == nil {
		return MemTierStats{}, false
	}
	return c.mem.stats(), true
}

// SetFaults attaches a fault-injection plan to the payload write path
// (tests only); the manifest store takes its own plan.
func (c *FileCache) SetFaults(f *Faults) { c.faults = f }

// DefaultCacheDir returns the per-user shard cache location
// ($XDG_CACHE_HOME/vmdg or the OS equivalent).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "vmdg"), nil
}

// keyHash is a cache key's filename stem, shared by the payload files
// and the manifest records, so a manifest reconciles against payloads
// by name alone.
func keyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a key to its file: a hash keeps names short and safe.
func (c *FileCache) path(key string) string {
	return filepath.Join(c.dir, keyHash(key)+".json")
}

// hasPayloadHash reports whether the payload file for a key hash still
// exists — the reconcile predicate for the manifest store.
func (c *FileCache) hasPayloadHash(h string) bool {
	_, err := os.Stat(filepath.Join(c.dir, h+".json"))
	return err == nil
}

// Get returns the stored payload, serving from the in-memory tier when
// enabled and filling it on disk reads.
func (c *FileCache) Get(key string) ([]byte, bool) {
	stem := keyHash(key)
	if c.mem != nil {
		if b, ok := c.mem.get(stem); ok {
			return b, true
		}
	}
	b, err := os.ReadFile(filepath.Join(c.dir, stem+".json"))
	if err != nil {
		return nil, false
	}
	if c.mem != nil {
		c.mem.add(stem, b)
	}
	return b, true
}

// Put stores a payload atomically.
func (c *FileCache) Put(key string, payload []byte) {
	dst := c.path(key)
	if _, err := c.faults.check(OpCreate, dst); err != nil {
		return // cache misses are always recoverable; stay silent
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	werr := faultyWrite(c.faults, tmp, dst, payload)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if _, err := c.faults.check(OpRename, dst); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return
	}
	if c.mem != nil {
		// Write through only after the rename: the tier must never hold
		// bytes the directory doesn't. Copy — the runner reuses buffers.
		c.mem.add(keyHash(key), append([]byte(nil), payload...))
	}
}

// Dir returns the cache directory.
func (c *FileCache) Dir() string { return c.dir }

// Default retention caps: entries older than DefaultMaxAge, or beyond
// DefaultMaxBytes of total payload (oldest first), are pruned. A
// million-host fleet writes a few thousand shard files per scenario, so
// without a cap the cache directory grows without bound across builds
// (every new binary re-keys everything it computes).
const (
	DefaultMaxAge   = 30 * 24 * time.Hour
	DefaultMaxBytes = 1 << 30 // 1 GiB
)

// CacheStats describes the on-disk cache contents: the shard payload
// files plus the fold manifests that make runs over them resumable.
type CacheStats struct {
	Entries int
	Bytes   int64
	Oldest  time.Time // zero when empty
	Newest  time.Time
	// Manifests counts the stored fold journals; Resumable counts the
	// incomplete ones (an interrupted run a re-run would pick up).
	Manifests     int
	Resumable     int
	ManifestBytes int64
	// ActiveRuns counts the manifests whose run lock is fresh: runs in
	// flight right now, which Prune protects and Clear refuses over.
	ActiveRuns int
}

// Stats scans the cache directory.
func (c *FileCache) Stats() (CacheStats, error) {
	var st CacheStats
	entries, err := c.entries()
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		st.Entries++
		st.Bytes += e.size
		if st.Oldest.IsZero() || e.mod.Before(st.Oldest) {
			st.Oldest = e.mod
		}
		if e.mod.After(st.Newest) {
			st.Newest = e.mod
		}
	}
	mis, err := c.manifests.List()
	if err != nil {
		return st, err
	}
	for _, mi := range mis {
		st.Manifests++
		st.ManifestBytes += mi.Bytes
		if !mi.Complete {
			st.Resumable++
		}
	}
	active, err := c.manifests.ActiveRuns()
	if err != nil {
		return st, err
	}
	st.ActiveRuns = len(active)
	return st, nil
}

// protectedHashes collects the payload key hashes the active runs'
// manifests vouch for — bytes a concurrent Prune must not evict, or the
// live folds those manifests journal would be stranded mid-run.
func (c *FileCache) protectedHashes() (map[string]bool, error) {
	active, err := c.manifests.ActiveRuns()
	if err != nil {
		return nil, err
	}
	if len(active) == 0 {
		return nil, nil
	}
	protected := map[string]bool{}
	for _, id := range active {
		m, err := c.manifests.Load(id)
		if err != nil || m == nil {
			continue // racing the run's own Start; its payloads are brand new anyway
		}
		for _, rec := range m.Records {
			protected[rec.KeyHash] = true
		}
	}
	return protected, nil
}

// Prune removes entries older than maxAge and then, oldest first,
// entries beyond maxBytes of total payload. Zero (or negative) caps
// mean "no cap" for that dimension. It reports what it removed. Prune
// is safe to run concurrently with readers and writers: a pruned entry
// is just a future cache miss — except for payloads an active run's
// manifest already vouches for, which are detected (via the run locks)
// and skipped, since evicting one would truncate a journal that is
// still being appended to.
func (c *FileCache) Prune(maxAge time.Duration, maxBytes int64) (removed int, freed int64, err error) {
	entries, err := c.entries()
	if err != nil {
		return 0, 0, err
	}
	protected, err := c.protectedHashes()
	if err != nil {
		return 0, 0, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod.Before(entries[j].mod) })
	var total int64
	for _, e := range entries {
		total += e.size
	}
	cutoff := time.Now().Add(-maxAge)
	for _, e := range entries {
		tooOld := maxAge > 0 && e.mod.Before(cutoff)
		tooBig := maxBytes > 0 && total > maxBytes
		if !tooOld && !tooBig {
			break // entries are oldest-first; the rest are younger and under budget
		}
		stem := strings.TrimSuffix(filepath.Base(e.path), ".json")
		if protected[stem] {
			continue // an active run's fold depends on these bytes; still counts against the cap
		}
		if os.Remove(e.path) == nil {
			removed++
			freed += e.size
			total -= e.size // an entry that survived removal still counts against the cap
			if c.mem != nil {
				c.mem.remove(stem)
			}
		}
	}
	// Evicting a payload invalidates every fold the manifests vouched
	// for past it: truncate each journal's cursor at its first missing
	// payload (and age-prune the journals themselves), so a resume
	// never trusts a record whose bytes are gone.
	mrem, mfreed, err := c.manifests.Reconcile(c.hasPayloadHash, maxAge)
	if err != nil {
		return removed, freed, err
	}
	return removed + mrem, freed + mfreed, nil
}

// Clear removes every entry and every manifest. Unlike Prune there is
// no way to clear "around" a live run — the manifests go too — so Clear
// refuses outright while any run lock is fresh.
func (c *FileCache) Clear() (removed int, freed int64, err error) {
	active, err := c.manifests.ActiveRuns()
	if err != nil {
		return 0, 0, err
	}
	if len(active) > 0 {
		return 0, 0, fmt.Errorf("engine: cache clear: %d active run(s); retry when they finish (locks go stale after %s)", len(active), LockStaleAfter)
	}
	entries, err := c.entries()
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		if os.Remove(e.path) == nil {
			removed++
			freed += e.size
		}
	}
	if c.mem != nil {
		c.mem.clear()
	}
	mrem, mfreed, err := c.manifests.Clear()
	if err != nil {
		return removed, freed, err
	}
	return removed + mrem, freed + mfreed, nil
}

type cacheEntry struct {
	path string
	size int64
	mod  time.Time
}

// entries lists the cache's payload files (tolerating entries that
// vanish mid-scan: concurrent runners prune too).
func (c *FileCache) entries() ([]cacheEntry, error) {
	dirents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("engine: cache dir: %w", err)
	}
	var out []cacheEntry
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, cacheEntry{
			path: filepath.Join(c.dir, de.Name()),
			size: info.Size(),
			mod:  info.ModTime(),
		})
	}
	return out, nil
}
