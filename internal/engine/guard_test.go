package engine

import (
	"os"
	"strings"
	"testing"
	"time"
)

func touchFile(path string, mod time.Time) error { return os.Chtimes(path, mod, mod) }

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// TestPruneAndClearRespectActiveRuns is the maintenance-vs-run
// regression test: while a fold journal is open (its run lock fresh),
// Prune must not evict the payloads the journal vouches for and must
// not touch the journal, and Clear must refuse outright; once the
// journal closes, both proceed normally.
func TestPruneAndClearRespectActiveRuns(t *testing.T) {
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	var keys, hashes []string
	for i := 0; i < 3; i++ {
		k := CacheKey("guard", cfg, i)
		keys = append(keys, k)
		hashes = append(hashes, keyHash(k))
		fc.Put(k, []byte(`{"shard":`+string(rune('0'+i))+`}`))
	}
	id := manifestIdentity(hashes)
	j, err := fc.Manifests().Start(id, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		b, _ := fc.Get(k)
		if err := j.Append(i, hashes[i], payloadDigest(b)); err != nil {
			t.Fatal(err)
		}
	}

	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveRuns != 1 {
		t.Fatalf("ActiveRuns = %d with an open journal, want 1", st.ActiveRuns)
	}

	// A byte cap that would evict everything must skip the journaled
	// payloads and leave the journal intact.
	removed, _, err := fc.Prune(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("Prune removed %d items from under an active run", removed)
	}
	for _, k := range keys {
		if _, ok := fc.Get(k); !ok {
			t.Fatalf("Prune evicted a payload the active run's journal vouches for")
		}
	}
	m, err := fc.Manifests().Load(id)
	if err != nil || m == nil || len(m.Records) != 3 {
		t.Fatalf("active journal disturbed: m=%+v err=%v", m, err)
	}

	if _, _, err := fc.Clear(); err == nil {
		t.Error("Clear succeeded over an active run")
	} else if !strings.Contains(err.Error(), "active run") {
		t.Errorf("Clear error %q does not name the active run", err)
	}

	// Closing the journal releases the lock; maintenance proceeds.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st, _ := fc.Stats(); st.ActiveRuns != 0 {
		t.Fatalf("ActiveRuns = %d after Close, want 0", st.ActiveRuns)
	}
	if removed, _, err := fc.Clear(); err != nil || removed == 0 {
		t.Fatalf("Clear after Close: removed=%d err=%v", removed, err)
	}
	for _, k := range keys {
		if _, ok := fc.Get(k); ok {
			t.Error("payload survived Clear")
		}
	}
}

// TestReconcileSkipsActiveAndCleansStaleLocks verifies the two lock
// edge cases: a fresh lock shields its journal from truncation even
// when a vouched payload is missing, and a stale lock (a run that died
// without closing) stops shielding and is itself removed.
func TestReconcileSkipsActiveAndCleansStaleLocks(t *testing.T) {
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := fc.Manifests()
	k := CacheKey("stale", quickCfg(), 0)
	h := keyHash(k)
	fc.Put(k, []byte(`{}`))
	b, _ := fc.Get(k)
	id := manifestIdentity([]string{h})
	j, err := store.Start(id, 2, nil) // 2 tasks: incomplete, resumable
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(0, h, payloadDigest(b)); err != nil {
		t.Fatal(err)
	}

	// Payload gone + lock fresh: Reconcile must leave the journal alone.
	missing := func(string) bool { return false }
	if _, _, err := store.Reconcile(missing, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := store.Load(id); m == nil || len(m.Records) != 1 {
		t.Fatalf("Reconcile disturbed a locked journal: %+v", m)
	}

	// Simulate a crash: the journal never closes, the lock goes stale.
	stale := time.Now().Add(-2 * LockStaleAfter)
	if err := touchFile(store.lockPath(id), stale); err != nil {
		t.Fatal(err)
	}
	if active, _ := store.ActiveRuns(); len(active) != 0 {
		t.Fatalf("stale lock still counted active: %v", active)
	}
	if _, _, err := store.Reconcile(missing, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := store.Load(id); m != nil {
		t.Errorf("journal with no valid payloads survived reconcile: %+v", m)
	}
	if fileExists(store.lockPath(id)) {
		t.Error("stale lock file survived reconcile")
	}
}
