package engine

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool any number of concurrent Runner.Run
// calls share. Each run keeps its own FIFO queue of span units; the
// pool's workers serve the queues round-robin, one unit per turn, so K
// concurrent runs each see ~1/K of the workers instead of every run
// spinning its own private pool and oversubscribing the machine K×.
// Everything that makes a single run deterministic — the span-chunk
// feeder, the permit-bounded reorder window, the in-order fold, the
// manifest journal — lives per run and is untouched by sharing; the
// pool only decides *which* run's next span a freed worker picks up.
//
// Runs sharing a Pool also share its single-flight group (see
// flight.go): a shard payload needed by several concurrent runs is
// computed once and handed to the rest from memory.
type Pool struct {
	workers int
	flights *FlightGroup

	mu      sync.Mutex
	cond    *sync.Cond
	queues  []*poolRun // runs with pending units, in round-robin order
	rr      int        // next queue to serve
	spawned int
	idle    int
	closed  bool
}

// NewPool creates a pool with the given worker count; <= 0 means
// GOMAXPROCS at creation time.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, flights: NewFlightGroup()}
	p.cond = sync.NewCond(&p.mu)
	return p
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide pool, created with GOMAXPROCS
// workers on first use. Long-lived multi-run processes (the serve
// daemon, the concurrency benchmark) hand it to every Runner so the
// whole process is bounded by one worker budget.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// Workers reports the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Flights returns the single-flight group shared by every run on this
// pool.
func (p *Pool) Flights() *FlightGroup { return p.flights }

// Close shuts the pool's workers down after their current units
// (tests). Units still queued are abandoned; a closed pool must not
// receive further submits.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// poolRun is one Run call's private queue inside the pool. Runs are
// registered implicitly: a run appears in the round-robin rotation
// while it has pending units and drops out when its queue drains, so
// finished runs cost the scheduler nothing.
type poolRun struct {
	p       *Pool
	pending []func()
	queued  bool // currently in p.queues
}

// register creates a run queue on the pool.
func (p *Pool) register() *poolRun { return &poolRun{p: p} }

// submit enqueues one unit. It never blocks: the caller's permit flow
// (the reorder window) already bounds how many units a run can have
// outstanding, so the queue is small by construction.
func (r *poolRun) submit(fn func()) {
	p := r.p
	p.mu.Lock()
	r.pending = append(r.pending, fn)
	if !r.queued {
		r.queued = true
		p.queues = append(p.queues, r)
	}
	if p.idle == 0 && p.spawned < p.workers {
		p.spawned++
		go p.worker()
	}
	p.cond.Signal()
	p.mu.Unlock()
}

// next pops one unit from the next run in the rotation. Popping a
// run's last unit removes the run from the rotation (it re-registers
// on its next submit); otherwise the cursor advances past it, so no
// run is served twice before every other pending run is served once.
func (p *Pool) next() (func(), bool) {
	if len(p.queues) == 0 {
		return nil, false
	}
	if p.rr >= len(p.queues) {
		p.rr = 0
	}
	q := p.queues[p.rr]
	fn := q.pending[0]
	q.pending[0] = nil
	q.pending = q.pending[1:]
	if len(q.pending) == 0 {
		q.queued = false
		q.pending = nil
		p.queues = append(p.queues[:p.rr], p.queues[p.rr+1:]...)
		// The cursor now indexes the run after the removed one.
	} else {
		p.rr++
	}
	return fn, true
}

func (p *Pool) worker() {
	p.mu.Lock()
	for {
		if p.closed {
			p.spawned--
			p.mu.Unlock()
			return
		}
		fn, ok := p.next()
		if !ok {
			p.idle++
			p.cond.Wait()
			p.idle--
			continue
		}
		p.mu.Unlock()
		fn()
		p.mu.Lock()
	}
}
