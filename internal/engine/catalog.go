package engine

import (
	"encoding/json"
	"fmt"
	"strings"

	"vmdg/internal/core"
	"vmdg/internal/report"
)

// This file wires the reproduction's generators from internal/core into
// the Default registry: the nine paper figures (through their shard
// decompositions) plus the ablation, sensitivity, and extension
// experiments.

// shardedFigure adapts a core.Sharded figure definition to Experiment.
type shardedFigure struct {
	def core.Sharded
}

func (f shardedFigure) Name() string               { return f.def.ID }
func (f shardedFigure) Title() string              { return f.def.Title }
func (f shardedFigure) Kind() Kind                 { return KindFigure }
func (f shardedFigure) Scope() string              { return f.def.CacheScope() }
func (f shardedFigure) Shards(cfg core.Config) int { return f.def.Shards(cfg) }

func (f shardedFigure) RunShard(cfg core.Config, shard int) ([]byte, error) {
	p, err := f.def.Run(cfg, shard)
	if err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

func (f shardedFigure) Merge(cfg core.Config, shards [][]byte) (*Outcome, error) {
	payloads := make([]core.ShardPayload, len(shards))
	for i, b := range shards {
		if err := json.Unmarshal(b, &payloads[i]); err != nil {
			return nil, fmt.Errorf("shard %d payload: %w", i, err)
		}
	}
	res, err := f.def.Assemble(cfg, payloads)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return &Outcome{Name: f.def.ID, Kind: KindFigure, Result: res, Raw: raw}, nil
}

// singleExp adapts a one-shot generator (the ablations and extensions,
// which the paper reports as single scenarios rather than bar sweeps).
type singleExp struct {
	name, title string
	kind        Kind
	run         func(core.Config) (any, error)
	// render folds the single shard's payload into the outcome's Result
	// and/or Text.
	render func(cfg core.Config, raw []byte, o *Outcome) error
}

func (e singleExp) Name() string           { return e.name }
func (e singleExp) Title() string          { return e.title }
func (e singleExp) Kind() Kind             { return e.kind }
func (e singleExp) Scope() string          { return e.name }
func (e singleExp) Shards(core.Config) int { return 1 }

func (e singleExp) RunShard(cfg core.Config, shard int) ([]byte, error) {
	if shard != 0 {
		return nil, fmt.Errorf("single-shard experiment got shard %d", shard)
	}
	v, err := e.run(cfg)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

func (e singleExp) Merge(cfg core.Config, shards [][]byte) (*Outcome, error) {
	o := &Outcome{Name: e.name, Kind: e.kind, Raw: shards[0]}
	if err := e.render(cfg, shards[0], o); err != nil {
		return nil, err
	}
	return o, nil
}

// decode unmarshals a shard payload into v with a uniform error shape.
func decode(raw []byte, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("payload: %w", err)
	}
	return nil
}

// natQueuePayload carries the NAT queue-structure ablation pair.
type natQueuePayload struct {
	SharedMbps, SplitMbps float64
}

// Default sweep grids for the sensitivity experiments; the calibrated
// values sit mid-grid so the sweeps bracket them.
var (
	busContentionKs = []float64{0, 0.225, 0.45, 0.675, 0.9}
	serviceDuties   = []float64{0.15, 0.30, 0.45, 0.60, 0.68}
)

// seriesText renders a swept report.Series as the outcome text.
func seriesText(raw []byte, o *Outcome) error {
	var s report.Series
	if err := decode(raw, &s); err != nil {
		return err
	}
	o.Text = s.Render()
	return nil
}

func init() {
	for _, def := range core.ShardedFigures() {
		Default.mustRegister(shardedFigure{def: def})
	}

	Default.mustRegister(singleExp{
		name:  "timesync",
		title: "Ablation A1 — external UDP timing vs the drifting guest clock (§2)",
		kind:  KindAblation,
		run:   func(cfg core.Config) (any, error) { return core.TimesyncAblation(cfg) },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var ts core.TimesyncResult
			if err := decode(raw, &ts); err != nil {
				return err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Ablation A1 — external UDP timing (§2 methodology)\n")
			fmt.Fprintf(&b, "  work unit true duration : %8.3f s\n", ts.TrueSeconds)
			fmt.Fprintf(&b, "  guest-clock measurement : %8.3f s (error %.1f%%)\n", ts.GuestSeconds, ts.GuestErr*100)
			fmt.Fprintf(&b, "  UDP-corrected           : %8.3f s (error %.2f%%)\n", ts.CorrectedSeconds, ts.CorrectedErr*100)
			o.Text = b.String()
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "migration",
		title: "Ablation A3 — checkpoint, migrate, and resume a work unit (§1)",
		kind:  KindAblation,
		run:   func(cfg core.Config) (any, error) { return core.MigrationAblation(cfg) },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var mig core.MigrationResult
			if err := decode(raw, &mig); err != nil {
				return err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Ablation A3 — checkpoint and migration (§1)\n")
			fmt.Fprintf(&b, "  chunks done on machine A: %d\n", mig.ChunksBeforeMigration)
			fmt.Fprintf(&b, "  chunks restored on B    : %d\n", mig.ChunksAfterRestore)
			fmt.Fprintf(&b, "  checkpoint blob         : %d bytes (overlay %d bytes)\n", mig.CheckpointBytes, mig.OverlayBytes)
			fmt.Fprintf(&b, "  unit completed on B     : %v\n", mig.UnitCompleted)
			o.Text = b.String()
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "memory",
		title: "Ablation — committed host RAM per environment (§4.2.1)",
		kind:  KindAblation,
		run:   func(core.Config) (any, error) { return core.MemoryFootprint() },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var res core.Result
			if err := decode(raw, &res); err != nil {
				return err
			}
			o.Result = &res
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "buscontention",
		title: "Sensitivity — shared-bus factor behind the 180% two-thread ceiling",
		kind:  KindSensitivity,
		run: func(cfg core.Config) (any, error) {
			return core.BusContentionSweep(cfg, busContentionKs)
		},
		render: func(_ core.Config, raw []byte, o *Outcome) error { return seriesText(raw, o) },
	})

	Default.mustRegister(singleExp{
		name:  "serviceduty",
		title: "Sensitivity — VMM host-service duty separating VmPlayer's intrusiveness",
		kind:  KindSensitivity,
		run: func(cfg core.Config) (any, error) {
			return core.ServiceDutySweep(cfg, serviceDuties)
		},
		render: func(_ core.Config, raw []byte, o *Outcome) error { return seriesText(raw, o) },
	})

	Default.mustRegister(singleExp{
		name:  "natqueue",
		title: "Sensitivity — shared NAT proxy queue vs split per-direction queues",
		kind:  KindSensitivity,
		run: func(cfg core.Config) (any, error) {
			shared, split, err := core.NATQueueAblation(cfg)
			if err != nil {
				return nil, err
			}
			return natQueuePayload{SharedMbps: shared, SplitMbps: split}, nil
		},
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var p natQueuePayload
			if err := decode(raw, &p); err != nil {
				return err
			}
			o.Text = fmt.Sprintf("Sensitivity — NAT queue structure\n  shared proxy queue: %.2f Mbps\n  split queues      : %.2f Mbps\n",
				p.SharedMbps, p.SplitMbps)
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "udploss",
		title: "Extension X1 — iperf -u: 10 Mbps UDP flood per network path",
		kind:  KindExtension,
		run:   func(cfg core.Config) (any, error) { return core.UDPLossExperiment(cfg) },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var results []core.UDPLossResult
			if err := decode(raw, &results); err != nil {
				return err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "Extension X1 — iperf -u: 10 Mbps UDP flood per network path\n")
			for _, r := range results {
				fmt.Fprintf(&b, "  %-14s delivered %6.2f Mbps  loss %5.1f%%  drops %d\n",
					r.Env, r.DeliveredMbps, r.LossFraction*100, r.Drops)
			}
			o.Text = b.String()
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "confinement",
		title: "Extension — VM core confinement (work-conservation negative result)",
		kind:  KindExtension,
		run:   func(cfg core.Config) (any, error) { return core.ConfinementExperiment(cfg) },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var conf core.ConfinementResult
			if err := decode(raw, &conf); err != nil {
				return err
			}
			o.Text = fmt.Sprintf("Extension — VM core confinement (work-conservation negative result)\n  host 7z 2-thread availability: unpinned %.1f%%, pinned %.1f%%\n",
				conf.UnpinnedPct, conf.PinnedPct)
			return nil
		},
	})

	Default.mustRegister(singleExp{
		name:  "multivm",
		title: "Extension A5 — one VM instance per core over a shared base image (§5)",
		kind:  KindExtension,
		run:   func(cfg core.Config) (any, error) { return core.MultiVMExperiment(cfg) },
		render: func(_ core.Config, raw []byte, o *Outcome) error {
			var multi core.MultiVMResult
			if err := decode(raw, &multi); err != nil {
				return err
			}
			o.Text = fmt.Sprintf("Extension A5 — one VM instance per core (shared base image)\n  work units: 1 VM = %d, 2 VMs = %d (scaling %.2fx)\n",
				multi.UnitsOneVM, multi.UnitsTwoVMs, multi.Scaling)
			return nil
		},
	})
}
