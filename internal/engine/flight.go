package engine

import (
	"context"
	"errors"
	"sync"
)

// FlightGroup deduplicates concurrent shard computations across runs,
// keyed by the shard's cache key. Within one run equal keys already
// collapse into a single task, so the group matters exactly when
// several Runner.Run calls overlap in time and in work — N tenants
// asking the same question must cost ~1× the simulation, not N×.
//
// The first run to need a key becomes its leader and computes the
// payload; runs arriving while the computation is in flight block and
// receive the leader's bytes from memory (a FlightHit in their Stats,
// a FlightShared in the leader's). The leader writes the payload to
// the shard cache *before* publishing, so a run arriving after the
// flight has landed finds the bytes as an ordinary cache hit — across
// any interleaving, each key is computed at most once per process.
//
// Determinism is unaffected: RunShard is a pure function of (cfg,
// shard), so the bytes a waiter receives are the bytes it would have
// computed.
type FlightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done    chan struct{}
	waiters int
	payload []byte
	err     error
}

// NewFlightGroup returns an empty group. Runs share flights by sharing
// a group (usually via a shared Pool).
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{inflight: map[string]*flightCall{}}
}

// lead either claims key's leadership (leader == true: the caller must
// compute and then publish with complete, on error too) or joins an
// existing flight (leader == false: wait on the returned call).
func (g *FlightGroup) lead(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.inflight[key]; ok {
		c.waiters++
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.inflight[key] = c
	return c, true
}

// complete publishes the leader's result, releases every waiter, and
// retires the flight; later arrivals for the key start a fresh one
// (and, when the payload was cached, resolve it as a cache hit
// instead). It returns the number of waiters served.
func (g *FlightGroup) complete(key string, c *flightCall, payload []byte, err error) int {
	g.mu.Lock()
	c.payload, c.err = payload, err
	n := c.waiters
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return n
}

// errFlightRetired is how a canceled leader hands a key back without
// poisoning its waiters: it never computed the payload, so waiters that
// still need it re-contend for leadership (after re-checking the cache)
// instead of failing their runs.
var errFlightRetired = errors.New("engine: flight retired by canceled leader")

// retire releases a flight the leader will not compute — its run was
// canceled between claiming leadership and simulating. Waiters receive
// errFlightRetired and restart the lead/wait cycle.
func (g *FlightGroup) retire(key string, c *flightCall) {
	g.complete(key, c, nil, errFlightRetired)
}

// abandon withdraws a canceled waiter from a flight still in progress,
// so the leader's FlightShared count reflects only deliveries someone
// received. A no-op once the flight completed or was replaced.
func (g *FlightGroup) abandon(key string, c *flightCall) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur, ok := g.inflight[key]; ok && cur == c {
		cur.waiters--
	}
}

// wait blocks until the flight's leader publishes, or the waiter's own
// context ends — a disconnected tenant must not stay parked on work
// another run is doing. A waiter that returns on its context must
// abandon the call.
func (c *flightCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.payload, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitersFor reports how many runs are currently blocked on key's
// flight (none when the key is not in flight). Tests use it to pin
// overlap deterministically.
func (g *FlightGroup) waitersFor(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.inflight[key]; ok {
		return c.waiters
	}
	return 0
}
