package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmdg/internal/core"
)

// fakeFolder is a fakeExp that also streams: it records the absorb
// order so tests can pin the in-order contract.
type fakeFolder struct {
	fakeExp
	t *testing.T
}

type fakeFold struct {
	f     *fakeFolder
	next  int
	total float64
	n     int
}

func (f *fakeFolder) Fold(cfg core.Config) (Fold, error) {
	return &fakeFold{f: f}, nil
}

func (fd *fakeFold) Absorb(shard int, payload []byte) error {
	if shard != fd.next {
		fd.f.t.Errorf("fold absorbed shard %d, want %d", shard, fd.next)
	}
	fd.next++
	var p map[string]float64
	if err := json.Unmarshal(payload, &p); err != nil {
		return err
	}
	fd.total += p["v"]
	fd.n++
	return nil
}

func (fd *fakeFold) Finish() (*Outcome, error) {
	if fd.n != fd.f.shards {
		return nil, fmt.Errorf("fold saw %d of %d shards", fd.n, fd.f.shards)
	}
	return &Outcome{
		Name: fd.f.name,
		Kind: KindFigure,
		Text: fmt.Sprintf("%s total %.3f over %d shards\n", fd.f.name, fd.total, fd.n),
	}, nil
}

// TestStreamingFoldMatchesBatchMerge runs the same experiment through
// the streaming path (as a Folder) and the batch path (plain
// Experiment) and requires identical outcomes for any worker count.
func TestStreamingFoldMatchesBatchMerge(t *testing.T) {
	const shards = 100
	batch := newFake("streamfake", shards)
	r := Runner{Workers: 1}
	want, _, err := r.Run(quickCfg(), []Experiment{batch})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		stream := &fakeFolder{fakeExp: fakeExp{name: "streamfake", shards: shards, fail: -1}, t: t}
		r := Runner{Workers: workers}
		got, stats, err := r.Run(quickCfg(), []Experiment{stream})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shards != shards {
			t.Fatalf("workers=%d: %d shards, want %d", workers, stats.Shards, shards)
		}
		if got[0].Render() != want[0].Render() {
			t.Fatalf("workers=%d: streaming outcome differs from batch:\n%s\nvs\n%s",
				workers, got[0].Render(), want[0].Render())
		}
	}
}

// TestStreamingFoldError verifies an absorb failure surfaces like a
// shard failure and aborts the run.
func TestStreamingFoldError(t *testing.T) {
	bad := &fakeFolder{fakeExp: fakeExp{name: "badfold", shards: 5, fail: 3}, t: t}
	r := Runner{Workers: 2}
	_, _, err := r.Run(quickCfg(), []Experiment{bad})
	if err == nil {
		t.Fatal("failing shard in a folder experiment did not surface an error")
	}
}

// TestEventsOrdered pins the OnEvent contract: exactly one shard event
// per task, in task order, from the collector, followed by one merge
// event per experiment — for any worker count.
func TestEventsOrdered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		fake := newFake("donefake", 23)
		var events []Event
		r := Runner{
			Workers: workers,
			OnEvent: func(ev Event) { events = append(events, ev) },
		}
		if _, _, err := r.Run(quickCfg(), []Experiment{fake}); err != nil {
			t.Fatal(err)
		}
		if len(events) != 24 {
			t.Fatalf("workers=%d: %d events, want 23 shard + 1 merge", workers, len(events))
		}
		for i, ev := range events[:23] {
			if ev.Kind != EventShardComputed {
				t.Fatalf("workers=%d: event %d kind %d, want computed", workers, i, ev.Kind)
			}
			if ev.Done != i+1 || ev.Total != 23 {
				t.Fatalf("workers=%d: event %d progress %d/%d not in task order", workers, i, ev.Done, ev.Total)
			}
			if ev.Experiment != "donefake" || ev.Shards != 23 {
				t.Fatalf("workers=%d: event %d misattributed: %+v", workers, i, ev)
			}
		}
		last := events[23]
		if last.Kind != EventExperimentMerged || last.Experiment != "donefake" || last.Done != 1 || last.Total != 1 {
			t.Fatalf("workers=%d: final event %+v, want a merge event", workers, last)
		}
	}
}

// TestEventsReportCacheHits checks a warm run emits cached-shard
// events.
func TestEventsReportCacheHits(t *testing.T) {
	fake := newFake("cachedfake", 5)
	cache := NewMemCache()
	r := Runner{Workers: 2, Cache: cache}
	if _, _, err := r.Run(quickCfg(), []Experiment{fake}); err != nil {
		t.Fatal(err)
	}
	cachedEvents := 0
	r.OnEvent = func(ev Event) {
		if ev.Kind == EventShardCached {
			cachedEvents++
		}
	}
	if _, _, err := r.Run(quickCfg(), []Experiment{fake}); err != nil {
		t.Fatal(err)
	}
	if cachedEvents != 5 {
		t.Fatalf("warm run emitted %d cached events, want 5", cachedEvents)
	}
}

// TestReorderWindowBounds sanity-checks the dispatch window floor and
// its growth with the span chunk: the window must always cover two
// full spans per worker, or the feeder would stall the pool waiting on
// permits the collector cannot return.
func TestReorderWindowBounds(t *testing.T) {
	if w := reorderWindow(1, 1); w != 16 {
		t.Errorf("reorderWindow(1, 1) = %d, want the floor 16", w)
	}
	if w := reorderWindow(8, 1); w != 32 {
		t.Errorf("reorderWindow(8, 1) = %d, want 32", w)
	}
	if w := reorderWindow(8, 8); w != 128 {
		t.Errorf("reorderWindow(8, 8) = %d, want 2 spans per worker = 128", w)
	}
	for workers := 1; workers <= 16; workers++ {
		for tasks := 1; tasks <= 600; tasks += 7 {
			chunk := spanChunk(tasks, workers)
			if chunk < 1 || chunk > 8 {
				t.Fatalf("spanChunk(%d, %d) = %d outside [1, 8]", tasks, workers, chunk)
			}
			if w := reorderWindow(workers, chunk); w < 2*chunk*workers {
				t.Fatalf("reorderWindow(%d, %d) = %d below two spans per worker", workers, chunk, w)
			}
		}
	}
}

func TestFileCachePrune(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fc.Put(fmt.Sprintf("key-%d", i), make([]byte, 100))
	}
	// Age two entries far past any cutoff.
	old := time.Now().Add(-48 * time.Hour)
	aged := 0
	entries, err := fc.entries()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if aged < 2 {
			if err := os.Chtimes(e.path, old, old); err != nil {
				t.Fatal(err)
			}
			aged++
		}
	}

	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5 || st.Bytes != 500 {
		t.Fatalf("stats = %+v, want 5 entries of 500 bytes", st)
	}

	removed, freed, err := fc.Prune(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 200 {
		t.Fatalf("age prune removed %d (%d bytes), want the 2 aged entries", removed, freed)
	}

	removed, _, err = fc.Prune(0, 250)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("size prune removed %d, want 1 (300 bytes down to <=250)", removed)
	}

	removed, _, err = fc.Clear()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("clear removed %d, want the remaining 2", removed)
	}
	st, _ = fc.Stats()
	if st.Entries != 0 {
		t.Fatalf("cache not empty after clear: %+v", st)
	}
	// Non-payload files are left alone.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fc.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("clear removed a non-cache file")
	}
}
