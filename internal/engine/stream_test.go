package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmdg/internal/core"
)

// fakeFolder is a fakeExp that also streams: it records the absorb
// order so tests can pin the in-order contract.
type fakeFolder struct {
	fakeExp
	t *testing.T
}

type fakeFold struct {
	f     *fakeFolder
	next  int
	total float64
	n     int
}

func (f *fakeFolder) Fold(cfg core.Config) (Fold, error) {
	return &fakeFold{f: f}, nil
}

func (fd *fakeFold) Absorb(shard int, payload []byte) error {
	if shard != fd.next {
		fd.f.t.Errorf("fold absorbed shard %d, want %d", shard, fd.next)
	}
	fd.next++
	var p map[string]float64
	if err := json.Unmarshal(payload, &p); err != nil {
		return err
	}
	fd.total += p["v"]
	fd.n++
	return nil
}

func (fd *fakeFold) Finish() (*Outcome, error) {
	if fd.n != fd.f.shards {
		return nil, fmt.Errorf("fold saw %d of %d shards", fd.n, fd.f.shards)
	}
	return &Outcome{
		Name: fd.f.name,
		Kind: KindFigure,
		Text: fmt.Sprintf("%s total %.3f over %d shards\n", fd.f.name, fd.total, fd.n),
	}, nil
}

// TestStreamingFoldMatchesBatchMerge runs the same experiment through
// the streaming path (as a Folder) and the batch path (plain
// Experiment) and requires identical outcomes for any worker count.
func TestStreamingFoldMatchesBatchMerge(t *testing.T) {
	const shards = 100
	batch := newFake("streamfake", shards)
	r := Runner{Workers: 1}
	want, _, err := r.Run(quickCfg(), []Experiment{batch})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		stream := &fakeFolder{fakeExp: fakeExp{name: "streamfake", shards: shards, fail: -1}, t: t}
		r := Runner{Workers: workers}
		got, stats, err := r.Run(quickCfg(), []Experiment{stream})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shards != shards {
			t.Fatalf("workers=%d: %d shards, want %d", workers, stats.Shards, shards)
		}
		if got[0].Render() != want[0].Render() {
			t.Fatalf("workers=%d: streaming outcome differs from batch:\n%s\nvs\n%s",
				workers, got[0].Render(), want[0].Render())
		}
	}
}

// TestStreamingFoldError verifies an absorb failure surfaces like a
// shard failure and aborts the run.
func TestStreamingFoldError(t *testing.T) {
	bad := &fakeFolder{fakeExp: fakeExp{name: "badfold", shards: 5, fail: 3}, t: t}
	r := Runner{Workers: 2}
	_, _, err := r.Run(quickCfg(), []Experiment{bad})
	if err == nil {
		t.Fatal("failing shard in a folder experiment did not surface an error")
	}
}

// TestShardDoneOrdered pins the ShardDone contract: called once per
// task, in task order, from the collector.
func TestShardDoneOrdered(t *testing.T) {
	fake := newFake("donefake", 23)
	var calls []int
	r := Runner{
		Workers:   4,
		ShardDone: func(done, total int) { calls = append(calls, done) },
	}
	if _, _, err := r.Run(quickCfg(), []Experiment{fake}); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 23 {
		t.Fatalf("ShardDone called %d times, want 23", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("ShardDone sequence %v not in task order", calls)
		}
	}
}

// TestReorderWindowBounds sanity-checks the dispatch window floor.
func TestReorderWindowBounds(t *testing.T) {
	if w := reorderWindow(1); w != 16 {
		t.Errorf("reorderWindow(1) = %d, want the floor 16", w)
	}
	if w := reorderWindow(8); w != 32 {
		t.Errorf("reorderWindow(8) = %d, want 32", w)
	}
}

func TestFileCachePrune(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fc.Put(fmt.Sprintf("key-%d", i), make([]byte, 100))
	}
	// Age two entries far past any cutoff.
	old := time.Now().Add(-48 * time.Hour)
	aged := 0
	entries, err := fc.entries()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if aged < 2 {
			if err := os.Chtimes(e.path, old, old); err != nil {
				t.Fatal(err)
			}
			aged++
		}
	}

	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 5 || st.Bytes != 500 {
		t.Fatalf("stats = %+v, want 5 entries of 500 bytes", st)
	}

	removed, freed, err := fc.Prune(24*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 || freed != 200 {
		t.Fatalf("age prune removed %d (%d bytes), want the 2 aged entries", removed, freed)
	}

	removed, _, err = fc.Prune(0, 250)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("size prune removed %d, want 1 (300 bytes down to <=250)", removed)
	}

	removed, _, err = fc.Clear()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("clear removed %d, want the remaining 2", removed)
	}
	st, _ = fc.Stats()
	if st.Entries != 0 {
		t.Fatalf("cache not empty after clear: %+v", st)
	}
	// Non-payload files are left alone.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fc.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("clear removed a non-cache file")
	}
}
