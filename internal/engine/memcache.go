package engine

import "sync"

// memTier is the bounded-bytes LRU payload tier a FileCache can keep
// above its directory: warm replays serve decoded-ready payload bytes
// straight from memory, skipping the open/read per shard file. Disk
// stays the durable source of truth — the tier is write-through on Put,
// filled on read on Get, and invalidated entry-by-entry by Prune and
// wholesale by Clear, so it can never vouch for bytes the directory no
// longer holds. Entries are keyed by the payload file's stem (the hex
// key hash), the same name Prune sees, so invalidation needs no
// key-to-file mapping.
//
// All methods are safe for concurrent use.
type memTier struct {
	mu       sync.Mutex
	max      int64
	bytes    int64
	entries  map[string]*memEntry
	lru      memEntry // sentinel ring: lru.next is most recent
	hits     uint64
	misses   uint64
	evicted  uint64
	inserted uint64
}

// memEntry is one cached payload on the LRU ring.
type memEntry struct {
	stem       string
	payload    []byte
	prev, next *memEntry
}

func newMemTier(maxBytes int64) *memTier {
	t := &memTier{max: maxBytes, entries: map[string]*memEntry{}}
	t.lru.prev, t.lru.next = &t.lru, &t.lru
	return t
}

func (t *memTier) unlink(e *memEntry) {
	e.prev.next, e.next.prev = e.next, e.prev
}

func (t *memTier) pushFront(e *memEntry) {
	e.prev, e.next = &t.lru, t.lru.next
	e.prev.next, e.next.prev = e, e
}

// get returns the payload and refreshes its recency. The returned
// slice is shared — callers treat payloads as read-only, exactly as
// they treat the runner's shard payloads.
func (t *memTier) get(stem string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[stem]
	if !ok {
		t.misses++
		return nil, false
	}
	t.hits++
	t.unlink(e)
	t.pushFront(e)
	return e.payload, true
}

// add inserts (or refreshes) a payload and evicts least-recently-used
// entries until the tier fits its byte bound again. A payload larger
// than the whole bound is not cached at all — it would only evict
// everything else for a single entry that cannot amortize.
func (t *memTier) add(stem string, payload []byte) {
	if int64(len(payload)) > t.max {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[stem]; ok {
		t.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		t.unlink(e)
		t.pushFront(e)
	} else {
		e = &memEntry{stem: stem, payload: payload}
		t.entries[stem] = e
		t.pushFront(e)
		t.bytes += int64(len(payload))
		t.inserted++
	}
	for t.bytes > t.max {
		last := t.lru.prev
		t.unlink(last)
		delete(t.entries, last.stem)
		t.bytes -= int64(len(last.payload))
		t.evicted++
	}
}

// remove drops one entry (payload pruned from disk).
func (t *memTier) remove(stem string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[stem]; ok {
		t.unlink(e)
		delete(t.entries, stem)
		t.bytes -= int64(len(e.payload))
	}
}

// clear drops every entry (cache cleared).
func (t *memTier) clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = map[string]*memEntry{}
	t.lru.prev, t.lru.next = &t.lru, &t.lru
	t.bytes = 0
}

// MemTierStats describes a FileCache's in-memory payload tier: its
// current contents plus process-lifetime hit/miss/eviction counters
// (serve-era dashboards scrape these through `dgrid cache -json`).
type MemTierStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate is Hits over all lookups, 0 when the tier was never read.
func (s MemTierStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (t *memTier) stats() MemTierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return MemTierStats{
		Entries:   len(t.entries),
		Bytes:     t.bytes,
		MaxBytes:  t.max,
		Hits:      t.hits,
		Misses:    t.misses,
		Evictions: t.evicted,
	}
}
