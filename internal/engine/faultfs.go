package engine

import (
	"errors"
	"io"
	"sync"
)

// This file is the engine's fault-injection seam. Every durable write
// the persistence layer performs — manifest journal headers, record
// appends, syncs, renames, shard payload files — consults a *Faults
// plan before touching the OS. Production runs carry a nil plan, which
// reduces to a nil check; tests attach a plan to fail the Nth write,
// tear the final record, or simulate a full disk, then assert that the
// resume path recovers to byte-identical output.

// Op classifies one persistence operation for fault matching.
type Op uint8

const (
	// OpCreate: creating a temp or journal file.
	OpCreate Op = iota
	// OpWrite: writing payload bytes (the only op a torn-write plan
	// can truncate).
	OpWrite
	// OpSync: fsync of a journal or temp file.
	OpSync
	// OpRename: the atomic rename publishing a file.
	OpRename
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	}
	return "unknown"
}

// ErrInjected is the default error a firing fault returns.
var ErrInjected = errors.New("injected fault")

// Faults is a programmable fault plan for the persistence layer. The
// zero value never fires; a nil *Faults is inert. Plans are safe for
// concurrent use (the pool's workers and the collector both persist).
type Faults struct {
	// FailAt fires the fault on the FailAt-th matched operation,
	// 1-based. Zero never fires.
	FailAt int
	// Match limits which operations count toward FailAt; nil matches
	// every operation.
	Match func(op Op, path string) bool
	// Err is what the failing operation returns (ErrInjected when nil).
	// Wrap syscall.ENOSPC here to simulate a full disk.
	Err error
	// TornBytes, for a failing OpWrite, writes this many bytes of the
	// record before failing — the torn final record an interrupted
	// write(2) leaves behind.
	TornBytes int
	// Crash makes every operation after the firing one fail too, as if
	// the process had died mid-run: no later sync, rename, or append
	// can rescue the file.
	Crash bool

	mu      sync.Mutex
	seen    int
	crashed bool
}

// check consults the plan before an operation. It returns how many
// payload bytes to write before failing (-1 = all; meaningful for
// OpWrite only) and the error the operation must return; a nil error
// means proceed normally.
func (f *Faults) check(op Op, path string) (torn int, err error) {
	if f == nil {
		return -1, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, f.failErr()
	}
	if f.Match != nil && !f.Match(op, path) {
		return -1, nil
	}
	f.seen++
	if f.FailAt == 0 || f.seen != f.FailAt {
		return -1, nil
	}
	if f.Crash {
		f.crashed = true
	}
	if op == OpWrite {
		return f.TornBytes, f.failErr()
	}
	return 0, f.failErr()
}

func (f *Faults) failErr() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// Seen reports how many matched operations the plan has observed —
// tests use it to size a FailAt for a follow-up run.
func (f *Faults) Seen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

// faultyWrite writes b through the plan: a firing fault may first write
// a torn prefix of the record, exactly as a crash between write(2)
// calls would leave on disk.
func faultyWrite(f *Faults, w io.Writer, path string, b []byte) error {
	torn, ferr := f.check(OpWrite, path)
	if ferr == nil {
		_, err := w.Write(b)
		return err
	}
	if torn > 0 {
		if torn > len(b) {
			torn = len(b)
		}
		w.Write(b[:torn]) // the torn prefix is the point; its error is moot
	}
	return ferr
}
