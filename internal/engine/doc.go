// Package engine is the reproduction's parallel experiment engine: a
// registry of every figure, ablation, and sensitivity experiment, and a
// runner that executes them across a worker pool.
//
// Each experiment is decomposed into shards — independent, deterministic
// units of work that boot their own simulated machine and share no
// mutable state — plus a pure merge step. The runner fans shards from
// every requested experiment into one pool, so independent experiments
// and independent repetitions overlap, while each individual simulation
// stays single-threaded (the sim kernel's determinism requirement).
// Because assembly is a pure function of the shard payloads, the
// engine's output is bit-identical for any worker count, and identical
// to the serial core.FigureN path.
//
// Shard results are content-keyed (experiment scope × seed × reps ×
// quick × shard) and cached, in memory or on disk, so repeated CLI and
// benchmark invocations skip completed work. Experiments that share a
// measurement set — Figures 7 and 8 both consume the ten 7z host-rate
// measurements — declare a common cache scope and reuse each other's
// shards.
//
// The built-in catalog (see catalog.go) registers the nine paper figures
// and the ablation/sensitivity/extension experiments in the Default
// registry; new experiments register with Register.
//
// Above single scenarios sits the sweep layer: NewSweep expands a
// declarative grid.Spec (a family of fleet scenarios with list-valued
// axes) into its cartesian grid and runs the whole grid as one
// experiment. Each sweep point is its own cache scope (ShardScoper),
// so widening an axis re-simulates only the new points, and the merge
// emits a single table, CSV, and JSON artifact keyed by the swept axis
// values. Runner progress is observable through the typed OnEvent
// callback: one shard event per task, in deterministic order, then one
// merge event per experiment.
package engine
