package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Fixed synthetic manifest content: golden fixtures must not depend on
// the build fingerprint (which real cache keys embed), so these tests
// journal hand-made identities and digests.
const (
	testIdentity = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	otherIdent   = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
)

func testRecord(i int) ManifestRecord {
	return ManifestRecord{
		Index:   i,
		KeyHash: fmt.Sprintf("%064x", 0x1000+i),
		Digest:  fmt.Sprintf("%064x", 0x2000+i),
	}
}

// writeJournal builds a journal with n records via the store API,
// optionally sealing it complete.
func writeJournal(t *testing.T, s *ManifestStore, identity string, tasks, n int, finish bool) {
	t.Helper()
	j, err := s.Start(identity, tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if err := j.Append(rec.Index, rec.KeyHash, rec.Digest); err != nil {
			t.Fatal(err)
		}
	}
	if finish {
		if err := j.Finish(); err != nil {
			t.Fatal(err)
		}
	} else if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRoundTrip covers the happy path: start, append, finish,
// load, and the resumed restart that keeps a verified prefix.
func TestJournalRoundTrip(t *testing.T) {
	s := NewManifestStore(t.TempDir())
	writeJournal(t, s, testIdentity, 3, 3, true)

	m, err := s.Load(testIdentity)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || !m.Complete || m.Torn || m.Cursor() != 3 || m.Tasks != 3 || m.Cache != cacheVersion {
		t.Fatalf("loaded manifest %+v", m)
	}
	for i, rec := range m.Records {
		if rec != testRecord(i) {
			t.Errorf("record %d = %+v, want %+v", i, rec, testRecord(i))
		}
	}

	// A resumed restart keeps the first two records and appends a new
	// third; the rewrite is total, so the done line is gone.
	j, err := s.Start(testIdentity, 3, m.Records[:2])
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, testRecord(2).KeyHash, testRecord(2).Digest); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err = s.Load(testIdentity)
	if err != nil {
		t.Fatal(err)
	}
	if m.Complete || m.Cursor() != 3 {
		t.Fatalf("restarted manifest %+v", m)
	}

	if m, err := s.Load(otherIdent); m != nil || err != nil {
		t.Fatalf("absent manifest loaded as %+v, %v", m, err)
	}
}

// TestJournalAppendContract pins the append-order and post-close
// errors.
func TestJournalAppendContract(t *testing.T) {
	s := NewManifestStore(t.TempDir())
	j, err := s.Start(testIdentity, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, testRecord(1).KeyHash, testRecord(1).Digest); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := j.Append(0, testRecord(0).KeyHash, testRecord(0).Digest); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(); err == nil {
		t.Error("finish with missing records accepted")
	}
	if err := j.Append(1, testRecord(1).KeyHash, testRecord(1).Digest); err == nil {
		t.Error("append after close accepted")
	}
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestGoldenManifestFormat pins the on-disk journal bytes — the format
// is a compatibility surface (a new build must be able to resume a
// journal an older run of the same version left behind), so any change
// here must bump manifestVersion.
func TestGoldenManifestFormat(t *testing.T) {
	s := NewManifestStore(t.TempDir())

	writeJournal(t, s, testIdentity, 4, 2, false)
	b, err := os.ReadFile(s.path(testIdentity))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("manifest", "journal_partial.manifest"), string(b))

	writeJournal(t, s, testIdentity, 2, 2, true)
	b, err = os.ReadFile(s.path(testIdentity))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("manifest", "journal_complete.manifest"), string(b))
}

// TestManifestCorruptTail is the damage table: every way a crash or a
// lost page can mangle the file, and the prefix the loader must
// salvage from it.
func TestManifestCorruptTail(t *testing.T) {
	s := NewManifestStore(t.TempDir())
	writeJournal(t, s, testIdentity, 3, 3, true)
	intact, err := os.ReadFile(s.path(testIdentity))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(intact), "\n") // header, 3 records, done, ""
	prefix := func(n int) string { return strings.Join(lines[:n], "") }

	cases := []struct {
		name     string
		data     string
		cursor   int
		complete bool
		torn     bool
	}{
		{"intact", string(intact), 3, true, false},
		{"missing done line", prefix(4), 3, false, false},
		{"torn final record", prefix(3) + lines[3][:len(lines[3])/2], 2, false, true},
		{"truncated mid-journal", prefix(2), 1, false, false},
		{"flipped digest byte", prefix(3) + strings.Replace(lines[3], testRecord(2).Digest[:8], "deadbeef", 1) + lines[4], 2, false, true},
		{"flipped crc byte", prefix(4) + strings.Replace(lines[4], "#", "#f", 1), 3, false, true},
		{"garbage tail", prefix(4) + "not a sealed line\n", 3, false, true},
		{"garbage then done", prefix(2) + "junk\n" + lines[4], 1, false, true},
		{"record index gap", prefix(2) + lines[3] + lines[4], 1, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := parseManifest(testIdentity, []byte(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			if m.Cursor() != tc.cursor || m.Complete != tc.complete || m.Torn != tc.torn {
				t.Errorf("cursor=%d complete=%t torn=%t, want %d/%t/%t",
					m.Cursor(), m.Complete, m.Torn, tc.cursor, tc.complete, tc.torn)
			}
		})
	}
}

// TestManifestHeaderErrors is the error-path table for unusable
// journals: these must fail Load outright (the runner then starts a
// fresh manifest) rather than salvage a prefix.
func TestManifestHeaderErrors(t *testing.T) {
	goodHeader := fmt.Sprintf("vmdg-manifest v%d id=%s tasks=3 cache=%s", manifestVersion, testIdentity, cacheVersion)
	cases := []struct {
		name    string
		data    string
		wantVer bool // errors.Is(err, ErrManifestVersion)
	}{
		{"empty file", "", false},
		{"torn header", sealLine(goodHeader)[:10], false},
		{"wrong magic", sealLine("vmdg-something v1 id=x tasks=3 cache=v4"), false},
		{"corrupt header crc", strings.Replace(sealLine(goodHeader), "#", "#0", 1), false},
		{"future version", sealLine(strings.Replace(goodHeader, fmt.Sprintf("v%d", manifestVersion), fmt.Sprintf("v%d", manifestVersion+1), 1)), true},
		{"identity mismatch", sealLine(fmt.Sprintf("vmdg-manifest v%d id=%s tasks=3 cache=%s", manifestVersion, otherIdent, cacheVersion)), false},
		{"negative tasks", sealLine(fmt.Sprintf("vmdg-manifest v%d id=%s tasks=-1 cache=%s", manifestVersion, testIdentity, cacheVersion)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := parseManifest(testIdentity, []byte(tc.data))
			if err == nil {
				t.Fatalf("parsed as %+v, want error", m)
			}
			if got := errors.Is(err, ErrManifestVersion); got != tc.wantVer {
				t.Errorf("ErrManifestVersion=%t (%v), want %t", got, err, tc.wantVer)
			}
		})
	}
}

// TestFileCachePruneReconcilesManifests covers the lifecycle contract:
// evicting a payload truncates every journal cursor that vouched for
// it, evicting all of a journal's payloads removes the journal, and
// Clear leaves nothing behind. Stats counts both populations.
func TestFileCachePruneReconcilesManifests(t *testing.T) {
	fc, err := NewFileCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Four payloads, one journal vouching for all four.
	keys := make([]string, 4)
	var recs []ManifestRecord
	for i := range keys {
		keys[i] = fmt.Sprintf("scope|cfg|shard=%d", i)
		payload := []byte(fmt.Sprintf(`{"v":%d}`, i))
		fc.Put(keys[i], payload)
		recs = append(recs, ManifestRecord{Index: i, KeyHash: keyHash(keys[i]), Digest: payloadDigest(payload)})
	}
	j, err := fc.Manifests().Start(testIdentity, 4, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}

	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 4 || st.Manifests != 1 || st.Resumable != 0 || st.ManifestBytes == 0 {
		t.Fatalf("stats %+v", st)
	}

	// Evict payload 2 by hand (as an age/size prune would) and prune
	// with inert caps: reconciliation must truncate the cursor to 2 —
	// payloads 0 and 1 are still vouched for, 3 is stranded past the
	// gap — and the complete journal becomes resumable.
	if err := os.Remove(filepath.Join(fc.Dir(), keyHash(keys[2])+".json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fc.Prune(0, 0); err != nil {
		t.Fatal(err)
	}
	m, err := fc.Manifests().Load(testIdentity)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Cursor() != 2 || m.Complete {
		t.Fatalf("after payload eviction: %+v", m)
	}
	if st, _ = fc.Stats(); st.Resumable != 1 {
		t.Fatalf("truncated manifest not counted resumable: %+v", st)
	}

	// An age prune that evicts every payload must take the journal with
	// it: nothing it vouches for survives.
	time.Sleep(10 * time.Millisecond)
	if _, _, err := fc.Prune(time.Nanosecond, 0); err != nil {
		t.Fatal(err)
	}
	if st, _ = fc.Stats(); st.Entries != 0 || st.Manifests != 0 {
		t.Fatalf("after full age prune: %+v", st)
	}

	// Clear removes journals alongside payloads.
	fc.Put(keys[0], []byte(`{"v":0}`))
	writeJournal(t, fc.Manifests(), otherIdent, 2, 0, false)
	removed, _, err := fc.Clear()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("clear removed %d files, want 2 (payload + manifest)", removed)
	}
	if st, _ = fc.Stats(); st.Entries != 0 || st.Manifests != 0 {
		t.Fatalf("after clear: %+v", st)
	}
}

// TestManifestStoreList pins the listing the CLI's `cache show` prints:
// sorted, with cursor/complete/torn state.
func TestManifestStoreList(t *testing.T) {
	s := NewManifestStore(t.TempDir())
	if mis, err := s.List(); err != nil || len(mis) != 0 {
		t.Fatalf("empty store listed %v, %v", mis, err)
	}
	writeJournal(t, s, otherIdent, 5, 2, false)
	writeJournal(t, s, testIdentity, 3, 3, true)
	mis, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != 2 {
		t.Fatalf("listed %d manifests, want 2", len(mis))
	}
	if mis[0].Identity != testIdentity || !mis[0].Complete || mis[0].Cursor != 3 || mis[0].Tasks != 3 {
		t.Errorf("first listing %+v", mis[0])
	}
	if mis[1].Identity != otherIdent || mis[1].Complete || mis[1].Cursor != 2 || mis[1].Tasks != 5 {
		t.Errorf("second listing %+v", mis[1])
	}
}
