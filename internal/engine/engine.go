package engine

import (
	"encoding/json"
	"strings"

	"vmdg/internal/core"
)

// Kind classifies an experiment for listing and selection.
type Kind string

const (
	// KindFigure is one of the paper's nine figures.
	KindFigure Kind = "figure"
	// KindAblation is a methodology ablation (timing, migration, memory).
	KindAblation Kind = "ablation"
	// KindSensitivity sweeps a calibrated model parameter.
	KindSensitivity Kind = "sensitivity"
	// KindExtension is an experiment beyond the paper (UDP loss,
	// confinement, multi-VM).
	KindExtension Kind = "extension"
	// KindFleet is a desktop-grid fleet scenario (internal/grid):
	// thousands of churning volunteer hosts under a scheduling policy.
	KindFleet Kind = "fleet"
	// KindSweep is a declarative scenario sweep (grid.Spec): the
	// cartesian grid over a spec's swept axes, merged into one
	// cross-scenario table.
	KindSweep Kind = "sweep"
)

// Experiment is one entry of the registry: a named, sharded, mergeable
// unit of the reproduction.
//
// RunShard must be deterministic in (cfg, shard), must not share mutable
// state with other shards, and must return a JSON document that
// round-trips exactly (the cache stores and replays these bytes). Merge
// must be a pure function of the shard payloads — the engine calls it
// once, after every shard completed, regardless of completion order.
type Experiment interface {
	// Name identifies the experiment ("fig1", "timesync", ...).
	Name() string
	// Title is a one-line human description.
	Title() string
	// Kind classifies the experiment.
	Kind() Kind
	// Scope names the cache-sharing domain; experiments with equal
	// scopes and configs share shard results.
	Scope() string
	// Shards reports the number of independent units for cfg.
	Shards(cfg core.Config) int
	// RunShard executes one unit and returns its JSON payload.
	RunShard(cfg core.Config, shard int) ([]byte, error)
	// Merge folds the payloads (indexed by shard) into an Outcome.
	Merge(cfg core.Config, shards [][]byte) (*Outcome, error)
}

// Outcome is one completed experiment.
type Outcome struct {
	// Name and Kind echo the experiment.
	Name string
	Kind Kind
	// Result holds the figure for figure-shaped experiments (and the
	// memory-footprint ablation); nil otherwise.
	Result *core.Result
	// Text is the pre-rendered report for experiments without a figure.
	Text string
	// CSVText is the pre-rendered CSV for experiments whose tabular
	// form does not come from a core.Result figure (fleet scenarios).
	CSVText string
	// Raw is the merged payload, for JSON artifacts.
	Raw json.RawMessage
}

// Render returns the outcome's ASCII report: the figure, its detail
// series, and the paper-vs-measured comparison where the paper publishes
// targets; or the experiment's own text.
func (o *Outcome) Render() string {
	var b strings.Builder
	if o.Result != nil {
		b.WriteString(o.Result.Figure.Render())
		if o.Result.Series != nil {
			b.WriteByte('\n')
			b.WriteString(o.Result.Series.Render())
		}
		if cmp := PaperComparison(o.Result); cmp != "" {
			b.WriteByte('\n')
			b.WriteString(cmp)
		}
	}
	if o.Text != "" {
		b.WriteString(o.Text)
	}
	return b.String()
}

// CSV returns the outcome's machine-readable form, or "" when the
// experiment has no tabular data.
func (o *Outcome) CSV() string {
	if o.CSVText != "" {
		return o.CSVText
	}
	if o.Result == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(o.Result.Figure.CSV())
	if o.Result.Series != nil {
		b.WriteString(o.Result.Series.CSV())
	}
	return b.String()
}

// normalize pins the config fields that key the cache, so Reps==0 and
// Reps==3 (the documented default) hit the same entries.
func normalize(cfg core.Config) core.Config {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	return cfg
}
