package engine

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMemTierLRUEviction exercises the tier in isolation: byte-bounded
// LRU order, oversize skip, removal, clear, and the stats counters.
func TestMemTierLRUEviction(t *testing.T) {
	tier := newMemTier(10)
	tier.add("a", []byte("aaaa"))
	tier.add("b", []byte("bbbb"))
	if _, ok := tier.get("a"); !ok { // refresh: "b" is now the LRU entry
		t.Fatal("warm entry missed")
	}
	tier.add("c", []byte("cccc")) // 12 bytes > 10: evicts "b"
	if _, ok := tier.get("b"); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, stem := range []string{"a", "c"} {
		if _, ok := tier.get(stem); !ok {
			t.Errorf("entry %q evicted out of LRU order", stem)
		}
	}

	tier.add("huge", make([]byte, 11)) // larger than the whole bound
	if _, ok := tier.get("huge"); ok {
		t.Error("oversize payload was cached")
	}

	tier.remove("a")
	if _, ok := tier.get("a"); ok {
		t.Error("removed entry still served")
	}

	st := tier.stats()
	if st.Entries != 1 || st.Bytes != 4 || st.MaxBytes != 10 {
		t.Errorf("stats = %+v, want 1 entry / 4 bytes / max 10", st)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits == 0 || st.Misses == 0 || st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("counters hits=%d misses=%d rate=%f look wrong", st.Hits, st.Misses, st.HitRate())
	}

	tier.clear()
	if st := tier.stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after clear: %d entries, %d bytes", st.Entries, st.Bytes)
	}
}

// TestFileCacheMemTierServesAndInvalidates pins the FileCache wiring:
// Put writes through, Get serves from memory even after the backing
// file is gone, disk reads fill the tier, and Prune/Clear invalidate.
func TestFileCacheMemTierServesAndInvalidates(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc.EnableMemTier(1 << 20)
	cfg := quickCfg()

	// Write-through: the payload survives losing its file.
	k0 := CacheKey("memtier", cfg, 0)
	fc.Put(k0, []byte(`{"v":0}`))
	if err := os.Remove(filepath.Join(dir, keyHash(k0)+".json")); err != nil {
		t.Fatal(err)
	}
	if b, ok := fc.Get(k0); !ok || string(b) != `{"v":0}` {
		t.Fatalf("mem tier did not serve after file removal: ok=%v payload=%s", ok, b)
	}

	// Fill-on-read: a cold tier warms from the disk read.
	k1 := CacheKey("memtier", cfg, 1)
	fc.Put(k1, []byte(`{"v":1}`))
	fc2, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc2.EnableMemTier(1 << 20)
	if _, ok := fc2.Get(k1); !ok {
		t.Fatal("disk entry missed")
	}
	if err := os.Remove(filepath.Join(dir, keyHash(k1)+".json")); err != nil {
		t.Fatal(err)
	}
	if b, ok := fc2.Get(k1); !ok || string(b) != `{"v":1}` {
		t.Fatal("tier was not filled by the disk read")
	}
	if st, ok := fc2.MemStats(); !ok || st.Hits == 0 {
		t.Errorf("MemStats = %+v, %v; want at least one hit", st, ok)
	}

	// Prune invalidates entry-by-entry: the pruned payload must miss,
	// not be served from stale memory.
	k2 := CacheKey("memtier", cfg, 2)
	fc.Put(k2, []byte(`{"v":2}`))
	if _, ok := fc.Get(k2); !ok {
		t.Fatal("fresh entry missed")
	}
	if _, _, err := fc.Prune(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := fc.Get(k2); ok {
		t.Error("pruned entry still served from the mem tier")
	}

	// Clear invalidates wholesale — including entries whose file was
	// already gone.
	if _, ok := fc.Get(k0); !ok {
		t.Fatal("k0 should still be in memory")
	}
	if _, _, err := fc.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fc.Get(k0); ok {
		t.Error("cleared entry still served from the mem tier")
	}
}

// TestFileCacheWithoutMemTier pins the default: no tier, MemStats
// reports absence, Get/Put stay purely disk-backed.
func TestFileCacheWithoutMemTier(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fc.MemStats(); ok {
		t.Error("MemStats reported a tier that was never enabled")
	}
	key := CacheKey("notier", quickCfg(), 0)
	fc.Put(key, []byte(`{}`))
	if err := os.Remove(filepath.Join(dir, keyHash(key)+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fc.Get(key); ok {
		t.Error("disk-only cache served a removed file")
	}
}
