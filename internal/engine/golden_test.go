package engine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// -update regenerates the golden fixtures under testdata/golden. See
// the twin flag in internal/grid for when that is (and is not) okay.
var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenSweepSpec is the canonical sweep fixture: a policy × machines
// grid through the full engine path (spec expansion, pooled shards,
// streaming fold, axis-keyed rendering).
func goldenSweepSpec() grid.Spec {
	return grid.Spec{
		Version:  grid.SpecVersion,
		Seed:     1,
		Quick:    true,
		Envs:     []string{"vmplayer"},
		Machines: []int{60, 90},
		Minutes:  []int{30},
		Churn:    []bool{true},
		Policy:   []string{"fifo", "deadline"},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test ./internal/engine -run Golden -update`): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the golden fixture.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// runGoldenSweep runs spec through the engine and returns the outcome.
func runGoldenSweep(t *testing.T, spec grid.Spec) *Outcome {
	t.Helper()
	exp, err := NewSweep("sweep", "golden sweep", spec)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 4, Cache: NewMemCache()}
	outs, _, err := r.Run(core.Config{Seed: spec.Seed, Quick: spec.Quick}, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

// TestGoldenSweepTable pins the merged sweep table and CSV end to end.
// The fixture predates checkpoint migration, so a default
// (migration=none) sweep must keep matching it byte for byte.
func TestGoldenSweepTable(t *testing.T) {
	o := runGoldenSweep(t, goldenSweepSpec())
	checkGolden(t, "sweep_policy_machines.txt", o.Render())
	checkGolden(t, "sweep_policy_machines.csv", o.CSV())
}

// goldenMigSweepSpec is the migration acceptance grid: every migration
// policy crossed with a contended and an uncontended server frontend.
func goldenMigSweepSpec() grid.Spec {
	return grid.Spec{
		Version:   grid.SpecVersion,
		Seed:      1,
		Quick:     true,
		Envs:      []string{"vmplayer"},
		Machines:  []int{300},
		Minutes:   []int{120},
		Churn:     []bool{true},
		Policy:    []string{"fifo"},
		Migration: []string{"none", "on-departure", "eager"},
		Bandwidth: []float64{100, 1000},
	}
}

// TestGoldenMigrationSweep pins the migration × bandwidth sweep and
// checks it is bit-identical across worker counts 1, 4, and 8 — the
// determinism contract for the new axes.
func TestGoldenMigrationSweep(t *testing.T) {
	spec := goldenMigSweepSpec()
	base := runGoldenSweep(t, spec)
	checkGolden(t, "sweep_migration_bandwidth.txt", base.Render())
	checkGolden(t, "sweep_migration_bandwidth.csv", base.CSV())
	for _, workers := range []int{4, 8} {
		exp, err := NewSweep("sweep", "golden sweep", spec)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Workers: workers, Cache: NewMemCache()}
		outs, _, err := r.Run(core.Config{Seed: spec.Seed, Quick: spec.Quick}, []Experiment{exp})
		if err != nil {
			t.Fatal(err)
		}
		if outs[0].Render() != base.Render() || outs[0].CSV() != base.CSV() ||
			!bytes.Equal(outs[0].Raw, base.Raw) {
			t.Fatalf("migration sweep differs at %d workers", workers)
		}
	}
}
