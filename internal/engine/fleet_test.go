package engine

import (
	"bytes"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// testFleetScn is small enough for unit tests but still multi-shard,
// so the worker pool genuinely interleaves shard execution.
func testFleetScn() grid.Scenario {
	return grid.Scenario{
		Machines: 3*grid.ShardSize/2 + 10, Minutes: 45,
		Churn: true, Policy: "deadline", FaultyFrac: 0.02,
		Envs: []string{"vmplayer"},
	}
}

// TestFleetWorkerCountInvariance is the fleet determinism contract end
// to end: the same seed must produce bit-identical work-unit counts,
// latency percentiles, and artifacts for any worker count.
func TestFleetWorkerCountInvariance(t *testing.T) {
	cfg := core.Config{Seed: 3, Quick: true}
	var outs []*Outcome
	for _, workers := range []int{1, 7} {
		r := &Runner{Workers: workers, Cache: NewMemCache()}
		exp := FleetScenario("fleet", "t", testFleetScn())
		got, stats, err := r.Run(cfg, []Experiment{exp})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shards != 2 {
			t.Fatalf("expected a 2-shard fleet, got %d shards", stats.Shards)
		}
		outs = append(outs, got[0])
	}
	if outs[0].Render() != outs[1].Render() {
		t.Fatalf("rendered fleet differs across worker counts:\n%s\nvs\n%s",
			outs[0].Render(), outs[1].Render())
	}
	if !bytes.Equal(outs[0].Raw, outs[1].Raw) {
		t.Fatal("fleet JSON payload differs across worker counts")
	}
	if outs[0].CSV() != outs[1].CSV() || outs[0].CSV() == "" {
		t.Fatal("fleet CSV differs across worker counts or is empty")
	}
}

// TestFleetCacheReplay checks that a fleet replayed entirely from the
// shard cache merges to the identical outcome.
func TestFleetCacheReplay(t *testing.T) {
	cfg := core.Config{Seed: 5, Quick: true}
	cache := NewMemCache()
	exp := FleetScenario("fleet", "t", testFleetScn())

	r := &Runner{Workers: 4, Cache: cache}
	first, stats, err := r.Run(cfg, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != stats.Shards {
		t.Fatalf("cold run: %d misses for %d shards", stats.Misses, stats.Shards)
	}
	second, stats, err := r.Run(cfg, []Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != stats.Shards {
		t.Fatalf("warm run: %d hits for %d shards", stats.Hits, stats.Shards)
	}
	if !bytes.Equal(first[0].Raw, second[0].Raw) {
		t.Fatal("cache replay changed the merged fleet")
	}
}

// TestFleetRegistered checks the built-in fleet catalog: both
// scenarios resolve, shard counts are positive, and the policy
// comparison enumerates one variant per policy.
func TestFleetRegistered(t *testing.T) {
	cfg := core.Config{Seed: 1, Quick: true}
	for _, name := range []string{"fleetchurn", "fleetpolicy"} {
		e, ok := Default.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if e.Kind() != KindFleet {
			t.Fatalf("%s kind = %s", name, e.Kind())
		}
		if e.Shards(cfg) < 1 {
			t.Fatalf("%s has no shards", name)
		}
	}
	fp, _ := Default.Lookup("fleetpolicy")
	want := len(grid.Policies())
	if got := fp.(fleetExperiment).resolve(cfg); len(got) != want {
		t.Fatalf("fleetpolicy has %d variants, want %d", len(got), want)
	}
}

// TestFleetScopeDistinguishesScenarios ensures scenario parameters
// reach the cache key: different policies must never share shards.
func TestFleetScopeDistinguishesScenarios(t *testing.T) {
	a := testFleetScn()
	b := testFleetScn()
	b.Policy = "replication"
	sa := FleetScenario("fleet", "t", a).Scope()
	sb := FleetScenario("fleet", "t", b).Scope()
	if sa == sb {
		t.Fatalf("scenarios with different policies share scope %q", sa)
	}
}
