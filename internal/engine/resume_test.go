package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"vmdg/internal/core"
	"vmdg/internal/grid"
)

// This file is the adversarial half of the durable-fold subsystem: the
// fault plans from faultfs.go kill the journal mid-fold — clean error,
// simulated process death, torn record, full disk — and every test's
// acceptance bar is the same: the resumed run's table, CSV, and JSON
// must be byte-identical to an uninterrupted run, with only the missing
// shards re-simulated.

// journalWrites matches the journal's record appends (the manifest
// file's OpWrite stream: op 1 is the Start header, op 1+k is record k).
func journalWrites(op Op, path string) bool {
	return op == OpWrite && filepath.Ext(path) == manifestExt
}

// durableRunner builds a Runner whose cache and manifest store live
// under dir, with an optional fault plan on the store.
func durableRunner(t *testing.T, dir string, workers int, f *Faults) *Runner {
	t.Helper()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc.Manifests().SetFaults(f)
	return &Runner{Workers: workers, Cache: fc, Manifests: fc.Manifests()}
}

// runOnce runs one experiment build on a fresh runner.
func runOnce(t *testing.T, r *Runner, cfg core.Config, build func() Experiment) ([]*Outcome, Stats, error) {
	t.Helper()
	return r.Run(cfg, []Experiment{build()})
}

// TestResumeKillProperty is the acceptance property loop: for seeded
// random sweep specs, crash the fold at a random task via the fault
// hook (simulated process death: every persistence op after the Nth
// journal append fails), resume with a clean runner over the same
// cache, and require
//
//   - output bytes (table, CSV, JSON) identical to an uninterrupted run,
//   - crash misses + resume misses == total tasks (no shard simulated
//     twice, none skipped),
//   - resume hits == everything the crashed run computed,
//   - Stats.Resumed == the journal's cursor at the kill.
//
// The loop runs at worker counts 1, 4, and 8, so resume interacts with
// the reorder window and the permit flow at every pool shape.
func TestResumeKillProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	policies := grid.Policies()
	for i, workers := range []int{1, 4, 8} {
		spec := grid.Spec{
			Version:  grid.SpecVersion,
			Seed:     uint64(100 + i),
			Quick:    true,
			Envs:     []string{"vmplayer", "qemu"},
			Machines: []int{40 + rng.Intn(150), 200 + rng.Intn(150)},
			Minutes:  []int{20 + rng.Intn(30)},
			Churn:    []bool{rng.Intn(2) == 0},
			Policy:   []string{policies[rng.Intn(len(policies))], "fifo"}[:1+rng.Intn(2)],
		}
		label := fmt.Sprintf("workers=%d spec=%+v", workers, spec)
		cfg := core.Config{Seed: spec.Seed, Quick: true}
		build := func() Experiment {
			exp, err := NewSweep("sweep", "resume property", spec)
			if err != nil {
				t.Fatal(err)
			}
			return exp
		}

		// Uninterrupted reference, in its own cache universe.
		base, baseStats, err := runOnce(t, durableRunner(t, t.TempDir(), workers, nil), cfg, build)
		if err != nil {
			t.Fatalf("%s: baseline: %v", label, err)
		}
		tasks := baseStats.Misses
		if tasks < 2 {
			t.Fatalf("%s: degenerate spec: %d tasks", label, tasks)
		}

		// Crash at a random task: the fault fires on journal append
		// killAt (record killAt-2, 0-based — op 1 is the header), and
		// Crash makes every later persistence op fail too.
		killAt := 2 + rng.Intn(tasks-1) // fail one of records 0..tasks-2
		dir := t.TempDir()
		faults := &Faults{FailAt: killAt, Match: journalWrites, Crash: true}
		_, crashStats, err := runOnce(t, durableRunner(t, dir, workers, faults), cfg, build)
		if err == nil {
			t.Fatalf("%s: crashed run succeeded", label)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: crash surfaced %v, want injected fault", label, err)
		}
		folded := killAt - 2 // records journaled before the kill

		// Resume: clean runner, same cache directory.
		resumed, resStats, err := runOnce(t, durableRunner(t, dir, workers, nil), cfg, build)
		if err != nil {
			t.Fatalf("%s: resume: %v", label, err)
		}
		if resumed[0].Render() != base[0].Render() || resumed[0].CSV() != base[0].CSV() ||
			!bytes.Equal(resumed[0].Raw, base[0].Raw) {
			t.Fatalf("%s: resumed output differs from uninterrupted run", label)
		}
		if resStats.Resumed != folded {
			t.Errorf("%s: resumed %d tasks, journal held %d", label, resStats.Resumed, folded)
		}
		if crashStats.Misses+resStats.Misses != tasks {
			t.Errorf("%s: %d + %d shards simulated across crash+resume, want exactly %d",
				label, crashStats.Misses, resStats.Misses, tasks)
		}
		if resStats.Hits != crashStats.Misses {
			t.Errorf("%s: resume replayed %d from cache, crashed run computed %d",
				label, resStats.Hits, crashStats.Misses)
		}

		// The resumed run completed, so its manifest must be sealed.
		fc, _ := NewFileCache(dir)
		st, err := fc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Manifests != 1 || st.Resumable != 0 {
			t.Errorf("%s: after resume: %d manifests, %d resumable, want 1/0", label, st.Manifests, st.Resumable)
		}
	}
}

// TestResumeTornFinalRecord crashes mid-write, leaving a literally torn
// record at the journal tail; the loader must fall back to the last
// intact record and the resume must still replay to identical bytes.
func TestResumeTornFinalRecord(t *testing.T) {
	fake := func() Experiment { return newFake("tornfake", 9) }
	cfg := quickCfg()

	base, baseStats, err := runOnce(t, durableRunner(t, t.TempDir(), 3, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	faults := &Faults{FailAt: 6, Match: journalWrites, TornBytes: 20, Crash: true}
	if _, _, err := runOnce(t, durableRunner(t, dir, 3, faults), cfg, fake); err == nil {
		t.Fatal("torn-write run succeeded")
	}
	// The file must actually hold a torn tail: record 4's first 20
	// bytes, no newline. Load salvages records 0..3.
	fc, _ := NewFileCache(dir)
	mis, err := fc.Manifests().List()
	if err != nil || len(mis) != 1 {
		t.Fatalf("manifests after torn crash: %v, %v", mis, err)
	}
	if !mis[0].Torn || mis[0].Cursor != 4 {
		t.Fatalf("torn journal listed as %+v, want torn with cursor 4", mis[0])
	}

	resumed, resStats, err := runOnce(t, durableRunner(t, dir, 3, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}
	if resumed[0].Render() != base[0].Render() {
		t.Fatal("resumed output differs after torn record")
	}
	if resStats.Resumed != 4 {
		t.Errorf("resumed %d tasks, want the 4 intact records", resStats.Resumed)
	}
	if resStats.Misses+resStats.Hits != baseStats.Misses+baseStats.Hits {
		t.Errorf("slot accounting drifted: %+v vs baseline %+v", resStats, baseStats)
	}
}

// TestResumeENOSPC fails one journal append with ENOSPC (no crash
// cascade): the run must abort with the real error — a fold the
// journal cannot vouch for is worse than a dead run — and a later
// resume must complete byte-identically.
func TestResumeENOSPC(t *testing.T) {
	fake := func() Experiment { return newFake("nospacefake", 7) }
	cfg := quickCfg()

	base, _, err := runOnce(t, durableRunner(t, t.TempDir(), 2, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	faults := &Faults{FailAt: 4, Match: journalWrites, Err: fmt.Errorf("write: %w", syscall.ENOSPC)}
	_, _, err = runOnce(t, durableRunner(t, dir, 2, faults), cfg, fake)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("run error %v, want ENOSPC", err)
	}

	resumed, resStats, err := runOnce(t, durableRunner(t, dir, 2, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}
	if resumed[0].Render() != base[0].Render() {
		t.Fatal("resumed output differs after ENOSPC")
	}
	if resStats.Resumed == 0 {
		t.Error("nothing resumed from the pre-ENOSPC journal prefix")
	}
}

// TestResumeAfterPayloadEviction prunes one payload out from under a
// complete manifest: the cursor truncates to the gap, and the re-run
// re-simulates exactly the evicted shard — everything else replays.
func TestResumeAfterPayloadEviction(t *testing.T) {
	fake := func() Experiment { return newFake("evictfake", 8) }
	cfg := quickCfg()
	dir := t.TempDir()

	base, _, err := runOnce(t, durableRunner(t, dir, 3, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}

	// Evict shard 2's payload and let Prune reconcile the journal.
	fc, _ := NewFileCache(dir)
	key := CacheKey("evictfake", cfg, 2)
	if err := os.Remove(filepath.Join(dir, keyHash(key)+".json")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fc.Prune(0, 0); err != nil {
		t.Fatal(err)
	}

	resumed, resStats, err := runOnce(t, durableRunner(t, dir, 3, nil), cfg, fake)
	if err != nil {
		t.Fatal(err)
	}
	if resumed[0].Render() != base[0].Render() {
		t.Fatal("output differs after payload eviction")
	}
	if resStats.Resumed != 2 {
		t.Errorf("resumed %d tasks, want 2 (the prefix before the evicted payload)", resStats.Resumed)
	}
	if resStats.Misses != 1 {
		t.Errorf("re-simulated %d shards, want exactly the evicted one", resStats.Misses)
	}
}

// TestResumeIdentityMismatch: a different spec (or seed) derives a
// different manifest identity, so nothing resumes across runs that are
// not byte-equivalent — and both manifests coexist in the store.
func TestResumeIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	if _, _, err := runOnce(t, durableRunner(t, dir, 2, nil), cfg, func() Experiment { return newFake("ida", 5) }); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 999
	_, stats, err := runOnce(t, durableRunner(t, dir, 2, nil), other, func() Experiment { return newFake("ida", 5) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 || stats.Misses != 5 {
		t.Errorf("different seed resumed: %+v", stats)
	}
	fc, _ := NewFileCache(dir)
	if st, _ := fc.Stats(); st.Manifests != 2 {
		t.Errorf("%d manifests, want one per identity", st.Manifests)
	}
}

// TestRunnerWithoutManifestsUnchanged: no store, no journaling — the
// cache directory stays free of manifests and stats report no resume.
func TestRunnerWithoutManifestsUnchanged(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Workers: 2, Cache: fc}
	_, stats, err := r.Run(quickCfg(), []Experiment{newFake("plain", 4)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 {
		t.Errorf("resumed %d without a manifest store", stats.Resumed)
	}
	if st, _ := fc.Stats(); st.Manifests != 0 {
		t.Errorf("manifests written without a store: %+v", st)
	}
}
