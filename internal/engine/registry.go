package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vmdg/internal/core"
)

// Registry is a named collection of experiments. The zero value is not
// usable; construct with NewRegistry. Registration order is preserved —
// it is the order `run all` executes and reports in.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]Experiment
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]Experiment{}}
}

// key canonicalizes a name for case-insensitive lookup ("figFP" and
// "figfp" are the same experiment).
func key(name string) string { return strings.ToLower(name) }

// Register adds an experiment. Names are case-insensitive and must be
// unique within the registry.
func (r *Registry) Register(e Experiment) error {
	if e.Name() == "" {
		return fmt.Errorf("engine: experiment with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(e.Name())
	if _, dup := r.byKey[k]; dup {
		return fmt.Errorf("engine: duplicate experiment %q", e.Name())
	}
	r.byKey[k] = e
	r.order = append(r.order, k)
	return nil
}

// mustRegister is Register for the built-in catalog, whose names are
// statically unique.
func (r *Registry) mustRegister(e Experiment) {
	if err := r.Register(e); err != nil {
		panic(err)
	}
}

// Lookup resolves a name, case-insensitively.
func (r *Registry) Lookup(name string) (Experiment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byKey[key(name)]
	return e, ok
}

// Names returns every experiment name in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	for i, k := range r.order {
		out[i] = r.byKey[k].Name()
	}
	return out
}

// Experiments returns every experiment in registration order.
func (r *Registry) Experiments() []Experiment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Experiment, len(r.order))
	for i, k := range r.order {
		out[i] = r.byKey[k]
	}
	return out
}

// ByKind returns the experiments of the given kinds, in registration
// order.
func (r *Registry) ByKind(kinds ...Kind) []Experiment {
	var out []Experiment
	for _, e := range r.Experiments() {
		for _, k := range kinds {
			if e.Kind() == k {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Select resolves a comma-separated experiment list; "all" (or "")
// selects the whole registry. Unknown names report the valid set.
func (r *Registry) Select(names string) ([]Experiment, error) {
	if names == "" || key(names) == "all" {
		return r.Experiments(), nil
	}
	var out []Experiment
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := r.Lookup(name)
		if !ok {
			valid := r.Names()
			sort.Strings(valid)
			return nil, fmt.Errorf("engine: unknown experiment %q (valid: all, %s)",
				name, strings.Join(valid, ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// Default is the process-wide registry, populated with the built-in
// catalog (the nine figures plus ablations, sensitivities, and
// extensions) by this package's init.
var Default = NewRegistry()

// Register adds an experiment to the Default registry.
func Register(e Experiment) error { return Default.Register(e) }

// TotalShards sums the shard counts of exps under cfg — the pool's work
// backlog, used for progress reporting.
func TotalShards(cfg core.Config, exps []Experiment) int {
	cfg = normalize(cfg)
	n := 0
	for _, e := range exps {
		n += e.Shards(cfg)
	}
	return n
}
