package report

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one bar of a figure.
type Row struct {
	Label string
	Value float64
	// Err is an optional ± half-width (confidence interval).
	Err float64
	// Note is free-form annotation appended after the value.
	Note string
}

// Figure is a titled bar chart.
type Figure struct {
	Title string
	// Unit labels the value axis ("× native", "Mbps", "% overhead").
	Unit string
	// Baseline, if non-zero, draws a reference marker at this value.
	Baseline float64
	Rows     []Row
}

// Add appends a row.
func (f *Figure) Add(label string, value float64) *Row {
	f.Rows = append(f.Rows, Row{Label: label, Value: value})
	return &f.Rows[len(f.Rows)-1]
}

// AddErr appends a row with an error bar.
func (f *Figure) AddErr(label string, value, err float64) {
	f.Rows = append(f.Rows, Row{Label: label, Value: value, Err: err})
}

// barWidth is the rendered width of the longest bar.
const barWidth = 44

// Render draws the figure as ASCII.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(f.Title)))
	if len(f.Rows) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxVal := f.Baseline
	maxLabel := 0
	for _, r := range f.Rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > maxLabel {
			maxLabel = len(r.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for _, r := range f.Rows {
		n := int(r.Value / maxVal * barWidth)
		if n < 0 {
			n = 0
		}
		if n > barWidth {
			n = barWidth
		}
		bar := strings.Repeat("#", n)
		errs := ""
		if r.Err > 0 {
			errs = fmt.Sprintf(" ±%.3g", r.Err)
		}
		note := ""
		if r.Note != "" {
			note = "  (" + r.Note + ")"
		}
		fmt.Fprintf(&b, "%-*s |%-*s| %.3g %s%s%s\n",
			maxLabel, r.Label, barWidth, bar, r.Value, f.Unit, errs, note)
	}
	return b.String()
}

// CSV emits "label,value,err" lines with a header.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "label,value,err,unit\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%g,%g,%s\n", r.Label, r.Value, r.Err, f.Unit)
	}
	return b.String()
}

// Series is a per-parameter curve (e.g. IOBench times per file size),
// one line per environment.
type Series struct {
	Title string
	Unit  string
	// X holds the parameter values (file sizes, thread counts).
	X []float64
	// Lines maps an environment name to its Y values (len == len(X)).
	Lines map[string][]float64
}

// NewSeries creates an empty series over the given X axis.
func NewSeries(title, unit string, x []float64) *Series {
	return &Series{Title: title, Unit: unit, X: x, Lines: map[string][]float64{}}
}

// Set records one line.
func (s *Series) Set(name string, ys []float64) {
	if len(ys) != len(s.X) {
		panic(fmt.Sprintf("report: series %q: %d values for %d xs", name, len(ys), len(s.X)))
	}
	s.Lines[name] = ys
}

// Render draws the series as an aligned table.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", s.Title, strings.Repeat("=", len(s.Title)))
	names := make([]string, 0, len(s.Lines))
	for n := range s.Lines {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%12s", "x")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	fmt.Fprintf(&b, "   [%s]\n", s.Unit)
	for i, x := range s.X {
		fmt.Fprintf(&b, "%12g", x)
		for _, n := range names {
			fmt.Fprintf(&b, " %14.4g", s.Lines[n][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV emits the series as comma-separated columns.
func (s *Series) CSV() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Lines))
	for n := range s.Lines {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "x,%s\n", strings.Join(names, ","))
	for i, x := range s.X {
		fmt.Fprintf(&b, "%g", x)
		for _, n := range names {
			fmt.Fprintf(&b, ",%g", s.Lines[n][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
