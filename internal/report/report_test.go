package report

import (
	"strings"
	"testing"
)

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "Fig X", Unit: "× native", Baseline: 1}
	f.Add("native", 1.0)
	f.AddErr("qemu", 2.1, 0.05)
	r := f.Rows[len(f.Rows)-1]
	_ = r
	out := f.Render()
	for _, want := range []string{"Fig X", "native", "qemu", "2.1", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Longest bar must be full width; shorter proportional.
	lines := strings.Split(out, "\n")
	var nativeBar, qemuBar int
	for _, l := range lines {
		if strings.HasPrefix(l, "native") {
			nativeBar = strings.Count(l, "#")
		}
		if strings.HasPrefix(l, "qemu") {
			qemuBar = strings.Count(l, "#")
		}
	}
	if qemuBar <= nativeBar || qemuBar != barWidth {
		t.Fatalf("bar lengths native=%d qemu=%d", nativeBar, qemuBar)
	}
}

func TestFigureEmptyAndNotes(t *testing.T) {
	f := &Figure{Title: "Empty"}
	if !strings.Contains(f.Render(), "(no data)") {
		t.Fatal("empty figure render")
	}
	f2 := &Figure{Title: "N", Unit: "u"}
	row := f2.Add("a", 1)
	row.Note = "annotated"
	if !strings.Contains(f2.Render(), "(annotated)") {
		t.Fatal("note not rendered")
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{Title: "Fig", Unit: "Mbps"}
	f.AddErr("native", 97.6, 0.2)
	csv := f.CSV()
	if !strings.Contains(csv, "label,value,err,unit") || !strings.Contains(csv, "native,97.6,0.2,Mbps") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestSeriesRenderAndCSV(t *testing.T) {
	s := NewSeries("IOBench", "s", []float64{128, 256})
	s.Set("native", []float64{0.1, 0.2})
	s.Set("qemu", []float64{0.5, 1.0})
	out := s.Render()
	if !strings.Contains(out, "native") || !strings.Contains(out, "qemu") {
		t.Fatalf("render:\n%s", out)
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,native,qemu\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if !strings.Contains(csv, "128,0.1,0.5") {
		t.Fatalf("csv body:\n%s", csv)
	}
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	s := NewSeries("x", "u", []float64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched series")
		}
	}()
	s.Set("bad", []float64{1})
}
