// Package report renders experiment results as the paper presents them:
// bar charts (one bar per environment) and per-size series, in ASCII for
// the terminal plus CSV for downstream plotting. Rendering is pure
// formatting over stable row orders, so reports are bit-identical across
// runs — the property the engine's determinism tests assert through.
package report
