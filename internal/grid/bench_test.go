package grid

import "testing"

// benchScn is one full shard (ShardSize hosts) over a working day —
// the unit the fleet benchmark harness scales up. Quick calibration
// keeps the setup cost out of the measured loop via the process-wide
// memoization.
func benchScn(churn bool) Scenario {
	return Scenario{
		Machines: ShardSize, Minutes: 480, Seed: 1, Quick: true,
		Churn: churn, FaultyFrac: 0.02, Envs: []string{"vmplayer"},
	}.Normalize()
}

func benchRunShard(b *testing.B, scn Scenario) {
	if _, err := RunShard(scn, 0); err != nil { // warm the calibration cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunShard(scn, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hostSeconds := float64(scn.Machines) * float64(b.N)
	b.ReportMetric(hostSeconds/b.Elapsed().Seconds(), "hosts/s")
}

func BenchmarkRunShardSteady(b *testing.B) { benchRunShard(b, benchScn(false)) }
func BenchmarkRunShardChurn(b *testing.B)  { benchRunShard(b, benchScn(true)) }
