package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// This file is the per-host state machine of the fleet simulator: a
// coarse-grained volunteer machine over (powered, owner-active) whose
// work-unit progress accrues at the calibrated rate of its (class,
// environment) pair.
//
// Hosts have no struct of their own — every method here is a hostSlab
// method taking the host's slice-local index i (see slab.go for the
// layout rationale). The bodies are otherwise the literal pre-slab host
// methods: same draws from the same RNG streams in the same order, same
// event schedule, so a shard's output is bit-identical to the old
// array-of-structs loop.

// rate is host i's current science rate in chunks/second.
func (s *hostSlab) rate(i int32) float64 {
	if s.active[i] {
		return s.cal(i).ActiveChunksPerSec
	}
	return s.cal(i).IdleChunksPerSec
}

// accrue brings progress up to now at the prevailing rate. Under a
// time-free policy (env.batch) it also settles every unit completion
// the window contains — see settle.
func (s *hostSlab) accrue(i int32, now sim.Time) {
	if s.env.batch {
		s.settle(i, now)
		return
	}
	if s.on[i] && s.hasWork[i] {
		s.progress[i] += s.rate(i) * (now - s.accrued[i]).Seconds()
		if s.progress[i] > float64(s.wu[i].Chunks) {
			s.progress[i] = float64(s.wu[i].Chunks)
		}
	}
	s.accrued[i] = now
}

// settle advances progress across [accrued, now] — a window of
// constant rate, since every rate change passes through accrue first —
// submitting each unit the window completes at its exact completion
// instant and requesting the next, with no simulator events. Only
// hosts under a timeFree policy settle: the server calls happen in
// phase-boundary order rather than global completion-time order, which
// such a policy's statistics provably cannot observe. A working day of
// an always-on host costs ~60 completion events on the queue; settling
// makes it a handful of arithmetic iterations inside events the host
// fires anyway.
func (s *hostSlab) settle(i int32, now sim.Time) {
	if s.on[i] && s.hasWork[i] {
		rate := s.rate(i)
		for {
			remaining := float64(s.wu[i].Chunks) - s.progress[i]
			gain := rate * (now - s.accrued[i]).Seconds()
			if gain < remaining {
				s.progress[i] += gain
				break
			}
			at := s.accrued[i] + sim.FromSeconds(remaining/rate)
			if at > now {
				at = now // FromSeconds rounding must not move time forward
			}
			s.submit(i, at)
			s.ckpt[i] = nil
			s.hasWork[i] = false
			s.requestWork(i, at) // resets progress and sets accrued = at
		}
	}
	s.accrued[i] = now
}

// submit reports the current unit's result (corrupted when faulty).
func (s *hostSlab) submit(i int32, now sim.Time) {
	result := resultFor(s.wu[i])
	if s.faulty[i] {
		result = int(s.envRNG[i].Uint64() % resultSpace)
		if result == resultFor(s.wu[i]) {
			result = (result + 1) % resultSpace
		}
	}
	s.env.policy.Submit(s.gid(i), s.wu[i], result, now)
}

// flushPhase closes the owner phase that ran since phaseStart: active
// phases owe one interactive burst per whole second. The bursts are
// only counted here; drainBursts settles them into the latency
// histogram in aggregate.
func (s *hostSlab) flushPhase(i int32, now sim.Time) {
	if s.on[i] && s.active[i] {
		dur := (now - s.phaseStart[i]).Seconds()
		s.env.stats.ActiveSeconds += dur
		s.pendingBursts[i] += int64(dur)
	}
	s.phaseStart[i] = now
}

// drainBursts settles host i's accumulated burst count into the
// latency histogram with one seeded multinomial over the calibration's
// binned burst distribution. Because multinomials are additive in n,
// draining once per host is distributed identically to sampling every
// burst the moment its phase closed — at a cost independent of
// simulated time. This is the per-host reference path; shards normally
// drain in class groups (drainBurstsGrouped).
func (s *hostSlab) drainBursts(i int32) {
	if s.pendingBursts[i] > 0 {
		s.env.stats.Latency.AddMultinomial(&s.envRNG[i], s.cal(i).burstDist(), s.pendingBursts[i])
		s.pendingBursts[i] = 0
	}
}

// drainBurstsGrouped settles the whole shard's accumulated bursts with
// one multinomial chain per class instead of one per host: every host
// of a class draws from the same binned calibration distribution, and
// multinomials are additive in n, so summing the class's pending counts
// and settling them in one AddMultinomial call is distributed
// identically to the per-host path — it just replaces ~ShardSize
// binomial walks with one per class. The chain runs on its own stream
// derived from (seed, env, slice), never a host RNG, so grouping cannot
// perturb any other draw; classes settle in class-index order, keeping
// the result a pure function of the shard. The per-host and grouped
// paths produce different (equally valid) Latency.Counts bytes — the
// equivalence is distributional, pinned by KS/percentile tests, with
// the exact total burst count conserved.
func (s *hostSlab) drainBurstsGrouped() {
	totals := make([]int64, len(s.classes))
	for i := int32(0); int(i) < s.n; i++ {
		totals[s.classIdx[i]] += s.pendingBursts[i]
		s.pendingBursts[i] = 0
	}
	rng := sim.RNG{}
	rng.SetState(splitmix(envSeed(s.env.scn.Seed, s.env.prof.Name, -1-s.env.slice) ^ 0x6275727374)) // "burst"
	for ci, n := range totals {
		if n > 0 {
			s.env.stats.Latency.AddMultinomial(&rng, s.cals[ci].burstDist(), n)
		}
	}
}

// scheduleCompletion (re)schedules the predicted completion of the
// current unit. Call after every rate or assignment change; the pending
// event is moved in place when possible. Batch-settled hosts never arm
// completion events.
func (s *hostSlab) scheduleCompletion(i int32, now sim.Time) {
	if s.env.batch {
		return
	}
	if !s.on[i] || !s.hasWork[i] {
		s.completion[i].Cancel()
		s.completion[i] = sim.Handle{}
		return
	}
	remaining := float64(s.wu[i].Chunks) - s.progress[i]
	if remaining < 0 {
		remaining = 0
	}
	eta := now + sim.FromSeconds(remaining/s.rate(i))
	if !s.env.sim.Reschedule(s.completion[i], eta) {
		s.completion[i] = s.env.sim.Schedule(eta, "complete", (*completeArm)(s.arm(i)))
	}
}

// complete fires when the predicted completion instant arrives: the
// host submits its result and requests the next unit.
func (s *hostSlab) complete(i int32, now sim.Time) {
	s.completion[i] = sim.Handle{}
	s.accrue(i, now)
	s.submit(i, now)
	s.ckpt[i] = nil
	s.hasWork[i] = false
	if s.env.mig != nil {
		s.migUnitDone(i)
	}
	s.requestWork(i, now)
	s.scheduleCompletion(i, now)
}

// requestWork asks the shard's server for work: the oldest checkpoint
// awaiting migration if the server holds one (downloading it costs
// modeled transfer time), a fresh unit otherwise.
func (s *hostSlab) requestWork(i int32, now sim.Time) {
	if m := s.env.mig; m != nil {
		if mu, ok := m.pop(); ok {
			s.beginMigDownload(i, now, mu)
			return
		}
	}
	s.wu[i] = s.env.policy.Assign(s.gid(i), now)
	s.hasWork[i] = true
	s.progress[i] = 0
	s.accrued[i] = now
}

// powerOn boots the machine: restore the held checkpoint or fetch
// fresh work, set the owner's presence, and — under churn — schedule
// the session's end. ownerPresent is true when the owner just sat down
// to switch the machine on (every mid-run power-on); the t=0 boot
// passes a stationary draw instead, so short horizons do not measure a
// synchronized everyone-active start transient.
func (s *hostSlab) powerOn(i int32, now sim.Time, ownerPresent bool) {
	s.on[i] = true
	s.onStart[i] = now
	s.accrued[i] = now
	if m := s.env.mig; m != nil {
		s.migReturn(i, now, m)
	}
	switch {
	case s.ckpt[i] != nil:
		if err := s.restoreCheckpoint(i); err != nil {
			// A checkpoint this host encoded itself cannot fail to
			// decode; treat corruption as a model bug.
			panic(fmt.Sprintf("grid: %s: %v", hostID(s.gid(i)), err))
		}
		s.env.stats.Restores++
	case !s.hasWork[i]:
		s.requestWork(i, now)
	}
	s.active[i] = ownerPresent
	s.phaseStart[i] = now
	s.scheduleFlip(i, now)
	s.scheduleCompletion(i, now)
	if s.env.scn.Churn {
		s.env.sim.Schedule(now+s.exp(i, s.class(i).MeanOnMin), "power-off", (*powerOffArm)(s.arm(i)))
	}
}

// stationaryActive draws the owner's long-run presence probability.
func (s *hostSlab) stationaryActive(i int32) bool {
	c := s.class(i)
	p := c.MeanActiveMin / (c.MeanActiveMin + c.MeanIdleMin)
	return s.ownerRNG[i].Float64() < p
}

// powerOff evicts the VM: progress since the worker's last periodic
// checkpoint is lost, and the rest leaves the machine as an encoded
// vmm.Checkpoint carrying the boinc progress file.
func (s *hostSlab) powerOff(i int32, now sim.Time) {
	s.accrue(i, now)
	s.flushPhase(i, now)
	s.env.stats.OnSeconds += (now - s.onStart[i]).Seconds()
	s.completion[i].Cancel()
	s.completion[i] = sim.Handle{}
	s.flip[i].Cancel()
	s.flip[i] = sim.Handle{}
	s.on[i] = false
	if s.hasWork[i] && s.progress[i] > 0 {
		s.env.stats.Evictions++
		every := s.wu[i].CheckpointEvery
		if every < 1 {
			every = 1
		}
		kept := float64(int(s.progress[i])/every) * float64(every)
		s.env.stats.LostChunks += int64(s.progress[i] - kept)
		s.progress[i] = kept
	}
	if s.hasWork[i] {
		s.ckpt[i] = s.encodeCheckpoint(i, now)
	}
	if m := s.env.mig; m != nil {
		s.migDepart(i, now, m)
	}
	s.env.sim.Schedule(now+s.exp(i, s.class(i).MeanOffMin), "power-on", (*powerOnArm)(s.arm(i)))
}

// encodeCheckpoint captures host i's surviving state as a real VMM
// checkpoint whose payload is the BOINC progress file.
func (s *hostSlab) encodeCheckpoint(i int32, now sim.Time) []byte {
	ck := &vmm.Checkpoint{
		VMName:       hostID(s.gid(i)),
		ProfileName:  s.prof().Name,
		TakenAtHost:  now,
		TakenAtGuest: now,
		Payload: boinc.Progress{
			WorkUnit:   s.wu[i],
			ChunksDone: int(s.progress[i]),
		}.Marshal(),
	}
	b, err := ck.Encode()
	if err != nil {
		panic(fmt.Sprintf("grid: %s: encoding checkpoint: %v", hostID(s.gid(i)), err)) // plain data cannot fail
	}
	return b
}

// restoreCheckpoint resumes the unit carried by the held checkpoint.
func (s *hostSlab) restoreCheckpoint(i int32) error {
	ck, err := vmm.DecodeCheckpoint(s.ckpt[i])
	if err != nil {
		return err
	}
	if ck.ProfileName != s.prof().Name {
		return fmt.Errorf("checkpoint from profile %s restored under %s", ck.ProfileName, s.prof().Name)
	}
	prog, err := boinc.UnmarshalProgress(ck.Payload)
	if err != nil {
		return err
	}
	s.wu[i] = prog.WorkUnit
	s.progress[i] = float64(prog.ChunksDone)
	s.hasWork[i] = true
	s.ckpt[i] = nil
	return nil
}

// scheduleFlip arms the next owner active/idle transition.
func (s *hostSlab) scheduleFlip(i int32, now sim.Time) {
	mean := s.class(i).MeanIdleMin
	if s.active[i] {
		mean = s.class(i).MeanActiveMin
	}
	s.flip[i] = s.env.sim.Schedule(now+s.exp(i, mean), "owner-flip", (*flipArm)(s.arm(i)))
}

// doFlip toggles owner activity, which changes the science rate.
func (s *hostSlab) doFlip(i int32, now sim.Time) {
	s.flip[i] = sim.Handle{}
	s.accrue(i, now)
	s.flushPhase(i, now)
	s.active[i] = !s.active[i]
	s.scheduleFlip(i, now)
	s.scheduleCompletion(i, now)
}

// finalize settles accounting at the horizon: a still-powered host
// closes its open phase and power session. Accumulated bursts are
// drained afterwards, over all hosts at once (see drainBurstsGrouped).
func (s *hostSlab) finalize(i int32, now sim.Time) {
	if s.on[i] {
		s.accrue(i, now)
		s.flushPhase(i, now)
		s.env.stats.OnSeconds += (now - s.onStart[i]).Seconds()
	}
}

// exp draws an exponential duration with the given mean in minutes
// from host i's owner stream.
func (s *hostSlab) exp(i int32, meanMin float64) sim.Time {
	return sim.FromSeconds(s.ownerRNG[i].Exp(meanMin * 60))
}
