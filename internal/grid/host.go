package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// host is one coarse-grained volunteer machine inside a shard's event
// loop: a state machine over (powered, owner-active) whose work-unit
// progress accrues at the calibrated rate of its (class, environment)
// pair.
type host struct {
	env *envShard

	id     string
	class  *Class
	faulty bool
	cal    Calibration

	// ownerRNG drives churn and activity (environment-independent, so
	// the same volunteer behaves identically under every environment);
	// envRNG drives latency resampling and corrupted result values.
	ownerRNG *sim.RNG
	envRNG   *sim.RNG

	on      bool
	active  bool
	onStart sim.Time // when the current power session began

	// Work in flight.
	hasWork  bool
	wu       boinc.WorkUnit
	progress float64  // chunks done on wu
	accrued  sim.Time // progress is exact as of this instant
	ckpt     []byte   // encoded vmm.Checkpoint surviving power-off

	phaseStart sim.Time // start of the current active/idle phase

	completion *sim.Event
	flip       *sim.Event
}

// rate is the host's current science rate in chunks/second.
func (h *host) rate() float64 {
	if h.active {
		return h.cal.ActiveChunksPerSec
	}
	return h.cal.IdleChunksPerSec
}

// accrue brings progress up to now at the prevailing rate.
func (h *host) accrue(now sim.Time) {
	if h.on && h.hasWork {
		h.progress += h.rate() * (now - h.accrued).Seconds()
		if h.progress > float64(h.wu.Chunks) {
			h.progress = float64(h.wu.Chunks)
		}
	}
	h.accrued = now
}

// flushPhase closes the owner phase that ran since phaseStart: active
// phases contribute one interactive burst per whole second, resampled
// from the calibrated latency distribution.
func (h *host) flushPhase(now sim.Time) {
	if h.on && h.active {
		dur := (now - h.phaseStart).Seconds()
		h.env.stats.ActiveSeconds += dur
		n := len(h.cal.BurstMs)
		for i := 0; i < int(dur); i++ {
			h.env.stats.Latency.Add(h.cal.BurstMs[h.envRNG.Intn(n)])
		}
	}
	h.phaseStart = now
}

// scheduleCompletion (re)schedules the predicted completion of the
// current unit. Call after every rate or assignment change.
func (h *host) scheduleCompletion(now sim.Time) {
	if h.completion != nil {
		h.completion.Cancel()
		h.completion = nil
	}
	if !h.on || !h.hasWork {
		return
	}
	remaining := float64(h.wu.Chunks) - h.progress
	if remaining < 0 {
		remaining = 0
	}
	eta := now + sim.FromSeconds(remaining/h.rate())
	h.completion = h.env.sim.At(eta, "complete", func() { h.complete(eta) })
}

// complete fires when the predicted completion instant arrives: the
// host submits its result and requests the next unit.
func (h *host) complete(now sim.Time) {
	h.completion = nil
	h.accrue(now)
	result := resultFor(h.wu)
	if h.faulty {
		result = int(h.envRNG.Uint64() % resultSpace)
		if result == resultFor(h.wu) {
			result = (result + 1) % resultSpace
		}
	}
	h.env.policy.Submit(h.id, h.wu, result, now)
	h.ckpt = nil
	h.hasWork = false
	h.requestWork(now)
	h.scheduleCompletion(now)
}

// requestWork asks the shard's server for a fresh unit.
func (h *host) requestWork(now sim.Time) {
	h.wu = h.env.policy.Assign(h.id, now)
	h.hasWork = true
	h.progress = 0
	h.accrued = now
}

// powerOn boots the machine: restore the held checkpoint or fetch
// fresh work, set the owner's presence, and — under churn — schedule
// the session's end. ownerPresent is true when the owner just sat down
// to switch the machine on (every mid-run power-on); the t=0 boot
// passes a stationary draw instead, so short horizons do not measure a
// synchronized everyone-active start transient.
func (h *host) powerOn(now sim.Time, ownerPresent bool) {
	h.on = true
	h.onStart = now
	h.accrued = now
	switch {
	case h.ckpt != nil:
		if err := h.restoreCheckpoint(); err != nil {
			// A checkpoint this host encoded itself cannot fail to
			// decode; treat corruption as a model bug.
			panic(fmt.Sprintf("grid: %s: %v", h.id, err))
		}
		h.env.stats.Restores++
	case !h.hasWork:
		h.requestWork(now)
	}
	h.active = ownerPresent
	h.phaseStart = now
	h.scheduleFlip(now)
	h.scheduleCompletion(now)
	if h.env.scn.Churn {
		end := now + h.exp(h.class.MeanOnMin)
		h.env.sim.At(end, "power-off", func() { h.powerOff(end) })
	}
}

// stationaryActive draws the owner's long-run presence probability.
func (h *host) stationaryActive() bool {
	p := h.class.MeanActiveMin / (h.class.MeanActiveMin + h.class.MeanIdleMin)
	return h.ownerRNG.Float64() < p
}

// powerOff evicts the VM: progress since the worker's last periodic
// checkpoint is lost, and the rest leaves the machine as an encoded
// vmm.Checkpoint carrying the boinc progress file.
func (h *host) powerOff(now sim.Time) {
	h.accrue(now)
	h.flushPhase(now)
	h.env.stats.OnSeconds += (now - h.onStart).Seconds()
	if h.completion != nil {
		h.completion.Cancel()
		h.completion = nil
	}
	if h.flip != nil {
		h.flip.Cancel()
		h.flip = nil
	}
	h.on = false
	if h.hasWork && h.progress > 0 {
		h.env.stats.Evictions++
		every := h.wu.CheckpointEvery
		if every < 1 {
			every = 1
		}
		kept := float64(int(h.progress)/every) * float64(every)
		h.env.stats.LostChunks += int64(h.progress - kept)
		h.progress = kept
	}
	if h.hasWork {
		h.ckpt = h.encodeCheckpoint(now)
	}
	back := now + h.exp(h.class.MeanOffMin)
	h.env.sim.At(back, "power-on", func() { h.powerOn(back, true) })
}

// encodeCheckpoint captures the host's surviving state as a real VMM
// checkpoint whose payload is the BOINC progress file.
func (h *host) encodeCheckpoint(now sim.Time) []byte {
	ck := &vmm.Checkpoint{
		VMName:       h.id,
		ProfileName:  h.env.prof.Name,
		TakenAtHost:  now,
		TakenAtGuest: now,
		Payload: boinc.Progress{
			WorkUnit:   h.wu,
			ChunksDone: int(h.progress),
		}.Marshal(),
	}
	b, err := ck.Encode()
	if err != nil {
		panic(fmt.Sprintf("grid: %s: encoding checkpoint: %v", h.id, err)) // plain data cannot fail
	}
	return b
}

// restoreCheckpoint resumes the unit carried by the held checkpoint.
func (h *host) restoreCheckpoint() error {
	ck, err := vmm.DecodeCheckpoint(h.ckpt)
	if err != nil {
		return err
	}
	if ck.ProfileName != h.env.prof.Name {
		return fmt.Errorf("checkpoint from profile %s restored under %s", ck.ProfileName, h.env.prof.Name)
	}
	prog, err := boinc.UnmarshalProgress(ck.Payload)
	if err != nil {
		return err
	}
	h.wu = prog.WorkUnit
	h.progress = float64(prog.ChunksDone)
	h.hasWork = true
	h.ckpt = nil
	return nil
}

// scheduleFlip arms the next owner active/idle transition.
func (h *host) scheduleFlip(now sim.Time) {
	mean := h.class.MeanIdleMin
	if h.active {
		mean = h.class.MeanActiveMin
	}
	at := now + h.exp(mean)
	h.flip = h.env.sim.At(at, "owner-flip", func() { h.doFlip(at) })
}

// doFlip toggles owner activity, which changes the science rate.
func (h *host) doFlip(now sim.Time) {
	h.flip = nil
	h.accrue(now)
	h.flushPhase(now)
	h.active = !h.active
	h.scheduleFlip(now)
	h.scheduleCompletion(now)
}

// finalize settles accounting at the horizon for a still-powered host.
func (h *host) finalize(now sim.Time) {
	if !h.on {
		return
	}
	h.accrue(now)
	h.flushPhase(now)
	h.env.stats.OnSeconds += (now - h.onStart).Seconds()
}

// exp draws an exponential duration with the given mean in minutes.
func (h *host) exp(meanMin float64) sim.Time {
	return sim.FromSeconds(h.ownerRNG.Exp(meanMin * 60))
}
