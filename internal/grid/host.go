package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/netsim"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// host is one coarse-grained volunteer machine inside a shard's event
// loop: a state machine over (powered, owner-active) whose work-unit
// progress accrues at the calibrated rate of its (class, environment)
// pair.
//
// The struct is built for million-host fleets: the RNGs are embedded
// values (no per-host heap cells), the calibration is a shared pointer,
// and every event the host schedules goes through the simulator's
// pooled, closure-free API — the timer "arms" below are pointer aliases
// of host itself, so arming a timer allocates nothing.
type host struct {
	env *envShard

	id     string
	class  *Class
	cal    *Calibration
	faulty bool

	// ownerRNG drives churn and activity (environment-independent, so
	// the same volunteer behaves identically under every environment);
	// envRNG drives latency resampling and corrupted result values.
	ownerRNG sim.RNG
	envRNG   sim.RNG

	on      bool
	active  bool
	hasWork bool

	onStart sim.Time // when the current power session began

	// Work in flight.
	wu       boinc.WorkUnit
	progress float64  // chunks done on wu
	accrued  sim.Time // progress is exact as of this instant
	ckpt     []byte   // encoded vmm.Checkpoint surviving power-off

	phaseStart sim.Time // start of the current active/idle phase

	// pendingBursts counts interactive bursts owed to the latency
	// histogram: one per whole second of owner-active time, settled in
	// aggregate by drainBursts instead of sampled per second.
	pendingBursts int64

	completion sim.Handle
	flip       sim.Handle

	// Checkpoint-migration state (see migrate.go; all inert when the
	// scenario's migration policy is "none"). upBps/downBps are the
	// host's access-link rates toward the server; at most one netsim
	// transfer is in flight per host, tagged by xferKind.
	upBps, downBps float64
	xfer           *netsim.Transfer
	xferKind       uint8
	pendingMig     migUnit
	synced         syncState
	syncChunks     int
	syncTimer      sim.Handle
}

// The timer arms give each of the host's event kinds a distinct
// closure-free sim.Caller without any per-host timer objects: each arm
// is a named alias of host, so (*completeArm)(h) is a free pointer
// conversion and storing it in a Caller interface does not allocate.
type (
	completeArm host
	flipArm     host
	powerOnArm  host
	powerOffArm host
)

func (a *completeArm) Fire(now sim.Time) { (*host)(a).complete(now) }
func (a *flipArm) Fire(now sim.Time)     { (*host)(a).doFlip(now) }
func (a *powerOnArm) Fire(now sim.Time)  { (*host)(a).powerOn(now, true) }
func (a *powerOffArm) Fire(now sim.Time) { (*host)(a).powerOff(now) }

// rate is the host's current science rate in chunks/second.
func (h *host) rate() float64 {
	if h.active {
		return h.cal.ActiveChunksPerSec
	}
	return h.cal.IdleChunksPerSec
}

// accrue brings progress up to now at the prevailing rate. Under a
// time-free policy (env.batch) it also settles every unit completion
// the window contains — see settle.
func (h *host) accrue(now sim.Time) {
	if h.env.batch {
		h.settle(now)
		return
	}
	if h.on && h.hasWork {
		h.progress += h.rate() * (now - h.accrued).Seconds()
		if h.progress > float64(h.wu.Chunks) {
			h.progress = float64(h.wu.Chunks)
		}
	}
	h.accrued = now
}

// settle advances progress across [accrued, now] — a window of
// constant rate, since every rate change passes through accrue first —
// submitting each unit the window completes at its exact completion
// instant and requesting the next, with no simulator events. Only
// hosts under a timeFree policy settle: the server calls happen in
// phase-boundary order rather than global completion-time order, which
// such a policy's statistics provably cannot observe. A working day of
// an always-on host costs ~60 completion events on the queue; settling
// makes it a handful of arithmetic iterations inside events the host
// fires anyway.
func (h *host) settle(now sim.Time) {
	if h.on && h.hasWork {
		rate := h.rate()
		for {
			remaining := float64(h.wu.Chunks) - h.progress
			gain := rate * (now - h.accrued).Seconds()
			if gain < remaining {
				h.progress += gain
				break
			}
			at := h.accrued + sim.FromSeconds(remaining/rate)
			if at > now {
				at = now // FromSeconds rounding must not move time forward
			}
			h.submit(at)
			h.ckpt = nil
			h.hasWork = false
			h.requestWork(at) // resets progress and sets accrued = at
		}
	}
	h.accrued = now
}

// submit reports the current unit's result (corrupted when faulty).
func (h *host) submit(now sim.Time) {
	result := resultFor(h.wu)
	if h.faulty {
		result = int(h.envRNG.Uint64() % resultSpace)
		if result == resultFor(h.wu) {
			result = (result + 1) % resultSpace
		}
	}
	h.env.policy.Submit(h.id, h.wu, result, now)
}

// flushPhase closes the owner phase that ran since phaseStart: active
// phases owe one interactive burst per whole second. The bursts are
// only counted here; drainBursts settles them into the latency
// histogram in aggregate.
func (h *host) flushPhase(now sim.Time) {
	if h.on && h.active {
		dur := (now - h.phaseStart).Seconds()
		h.env.stats.ActiveSeconds += dur
		h.pendingBursts += int64(dur)
	}
	h.phaseStart = now
}

// drainBursts settles the accumulated burst count into the latency
// histogram with one seeded multinomial over the calibration's binned
// burst distribution. Because multinomials are additive in n, draining
// once per host is distributed identically to sampling every burst the
// moment its phase closed — at a cost independent of simulated time.
func (h *host) drainBursts() {
	if h.pendingBursts > 0 {
		h.env.stats.Latency.AddMultinomial(&h.envRNG, h.cal.burstDist(), h.pendingBursts)
		h.pendingBursts = 0
	}
}

// scheduleCompletion (re)schedules the predicted completion of the
// current unit. Call after every rate or assignment change; the pending
// event is moved in place when possible. Batch-settled hosts never arm
// completion events.
func (h *host) scheduleCompletion(now sim.Time) {
	if h.env.batch {
		return
	}
	if !h.on || !h.hasWork {
		h.completion.Cancel()
		h.completion = sim.Handle{}
		return
	}
	remaining := float64(h.wu.Chunks) - h.progress
	if remaining < 0 {
		remaining = 0
	}
	eta := now + sim.FromSeconds(remaining/h.rate())
	if !h.env.sim.Reschedule(h.completion, eta) {
		h.completion = h.env.sim.Schedule(eta, "complete", (*completeArm)(h))
	}
}

// complete fires when the predicted completion instant arrives: the
// host submits its result and requests the next unit.
func (h *host) complete(now sim.Time) {
	h.completion = sim.Handle{}
	h.accrue(now)
	h.submit(now)
	h.ckpt = nil
	h.hasWork = false
	if h.env.mig != nil {
		h.migUnitDone()
	}
	h.requestWork(now)
	h.scheduleCompletion(now)
}

// requestWork asks the shard's server for work: the oldest checkpoint
// awaiting migration if the server holds one (downloading it costs
// modeled transfer time), a fresh unit otherwise.
func (h *host) requestWork(now sim.Time) {
	if m := h.env.mig; m != nil {
		if mu, ok := m.pop(); ok {
			h.beginMigDownload(now, mu)
			return
		}
	}
	h.wu = h.env.policy.Assign(h.id, now)
	h.hasWork = true
	h.progress = 0
	h.accrued = now
}

// powerOn boots the machine: restore the held checkpoint or fetch
// fresh work, set the owner's presence, and — under churn — schedule
// the session's end. ownerPresent is true when the owner just sat down
// to switch the machine on (every mid-run power-on); the t=0 boot
// passes a stationary draw instead, so short horizons do not measure a
// synchronized everyone-active start transient.
func (h *host) powerOn(now sim.Time, ownerPresent bool) {
	h.on = true
	h.onStart = now
	h.accrued = now
	if m := h.env.mig; m != nil {
		h.migReturn(now, m)
	}
	switch {
	case h.ckpt != nil:
		if err := h.restoreCheckpoint(); err != nil {
			// A checkpoint this host encoded itself cannot fail to
			// decode; treat corruption as a model bug.
			panic(fmt.Sprintf("grid: %s: %v", h.id, err))
		}
		h.env.stats.Restores++
	case !h.hasWork:
		h.requestWork(now)
	}
	h.active = ownerPresent
	h.phaseStart = now
	h.scheduleFlip(now)
	h.scheduleCompletion(now)
	if h.env.scn.Churn {
		h.env.sim.Schedule(now+h.exp(h.class.MeanOnMin), "power-off", (*powerOffArm)(h))
	}
}

// stationaryActive draws the owner's long-run presence probability.
func (h *host) stationaryActive() bool {
	p := h.class.MeanActiveMin / (h.class.MeanActiveMin + h.class.MeanIdleMin)
	return h.ownerRNG.Float64() < p
}

// powerOff evicts the VM: progress since the worker's last periodic
// checkpoint is lost, and the rest leaves the machine as an encoded
// vmm.Checkpoint carrying the boinc progress file.
func (h *host) powerOff(now sim.Time) {
	h.accrue(now)
	h.flushPhase(now)
	h.env.stats.OnSeconds += (now - h.onStart).Seconds()
	h.completion.Cancel()
	h.completion = sim.Handle{}
	h.flip.Cancel()
	h.flip = sim.Handle{}
	h.on = false
	if h.hasWork && h.progress > 0 {
		h.env.stats.Evictions++
		every := h.wu.CheckpointEvery
		if every < 1 {
			every = 1
		}
		kept := float64(int(h.progress)/every) * float64(every)
		h.env.stats.LostChunks += int64(h.progress - kept)
		h.progress = kept
	}
	if h.hasWork {
		h.ckpt = h.encodeCheckpoint(now)
	}
	if m := h.env.mig; m != nil {
		h.migDepart(now, m)
	}
	h.env.sim.Schedule(now+h.exp(h.class.MeanOffMin), "power-on", (*powerOnArm)(h))
}

// encodeCheckpoint captures the host's surviving state as a real VMM
// checkpoint whose payload is the BOINC progress file.
func (h *host) encodeCheckpoint(now sim.Time) []byte {
	ck := &vmm.Checkpoint{
		VMName:       h.id,
		ProfileName:  h.env.prof.Name,
		TakenAtHost:  now,
		TakenAtGuest: now,
		Payload: boinc.Progress{
			WorkUnit:   h.wu,
			ChunksDone: int(h.progress),
		}.Marshal(),
	}
	b, err := ck.Encode()
	if err != nil {
		panic(fmt.Sprintf("grid: %s: encoding checkpoint: %v", h.id, err)) // plain data cannot fail
	}
	return b
}

// restoreCheckpoint resumes the unit carried by the held checkpoint.
func (h *host) restoreCheckpoint() error {
	ck, err := vmm.DecodeCheckpoint(h.ckpt)
	if err != nil {
		return err
	}
	if ck.ProfileName != h.env.prof.Name {
		return fmt.Errorf("checkpoint from profile %s restored under %s", ck.ProfileName, h.env.prof.Name)
	}
	prog, err := boinc.UnmarshalProgress(ck.Payload)
	if err != nil {
		return err
	}
	h.wu = prog.WorkUnit
	h.progress = float64(prog.ChunksDone)
	h.hasWork = true
	h.ckpt = nil
	return nil
}

// scheduleFlip arms the next owner active/idle transition.
func (h *host) scheduleFlip(now sim.Time) {
	mean := h.class.MeanIdleMin
	if h.active {
		mean = h.class.MeanActiveMin
	}
	h.flip = h.env.sim.Schedule(now+h.exp(mean), "owner-flip", (*flipArm)(h))
}

// doFlip toggles owner activity, which changes the science rate.
func (h *host) doFlip(now sim.Time) {
	h.flip = sim.Handle{}
	h.accrue(now)
	h.flushPhase(now)
	h.active = !h.active
	h.scheduleFlip(now)
	h.scheduleCompletion(now)
}

// finalize settles accounting at the horizon: a still-powered host
// closes its open phase and power session, and every host drains its
// accumulated bursts into the latency histogram.
func (h *host) finalize(now sim.Time) {
	if h.on {
		h.accrue(now)
		h.flushPhase(now)
		h.env.stats.OnSeconds += (now - h.onStart).Seconds()
	}
	h.drainBursts()
}

// exp draws an exponential duration with the given mean in minutes.
func (h *host) exp(meanMin float64) sim.Time {
	return sim.FromSeconds(h.ownerRNG.Exp(meanMin * 60))
}
