package grid

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"vmdg/internal/sim"
)

// syntheticBursts builds a latency sample shaped like a real
// calibration: lognormal-ish bursts around the paper's ~40 ms with a
// heavy contention tail. The continuum keeps every quantile
// well-conditioned (no CDF plateau exactly at a checked percentile), so
// the equivalence assertions measure the sampling math, not knife-edge
// artifacts of a discrete mixture.
func syntheticBursts(rng *sim.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 38 * math.Exp(0.35*rng.Normal(0, 1))
		if rng.Float64() < 0.1 {
			out[i] *= 3.5 // contention tail
		}
	}
	return out
}

// TestAggregateSamplingMatchesPerSecond is the statistical-equivalence
// contract behind the aggregate burst refactor: distributing phase
// burst counts over the binned calibration distribution with seeded
// multinomials must reproduce the per-second resampling histogram
// within sampling noise — same total count exactly, CDF within a small
// KS distance, and matching latency percentiles.
func TestAggregateSamplingMatchesPerSecond(t *testing.T) {
	rng := sim.NewRNG(41)
	bursts := syntheticBursts(rng, 400)
	dist := binBursts(bursts)
	if len(dist) < 5 {
		t.Fatalf("synthetic sample spans only %d bins; the test needs a real distribution", len(dist))
	}

	// A few thousand owner phases with irregular fractional durations,
	// like flushPhase sees them.
	phases := make([]float64, 4000)
	durRNG := sim.NewRNG(43)
	for i := range phases {
		phases[i] = durRNG.Exp(9 * 60) // mean 9 active minutes
	}

	// Reference: the pre-refactor per-second loop, one categorical draw
	// per whole second of every phase.
	var ref Histogram
	refRNG := sim.NewRNG(77)
	for _, dur := range phases {
		for i := 0; i < int(dur); i++ {
			ref.Add(bursts[refRNG.Intn(len(bursts))])
		}
	}

	// Aggregate: per-phase counts settled by multinomials (split across
	// two drains, as hosts that power-cycle would see).
	var agg Histogram
	aggRNG := sim.NewRNG(78)
	var pending int64
	for i, dur := range phases {
		pending += int64(dur)
		if i%97 == 0 {
			agg.AddMultinomial(aggRNG, dist, pending)
			pending = 0
		}
	}
	agg.AddMultinomial(aggRNG, dist, pending)

	if agg.N != ref.N {
		t.Fatalf("aggregate sampling changed the burst count: %d vs %d", agg.N, ref.N)
	}

	// KS distance between the two binned CDFs. With N ~ 2M draws from
	// ~a dozen bins the distance should be far below 1%; 2% leaves room
	// for the normal-approximation regime of Binomial.
	var cumA, cumR, ks float64
	for i := 0; i < histBins; i++ {
		cumA += float64(agg.Counts[i]) / float64(agg.N)
		cumR += float64(ref.Counts[i]) / float64(ref.N)
		if d := math.Abs(cumA - cumR); d > ks {
			ks = d
		}
	}
	if ks > 0.02 {
		t.Fatalf("KS distance %.4f between aggregate and per-second histograms exceeds 0.02", ks)
	}

	// Percentiles must agree to within one histogram bin (the bin ratio
	// is 10^(7/256) ≈ 1.065).
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99} {
		a, r := agg.Percentile(p), ref.Percentile(p)
		if ratio := a / r; ratio < 0.93 || ratio > 1.08 {
			t.Errorf("p%.0f diverged: aggregate %.2f ms vs per-second %.2f ms", p*100, a, r)
		}
	}
}

// TestAddMultinomialExact pins the degenerate cases: zero counts, a
// single-bin distribution, and exact preservation of n.
func TestAddMultinomialExact(t *testing.T) {
	rng := sim.NewRNG(1)
	var h Histogram
	h.AddMultinomial(rng, nil, 100)
	if h.N != 0 {
		t.Fatal("empty distribution absorbed samples")
	}
	one := binBursts([]float64{42})
	h.AddMultinomial(rng, one, 100)
	if h.N != 100 || h.Counts[histBin(42)] != 100 {
		t.Fatalf("single-bin multinomial lost counts: N=%d", h.N)
	}
	many := binBursts(syntheticBursts(sim.NewRNG(2), 50))
	for trial := 0; trial < 50; trial++ {
		var g Histogram
		n := int64(rng.Intn(100000))
		g.AddMultinomial(rng, many, n)
		if g.N != n {
			t.Fatalf("multinomial over %d bins produced %d of %d samples", len(many), g.N, n)
		}
	}
}

func TestBinBurstsMatchesAdd(t *testing.T) {
	bursts := syntheticBursts(sim.NewRNG(3), 200)
	var direct Histogram
	for _, v := range bursts {
		direct.Add(v)
	}
	var total float64
	for _, b := range binBursts(bursts) {
		if direct.Counts[b.bin] == 0 {
			t.Fatalf("binBursts invented bin %d", b.bin)
		}
		if got := b.p * float64(len(bursts)); math.Abs(got-float64(direct.Counts[b.bin])) > 1e-9 {
			t.Fatalf("bin %d probability %.6f disagrees with count %d", b.bin, b.p, direct.Counts[b.bin])
		}
		total += b.p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("bin probabilities sum to %v", total)
	}
}

func TestHostID(t *testing.T) {
	cases := map[int]string{
		0:          "h000000",
		42:         "h000042",
		999_999:    "h999999",
		1_000_000:  "h1000000",
		12_345_678: "h12345678",
	}
	for g, want := range cases {
		if got := hostID(g); got != want {
			t.Errorf("hostID(%d) = %q, want %q", g, got, want)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	scn := quickScn()
	scn.Machines = MaxMachines + 1
	if err := scn.Validate(); err == nil {
		t.Error("oversized population accepted")
	}
	scn = quickScn()
	scn.Minutes = MaxMinutes + 1
	if err := scn.Validate(); err == nil {
		t.Error("oversized horizon accepted")
	}
	scn = quickScn()
	scn.Policy = "replication"
	scn.Machines = 3
	scn.Replication = 4
	if err := scn.Validate(); err == nil {
		t.Error("replication factor above population accepted")
	}
	scn.Replication = 3
	if err := scn.Validate(); err != nil {
		t.Errorf("replication == population rejected: %v", err)
	}
}

// TestSettledCompletionsMatchEventDriven pins the timeFree fast path:
// a fifo fleet settled arithmetically must report exactly the
// statistics of the event-per-completion path — the only permitted
// difference is the Fired event-count probe.
func TestSettledCompletionsMatchEventDriven(t *testing.T) {
	scn := quickScn() // fifo by default, churn on
	scn.Machines = 300
	run := func() *EnvStats {
		sr, err := RunShard(scn, 0)
		if err != nil {
			t.Fatal(err)
		}
		return sr.Envs[0]
	}
	settled := run()
	batchCompletions = false
	defer func() { batchCompletions = true }()
	eventful := run()

	if settled.Fired >= eventful.Fired {
		t.Fatalf("settling did not reduce events: %d vs %d", settled.Fired, eventful.Fired)
	}
	settled.Fired = eventful.Fired
	a, _ := json.Marshal(settled)
	b, _ := json.Marshal(eventful)
	if !bytes.Equal(a, b) {
		t.Fatalf("settled fifo stats differ from event-driven:\n%s\nvs\n%s", a, b)
	}
}

// TestGroupedBurstSettlingMatchesPerHost pins the grouped settling
// path (one multinomial chain per class at the horizon,
// drainBurstsGrouped) against the per-host reference drains: the total
// burst count must be conserved exactly, the latency CDFs must agree
// within a small KS distance, the checked percentiles must land within
// one histogram bin, and every statistic other than the latency
// histogram must be byte-identical — grouping only re-draws how the
// same burst mass distributes over bins.
func TestGroupedBurstSettlingMatchesPerHost(t *testing.T) {
	scn := quickScn() // churn on: phases open and close all day
	scn.Machines = 400
	run := func() *EnvStats {
		sr, err := RunShard(scn, 0)
		if err != nil {
			t.Fatal(err)
		}
		return sr.Envs[0]
	}
	grouped := run()
	batchSettleBursts = false
	defer func() { batchSettleBursts = true }()
	perHost := run()

	if grouped.Latency.N != perHost.Latency.N {
		t.Fatalf("grouped settling changed the burst count: %d vs %d", grouped.Latency.N, perHost.Latency.N)
	}
	if grouped.Latency.N == 0 {
		t.Fatal("scenario produced no bursts; the test compares nothing")
	}

	var cumG, cumP, ks float64
	for i := 0; i < histBins; i++ {
		cumG += float64(grouped.Latency.Counts[i]) / float64(grouped.Latency.N)
		cumP += float64(perHost.Latency.Counts[i]) / float64(perHost.Latency.N)
		if d := math.Abs(cumG - cumP); d > ks {
			ks = d
		}
	}
	if ks > 0.02 {
		t.Fatalf("KS distance %.4f between grouped and per-host latency histograms exceeds 0.02", ks)
	}
	for _, p := range []float64{0.50, 0.90, 0.95, 0.99} {
		g, r := grouped.Latency.Percentile(p), perHost.Latency.Percentile(p)
		if ratio := g / r; ratio < 0.93 || ratio > 1.08 {
			t.Errorf("p%.0f diverged: grouped %.2f ms vs per-host %.2f ms", p*100, g, r)
		}
	}

	// Grouping draws on its own derived stream after the event loop
	// ends, so nothing else may move — not even the Fired probe.
	g, p := *grouped, *perHost
	g.Latency, p.Latency = Histogram{}, Histogram{}
	a, _ := json.Marshal(g)
	b, _ := json.Marshal(p)
	if !bytes.Equal(a, b) {
		t.Fatalf("grouped settling perturbed non-latency statistics:\n%s\nvs\n%s", a, b)
	}
}

// TestMergerStreaming checks the incremental fold: absorbing shards one
// at a time in index order matches the batch merge, and out-of-order or
// short folds are rejected.
func TestMergerStreaming(t *testing.T) {
	scn := quickScn()
	shards := make([]*ShardResult, scn.Shards())
	for i := range shards {
		var err error
		if shards[i], err = RunShard(scn, i); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := MergeShards(scn, shards)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMerger(scn)
	for i, sr := range shards {
		if err := m.Absorb(i, sr); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Render() != batch.Render() || streamed.CSV() != batch.CSV() {
		t.Fatal("streamed merge differs from batch merge")
	}

	bad := NewMerger(scn)
	if err := bad.Absorb(1, shards[1]); err == nil {
		t.Fatal("out-of-order absorb accepted")
	}
	short := NewMerger(scn)
	if _, err := short.Finish(); err == nil {
		t.Fatal("finish before all shards accepted")
	}
}
