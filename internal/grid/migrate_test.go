package grid

import (
	"testing"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
)

// migTestEnv builds a hand-wired shard environment with the migration
// plane enabled, bypassing calibration (rates are pinned to 1 chunk/s
// in both owner states so flips cannot perturb progress arithmetic).
func migTestEnv(t *testing.T, migration string) (*envShard, *sim.Simulator) {
	t.Helper()
	// 800-chunk units checkpoint every 100 chunks — at the pinned
	// 1 chunk/s rate a sync period crosses three checkpoint boundaries
	// but no unit completes inside a test window.
	scn := Scenario{
		Machines: 4, Minutes: 120, Seed: 1,
		Policy: "fifo", ChunksPerUnit: 800,
		Migration: migration, Envs: []string{"vmplayer"},
	}.Normalize()
	s := sim.New()
	env := &envShard{
		scn:    scn,
		prof:   profByName(t, "vmplayer"),
		sim:    s,
		policy: newPolicy(scn, "t", 500),
		stats:  &EnvStats{Env: "vmplayer"},
	}
	env.mig = newMigrator(env, s)
	return env, s
}

// migTestSlab returns a hand-built slab of n hosts on env. The class is
// cloned with an essentially infinite off-gap so a test-driven powerOff
// never races a scheduled power-on against the transfer under test;
// every host gets a 1 MB/s link each way.
func migTestSlab(t *testing.T, env *envShard, n int) *hostSlab {
	t.Helper()
	class := Classes()[0]
	class.MeanOffMin = 1e6 // ≈ two years: the scheduled power-on never lands in a test window
	sl := testSlab(env, 0, n, class)
	for i := 0; i < n; i++ {
		sl.mig[i].upBps, sl.mig[i].downBps = 8e6, 8e6 // 1 MB/s each way
	}
	return sl
}

// TestMigrationOnDepartureRoundTrip walks the whole on-departure path:
// eviction rollback, checkpoint upload at the departing host's uplink,
// server-side queueing, pull-based placement on the next host to ask
// for work, download at the receiver's downlink, and resumption at the
// checkpointed progress.
func TestMigrationOnDepartureRoundTrip(t *testing.T) {
	env, s := migTestEnv(t, "on-departure")
	sl := migTestSlab(t, env, 2)
	const src, dst = 0, 1
	sl.on[src], sl.hasWork[src] = true, true
	sl.wu[src] = boinc.WorkUnit{Seed: 501, Chunks: 100_000, CheckpointEvery: 100}
	sl.progress[src], sl.accrued[src] = 351, 10*sim.Second

	sl.powerOff(src, 10*sim.Second)
	if sl.mig[src].xfer == nil || sl.mig[src].xferKind != xferDepartUpload {
		t.Fatal("departure did not start a checkpoint upload")
	}
	if len(env.mig.pending) != 0 {
		t.Fatal("checkpoint queued before its upload drained")
	}
	// ~78.6 MB at 1 MB/s: the upload drains well before 120 s… of margin.
	s.RunUntil(200 * sim.Second)
	if len(env.mig.pending) != 1 {
		t.Fatalf("queue holds %d checkpoints after the upload, want 1", len(env.mig.pending))
	}
	if sl.hasWork[src] || sl.ckpt[src] != nil {
		t.Fatal("departed host still owns the unit after the server took it")
	}
	if env.stats.MigTxBytes == 0 {
		t.Fatal("upload moved no accounted bytes")
	}
	if mu := env.mig.pending[0]; mu.chunks != 300 || mu.wu.Seed != 501 {
		t.Fatalf("queued checkpoint carries %d chunks of unit %d, want 300 of 501", mu.chunks, mu.wu.Seed)
	}

	sl.powerOn(dst, s.Now(), true)
	if sl.hasWork[dst] || sl.mig[dst].xferKind != xferMigDownload {
		t.Fatal("receiving host did not start the migration download")
	}
	s.RunUntil(400 * sim.Second)
	st := env.stats
	if st.Migrations != 1 || st.MigSavedChunks != 300 || st.MigRxBytes == 0 {
		t.Fatalf("migration accounting wrong: %+v", st)
	}
	if !sl.hasWork[dst] || sl.wu[dst].Seed != 501 || sl.progress[dst] != 300 {
		t.Fatalf("unit did not resume at its checkpoint: wu=%d progress=%v", sl.wu[dst].Seed, sl.progress[dst])
	}
	if st.MigSavedSec != 300 { // 300 chunks at the pinned 1 chunk/s
		t.Fatalf("saved recompute %v s, want 300", st.MigSavedSec)
	}
}

// TestMigrationReturnBeforeUploadResumesLocally: the owner coming back
// mid-upload outruns the migration — the transfer is abandoned and the
// unit resumes from the local checkpoint, exactly as under "none".
func TestMigrationReturnBeforeUploadResumesLocally(t *testing.T) {
	env, s := migTestEnv(t, "on-departure")
	sl := migTestSlab(t, env, 1)
	sl.on[0], sl.hasWork[0] = true, true
	sl.wu[0] = boinc.WorkUnit{Seed: 501, Chunks: 100_000, CheckpointEvery: 100}
	sl.progress[0], sl.accrued[0] = 351, 10*sim.Second

	sl.powerOff(0, 10*sim.Second)
	s.RunUntil(12 * sim.Second) // a sliver of the ~79 s upload
	sl.powerOn(0, s.Now(), true)
	if sl.mig[0].xfer != nil || len(env.mig.pending) != 0 {
		t.Fatal("abandoned upload still in flight or queued")
	}
	if !sl.hasWork[0] || sl.progress[0] != 300 || sl.wu[0].Seed != 501 {
		t.Fatalf("local resume failed: progress=%v wu=%d", sl.progress[0], sl.wu[0].Seed)
	}
	if env.stats.Restores != 1 || env.stats.Migrations != 0 {
		t.Fatalf("stats after local resume: %+v", env.stats)
	}
	// The upload's drained portion occupied the frontend and stays
	// accounted; the full checkpoint does not.
	if tx := env.stats.MigTxBytes; tx <= 0 || tx >= migFullBytes(env.prof) {
		t.Fatalf("partial upload accounted %d bytes, want a proper fraction of %d", tx, migFullBytes(env.prof))
	}
}

// TestMigrationEagerSyncThenInstantDeparture: eager hosts push
// incremental checkpoints on a timer; a departure then migrates the
// server's copy with no upload delay, charging the staleness (chunks
// past the last sync) to LostChunks.
func TestMigrationEagerSyncThenInstantDeparture(t *testing.T) {
	env, s := migTestEnv(t, "eager")
	sl := migTestSlab(t, env, 1)
	sl.powerOn(0, 0, true) // assigns a fresh fifo unit, arms the sync timer
	if !sl.hasWork[0] {
		t.Fatal("power-on assigned no work")
	}
	every := sl.wu[0].CheckpointEvery

	// One sync period at 1 chunk/s: progress 300, synced snapshot is
	// the last periodic checkpoint boundary below it.
	s.RunUntil(migSyncPeriod + 60*sim.Second) // sync tick + upload drain
	if !sl.mig[0].synced.ok || sl.mig[0].synced.seed != sl.wu[0].Seed {
		t.Fatalf("no server copy after a sync period: %+v", sl.mig[0].synced)
	}
	wantSnap := int(300) / every * every
	if sl.mig[0].synced.chunks != wantSnap {
		t.Fatalf("synced %d chunks, want %d", sl.mig[0].synced.chunks, wantSnap)
	}
	if env.stats.MigTxBytes == 0 {
		t.Fatal("sync moved no accounted bytes")
	}

	lostBefore := env.stats.LostChunks
	seed := sl.wu[0].Seed
	off := s.Now() + 10*sim.Second
	sl.accrue(0, off) // pin progress at the departure instant
	sl.powerOff(0, off)
	if len(env.mig.pending) != 1 {
		t.Fatal("eager departure did not queue the server copy instantly")
	}
	if mu := env.mig.pending[0]; mu.chunks != wantSnap || mu.wu.Seed != seed {
		t.Fatalf("queued copy carries %d chunks of %d, want %d of %d", mu.chunks, mu.wu.Seed, wantSnap, seed)
	}
	if sl.hasWork[0] || sl.ckpt[0] != nil {
		t.Fatal("departed eager host kept its unit")
	}
	// Rollback loss plus staleness: everything past the synced snapshot.
	if lost := env.stats.LostChunks - lostBefore; lost <= 0 {
		t.Fatalf("staleness charged %d lost chunks, want > 0", lost)
	}
}

// TestMigrationDownloadInterruptedRequeues: a receiving host departing
// mid-download returns the checkpoint to the head of the queue for the
// next volunteer.
func TestMigrationDownloadInterruptedRequeues(t *testing.T) {
	env, s := migTestEnv(t, "on-departure")
	env.mig.enqueue(migUnit{wu: boinc.WorkUnit{Seed: 901, Chunks: 100_000, CheckpointEvery: 100}, chunks: 400, bytes: 50_000_000})

	sl := migTestSlab(t, env, 1)
	sl.powerOn(0, 0, true)
	if sl.mig[0].xferKind != xferMigDownload {
		t.Fatal("queued checkpoint not pulled")
	}
	s.RunUntil(5 * sim.Second) // 50 MB at 1 MB/s: nowhere near done
	sl.powerOff(0, s.Now())
	if len(env.mig.pending) != 1 || env.mig.pending[0].wu.Seed != 901 {
		t.Fatalf("interrupted download not requeued: %+v", env.mig.pending)
	}
	if env.stats.Migrations != 0 {
		t.Fatalf("aborted download counted as a migration: %+v", env.stats)
	}
	// The ~5 MB that drained before the abort occupied the frontend and
	// stays accounted; the full 50 MB does not.
	if rx := env.stats.MigRxBytes; rx < 4_000_000 || rx > 6_000_000 {
		t.Fatalf("partial download accounted %d bytes, want ≈5 MB", rx)
	}
}

// TestMigrationDropsValidatedUnits: a queued checkpoint whose unit the
// policy validated in the meantime (deadline reissue) is dropped at
// placement time — no download, no migration credit, fresh work
// assigned instead.
func TestMigrationDropsValidatedUnits(t *testing.T) {
	env, _ := migTestEnv(t, "on-departure")
	env.policy = newPolicy(Scenario{Policy: "deadline", DeadlineMin: 1, ChunksPerUnit: 800}.Normalize(), "t", 700)

	const goneHost, rescuer = 7, 8
	wu := env.policy.Assign(goneHost, 0)
	env.mig.enqueue(migUnit{wu: wu, chunks: 400, bytes: 50_000_000})
	// A deadline reissue beats the migration queue to it.
	rescued := env.policy.Assign(rescuer, 2*60*sim.Second)
	if rescued.Seed != wu.Seed {
		t.Fatalf("overdue unit not reissued: %d vs %d", rescued.Seed, wu.Seed)
	}
	env.policy.Submit(rescuer, rescued, resultFor(rescued), 3*60*sim.Second)

	sl := migTestSlab(t, env, 1)
	sl.powerOn(0, 4*60*sim.Second, true)
	if sl.mig[0].xferKind == xferMigDownload {
		t.Fatal("validated unit still migrated")
	}
	if !sl.hasWork[0] || sl.wu[0].Seed == wu.Seed {
		t.Fatalf("host did not receive fresh work: %+v", sl.wu[0])
	}
	if len(env.mig.pending) != 0 {
		t.Fatal("stale checkpoint left in the queue")
	}
	if env.stats.Migrations != 0 || env.stats.MigRxBytes != 0 {
		t.Fatalf("dropped checkpoint credited: %+v", env.stats)
	}
}

// TestMigrationQueueOrder: placements come off the queue oldest-first,
// and an interrupted download goes back to the head, not the tail.
func TestMigrationQueueOrder(t *testing.T) {
	env, _ := migTestEnv(t, "on-departure")
	m := env.mig
	for seed := uint64(1); seed <= 3; seed++ {
		m.enqueue(migUnit{wu: boinc.WorkUnit{Seed: seed}})
	}
	first, ok := m.pop()
	if !ok || first.wu.Seed != 1 {
		t.Fatalf("pop = %v, want unit 1", first.wu.Seed)
	}
	m.requeueFront(first)
	for want := uint64(1); want <= 3; want++ {
		mu, ok := m.pop()
		if !ok || mu.wu.Seed != want {
			t.Fatalf("pop = %v, want unit %d", mu.wu.Seed, want)
		}
	}
	if _, ok := m.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestMigStateBytes: VM-backed environments ship a RAM-image-sized
// checkpoint; the native baseline ships only worker state, and the
// incremental sync is a fraction of the full image.
func TestMigStateBytes(t *testing.T) {
	vm := profByName(t, "vmplayer")
	native := profByName(t, "native")
	if full := migFullBytes(vm); full <= vm.RAMBytes/8 || full > vm.RAMBytes {
		t.Fatalf("vmplayer checkpoint %d bytes outside the plausible band for %d RAM", full, vm.RAMBytes)
	}
	if full := migFullBytes(native); full != 4096 {
		t.Fatalf("native checkpoint %d bytes, want the bare progress file", full)
	}
	if s, f := migSyncBytes(vm), migFullBytes(vm); s >= f || s < 4096 {
		t.Fatalf("sync %d bytes vs full %d", s, f)
	}
}
