package grid

import (
	"fmt"
	"sort"
	"strings"

	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// ShardSize is the maximum number of hosts one shard simulates. It
// fixes the shard count for a given fleet size, so results never
// depend on the worker count that happens to execute the shards.
const ShardSize = 512

// MaxMachines and MaxMinutes bound a scenario to what the simulator is
// sized (and tested) for: a ten-million-host fleet over up to a virtual
// year. Validate rejects anything beyond them with the valid range.
const (
	MaxMachines = 10_000_000
	MaxMinutes  = 366 * 24 * 60
)

// DefaultBandwidthMbps is the default aggregate capacity, in Mbit/s,
// of the server frontend serving one population slice: a gigabit NIC
// per frontend of the (sharded) project server.
const DefaultBandwidthMbps = 1000

// Scenario describes one fleet simulation. The zero value is not
// runnable; call Normalize (idempotent) to fill defaults and Validate
// to check it.
type Scenario struct {
	// Machines is the volunteer population size.
	Machines int
	// Minutes is the virtual horizon.
	Minutes int
	// Seed drives every stochastic element; identical scenarios with
	// identical seeds are bit-identical.
	Seed uint64
	// Quick trims the calibration windows (for unit tests).
	Quick bool

	// Churn enables volunteer power churn (owners arriving and
	// leaving, machines powering off mid-work-unit). Without it every
	// machine is on for the whole horizon and only owner activity
	// varies.
	Churn bool
	// Policy selects the server's scheduling policy: "fifo",
	// "deadline", or "replication".
	Policy string
	// Replication is the quorum size for the replication policy.
	Replication int
	// DeadlineMin is the work-unit deadline, in virtual minutes, for
	// the deadline policy.
	DeadlineMin float64
	// FaultyFrac is the fraction of hosts that return corrupted
	// results (what quorum validation exists to catch).
	FaultyFrac float64
	// ChunksPerUnit sizes a work unit; at the calibrated office-class
	// rates the default is roughly ten virtual minutes of science.
	ChunksPerUnit int
	// Envs lists the VM environments to fleet (profile names accepted
	// by profiles.ByName). Empty means the paper's four environments.
	Envs []string

	// Migration selects server-mediated checkpoint migration over the
	// modeled network: "none" keeps checkpoints on their host (the
	// paper's baseline — a departed host's work waits for its return),
	// "on-departure" has a departing host upload its checkpoint so the
	// server can re-place the unit on another volunteer, and "eager"
	// keeps a server-side copy fresh with periodic incremental syncs so
	// a departure migrates instantly from the latest copy.
	Migration string
	// BandwidthMbps is the aggregate transfer capacity, in Mbit/s, of
	// the server frontend serving each population slice (the server
	// farm is sharded exactly like the simulation, so capacity scales
	// with the fleet). Zero means DefaultBandwidthMbps.
	BandwidthMbps float64
}

// Policies names the valid scheduling policies.
func Policies() []string { return []string{"fifo", "deadline", "replication"} }

// MigrationPolicies names the valid checkpoint-migration policies.
func MigrationPolicies() []string { return []string{"none", "on-departure", "eager"} }

// EnvNames returns every valid -env value: exactly the profile names
// ByName resolves.
func EnvNames() []string {
	var names []string
	for _, p := range profiles.Named() {
		names = append(names, p.Name)
	}
	return names
}

// Normalize fills unset fields with defaults and returns the result.
func (s Scenario) Normalize() Scenario {
	if s.Machines <= 0 {
		s.Machines = 256
	}
	if s.Minutes <= 0 {
		s.Minutes = 60
	}
	if s.Policy == "" {
		s.Policy = "fifo"
	}
	if s.Replication <= 0 {
		s.Replication = 2
	}
	if s.DeadlineMin <= 0 {
		s.DeadlineMin = 30
	}
	if s.ChunksPerUnit <= 0 {
		s.ChunksPerUnit = 1_000_000
	}
	if len(s.Envs) == 0 {
		for _, p := range profiles.All() {
			s.Envs = append(s.Envs, p.Name)
		}
	}
	if s.Migration == "" {
		s.Migration = "none"
	}
	// Exactly zero means unset; a negative bandwidth is left for
	// Validate to reject rather than silently papered over.
	if s.BandwidthMbps == 0 {
		s.BandwidthMbps = DefaultBandwidthMbps
	}
	return s
}

// Migrates reports whether the (normalized) scenario moves checkpoints
// between hosts — the switch for the extra table and CSV columns.
func (s Scenario) Migrates() bool { return s.Normalize().Migration != "none" }

// Validate reports the first configuration error. Unknown environment
// names list the valid set.
func (s Scenario) Validate() error {
	s = s.Normalize()
	ok := false
	for _, p := range Policies() {
		if s.Policy == p {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("grid: unknown policy %q (valid: %s)", s.Policy, strings.Join(Policies(), ", "))
	}
	for _, env := range s.Envs {
		if _, found := profiles.ByName(env); !found {
			valid := EnvNames()
			sort.Strings(valid)
			return fmt.Errorf("grid: unknown environment %q (valid: %s)", env, strings.Join(valid, ", "))
		}
	}
	if s.FaultyFrac < 0 || s.FaultyFrac > 1 {
		return fmt.Errorf("grid: faulty fraction %g outside [0, 1]", s.FaultyFrac)
	}
	if s.Machines > MaxMachines {
		return fmt.Errorf("grid: %d machines outside [1, %d]", s.Machines, MaxMachines)
	}
	if s.Minutes > MaxMinutes {
		return fmt.Errorf("grid: %d minutes outside [1, %d]", s.Minutes, MaxMinutes)
	}
	if s.Policy == "replication" && s.Replication > s.Machines {
		return fmt.Errorf("grid: replication factor %d exceeds the population %d (valid: 1..%d)",
			s.Replication, s.Machines, s.Machines)
	}
	ok = false
	for _, p := range MigrationPolicies() {
		if s.Migration == p {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("grid: unknown migration policy %q (valid: %s)",
			s.Migration, strings.Join(MigrationPolicies(), ", "))
	}
	if s.BandwidthMbps < 0 {
		return fmt.Errorf("grid: bandwidth %g Mbit/s must be positive", s.BandwidthMbps)
	}
	return nil
}

// envProfiles resolves the scenario's environments.
func (s Scenario) envProfiles() []vmm.Profile {
	var out []vmm.Profile
	for _, env := range s.Envs {
		p, _ := profiles.ByName(env)
		out = append(out, p)
	}
	return out
}

// Key canonicalizes every scenario parameter except Seed and Quick
// (those are carried by the engine config) into a cache-scope string.
func (s Scenario) Key() string {
	s = s.Normalize()
	// Bandwidth is inert without migration — the transfer plane never
	// engages — so the scope canonicalizes it under "none": the none
	// point of a migration×bandwidth sweep is simulated once and
	// shares shards with every plain fleet run of the same scenario.
	bw := s.BandwidthMbps
	if s.Migration == "none" {
		bw = DefaultBandwidthMbps
	}
	return fmt.Sprintf("machines=%d|min=%d|churn=%t|policy=%s|rep=%d|ddl=%g|faulty=%g|chunks=%d|envs=%s|mig=%s|bw=%g",
		s.Machines, s.Minutes, s.Churn, s.Policy, s.Replication, s.DeadlineMin,
		s.FaultyFrac, s.ChunksPerUnit, strings.Join(s.Envs, "+"), s.Migration, bw)
}

// popShards reports how many slices the population splits into.
func (s Scenario) popShards() int {
	s = s.Normalize()
	n := (s.Machines + ShardSize - 1) / ShardSize
	if n < 1 {
		n = 1
	}
	return n
}

// Shards reports the scenario's independent work units: one per
// (environment, population slice) cell, so even a single-slice fleet
// parallelizes across its environments on the engine's pool.
func (s Scenario) Shards() int {
	s = s.Normalize()
	return len(s.Envs) * s.popShards()
}

// HostRange returns the global host index range [lo, hi) of population
// slice i, balanced to within one host.
func (s Scenario) HostRange(i int) (lo, hi int) {
	s = s.Normalize()
	n := s.popShards()
	base, rem := s.Machines/n, s.Machines%n
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}
