package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
)

// resultSpace is the range of surrogate result values, matching the
// FFT bin count of the real Einstein worker.
const resultSpace = 4096

// resultFor is the ground-truth result of a work unit: a cheap
// deterministic surrogate for the FFT peak bin (see the package
// comment for why the fleet does not run the real transform).
func resultFor(wu boinc.WorkUnit) int {
	return int(splitmix(wu.Seed^0xe1a57e1a) % resultSpace)
}

// PolicyStats aggregates what a policy did over one shard.
type PolicyStats struct {
	// UnitsIssued counts distinct work units generated; Assignments
	// counts replicas handed out (equal under fifo).
	UnitsIssued int
	Assignments int
	// Returned counts results received; Validated counts units with an
	// accepted canonical result.
	Returned  int
	Validated int
	// Bad counts canonical results that differ from ground truth —
	// corrupted results the policy failed to filter.
	Bad int
	// Invalid counts reports rejected against an established quorum
	// (replication policy only).
	Invalid int
	// Duplicates counts redundant results for already-decided units
	// (the waste a deadline reissue can cause).
	Duplicates int
	// Outstanding counts units issued but never validated.
	Outstanding int
}

// add folds other into s field-wise (for cross-shard merging).
func (s *PolicyStats) add(other PolicyStats) {
	s.UnitsIssued += other.UnitsIssued
	s.Assignments += other.Assignments
	s.Returned += other.Returned
	s.Validated += other.Validated
	s.Bad += other.Bad
	s.Invalid += other.Invalid
	s.Duplicates += other.Duplicates
	s.Outstanding += other.Outstanding
}

// Policy is a pluggable server-side scheduling discipline. A policy
// instance serves one shard's population and must be deterministic in
// its call sequence (the event loop guarantees the sequence itself is
// deterministic). Hosts are identified by their global population
// index; only the quorum policy — which wraps a real boinc.Project —
// ever materializes the "h%06d" name string, and it does so lazily so
// the fifo/deadline hot paths never format an identity at all.
type Policy interface {
	// Name identifies the policy ("fifo", "deadline", "replication").
	Name() string
	// Assign hands the requesting host a work unit.
	Assign(host int, now sim.Time) boinc.WorkUnit
	// Submit records a returned result.
	Submit(host int, wu boinc.WorkUnit, result int, now sim.Time)
	// Needed reports whether the unit still lacks a validated result —
	// the liveness check the migration queue applies before placing a
	// checkpoint, so a unit the policy meanwhile validated (a deadline
	// reissue, a completed quorum) is dropped instead of recomputed.
	Needed(wu boinc.WorkUnit) bool
	// Stats summarizes the shard when the horizon is reached.
	Stats() PolicyStats
}

// newPolicy constructs the scenario's policy for one shard. prefix
// namespaces unit IDs per (shard, environment); seedBase namespaces
// unit seeds.
func newPolicy(scn Scenario, prefix string, seedBase uint64) Policy {
	gen := unitGen{seedBase: seedBase, chunks: scn.ChunksPerUnit}
	switch scn.Policy {
	case "fifo":
		return &fifoPolicy{gen: gen}
	case "deadline":
		return &deadlinePolicy{
			gen:    gen,
			slack:  sim.FromSeconds(scn.DeadlineMin * 60),
			bySeed: map[uint64]*deadlineUnit{},
		}
	case "replication":
		return &quorumPolicy{
			p:      boinc.NewProject(prefix, scn.Replication, scn.ChunksPerUnit, seedBase),
			issued: map[string]boinc.WorkUnit{},
			names:  map[int]string{},
		}
	default:
		panic(fmt.Sprintf("grid: unknown policy %q", scn.Policy)) // Validate rejects earlier
	}
}

// unitGen mints sequential work units with the seed and checkpoint
// conventions of boinc.Project, for the policies that do not wrap a
// Project. One deliberate deviation: the ID string is elided — the
// unit's Seed (seedBase + index) is already a unique identity, and a
// million-host fleet minting hundreds of millions of units cannot
// afford a heap string per unit. The quorum policy, which wraps a real
// Project, keeps full IDs.
type unitGen struct {
	seedBase uint64
	chunks   int
	next     int
}

func (g *unitGen) gen() boinc.WorkUnit {
	i := g.next
	g.next++
	return boinc.WorkUnit{
		Seed:            g.seedBase + uint64(i),
		Chunks:          g.chunks,
		CheckpointEvery: boinc.CheckpointCadence(g.chunks),
	}
}

// timeFree marks policies whose Assign/Submit ignore the call time and
// whose statistics are invariant to the interleaving of calls across
// hosts. Hosts served by such a policy settle their completion chains
// arithmetically at phase boundaries (host.settle) instead of firing
// one simulator event per completed unit — the unit→host mapping
// changes relative to strict completion-time order, but every
// statistic the policy reports is a count over per-host-deterministic
// submissions, so the merged results are unaffected (only the Fired
// event probe shrinks).
type timeFree interface {
	timeFree()
}

// fifoPolicy issues each unit exactly once, in order, and accepts the
// first (only) result as canonical. Units held by hosts that never
// return stay outstanding forever — the weakness the deadline policy
// exists to fix.
type fifoPolicy struct {
	gen unitGen
	st  PolicyStats
}

func (p *fifoPolicy) Name() string { return "fifo" }
func (p *fifoPolicy) timeFree()    {}

func (p *fifoPolicy) Assign(host int, now sim.Time) boinc.WorkUnit {
	p.st.UnitsIssued++
	p.st.Assignments++
	return p.gen.gen()
}

func (p *fifoPolicy) Submit(host int, wu boinc.WorkUnit, result int, now sim.Time) {
	p.st.Returned++
	p.st.Validated++
	if result != resultFor(wu) {
		p.st.Bad++
	}
}

// Needed: fifo issues each unit exactly once and never reissues, so a
// unit still held by a checkpoint cannot have been validated by
// anyone else.
func (p *fifoPolicy) Needed(wu boinc.WorkUnit) bool { return true }

func (p *fifoPolicy) Stats() PolicyStats {
	st := p.st
	st.Outstanding = st.UnitsIssued - st.Validated
	return st
}

// deadlineUnit is one unit's server-side record under the deadline
// policy.
type deadlineUnit struct {
	wu       boinc.WorkUnit
	deadline sim.Time
	done     bool
}

// deadlinePolicy stamps every assignment with a deadline and reissues
// overdue units before minting fresh ones, so work held by churned-off
// volunteers is not lost — at the cost of duplicate results when the
// original host eventually returns. Units are keyed by their seed (the
// elided-ID identity, see unitGen).
type deadlinePolicy struct {
	gen    unitGen
	slack  sim.Time
	units  []*deadlineUnit // issue order
	bySeed map[uint64]*deadlineUnit
	scan   int // units[:scan] are all done
	st     PolicyStats
}

func (p *deadlinePolicy) Name() string { return "deadline" }

func (p *deadlinePolicy) Assign(host int, now sim.Time) boinc.WorkUnit {
	for p.scan < len(p.units) && p.units[p.scan].done {
		p.scan++
	}
	for _, u := range p.units[p.scan:] {
		if !u.done && u.deadline <= now {
			u.deadline = now + p.slack
			p.st.Assignments++
			return u.wu
		}
	}
	wu := p.gen.gen()
	u := &deadlineUnit{wu: wu, deadline: now + p.slack}
	p.units = append(p.units, u)
	p.bySeed[wu.Seed] = u
	p.st.UnitsIssued++
	p.st.Assignments++
	return wu
}

func (p *deadlinePolicy) Submit(host int, wu boinc.WorkUnit, result int, now sim.Time) {
	p.st.Returned++
	u := p.bySeed[wu.Seed]
	if u.done {
		p.st.Duplicates++
		return
	}
	u.done = true
	p.st.Validated++
	if result != resultFor(wu) {
		p.st.Bad++
	}
}

// Needed: a reissued unit may have been validated by its rescuer
// while the original checkpoint sat in the migration queue.
func (p *deadlinePolicy) Needed(wu boinc.WorkUnit) bool {
	u := p.bySeed[wu.Seed]
	return u == nil || !u.done
}

func (p *deadlinePolicy) Stats() PolicyStats {
	st := p.st
	st.Outstanding = st.UnitsIssued - st.Validated
	return st
}

// quorumPolicy is N-way replication with quorum validation, wrapping
// boinc.Project: a unit is canonical once Replication volunteers
// agree, and disagreeing reports are counted invalid.
type quorumPolicy struct {
	p      *boinc.Project
	issued map[string]boinc.WorkUnit
	order  []string // first-issue order, for deterministic stats
	names  map[int]string
	st     PolicyStats
}

func (p *quorumPolicy) Name() string { return "replication" }

// hostName formats the "h%06d" identity the wrapped Project keys its
// volunteer ledger by, memoized per host (the map stays bounded by the
// shard's population).
func (p *quorumPolicy) hostName(host int) string {
	name, ok := p.names[host]
	if !ok {
		name = hostID(host)
		p.names[host] = name
	}
	return name
}

func (p *quorumPolicy) Assign(host int, now sim.Time) boinc.WorkUnit {
	wu := p.p.RequestWork(p.hostName(host))
	if _, seen := p.issued[wu.ID]; !seen {
		p.issued[wu.ID] = wu
		p.order = append(p.order, wu.ID)
	}
	p.st.Assignments++
	return wu
}

func (p *quorumPolicy) Submit(host int, wu boinc.WorkUnit, result int, now sim.Time) {
	p.st.Returned++
	p.p.SubmitResult(p.hostName(host), wu.ID, result)
}

// Needed: a unit whose quorum completed while the checkpoint was in
// transit has a canonical result; recomputing a replica adds nothing.
func (p *quorumPolicy) Needed(wu boinc.WorkUnit) bool {
	_, decided := p.p.Canonical(wu.ID)
	return !decided
}

func (p *quorumPolicy) Stats() PolicyStats {
	st := p.st
	st.UnitsIssued = len(p.order)
	st.Validated = p.p.Validated()
	st.Invalid = p.p.Invalid()
	st.Outstanding = p.p.Outstanding()
	for _, id := range p.order {
		if v, ok := p.p.Canonical(id); ok && v != resultFor(p.issued[id]) {
			st.Bad++
		}
	}
	return st
}
