package grid

import (
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// Class is one stratum of the heterogeneous volunteer population: a
// hardware configuration plus the behaviour of its owner. Churn and
// activity durations are means of exponential distributions, drawn per
// host from its own deterministic stream.
type Class struct {
	// Name labels the class in results and calibration keys.
	Name string
	// CPU is the hardware model handed to hw.NewMachine.
	CPU hw.CPU
	// Weight is the class's share of the population (weights need not
	// sum to 1; they are normalized).
	Weight float64

	// MeanOnMin / MeanOffMin are the mean powered-on session and
	// powered-off gap, in minutes (used only when churn is enabled).
	MeanOnMin, MeanOffMin float64
	// MeanActiveMin / MeanIdleMin alternate the owner between actively
	// using the machine (interactive bursts, VM throttled to leftover
	// cycles) and being away from the keyboard.
	MeanActiveMin, MeanIdleMin float64

	// UpMbps / DownMbps are the class's mean access-link rates toward
	// and from the project server, in Mbit/s. Hosts draw their own
	// rates around these means (hostLinkBps); the rates matter only
	// when the scenario migrates checkpoints.
	UpMbps, DownMbps float64
}

// Classes returns the default population mix: the paper's testbed
// machine plus the strata around it that a 2008-era campus grid would
// actually contain. Weights and churn means follow the shape reported
// by desktop-grid availability studies: office machines are on for
// long stretches during the day, laptops come and go, lab machines
// run nearly unattended.
func Classes() []Class {
	return []Class{
		{
			// The paper's testbed: Core 2 Duo 6600, owner present much
			// of the session.
			Name: "office", CPU: hw.Core2Duo6600(), Weight: 0.40,
			MeanOnMin: 150, MeanOffMin: 60,
			MeanActiveMin: 9, MeanIdleMin: 14,
			UpMbps: 100, DownMbps: 100, // switched Fast Ethernet drop
		},
		{
			// Aging single-core stock, long-running but slow.
			Name: "legacy", CPU: hw.CPU{Cores: 1, FreqHz: 1.8e9, BusK: 0.45}, Weight: 0.25,
			MeanOnMin: 200, MeanOffMin: 120,
			MeanActiveMin: 8, MeanIdleMin: 20,
			UpMbps: 10, DownMbps: 10, // aging 10BASE-T segment
		},
		{
			// Lab/enthusiast quads: nearly always on, owner mostly away.
			Name: "lab", CPU: hw.CPU{Cores: 4, FreqHz: 3.0e9, BusK: 0.45}, Weight: 0.15,
			MeanOnMin: 420, MeanOffMin: 45,
			MeanActiveMin: 6, MeanIdleMin: 30,
			UpMbps: 1000, DownMbps: 1000, // gigabit lab backbone
		},
		{
			// Laptops: quick lid-close churn, owner hovering.
			Name: "laptop", CPU: hw.CPU{Cores: 2, FreqHz: 1.6e9, BusK: 0.45}, Weight: 0.20,
			MeanOnMin: 50, MeanOffMin: 90,
			MeanActiveMin: 12, MeanIdleMin: 9,
			UpMbps: 20, DownMbps: 20, // campus 802.11g, effective rate
		},
	}
}

// hostSeed derives the environment-independent identity stream of host
// g: class membership, honesty, and every churn/activity draw come
// from it, so the same volunteer behaves identically under every VM
// environment and any shard layout.
func hostSeed(seed uint64, g int) uint64 {
	return splitmix(seed ^ splitmix(uint64(g)+0x632be59bd9b4e019))
}

// envSeed derives the environment-specific stream of host g (latency
// resampling, corrupted-result values), independent of the owner
// stream.
func envSeed(seed uint64, env string, g int) uint64 {
	h := splitmix(seed + 0x9e3779b97f4a7c15)
	for _, c := range env {
		h = splitmix(h ^ uint64(c))
	}
	return splitmix(h ^ uint64(g))
}

// splitmix is one SplitMix64 output step, used to spread structured
// seed inputs into independent-looking streams.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hostLinkBps draws host g's access-link rates in bits/second: the
// class means scaled by a uniform ±40% spread (duplex mismatches, wifi
// placement, cross-building uplinks). The draw runs on its own derived
// stream — never the owner or environment RNGs — so enabling migration
// cannot perturb a single churn or latency draw.
func hostLinkBps(class *Class, seed uint64, g int) (upBps, downBps float64) {
	rng := sim.RNG{}
	rng.SetState(splitmix(hostSeed(seed, g) ^ 0x6e65746c696e6b)) // "netlink"
	upBps = class.UpMbps * 1e6 * (0.6 + 0.8*rng.Float64())
	downBps = class.DownMbps * 1e6 * (0.6 + 0.8*rng.Float64())
	return upBps, downBps
}

// classIndexFor deterministically assigns host g its class index by
// weighted draw on the host's identity stream.
func classIndexFor(classes []Class, seed uint64, g int) int {
	var total float64
	for i := range classes {
		total += classes[i].Weight
	}
	rng := sim.RNG{}
	rng.SetState(hostSeed(seed, g) ^ 0xc1a55)
	r := rng.Float64() * total
	for i := range classes {
		r -= classes[i].Weight
		if r < 0 {
			return i
		}
	}
	return len(classes) - 1
}

// classFor is classIndexFor returning the class itself.
func classFor(classes []Class, seed uint64, g int) *Class {
	return &classes[classIndexFor(classes, seed, g)]
}
