package grid

import "math"

// Histogram bin layout: log-spaced bins covering 0.01 ms .. 100 s
// (7 decades), which brackets every latency the burst model can
// produce. The layout is part of the shard payload format — changing
// it changes merged percentiles, so treat it like a wire format.
const (
	histBins    = 256
	histMinMs   = 0.01
	histDecades = 7.0
)

// Histogram accumulates interactive-burst latencies in fixed log
// bins. Fixed bins make the merge of any number of shard histograms a
// plain element-wise sum — associative, commutative, and therefore
// bit-identical no matter how many workers produced the shards.
type Histogram struct {
	Counts [histBins]int64
	N      int64
}

// Add records one latency in milliseconds.
func (h *Histogram) Add(ms float64) {
	i := 0
	if ms > histMinMs {
		i = int(math.Log10(ms/histMinMs) * histBins / histDecades)
		if i >= histBins {
			i = histBins - 1
		}
	}
	h.Counts[i]++
	h.N++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) as the geometric
// midpoint of the bin where the cumulative count crosses rank p·N; an
// empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(h.N)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return histMinMs * math.Pow(10, (float64(i)+0.5)*histDecades/histBins)
		}
	}
	return histMinMs * math.Pow(10, histDecades)
}
