package grid

import (
	"math"

	"vmdg/internal/sim"
)

// Histogram bin layout: log-spaced bins covering 0.01 ms .. 100 s
// (7 decades), which brackets every latency the burst model can
// produce. The layout is part of the shard payload format — changing
// it changes merged percentiles, so treat it like a wire format.
const (
	histBins    = 256
	histMinMs   = 0.01
	histDecades = 7.0
)

// histBin maps a latency in milliseconds to its bin index.
func histBin(ms float64) int {
	if ms <= histMinMs {
		return 0
	}
	i := int(math.Log10(ms/histMinMs) * histBins / histDecades)
	if i >= histBins {
		i = histBins - 1
	}
	return i
}

// Histogram accumulates interactive-burst latencies in fixed log
// bins. Fixed bins make the merge of any number of shard histograms a
// plain element-wise sum — associative, commutative, and therefore
// bit-identical no matter how many workers produced the shards.
type Histogram struct {
	Counts [histBins]int64
	N      int64
}

// Add records one latency in milliseconds.
func (h *Histogram) Add(ms float64) {
	h.Counts[histBin(ms)]++
	h.N++
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) as the geometric
// midpoint of the bin where the cumulative count crosses rank p·N; an
// empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(h.N)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return histMinMs * math.Pow(10, (float64(i)+0.5)*histDecades/histBins)
		}
	}
	return histMinMs * math.Pow(10, histDecades)
}

// burstBin is one cell of a binned empirical burst distribution: the
// histogram bin the calibrated latencies fell into and the fraction of
// them that did.
type burstBin struct {
	bin int
	p   float64
}

// binBursts collapses an empirical latency sample onto the histogram's
// bin layout, yielding the categorical distribution the fleet's
// aggregate sampling draws from. Bins come out in ascending index
// order, which the multinomial walk relies on for determinism.
func binBursts(ms []float64) []burstBin {
	if len(ms) == 0 {
		return nil
	}
	var counts [histBins]int32
	for _, v := range ms {
		counts[histBin(v)]++
	}
	total := float64(len(ms))
	out := make([]burstBin, 0, 16)
	for i, c := range counts {
		if c > 0 {
			out = append(out, burstBin{bin: i, p: float64(c) / total})
		}
	}
	return out
}

// AddMultinomial records n latencies distributed over dist by a seeded
// multinomial draw: a walk of conditional binomials, so the cost is
// O(len(dist)) regardless of n. Replacing n independent categorical
// draws with one multinomial is an exact distributional identity — the
// per-draw and aggregate forms produce the same law over bin counts —
// which is what lets the fleet drop its O(simulated-seconds) per-second
// sampling loop without moving the merged percentiles.
func (h *Histogram) AddMultinomial(rng *sim.RNG, dist []burstBin, n int64) {
	if n <= 0 || len(dist) == 0 {
		return
	}
	remaining := n
	pLeft := 1.0
	for i, b := range dist {
		if remaining == 0 {
			break
		}
		if i == len(dist)-1 || b.p >= pLeft {
			// Last cell (or float drift exhausted the mass): the
			// conditional probability is 1.
			h.Counts[b.bin] += remaining
			h.N += remaining
			remaining = 0
			break
		}
		k := rng.Binomial(remaining, b.p/pLeft)
		h.Counts[b.bin] += k
		h.N += k
		remaining -= k
		pLeft -= b.p
	}
	if remaining > 0 {
		// Unreachable while dist is non-empty, but keep N consistent.
		h.Counts[dist[len(dist)-1].bin] += remaining
		h.N += remaining
	}
}
