// Package grid scales the paper's motivating scenario — volunteer
// desktop machines donating cycles to a BOINC-style project through
// sandboxed virtual machines — from a handful of always-on hosts to
// fleets of tens of thousands with realistic availability churn.
//
// # Two-level simulation
//
// Simulating 10,000 hosts through the full micro-architectural stack
// (internal/hw scheduler rates, internal/hostos threads, internal/vmm
// device emulation) would cost minutes of wall clock per virtual
// minute. Instead the fleet runs a two-level model:
//
//   - Calibration. For every (host class, VM environment) pair that
//     appears in the population, one detailed micro-simulation is run
//     through the real stack: a machine of that class boots the host
//     OS, powers a VM with the environment's profile, and executes an
//     Einstein@home worker (internal/boinc) at idle priority while the
//     owner's interactive bursts arrive once per second. The
//     micro-simulation yields the VM's science rate (chunks/second)
//     with the owner active and away, plus the empirical distribution
//     of interactive-burst latencies — the paper's intrusiveness
//     metric. Calibrations are memoized per process and are pure
//     functions of (class, profile, seed, checkpoint interval, quick),
//     so every shard that needs one observes identical values.
//
//   - Fleet. Each host is then a coarse state machine driven by the
//     same discrete-event kernel (internal/sim): power sessions and
//     owner activity alternate via exponential draws from the host's
//     own SplitMix64 stream and work-unit progress accrues at the
//     calibrated rate. Completions are predicted events, moved in
//     place (sim.Reschedule, pooled closure-free timers) when the rate
//     changes — or, under a policy whose statistics are call-order
//     invariant (fifo), settled arithmetically at phase boundaries
//     with no events at all. Interactive-burst latencies are not
//     resampled per simulated second: each host counts the bursts its
//     active phases owe and settles them with one seeded multinomial
//     over the calibration's binned latency distribution (see
//     ARCHITECTURE.md, "Aggregate burst sampling"), which is what
//     makes million-host, working-day horizons tractable.
//
// # Churn, checkpoints, eviction
//
// When a volunteer powers a machine off mid-work-unit, the VM is
// evicted: progress since the worker's last periodic checkpoint is
// lost, and the surviving state is captured as a real
// vmm.Checkpoint (Encode/Decode round-trip) whose payload is the
// boinc.Progress file — exactly what a migration of the sandbox would
// carry. When the owner returns, the host restores the checkpoint and
// resumes the same unit.
//
// # Checkpoint migration
//
// Scenario.Migration turns that transportable checkpoint into an
// actual migration over a modeled network (internal/netsim: per-class
// host access links, a Scenario.BandwidthMbps server frontend per
// population slice, max-min fair sharing). Under "on-departure" a
// departing host uploads its checkpoint so the server can re-place
// the unit — pull-based, oldest first — on the next volunteer to ask
// for work, which pays a download gap before resuming at the carried
// progress; under "eager" running hosts keep a server-side copy fresh
// with periodic incremental syncs, so departures migrate instantly
// from a copy that is up to one sync period stale. Migration never
// crosses a population slice, so shards stay pure and the worker-count
// determinism contract holds; "none" (the default) leaves the whole
// plane disengaged and is byte-identical to the pre-migration
// simulator (see ARCHITECTURE.md, "Checkpoint migration over the
// modeled network").
//
// # Sharding and determinism
//
// A fleet is partitioned into shards of at most ShardSize hosts. Host
// identity — hardware class, honesty, churn pattern — derives from
// the host's global index and the scenario seed, never from the shard
// layout, so the population is identical no matter how shards are cut
// or on how many workers they run. Each shard owns an independent
// event loop and project server; shard results are plain sums and
// fixed-bin histogram merges folded in shard order, which makes the
// merged fleet result bit-identical for any worker count. Owner
// behaviour (power and activity sessions) draws from an
// environment-independent stream, so the same volunteers churn the
// same way under every VM environment being compared.
//
// # Scheduling policies
//
// The per-shard project server hands out work through a pluggable
// Policy: plain FIFO issue, deadline-aware reissue of overdue units,
// or N-way replication with quorum validation (wrapping
// boinc.Project), which catches the configurable fraction of faulty
// hosts that return corrupted results. One deliberate deviation from
// internal/boinc: result values are a cheap deterministic surrogate
// (a hash of the unit seed) rather than the real FFT peak bin, so a
// 10k-host fleet does not spend its time in Cooley–Tukey butterflies;
// agreement semantics — what quorum validation consumes — are
// preserved.
//
// # Scenario families
//
// A Scenario describes one fleet; a Spec describes a family of them:
// a versioned, JSON-round-trippable document whose fields are named
// axes (lists of values). Spec.Points expands the cartesian product
// over every multi-value axis into concrete scenarios, each tagged
// with the axis values that select it — the declarative input the
// engine's sweep experiment runs, caches per point, and merges into
// one axis-keyed comparison.
package grid
