package grid

import (
	"vmdg/internal/boinc"
	"vmdg/internal/netsim"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// This file is the server-mediated checkpoint-migration layer: what a
// Scenario.Migration policy other than "none" adds on top of the plain
// churn model. Checkpoints move over an internal/netsim star network
// (per-host access links, capacity-limited server frontend), and a
// departed host's work unit can resume on another volunteer instead of
// waiting out the owner's off-gap. Everything here runs inside one
// shard's event loop, so the engine's shard purity — and with it the
// worker-count determinism contract — is untouched: a migration never
// crosses a population slice, just as a real sharded project server
// re-places work within the frontend that holds the checkpoint.

// migSyncPeriod is the eager policy's sync cadence: how often a
// running host pushes an incremental checkpoint to the server.
const migSyncPeriod = 5 * 60 * sim.Second

// migFullBytes models the on-the-wire size of one transportable VM
// checkpoint: the guest RAM image (compressed ~4:1 — checkpoint
// streams are highly redundant) plus the overlay metadata and progress
// file. A native host ships only the worker's own state.
func migFullBytes(prof vmm.Profile) int64 {
	return prof.RAMBytes/4 + 4096
}

// migSyncBytes models one eager incremental sync: the pages dirtied
// since the last push — a fixed fraction of the full image, floored at
// the progress file itself.
func migSyncBytes(prof vmm.Profile) int64 {
	if b := migFullBytes(prof) / 8; b > 4096 {
		return b
	}
	return 4096
}

// migUnit is one server-held checkpoint awaiting placement on a new
// host.
type migUnit struct {
	wu     boinc.WorkUnit
	chunks int   // progress the checkpoint carries
	bytes  int64 // modeled download size at placement
}

// migrator is one shard's migration plane: the netsim network plus the
// server's queue of checkpoints awaiting a volunteer. Placement is
// pull-based — the next host to ask for work (after a completion or a
// power-on) receives the oldest queued checkpoint instead of a fresh
// unit — which keeps the server call sequence exactly as deterministic
// as the plain Assign path.
type migrator struct {
	env     *envShard
	net     *netsim.Network
	pending []migUnit
	eager   bool
}

// newMigrator wires the shard's migration plane onto its simulator.
func newMigrator(env *envShard, s *sim.Simulator) *migrator {
	return &migrator{
		env:   env,
		net:   netsim.New(s, netsim.Config{AggregateBps: env.scn.BandwidthMbps * 1e6}),
		eager: env.scn.Migration == "eager",
	}
}

// enqueue appends a checkpoint to the placement queue.
func (m *migrator) enqueue(mu migUnit) { m.pending = append(m.pending, mu) }

// requeueFront returns a checkpoint whose download died with its
// target host; it keeps its place at the head of the queue.
func (m *migrator) requeueFront(mu migUnit) {
	m.pending = append([]migUnit{mu}, m.pending...)
}

// pop takes the oldest queued checkpoint still worth placing. Units
// the policy has meanwhile validated — a deadline reissue that came
// back, a quorum that completed — are dropped here rather than
// downloaded and recomputed: the server knows its own canon.
func (m *migrator) pop() (migUnit, bool) {
	for len(m.pending) > 0 {
		mu := m.pending[0]
		m.pending = m.pending[1:]
		if m.env.policy.Needed(mu.wu) {
			return mu, true
		}
	}
	return migUnit{}, false
}

// The hosts' transfer kinds: at most one transfer is in flight per
// host, tagged with what it is moving.
const (
	xferNone         = iota
	xferDepartUpload // departing checkpoint moving up to the server
	xferSyncUpload   // eager incremental sync moving up
	xferMigDownload  // migrated checkpoint moving down to a new host
)

// syncState records what the server holds for the host's current unit
// under the eager policy.
type syncState struct {
	seed   uint64
	chunks int
	ok     bool
}

// The migration arms extend the host's closure-free event vocabulary
// (see the timer arms in host.go) to netsim completion sinks.
type (
	departUpSink host
	syncUpSink   host
	migDownSink  host
	syncTimerArm host
)

func (a *departUpSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	(*host)(a).departUploadDone(now, t)
}
func (a *syncUpSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	(*host)(a).syncUploadDone(now, t)
}
func (a *migDownSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	(*host)(a).migDownloadDone(now, t)
}
func (a *syncTimerArm) Fire(now sim.Time) { (*host)(a).syncTick(now) }

// cancelXfer abandons the host's in-flight transfer, crediting the
// bytes the fluid model already moved to the direction's counter —
// the partial traffic occupied the shared frontend all the same.
func (h *host) cancelXfer() {
	t := h.xfer
	if t == nil {
		return
	}
	h.env.mig.net.Cancel(t) // advances the fluid model to now first
	moved := t.Bytes() - t.Remaining()
	if h.xferKind == xferMigDownload {
		h.env.stats.MigRxBytes += moved
	} else {
		h.env.stats.MigTxBytes += moved
	}
	h.xfer, h.xferKind = nil, xferNone
}

// migDepart runs at power-off, after the eviction rollback has settled
// h.progress and encoded h.ckpt: whatever transfer the session had in
// flight dies with it, and the scenario's policy decides whether the
// checkpoint leaves the machine.
func (h *host) migDepart(now sim.Time, m *migrator) {
	if h.xfer != nil {
		wasDownload := h.xferKind == xferMigDownload
		h.cancelXfer()
		if wasDownload {
			// The half-downloaded checkpoint goes back to the head of
			// the queue for the next volunteer.
			m.requeueFront(h.pendingMig)
			h.pendingMig = migUnit{}
		}
	}
	h.syncTimer.Cancel()
	h.syncTimer = sim.Handle{}
	if !h.hasWork || h.ckpt == nil {
		return
	}
	kept := int(h.progress)
	switch {
	case m.eager:
		// The server migrates its own latest synced copy — available
		// the instant the host departs, but stale relative to the
		// local checkpoint; the staleness is recomputed by the
		// receiving host and accounted as lost chunks here. Without a
		// synced copy for this unit the checkpoint stays local, as
		// under "none".
		if h.synced.ok && h.synced.seed == h.wu.Seed && h.synced.chunks > 0 {
			carry := h.synced.chunks
			if carry > kept {
				carry = kept
			}
			h.env.stats.LostChunks += int64(kept - carry)
			m.enqueue(migUnit{wu: h.wu, chunks: carry, bytes: migFullBytes(h.env.prof)})
			h.clearWork()
		}
	case kept > 0:
		// on-departure: the checkpoint must first travel up the
		// host's own uplink; until the upload drains, the unit can
		// still resume locally if the owner returns early.
		h.xfer = m.net.Start(migFullBytes(h.env.prof), h.upBps, (*departUpSink)(h))
		h.xferKind = xferDepartUpload
	}
}

// migReturn runs at power-on, before the checkpoint-restore switch: a
// departure upload the owner outran is abandoned (the unit resumes
// locally, exactly as under "none"), and eager hosts restart their
// sync cadence.
func (h *host) migReturn(now sim.Time, m *migrator) {
	if h.xfer != nil && h.xferKind == xferDepartUpload {
		h.cancelXfer()
	}
	if m.eager {
		h.armSyncTimer(now)
	}
}

// departUploadDone fires when a departed host's checkpoint finishes
// draining to the server: the unit now belongs to the server's queue,
// and the local copy is gone for good.
func (h *host) departUploadDone(now sim.Time, t *netsim.Transfer) {
	h.xfer, h.xferKind = nil, xferNone
	h.env.stats.MigTxBytes += t.Bytes()
	h.env.mig.enqueue(migUnit{wu: h.wu, chunks: int(h.progress), bytes: migFullBytes(h.env.prof)})
	h.clearWork()
}

// beginMigDownload starts pulling a queued checkpoint onto this host.
// Until the download drains the host computes nothing — the work-fetch
// gap a real client pays when it inherits a fat VM image.
func (h *host) beginMigDownload(now sim.Time, mu migUnit) {
	h.hasWork = false
	h.progress = 0
	h.accrued = now
	h.pendingMig = mu
	h.xfer = h.env.mig.net.Start(mu.bytes, h.downBps, (*migDownSink)(h))
	h.xferKind = xferMigDownload
}

// migDownloadDone resumes the migrated unit at its checkpointed
// progress. The carried chunks are science the grid did not have to
// recompute; they are credited at the receiving host's current rate.
func (h *host) migDownloadDone(now sim.Time, t *netsim.Transfer) {
	mu := h.pendingMig
	h.pendingMig = migUnit{}
	h.xfer, h.xferKind = nil, xferNone
	st := h.env.stats
	st.Migrations++
	st.MigRxBytes += t.Bytes()
	st.MigSavedChunks += int64(mu.chunks)
	st.MigSavedSec += float64(mu.chunks) / h.rate()
	h.wu = mu.wu
	h.progress = float64(mu.chunks)
	h.hasWork = true
	h.accrued = now
	h.scheduleCompletion(now)
}

// armSyncTimer schedules the next eager sync tick.
func (h *host) armSyncTimer(now sim.Time) {
	h.syncTimer = h.env.sim.Schedule(now+migSyncPeriod, "mig-sync", (*syncTimerArm)(h))
}

// syncTick pushes an incremental checkpoint to the server when the
// host has new periodic-checkpoint progress to report and no other
// transfer in flight.
func (h *host) syncTick(now sim.Time) {
	h.syncTimer = sim.Handle{}
	if !h.on {
		return
	}
	h.armSyncTimer(now)
	if !h.hasWork || h.xfer != nil {
		return
	}
	h.accrue(now)
	every := h.wu.CheckpointEvery
	if every < 1 {
		every = 1
	}
	snap := int(h.progress) / every * every
	if snap <= 0 {
		return
	}
	if h.synced.ok && h.synced.seed == h.wu.Seed && h.synced.chunks >= snap {
		return // the server copy is already this fresh
	}
	h.syncChunks = snap
	h.xfer = h.env.mig.net.Start(migSyncBytes(h.env.prof), h.upBps, (*syncUpSink)(h))
	h.xferKind = xferSyncUpload
}

// syncUploadDone records the server's refreshed copy.
func (h *host) syncUploadDone(now sim.Time, t *netsim.Transfer) {
	h.xfer, h.xferKind = nil, xferNone
	h.env.stats.MigTxBytes += t.Bytes()
	h.synced = syncState{seed: h.wu.Seed, chunks: h.syncChunks, ok: true}
}

// migUnitDone runs when the host submits its current unit: a sync
// still in flight is for a dead unit, and the server copy is obsolete.
func (h *host) migUnitDone() {
	if h.xfer != nil && h.xferKind == xferSyncUpload {
		h.cancelXfer()
	}
	h.synced = syncState{}
}

// clearWork strips the host of its unit after the server took it over.
func (h *host) clearWork() {
	h.wu = boinc.WorkUnit{}
	h.progress = 0
	h.hasWork = false
	h.ckpt = nil
	h.synced = syncState{}
}
