package grid

import (
	"vmdg/internal/boinc"
	"vmdg/internal/netsim"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// This file is the server-mediated checkpoint-migration layer: what a
// Scenario.Migration policy other than "none" adds on top of the plain
// churn model. Checkpoints move over an internal/netsim star network
// (per-host access links, capacity-limited server frontend), and a
// departed host's work unit can resume on another volunteer instead of
// waiting out the owner's off-gap. Everything here runs inside one
// shard's event loop, so the engine's shard purity — and with it the
// worker-count determinism contract — is untouched: a migration never
// crosses a population slice, just as a real sharded project server
// re-places work within the frontend that holds the checkpoint.
//
// Per-host migration state lives in the slab's cold migHost array
// (slab.go); like host.go, every method here is a hostSlab method on
// the host's slice-local index.

// migSyncPeriod is the eager policy's sync cadence: how often a
// running host pushes an incremental checkpoint to the server.
const migSyncPeriod = 5 * 60 * sim.Second

// migFullBytes models the on-the-wire size of one transportable VM
// checkpoint: the guest RAM image (compressed ~4:1 — checkpoint
// streams are highly redundant) plus the overlay metadata and progress
// file. A native host ships only the worker's own state.
func migFullBytes(prof vmm.Profile) int64 {
	return prof.RAMBytes/4 + 4096
}

// migSyncBytes models one eager incremental sync: the pages dirtied
// since the last push — a fixed fraction of the full image, floored at
// the progress file itself.
func migSyncBytes(prof vmm.Profile) int64 {
	if b := migFullBytes(prof) / 8; b > 4096 {
		return b
	}
	return 4096
}

// migUnit is one server-held checkpoint awaiting placement on a new
// host.
type migUnit struct {
	wu     boinc.WorkUnit
	chunks int   // progress the checkpoint carries
	bytes  int64 // modeled download size at placement
}

// migrator is one shard's migration plane: the netsim network plus the
// server's queue of checkpoints awaiting a volunteer. Placement is
// pull-based — the next host to ask for work (after a completion or a
// power-on) receives the oldest queued checkpoint instead of a fresh
// unit — which keeps the server call sequence exactly as deterministic
// as the plain Assign path.
type migrator struct {
	env     *envShard
	net     *netsim.Network
	pending []migUnit
	eager   bool
}

// newMigrator wires the shard's migration plane onto its simulator.
func newMigrator(env *envShard, s *sim.Simulator) *migrator {
	return &migrator{
		env:   env,
		net:   netsim.New(s, netsim.Config{AggregateBps: env.scn.BandwidthMbps * 1e6}),
		eager: env.scn.Migration == "eager",
	}
}

// enqueue appends a checkpoint to the placement queue.
func (m *migrator) enqueue(mu migUnit) { m.pending = append(m.pending, mu) }

// requeueFront returns a checkpoint whose download died with its
// target host; it keeps its place at the head of the queue.
func (m *migrator) requeueFront(mu migUnit) {
	m.pending = append([]migUnit{mu}, m.pending...)
}

// pop takes the oldest queued checkpoint still worth placing. Units
// the policy has meanwhile validated — a deadline reissue that came
// back, a quorum that completed — are dropped here rather than
// downloaded and recomputed: the server knows its own canon.
func (m *migrator) pop() (migUnit, bool) {
	for len(m.pending) > 0 {
		mu := m.pending[0]
		m.pending = m.pending[1:]
		if m.env.policy.Needed(mu.wu) {
			return mu, true
		}
	}
	return migUnit{}, false
}

// The hosts' transfer kinds: at most one transfer is in flight per
// host, tagged with what it is moving.
const (
	xferNone         = iota
	xferDepartUpload // departing checkpoint moving up to the server
	xferSyncUpload   // eager incremental sync moving up
	xferMigDownload  // migrated checkpoint moving down to a new host
)

// syncState records what the server holds for the host's current unit
// under the eager policy.
type syncState struct {
	seed   uint64
	chunks int
	ok     bool
}

// The migration arms extend the slab's closure-free event vocabulary
// (see armCell in slab.go) to netsim completion sinks.
type (
	departUpSink armCell
	syncUpSink   armCell
	migDownSink  armCell
	syncTimerArm armCell
)

func (a *departUpSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	a.s.departUploadDone(a.i, now, t)
}
func (a *syncUpSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	a.s.syncUploadDone(a.i, now, t)
}
func (a *migDownSink) TransferDone(now sim.Time, t *netsim.Transfer) {
	a.s.migDownloadDone(a.i, now, t)
}
func (a *syncTimerArm) Fire(now sim.Time) { a.s.syncTick(a.i, now) }

// cancelXfer abandons host i's in-flight transfer, crediting the
// bytes the fluid model already moved to the direction's counter —
// the partial traffic occupied the shared frontend all the same.
func (s *hostSlab) cancelXfer(i int32) {
	ms := &s.mig[i]
	t := ms.xfer
	if t == nil {
		return
	}
	s.env.mig.net.Cancel(t) // advances the fluid model to now first
	moved := t.Bytes() - t.Remaining()
	if ms.xferKind == xferMigDownload {
		s.env.stats.MigRxBytes += moved
	} else {
		s.env.stats.MigTxBytes += moved
	}
	ms.xfer, ms.xferKind = nil, xferNone
}

// migDepart runs at power-off, after the eviction rollback has settled
// progress and encoded the checkpoint: whatever transfer the session
// had in flight dies with it, and the scenario's policy decides whether
// the checkpoint leaves the machine.
func (s *hostSlab) migDepart(i int32, now sim.Time, m *migrator) {
	ms := &s.mig[i]
	if ms.xfer != nil {
		wasDownload := ms.xferKind == xferMigDownload
		s.cancelXfer(i)
		if wasDownload {
			// The half-downloaded checkpoint goes back to the head of
			// the queue for the next volunteer.
			m.requeueFront(ms.pendingMig)
			ms.pendingMig = migUnit{}
		}
	}
	ms.syncTimer.Cancel()
	ms.syncTimer = sim.Handle{}
	if !s.hasWork[i] || s.ckpt[i] == nil {
		return
	}
	kept := int(s.progress[i])
	switch {
	case m.eager:
		// The server migrates its own latest synced copy — available
		// the instant the host departs, but stale relative to the
		// local checkpoint; the staleness is recomputed by the
		// receiving host and accounted as lost chunks here. Without a
		// synced copy for this unit the checkpoint stays local, as
		// under "none".
		if ms.synced.ok && ms.synced.seed == s.wu[i].Seed && ms.synced.chunks > 0 {
			carry := ms.synced.chunks
			if carry > kept {
				carry = kept
			}
			s.env.stats.LostChunks += int64(kept - carry)
			m.enqueue(migUnit{wu: s.wu[i], chunks: carry, bytes: migFullBytes(s.prof())})
			s.clearWork(i)
		}
	case kept > 0:
		// on-departure: the checkpoint must first travel up the
		// host's own uplink; until the upload drains, the unit can
		// still resume locally if the owner returns early.
		ms.xfer = m.net.Start(migFullBytes(s.prof()), ms.upBps, (*departUpSink)(s.arm(i)))
		ms.xferKind = xferDepartUpload
	}
}

// migReturn runs at power-on, before the checkpoint-restore switch: a
// departure upload the owner outran is abandoned (the unit resumes
// locally, exactly as under "none"), and eager hosts restart their
// sync cadence.
func (s *hostSlab) migReturn(i int32, now sim.Time, m *migrator) {
	ms := &s.mig[i]
	if ms.xfer != nil && ms.xferKind == xferDepartUpload {
		s.cancelXfer(i)
	}
	if m.eager {
		s.armSyncTimer(i, now)
	}
}

// departUploadDone fires when a departed host's checkpoint finishes
// draining to the server: the unit now belongs to the server's queue,
// and the local copy is gone for good.
func (s *hostSlab) departUploadDone(i int32, now sim.Time, t *netsim.Transfer) {
	ms := &s.mig[i]
	ms.xfer, ms.xferKind = nil, xferNone
	s.env.stats.MigTxBytes += t.Bytes()
	s.env.mig.enqueue(migUnit{wu: s.wu[i], chunks: int(s.progress[i]), bytes: migFullBytes(s.prof())})
	s.clearWork(i)
}

// beginMigDownload starts pulling a queued checkpoint onto host i.
// Until the download drains the host computes nothing — the work-fetch
// gap a real client pays when it inherits a fat VM image.
func (s *hostSlab) beginMigDownload(i int32, now sim.Time, mu migUnit) {
	ms := &s.mig[i]
	s.hasWork[i] = false
	s.progress[i] = 0
	s.accrued[i] = now
	ms.pendingMig = mu
	ms.xfer = s.env.mig.net.Start(mu.bytes, ms.downBps, (*migDownSink)(s.arm(i)))
	ms.xferKind = xferMigDownload
}

// migDownloadDone resumes the migrated unit at its checkpointed
// progress. The carried chunks are science the grid did not have to
// recompute; they are credited at the receiving host's current rate.
func (s *hostSlab) migDownloadDone(i int32, now sim.Time, t *netsim.Transfer) {
	ms := &s.mig[i]
	mu := ms.pendingMig
	ms.pendingMig = migUnit{}
	ms.xfer, ms.xferKind = nil, xferNone
	st := s.env.stats
	st.Migrations++
	st.MigRxBytes += t.Bytes()
	st.MigSavedChunks += int64(mu.chunks)
	st.MigSavedSec += float64(mu.chunks) / s.rate(i)
	s.wu[i] = mu.wu
	s.progress[i] = float64(mu.chunks)
	s.hasWork[i] = true
	s.accrued[i] = now
	s.scheduleCompletion(i, now)
}

// armSyncTimer schedules host i's next eager sync tick.
func (s *hostSlab) armSyncTimer(i int32, now sim.Time) {
	s.mig[i].syncTimer = s.env.sim.Schedule(now+migSyncPeriod, "mig-sync", (*syncTimerArm)(s.arm(i)))
}

// syncTick pushes an incremental checkpoint to the server when the
// host has new periodic-checkpoint progress to report and no other
// transfer in flight.
func (s *hostSlab) syncTick(i int32, now sim.Time) {
	ms := &s.mig[i]
	ms.syncTimer = sim.Handle{}
	if !s.on[i] {
		return
	}
	s.armSyncTimer(i, now)
	if !s.hasWork[i] || ms.xfer != nil {
		return
	}
	s.accrue(i, now)
	every := s.wu[i].CheckpointEvery
	if every < 1 {
		every = 1
	}
	snap := int(s.progress[i]) / every * every
	if snap <= 0 {
		return
	}
	if ms.synced.ok && ms.synced.seed == s.wu[i].Seed && ms.synced.chunks >= snap {
		return // the server copy is already this fresh
	}
	ms.syncChunks = snap
	ms.xfer = s.env.mig.net.Start(migSyncBytes(s.prof()), ms.upBps, (*syncUpSink)(s.arm(i)))
	ms.xferKind = xferSyncUpload
}

// syncUploadDone records the server's refreshed copy.
func (s *hostSlab) syncUploadDone(i int32, now sim.Time, t *netsim.Transfer) {
	ms := &s.mig[i]
	ms.xfer, ms.xferKind = nil, xferNone
	s.env.stats.MigTxBytes += t.Bytes()
	ms.synced = syncState{seed: s.wu[i].Seed, chunks: ms.syncChunks, ok: true}
}

// migUnitDone runs when the host submits its current unit: a sync
// still in flight is for a dead unit, and the server copy is obsolete.
func (s *hostSlab) migUnitDone(i int32) {
	ms := &s.mig[i]
	if ms.xfer != nil && ms.xferKind == xferSyncUpload {
		s.cancelXfer(i)
	}
	ms.synced = syncState{}
}

// clearWork strips host i of its unit after the server took it over.
func (s *hostSlab) clearWork(i int32) {
	s.wu[i] = boinc.WorkUnit{}
	s.progress[i] = 0
	s.hasWork[i] = false
	s.ckpt[i] = nil
	s.mig[i].synced = syncState{}
}
