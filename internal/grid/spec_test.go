package grid

import (
	"reflect"
	"strings"
	"testing"
)

func TestSpecDefaultsMatchScenarioDefaults(t *testing.T) {
	pts, err := Spec{}.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("empty spec expands to %d points, want 1", len(pts))
	}
	pt := pts[0]
	if len(pt.Axes) != 0 || pt.Label() != "" {
		t.Fatalf("default point claims swept axes: %+v", pt.Axes)
	}
	want := Scenario{Seed: DefaultSeed, FaultyFrac: DefaultFaultyFrac}.Normalize()
	if !reflect.DeepEqual(pt.Scenario, want) {
		t.Fatalf("default point scenario\n%+v\nwant\n%+v", pt.Scenario, want)
	}
}

func TestSpecPointsOrderAndLabels(t *testing.T) {
	sp := Spec{
		Machines: []int{100, 200},
		Churn:    []bool{false, true},
		Policy:   []string{"fifo", "deadline"},
		Envs:     []string{"vmplayer"},
	}
	pts, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("2×2×2 spec expands to %d points", len(pts))
	}
	// Axes nest in canonical order (machines ≻ churn ≻ policy), last
	// axis fastest.
	wantLabels := []string{
		"machines=100 churn=off policy=fifo",
		"machines=100 churn=off policy=deadline",
		"machines=100 churn=on policy=fifo",
		"machines=100 churn=on policy=deadline",
		"machines=200 churn=off policy=fifo",
		"machines=200 churn=off policy=deadline",
		"machines=200 churn=on policy=fifo",
		"machines=200 churn=on policy=deadline",
	}
	for i, pt := range pts {
		if pt.Label() != wantLabels[i] {
			t.Fatalf("point %d label %q, want %q", i, pt.Label(), wantLabels[i])
		}
		if pt.Index != i {
			t.Fatalf("point %d carries index %d", i, pt.Index)
		}
	}
	if got := sp.SweptAxes(); !reflect.DeepEqual(got, []string{"machines", "churn", "policy"}) {
		t.Fatalf("swept axes %v", got)
	}
	// Widening the policy axis preserves every existing scenario.
	wide := sp
	wide.Policy = []string{"fifo", "deadline", "replication"}
	widePts, err := wide.Points()
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, pt := range widePts {
		keys[pt.Scenario.Key()] = true
	}
	for _, pt := range pts {
		if !keys[pt.Scenario.Key()] {
			t.Fatalf("widening dropped point %q", pt.Label())
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	sp := Spec{
		Version:     SpecVersion,
		Name:        "rt",
		Seed:        7,
		Envs:        []string{"vmplayer", "qemu"},
		Machines:    []int{64, 128},
		Minutes:     []int{30},
		Churn:       []bool{true},
		Policy:      []string{"fifo", "replication"},
		Replication: []int{2},
		FaultyFrac:  []float64{0, 0.05},
		Migration:   []string{"none", "on-departure"},
		Bandwidth:   []float64{100, 1000},
	}
	data, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sp) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", back, sp)
	}
	a, err := sp.Points()
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("round trip changed the expansion")
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"version":1,"machines":[64],"polciy":["fifo"]}`, "polciy"},
		{"missing version", `{"machines":[64]}`, "version"},
		{"trailing data", `{"version":1}{"version":2}`, "trailing"},
		{"not json", `machines=64`, "parsing spec"},
	} {
		_, err := ParseSpec([]byte(tc.in))
		if err == nil {
			t.Fatalf("%s: accepted %q", tc.name, tc.in)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSpecValidateErrors(t *testing.T) {
	base := func() Spec {
		return Spec{Envs: []string{"vmplayer"}, Machines: []int{64}, Minutes: []int{10}}
	}
	for _, tc := range []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"future version", func(sp *Spec) { sp.Version = SpecVersion + 1 }, "unsupported spec version"},
		{"zero machines", func(sp *Spec) { sp.Machines = []int{64, 0} }, "machines"},
		{"zero minutes", func(sp *Spec) { sp.Minutes = []int{0} }, "minutes"},
		{"negative deadline", func(sp *Spec) { sp.DeadlineMin = []float64{-1} }, "deadline_min"},
		{"bad policy labels point", func(sp *Spec) {
			sp.Policy = []string{"fifo", "lifo"}
		}, "point [policy=lifo]"},
		{"bad env", func(sp *Spec) { sp.Envs = []string{"xen"} }, "unknown environment"},
		{"zero bandwidth", func(sp *Spec) { sp.Bandwidth = []float64{1000, 0} }, "bandwidth"},
		{"negative bandwidth", func(sp *Spec) { sp.Bandwidth = []float64{-40} }, "bandwidth"},
		{"bad migration labels point", func(sp *Spec) {
			sp.Migration = []string{"none", "live"}
		}, "point [migration=live]"},
		{"too many points", func(sp *Spec) {
			sp.Machines = make([]int, 0, 70)
			for i := 0; i < 70; i++ {
				sp.Machines = append(sp.Machines, i+1)
			}
			sp.Minutes = sp.Machines
		}, "points"},
	} {
		sp := base()
		tc.mutate(&sp)
		err := sp.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecSet(t *testing.T) {
	var sp Spec
	for _, assign := range []string{
		"policy=fifo, deadline",
		"machines=64..256*2",
		"minutes=10..30+10",
		"churn=off,on",
		"faulty=0,0.05",
		"seed=9",
		"quick=on",
		"envs=vmplayer,qemu",
		"name=from-sets",
		"migration=none,on-departure,eager",
		"bandwidth=100,1000",
	} {
		if err := sp.Set(assign); err != nil {
			t.Fatalf("Set(%q): %v", assign, err)
		}
	}
	if !reflect.DeepEqual(sp.Policy, []string{"fifo", "deadline"}) {
		t.Fatalf("policy = %v", sp.Policy)
	}
	if !reflect.DeepEqual(sp.Machines, []int{64, 128, 256}) {
		t.Fatalf("machines = %v", sp.Machines)
	}
	if !reflect.DeepEqual(sp.Minutes, []int{10, 20, 30}) {
		t.Fatalf("minutes = %v", sp.Minutes)
	}
	if !reflect.DeepEqual(sp.Churn, []bool{false, true}) {
		t.Fatalf("churn = %v", sp.Churn)
	}
	if !reflect.DeepEqual(sp.FaultyFrac, []float64{0, 0.05}) {
		t.Fatalf("faulty = %v", sp.FaultyFrac)
	}
	if sp.Seed != 9 || !sp.Quick || sp.Name != "from-sets" {
		t.Fatalf("scalars not applied: %+v", sp)
	}
	if !reflect.DeepEqual(sp.Envs, []string{"vmplayer", "qemu"}) {
		t.Fatalf("envs = %v", sp.Envs)
	}
	if !reflect.DeepEqual(sp.Migration, []string{"none", "on-departure", "eager"}) {
		t.Fatalf("migration = %v", sp.Migration)
	}
	if !reflect.DeepEqual(sp.Bandwidth, []float64{100, 1000}) {
		t.Fatalf("bandwidth = %v", sp.Bandwidth)
	}

	for _, tc := range []struct{ assign, wantErr string }{
		{"no-equals", "axis=value"},
		{"color=red", "unknown axis"},
		{"machines=many", "not an integer"},
		{"machines=64..32", "descending"},
		{"machines=1..1000000*1", "*k step"},
		{"machines=1..100+0", "+k step"},
		{"machines=1..100000", "expands past"},
		{"churn=maybe", "not a boolean"},
		{"seed=-1", "unsigned"},
		{"faulty=lots", "not a number"},
	} {
		err := sp.Set(tc.assign)
		if err == nil {
			t.Fatalf("Set(%q): accepted", tc.assign)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("Set(%q): error %q does not mention %q", tc.assign, err, tc.wantErr)
		}
	}
}
