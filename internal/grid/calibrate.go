package grid

import (
	"fmt"
	"sync"

	"vmdg/internal/boinc"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// interactiveBurst is one interactive task: 40 ms of mixed compute
// issued once per second — an editor keystroke storm, a page render.
// It matches the burst the original fleet command used, so the
// intrusiveness numbers stay comparable.
const interactiveBurst = 0.040 * 2.4e9

// Calibration is the detailed-stack measurement for one (class,
// environment) pair: the sandboxed worker's science rate with the
// owner active and away, and the empirical interactive-burst latency
// distribution while the VM runs.
type Calibration struct {
	// ActiveChunksPerSec / IdleChunksPerSec are the worker's chunk
	// rates with the owner hammering the machine vs away from it.
	ActiveChunksPerSec float64
	IdleChunksPerSec   float64
	// BurstMs holds the measured interactive-burst latencies (ms)
	// under the running VM; the fleet resamples from it.
	BurstMs []float64
	// bins is BurstMs collapsed onto the latency histogram's bin
	// layout — the categorical distribution aggregate burst sampling
	// draws its multinomials from. Derived once at calibration time and
	// shared read-only by every host of the (class, environment) pair.
	bins []burstBin
}

// burstDist returns the binned burst distribution, deriving it on the
// fly for hand-built calibrations (tests) that skip calibrate.
func (c *Calibration) burstDist() []burstBin {
	if c.bins != nil {
		return c.bins
	}
	return binBursts(c.BurstMs)
}

// calKey identifies one memoized calibration.
type calKey struct {
	class, env string
	seed       uint64
	ckptEvery  int
	quick      bool
}

// calEntry delays the micro-simulation until first use and shares the
// result across every shard in the process.
type calEntry struct {
	once sync.Once
	val  Calibration
	err  error
}

var calCache sync.Map // calKey -> *calEntry

// calibrationFor returns the memoized calibration for (class, prof),
// running the detailed micro-simulation on first use. The value is a
// pure function of the key, so which goroutine computes it never
// matters.
func calibrationFor(class *Class, prof vmm.Profile, seed uint64, ckptEvery int, quick bool) (Calibration, error) {
	k := calKey{class: class.Name, env: prof.Name, seed: seed, ckptEvery: ckptEvery, quick: quick}
	e, _ := calCache.LoadOrStore(k, &calEntry{})
	entry := e.(*calEntry)
	entry.once.Do(func() {
		entry.val, entry.err = calibrate(class, prof, seed, ckptEvery, quick)
	})
	return entry.val, entry.err
}

// calibrate runs the full hw/hostos/vmm/boinc stack for one machine of
// the class under the environment: a warmup, a window with the owner
// issuing bursts once per second, then a window with the owner away.
func calibrate(class *Class, prof vmm.Profile, seed uint64, ckptEvery int, quick bool) (Calibration, error) {
	warmup, window := 5*sim.Second, 45*sim.Second
	if quick {
		window = 12 * sim.Second
	}

	s := sim.New()
	mseed := splitmix(hostSeed(seed, 0) ^ envSeed(seed, class.Name+"/"+prof.Name, 1))
	mc, err := hw.NewMachine(s, hw.Config{CPU: class.CPU, Seed: mseed})
	if err != nil {
		return Calibration{}, fmt.Errorf("grid: calibrating %s/%s: %w", class.Name, prof.Name, err)
	}
	host := hostos.Boot(mc)

	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return Calibration{}, fmt.Errorf("grid: calibrating %s/%s: %w", class.Name, prof.Name, err)
	}
	// A work unit far too large to finish, checkpointing at the
	// fleet's real interval so the disk overhead is represented.
	wu := boinc.WorkUnit{ID: "cal", Seed: mseed, Chunks: 1 << 30, CheckpointEvery: ckptEvery}
	worker := boinc.NewWorker(boinc.Progress{WorkUnit: wu})
	vm.SpawnGuest("einstein", worker)
	vm.PowerOn(hostos.PrioIdle)

	// The owner's interactive workload, switchable per phase.
	var bursts []float64
	bursting := true
	user := host.NewProcess("user")
	var issue func()
	issue = func() {
		if !bursting {
			return
		}
		start := s.Now()
		prog := &cost.Profile{Name: "burst", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: interactiveBurst, Mix: cost.Mix{Int: 0.5, Mem: 0.3, FP: 0.2}},
		}}
		th := host.Spawn(user, "burst", hostos.PrioNormal, prog.Iter())
		th.OnExit = func() {
			if s.Now() >= warmup {
				bursts = append(bursts, (s.Now()-start).Seconds()*1000)
			}
		}
		s.After(sim.Second, "user-think", issue)
	}
	s.After(100*sim.Millisecond, "user-start", issue)

	chunks := func() float64 {
		return float64(worker.UnitsDone())*float64(wu.Chunks) + float64(worker.State.ChunksDone)
	}

	host.RunFor(warmup)
	c0 := chunks()
	host.RunFor(window)
	c1 := chunks()
	bursting = false // owner leaves; pending think-time events fizzle
	host.RunFor(window)
	c2 := chunks()
	vm.PowerOff()

	cal := Calibration{
		ActiveChunksPerSec: (c1 - c0) / window.Seconds(),
		IdleChunksPerSec:   (c2 - c1) / window.Seconds(),
		BurstMs:            bursts,
		bins:               binBursts(bursts),
	}
	if len(cal.BurstMs) == 0 {
		return Calibration{}, fmt.Errorf("grid: calibration of %s/%s produced no burst samples", class.Name, prof.Name)
	}
	if cal.IdleChunksPerSec <= 0 || cal.ActiveChunksPerSec <= 0 {
		return Calibration{}, fmt.Errorf("grid: calibration of %s/%s produced a non-positive chunk rate", class.Name, prof.Name)
	}
	return cal, nil
}
