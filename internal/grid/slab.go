package grid

import (
	"sync"

	"vmdg/internal/boinc"
	"vmdg/internal/netsim"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// hostSlab holds one shard's population in struct-of-arrays form: every
// per-host field lives in its own contiguous array, indexed by the
// host's slice-local index. The event loop of a shard walks a handful
// of hot arrays (flags, progress, accrual clocks, RNG states) that pack
// tens of hosts per cache line, instead of striding over ~300-byte host
// records whose cold tail (checkpoint blobs, migration state) evicts
// the hot fields. A host has no identity object at all anymore — its
// global index is s.lo + i, and the "h%06d" name is formatted only at
// the rare points that need a string (checkpoint encoding, the quorum
// policy's project ledger).
//
// The slab also eliminates the last per-shard allocations: its arrays
// (and the simulator they feed) live in a per-worker arena (see
// shardArena) and are recycled across the shards a worker executes, so
// a million-host fleet steady-states at zero allocations per event and
// near-zero per shard.
type hostSlab struct {
	env *envShard
	lo  int // global index of local host 0
	n   int

	// Hot state, one array per field.
	on            []bool
	active        []bool
	hasWork       []bool
	faulty        []bool
	classIdx      []uint8
	progress      []float64
	accrued       []sim.Time
	phaseStart    []sim.Time
	onStart       []sim.Time
	pendingBursts []int64
	ownerRNG      []sim.RNG
	envRNG        []sim.RNG
	wu            []boinc.WorkUnit
	completion    []sim.Handle
	flip          []sim.Handle
	ckpt          [][]byte

	// arms gives every host one stable address the closure-free event
	// arms alias (see armCell); scheduling any of a host's event kinds
	// allocates nothing.
	arms []armCell

	// Per-class tables shared by every host of the class.
	classes []Class
	cals    []*Calibration

	// mig is the cold per-host migration state, allocated only when the
	// scenario migrates checkpoints; the hot loop never touches it.
	mig []migHost
}

// migHost is one host's checkpoint-migration state (see migrate.go).
// It is cold by construction: scenarios with Migration "none" never
// allocate the slab, and migrating shards touch it only at transfer
// boundaries, never per simulation event.
type migHost struct {
	upBps, downBps float64
	xfer           *netsim.Transfer
	xferKind       uint8
	pendingMig     migUnit
	synced         syncState
	syncChunks     int
	syncTimer      sim.Handle
}

// armCell is the closure-free event target for one host: a (slab,
// index) pair at a stable address. The per-kind arm types below are
// named aliases of armCell, so converting &s.arms[i] to any of them is
// a free pointer conversion and storing the result in a sim.Caller or
// netsim.Sink interface does not allocate — the slab generalizes the
// pointer-alias trick the old per-host struct used.
type armCell struct {
	s *hostSlab
	i int32
}

type (
	completeArm armCell
	flipArm     armCell
	powerOnArm  armCell
	powerOffArm armCell
)

func (a *completeArm) Fire(now sim.Time) { a.s.complete(a.i, now) }
func (a *flipArm) Fire(now sim.Time)     { a.s.doFlip(a.i, now) }
func (a *powerOnArm) Fire(now sim.Time)  { a.s.powerOn(a.i, now, true) }
func (a *powerOffArm) Fire(now sim.Time) { a.s.powerOff(a.i, now) }

// arm returns host i's stable arm cell.
func (s *hostSlab) arm(i int32) *armCell { return &s.arms[i] }

// gid is host i's global population index.
func (s *hostSlab) gid(i int32) int { return s.lo + int(i) }

// class and cal resolve host i's shared per-class tables.
func (s *hostSlab) class(i int32) *Class     { return &s.classes[s.classIdx[i]] }
func (s *hostSlab) cal(i int32) *Calibration { return s.cals[s.classIdx[i]] }
func (s *hostSlab) prof() vmm.Profile        { return s.env.prof }

// reset sizes every array for n hosts and zeroes the per-host state,
// reusing the arrays' capacity from the arena's previous shard. The
// class tables are cleared too — calibrations are re-resolved per shard
// (they are memoized process-wide, so this costs a map hit per class).
func (s *hostSlab) reset(env *envShard, lo, n int, classes []Class, migrates bool) {
	s.env, s.lo, s.n = env, lo, n
	s.on = resize(s.on, n)
	s.active = resize(s.active, n)
	s.hasWork = resize(s.hasWork, n)
	s.faulty = resize(s.faulty, n)
	s.classIdx = resize(s.classIdx, n)
	s.progress = resize(s.progress, n)
	s.accrued = resize(s.accrued, n)
	s.phaseStart = resize(s.phaseStart, n)
	s.onStart = resize(s.onStart, n)
	s.pendingBursts = resize(s.pendingBursts, n)
	s.ownerRNG = resize(s.ownerRNG, n)
	s.envRNG = resize(s.envRNG, n)
	s.wu = resize(s.wu, n)
	s.completion = resize(s.completion, n)
	s.flip = resize(s.flip, n)
	s.ckpt = resize(s.ckpt, n)
	s.arms = resize(s.arms, n)
	for i := range s.arms {
		s.arms[i] = armCell{s: s, i: int32(i)}
	}
	s.classes = classes
	s.cals = resize(s.cals, len(classes))
	if migrates {
		s.mig = resize(s.mig, n)
	} else {
		s.mig = nil
	}
}

// scrub drops the pointer-bearing state a recycled slab must not
// retain: checkpoint blobs, transfer pointers, and the shard
// environment. Scalar arrays keep their (stale) contents — reset zeroes
// them on the next acquire.
func (s *hostSlab) scrub() {
	s.env = nil
	clear(s.ckpt)
	clear(s.wu)
	clear(s.mig)
	clear(s.cals)
	s.classes = nil
}

// resize returns sl with length n and zeroed contents, growing the
// backing array only when the arena has never held a shard this large.
func resize[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	sl = sl[:n]
	clear(sl)
	return sl
}

// shardArena is the per-worker scratch space RunShard executes in: one
// SoA slab plus one simulator, recycled through a sync.Pool. Pools are
// per-P under the hood, so a pool worker keeps re-acquiring the arena
// it just warmed — the arrays it touches stay in its own cache (and, on
// multi-socket machines, its own NUMA node) instead of bouncing between
// cores. Steady state, a worker simulates shard after shard with zero
// allocations for hosts, events, or the event queue.
type shardArena struct {
	slab hostSlab
	sim  *sim.Simulator
}

var arenaPool = sync.Pool{
	New: func() any { return &shardArena{sim: sim.New()} },
}

// acquireArena returns a (possibly recycled) arena.
func acquireArena() *shardArena { return arenaPool.Get().(*shardArena) }

// release scrubs and returns the arena to the pool.
func (a *shardArena) release() {
	a.sim.Reset()
	a.slab.scrub()
	arenaPool.Put(a)
}
