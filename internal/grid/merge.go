package grid

import (
	"fmt"
	"strings"
)

// FleetResult is the merged outcome of every shard of one scenario.
type FleetResult struct {
	Scenario Scenario
	Hosts    int
	Envs     []*EnvStats
}

// Merger folds shard results into a fleet result incrementally, in
// strict shard-index order, so a scenario with thousands of shards
// never needs them all resident at once: each absorbed ShardResult is
// summed into the per-environment accumulators and released. The fold
// order is fixed by construction, which keeps the streamed result
// bit-identical to a batch merge for any worker count or completion
// order upstream.
type Merger struct {
	scn   Scenario
	fr    *FleetResult
	byEnv map[string]*EnvStats
	next  int
}

// NewMerger prepares an incremental fold for the scenario's shards.
func NewMerger(scn Scenario) *Merger {
	scn = scn.Normalize()
	m := &Merger{scn: scn, fr: &FleetResult{Scenario: scn}, byEnv: map[string]*EnvStats{}}
	for _, env := range scn.Envs {
		st := &EnvStats{Env: env}
		m.byEnv[env] = st
		m.fr.Envs = append(m.fr.Envs, st)
	}
	return m
}

// Absorb folds shard i into the accumulators. Shards must arrive in
// increasing index order with no gaps — the caller (the engine's
// streaming fold) provides exactly that.
func (m *Merger) Absorb(i int, sr *ShardResult) error {
	if i != m.next {
		return fmt.Errorf("grid: absorbed shard %d out of order (want %d)", i, m.next)
	}
	if sr == nil {
		return fmt.Errorf("grid: missing shard %d", i)
	}
	m.next++
	for _, st := range sr.Envs {
		dst, ok := m.byEnv[st.Env]
		if !ok {
			return fmt.Errorf("grid: shard %d reports unknown environment %q", i, st.Env)
		}
		dst.merge(st)
	}
	return nil
}

// Finish completes the fold and returns the fleet result.
func (m *Merger) Finish() (*FleetResult, error) {
	if want := m.scn.Shards(); m.next != want {
		return nil, fmt.Errorf("grid: merge finished after %d of %d shards", m.next, want)
	}
	// Every environment sees the whole population once.
	if len(m.fr.Envs) > 0 {
		m.fr.Hosts = m.fr.Envs[0].Hosts
	}
	return m.fr, nil
}

// MergeShards folds shard results (indexed by shard) into the fleet
// result in one call — the batch form of Merger, used by tests and
// small fleets.
func MergeShards(scn Scenario, shards []*ShardResult) (*FleetResult, error) {
	m := NewMerger(scn)
	for i, sr := range shards {
		if err := m.Absorb(i, sr); err != nil {
			return nil, err
		}
	}
	return m.Finish()
}

// Header returns the one-line scenario description that precedes the
// table.
func (fr *FleetResult) Header() string {
	s := fr.Scenario
	churn := "off"
	if s.Churn {
		churn = "on"
	}
	h := fmt.Sprintf("fleet: %d hosts × %d virtual minutes, policy %s, churn %s, %.0f%% faulty, seed %d",
		fr.Hosts, s.Minutes, s.Policy, churn, s.FaultyFrac*100, s.Seed)
	// The migration clause (and the wider table below) appears only
	// when the scenario migrates, so migration-free output stays
	// byte-identical to the pre-migration renderer.
	if s.Migrates() {
		h += fmt.Sprintf(", migration %s @ %g Mbit/s", s.Migration, s.BandwidthMbps)
	}
	return h
}

// Render returns the fleet table: per environment, the science the
// project banked (validated units), what churn cost it (outstanding,
// evictions, restores, rolled-back chunks), what validation caught
// (bad, invalid, duplicates), and what the volunteers felt
// (interactive latency percentiles).
func (fr *FleetResult) Render() string {
	mig := fr.Scenario.Migrates()
	var b strings.Builder
	b.WriteString(fr.Header())
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-14s %9s %6s %4s %7s %4s %6s %8s %10s %7s %8s %7s %7s",
		"environment", "validated", "outst", "bad", "invalid", "dup",
		"evict", "restores", "lost-chnk", "avail%", "active%", "p50ms", "p95ms")
	if mig {
		fmt.Fprintf(&b, " %6s %9s %7s %7s", "migr", "saved-min", "tx-MB", "rx-MB")
	}
	b.WriteByte('\n')
	for _, st := range fr.Envs {
		horizon := float64(fr.Scenario.Minutes) * 60 * float64(st.Hosts)
		avail := 0.0
		if horizon > 0 {
			avail = 100 * st.OnSeconds / horizon
		}
		activePct := 0.0
		if st.OnSeconds > 0 {
			activePct = 100 * st.ActiveSeconds / st.OnSeconds
		}
		fmt.Fprintf(&b, "%-14s %9d %6d %4d %7d %4d %6d %8d %10d %7.1f %8.1f %7.1f %7.1f",
			st.Env, st.Policy.Validated, st.Policy.Outstanding, st.Policy.Bad,
			st.Policy.Invalid, st.Policy.Duplicates, st.Evictions, st.Restores,
			st.LostChunks, avail, activePct,
			st.Latency.Percentile(0.50), st.Latency.Percentile(0.95))
		if mig {
			fmt.Fprintf(&b, " %6d %9.1f %7.1f %7.1f",
				st.Migrations, st.MigSavedSec/60,
				float64(st.MigTxBytes)/1e6, float64(st.MigRxBytes)/1e6)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVHeader is the fleet CSV header row. The leading variant column
// distinguishes rows when several scenarios (e.g. a policy comparison)
// share one artifact.
func CSVHeader() string {
	return "variant,env,hosts,units_issued,assignments,returned,validated,outstanding,bad,invalid,duplicates,evictions,restores,lost_chunks,on_seconds,active_seconds,p50_ms,p95_ms\n"
}

// MigCSVHeader is the migration-aware fleet CSV header: the plain
// columns plus the transfer-plane measurements. Artifacts use it only
// when at least one scenario in them migrates, so migration-free CSVs
// keep their pre-migration byte-exact form.
func MigCSVHeader() string {
	return strings.TrimSuffix(CSVHeader(), "\n") +
		",migrations,mig_saved_chunks,mig_saved_min,mig_tx_bytes,mig_rx_bytes\n"
}

// CSVRows returns the fleet's data rows labelled with variant; an
// empty variant defaults to the scenario's policy name, so rows are
// always distinguishable.
func (fr *FleetResult) CSVRows(variant string) string {
	return fr.csvRows(variant, false)
}

// MigCSVRows is CSVRows with the MigCSVHeader columns appended.
func (fr *FleetResult) MigCSVRows(variant string) string {
	return fr.csvRows(variant, true)
}

func (fr *FleetResult) csvRows(variant string, mig bool) string {
	if variant == "" {
		variant = fr.Scenario.Policy
	}
	var b strings.Builder
	for _, st := range fr.Envs {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%.1f,%.3f,%.3f",
			variant, st.Env, st.Hosts, st.Policy.UnitsIssued, st.Policy.Assignments,
			st.Policy.Returned, st.Policy.Validated, st.Policy.Outstanding,
			st.Policy.Bad, st.Policy.Invalid, st.Policy.Duplicates,
			st.Evictions, st.Restores, st.LostChunks,
			st.OnSeconds, st.ActiveSeconds,
			st.Latency.Percentile(0.50), st.Latency.Percentile(0.95))
		if mig {
			fmt.Fprintf(&b, ",%d,%d,%.1f,%d,%d",
				st.Migrations, st.MigSavedChunks, st.MigSavedSec/60,
				st.MigTxBytes, st.MigRxBytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV returns the machine-readable form of a standalone fleet table.
func (fr *FleetResult) CSV() string {
	if fr.Scenario.Migrates() {
		return MigCSVHeader() + fr.MigCSVRows("")
	}
	return CSVHeader() + fr.CSVRows("")
}
