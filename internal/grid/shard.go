package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// EnvStats is the aggregate outcome of one environment over one (or,
// after merging, every) shard. All fields are plain sums or fixed-bin
// histograms, so merging shard stats in shard order is deterministic.
type EnvStats struct {
	Env   string
	Hosts int

	Policy PolicyStats

	// Evictions counts VMs powered off mid-unit; Restores counts
	// checkpoint restorations on return; LostChunks is science rolled
	// back to the last periodic checkpoint.
	Evictions  int
	Restores   int
	LostChunks int64

	// OnSeconds and ActiveSeconds accumulate host power-on time and
	// owner-active time across the population.
	OnSeconds     float64
	ActiveSeconds float64

	// Latency is the interactive-burst latency distribution while
	// owners were active (the paper's intrusiveness metric).
	Latency Histogram

	// Fired counts simulator events, a determinism probe.
	Fired uint64
}

// merge folds other (the same environment from another shard) into s.
func (s *EnvStats) merge(other *EnvStats) {
	s.Hosts += other.Hosts
	s.Policy.add(other.Policy)
	s.Evictions += other.Evictions
	s.Restores += other.Restores
	s.LostChunks += other.LostChunks
	s.OnSeconds += other.OnSeconds
	s.ActiveSeconds += other.ActiveSeconds
	s.Latency.Merge(&other.Latency)
	s.Fired += other.Fired
}

// ShardResult is the JSON-serializable payload of one shard: one
// (environment, population slice) cell. Envs is a slice for merge
// symmetry with the fleet result; RunShard fills exactly one entry.
type ShardResult struct {
	Shard int
	Hosts int
	Envs  []*EnvStats
}

// envShard bundles the per-(shard, environment) loop state the host
// state machines mutate.
type envShard struct {
	scn    Scenario
	prof   vmm.Profile
	sim    *sim.Simulator
	policy Policy
	stats  *EnvStats
}

// RunShard simulates shard i of the scenario: one environment over one
// slice of the population (shards enumerate environments in scenario
// order, population slices within each). It is a pure function of
// (scn, shard) — the contract the engine's content-keyed cache relies
// on.
func RunShard(scn Scenario, shard int) (*ShardResult, error) {
	scn = scn.Normalize()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= scn.Shards() {
		return nil, fmt.Errorf("grid: shard %d outside [0, %d)", shard, scn.Shards())
	}
	n := scn.popShards()
	prof := scn.envProfiles()[shard/n]
	slice := shard % n
	lo, hi := scn.HostRange(slice)
	st, err := runEnvShard(scn, prof, slice, lo, hi)
	if err != nil {
		return nil, err
	}
	return &ShardResult{Shard: shard, Hosts: hi - lo, Envs: []*EnvStats{st}}, nil
}

// runEnvShard runs one environment's event loop over hosts [lo, hi).
func runEnvShard(scn Scenario, prof vmm.Profile, shard, lo, hi int) (*EnvStats, error) {
	classes := Classes()
	s := sim.New()
	horizon := sim.Time(scn.Minutes) * 60 * sim.Second
	prefix := fmt.Sprintf("s%03d-%s", shard, prof.Name)
	env := &envShard{
		scn:    scn,
		prof:   prof,
		sim:    s,
		policy: newPolicy(scn, prefix, envSeed(scn.Seed, prof.Name, -1-shard)),
		stats:  &EnvStats{Env: prof.Name, Hosts: hi - lo},
	}

	every := boinc.CheckpointCadence(scn.ChunksPerUnit)
	hosts := make([]*host, 0, hi-lo)
	for g := lo; g < hi; g++ {
		class := classFor(classes, scn.Seed, g)
		cal, err := calibrationFor(class, prof, scn.Seed, every, scn.Quick)
		if err != nil {
			return nil, err
		}
		h := &host{
			env:      env,
			id:       fmt.Sprintf("h%06d", g),
			class:    class,
			cal:      cal,
			ownerRNG: sim.NewRNG(hostSeed(scn.Seed, g)),
			envRNG:   sim.NewRNG(envSeed(scn.Seed, prof.Name, g)),
		}
		h.faulty = h.ownerRNG.Float64() < scn.FaultyFrac
		hosts = append(hosts, h)

		if !scn.Churn {
			h.powerOn(0, h.stationaryActive())
			continue
		}
		// Stationary start: on with the class's long-run availability
		// (owner present per their long-run presence), otherwise
		// returning after a residual off-gap.
		pOn := class.MeanOnMin / (class.MeanOnMin + class.MeanOffMin)
		if h.ownerRNG.Float64() < pOn {
			h.powerOn(0, h.stationaryActive())
		} else {
			back := h.exp(class.MeanOffMin)
			h.sched(back, "power-on", func(at sim.Time) { h.powerOn(at, true) })
		}
	}

	s.RunUntil(horizon)
	for _, h := range hosts {
		h.finalize(horizon)
	}
	env.stats.Policy = env.policy.Stats()
	env.stats.Fired = s.Fired()
	return env.stats, nil
}

// sched is a small helper so initial power-ons read like the host's
// own event scheduling.
func (h *host) sched(at sim.Time, label string, fn func(sim.Time)) {
	h.env.sim.At(at, label, func() { fn(at) })
}
