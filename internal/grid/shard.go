package grid

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
)

// EnvStats is the aggregate outcome of one environment over one (or,
// after merging, every) shard. All fields are plain sums or fixed-bin
// histograms, so merging shard stats in shard order is deterministic.
type EnvStats struct {
	Env   string
	Hosts int

	Policy PolicyStats

	// Evictions counts VMs powered off mid-unit; Restores counts
	// checkpoint restorations on return; LostChunks is science rolled
	// back to the last periodic checkpoint.
	Evictions  int
	Restores   int
	LostChunks int64

	// OnSeconds and ActiveSeconds accumulate host power-on time and
	// owner-active time across the population.
	OnSeconds     float64
	ActiveSeconds float64

	// Latency is the interactive-burst latency distribution while
	// owners were active (the paper's intrusiveness metric).
	Latency Histogram

	// Checkpoint migration over the modeled network (all zero when the
	// scenario's migration policy is "none", so plain payloads keep
	// their pre-migration JSON form): units re-placed onto a new host,
	// bytes moved through the server frontend in each direction —
	// including the transferred portion of transfers cancelled
	// mid-flight, which occupied the shared frontend all the same —
	// and the recompute the carried progress spared the receiving
	// hosts.
	Migrations     int     `json:",omitempty"`
	MigTxBytes     int64   `json:",omitempty"`
	MigRxBytes     int64   `json:",omitempty"`
	MigSavedChunks int64   `json:",omitempty"`
	MigSavedSec    float64 `json:",omitempty"`

	// Fired counts simulator events, a determinism probe.
	Fired uint64
}

// merge folds other (the same environment from another shard) into s.
func (s *EnvStats) merge(other *EnvStats) {
	s.Hosts += other.Hosts
	s.Policy.add(other.Policy)
	s.Evictions += other.Evictions
	s.Restores += other.Restores
	s.LostChunks += other.LostChunks
	s.OnSeconds += other.OnSeconds
	s.ActiveSeconds += other.ActiveSeconds
	s.Latency.Merge(&other.Latency)
	s.Migrations += other.Migrations
	s.MigTxBytes += other.MigTxBytes
	s.MigRxBytes += other.MigRxBytes
	s.MigSavedChunks += other.MigSavedChunks
	s.MigSavedSec += other.MigSavedSec
	s.Fired += other.Fired
}

// ShardResult is the JSON-serializable payload of one shard: one
// (environment, population slice) cell. Envs is a slice for merge
// symmetry with the fleet result; RunShard fills exactly one entry.
type ShardResult struct {
	Shard int
	Hosts int
	Envs  []*EnvStats
}

// envShard bundles the per-(shard, environment) loop state the host
// state machines mutate.
type envShard struct {
	scn    Scenario
	prof   vmm.Profile
	sim    *sim.Simulator
	policy Policy
	stats  *EnvStats
	// slice is the population-slice index, seeding the shard-level
	// grouped-settling stream.
	slice int
	// mig is the shard's checkpoint-migration plane (netsim network +
	// server-side placement queue); nil when the scenario's migration
	// policy is "none", which keeps that path byte-identical to the
	// pre-migration simulator.
	mig *migrator
	// batch is set when the policy is timeFree: hosts settle unit
	// completions arithmetically instead of firing completion events.
	// Migration makes work assignment time- and cross-host-dependent
	// (the server queue), so migrating shards always run event-driven.
	batch bool
}

// batchCompletions gates the timeFree settle fast path. Tests flip it
// off to check the settled and event-driven paths produce identical
// statistics.
var batchCompletions = true

// batchSettleBursts gates the grouped (per-class) burst settling at
// the horizon. Tests flip it off to pin the grouped path against the
// per-host reference (identical total counts, KS/percentile-equivalent
// latency distribution, byte-identical everything else).
var batchSettleBursts = true

// RunShard simulates shard i of the scenario: one environment over one
// slice of the population (shards enumerate environments in scenario
// order, population slices within each). It is a pure function of
// (scn, shard) — the contract the engine's content-keyed cache relies
// on.
func RunShard(scn Scenario, shard int) (*ShardResult, error) {
	scn = scn.Normalize()
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= scn.Shards() {
		return nil, fmt.Errorf("grid: shard %d outside [0, %d)", shard, scn.Shards())
	}
	n := scn.popShards()
	prof := scn.envProfiles()[shard/n]
	slice := shard % n
	lo, hi := scn.HostRange(slice)
	st, err := runEnvShard(scn, prof, slice, lo, hi)
	if err != nil {
		return nil, err
	}
	return &ShardResult{Shard: shard, Hosts: hi - lo, Envs: []*EnvStats{st}}, nil
}

// runEnvShard runs one environment's event loop over hosts [lo, hi).
// The hosts live in the worker's recycled arena slab (slab.go): a
// million-host fleet is a few thousand slab resets on a handful of
// arenas, not millions of individual allocations.
func runEnvShard(scn Scenario, prof vmm.Profile, shard, lo, hi int) (*EnvStats, error) {
	classes := Classes()
	arena := acquireArena()
	defer arena.release()
	s := arena.sim
	horizon := sim.Time(scn.Minutes) * 60 * sim.Second
	prefix := fmt.Sprintf("s%03d-%s", shard, prof.Name)
	env := &envShard{
		scn:    scn,
		prof:   prof,
		sim:    s,
		policy: newPolicy(scn, prefix, envSeed(scn.Seed, prof.Name, -1-shard)),
		stats:  &EnvStats{Env: prof.Name, Hosts: hi - lo},
		slice:  shard,
	}
	_, free := env.policy.(timeFree)
	env.batch = free && batchCompletions && scn.Migration == "none"
	migrates := scn.Migration != "none"
	if migrates {
		env.mig = newMigrator(env, s)
	}

	// Calibrations are resolved once per class actually present in the
	// shard; every host of the class shares the same read-only pointer.
	every := boinc.CheckpointCadence(scn.ChunksPerUnit)

	slab := &arena.slab
	slab.reset(env, lo, hi-lo, classes, migrates)
	for g := lo; g < hi; g++ {
		i := int32(g - lo)
		ci := classIndexFor(classes, scn.Seed, g)
		class := &classes[ci]
		if slab.cals[ci] == nil {
			cal, err := calibrationFor(class, prof, scn.Seed, every, scn.Quick)
			if err != nil {
				return nil, err
			}
			slab.cals[ci] = &cal
		}
		slab.classIdx[i] = uint8(ci)
		slab.ownerRNG[i] = *sim.NewRNG(hostSeed(scn.Seed, g))
		slab.envRNG[i] = *sim.NewRNG(envSeed(scn.Seed, prof.Name, g))
		slab.faulty[i] = slab.ownerRNG[i].Float64() < scn.FaultyFrac
		if migrates {
			ms := &slab.mig[i]
			ms.upBps, ms.downBps = hostLinkBps(class, scn.Seed, g)
		}

		if !scn.Churn {
			slab.powerOn(i, 0, slab.stationaryActive(i))
			continue
		}
		// Stationary start: on with the class's long-run availability
		// (owner present per their long-run presence), otherwise
		// returning after a residual off-gap.
		pOn := class.MeanOnMin / (class.MeanOnMin + class.MeanOffMin)
		if slab.ownerRNG[i].Float64() < pOn {
			slab.powerOn(i, 0, slab.stationaryActive(i))
		} else {
			s.Schedule(slab.exp(i, class.MeanOffMin), "power-on", (*powerOnArm)(slab.arm(i)))
		}
	}

	s.RunUntil(horizon)
	for i := int32(0); int(i) < slab.n; i++ {
		slab.finalize(i, horizon)
	}
	if batchSettleBursts {
		slab.drainBurstsGrouped()
	} else {
		for i := int32(0); int(i) < slab.n; i++ {
			slab.drainBursts(i)
		}
	}
	env.stats.Policy = env.policy.Stats()
	env.stats.Fired = s.Fired()
	return env.stats, nil
}

// hostID formats a host's global identity ("h%06d", wider populations
// growing digits on the left) without fmt's reflection overhead —
// fleet setup builds millions of these.
func hostID(g int) string {
	b := make([]byte, 0, 12)
	b = append(b, 'h')
	return string(boinc.AppendPaddedIndex(b, g))
}
