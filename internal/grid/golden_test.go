package grid

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden fixtures under testdata/golden from
// the current simulation output. Run it only when a change is *meant*
// to alter results (and say so in the commit); the whole point of the
// fixtures is that unrelated refactors keep them byte-identical.
var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenScn is the canonical fixture scenario: big enough to churn
// through evictions, restores, and (when enabled) migrations across
// two environments and several shards, small enough to run in seconds.
// Everything is pinned — any default that drifts shows up as a diff.
func goldenScn(policy string) Scenario {
	return Scenario{
		Machines: 600, Minutes: 120, Seed: 1, Quick: true,
		Churn: true, Policy: policy, FaultyFrac: 0.02,
		Envs: []string{"vmplayer", "qemu"},
	}.Normalize()
}

// runGolden simulates every shard of scn sequentially and merges them —
// the grid-level pipeline under the engine.
func runGolden(t *testing.T, scn Scenario) *FleetResult {
	t.Helper()
	shards := make([]*ShardResult, scn.Shards())
	for i := range shards {
		var err error
		if shards[i], err = RunShard(scn, i); err != nil {
			t.Fatal(err)
		}
	}
	fr, err := MergeShards(scn, shards)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// checkGolden compares got against testdata/golden/name, rewriting the
// fixture under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run `go test ./internal/grid -run Golden -update`): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from the golden fixture.\n--- want\n%s\n--- got\n%s", name, want, got)
	}
}

// TestGoldenFleetTables pins the rendered fleet table and CSV for every
// scheduling policy under the default (migration-free) pipeline. These
// fixtures were generated before checkpoint migration existed, so they
// also prove that migration=none leaves the original results — and
// their byte-exact rendering — untouched.
func TestGoldenFleetTables(t *testing.T) {
	csv := CSVHeader()
	for _, policy := range Policies() {
		fr := runGolden(t, goldenScn(policy))
		checkGolden(t, "fleet_"+policy+".txt", fr.Render())
		csv += fr.CSVRows(policy)
	}
	checkGolden(t, "fleet_policies.csv", csv)
}

// TestGoldenMigrationTables pins the checkpoint-migration pipeline the
// same way: the canonical scenario under each migrating policy, with
// the transfer-plane columns in table and CSV form.
func TestGoldenMigrationTables(t *testing.T) {
	csv := MigCSVHeader()
	for _, mig := range []string{"on-departure", "eager"} {
		scn := goldenScn("fifo")
		scn.Migration = mig
		fr := runGolden(t, scn)
		checkGolden(t, "fleet_mig_"+mig+".txt", fr.Render())
		csv += fr.MigCSVRows("migration " + mig)
	}
	checkGolden(t, "fleet_migrations.csv", csv)
}
