package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// SpecVersion is the schema version this build reads and writes.
// Serialized specs carry it explicitly, so a future field rename can
// re-interpret (or reject) old files instead of silently misreading
// them.
const SpecVersion = 1

// MaxSweepPoints bounds a spec's cartesian expansion. The cap exists to
// turn a typo'd range into an error instead of a million-scenario
// sweep.
const MaxSweepPoints = 4096

// Defaults that Scenario.Normalize cannot express, because the zero
// value is meaningful there (a fleet with no faulty hosts, a seed of
// zero). Spec axes distinguish "unset" (empty list) from an explicit
// zero, so the spec layer owns these.
const (
	DefaultSeed       uint64  = 1
	DefaultFaultyFrac float64 = 0.02
)

// Spec is a declarative, serializable description of a *family* of
// fleet scenarios: each axis is a list of values, and the family is
// the cartesian product over every axis. A one-value (or empty,
// meaning defaulted) axis pins that parameter; a multi-value axis is
// "swept". Specs round-trip through JSON, so a sweep is an artifact —
// reviewable, diffable, re-runnable — rather than a shell history
// entry.
//
// Seed, Quick, and Envs are scalars, not axes: the engine's cache keys
// carry seed and quick per run (sweeping them would need per-point key
// surgery), and the environment dimension is already crossed inside
// every scenario (a fleet reports per-environment rows).
type Spec struct {
	// Version is the spec schema version; ParseSpec rejects files
	// without it.
	Version int `json:"version"`
	// Name labels the sweep in artifacts.
	Name string `json:"name,omitempty"`
	// Seed drives every point; 0 means DefaultSeed.
	Seed uint64 `json:"seed,omitempty"`
	// Quick trims calibration windows on every point.
	Quick bool `json:"quick,omitempty"`
	// Envs is the environment set each point fleets (empty: the
	// paper's four).
	Envs []string `json:"envs,omitempty"`

	// The axes, in canonical expansion order (first axis outermost).
	Machines      []int     `json:"machines,omitempty"`
	Minutes       []int     `json:"minutes,omitempty"`
	Churn         []bool    `json:"churn,omitempty"`
	Policy        []string  `json:"policy,omitempty"`
	Replication   []int     `json:"replication,omitempty"`
	DeadlineMin   []float64 `json:"deadline_min,omitempty"`
	FaultyFrac    []float64 `json:"faulty,omitempty"`
	ChunksPerUnit []int     `json:"chunks_per_unit,omitempty"`
	Migration     []string  `json:"migration,omitempty"`
	Bandwidth     []float64 `json:"bandwidth,omitempty"`
}

// AxisValue is one axis's value at one sweep point, in the axis's
// canonical string form ("machines"/"512", "churn"/"on").
type AxisValue struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// Point is one cell of a spec's cartesian grid: the concrete scenario
// plus the swept-axis values that select it (pinned axes are omitted —
// they are the same for every point).
type Point struct {
	Index    int
	Axes     []AxisValue
	Scenario Scenario
}

// Label renders the point's swept-axis values ("machines=512 churn=on
// policy=fifo"); empty when the spec sweeps nothing.
func (p Point) Label() string {
	var b strings.Builder
	for i, av := range p.Axes {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(av.Axis)
		b.WriteByte('=')
		b.WriteString(av.Value)
	}
	return b.String()
}

// axis is one named, sweepable Spec dimension: its length, canonical
// value strings, the Scenario field it sets, and its -set parser. The
// table keeps expansion, labelling, and overrides in lockstep — adding
// an axis is one entry here, not four switch arms.
type axis struct {
	name  string
	len   func(sp *Spec) int
	value func(sp *Spec, i int) string
	apply func(scn *Scenario, sp *Spec, i int)
	set   func(sp *Spec, list string) error
}

func specAxes() []axis {
	return []axis{
		{
			name:  "machines",
			len:   func(sp *Spec) int { return len(sp.Machines) },
			value: func(sp *Spec, i int) string { return strconv.Itoa(sp.Machines[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Machines = sp.Machines[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.Machines, err = parseIntList(list)
				return
			},
		},
		{
			name:  "minutes",
			len:   func(sp *Spec) int { return len(sp.Minutes) },
			value: func(sp *Spec, i int) string { return strconv.Itoa(sp.Minutes[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Minutes = sp.Minutes[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.Minutes, err = parseIntList(list)
				return
			},
		},
		{
			name:  "churn",
			len:   func(sp *Spec) int { return len(sp.Churn) },
			value: func(sp *Spec, i int) string { return onOff(sp.Churn[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Churn = sp.Churn[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.Churn, err = parseBoolList(list)
				return
			},
		},
		{
			name:  "policy",
			len:   func(sp *Spec) int { return len(sp.Policy) },
			value: func(sp *Spec, i int) string { return sp.Policy[i] },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Policy = sp.Policy[i] },
			set: func(sp *Spec, list string) error {
				sp.Policy = parseStringList(list)
				return nil
			},
		},
		{
			name:  "replication",
			len:   func(sp *Spec) int { return len(sp.Replication) },
			value: func(sp *Spec, i int) string { return strconv.Itoa(sp.Replication[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Replication = sp.Replication[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.Replication, err = parseIntList(list)
				return
			},
		},
		{
			name:  "deadline_min",
			len:   func(sp *Spec) int { return len(sp.DeadlineMin) },
			value: func(sp *Spec, i int) string { return formatFloat(sp.DeadlineMin[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.DeadlineMin = sp.DeadlineMin[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.DeadlineMin, err = parseFloatList(list)
				return
			},
		},
		{
			name:  "faulty",
			len:   func(sp *Spec) int { return len(sp.FaultyFrac) },
			value: func(sp *Spec, i int) string { return formatFloat(sp.FaultyFrac[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.FaultyFrac = sp.FaultyFrac[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.FaultyFrac, err = parseFloatList(list)
				return
			},
		},
		{
			name:  "chunks_per_unit",
			len:   func(sp *Spec) int { return len(sp.ChunksPerUnit) },
			value: func(sp *Spec, i int) string { return strconv.Itoa(sp.ChunksPerUnit[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.ChunksPerUnit = sp.ChunksPerUnit[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.ChunksPerUnit, err = parseIntList(list)
				return
			},
		},
		{
			name:  "migration",
			len:   func(sp *Spec) int { return len(sp.Migration) },
			value: func(sp *Spec, i int) string { return sp.Migration[i] },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.Migration = sp.Migration[i] },
			set: func(sp *Spec, list string) error {
				sp.Migration = parseStringList(list)
				return nil
			},
		},
		{
			name:  "bandwidth",
			len:   func(sp *Spec) int { return len(sp.Bandwidth) },
			value: func(sp *Spec, i int) string { return formatFloat(sp.Bandwidth[i]) },
			apply: func(scn *Scenario, sp *Spec, i int) { scn.BandwidthMbps = sp.Bandwidth[i] },
			set: func(sp *Spec, list string) (err error) {
				sp.Bandwidth, err = parseFloatList(list)
				return
			},
		},
	}
}

// AxisNames lists every sweepable axis, in expansion order.
func AxisNames() []string {
	axs := specAxes()
	names := make([]string, len(axs))
	for i, a := range axs {
		names[i] = a.name
	}
	return names
}

// Normalize fills unset (empty) axes with one default value each and
// pins the scalars, and returns the result. Like Scenario.Normalize it
// is idempotent.
func (sp Spec) Normalize() Spec {
	if sp.Version == 0 {
		sp.Version = SpecVersion
	}
	if sp.Seed == 0 {
		sp.Seed = DefaultSeed
	}
	def := Scenario{}.Normalize()
	if len(sp.Envs) == 0 {
		sp.Envs = def.Envs
	}
	if len(sp.Machines) == 0 {
		sp.Machines = []int{def.Machines}
	}
	if len(sp.Minutes) == 0 {
		sp.Minutes = []int{def.Minutes}
	}
	if len(sp.Churn) == 0 {
		sp.Churn = []bool{false}
	}
	if len(sp.Policy) == 0 {
		sp.Policy = []string{def.Policy}
	}
	if len(sp.Replication) == 0 {
		sp.Replication = []int{def.Replication}
	}
	if len(sp.DeadlineMin) == 0 {
		sp.DeadlineMin = []float64{def.DeadlineMin}
	}
	if len(sp.FaultyFrac) == 0 {
		sp.FaultyFrac = []float64{DefaultFaultyFrac}
	}
	if len(sp.ChunksPerUnit) == 0 {
		sp.ChunksPerUnit = []int{def.ChunksPerUnit}
	}
	if len(sp.Migration) == 0 {
		sp.Migration = []string{def.Migration}
	}
	if len(sp.Bandwidth) == 0 {
		sp.Bandwidth = []float64{def.BandwidthMbps}
	}
	return sp
}

// Migrates reports whether any point of the (normalized) spec migrates
// checkpoints — the switch for the sweep's extra table/CSV columns.
func (sp Spec) Migrates() bool {
	for _, m := range sp.Normalize().Migration {
		if m != "none" {
			return true
		}
	}
	return false
}

// NPoints reports the size of the cartesian grid, capped at
// MaxSweepPoints+1 (so callers can detect "too many" without overflow).
func (sp Spec) NPoints() int {
	sp = sp.Normalize()
	total := 1
	for _, a := range specAxes() {
		total *= a.len(&sp)
		if total > MaxSweepPoints {
			return MaxSweepPoints + 1
		}
	}
	return total
}

// SweptAxes names the axes with more than one value, in expansion
// order — the key columns of the merged sweep table.
func (sp Spec) SweptAxes() []string {
	sp = sp.Normalize()
	var names []string
	for _, a := range specAxes() {
		if a.len(&sp) > 1 {
			names = append(names, a.name)
		}
	}
	return names
}

// Points expands the spec into its cartesian grid, in canonical order:
// axes nest in AxisNames order with the last axis spinning fastest, so
// the point list (and everything keyed by it) is independent of how
// the spec was built. Widening one axis preserves every existing
// point's scenario — only its Index moves, which is why the engine
// keys caches by scenario, not index.
func (sp Spec) Points() ([]Point, error) {
	sp = sp.Normalize()
	if n := sp.NPoints(); n > MaxSweepPoints {
		return nil, fmt.Errorf("grid: spec expands to more than %d points", MaxSweepPoints)
	}
	axs := specAxes()
	dims := make([]int, len(axs))
	total := 1
	for i, a := range axs {
		dims[i] = a.len(&sp)
		total *= dims[i]
	}
	pts := make([]Point, 0, total)
	idx := make([]int, len(axs))
	for k := 0; k < total; k++ {
		scn := Scenario{Seed: sp.Seed, Quick: sp.Quick, Envs: sp.Envs}
		var avs []AxisValue
		for i, a := range axs {
			a.apply(&scn, &sp, idx[i])
			if dims[i] > 1 {
				avs = append(avs, AxisValue{Axis: a.name, Value: a.value(&sp, idx[i])})
			}
		}
		pts = append(pts, Point{Index: k, Axes: avs, Scenario: scn.Normalize()})
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
	}
	return pts, nil
}

// Validate reports the first error in the spec: an unsupported
// version, a non-positive axis value that Scenario.Normalize would
// silently replace, an oversized grid, or an invalid point (labelled
// with its swept-axis values).
func (sp Spec) Validate() error {
	sp = sp.Normalize()
	if sp.Version != SpecVersion {
		return fmt.Errorf("grid: unsupported spec version %d (this build reads version %d)", sp.Version, SpecVersion)
	}
	// Positivity checks come first: Scenario.Normalize treats <= 0 as
	// "unset" and substitutes defaults, which is right for a zero
	// value but wrong for an explicit list entry.
	for _, ax := range []struct {
		name string
		vals []int
	}{
		{"machines", sp.Machines},
		{"minutes", sp.Minutes},
		{"replication", sp.Replication},
		{"chunks_per_unit", sp.ChunksPerUnit},
	} {
		for _, v := range ax.vals {
			if v < 1 {
				return fmt.Errorf("grid: spec axis %s value %d must be at least 1", ax.name, v)
			}
		}
	}
	for _, v := range sp.DeadlineMin {
		if v <= 0 {
			return fmt.Errorf("grid: spec axis deadline_min value %g must be positive", v)
		}
	}
	for _, v := range sp.Bandwidth {
		if v <= 0 {
			return fmt.Errorf("grid: spec axis bandwidth value %g must be positive", v)
		}
	}
	pts, err := sp.Points()
	if err != nil {
		return err
	}
	for _, pt := range pts {
		if err := pt.Scenario.Validate(); err != nil {
			if lbl := pt.Label(); lbl != "" {
				return fmt.Errorf("spec point [%s]: %w", lbl, err)
			}
			return err
		}
	}
	return nil
}

// Set applies one "axis=v1,v2,..." override (the CLI's -set flag) to
// the spec, replacing that axis's value list. Integer axes also accept
// ranges: "256..1024*2" doubles from 256 to 1024, "1..4" steps by one,
// "0..90+30" steps by 30. The scalars seed, quick, envs, and name are
// settable the same way.
func (sp *Spec) Set(assign string) error {
	name, list, ok := strings.Cut(assign, "=")
	if !ok {
		return fmt.Errorf("grid: -set %q: want axis=value[,value...]", assign)
	}
	name = strings.TrimSpace(name)
	switch name {
	case "seed":
		v, err := strconv.ParseUint(strings.TrimSpace(list), 10, 64)
		if err != nil {
			return fmt.Errorf("grid: -set seed: %q is not an unsigned integer", list)
		}
		sp.Seed = v
		return nil
	case "quick":
		v, err := parseBool(strings.TrimSpace(list))
		if err != nil {
			return fmt.Errorf("grid: -set quick: %w", err)
		}
		sp.Quick = v
		return nil
	case "envs":
		sp.Envs = parseStringList(list)
		return nil
	case "name":
		sp.Name = strings.TrimSpace(list)
		return nil
	}
	for _, a := range specAxes() {
		if a.name == name {
			if err := a.set(sp, list); err != nil {
				return fmt.Errorf("grid: -set %s: %w", name, err)
			}
			return nil
		}
	}
	return fmt.Errorf("grid: unknown axis %q (axes: %s; scalars: seed, quick, envs, name)",
		name, strings.Join(AxisNames(), ", "))
}

// ParseSpec decodes a serialized spec, rejecting unknown fields (a
// misspelled axis must not silently pin its default) and files without
// a version.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("grid: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("grid: parsing spec: trailing data after the JSON document")
	}
	if sp.Version == 0 {
		return Spec{}, fmt.Errorf("grid: spec has no version (current: %d)", SpecVersion)
	}
	return sp, nil
}

// JSON renders the spec as indented JSON — the round-trip partner of
// ParseSpec. (Not a MarshalText/MarshalJSON method: Spec must keep its
// plain struct encoding when embedded in larger payloads.)
func (sp Spec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// formatFloat is the canonical float rendering for labels and CSV
// cells: shortest form that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseIntList parses "a,b,c" where each item is an integer or a range
// "lo..hi" with an optional step suffix: "*k" multiplies (geometric),
// "+k" adds; the default step is +1. Every range is bounded by
// MaxSweepPoints items, so a typo cannot expand without limit.
func parseIntList(list string) ([]int, error) {
	var out []int
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		lo, hi, step, mul, err := parseRange(item)
		if err != nil {
			return nil, err
		}
		for v := lo; v <= hi; {
			out = append(out, v)
			if len(out) > MaxSweepPoints {
				return nil, fmt.Errorf("range %q expands past %d values", item, MaxSweepPoints)
			}
			if mul {
				v *= step
			} else {
				v += step
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty value list")
	}
	return out, nil
}

// parseRange parses one integer item: "n" (lo==hi), or "lo..hi",
// "lo..hi*k", "lo..hi+k".
func parseRange(item string) (lo, hi, step int, mul bool, err error) {
	loS, rest, isRange := strings.Cut(item, "..")
	if !isRange {
		v, err := strconv.Atoi(item)
		if err != nil {
			return 0, 0, 0, false, fmt.Errorf("%q is not an integer", item)
		}
		return v, v, 1, false, nil
	}
	step = 1
	hiS := rest
	if i := strings.IndexAny(rest, "*+"); i >= 0 {
		hiS = rest[:i]
		mul = rest[i] == '*'
		if step, err = strconv.Atoi(rest[i+1:]); err != nil {
			return 0, 0, 0, false, fmt.Errorf("range %q: step %q is not an integer", item, rest[i+1:])
		}
	}
	if lo, err = strconv.Atoi(loS); err != nil {
		return 0, 0, 0, false, fmt.Errorf("range %q: %q is not an integer", item, loS)
	}
	if hi, err = strconv.Atoi(hiS); err != nil {
		return 0, 0, 0, false, fmt.Errorf("range %q: %q is not an integer", item, hiS)
	}
	if hi < lo {
		return 0, 0, 0, false, fmt.Errorf("range %q is descending", item)
	}
	if mul && (step < 2 || lo < 1) {
		return 0, 0, 0, false, fmt.Errorf("range %q: a *k step needs k >= 2 and a positive start", item)
	}
	if !mul && step < 1 {
		return 0, 0, 0, false, fmt.Errorf("range %q: a +k step needs k >= 1", item)
	}
	return lo, hi, step, mul, nil
}

func parseFloatList(list string) ([]float64, error) {
	var out []float64
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		v, err := strconv.ParseFloat(item, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a number", item)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBoolList(list string) ([]bool, error) {
	var out []bool
	for _, item := range strings.Split(list, ",") {
		v, err := parseBool(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBool(s string) (bool, error) {
	switch s {
	case "on", "true", "1", "yes":
		return true, nil
	case "off", "false", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("%q is not a boolean (on/off, true/false)", s)
}

func parseStringList(list string) []string {
	var out []string
	for _, item := range strings.Split(list, ",") {
		out = append(out, strings.TrimSpace(item))
	}
	return out
}
