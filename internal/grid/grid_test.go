package grid

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vmdg/internal/boinc"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// quickScn is a small churning scenario used across the tests. Quick
// calibration keeps each (class, env) micro-sim short, and the
// process-wide memoization means the whole file pays for it once.
func quickScn() Scenario {
	return Scenario{
		Machines: 600, Minutes: 90, Seed: 1, Quick: true,
		Churn: true, FaultyFrac: 0.02, Envs: []string{"vmplayer"},
	}.Normalize()
}

func TestHostRangeCoversPopulation(t *testing.T) {
	for _, machines := range []int{1, 7, ShardSize, ShardSize + 1, 3*ShardSize + 5, 10000} {
		scn := Scenario{Machines: machines}.Normalize()
		if scn.Shards() != len(scn.Envs)*scn.popShards() {
			t.Fatalf("machines=%d: %d shards for %d envs × %d slices",
				machines, scn.Shards(), len(scn.Envs), scn.popShards())
		}
		next := 0
		for i := 0; i < scn.popShards(); i++ {
			lo, hi := scn.HostRange(i)
			if lo != next {
				t.Fatalf("machines=%d shard %d starts at %d, want %d", machines, i, lo, next)
			}
			if hi-lo > ShardSize {
				t.Fatalf("machines=%d shard %d holds %d hosts > ShardSize", machines, i, hi-lo)
			}
			next = hi
		}
		if next != machines {
			t.Fatalf("machines=%d shards cover %d hosts", machines, next)
		}
	}
}

func TestValidateListsEnvironments(t *testing.T) {
	scn := quickScn()
	scn.Envs = []string{"vmware-fusion"}
	err := scn.Validate()
	if err == nil {
		t.Fatal("unknown environment accepted")
	}
	for _, name := range []string{"vmplayer", "qemu", "virtualbox", "virtualpc", "native", "vmplayer-nat"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid environment %q", err, name)
		}
	}
}

// TestValidateErrorTable covers every Scenario.Validate error path.
// The unknown-policy and unknown-environment errors must list the
// valid names — the CLI surfaces them verbatim.
func TestValidateErrorTable(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mutate   func(*Scenario)
		wantErr  []string
		accepted bool
	}{
		{"valid defaults", func(s *Scenario) {}, nil, true},
		{"unknown policy lists valid", func(s *Scenario) { s.Policy = "lifo" },
			append([]string{`unknown policy "lifo"`}, Policies()...), false},
		{"unknown env lists valid", func(s *Scenario) { s.Envs = []string{"xen"} },
			[]string{`unknown environment "xen"`, "vmplayer", "qemu", "virtualbox", "virtualpc"}, false},
		{"faulty below range", func(s *Scenario) { s.FaultyFrac = -0.1 },
			[]string{"faulty fraction", "[0, 1]"}, false},
		{"faulty above range", func(s *Scenario) { s.FaultyFrac = 1.5 },
			[]string{"faulty fraction", "[0, 1]"}, false},
		{"machines beyond cap", func(s *Scenario) { s.Machines = MaxMachines + 1 },
			[]string{"machines"}, false},
		{"minutes beyond cap", func(s *Scenario) { s.Minutes = MaxMinutes + 1 },
			[]string{"minutes"}, false},
		{"replication beyond population", func(s *Scenario) {
			s.Policy = "replication"
			s.Machines = 3
			s.Replication = 4
		}, []string{"replication factor 4", "population 3"}, false},
		{"unknown migration lists valid", func(s *Scenario) { s.Migration = "live" },
			append([]string{`unknown migration policy "live"`}, MigrationPolicies()...), false},
		{"negative bandwidth", func(s *Scenario) { s.BandwidthMbps = -100 },
			[]string{"bandwidth -100", "positive"}, false},
		{"valid migration defaults bandwidth", func(s *Scenario) { s.Migration = "on-departure" }, nil, true},
	} {
		scn := Scenario{}
		tc.mutate(&scn)
		err := scn.Validate()
		if tc.accepted {
			if err != nil {
				t.Fatalf("%s: rejected: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		for _, want := range tc.wantErr {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, want)
			}
		}
	}
}

// TestKeyCanonicalizesInertBandwidth: without migration the transfer
// plane never engages, so bandwidth must not split the cache scope — a
// migration×bandwidth sweep simulates its none point once. With
// migration on, bandwidth is load-bearing and must distinguish scopes.
func TestKeyCanonicalizesInertBandwidth(t *testing.T) {
	a := Scenario{BandwidthMbps: 100}.Normalize()
	b := Scenario{BandwidthMbps: 1000}.Normalize()
	if a.Key() != b.Key() {
		t.Fatalf("migration=none scopes differ by inert bandwidth:\n%s\n%s", a.Key(), b.Key())
	}
	a.Migration, b.Migration = "on-departure", "on-departure"
	if a.Key() == b.Key() {
		t.Fatal("bandwidth missing from a migrating scenario's scope")
	}
}

func TestRunShardIsPure(t *testing.T) {
	scn := quickScn()
	scn.Machines = 200
	a, err := RunShard(scn, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(scn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("two runs of the same shard differ")
	}
}

// TestMergeShardInvariant is the determinism contract at the grid
// level: merging shards is a pure fold, so the merged fleet must not
// depend on which order shards were *computed* in (the engine computes
// them on a pool in arbitrary order but always merges by index).
func TestMergeDeterministic(t *testing.T) {
	scn := quickScn()
	shards := make([]*ShardResult, scn.Shards())
	for i := range shards {
		var err error
		if shards[i], err = RunShard(scn, i); err != nil {
			t.Fatal(err)
		}
	}
	fr1, err := MergeShards(scn, shards)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute shard 1 fresh and merge again.
	again, err := RunShard(scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards[1] = again
	fr2, err := MergeShards(scn, shards)
	if err != nil {
		t.Fatal(err)
	}
	if fr1.Render() != fr2.Render() || fr1.CSV() != fr2.CSV() {
		t.Fatal("merged fleet result not deterministic")
	}
}

func TestChurnDrivesCheckpointRestart(t *testing.T) {
	scn := quickScn()
	shards := make([]*ShardResult, scn.Shards())
	for i := range shards {
		var err error
		if shards[i], err = RunShard(scn, i); err != nil {
			t.Fatal(err)
		}
	}
	fr, err := MergeShards(scn, shards)
	if err != nil {
		t.Fatal(err)
	}
	st := fr.Envs[0]
	if st.Evictions == 0 || st.Restores == 0 {
		t.Fatalf("churn produced no eviction/restart cycles: %+v", st)
	}
	if st.LostChunks <= 0 {
		t.Fatalf("evictions lost no chunks: %+v", st)
	}
	if st.Policy.Validated == 0 {
		t.Fatalf("fleet validated no units: %+v", st.Policy)
	}
	horizon := float64(scn.Minutes) * 60 * float64(st.Hosts)
	if st.OnSeconds <= 0 || st.OnSeconds >= horizon {
		t.Fatalf("availability %f outside (0, horizon)", st.OnSeconds)
	}
	if st.Latency.N == 0 {
		t.Fatal("no interactive bursts recorded")
	}
}

// TestChurnEnvironmentIndependent checks the population contract: the
// same volunteers power-cycle the same way under every VM environment,
// so eviction/restore counts and availability match across envs.
func TestChurnEnvironmentIndependent(t *testing.T) {
	scn := quickScn()
	scn.Machines = 300
	scn.Envs = []string{"vmplayer", "qemu"}
	// Shard 0 is (vmplayer, slice 0); shard popShards() is (qemu, slice 0).
	srA, err := RunShard(scn, 0)
	if err != nil {
		t.Fatal(err)
	}
	srB, err := RunShard(scn, scn.popShards())
	if err != nil {
		t.Fatal(err)
	}
	a, b := srA.Envs[0], srB.Envs[0]
	if a.Evictions != b.Evictions || a.Restores != b.Restores || a.OnSeconds != b.OnSeconds {
		t.Fatalf("owner behaviour differs across environments:\n%+v\n%+v", a, b)
	}
	if a.Policy.Validated == b.Policy.Validated && a.LostChunks == b.LostChunks {
		t.Fatal("environments produced identical science — calibration not applied?")
	}
}

// testSlab builds a hand-wired slab of n hosts on env starting at
// global index lo: one class (pinned to 1 chunk/s in both owner states
// so flips cannot perturb progress arithmetic), migration state
// allocated, fixed per-host RNG seeds.
func testSlab(env *envShard, lo, n int, class Class) *hostSlab {
	sl := &hostSlab{}
	sl.reset(env, lo, n, []Class{class}, true)
	sl.cals[0] = &Calibration{ActiveChunksPerSec: 1, IdleChunksPerSec: 1, BurstMs: []float64{1}}
	for i := 0; i < n; i++ {
		sl.ownerRNG[i] = *sim.NewRNG(1)
		sl.envRNG[i] = *sim.NewRNG(2)
	}
	return sl
}

func TestHostCheckpointRoundTrip(t *testing.T) {
	env := &envShard{prof: profByName(t, "vmplayer")}
	sl := testSlab(env, 42, 1, Classes()[0])
	sl.hasWork[0] = true
	sl.wu[0] = boinc.WorkUnit{ID: "t-wu-000001", Seed: 9, Chunks: 1000, CheckpointEvery: 128}
	sl.progress[0] = 700.5
	sl.ckpt[0] = sl.encodeCheckpoint(0, 5*sim.Second)
	sl.wu[0], sl.progress[0], sl.hasWork[0] = boinc.WorkUnit{}, 0, false
	if err := sl.restoreCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	if sl.wu[0].ID != "t-wu-000001" || !sl.hasWork[0] {
		t.Fatalf("restore lost the unit: %+v", sl.wu[0])
	}
	if sl.progress[0] != 700 {
		t.Fatalf("restored progress %v, want 700 (int chunks)", sl.progress[0])
	}
}

func TestEvictionRollsBackToCheckpoint(t *testing.T) {
	scn := Scenario{Machines: 1, Minutes: 1, Churn: true}.Normalize()
	env := &envShard{
		scn: scn, prof: profByName(t, "vmplayer"), sim: sim.New(),
		stats: &EnvStats{},
	}
	sl := testSlab(env, 0, 1, Classes()[0])
	sl.on[0], sl.hasWork[0] = true, true
	sl.wu[0] = boinc.WorkUnit{ID: "t-wu-000000", Seed: 1, Chunks: 1000, CheckpointEvery: 100}
	sl.progress[0] = 351
	sl.accrued[0] = 10 * sim.Second // progress already settled at the eviction instant
	sl.powerOff(0, 10*sim.Second)
	if sl.progress[0] != 300 {
		t.Fatalf("progress after eviction %v, want rollback to 300", sl.progress[0])
	}
	if env.stats.Evictions != 1 || env.stats.LostChunks != 51 {
		t.Fatalf("eviction accounting wrong: %+v", env.stats)
	}
	if sl.ckpt[0] == nil {
		t.Fatal("no checkpoint survived the eviction")
	}
	sl.powerOn(0, 20*sim.Second, true)
	if env.stats.Restores != 1 || sl.progress[0] != 300 || sl.wu[0].ID != "t-wu-000000" {
		t.Fatalf("restart did not resume the checkpoint: progress=%v wu=%v", sl.progress[0], sl.wu[0].ID)
	}
}

func TestQuorumPolicyValidation(t *testing.T) {
	scn := Scenario{Policy: "replication", Replication: 2, ChunksPerUnit: 800}.Normalize()
	pol := newPolicy(scn, "t", 100)
	const faulty, honest1, honest2 = 0, 1, 2
	wu := pol.Assign(faulty, 0)
	truth := resultFor(wu)

	// The second replica of the same unit goes to an honest host.
	if got := pol.Assign(honest1, 0); got.ID != wu.ID {
		t.Fatalf("under-replicated unit not topped up: got %s, want %s", got.ID, wu.ID)
	}
	pol.Submit(faulty, wu, truth+1, sim.Second)
	pol.Submit(honest1, wu, truth, 2*sim.Second)
	// 1–1 split: the tie-breaker replica goes to a third host.
	wu2 := pol.Assign(honest2, 3*sim.Second)
	if wu2.ID != wu.ID {
		t.Fatalf("tie-breaker not reissued: got %s, want %s", wu2.ID, wu.ID)
	}
	pol.Submit(honest2, wu, truth, 4*sim.Second)

	st := pol.Stats()
	if st.Validated != 1 || st.Bad != 0 {
		t.Fatalf("quorum failed to validate the true result: %+v", st)
	}
	if st.Invalid != 1 {
		t.Fatalf("corrupted report not counted invalid: %+v", st)
	}
}

func TestDeadlinePolicyReissuesOverdueUnits(t *testing.T) {
	scn := Scenario{Policy: "deadline", DeadlineMin: 1, ChunksPerUnit: 800}.Normalize()
	pol := newPolicy(scn, "t", 200)
	const goneHost, other, rescuer = 0, 1, 2
	wu := pol.Assign(goneHost, 0)

	// Before the deadline a second host gets fresh work. (Non-quorum
	// units carry no ID string; the seed is their identity.)
	early := pol.Assign(other, 30*sim.Second)
	if early.Seed == wu.Seed {
		t.Fatal("unit reissued before its deadline")
	}
	// After the deadline the overdue unit is handed out again.
	late := pol.Assign(rescuer, 2*60*sim.Second)
	if late.Seed != wu.Seed {
		t.Fatalf("overdue unit not reissued: got seed %d, want %d", late.Seed, wu.Seed)
	}
	pol.Submit(rescuer, wu, resultFor(wu), 3*60*sim.Second)
	// The original host finally returns: a duplicate, not a new unit.
	pol.Submit(goneHost, wu, resultFor(wu), 4*60*sim.Second)

	st := pol.Stats()
	if st.Validated != 1 || st.Duplicates != 1 {
		t.Fatalf("deadline accounting wrong: %+v", st)
	}
	if st.UnitsIssued != 2 || st.Assignments != 3 {
		t.Fatalf("issue accounting wrong: %+v", st)
	}
}

func TestFifoLeavesChurnedUnitsOutstanding(t *testing.T) {
	scn := Scenario{Policy: "fifo", ChunksPerUnit: 800}.Normalize()
	pol := newPolicy(scn, "t", 300)
	const goneHost, worker = 0, 1
	wu1 := pol.Assign(goneHost, 0)
	wu2 := pol.Assign(worker, 0)
	if wu1.Seed == wu2.Seed {
		t.Fatal("fifo reissued a unit")
	}
	pol.Submit(worker, wu2, resultFor(wu2), sim.Second)
	st := pol.Stats()
	if st.Validated != 1 || st.Outstanding != 1 {
		t.Fatalf("fifo accounting wrong: %+v", st)
	}
}

func TestHistogramPercentileAndMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Add(float64(i)) // 1..100 ms
	}
	p50 := a.Percentile(0.50)
	if p50 < 40 || p50 > 62 {
		t.Fatalf("p50 of 1..100ms = %v, want ≈50 within bin resolution", p50)
	}
	b.Add(1e9) // clamps into the top bin
	if got := b.Percentile(1); got < 1e4 {
		t.Fatalf("overflow latency binned at %v, want top bin", got)
	}
	var m Histogram
	m.Merge(&a)
	m.Merge(&b)
	if m.N != a.N+b.N {
		t.Fatalf("merge lost samples: %d != %d", m.N, a.N+b.N)
	}
}

func TestClassAssignmentDeterministicAndMixed(t *testing.T) {
	classes := Classes()
	seen := map[string]int{}
	for g := 0; g < 2000; g++ {
		c1 := classFor(classes, 7, g)
		c2 := classFor(classes, 7, g)
		if c1.Name != c2.Name {
			t.Fatal("class assignment not deterministic")
		}
		seen[c1.Name]++
	}
	for _, c := range classes {
		if seen[c.Name] == 0 {
			t.Fatalf("class %s missing from a 2000-host population: %v", c.Name, seen)
		}
	}
}

func profByName(t *testing.T, name string) vmm.Profile {
	t.Helper()
	prof, ok := profiles.ByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return prof
}
