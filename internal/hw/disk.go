package hw

import (
	"fmt"

	"vmdg/internal/sim"
)

// Disk models a commodity 2008-era SATA drive with a FIFO request queue.
// Service time for a request is a positioning cost (full seek for random
// access, track-to-track for sequential continuation) plus transfer time at
// platter bandwidth, with multiplicative jitter from the machine RNG.
type Disk struct {
	// SeekLatency is the average random positioning cost (seek + half a
	// rotation). ~11 ms for a 7200 rpm desktop drive.
	SeekLatency sim.Time
	// SeqLatency is the positioning cost when the request continues the
	// previous one on the same file.
	SeqLatency sim.Time
	// BandwidthBps is the sustained media transfer rate in bytes/second.
	BandwidthBps float64
	// JitterRel is the relative stddev applied to each service time.
	JitterRel float64

	s   *sim.Simulator
	rng *sim.RNG

	busyUntil sim.Time
	lastFile  string
	lastEnd   int64

	// Stats
	Reads, Writes   uint64
	BytesRead       int64
	BytesWritten    int64
	totalBusy       sim.Time
	lastServiceTime sim.Time
}

// DesktopSATA returns a drive typical of the paper's 2007-era testbed:
// ~11 ms random access, ~60 MB/s sustained transfer.
func DesktopSATA(s *sim.Simulator, rng *sim.RNG) *Disk {
	return &Disk{
		SeekLatency:  11 * sim.Millisecond,
		SeqLatency:   300 * sim.Microsecond,
		BandwidthBps: 60e6,
		JitterRel:    0.05,
		s:            s,
		rng:          rng,
	}
}

// Submit enqueues a request and calls done when the request completes.
// Requests are serviced FIFO; the callback runs as a simulator event.
func (d *Disk) Submit(file string, offset, bytes int64, write bool, done func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("hw: negative disk request size %d", bytes))
	}
	pos := d.SeekLatency
	if file == d.lastFile && offset == d.lastEnd {
		pos = d.SeqLatency
	}
	transfer := sim.FromSeconds(float64(bytes) / d.BandwidthBps)
	service := sim.Time(float64(pos+transfer) * d.rng.Jitter(d.JitterRel))
	if service < sim.Microsecond {
		service = sim.Microsecond
	}

	start := d.s.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	completion := start + service
	d.busyUntil = completion
	d.lastFile = file
	d.lastEnd = offset + bytes
	d.totalBusy += service
	d.lastServiceTime = service

	if write {
		d.Writes++
		d.BytesWritten += bytes
	} else {
		d.Reads++
		d.BytesRead += bytes
	}
	d.s.At(completion, "disk-complete", done)
}

// QueueDelay reports how long a request submitted now would wait before
// service begins.
func (d *Disk) QueueDelay() sim.Time {
	if d.busyUntil > d.s.Now() {
		return d.busyUntil - d.s.Now()
	}
	return 0
}

// Utilization returns the fraction of elapsed virtual time the disk has
// spent servicing requests.
func (d *Disk) Utilization() float64 {
	if d.s.Now() == 0 {
		return 0
	}
	return float64(d.totalBusy) / float64(d.s.Now())
}
