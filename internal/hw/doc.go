// Package hw models the physical machine of the paper's testbed: a dual
// core CPU (Core 2 Duo 6600 @ 2.40 GHz) with a shared L2/front-side bus, a
// commodity SATA disk, a 100 Mbps Fast Ethernet NIC, and 1 GB of RAM.
// The fleet simulation (internal/grid) also instantiates single-core,
// quad-core, and laptop-class variants of the same model for its
// heterogeneous volunteer populations.
//
// The CPU uses a fluid-rate model: threads do not execute instructions one
// by one; instead each runnable thread dispatched on a core progresses at a
// rate (cycles/second) that depends on what the *other* core is doing.
// Contention on the shared memory hierarchy is the paper's explanation for
// why two 7z threads only reach 180% of one core, and for the small MEM
// index overhead in Figure 5 — so it is the one micro-architectural effect
// we model explicitly.
//
// RAM is tracked as an explicit commit budget: a system-level VMM pins its
// configured guest memory at power-on (§4.2.1), so over-commit is a
// configuration error here, not a swap event.
package hw
