package hw

import (
	"math"
	"testing"
	"testing/quick"

	"vmdg/internal/sim"
)

func TestCPUValidate(t *testing.T) {
	if err := Core2Duo6600().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CPU{
		{Cores: 0, FreqHz: 1e9},
		{Cores: 2, FreqHz: 0},
		{Cores: 2, FreqHz: 1e9, BusK: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
}

func TestCPURatesIdleAndSolo(t *testing.T) {
	c := Core2Duo6600()
	r := c.Rates([]float64{0.5, -1})
	if r[0] != c.FreqHz {
		t.Fatalf("solo thread slowed: %v", r[0])
	}
	if r[1] != 0 {
		t.Fatalf("idle core rate = %v", r[1])
	}
}

func TestCPURatesContention(t *testing.T) {
	c := Core2Duo6600()
	// Two memory-free threads: no contention.
	r := c.Rates([]float64{0, 0})
	if r[0] != c.FreqHz || r[1] != c.FreqHz {
		t.Fatalf("ALU threads contended: %v", r)
	}
	// Two memory-heavy threads: both slowed, symmetrically.
	r = c.Rates([]float64{0.5, 0.5})
	if r[0] >= c.FreqHz || r[0] != r[1] {
		t.Fatalf("symmetric contention broken: %v", r)
	}
	// A pure-ALU thread is immune to a memory-heavy neighbour.
	r = c.Rates([]float64{0, 0.9})
	if r[0] != c.FreqHz {
		t.Fatalf("ALU thread slowed by neighbour: %v", r[0])
	}
	// ...and a memory thread is unaffected by a pure-ALU neighbour, which
	// generates no competing bus traffic.
	if r[1] != c.FreqHz {
		t.Fatalf("memory thread slowed by ALU neighbour: %v", r[1])
	}
}

func TestCPURatesMonotoneInNeighbourPressure(t *testing.T) {
	c := Core2Duo6600()
	prev := math.Inf(1)
	for _, other := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		r := c.Rates([]float64{0.5, other})[0]
		if r > prev {
			t.Fatalf("rate increased with neighbour pressure: %v", r)
		}
		prev = r
	}
}

func TestCPURatesProperty(t *testing.T) {
	c := Core2Duo6600()
	f := func(a, b uint8) bool {
		m1 := float64(a%101) / 100
		m2 := float64(b%101) / 100
		r := c.Rates([]float64{m1, m2})
		return r[0] > 0 && r[0] <= c.FreqHz && r[1] > 0 && r[1] <= c.FreqHz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPURatesPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched shares")
		}
	}()
	Core2Duo6600().Rates([]float64{0.5})
}

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	s := sim.New()
	m, err := NewMachine(s, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDiskSequentialFasterThanRandom(t *testing.T) {
	m := newTestMachine(t)
	s := m.Sim
	var seqDone, randDone sim.Time

	// Sequential: two adjacent reads of the same file.
	m.Disk.Submit("a", 0, 1<<20, false, func() {})
	m.Disk.Submit("a", 1<<20, 1<<20, false, func() { seqDone = s.Now() })
	s.Run()

	m2 := newTestMachine(t)
	s2 := m2.Sim
	m2.Disk.Submit("a", 0, 1<<20, false, func() {})
	m2.Disk.Submit("b", 5<<20, 1<<20, false, func() { randDone = s2.Now() })
	s2.Run()

	if seqDone >= randDone {
		t.Fatalf("sequential (%v) not faster than random (%v)", seqDone, randDone)
	}
}

func TestDiskFIFOAndStats(t *testing.T) {
	m := newTestMachine(t)
	var order []int
	m.Disk.Submit("a", 0, 4096, false, func() { order = append(order, 1) })
	m.Disk.Submit("a", 4096, 4096, true, func() { order = append(order, 2) })
	m.Disk.Submit("a", 8192, 4096, false, func() { order = append(order, 3) })
	if m.Disk.QueueDelay() <= 0 {
		t.Fatal("queue delay should be positive with pending requests")
	}
	m.Sim.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order = %v", order)
	}
	if m.Disk.Reads != 2 || m.Disk.Writes != 1 {
		t.Fatalf("stats reads=%d writes=%d", m.Disk.Reads, m.Disk.Writes)
	}
	if m.Disk.BytesRead != 8192 || m.Disk.BytesWritten != 4096 {
		t.Fatalf("bytes read=%d written=%d", m.Disk.BytesRead, m.Disk.BytesWritten)
	}
	if u := m.Disk.Utilization(); u <= 0 || u > 1.0001 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestDiskTransferTimeScalesWithSize(t *testing.T) {
	m := newTestMachine(t)
	m.Disk.JitterRel = 0
	var t1, t2 sim.Time
	m.Disk.Submit("a", 0, 1<<20, false, func() { t1 = m.Sim.Now() })
	m.Sim.Run()
	start := m.Sim.Now()
	m.Disk.Submit("b", 0, 32<<20, false, func() { t2 = m.Sim.Now() - start })
	m.Sim.Run()
	// 32 MB at 60 MB/s ≈ 533 ms ≫ 1 MB ≈ 17 ms (plus seek each).
	if t2 < 20*t1/2 {
		t.Fatalf("32MB (%v) not ~32x slower than 1MB (%v)", t2, t1)
	}
}

func TestDiskNegativeSizePanics(t *testing.T) {
	m := newTestMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative size")
		}
	}()
	m.Disk.Submit("a", 0, -1, false, nil)
}

func TestLinkSerializationAndDelivery(t *testing.T) {
	s := sim.New()
	l := FastEthernet(s)
	var arrived sim.Time
	l.Transmit(MSS+TCPHeaderBytes, func() { arrived = s.Now() })
	s.Run()
	// 1538 wire bytes at 100 Mbps = 123.04 us + 60 us propagation.
	want := l.SerializationTime(MSS+TCPHeaderBytes+EthernetOverhead) + l.PropDelay
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if l.Frames != 1 {
		t.Fatalf("frames = %d", l.Frames)
	}
}

func TestLinkBackpressure(t *testing.T) {
	s := sim.New()
	l := FastEthernet(s)
	free1 := l.Transmit(1500, nil)
	free2 := l.Transmit(1500, nil)
	if free2 <= free1 {
		t.Fatalf("second frame did not queue: %v <= %v", free2, free1)
	}
	if l.Backlog() <= 0 {
		t.Fatal("backlog should be positive")
	}
}

func TestLinkOversizeFramePanics(t *testing.T) {
	s := sim.New()
	l := FastEthernet(s)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on oversize frame")
		}
	}()
	l.Transmit(MTU+TCPHeaderBytes+1, nil)
}

func TestTheoreticalTCPGoodput(t *testing.T) {
	s := sim.New()
	l := FastEthernet(s)
	g := l.TheoreticalTCPGoodputBps() / 1e6
	if g < 94 || g > 98 {
		t.Fatalf("theoretical goodput = %.2f Mbps, want ~95-97", g)
	}
}

func TestMachineDefaults(t *testing.T) {
	m := newTestMachine(t)
	if m.CPU.Cores != 2 || m.CPU.FreqHz != 2.4e9 {
		t.Fatalf("default CPU = %+v", m.CPU)
	}
	if m.RAMBytes != 1<<30 {
		t.Fatalf("default RAM = %d", m.RAMBytes)
	}
}

func TestMachineBadConfig(t *testing.T) {
	s := sim.New()
	if _, err := NewMachine(s, Config{CPU: CPU{Cores: -1, FreqHz: 1}}); err == nil {
		t.Fatal("accepted negative cores")
	}
	if _, err := NewMachine(s, Config{RAMBytes: -5}); err == nil {
		t.Fatal("accepted negative RAM")
	}
}

func TestMemoryCommitAccounting(t *testing.T) {
	m := newTestMachine(t)
	const vmRAM = 300 << 20 // the paper's 300 MB guest
	if err := m.Commit(vmRAM); err != nil {
		t.Fatal(err)
	}
	if m.Committed() != vmRAM {
		t.Fatalf("committed = %d", m.Committed())
	}
	// A second and third VM would exceed 1 GB with the host's own use...
	if err := m.Commit(vmRAM); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2 * vmRAM); err == nil {
		t.Fatal("overcommit accepted")
	}
	m.Release(vmRAM)
	if m.Committed() != vmRAM {
		t.Fatalf("after release committed = %d", m.Committed())
	}
	if err := m.Commit(-1); err == nil {
		t.Fatal("negative commit accepted")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	m := newTestMachine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	m.Release(1)
}
