package hw

import (
	"fmt"

	"vmdg/internal/sim"
)

// Machine assembles the modelled testbed: CPU, RAM, disk, and a LAN link
// pair to a remote station (the iperf server of the paper's NetBench).
type Machine struct {
	CPU      CPU
	RAMBytes int64

	Disk *Disk
	// TX carries frames from this machine to the LAN peer; RX the reverse.
	TX, RX *Link

	Sim *sim.Simulator
	RNG *sim.RNG

	committed int64
}

// Config parameterizes machine construction; zero fields take the paper's
// testbed defaults.
type Config struct {
	CPU      CPU
	RAMBytes int64
	Seed     uint64
}

// NewMachine builds a machine for the given simulator. Defaults reproduce
// the paper's testbed: Core 2 Duo 6600, 1 GB RAM, desktop SATA disk,
// switched Fast Ethernet.
func NewMachine(s *sim.Simulator, cfg Config) (*Machine, error) {
	if cfg.CPU.Cores == 0 {
		cfg.CPU = Core2Duo6600()
	}
	if err := cfg.CPU.Validate(); err != nil {
		return nil, err
	}
	if cfg.RAMBytes == 0 {
		cfg.RAMBytes = 1 << 30 // 1 GB DDR2, per §4
	}
	if cfg.RAMBytes < 0 {
		return nil, fmt.Errorf("hw: negative RAM size %d", cfg.RAMBytes)
	}
	rng := sim.NewRNG(cfg.Seed)
	m := &Machine{
		CPU:      cfg.CPU,
		RAMBytes: cfg.RAMBytes,
		Sim:      s,
		RNG:      rng,
		Disk:     DesktopSATA(s, rng.Split()),
		TX:       FastEthernet(s),
		RX:       FastEthernet(s),
	}
	return m, nil
}

// Commit reserves bytes of physical RAM (how a system-level VMM pins its
// configured guest memory at power-on, §4.2.1). It fails rather than swaps:
// the paper's point is that VM memory cost is fixed and known up front, so
// over-commit is a configuration error in this model.
func (m *Machine) Commit(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("hw: negative commit %d", bytes)
	}
	if m.committed+bytes > m.RAMBytes {
		return fmt.Errorf("hw: commit of %d bytes exceeds RAM (%d committed of %d)",
			bytes, m.committed, m.RAMBytes)
	}
	m.committed += bytes
	return nil
}

// Release returns previously committed RAM.
func (m *Machine) Release(bytes int64) {
	if bytes < 0 || bytes > m.committed {
		panic(fmt.Sprintf("hw: release of %d with %d committed", bytes, m.committed))
	}
	m.committed -= bytes
}

// Committed reports currently committed RAM in bytes.
func (m *Machine) Committed() int64 { return m.committed }
