package hw

import "fmt"

// CPU describes the processor.
type CPU struct {
	// Cores is the number of physical cores (2 for the paper's testbed).
	Cores int
	// FreqHz is the core clock (2.4e9 for the Core 2 Duo 6600).
	FreqHz float64
	// BusK scales shared-bus contention: a thread with memory-cycle share
	// m₁ co-running with a thread of share m₂ is slowed by 1 + BusK·m₁·m₂.
	// Calibrated so that two 7z threads reach ≈180% aggregate (paper §4.2.3).
	BusK float64
}

// Core2Duo6600 returns the paper's processor model.
func Core2Duo6600() CPU {
	// BusK is calibrated against §4.2.3: two 7z threads (memory-cycle
	// share ≈ 0.5 each) must reach ≈180% of a single core, so
	// 2/(1 + BusK·0.5²) ≈ 1.80 → BusK ≈ 0.45.
	return CPU{Cores: 2, FreqHz: 2.4e9, BusK: 0.45}
}

// Validate checks the configuration for physical plausibility.
func (c CPU) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hw: CPU needs at least one core, got %d", c.Cores)
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("hw: non-positive frequency %v", c.FreqHz)
	}
	if c.BusK < 0 {
		return fmt.Errorf("hw: negative bus contention factor %v", c.BusK)
	}
	return nil
}

// Rates computes the effective execution rate (cycles/second) of the thread
// on each core, given the memory-cycle share of the thread currently
// dispatched there. An entry < 0 marks an idle core. Idle cores produce a
// rate of 0 and exert no bus pressure.
//
// For core i with memory share mᵢ, the slowdown is
//
//	sᵢ = 1 + BusK · mᵢ · Σⱼ≠ᵢ mⱼ
//
// so a pure-ALU thread (mᵢ=0) is immune to a memory-thrashing neighbour,
// while two streaming threads fight. This is a first-order fit to shared
// L2/FSB behaviour, sufficient for the ratio experiments reproduced here.
func (c CPU) Rates(memShare []float64) []float64 {
	if len(memShare) != c.Cores {
		panic(fmt.Sprintf("hw: Rates got %d shares for %d cores", len(memShare), c.Cores))
	}
	rates := make([]float64, c.Cores)
	var total float64
	for _, m := range memShare {
		if m > 0 {
			total += m
		}
	}
	for i, m := range memShare {
		if m < 0 {
			rates[i] = 0
			continue
		}
		others := total
		if m > 0 {
			others -= m
		}
		slow := 1 + c.BusK*m*others
		rates[i] = c.FreqHz / slow
	}
	return rates
}

// SingleRate is the rate of a thread running alone on the machine.
func (c CPU) SingleRate() float64 { return c.FreqHz }
