package hw

import (
	"fmt"

	"vmdg/internal/sim"
)

// Ethernet frame constants for a Fast Ethernet LAN. A 1500-byte IP MTU
// carries 1460 bytes of TCP payload; on the wire each frame additionally
// pays Ethernet header+FCS, preamble and inter-frame gap.
const (
	MTU              = 1500 // IP MTU, bytes
	TCPHeaderBytes   = 40   // IP (20) + TCP (20), no options
	UDPHeaderBytes   = 28   // IP (20) + UDP (8)
	EthernetOverhead = 38   // 14 hdr + 4 FCS + 8 preamble + 12 IFG
	MSS              = MTU - TCPHeaderBytes
)

// Link is one direction of a switched full-duplex Fast Ethernet path
// between two stations. Frames serialize at line rate and arrive after a
// propagation+switching delay; the transmitter is busy for the
// serialization time, modelling NIC back-pressure.
type Link struct {
	// BandwidthBps is the line rate in bits/second (1e8 for Fast Ethernet).
	BandwidthBps float64
	// PropDelay covers propagation plus one store-and-forward switch hop.
	PropDelay sim.Time

	s         *sim.Simulator
	busyUntil sim.Time

	// Stats
	Frames    uint64
	WireBytes int64
}

// FastEthernet returns one direction of a 100 Mbps switched LAN path.
func FastEthernet(s *sim.Simulator) *Link {
	return &Link{BandwidthBps: 100e6, PropDelay: 60 * sim.Microsecond, s: s}
}

// SerializationTime returns the wire occupancy of a frame carrying
// payload bytes of IP payload (header bytes already included by caller).
func (l *Link) SerializationTime(wireBytes int64) sim.Time {
	return sim.FromSeconds(float64(wireBytes*8) / l.BandwidthBps)
}

// Transmit sends a frame with the given on-wire size (IP packet size; the
// Ethernet overhead is added here) and calls deliver at the receiver when
// the frame arrives. It returns the time at which the transmitter becomes
// free to send the next frame.
func (l *Link) Transmit(ipBytes int64, deliver func()) sim.Time {
	if ipBytes <= 0 || ipBytes > MTU+TCPHeaderBytes {
		panic(fmt.Sprintf("hw: frame of %d IP bytes exceeds MTU framing", ipBytes))
	}
	wire := ipBytes + EthernetOverhead
	ser := l.SerializationTime(wire)

	start := l.s.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	l.busyUntil = start + ser
	l.Frames++
	l.WireBytes += wire

	arrive := l.busyUntil + l.PropDelay
	if deliver != nil {
		l.s.At(arrive, "frame-deliver", deliver)
	}
	return l.busyUntil
}

// Backlog reports how long a frame submitted now would wait before its
// first bit hits the wire.
func (l *Link) Backlog() sim.Time {
	if l.busyUntil > l.s.Now() {
		return l.busyUntil - l.s.Now()
	}
	return 0
}

// TheoreticalTCPGoodputBps returns the best-case TCP payload rate of the
// link: line rate discounted by per-MSS framing overhead. For 100 Mbps and
// a 1460-byte MSS this is ≈ 97.2 Mbps of application payload when the
// reverse path carries only ACKs — matching the paper's native 97.60 Mbps
// within measurement noise.
func (l *Link) TheoreticalTCPGoodputBps() float64 {
	frame := float64(MSS + TCPHeaderBytes + EthernetOverhead)
	return l.BandwidthBps * float64(MSS) / frame
}
