package cost

import "fmt"

// Per-class cycles-per-operation on the modelled Core 2 micro-architecture.
// These translate algorithm-level operation counts into cycle budgets. The
// absolute values only set the time scale; the paper's results are ratios,
// which depend on the class *mix*, not on absolute CPI.
const (
	CPIInt    = 1.0 // simple ALU op, often dual-issued
	CPIFP     = 2.0 // FP add/mul latency amortized over the FPU pipeline
	CPIMem    = 6.0 // average memory access incl. L1/L2 hits and misses
	CPIKernel = 1.5 // kernel-path instruction (syscall/interrupt bodies)
)

// Mix describes how a block of computation distributes its cycles across
// operation classes. Fields are fractions in [0,1] that sum to 1.
type Mix struct {
	Int    float64 // user-mode integer ALU share
	FP     float64 // user-mode floating point share
	Mem    float64 // memory-traffic share (drives shared-bus contention)
	Kernel float64 // guest-kernel share (drives VMM trap overhead)
}

// Total returns the sum of all fractions (1.0 for a normalized mix).
func (m Mix) Total() float64 { return m.Int + m.FP + m.Mem + m.Kernel }

// Normalized returns the mix scaled so its fractions sum to 1. A zero mix
// normalizes to a pure-integer mix, which is the safest default for
// untyped busy work.
func (m Mix) Normalized() Mix {
	t := m.Total()
	if t <= 0 {
		return Mix{Int: 1}
	}
	return Mix{Int: m.Int / t, FP: m.FP / t, Mem: m.Mem / t, Kernel: m.Kernel / t}
}

// Blend returns the cycle-weighted average of two mixes, where a and b
// carry wa and wb cycles respectively.
func Blend(a Mix, wa float64, b Mix, wb float64) Mix {
	if wa+wb <= 0 {
		return a
	}
	return Mix{
		Int:    (a.Int*wa + b.Int*wb) / (wa + wb),
		FP:     (a.FP*wa + b.FP*wb) / (wa + wb),
		Mem:    (a.Mem*wa + b.Mem*wb) / (wa + wb),
		Kernel: (a.Kernel*wa + b.Kernel*wb) / (wa + wb),
	}
}

func (m Mix) String() string {
	return fmt.Sprintf("mix{int:%.2f fp:%.2f mem:%.2f krn:%.2f}", m.Int, m.FP, m.Mem, m.Kernel)
}

// approxEqual reports whether two mixes agree within eps per component.
func (m Mix) approxEqual(o Mix, eps float64) bool {
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(m.Int-o.Int) < eps && abs(m.FP-o.FP) < eps &&
		abs(m.Mem-o.Mem) < eps && abs(m.Kernel-o.Kernel) < eps
}

// Counts is the raw operation tally a benchmark accumulates while running.
type Counts struct {
	IntOps    uint64 // integer ALU operations
	FPOps     uint64 // floating point operations
	MemOps    uint64 // loads/stores that reach the cache hierarchy
	KernelOps uint64 // instructions executed on the guest kernel path
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.IntOps += o.IntOps
	c.FPOps += o.FPOps
	c.MemOps += o.MemOps
	c.KernelOps += o.KernelOps
}

// Cycles converts the tally to a cycle budget using the CPI table.
func (c Counts) Cycles() float64 {
	return float64(c.IntOps)*CPIInt + float64(c.FPOps)*CPIFP +
		float64(c.MemOps)*CPIMem + float64(c.KernelOps)*CPIKernel
}

// Mix returns the cycle-share mix implied by the tally.
func (c Counts) Mix() Mix {
	total := c.Cycles()
	if total <= 0 {
		return Mix{Int: 1}
	}
	return Mix{
		Int:    float64(c.IntOps) * CPIInt / total,
		FP:     float64(c.FPOps) * CPIFP / total,
		Mem:    float64(c.MemOps) * CPIMem / total,
		Kernel: float64(c.KernelOps) * CPIKernel / total,
	}
}
