package cost

import "vmdg/internal/sim"

// Meter captures the operation stream of a real benchmark run into a
// Profile. Benchmark code calls the counting methods as it executes its
// actual algorithm; adjacent compute work with a similar mix is coalesced
// into a single step to keep profiles compact (a full 7z benchmark pass
// collapses to a few hundred steps instead of millions).
type Meter struct {
	name    string
	steps   []Step
	pending Counts // compute ops not yet flushed into a step

	// coalesceEps bounds how much the pending mix may drift from the
	// incoming mix before a new step is cut.
	coalesceEps float64
	// maxStepCycles caps step granularity so schedulers can preempt
	// replayed programs mid-phase with realistic quantum resolution.
	maxStepCycles float64
}

// NewMeter returns a Meter for a benchmark with the given name.
func NewMeter(name string) *Meter {
	return &Meter{
		name:          name,
		coalesceEps:   0.05,
		maxStepCycles: 50e6, // ~20 ms at 2.4 GHz: finer than any quantum
	}
}

// Ops records a raw operation tally (the common path for instrumented
// algorithm kernels).
func (m *Meter) Ops(c Counts) {
	m.pending.Add(c)
	if m.pending.Cycles() >= m.maxStepCycles {
		m.flush()
	}
}

// Int records n integer ALU operations.
func (m *Meter) Int(n uint64) { m.Ops(Counts{IntOps: n}) }

// FP records n floating point operations.
func (m *Meter) FP(n uint64) { m.Ops(Counts{FPOps: n}) }

// Mem records n memory operations.
func (m *Meter) Mem(n uint64) { m.Ops(Counts{MemOps: n}) }

// Kernel records n guest-kernel-path instructions (syscall entry/exit,
// page-fault handling, interrupt bodies).
func (m *Meter) Kernel(n uint64) { m.Ops(Counts{KernelOps: n}) }

// flush converts pending counts into one or more compute steps.
func (m *Meter) flush() {
	cycles := m.pending.Cycles()
	if cycles <= 0 {
		return
	}
	mix := m.pending.Mix()
	for cycles > 0 {
		c := cycles
		if c > m.maxStepCycles {
			c = m.maxStepCycles
		}
		m.steps = append(m.steps, Step{Kind: StepCompute, Cycles: c, Mix: mix})
		cycles -= c
	}
	m.pending = Counts{}
}

// syscallOverheadOps is the guest-kernel instruction cost charged per
// syscall crossing (entry, argument copy, exit). I/O payload movement is
// charged separately per byte.
const syscallOverheadOps = 3000

// perByteKernelOps models copy_to/from_user plus page-cache bookkeeping on
// the guest kernel I/O path, per payload byte (≈0.08 kernel instr/byte).
const perByteKernelOps = 0.08

// DiskRead records a blocking read syscall of the given size.
func (m *Meter) DiskRead(file string, offset, bytes int64) {
	m.Kernel(syscallOverheadOps + uint64(float64(bytes)*perByteKernelOps))
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepDiskRead, File: file, Offset: offset, Bytes: bytes})
}

// DiskWrite records a blocking write syscall of the given size.
func (m *Meter) DiskWrite(file string, offset, bytes int64) {
	m.Kernel(syscallOverheadOps + uint64(float64(bytes)*perByteKernelOps))
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepDiskWrite, File: file, Offset: offset, Bytes: bytes})
}

// DiskSync records an fsync barrier.
func (m *Meter) DiskSync(file string) {
	m.Kernel(syscallOverheadOps)
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepDiskSync, File: file})
}

// NetSend records a blocking send of bytes on connection conn.
func (m *Meter) NetSend(conn int, bytes int64) {
	m.Kernel(syscallOverheadOps + uint64(float64(bytes)*perByteKernelOps))
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepNetSend, Conn: conn, Bytes: bytes})
}

// NetRecv records a blocking receive of bytes on connection conn.
func (m *Meter) NetRecv(conn int, bytes int64) {
	m.Kernel(syscallOverheadOps + uint64(float64(bytes)*perByteKernelOps))
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepNetRecv, Conn: conn, Bytes: bytes})
}

// Sleep records a timed block.
func (m *Meter) Sleep(d sim.Time) {
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepSleep, Dur: d})
}

// Clock records a local clock sample (gettimeofday). Inside a guest this
// is where timing error enters; the step exists so the drift model can
// charge it.
func (m *Meter) Clock() {
	m.Kernel(syscallOverheadOps / 3) // vsyscall-ish: cheaper than full syscall
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepClock})
}

// DropCaches records the administrative cache-drop I/O benchmarks use to
// force their read phase onto the device.
func (m *Meter) DropCaches() {
	m.Kernel(syscallOverheadOps)
	m.flush()
	m.steps = append(m.steps, Step{Kind: StepDropCaches})
}

// Profile finalizes capture and returns the step stream. The Meter may not
// be reused afterwards.
func (m *Meter) Profile() *Profile {
	m.flush()
	return &Profile{Name: m.name, Steps: m.steps}
}
