package cost

import (
	"fmt"

	"vmdg/internal/sim"
)

// StepKind discriminates the variants of a Step.
type StepKind int

// Step kinds. Compute steps burn CPU; the I/O kinds block the issuing
// thread until the corresponding device operation completes; Sleep blocks
// for virtual time; Clock samples the (possibly drifting) local clock.
const (
	StepCompute StepKind = iota
	StepDiskRead
	StepDiskWrite
	StepDiskSync // barrier: flush outstanding writes to the platter
	StepNetSend
	StepNetRecv
	StepSleep
	StepClock
	// StepHalt parks the executing CPU until an external wake (a device
	// interrupt). Guest kernels emit it from their idle loop; it is only
	// meaningful under a handler that knows who will deliver the wake.
	StepHalt
	// StepDropCaches discards clean page-cache contents (the
	// `drop_caches` administrative action I/O benchmarks take between
	// their write and read phases).
	StepDropCaches
)

var stepKindNames = [...]string{
	"compute", "disk-read", "disk-write", "disk-sync",
	"net-send", "net-recv", "sleep", "clock", "halt", "drop-caches",
}

func (k StepKind) String() string {
	if k < 0 || int(k) >= len(stepKindNames) {
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
	return stepKindNames[k]
}

// Step is one replayable unit of program behaviour.
type Step struct {
	Kind   StepKind
	Cycles float64  // StepCompute: cycle budget at native CPI
	Mix    Mix      // StepCompute: class mix of those cycles
	Bytes  int64    // disk/net kinds: payload size
	File   string   // disk kinds: file identity within the guest FS
	Offset int64    // disk kinds: byte offset
	Conn   int      // net kinds: connection/flow identifier
	Dur    sim.Time // StepSleep: duration
}

func (s Step) String() string {
	switch s.Kind {
	case StepCompute:
		return fmt.Sprintf("compute{%.0fcy %v}", s.Cycles, s.Mix)
	case StepDiskRead, StepDiskWrite:
		return fmt.Sprintf("%v{%s@%d %dB}", s.Kind, s.File, s.Offset, s.Bytes)
	case StepNetSend, StepNetRecv:
		return fmt.Sprintf("%v{conn%d %dB}", s.Kind, s.Conn, s.Bytes)
	case StepSleep:
		return fmt.Sprintf("sleep{%v}", s.Dur)
	default:
		return s.Kind.String()
	}
}

// Profile is a finite step stream plus summary totals, the unit of exchange
// between benchmark capture and simulator replay.
type Profile struct {
	Name  string
	Steps []Step
}

// TotalCycles sums the compute budget across all steps.
func (p *Profile) TotalCycles() float64 {
	var c float64
	for _, s := range p.Steps {
		if s.Kind == StepCompute {
			c += s.Cycles
		}
	}
	return c
}

// TotalDiskBytes sums read+write payloads.
func (p *Profile) TotalDiskBytes() (read, written int64) {
	for _, s := range p.Steps {
		switch s.Kind {
		case StepDiskRead:
			read += s.Bytes
		case StepDiskWrite:
			written += s.Bytes
		}
	}
	return read, written
}

// TotalNetBytes sums sent+received payloads.
func (p *Profile) TotalNetBytes() (sent, received int64) {
	for _, s := range p.Steps {
		switch s.Kind {
		case StepNetSend:
			sent += s.Bytes
		case StepNetRecv:
			received += s.Bytes
		}
	}
	return sent, received
}

// OverallMix returns the cycle-weighted mix across all compute steps.
func (p *Profile) OverallMix() Mix {
	var mix Mix
	var cycles float64
	for _, s := range p.Steps {
		if s.Kind == StepCompute {
			mix = Blend(mix, cycles, s.Mix, s.Cycles)
			cycles += s.Cycles
		}
	}
	if cycles == 0 {
		return Mix{Int: 1}
	}
	return mix
}

// Repeat returns a profile that replays p n times end to end. The step
// slice is shared structurally via copying; profiles are treated as
// immutable after capture.
func (p *Profile) Repeat(n int) *Profile {
	out := &Profile{Name: fmt.Sprintf("%s×%d", p.Name, n)}
	out.Steps = make([]Step, 0, len(p.Steps)*n)
	for i := 0; i < n; i++ {
		out.Steps = append(out.Steps, p.Steps...)
	}
	return out
}

// Program yields steps one at a time; the simulated thread executes them in
// order and terminates when ok is false. Implementations must be
// deterministic: the sequence may depend only on construction parameters.
type Program interface {
	Next() (step Step, ok bool)
}

// Iterator adapts a Profile into a Program.
type Iterator struct {
	profile *Profile
	pos     int
}

// Iter returns a fresh Program over p's steps.
func (p *Profile) Iter() *Iterator { return &Iterator{profile: p} }

// Next implements Program.
func (it *Iterator) Next() (Step, bool) {
	if it.pos >= len(it.profile.Steps) {
		return Step{}, false
	}
	s := it.profile.Steps[it.pos]
	it.pos++
	return s, true
}

// Remaining reports how many steps are left, used by schedulers for traces.
func (it *Iterator) Remaining() int { return len(it.profile.Steps) - it.pos }

// LoopProgram replays a profile forever — the shape of a BOINC worker that
// always has another work unit. It never returns ok=false.
type LoopProgram struct {
	profile *Profile
	pos     int
	// Laps counts completed traversals, letting experiments measure
	// throughput of an endless worker.
	Laps int
}

// Loop returns a Program that cycles through p's steps indefinitely.
// It panics on an empty profile, which would otherwise spin the simulator.
func Loop(p *Profile) *LoopProgram {
	if len(p.Steps) == 0 {
		panic("cost: Loop over empty profile")
	}
	return &LoopProgram{profile: p}
}

// Next implements Program; it always succeeds.
func (l *LoopProgram) Next() (Step, bool) {
	s := l.profile.Steps[l.pos]
	l.pos++
	if l.pos == len(l.profile.Steps) {
		l.pos = 0
		l.Laps++
	}
	return s, true
}
