package cost

import (
	"math"
	"testing"
	"testing/quick"

	"vmdg/internal/sim"
)

func TestMixNormalized(t *testing.T) {
	m := Mix{Int: 2, FP: 1, Mem: 1}
	n := m.Normalized()
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Fatalf("normalized total = %v", n.Total())
	}
	if math.Abs(n.Int-0.5) > 1e-12 || math.Abs(n.FP-0.25) > 1e-12 {
		t.Fatalf("normalized = %+v", n)
	}
	if z := (Mix{}).Normalized(); z.Int != 1 {
		t.Fatalf("zero mix normalized to %+v, want pure int", z)
	}
}

func TestMixNormalizedProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		m := Mix{Int: float64(a), FP: float64(b), Mem: float64(c), Kernel: float64(d)}
		n := m.Normalized()
		return math.Abs(n.Total()-1) < 1e-9 &&
			n.Int >= 0 && n.FP >= 0 && n.Mem >= 0 && n.Kernel >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlend(t *testing.T) {
	a := Mix{Int: 1}
	b := Mix{FP: 1}
	got := Blend(a, 3, b, 1)
	if math.Abs(got.Int-0.75) > 1e-12 || math.Abs(got.FP-0.25) > 1e-12 {
		t.Fatalf("Blend = %+v", got)
	}
	if Blend(a, 0, b, 0) != a {
		t.Fatal("zero-weight blend should return first mix")
	}
}

func TestCountsCyclesAndMix(t *testing.T) {
	c := Counts{IntOps: 100, FPOps: 50, MemOps: 10, KernelOps: 20}
	want := 100*CPIInt + 50*CPIFP + 10*CPIMem + 20*CPIKernel
	if got := c.Cycles(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Cycles = %v, want %v", got, want)
	}
	m := c.Mix()
	if math.Abs(m.Total()-1) > 1e-12 {
		t.Fatalf("mix total = %v", m.Total())
	}
	if math.Abs(m.Int-100*CPIInt/want) > 1e-12 {
		t.Fatalf("mix int = %v", m.Int)
	}
	if zm := (Counts{}).Mix(); zm.Int != 1 {
		t.Fatalf("zero counts mix = %+v", zm)
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{IntOps: 1, FPOps: 2, MemOps: 3, KernelOps: 4}
	a.Add(Counts{IntOps: 10, FPOps: 20, MemOps: 30, KernelOps: 40})
	if a != (Counts{IntOps: 11, FPOps: 22, MemOps: 33, KernelOps: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestMeterCoalescesCompute(t *testing.T) {
	m := NewMeter("t")
	for i := 0; i < 1000; i++ {
		m.Int(100)
	}
	p := m.Profile()
	if len(p.Steps) != 1 {
		t.Fatalf("expected 1 coalesced step, got %d", len(p.Steps))
	}
	if want := 1000 * 100 * CPIInt; math.Abs(p.TotalCycles()-want) > 1e-6 {
		t.Fatalf("TotalCycles = %v, want %v", p.TotalCycles(), want)
	}
}

func TestMeterSplitsLargeCompute(t *testing.T) {
	m := NewMeter("t")
	m.Int(uint64(3.5 * 50e6)) // 3.5 × maxStepCycles of pure int work
	p := m.Profile()
	if len(p.Steps) != 4 {
		t.Fatalf("expected 4 steps for 3.5× max, got %d", len(p.Steps))
	}
	for i, s := range p.Steps {
		if s.Cycles > 50e6+1 {
			t.Fatalf("step %d exceeds cap: %v", i, s.Cycles)
		}
	}
}

func TestMeterIOStepsFlushCompute(t *testing.T) {
	m := NewMeter("t")
	m.Int(1000)
	m.DiskRead("f", 0, 4096)
	m.FP(500)
	m.DiskWrite("f", 4096, 8192)
	m.DiskSync("f")
	p := m.Profile()
	// Expect: compute(int+kernel), read, compute(fp+kernel), write,
	// compute(kernel), sync.
	kinds := []StepKind{}
	for _, s := range p.Steps {
		kinds = append(kinds, s.Kind)
	}
	want := []StepKind{StepCompute, StepDiskRead, StepCompute, StepDiskWrite, StepCompute, StepDiskSync}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	r, w := p.TotalDiskBytes()
	if r != 4096 || w != 8192 {
		t.Fatalf("disk bytes = %d,%d", r, w)
	}
}

func TestMeterNetAndSleepAndClock(t *testing.T) {
	m := NewMeter("t")
	m.NetSend(1, 1000)
	m.NetRecv(1, 2000)
	m.Sleep(5 * sim.Millisecond)
	m.Clock()
	p := m.Profile()
	s, r := p.TotalNetBytes()
	if s != 1000 || r != 2000 {
		t.Fatalf("net bytes = %d,%d", s, r)
	}
	var sawSleep, sawClock bool
	for _, st := range p.Steps {
		if st.Kind == StepSleep && st.Dur == 5*sim.Millisecond {
			sawSleep = true
		}
		if st.Kind == StepClock {
			sawClock = true
		}
	}
	if !sawSleep || !sawClock {
		t.Fatalf("missing sleep/clock steps: %v", p.Steps)
	}
}

func TestSyscallsChargeKernelCycles(t *testing.T) {
	m := NewMeter("t")
	m.DiskRead("f", 0, 1<<20)
	p := m.Profile()
	mix := p.OverallMix()
	if mix.Kernel < 0.99 {
		t.Fatalf("pure-syscall profile kernel share = %v, want ~1", mix.Kernel)
	}
	if p.TotalCycles() < float64(syscallOverheadOps) {
		t.Fatalf("syscall charged too few cycles: %v", p.TotalCycles())
	}
}

func TestProfileIter(t *testing.T) {
	m := NewMeter("t")
	m.Int(10)
	m.DiskRead("f", 0, 1)
	p := m.Profile()
	it := p.Iter()
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if n != len(p.Steps) {
		t.Fatalf("iterated %d, want %d", n, len(p.Steps))
	}
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator yielded a step")
	}
}

func TestProfileRepeat(t *testing.T) {
	m := NewMeter("t")
	m.Int(10)
	p := m.Profile()
	r := p.Repeat(5)
	if len(r.Steps) != 5*len(p.Steps) {
		t.Fatalf("Repeat(5) steps = %d", len(r.Steps))
	}
	if math.Abs(r.TotalCycles()-5*p.TotalCycles()) > 1e-9 {
		t.Fatal("Repeat cycle total mismatch")
	}
}

func TestLoopProgram(t *testing.T) {
	m := NewMeter("t")
	m.Int(10)
	m.FP(10)
	p := m.Profile()
	l := Loop(p)
	steps := len(p.Steps)
	for i := 0; i < steps*3; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatal("Loop terminated")
		}
	}
	if l.Laps != 3 {
		t.Fatalf("Laps = %d, want 3", l.Laps)
	}
}

func TestLoopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Loop over empty profile did not panic")
		}
	}()
	Loop(&Profile{})
}

func TestOverallMix(t *testing.T) {
	m := NewMeter("t")
	m.Int(1000) // 1000 cycles int
	p1 := m.Profile()
	if mix := p1.OverallMix(); mix.Int < 0.99 {
		t.Fatalf("pure int mix = %+v", mix)
	}
	if mix := (&Profile{}).OverallMix(); mix.Int != 1 {
		t.Fatalf("empty profile mix = %+v", mix)
	}
}

func TestStepString(t *testing.T) {
	for _, s := range []Step{
		{Kind: StepCompute, Cycles: 100, Mix: Mix{Int: 1}},
		{Kind: StepDiskRead, File: "f", Bytes: 10},
		{Kind: StepNetSend, Conn: 1, Bytes: 10},
		{Kind: StepSleep, Dur: sim.Millisecond},
		{Kind: StepClock},
		{Kind: StepKind(99)},
	} {
		if s.String() == "" {
			t.Fatalf("empty String for %v", s.Kind)
		}
	}
}
