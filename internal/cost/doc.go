// Package cost defines the abstract operation model that connects real
// benchmark code to the simulated machine.
//
// Real benchmark implementations (internal/bench/...) run actual
// algorithms in Go while a Meter counts the operations they perform,
// classified into four architectural classes: user-mode integer,
// user-mode floating point, memory traffic, and (guest) kernel-mode
// work. The Meter output is a Profile — a compact step stream of
// compute, I/O, network, and sleep steps — which the simulator replays
// under any environment (native or one of the four VMM profiles).
//
// Separating capture from replay keeps the algorithms real and testable
// while making each of the paper's ≥50 measurement repetitions cheap:
// the expensive algorithm runs once per capture, and the replay costs
// only event-queue work. It is also what makes the experiment layer
// shardable — a captured Profile is immutable, so any number of
// concurrent simulations can replay it without sharing state.
//
// Per-class cycles-per-operation constants translate operation counts
// into cycle budgets on the modelled Core 2 micro-architecture. The
// absolute values only set the time scale; the paper's results are
// ratios, which depend on the class mix, not on absolute CPI.
package cost
