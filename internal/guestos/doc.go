// Package guestos models the Linux guest of the paper: a small kernel that
// multiplexes guest threads onto a single virtual CPU, a page-cache
// filesystem over a block device, and a TCP/UDP network stack over a
// virtual NIC.
//
// The kernel implements cost.Program: its Next method emits the vCPU's
// instruction stream (compute steps, device commands, halts) *before* VMM
// cost expansion. The same kernel therefore serves both the native baseline
// (expansion 1, devices backed directly by hardware) and every virtualized
// environment (expansion per profile, devices emulated) — exactly the
// paper's methodology of running one Ubuntu image everywhere.
package guestos
