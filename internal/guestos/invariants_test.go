package guestos

import (
	"testing"
	"testing/quick"

	"vmdg/internal/cost"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// TestTCPConservationProperty: any pattern of application writes is
// eventually delivered and acknowledged byte-for-byte.
func TestTCPConservationProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		var total int64
		for _, c := range chunks {
			total += int64(c)
		}
		if total == 0 || len(chunks) > 40 {
			return true
		}
		s := sim.New()
		nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
		k := NewKernel(KernelConfig{Sim: s, NIC: nic})
		k.Net.Dial(1)
		m := cost.NewMeter("w")
		for _, c := range chunks {
			if c == 0 {
				continue
			}
			m.NetSend(1, int64(c))
		}
		k.SpawnG("w", m.Profile().Iter())
		e := newExecutor(s, k)
		e.start()
		s.Run()
		c := k.Net.Conn(1)
		return c.Drained() && c.Acked == total && c.peer.BytesRcvd == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPInflightNeverExceedsWindow: instrument a long transfer and check
// the windowing invariant at every send.
func TestTCPInflightNeverExceedsWindow(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	c := k.Net.Dial(1)
	m := cost.NewMeter("w")
	m.NetSend(1, 2<<20)
	k.SpawnG("w", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	// Step the simulation and probe the invariant continuously.
	for {
		next, ok := s.NextEventTime()
		if !ok {
			break
		}
		s.RunUntil(next)
		if c.inflight > c.window() {
			t.Fatalf("inflight %d exceeds window %d", c.inflight, c.window())
		}
		if c.sndBuf < 0 || c.inflight < 0 {
			t.Fatalf("negative buffer state: buf=%d inflight=%d", c.sndBuf, c.inflight)
		}
	}
	if !c.Drained() {
		t.Fatal("not drained")
	}
}

// TestFSCacheAccountingProperty: after any pattern of writes, the cache
// occupancy equals the page count times the page size and never exceeds
// capacity + one file's dirty backlog.
func TestFSCacheAccountingProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		if len(ops) > 48 {
			return true
		}
		s := sim.New()
		d := &fakeDisk{s: s, latency: 100 * sim.Microsecond, bps: 600e6}
		k := NewKernel(KernelConfig{Sim: s, Disk: d, CacheBytes: 1 << 20})
		m := cost.NewMeter("w")
		for i, op := range ops {
			off := int64(op%2048) * 512
			n := int64(op%64)*512 + 512
			if op%3 == 0 {
				m.DiskRead("f", off, n)
			} else {
				m.DiskWrite("f", off, n)
			}
			if i%7 == 6 {
				m.DiskSync("f")
			}
		}
		m.DiskSync("f")
		k.SpawnG("w", m.Profile().Iter())
		e := newExecutor(s, k)
		e.start()
		s.Run()
		if !e.done {
			return false
		}
		// All dirty data flushed by the final sync.
		if k.FS.DirtyBytes() != 0 {
			return false
		}
		// Occupancy is page-aligned and non-negative.
		cb := k.FS.CachedBytes()
		return cb >= 0 && cb%PageSize == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFSWriteReadBackConsistencySizes: file sizes reflect the furthest
// write for arbitrary patterns.
func TestFSWriteReadBackConsistencySizes(t *testing.T) {
	f := func(writes []uint16) bool {
		if len(writes) == 0 || len(writes) > 30 {
			return true
		}
		s := sim.New()
		k, _ := newKernelWithDisk(s)
		m := cost.NewMeter("w")
		var maxEnd int64
		for _, w := range writes {
			off := int64(w) * 100
			n := int64(w%5)*1000 + 1
			m.DiskWrite("f", off, n)
			if off+n > maxEnd {
				maxEnd = off + n
			}
		}
		k.SpawnG("w", m.Profile().Iter())
		e := newExecutor(s, k)
		e.start()
		s.Run()
		return k.FS.FileSize("f") == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelInterleavesIOAndCompute: two guest threads, one I/O-bound and
// one compute-bound, must overlap — the compute thread runs while the
// other waits on the disk.
func TestKernelInterleavesIOAndCompute(t *testing.T) {
	s := sim.New()
	d := &fakeDisk{s: s, latency: 20 * sim.Millisecond, bps: 60e6}
	k := NewKernel(KernelConfig{Sim: s, Disk: d})

	io := cost.NewMeter("io")
	for i := int64(0); i < 10; i++ {
		io.DiskWrite("f", i<<20, 64<<10)
		io.DiskSync("f")
	}
	k.SpawnG("io", io.Profile().Iter())

	cpu := cost.NewMeter("cpu")
	cpu.Ops(cost.Counts{IntOps: 2.4e8}) // 100 ms of compute
	var cpuDone sim.Time
	g := k.SpawnG("cpu", cpu.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	for !g.Finished() {
		next, ok := s.NextEventTime()
		if !ok {
			break
		}
		s.RunUntil(next)
	}
	cpuDone = s.Now()
	s.Run()
	ioDone := s.Now()
	// 10 syncs × ≥20 ms disk latency serialize to ≥200 ms; the compute
	// thread must not be delayed anywhere near that.
	if ioDone < 200*sim.Millisecond {
		t.Fatalf("io finished too fast: %v", ioDone)
	}
	if cpuDone > 150*sim.Millisecond {
		t.Fatalf("compute thread blocked behind io: done at %v", cpuDone)
	}
}

// TestSliceCarrySplitsExactly: a compute step larger than the timeslice
// retires the exact cycle total across splits.
func TestSliceCarrySplitsExactly(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	total := 3.7 * timesliceCycle
	k.SpawnG("big", (&cost.Profile{Name: "b", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: total, Mix: cost.Mix{FP: 1}},
	}}).Iter())
	k.SpawnG("peer", (&cost.Profile{Name: "p", Steps: []cost.Step{
		{Kind: cost.StepCompute, Cycles: total, Mix: cost.Mix{Int: 1}},
	}}).Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("kernel did not finish")
	}
	// Executor cycles = guest work + kernel overhead; guest work alone is
	// 2×total, and overhead must be positive but small.
	overhead := e.cycles - 2*total
	if overhead <= 0 {
		t.Fatalf("cycles %v below guest work %v", e.cycles, 2*total)
	}
	if overhead > 0.02*2*total {
		t.Fatalf("slice-split overhead %.0f cycles is > 2%%", overhead)
	}
}
