package guestos

import (
	"fmt"

	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// TCP/UDP kernel-path costs, in kernel-class operations per event.
const (
	tcpTxOps  = 2200 // segmentation, checksum, qdisc, driver doorbell
	tcpAckOps = 900  // ACK processing, window update, wake writer
	udpTxOps  = 1500
	udpRxOps  = 1200

	// defaultRcvWnd is the peer's advertised receive window; 64 KB is the
	// classic un-scaled maximum and matches 2008-era defaults.
	defaultRcvWnd = 64 << 10
	// defaultSndBuf is the local socket send buffer.
	defaultSndBuf = 64 << 10
	// initialCwnd per RFC 3390-era Linux: ~2 segments.
	initialCwnd = 2 * hw.MSS
	// peerProcDelay is the remote station's per-segment processing time
	// (an unloaded native Linux box running iperf -s).
	peerProcDelay = 20 * sim.Microsecond
	// delayedAckTimeout bounds how long the peer withholds an ACK for a
	// lone segment.
	delayedAckTimeout = 5 * sim.Millisecond
)

// NetStack is the guest's network layer.
type NetStack struct {
	kernel *Kernel
	dev    NetDevice
	tcp    map[int]*TCPConn
	udp    map[int]*UDPSocket
}

func newNetStack(k *Kernel, dev NetDevice) *NetStack {
	return &NetStack{kernel: k, dev: dev, tcp: make(map[int]*TCPConn), udp: make(map[int]*UDPSocket)}
}

func (ns *NetStack) device() NetDevice {
	if ns.dev == nil {
		panic("guestos: network operation with no NIC attached")
	}
	return ns.dev
}

// Dial creates TCP connection id to a fresh remote iperf-style sink.
func (ns *NetStack) Dial(id int) *TCPConn {
	if _, dup := ns.tcp[id]; dup {
		panic(fmt.Sprintf("guestos: duplicate TCP conn %d", id))
	}
	c := &TCPConn{
		stack:    ns,
		id:       id,
		sndCap:   defaultSndBuf,
		rwnd:     defaultRcvWnd,
		cwnd:     initialCwnd,
		ssthresh: defaultRcvWnd,
	}
	c.peer = &tcpPeer{conn: c}
	ns.tcp[id] = c
	return c
}

// Conn returns TCP connection id, or nil.
func (ns *NetStack) Conn(id int) *TCPConn { return ns.tcp[id] }

// send implements the StepNetSend path for guest threads: TCP when the
// id names a connection, a non-blocking datagram when it names a UDP
// socket (the iperf -u path).
func (ns *NetStack) send(g *GThread, id int, n int64) (blocked bool) {
	if c := ns.tcp[id]; c != nil {
		return c.appSend(g, n)
	}
	if u := ns.udp[id]; u != nil {
		for n > 0 {
			d := n
			if d > hw.MTU-8 {
				d = hw.MTU - 8
			}
			u.SendTo(Datagram{Bytes: d})
			n -= d
		}
		return false
	}
	panic(fmt.Sprintf("guestos: send on unknown conn %d", id))
}

// recv implements StepNetRecv. Only UDP sockets deliver inbound payload in
// this model (the TCP experiments are one-directional sends).
func (ns *NetStack) recv(g *GThread, id int, n int64) (blocked bool) {
	u := ns.udp[id]
	if u == nil {
		panic(fmt.Sprintf("guestos: recv on unknown udp socket %d", id))
	}
	return u.appRecv(g, n)
}

// TCPConn is a sender-side TCP connection to a remote sink. It models the
// pieces that set iperf throughput on a clean LAN — windowing, slow start,
// delayed ACKs, segmentation — and omits loss recovery (a switched
// full-duplex LAN with a 64 KB window cannot overrun the model's queues).
type TCPConn struct {
	stack *NetStack
	id    int
	peer  *tcpPeer

	sndCap int64 // socket buffer capacity
	sndBuf int64 // bytes queued, not yet segmented

	inflight int64 // bytes sent, not yet acked
	cwnd     int64
	ssthresh int64
	rwnd     int64

	writer     *GThread // blocked writer, if any
	writerWant int64    // bytes it still needs to enqueue

	// Stats / invariant inputs
	Queued   int64 // total bytes accepted from the app
	Acked    int64 // total bytes acked by the peer
	SegsSent uint64
	AcksRcvd uint64
}

// window is the current transmit limit.
func (c *TCPConn) window() int64 {
	if c.cwnd < c.rwnd {
		return c.cwnd
	}
	return c.rwnd
}

// appSend enqueues n bytes from the application, returning true if the
// thread blocked on buffer space.
func (c *TCPConn) appSend(g *GThread, n int64) (blocked bool) {
	if n <= 0 {
		return false
	}
	take := c.sndCap - c.sndBuf
	if take > n {
		take = n
	}
	c.sndBuf += take
	c.Queued += take
	n -= take
	c.trySend()
	if n > 0 {
		if c.writer != nil {
			panic("guestos: second writer on TCP conn")
		}
		c.writer = g
		c.writerWant = n
		return true
	}
	return false
}

// trySend emits segments while the window and buffer allow.
func (c *TCPConn) trySend() {
	for c.sndBuf > 0 && c.inflight+hw.MSS <= c.window() {
		seg := int64(hw.MSS)
		if c.sndBuf < seg {
			seg = c.sndBuf
		}
		c.sndBuf -= seg
		c.inflight += seg
		c.SegsSent++
		c.stack.kernel.charge(tcpTxOps)
		segBytes := seg
		c.stack.device().SendSegment(segBytes+hw.TCPHeaderBytes, func() {
			c.peer.onData(segBytes)
		})
		c.refillFromWriter()
	}
}

// refillFromWriter moves bytes from a blocked writer into freed buffer
// space, waking the writer once fully drained.
func (c *TCPConn) refillFromWriter() {
	if c.writer == nil {
		return
	}
	space := c.sndCap - c.sndBuf
	if space <= 0 {
		return
	}
	take := space
	if take > c.writerWant {
		take = c.writerWant
	}
	c.sndBuf += take
	c.Queued += take
	c.writerWant -= take
	if c.writerWant == 0 {
		g := c.writer
		c.writer = nil
		c.stack.kernel.makeRunnable(g)
		c.stack.kernel.interruptEntry()
	}
}

// onAck processes a cumulative ACK covering bytes.
func (c *TCPConn) onAck(bytes int64) {
	if bytes > c.inflight {
		panic(fmt.Sprintf("guestos: ack of %d exceeds inflight %d", bytes, c.inflight))
	}
	c.inflight -= bytes
	c.Acked += bytes
	c.AcksRcvd++
	c.stack.kernel.charge(tcpAckOps)
	// Window growth: exponential below ssthresh, ~1 MSS/RTT above.
	if c.cwnd < c.ssthresh {
		c.cwnd += bytes
	} else {
		c.cwnd += int64(float64(hw.MSS) * float64(bytes) / float64(c.cwnd))
	}
	if c.cwnd > c.rwnd {
		c.cwnd = c.rwnd
	}
	c.trySend()
	c.refillFromWriter()
}

// Drained reports whether every byte accepted from the app has been acked.
func (c *TCPConn) Drained() bool {
	return c.sndBuf == 0 && c.inflight == 0 && c.writer == nil
}

// tcpPeer is the remote iperf server: it sinks data and generates delayed
// ACKs (every second segment, or after a short timeout for a lone one).
type tcpPeer struct {
	conn      *TCPConn
	unacked   int64
	pending   int // segments since last ACK
	delayEv   *sim.Event
	BytesRcvd int64
}

func (p *tcpPeer) onData(bytes int64) {
	p.BytesRcvd += bytes
	p.unacked += bytes
	p.pending++
	if p.pending >= 2 {
		p.sendAck()
		return
	}
	if p.delayEv == nil {
		k := p.conn.stack.kernel
		p.delayEv = k.Sim.After(delayedAckTimeout, "delack", func() {
			p.delayEv = nil
			if p.unacked > 0 {
				p.sendAck()
			}
		})
	}
}

func (p *tcpPeer) sendAck() {
	if p.delayEv != nil {
		p.delayEv.Cancel()
		p.delayEv = nil
	}
	bytes := p.unacked
	p.unacked = 0
	p.pending = 0
	k := p.conn.stack.kernel
	// The remote host spends a little time before the ACK hits its wire.
	k.Sim.After(peerProcDelay, "peer-ack", func() {
		p.conn.stack.device().ReturnSegment(hw.TCPHeaderBytes, func() {
			p.conn.onAck(bytes)
		})
	})
}

// Datagram is a UDP message with an opaque payload for protocol state
// (e.g. the timestamps of the time-sync protocol).
type Datagram struct {
	Bytes int64
	Data  any
}

// UDPSocket is a connectionless socket paired with a remote responder.
type UDPSocket struct {
	stack *NetStack
	id    int

	// Responder, if set, models the remote service: it receives each
	// outbound datagram and returns the reply to be delivered back.
	Responder func(Datagram) Datagram

	rcvq   []Datagram
	waiter *GThread

	// Received logs every delivered datagram in arrival order, so
	// experiment harnesses can inspect protocol payloads after the run.
	Received []Datagram

	// OnDeliver, if set, observes each datagram at its true arrival
	// instant (protocol clients need arrival-time stamps, not the time
	// the harness later drains the queue).
	OnDeliver func(Datagram)

	// Sink, if set, models a measuring remote endpoint (iperf -u
	// server): outbound datagrams that survive the path are counted
	// there instead of generating replies.
	Sink func(Datagram)
	// SinkBytes accumulates payload delivered to the Sink.
	SinkBytes int64

	Sent, Rcvd uint64
}

// OpenUDP creates UDP socket id.
func (ns *NetStack) OpenUDP(id int) *UDPSocket {
	if _, dup := ns.udp[id]; dup {
		panic(fmt.Sprintf("guestos: duplicate UDP socket %d", id))
	}
	u := &UDPSocket{stack: ns, id: id}
	ns.udp[id] = u
	return u
}

// UDP returns socket id, or nil.
func (ns *NetStack) UDP(id int) *UDPSocket { return ns.udp[id] }

// SendTo emits one datagram toward the responder. Non-blocking.
func (u *UDPSocket) SendTo(d Datagram) {
	if d.Bytes <= 0 || d.Bytes > hw.MTU-8 {
		panic(fmt.Sprintf("guestos: UDP payload %d out of range", d.Bytes))
	}
	u.Sent++
	u.stack.kernel.charge(udpTxOps)
	u.stack.device().SendSegment(d.Bytes+hw.UDPHeaderBytes, func() {
		if u.Sink != nil {
			u.SinkBytes += d.Bytes
			u.Sink(d)
			return
		}
		if u.Responder == nil {
			return // silently dropped at a closed remote port
		}
		reply := u.Responder(d)
		k := u.stack.kernel
		k.Sim.After(peerProcDelay, "udp-reply", func() {
			u.stack.device().ReturnSegment(reply.Bytes+hw.UDPHeaderBytes, func() {
				u.deliver(reply)
			})
		})
	})
}

func (u *UDPSocket) deliver(d Datagram) {
	u.Rcvd++
	u.stack.kernel.charge(udpRxOps)
	u.Received = append(u.Received, d)
	if u.OnDeliver != nil {
		u.OnDeliver(d)
	}
	if u.waiter != nil {
		// The datagram satisfies the blocked receiver directly.
		g := u.waiter
		u.waiter = nil
		u.stack.kernel.makeRunnable(g)
		u.stack.kernel.interruptEntry()
		return
	}
	u.rcvq = append(u.rcvq, d)
}

// appRecv blocks the guest thread until a datagram is available.
func (u *UDPSocket) appRecv(g *GThread, _ int64) (blocked bool) {
	if len(u.rcvq) > 0 {
		u.rcvq = u.rcvq[1:]
		return false
	}
	if u.waiter != nil {
		panic("guestos: second waiter on UDP socket")
	}
	u.waiter = g
	return true
}

// Pop removes and returns the oldest queued datagram, for experiment
// harnesses that inspect protocol payloads outside the step stream.
func (u *UDPSocket) Pop() (Datagram, bool) {
	if len(u.rcvq) == 0 {
		return Datagram{}, false
	}
	d := u.rcvq[0]
	u.rcvq = u.rcvq[1:]
	return d, true
}
