package guestos

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// Guest kernel overhead charges, in kernel-class operations. They model the
// privileged work that full virtualization amplifies: context switches and
// interrupt delivery trap into the VMM on every occurrence.
const (
	ctxSwitchOps   = 4000 // save/restore, runqueue, TLB effects
	interruptOps   = 3000 // IRQ entry, handler body, wake-up, iret
	idleEntryOps   = 800  // schedule() into the idle loop, hlt
	timesliceCycle = 24e6 // 10 ms guest round-robin slice at 2.4 GHz
)

// BlockDevice is the disk the guest kernel's filesystem sits on: either
// raw hardware (native baseline) or a VMM's emulated drive.
type BlockDevice interface {
	// ReadBlocks fetches bytes at the device offset; done fires on
	// completion (an interrupt, from the guest's point of view).
	ReadBlocks(off, bytes int64, done func())
	// WriteBlocks persists bytes at the device offset.
	WriteBlocks(off, bytes int64, done func())
}

// NetDevice is the guest's NIC: either effectively the physical adapter
// (native) or an emulated/NATed virtual device.
type NetDevice interface {
	// SendSegment pushes an IP datagram toward the LAN; deliverToPeer
	// fires at the remote station once the frame traverses the device
	// path and the physical link.
	SendSegment(ipBytes int64, deliverToPeer func())
	// ReturnSegment carries a datagram from the remote station back to
	// this guest; deliverToGuest fires when it reaches the guest stack.
	ReturnSegment(ipBytes int64, deliverToGuest func())
}

// ClockSource supplies the guest's notion of time. Under a VMM this drifts
// when the vCPU is descheduled (ticks are lost); natively it is exact.
type ClockSource interface {
	GuestNow() sim.Time
}

// ExactClock is a ClockSource with no drift, for native execution.
type ExactClock struct{ Sim *sim.Simulator }

// GuestNow returns true simulation time.
func (c ExactClock) GuestNow() sim.Time { return c.Sim.Now() }

type gstate int

const (
	gRunnable gstate = iota
	gBlocked
	gDone
)

// GThread is a guest-level thread.
type GThread struct {
	Name  string
	prog  cost.Program
	state gstate

	// carry is the unexecuted remainder of a compute step that was split
	// at a timeslice boundary.
	carry cost.Step

	kernel *Kernel
}

// Finished reports whether the guest thread's program has ended.
func (g *GThread) Finished() bool { return g.state == gDone }

func (g *GThread) String() string {
	return fmt.Sprintf("gthread{%s state=%d}", g.Name, int(g.state))
}

// Kernel is the guest operating system instance.
type Kernel struct {
	Sim   *sim.Simulator
	FS    *FileSystem
	Net   *NetStack
	Clock ClockSource

	threads []*GThread
	runq    []*GThread
	cur     *GThread

	sliceLeft float64 // cycles remaining in cur's timeslice

	pendingKernel float64 // kernel-class ops to emit before the next step

	// wake notifies the hosting layer that an interrupt arrived while the
	// vCPU may be halted.
	wake func()

	// Stats
	CtxSwitches uint64
	Interrupts  uint64
}

// KernelConfig wires the kernel's devices.
type KernelConfig struct {
	Sim   *sim.Simulator
	Disk  BlockDevice // nil if the workload does no disk I/O
	NIC   NetDevice   // nil if the workload does no networking
	Clock ClockSource // defaults to ExactClock
	// CacheBytes is the page-cache capacity; defaults to 2/3 of the
	// paper's 300 MB guest RAM.
	CacheBytes int64
}

// NewKernel boots a guest kernel.
func NewKernel(cfg KernelConfig) *Kernel {
	if cfg.Sim == nil {
		panic("guestos: KernelConfig.Sim is required")
	}
	k := &Kernel{Sim: cfg.Sim}
	if cfg.Clock != nil {
		k.Clock = cfg.Clock
	} else {
		k.Clock = ExactClock{Sim: cfg.Sim}
	}
	cache := cfg.CacheBytes
	if cache == 0 {
		cache = 200 << 20
	}
	k.FS = newFileSystem(k, cfg.Disk, cache)
	k.Net = newNetStack(k, cfg.NIC)
	return k
}

// SetWake installs the interrupt notification used by the hosting layer to
// learn that a halted vCPU must resume. The VMM points this at the host
// scheduler's Unblock; pure-guest tests may leave it unset.
func (k *Kernel) SetWake(fn func()) { k.wake = fn }

// SpawnG adds a guest thread executing prog. Spawning into an idle (halted)
// guest raises a wake so the hosting layer resumes the vCPU.
func (k *Kernel) SpawnG(name string, prog cost.Program) *GThread {
	g := &GThread{Name: name, prog: prog, kernel: k}
	k.threads = append(k.threads, g)
	k.runq = append(k.runq, g)
	if k.wake != nil {
		k.wake()
	}
	return g
}

// AllFinished reports whether every guest thread has exited.
func (k *Kernel) AllFinished() bool {
	for _, g := range k.threads {
		if g.state != gDone {
			return false
		}
	}
	return len(k.threads) > 0
}

// GuestNow exposes the guest's clock (drifting under a VMM).
func (k *Kernel) GuestNow() sim.Time { return k.Clock.GuestNow() }

// charge queues kernel-class operations to be emitted as compute before
// the next program step; this is how FS/net/scheduler overhead reaches the
// vCPU stream.
func (k *Kernel) charge(ops float64) { k.pendingKernel += ops }

// interruptEntry accounts for an interrupt (device completion) and pokes
// the hosting layer in case the vCPU is halted.
func (k *Kernel) interruptEntry() {
	k.Interrupts++
	k.charge(interruptOps)
	if k.wake != nil {
		k.wake()
	}
}

// makeRunnable transitions a blocked guest thread back onto the run queue.
func (k *Kernel) makeRunnable(g *GThread) {
	if g.state != gBlocked {
		panic(fmt.Sprintf("guestos: makeRunnable of %v", g))
	}
	g.state = gRunnable
	k.runq = append(k.runq, g)
}

// blockCur parks the current thread; the caller has arranged a completion
// that will call makeRunnable.
func (k *Kernel) blockCur() {
	k.cur.state = gBlocked
	k.cur = nil
}

// Next implements cost.Program, producing the vCPU instruction stream.
func (k *Kernel) Next() (cost.Step, bool) {
	for spins := 0; ; spins++ {
		if spins > 1<<20 {
			panic("guestos: kernel made no progress")
		}
		// Deliver queued kernel overhead first.
		if k.pendingKernel > 0 {
			ops := k.pendingKernel
			k.pendingKernel = 0
			return cost.Step{
				Kind:   cost.StepCompute,
				Cycles: ops * cost.CPIKernel,
				Mix:    cost.Mix{Kernel: 1},
			}, true
		}
		// Pick a thread if none is current.
		if k.cur == nil {
			if len(k.runq) == 0 {
				if k.AllFinished() {
					return cost.Step{}, false // guest workload complete
				}
				// All threads blocked: idle loop, halt until interrupt.
				k.charge(idleEntryOps)
				return cost.Step{Kind: cost.StepHalt}, true
			}
			k.cur = k.runq[0]
			k.runq = k.runq[:copy(k.runq, k.runq[1:])]
			k.sliceLeft = timesliceCycle
			k.CtxSwitches++
			k.charge(ctxSwitchOps)
			continue
		}
		// Resume a split compute step, if any.
		step := k.cur.carry
		k.cur.carry = cost.Step{}
		if step.Kind != cost.StepCompute || step.Cycles <= 0 {
			var ok bool
			step, ok = k.cur.prog.Next()
			if !ok {
				k.cur.state = gDone
				k.cur = nil
				continue
			}
		}
		if emitted, ok := k.handleStep(step); ok {
			return emitted, true
		}
	}
}

// handleStep services one guest-thread step. It returns the step to emit on
// the vCPU stream, or ok=false when the step was absorbed (e.g. an
// asynchronous FS operation that blocked the thread).
func (k *Kernel) handleStep(step cost.Step) (cost.Step, bool) {
	switch step.Kind {
	case cost.StepCompute:
		if step.Cycles <= 0 {
			return cost.Step{}, false
		}
		if len(k.runq) == 0 {
			// Sole runnable thread: no reason to slice; renew in place.
			if step.Cycles >= k.sliceLeft {
				k.sliceLeft = timesliceCycle
			} else {
				k.sliceLeft -= step.Cycles
			}
			return step, true
		}
		if step.Cycles > k.sliceLeft {
			// Split at the timeslice boundary and rotate.
			rest := step
			rest.Cycles = step.Cycles - k.sliceLeft
			k.cur.carry = rest
			out := step
			out.Cycles = k.sliceLeft
			cur := k.cur
			cur.state = gRunnable
			k.runq = append(k.runq, cur)
			k.cur = nil
			return out, true
		}
		k.sliceLeft -= step.Cycles
		return step, true

	case cost.StepDiskRead:
		if blocked := k.FS.read(k.cur, step.File, step.Offset, step.Bytes); blocked {
			k.blockCur()
		}
		return cost.Step{}, false

	case cost.StepDiskWrite:
		if blocked := k.FS.write(k.cur, step.File, step.Offset, step.Bytes); blocked {
			k.blockCur()
		}
		return cost.Step{}, false

	case cost.StepDiskSync:
		if blocked := k.FS.fsync(k.cur, step.File); blocked {
			k.blockCur()
		}
		return cost.Step{}, false

	case cost.StepNetSend:
		if blocked := k.Net.send(k.cur, step.Conn, step.Bytes); blocked {
			k.blockCur()
		}
		return cost.Step{}, false

	case cost.StepNetRecv:
		if blocked := k.Net.recv(k.cur, step.Conn, step.Bytes); blocked {
			k.blockCur()
		}
		return cost.Step{}, false

	case cost.StepSleep:
		g := k.cur
		k.blockCur()
		k.Sim.After(step.Dur, "guest-sleep", func() {
			k.makeRunnable(g)
			k.interruptEntry() // timer interrupt
		})
		return cost.Step{}, false

	case cost.StepClock:
		// The cycle cost was charged at capture; the (possibly drifted)
		// value is observable via GuestNow. Nothing to emit.
		return cost.Step{}, false

	case cost.StepDropCaches:
		k.FS.DropCaches()
		k.charge(float64(4 * ctxSwitchOps)) // page-table walks, LRU teardown
		return cost.Step{}, false

	default:
		panic(fmt.Sprintf("guestos: unsupported guest step %v", step.Kind))
	}
}
