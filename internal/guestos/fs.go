package guestos

import (
	"fmt"
	"sort"
)

// Filesystem cost constants, in kernel-class operations.
const (
	// pageCopyOps is the cost of moving one 4 KB page between user space
	// and the page cache (memcpy plus radix-tree lookup and locking).
	pageCopyOps = 900
	// pageFaultOps covers allocating and inserting a fresh cache page.
	pageFaultOps = 500
	// PageSize is the guest page/block granularity.
	PageSize = 4096
	// writebackHighWater triggers asynchronous writeback of a file's dirty
	// pages (a coarse stand-in for pdflush thresholds).
	writebackHighWater = 8 << 20
)

// page tracks residency of one file page in the cache.
type page struct {
	file  *gfile
	index int64 // page number within the file
	dirty bool
	// lruSeq implements an exact LRU without a linked list: larger = more
	// recently touched.
	lruSeq uint64
}

type gfile struct {
	name    string
	size    int64
	diskOff int64 // contiguous on-device extent start
	pages   map[int64]*page
}

// FileSystem is a page-cached filesystem over a BlockDevice. Files occupy
// contiguous device extents (allocation is bump-pointer), which makes the
// sequential-vs-random distinction of the underlying disk meaningful.
type FileSystem struct {
	kernel *Kernel
	dev    BlockDevice

	capacity   int64 // max cached bytes
	cached     int64
	files      map[string]*gfile
	nextExtent int64
	lruClock   uint64

	// Stats
	Hits, Misses   uint64
	EvictedPages   uint64
	WritebackPages uint64
}

func newFileSystem(k *Kernel, dev BlockDevice, capacity int64) *FileSystem {
	return &FileSystem{
		kernel:   k,
		dev:      dev,
		capacity: capacity,
		files:    make(map[string]*gfile),
	}
}

// lookup returns the file, creating it on first reference (the guest
// benchmarks create files by writing them).
func (fs *FileSystem) lookup(name string) *gfile {
	f, ok := fs.files[name]
	if !ok {
		f = &gfile{name: name, diskOff: fs.nextExtent, pages: make(map[int64]*page)}
		// Reserve a generous extent so growing files stay contiguous.
		fs.nextExtent += 64 << 20
		fs.files[name] = f
	}
	return f
}

// FileSize reports the current size of a file (0 if absent).
func (fs *FileSystem) FileSize(name string) int64 {
	if f, ok := fs.files[name]; ok {
		return f.size
	}
	return 0
}

// CachedBytes reports current page-cache occupancy.
func (fs *FileSystem) CachedBytes() int64 { return fs.cached }

func (fs *FileSystem) touch(p *page) {
	fs.lruClock++
	p.lruSeq = fs.lruClock
}

// insert adds a page to the cache, evicting clean LRU pages if needed.
func (fs *FileSystem) insert(f *gfile, idx int64, dirty bool) *page {
	if p, ok := f.pages[idx]; ok {
		p.dirty = p.dirty || dirty
		fs.touch(p)
		return p
	}
	fs.evictFor(PageSize)
	p := &page{file: f, index: idx, dirty: dirty}
	f.pages[idx] = p
	fs.cached += PageSize
	fs.touch(p)
	fs.kernel.charge(pageFaultOps)
	return p
}

// evictFor makes room for need bytes by discarding the least recently used
// clean pages. Dirty pages are skipped (writeback reclaims them); if the
// cache is entirely dirty the insert proceeds over capacity, as Linux
// does under writeback pressure.
func (fs *FileSystem) evictFor(need int64) {
	if fs.cached+need <= fs.capacity {
		return
	}
	type cand struct{ p *page }
	var clean []cand
	for _, f := range fs.files {
		for _, p := range f.pages {
			if !p.dirty {
				clean = append(clean, cand{p})
			}
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i].p.lruSeq < clean[j].p.lruSeq })
	for _, c := range clean {
		if fs.cached+need <= fs.capacity {
			return
		}
		delete(c.p.file.pages, c.p.index)
		fs.cached -= PageSize
		fs.EvictedPages++
	}
}

// pageRange returns the page indexes covering [off, off+n).
func pageRange(off, n int64) (first, last int64) {
	return off / PageSize, (off + n - 1) / PageSize
}

// read services a guest read. It returns true if the thread must block on
// device I/O (the FS will make it runnable again upon completion).
func (fs *FileSystem) read(g *GThread, name string, off, n int64) (blocked bool) {
	if n <= 0 {
		return false
	}
	f := fs.lookup(name)
	if off+n > f.size {
		// Reading past EOF extends nothing: short-read the available part.
		n = f.size - off
		if n <= 0 {
			return false
		}
	}
	first, last := pageRange(off, n)
	fs.kernel.charge(float64(last-first+1) * pageCopyOps)

	// Collect contiguous runs of missing pages.
	type extent struct{ fromPage, toPage int64 }
	var missing []extent
	for idx := first; idx <= last; idx++ {
		if p, ok := f.pages[idx]; ok {
			fs.touch(p)
			fs.Hits++
			continue
		}
		fs.Misses++
		if len(missing) > 0 && missing[len(missing)-1].toPage == idx-1 {
			missing[len(missing)-1].toPage = idx
		} else {
			missing = append(missing, extent{idx, idx})
		}
	}
	if len(missing) == 0 {
		return false
	}
	if fs.dev == nil {
		panic(fmt.Sprintf("guestos: read miss on %q with no block device", name))
	}
	outstanding := len(missing)
	for _, e := range missing {
		e := e
		devOff := f.diskOff + e.fromPage*PageSize
		bytes := (e.toPage - e.fromPage + 1) * PageSize
		fs.dev.ReadBlocks(devOff, bytes, func() {
			for idx := e.fromPage; idx <= e.toPage; idx++ {
				fs.insert(f, idx, false)
			}
			outstanding--
			if outstanding == 0 {
				fs.kernel.makeRunnable(g)
				fs.kernel.interruptEntry()
			}
		})
	}
	return true
}

// write services a guest write: data lands in the cache and is flushed
// asynchronously (or by fsync). It returns true if the thread must block —
// only when the write triggers synchronous writeback throttling.
func (fs *FileSystem) write(g *GThread, name string, off, n int64) (blocked bool) {
	if n <= 0 {
		return false
	}
	f := fs.lookup(name)
	first, last := pageRange(off, n)
	fs.kernel.charge(float64(last-first+1) * pageCopyOps)
	for idx := first; idx <= last; idx++ {
		fs.insert(f, idx, true)
	}
	if off+n > f.size {
		f.size = off + n
	}
	if fs.dirtyBytes(f) >= writebackHighWater {
		fs.flushAsync(f)
	}
	return false
}

func (fs *FileSystem) dirtyBytes(f *gfile) int64 {
	var d int64
	for _, p := range f.pages {
		if p.dirty {
			d += PageSize
		}
	}
	return d
}

// dirtyExtents groups a file's dirty pages into contiguous runs and marks
// them clean (the caller is committing them to the device).
func (fs *FileSystem) dirtyExtents(f *gfile) [][2]int64 {
	var idxs []int64
	for _, p := range f.pages {
		if p.dirty {
			idxs = append(idxs, p.index)
			p.dirty = false
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var runs [][2]int64
	for _, idx := range idxs {
		if len(runs) > 0 && runs[len(runs)-1][1] == idx-1 {
			runs[len(runs)-1][1] = idx
		} else {
			runs = append(runs, [2]int64{idx, idx})
		}
	}
	return runs
}

// flushAsync issues writeback without blocking anyone.
func (fs *FileSystem) flushAsync(f *gfile) {
	if fs.dev == nil {
		return
	}
	for _, run := range fs.dirtyExtents(f) {
		bytes := (run[1] - run[0] + 1) * PageSize
		fs.WritebackPages += uint64(bytes / PageSize)
		fs.dev.WriteBlocks(f.diskOff+run[0]*PageSize, bytes, func() {
			fs.kernel.interruptEntry()
		})
	}
}

// fsync flushes a file's dirty pages and blocks the thread until the
// device acknowledges them all.
func (fs *FileSystem) fsync(g *GThread, name string) (blocked bool) {
	f, ok := fs.files[name]
	if !ok || fs.dev == nil {
		return false
	}
	runs := fs.dirtyExtents(f)
	if len(runs) == 0 {
		return false
	}
	outstanding := len(runs)
	for _, run := range runs {
		bytes := (run[1] - run[0] + 1) * PageSize
		fs.WritebackPages += uint64(bytes / PageSize)
		fs.dev.WriteBlocks(f.diskOff+run[0]*PageSize, bytes, func() {
			outstanding--
			if outstanding == 0 {
				fs.kernel.makeRunnable(g)
				fs.kernel.interruptEntry()
			}
		})
	}
	return true
}

// DropCaches discards all clean cached pages, the guest-side equivalent of
// `echo 3 > /proc/sys/vm/drop_caches` that I/O benchmarks use to defeat
// caching between the write and read phases. Dirty pages are retained; call
// fsync first for a full drop.
func (fs *FileSystem) DropCaches() {
	for _, f := range fs.files {
		for idx, p := range f.pages {
			if !p.dirty {
				delete(f.pages, idx)
				fs.cached -= PageSize
			}
		}
	}
}

// DirtyBytes reports the total dirty page bytes across all files.
func (fs *FileSystem) DirtyBytes() int64 {
	var d int64
	for _, f := range fs.files {
		d += fs.dirtyBytes(f)
	}
	return d
}
