package guestos

import (
	"math"
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

// executor runs a Kernel's vCPU stream directly against the simulator at
// native speed — the "bare metal" harness used before the VMM exists.
type executor struct {
	s      *sim.Simulator
	k      *Kernel
	freq   float64
	halted bool
	done   bool

	cycles float64 // compute cycles executed
}

func newExecutor(s *sim.Simulator, k *Kernel) *executor {
	e := &executor{s: s, k: k, freq: 2.4e9}
	k.SetWake(func() {
		if e.halted {
			e.halted = false
			e.s.After(0, "vcpu-wake", e.step)
		}
	})
	return e
}

func (e *executor) start() { e.s.After(0, "vcpu-start", e.step) }

func (e *executor) step() {
	for {
		st, ok := e.k.Next()
		if !ok {
			e.done = true
			return
		}
		switch st.Kind {
		case cost.StepCompute:
			e.cycles += st.Cycles
			e.s.After(sim.FromSeconds(st.Cycles/e.freq), "vcpu-compute", e.step)
			return
		case cost.StepHalt:
			e.halted = true
			return
		default:
			panic("kernel emitted raw step " + st.Kind.String())
		}
	}
}

// fakeDisk completes requests after a fixed latency plus transfer time.
type fakeDisk struct {
	s        *sim.Simulator
	latency  sim.Time
	bps      float64
	reads    int
	writes   int
	readByte int64
	writByte int64
}

func (d *fakeDisk) ReadBlocks(off, bytes int64, done func()) {
	d.reads++
	d.readByte += bytes
	d.s.After(d.latency+sim.FromSeconds(float64(bytes)/d.bps), "fake-read", done)
}

func (d *fakeDisk) WriteBlocks(off, bytes int64, done func()) {
	d.writes++
	d.writByte += bytes
	d.s.After(d.latency+sim.FromSeconds(float64(bytes)/d.bps), "fake-write", done)
}

// nativeNIC bridges the guest stack straight onto hardware links, the
// native-execution topology.
type nativeNIC struct{ tx, rx *hw.Link }

func (n *nativeNIC) SendSegment(ipBytes int64, deliver func())   { n.tx.Transmit(ipBytes, deliver) }
func (n *nativeNIC) ReturnSegment(ipBytes int64, deliver func()) { n.rx.Transmit(ipBytes, deliver) }

func newKernelWithDisk(s *sim.Simulator) (*Kernel, *fakeDisk) {
	d := &fakeDisk{s: s, latency: 5 * sim.Millisecond, bps: 60e6}
	k := NewKernel(KernelConfig{Sim: s, Disk: d})
	return k, d
}

func computeSteps(cycles float64, mix cost.Mix) *cost.Profile {
	return &cost.Profile{Name: "c", Steps: []cost.Step{{Kind: cost.StepCompute, Cycles: cycles, Mix: mix}}}
}

func TestKernelRunsComputeToCompletion(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	k.SpawnG("w", computeSteps(2.4e9, cost.Mix{Int: 1}).Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("kernel never finished")
	}
	// 1 s of work plus small kernel overhead.
	got := s.Now().Seconds()
	if got < 1.0 || got > 1.001 {
		t.Fatalf("wall = %v, want ~1s", got)
	}
	if !k.AllFinished() {
		t.Fatal("AllFinished false")
	}
}

func TestKernelTimesliceRotation(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	var g1, g2 *GThread
	g1 = k.SpawnG("a", computeSteps(2.4e8, cost.Mix{Int: 1}).Iter())
	g2 = k.SpawnG("b", computeSteps(2.4e8, cost.Mix{Int: 1}).Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !g1.Finished() || !g2.Finished() {
		t.Fatal("threads unfinished")
	}
	// With 10 ms slices and 100 ms of work each, the kernel must have
	// context-switched many times (≥ 2×(100/10) − slack).
	if k.CtxSwitches < 15 {
		t.Fatalf("ctx switches = %d, want ≥15", k.CtxSwitches)
	}
}

func TestKernelChargesOverhead(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	k.SpawnG("w", computeSteps(1e6, cost.Mix{Int: 1}).Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if e.cycles <= 1e6 {
		t.Fatalf("executed %v cycles, expected scheduler overhead on top of 1e6", e.cycles)
	}
}

func TestGuestSleepHaltsAndWakes(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	m := cost.NewMeter("sleeper")
	m.Int(1000)
	m.Sleep(100 * sim.Millisecond)
	m.Int(1000)
	k.SpawnG("sleeper", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("did not finish")
	}
	if s.Now() < 100*sim.Millisecond {
		t.Fatalf("finished at %v, sleep lost", s.Now())
	}
	if k.Interrupts == 0 {
		t.Fatal("timer interrupt not accounted")
	}
}

func TestFSWriteIsCachedThenFsyncHitsDisk(t *testing.T) {
	s := sim.New()
	k, d := newKernelWithDisk(s)
	m := cost.NewMeter("writer")
	m.DiskWrite("f", 0, 1<<20)
	m.DiskSync("f")
	k.SpawnG("writer", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("did not finish")
	}
	if d.writes == 0 || d.writByte < 1<<20 {
		t.Fatalf("fsync wrote %d bytes in %d ops", d.writByte, d.writes)
	}
	if k.FS.DirtyBytes() != 0 {
		t.Fatalf("dirty after fsync: %d", k.FS.DirtyBytes())
	}
}

func TestFSReadFromCacheNoDisk(t *testing.T) {
	s := sim.New()
	k, d := newKernelWithDisk(s)
	m := cost.NewMeter("rw")
	m.DiskWrite("f", 0, 256<<10)
	m.DiskRead("f", 0, 256<<10) // still cached: no device read
	k.SpawnG("rw", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if d.reads != 0 {
		t.Fatalf("cached read hit the device %d times", d.reads)
	}
	if k.FS.Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestFSDropCachesForcesDeviceRead(t *testing.T) {
	s := sim.New()
	k, d := newKernelWithDisk(s)
	m1 := cost.NewMeter("w")
	m1.DiskWrite("f", 0, 512<<10)
	m1.DiskSync("f")
	k.SpawnG("w", m1.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()

	k.FS.DropCaches()
	if k.FS.CachedBytes() != 0 {
		t.Fatalf("cache not empty after drop: %d", k.FS.CachedBytes())
	}

	m2 := cost.NewMeter("r")
	m2.DiskRead("f", 0, 512<<10)
	k.SpawnG("r", m2.Profile().Iter())
	e2 := newExecutor(s, k)
	e2.start()
	s.Run()
	if d.reads == 0 {
		t.Fatal("read after drop_caches never reached the device")
	}
	if k.FS.Misses == 0 {
		t.Fatal("no cache misses recorded")
	}
}

func TestFSReadPastEOFShortReads(t *testing.T) {
	s := sim.New()
	k, d := newKernelWithDisk(s)
	m := cost.NewMeter("r")
	m.DiskRead("absent", 0, 4096) // empty file: returns immediately
	k.SpawnG("r", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("EOF read wedged the thread")
	}
	if d.reads != 0 {
		t.Fatal("EOF read touched the device")
	}
}

func TestFSEvictionUnderPressure(t *testing.T) {
	s := sim.New()
	d := &fakeDisk{s: s, latency: sim.Millisecond, bps: 600e6}
	k := NewKernel(KernelConfig{Sim: s, Disk: d, CacheBytes: 1 << 20}) // tiny 1 MB cache
	m := cost.NewMeter("w")
	for i := int64(0); i < 4; i++ {
		m.DiskWrite("f", i<<20, 1<<20)
		m.DiskSync("f")
	}
	k.SpawnG("w", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if k.FS.CachedBytes() > 1<<20 {
		t.Fatalf("cache %d exceeds 1 MB capacity after clean evictions", k.FS.CachedBytes())
	}
	if k.FS.EvictedPages == 0 {
		t.Fatal("no evictions under pressure")
	}
}

func TestFSFileSize(t *testing.T) {
	s := sim.New()
	k, _ := newKernelWithDisk(s)
	m := cost.NewMeter("w")
	m.DiskWrite("f", 1<<20, 4096)
	k.SpawnG("w", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if got := k.FS.FileSize("f"); got != 1<<20+4096 {
		t.Fatalf("size = %d", got)
	}
	if k.FS.FileSize("nope") != 0 {
		t.Fatal("absent file has nonzero size")
	}
}

func TestTCPThroughputNearLineRate(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	k.Net.Dial(1)

	const total = 10 << 20 // the paper's 10 MB stream
	m := cost.NewMeter("iperf")
	for sent := int64(0); sent < total; sent += 64 << 10 {
		m.NetSend(1, 64<<10)
	}
	k.SpawnG("iperf", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()

	c := k.Net.Conn(1)
	if !c.Drained() {
		t.Fatalf("connection not drained: buf=%d inflight=%d", c.sndBuf, c.inflight)
	}
	if c.Acked != total {
		t.Fatalf("acked %d of %d", c.Acked, total)
	}
	mbps := float64(total) * 8 / s.Now().Seconds() / 1e6
	if mbps < 90 || mbps > 98 {
		t.Fatalf("native TCP goodput = %.2f Mbps, want ~94-97", mbps)
	}
}

func TestTCPConservation(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	k.Net.Dial(7)
	m := cost.NewMeter("x")
	m.NetSend(7, 333333) // deliberately non-MSS-aligned
	k.SpawnG("x", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	c := k.Net.Conn(7)
	if c.Acked != 333333 || c.peer.BytesRcvd != 333333 {
		t.Fatalf("conservation violated: acked=%d rcvd=%d", c.Acked, c.peer.BytesRcvd)
	}
	if c.SegsSent == 0 || c.AcksRcvd == 0 {
		t.Fatal("no segments/acks recorded")
	}
}

func TestTCPDelayedAckFlushesLoneSegment(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	k.Net.Dial(1)
	m := cost.NewMeter("x")
	m.NetSend(1, 100) // single sub-MSS segment → delayed-ACK path
	k.SpawnG("x", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start()
	s.Run()
	c := k.Net.Conn(1)
	if c.Acked != 100 {
		t.Fatalf("lone segment never acked: %d", c.Acked)
	}
	if s.Now() < delayedAckTimeout {
		t.Fatalf("ack arrived before delack timeout: %v", s.Now())
	}
}

func TestUDPRequestResponse(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	u := k.Net.OpenUDP(5)
	u.Responder = func(d Datagram) Datagram {
		return Datagram{Bytes: 48, Data: "reply-to-" + d.Data.(string)}
	}
	u.SendTo(Datagram{Bytes: 48, Data: "q1"})
	s.Run()
	if len(u.Received) != 1 {
		t.Fatalf("received %d datagrams", len(u.Received))
	}
	if u.Received[0].Data.(string) != "reply-to-q1" {
		t.Fatalf("payload = %v", u.Received[0].Data)
	}
	if d, ok := u.Pop(); !ok || d.Data.(string) != "reply-to-q1" {
		t.Fatal("Pop failed")
	}
	if _, ok := u.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
}

func TestUDPRecvBlocksUntilReply(t *testing.T) {
	s := sim.New()
	nic := &nativeNIC{tx: hw.FastEthernet(s), rx: hw.FastEthernet(s)}
	k := NewKernel(KernelConfig{Sim: s, NIC: nic})
	u := k.Net.OpenUDP(9)
	u.Responder = func(d Datagram) Datagram { return Datagram{Bytes: 48} }

	m := cost.NewMeter("client")
	m.NetSend(9, 48) // TCP send? No: conn 9 is UDP — use direct socket below.
	_ = m

	// Drive via kernel steps: a program that sends then receives.
	prog := cost.NewMeter("c2")
	prog.NetRecv(9, 48)
	prog.Int(1000)
	k.SpawnG("c2", prog.Profile().Iter())
	// Issue the request from outside after 1 ms; the guest blocks on recv.
	s.After(sim.Millisecond, "send-req", func() { u.SendTo(Datagram{Bytes: 48}) })
	e := newExecutor(s, k)
	e.start()
	s.Run()
	if !e.done {
		t.Fatal("receiver never woke")
	}
	if u.Rcvd != 1 {
		t.Fatalf("Rcvd = %d", u.Rcvd)
	}
}

func TestKernelEmitsOnlyComputeAndHalt(t *testing.T) {
	s := sim.New()
	k, _ := newKernelWithDisk(s)
	m := cost.NewMeter("mixed")
	m.Int(1e5)
	m.DiskWrite("f", 0, 64<<10)
	m.DiskSync("f")
	m.DiskRead("f", 0, 64<<10)
	m.Sleep(sim.Millisecond)
	m.FP(1e5)
	k.SpawnG("mixed", m.Profile().Iter())
	e := newExecutor(s, k)
	e.start() // executor panics on any raw step kind
	s.Run()
	if !e.done {
		t.Fatal("did not finish")
	}
}

func TestNetOnKernelWithoutNICPanics(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	k.Net.Dial(1)
	m := cost.NewMeter("x")
	m.NetSend(1, 10)
	k.SpawnG("x", m.Profile().Iter())
	e := newExecutor(s, k)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without NIC")
		}
	}()
	e.start()
	s.Run()
}

func TestGuestDeterminism(t *testing.T) {
	run := func() (sim.Time, float64, uint64) {
		s := sim.New()
		k, _ := newKernelWithDisk(s)
		for i := 0; i < 3; i++ {
			m := cost.NewMeter("w")
			m.Int(1e7)
			m.DiskWrite("f", int64(i)<<20, 1<<19)
			m.DiskSync("f")
			m.DiskRead("f", int64(i)<<20, 1<<19)
			m.Mem(1e6)
			k.SpawnG("w", m.Profile().Iter())
		}
		e := newExecutor(s, k)
		e.start()
		s.Run()
		return s.Now(), e.cycles, k.CtxSwitches
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("guest runs diverged: (%v,%v,%d) vs (%v,%v,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestExactClock(t *testing.T) {
	s := sim.New()
	k := NewKernel(KernelConfig{Sim: s})
	s.RunUntil(5 * sim.Second)
	if k.GuestNow() != 5*sim.Second {
		t.Fatalf("exact clock drifted: %v", k.GuestNow())
	}
}

func TestPageRangeMath(t *testing.T) {
	cases := []struct{ off, n, first, last int64 }{
		{0, 1, 0, 0},
		{0, 4096, 0, 0},
		{0, 4097, 0, 1},
		{4095, 2, 0, 1},
		{8192, 4096, 2, 2},
	}
	for _, c := range cases {
		f, l := pageRange(c.off, c.n)
		if f != c.first || l != c.last {
			t.Errorf("pageRange(%d,%d) = %d,%d want %d,%d", c.off, c.n, f, l, c.first, c.last)
		}
	}
}

func TestGThreadString(t *testing.T) {
	g := &GThread{Name: "x"}
	if g.String() == "" {
		t.Fatal("empty string")
	}
	if math.Abs(1) != 1 { // keep math import honest alongside future checks
		t.Fatal("math broken")
	}
}
