package boinc

import (
	"encoding/json"
	"fmt"

	"vmdg/internal/cost"
)

// WorkUnit describes one Einstein@home-style task.
type WorkUnit struct {
	ID     string
	Seed   uint64
	Chunks int // analysis chunks to complete
	// CheckpointEvery controls how often progress is persisted.
	CheckpointEvery int
}

// DefaultWorkUnit returns a representative task: enough chunks to run for
// minutes of virtual time, checkpointing like the real client (~60 s).
func DefaultWorkUnit(id string, seed uint64) WorkUnit {
	return WorkUnit{ID: id, Seed: seed, Chunks: 4096, CheckpointEvery: 256}
}

// Progress is the client's persistent state — what survives a checkpoint
// and travels inside a VM migration payload.
type Progress struct {
	WorkUnit   WorkUnit
	ChunksDone int
	BestPeak   float64
}

// Marshal serializes progress for a checkpoint payload.
func (p Progress) Marshal() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("boinc: marshal progress: %v", err)) // fields are plain data
	}
	return b
}

// UnmarshalProgress reverses Marshal.
func UnmarshalProgress(data []byte) (Progress, error) {
	var p Progress
	if err := json.Unmarshal(data, &p); err != nil {
		return Progress{}, fmt.Errorf("boinc: unmarshal progress: %w", err)
	}
	return p, nil
}

// chunkProfile caches the captured per-chunk cost (chunks differ only in
// seed; their op counts are statistically identical, so one capture
// per work unit suffices).
func chunkProfile(seed uint64) cost.Counts {
	return EinsteinChunk(seed).Counts
}

// Worker is a cost.Program that performs work units forever (the paper's
// scenario: the BOINC client keeps the virtual CPU at 100%), checkpointing
// progress to the guest filesystem. It is resumable: construct with a
// restored Progress to continue a migrated task.
type Worker struct {
	// State is exported for checkpoint capture; treat as read-only.
	State Progress

	perChunk   cost.Counts
	stage      int // 0: compute next chunk, 1: checkpoint write, 2: fsync
	unitsDone  int
	OnUnitDone func(Progress) // optional notification per completed unit
}

// NewWorker starts (or resumes) a worker on the given progress.
func NewWorker(p Progress) *Worker {
	if p.WorkUnit.Chunks <= 0 {
		panic("boinc: work unit with no chunks")
	}
	return &Worker{State: p, perChunk: chunkProfile(p.WorkUnit.Seed)}
}

// UnitsDone reports completed work units (for throughput accounting).
func (w *Worker) UnitsDone() int { return w.unitsDone }

// checkpointFile is where the client persists progress inside the guest.
const checkpointFile = "boinc-state.xml"

// checkpointBytes approximates the real client's state file size.
const checkpointBytes = 8 << 10

// Next implements cost.Program. The step stream is:
// compute chunk → (periodically: write checkpoint, fsync) → ... → unit
// completes → start the next unit.
func (w *Worker) Next() (cost.Step, bool) {
	switch w.stage {
	case 1:
		w.stage = 2
		return cost.Step{Kind: cost.StepDiskWrite, File: checkpointFile, Offset: 0, Bytes: checkpointBytes}, true
	case 2:
		w.stage = 0
		return cost.Step{Kind: cost.StepDiskSync, File: checkpointFile}, true
	}
	// Compute one chunk.
	w.State.ChunksDone++
	if w.State.ChunksDone >= w.WorkUnitChunks() {
		w.unitsDone++
		if w.OnUnitDone != nil {
			w.OnUnitDone(w.State)
		}
		// Fetch the next unit: new seed, progress reset.
		w.State.WorkUnit.Seed++
		w.State.ChunksDone = 0
	}
	if ce := w.State.WorkUnit.CheckpointEvery; ce > 0 && w.State.ChunksDone%ce == 0 {
		w.stage = 1
	}
	c := w.perChunk
	return cost.Step{Kind: cost.StepCompute, Cycles: c.Cycles(), Mix: c.Mix()}, true
}

// WorkUnitChunks exposes the unit length.
func (w *Worker) WorkUnitChunks() int { return w.State.WorkUnit.Chunks }

// FiniteWorker wraps Worker to stop after completing n work units — the
// shape needed by experiments that measure a bounded task.
type FiniteWorker struct {
	*Worker
	Units int
}

// NewFiniteWorker runs exactly units work units then exits.
func NewFiniteWorker(p Progress, units int) *FiniteWorker {
	return &FiniteWorker{Worker: NewWorker(p), Units: units}
}

// Next implements cost.Program.
func (f *FiniteWorker) Next() (cost.Step, bool) {
	if f.UnitsDone() >= f.Units && f.stage == 0 {
		return cost.Step{}, false
	}
	return f.Worker.Next()
}

// EstimateUnitSeconds predicts how long one work unit takes on an
// unloaded native core at freqHz — useful for sizing experiments.
func EstimateUnitSeconds(wu WorkUnit, freqHz float64) float64 {
	c := chunkProfile(wu.Seed)
	return c.Cycles() * float64(wu.Chunks) / freqHz
}
