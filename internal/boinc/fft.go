package boinc

import (
	"fmt"
	"math"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

// fftSize is the per-chunk transform length (2^12 complex points: a
// 64 KB working set, cache-resident like Einstein@home's hot loops).
const fftSize = 1 << 12

// FFT performs an in-place radix-2 decimation-in-time transform of the
// complex signal (re, im). Length must be a power of two.
func FFT(re, im []float64, ops *cost.Counts) {
	n := len(re)
	if n == 0 || n&(n-1) != 0 || len(im) != n {
		panic(fmt.Sprintf("boinc: FFT length %d/%d not a power of two", len(re), len(im)))
	}
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	if ops != nil {
		ops.IntOps += uint64(4 * n)
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cwr, cwi := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				i, j := start+k, start+k+half
				tr := re[j]*cwr - im[j]*cwi
				ti := re[j]*cwi + im[j]*cwr
				re[j], im[j] = re[i]-tr, im[i]-ti
				re[i], im[i] = re[i]+tr, im[i]+ti
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
			}
			if ops != nil {
				ops.FPOps += uint64(14 * half)
				// The 64 KB working set is L2-resident; a sliver of the
				// butterfly traffic reaches the shared bus.
				ops.MemOps += uint64(half) / 3
			}
		}
	}
}

// InverseFFT inverts FFT (conjugate method, normalized).
func InverseFFT(re, im []float64, ops *cost.Counts) {
	for i := range im {
		im[i] = -im[i]
	}
	FFT(re, im, ops)
	n := float64(len(re))
	for i := range re {
		re[i] /= n
		im[i] = -im[i] / n
	}
	if ops != nil {
		ops.FPOps += uint64(2 * len(re))
	}
}

// ChunkResult is the outcome of one Einstein compute chunk.
type ChunkResult struct {
	PeakBin   int
	PeakPower float64
	Counts    cost.Counts
}

// EinsteinChunk runs one analysis chunk: synthesize a strain series with a
// buried periodic signal plus noise, Hann-window it, transform, and locate
// the strongest spectral line.
func EinsteinChunk(seed uint64) ChunkResult {
	rng := sim.NewRNG(seed)
	var ops cost.Counts
	re := make([]float64, fftSize)
	im := make([]float64, fftSize)
	// Injected signal frequency: a deterministic bin in (fftSize/16, fftSize/2).
	bin := int(rng.Uint64()%uint64(fftSize/2-fftSize/16)) + fftSize/16
	for i := 0; i < fftSize; i++ {
		noise := rng.Normal(0, 0.3)
		sig := math.Sin(2 * math.Pi * float64(bin) * float64(i) / fftSize)
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/(fftSize-1))) // Hann
		re[i] = w * (sig + noise)
	}
	ops.FPOps += uint64(12 * fftSize)
	ops.IntOps += uint64(3 * fftSize)
	ops.MemOps += uint64(fftSize) / 4

	FFT(re, im, &ops)

	best, bestP := 0, 0.0
	for k := 1; k < fftSize/2; k++ {
		p := re[k]*re[k] + im[k]*im[k]
		if p > bestP {
			best, bestP = k, p
		}
	}
	ops.FPOps += uint64(3 * fftSize / 2)
	return ChunkResult{PeakBin: best, PeakPower: bestP, Counts: ops}
}
