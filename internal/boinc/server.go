package boinc

import "sort"

// Project is a BOINC-style project server: it generates work units,
// hands out replicas to volunteers, and validates returned results by
// quorum — the redundancy mechanism public-resource projects use against
// faulty or malicious volunteers (Anderson 2004, cited by the paper as
// the context for VM-based sandboxing).
type Project struct {
	Name string
	// Replication is how many agreeing results a unit needs before its
	// canonical result is accepted (2 is the classic BOINC minimum).
	Replication int

	nextUnit int
	seedBase uint64
	chunks   int

	// assignments[unitID] lists volunteers currently holding a replica.
	assignments map[string][]string
	// unitIdx maps a unit ID back to its mint index (IDs are formatted
	// from the index, but parsing them back would truncate past the
	// padding width).
	unitIdx map[string]int
	// reports[unitID] collects returned peak bins by volunteer.
	reports map[string]map[string]int
	// canonical[unitID] holds the quorum-validated result.
	canonical map[string]int
	// invalid counts reports that disagreed with an established quorum.
	invalid int
}

// NewProject creates a server whose units carry the given chunk count.
func NewProject(name string, replication, chunksPerUnit int, seedBase uint64) *Project {
	if replication < 1 {
		panic("boinc: replication must be ≥ 1")
	}
	if chunksPerUnit <= 0 {
		panic("boinc: chunksPerUnit must be positive")
	}
	return &Project{
		Name:        name,
		Replication: replication,
		seedBase:    seedBase,
		chunks:      chunksPerUnit,
		assignments: map[string][]string{},
		unitIdx:     map[string]int{},
		reports:     map[string]map[string]int{},
		canonical:   map[string]int{},
	}
}

// CheckpointCadence is the project convention for how often a unit of
// the given length checkpoints: every eighth of the unit, at least
// every chunk.
func CheckpointCadence(chunks int) int {
	every := chunks / 8
	if every < 1 {
		every = 1
	}
	return every
}

// MintUnit reconstructs the deterministic i-th work unit of a project
// stream — the (ID format, seed, checkpoint cadence) convention shared
// by Project and by schedulers that mint compatible units themselves
// (internal/grid's non-replicating policies).
func MintUnit(project string, i int, seedBase uint64, chunks int) WorkUnit {
	return WorkUnit{
		ID:              mintID(project, i),
		Seed:            seedBase + uint64(i),
		Chunks:          chunks,
		CheckpointEvery: CheckpointCadence(chunks),
	}
}

// AppendPaddedIndex appends i in decimal, zero-padded to at least six
// digits (wider values grow to the left) — the fixed-width convention
// unit IDs and internal/grid's host IDs share. Hand-rolled because a
// fleet formats hundreds of millions of these and fmt's reflection is
// the dominant cost of Sprintf at that volume.
func AppendPaddedIndex(b []byte, i int) []byte {
	digits := 6
	for v := i; v >= 1_000_000; v /= 10 {
		digits++
	}
	n := len(b)
	for j := 0; j < digits; j++ {
		b = append(b, '0')
	}
	for d := digits - 1; d >= 0; d-- {
		b[n+d] = byte('0' + i%10)
		i /= 10
	}
	return b
}

// mintID formats "<project>-wu-%06d" via AppendPaddedIndex.
func mintID(project string, i int) string {
	b := make([]byte, 0, len(project)+4+8)
	b = append(b, project...)
	b = append(b, "-wu-"...)
	return string(AppendPaddedIndex(b, i))
}

// unitID formats the id of the i-th generated unit.
func (p *Project) unitID(i int) string { return mintID(p.Name, i) }

// unitFor reconstructs the deterministic work unit for an index.
func (p *Project) unitFor(i int) WorkUnit {
	return MintUnit(p.Name, i, p.seedBase, p.chunks)
}

// RequestWork assigns a replica to the volunteer: first any unit still
// short of its replication target that this volunteer does not already
// hold, otherwise a fresh unit.
func (p *Project) RequestWork(volunteer string) WorkUnit {
	// Prefer topping up under-replicated units (deterministic order).
	ids := make([]string, 0, len(p.assignments))
	for id := range p.assignments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		holders := p.assignments[id]
		if _, done := p.canonical[id]; done {
			continue
		}
		// A unit needs enough further agreeing reports to reach quorum
		// beyond its best current agreement; replicas in flight count
		// toward that. A 1–1 split therefore re-issues a tie-breaker.
		best := 0
		tally := map[int]int{}
		for _, v := range p.reports[id] {
			tally[v]++
			if tally[v] > best {
				best = tally[v]
			}
		}
		if len(holders) >= p.Replication-best {
			continue
		}
		if containsString(holders, volunteer) {
			continue
		}
		if _, reported := p.reports[id][volunteer]; reported {
			continue
		}
		p.assignments[id] = append(holders, volunteer)
		return p.unitFor(p.unitIdx[id])
	}
	// Fresh unit.
	i := p.nextUnit
	p.nextUnit++
	id := p.unitID(i)
	p.assignments[id] = []string{volunteer}
	p.unitIdx[id] = i
	return p.unitFor(i)
}

// TrueResult computes the ground-truth peak bin for a unit — what an
// honest volunteer's computation yields (the result is a pure function of
// the unit's seed).
func TrueResult(wu WorkUnit) int {
	return EinsteinChunk(wu.Seed).PeakBin
}

// SubmitResult records a volunteer's returned peak bin and runs quorum
// validation. It reports whether the unit now has a canonical result.
func (p *Project) SubmitResult(volunteer, unitID string, peakBin int) (validated bool) {
	if p.reports[unitID] == nil {
		p.reports[unitID] = map[string]int{}
	}
	p.reports[unitID][volunteer] = peakBin
	p.assignments[unitID] = removeString(p.assignments[unitID], volunteer)

	if existing, done := p.canonical[unitID]; done {
		if peakBin != existing {
			p.invalid++
		}
		return true
	}
	// Quorum: Replication agreeing values among the reports.
	counts := map[int]int{}
	for _, v := range p.reports[unitID] {
		counts[v]++
		if counts[v] >= p.Replication {
			p.canonical[unitID] = v
			// Late disagreements already on file count as invalid.
			for _, other := range p.reports[unitID] {
				if other != v {
					p.invalid++
				}
			}
			return true
		}
	}
	return false
}

// Validated returns how many units have canonical results.
func (p *Project) Validated() int { return len(p.canonical) }

// Invalid returns how many reports disagreed with established quorums.
func (p *Project) Invalid() int { return p.invalid }

// Canonical returns the validated result for a unit, if any.
func (p *Project) Canonical(unitID string) (int, bool) {
	v, ok := p.canonical[unitID]
	return v, ok
}

// Outstanding reports units generated but not yet validated.
func (p *Project) Outstanding() int { return p.nextUnit - len(p.canonical) }

func containsString(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func removeString(xs []string, v string) []string {
	out := xs[:0]
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
