package boinc

import (
	"fmt"
	"testing"
)

func TestProjectAssignsReplicasToDistinctVolunteers(t *testing.T) {
	p := NewProject("einstein", 2, 64, 100)
	wuA := p.RequestWork("alice")
	wuB := p.RequestWork("bob")
	if wuA.ID != wuB.ID {
		t.Fatalf("second volunteer got a fresh unit (%s vs %s); replication wants a replica", wuA.ID, wuB.ID)
	}
	if wuA.Seed != wuB.Seed {
		t.Fatal("replicas differ in seed")
	}
	// A third volunteer gets a new unit: the first is fully assigned.
	wuC := p.RequestWork("carol")
	if wuC.ID == wuA.ID {
		t.Fatal("over-assigned replica")
	}
	// Alice cannot hold two replicas of one unit.
	wuA2 := p.RequestWork("alice")
	if wuA2.ID == wuA.ID {
		t.Fatal("volunteer holds two replicas of the same unit")
	}
}

func TestQuorumValidation(t *testing.T) {
	p := NewProject("einstein", 2, 64, 7)
	wu := p.RequestWork("alice")
	p.RequestWork("bob") // replica of the same unit
	truth := TrueResult(wu)

	if p.SubmitResult("alice", wu.ID, truth) {
		t.Fatal("validated with a single result at replication 2")
	}
	if !p.SubmitResult("bob", wu.ID, truth) {
		t.Fatal("agreeing quorum did not validate")
	}
	got, ok := p.Canonical(wu.ID)
	if !ok || got != truth {
		t.Fatalf("canonical = %v,%v want %v", got, ok, truth)
	}
	if p.Validated() != 1 || p.Invalid() != 0 {
		t.Fatalf("validated=%d invalid=%d", p.Validated(), p.Invalid())
	}
}

func TestFaultyVolunteerOutvoted(t *testing.T) {
	p := NewProject("einstein", 2, 64, 13)
	wu := p.RequestWork("mallory")
	p.RequestWork("alice")
	truth := TrueResult(wu)

	// Mallory lies; alice reports truth: no quorum yet (1 vs 1).
	if p.SubmitResult("mallory", wu.ID, truth+1) {
		t.Fatal("single bad result validated")
	}
	if p.SubmitResult("alice", wu.ID, truth) {
		t.Fatal("1-1 split validated")
	}
	// The unit is under-replicated again: a third volunteer gets it.
	wu3 := p.RequestWork("carol")
	if wu3.ID != wu.ID {
		t.Fatalf("tie-breaking replica not issued: got %s", wu3.ID)
	}
	if !p.SubmitResult("carol", wu.ID, truth) {
		t.Fatal("2-of-3 quorum did not validate")
	}
	got, _ := p.Canonical(wu.ID)
	if got != truth {
		t.Fatalf("canonical %v, want truth %v", got, truth)
	}
	if p.Invalid() != 1 {
		t.Fatalf("invalid = %d, want 1 (mallory's report)", p.Invalid())
	}
}

func TestLateReportAgainstCanonical(t *testing.T) {
	p := NewProject("e", 1, 64, 5)
	wu := p.RequestWork("alice")
	truth := TrueResult(wu)
	p.SubmitResult("alice", wu.ID, truth)
	// A straggler replica disagreeing with the canonical result counts
	// as invalid but does not change it.
	p.SubmitResult("bob", wu.ID, truth+5)
	if p.Invalid() != 1 {
		t.Fatalf("invalid = %d", p.Invalid())
	}
	got, _ := p.Canonical(wu.ID)
	if got != truth {
		t.Fatal("canonical overwritten by straggler")
	}
}

func TestProjectEndToEndGrid(t *testing.T) {
	// A small grid: 4 volunteers (one faulty) chew through units with
	// replication 2; every validated unit must carry the true result.
	p := NewProject("grid", 2, 32, 42)
	volunteers := []string{"v0", "v1", "v2", "evil"}
	type held struct {
		wu WorkUnit
	}
	holding := map[string]held{}
	for round := 0; round < 40; round++ {
		for _, v := range volunteers {
			if h, ok := holding[v]; ok {
				result := TrueResult(h.wu)
				if v == "evil" {
					result = -1
				}
				p.SubmitResult(v, h.wu.ID, result)
				delete(holding, v)
				continue
			}
			holding[v] = held{wu: p.RequestWork(v)}
		}
	}
	if p.Validated() < 10 {
		t.Fatalf("only %d units validated over 40 rounds", p.Validated())
	}
	for i := 0; i < p.nextUnit; i++ {
		id := p.unitID(i)
		if got, ok := p.Canonical(id); ok {
			if want := TrueResult(p.unitFor(i)); got != want {
				t.Fatalf("unit %s validated wrong result %d (truth %d)", id, got, want)
			}
		}
	}
	if p.Invalid() == 0 {
		t.Fatal("the faulty volunteer was never caught")
	}
	if p.Outstanding() < 0 {
		t.Fatal("negative outstanding count")
	}
}

func TestProjectRejectsBadConfig(t *testing.T) {
	for i, fn := range []func(){
		func() { NewProject("x", 0, 10, 1) },
		func() { NewProject("x", 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestUnitIDsAreStable(t *testing.T) {
	p := NewProject("e", 1, 16, 9)
	a := p.RequestWork("v")
	var idx int
	if _, err := fmt.Sscanf(a.ID, "e-wu-%06d", &idx); err != nil || idx != 0 {
		t.Fatalf("unit id %q did not parse", a.ID)
	}
	if p.unitFor(0).Seed != a.Seed {
		t.Fatal("unitFor not reproducible")
	}
}
