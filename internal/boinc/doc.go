// Package boinc implements the volunteer-computing layer of the paper's
// host-impact experiments: a BOINC-style client that fetches work units,
// runs an Einstein@home-like compute kernel at 100% of the virtual CPU,
// checkpoints its progress to disk, and reports results (§4.2.2–§4.2.3),
// plus a project server that replicates units across volunteers and
// validates returns by quorum (Anderson 2004, the redundancy mechanism
// public-resource projects use against faulty or malicious hosts).
//
// The compute kernel is a real pulsar-search-shaped workload: generate a
// synthetic strain series, window it, FFT it (radix-2 Cooley–Tukey), and
// scan the power spectrum for candidate peaks — the hot loop structure of
// the actual Einstein@home application, at laptop scale.
package boinc
