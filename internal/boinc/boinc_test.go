package boinc

import (
	"math"
	"testing"
	"testing/quick"

	"vmdg/internal/cost"
	"vmdg/internal/sim"
)

func TestFFTKnownSine(t *testing.T) {
	n := 1024
	re := make([]float64, n)
	im := make([]float64, n)
	bin := 37
	for i := 0; i < n; i++ {
		re[i] = math.Sin(2 * math.Pi * float64(bin) * float64(i) / float64(n))
	}
	FFT(re, im, nil)
	// Energy must concentrate at ±bin with magnitude n/2.
	mag := math.Hypot(re[bin], im[bin])
	if math.Abs(mag-float64(n)/2) > 1e-6 {
		t.Fatalf("peak magnitude = %v, want %v", mag, float64(n)/2)
	}
	for k := 1; k < n/2; k++ {
		if k == bin {
			continue
		}
		if m := math.Hypot(re[k], im[k]); m > 1e-6 {
			t.Fatalf("leakage at bin %d: %v", k, m)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := sim.NewRNG(1)
	n := 512
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		re[i] = rng.Float64()*2 - 1
		orig[i] = re[i]
	}
	FFT(re, im, nil)
	InverseFFT(re, im, nil)
	for i := range re {
		if math.Abs(re[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip error at %d: %v vs %v", i, re[i], orig[i])
		}
		if math.Abs(im[i]) > 1e-9 {
			t.Fatalf("imaginary residue at %d: %v", i, im[i])
		}
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		n := 256
		re := make([]float64, n)
		im := make([]float64, n)
		var timeE float64
		for i := range re {
			re[i] = rng.Float64() - 0.5
			timeE += re[i] * re[i]
		}
		FFT(re, im, nil)
		var freqE float64
		for i := range re {
			freqE += re[i]*re[i] + im[i]*im[i]
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for length 100")
		}
	}()
	FFT(make([]float64, 100), make([]float64, 100), nil)
}

func TestEinsteinChunkFindsInjectedSignal(t *testing.T) {
	// The injected line sits at a deterministic bin; the peak search must
	// find it despite the noise floor.
	for seed := uint64(0); seed < 10; seed++ {
		res := EinsteinChunk(seed)
		if res.PeakPower <= 0 {
			t.Fatalf("seed %d: no peak", seed)
		}
		if res.PeakBin < fftSize/16 || res.PeakBin >= fftSize/2 {
			t.Fatalf("seed %d: peak at %d outside injection range", seed, res.PeakBin)
		}
		if res.Counts.FPOps == 0 {
			t.Fatal("no FP work counted")
		}
	}
}

func TestEinsteinMixIsFPHeavyBusLight(t *testing.T) {
	// The paper's <5% MEM-index impact (Fig. 5) requires the Einstein
	// worker to be bus-light; guard the calibration band.
	res := EinsteinChunk(3)
	mix := res.Counts.Mix()
	if mix.FP < 0.5 {
		t.Fatalf("FP share %.3f, want ≥0.5", mix.FP)
	}
	if mix.Mem > 0.20 {
		t.Fatalf("Mem share %.3f, want ≤0.20", mix.Mem)
	}
}

func TestProgressMarshalRoundTrip(t *testing.T) {
	p := Progress{WorkUnit: DefaultWorkUnit("wu-1", 7), ChunksDone: 123, BestPeak: 4.5}
	back, err := UnmarshalProgress(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip: %+v vs %+v", back, p)
	}
	if _, err := UnmarshalProgress([]byte("not-json")); err == nil {
		t.Fatal("bad payload accepted")
	}
}

func TestWorkerStepStream(t *testing.T) {
	wu := WorkUnit{ID: "t", Seed: 1, Chunks: 10, CheckpointEvery: 4}
	w := NewWorker(Progress{WorkUnit: wu})
	var computes, writes, syncs int
	for i := 0; i < 100; i++ {
		st, ok := w.Next()
		if !ok {
			t.Fatal("endless worker terminated")
		}
		switch st.Kind {
		case cost.StepCompute:
			computes++
		case cost.StepDiskWrite:
			writes++
		case cost.StepDiskSync:
			syncs++
		default:
			t.Fatalf("unexpected step %v", st.Kind)
		}
	}
	if computes == 0 || writes == 0 || syncs != writes {
		t.Fatalf("stream shape: %d computes, %d writes, %d syncs", computes, writes, syncs)
	}
	// Checkpoints every 4 chunks: writes ≈ computes/4.
	if writes < computes/5 || writes > computes/3 {
		t.Fatalf("checkpoint cadence off: %d writes for %d computes", writes, computes)
	}
}

func TestWorkerCountsUnits(t *testing.T) {
	wu := WorkUnit{ID: "t", Seed: 1, Chunks: 5, CheckpointEvery: 0}
	w := NewWorker(Progress{WorkUnit: wu})
	var done []Progress
	w.OnUnitDone = func(p Progress) { done = append(done, p) }
	for i := 0; i < 5*3; i++ {
		w.Next()
	}
	if w.UnitsDone() != 3 {
		t.Fatalf("units done = %d, want 3", w.UnitsDone())
	}
	if len(done) != 3 {
		t.Fatalf("callbacks = %d", len(done))
	}
}

func TestWorkerResumeFromProgress(t *testing.T) {
	wu := WorkUnit{ID: "t", Seed: 1, Chunks: 10, CheckpointEvery: 0}
	w := NewWorker(Progress{WorkUnit: wu, ChunksDone: 8})
	// Two chunks remain in the current unit.
	steps := 0
	for w.UnitsDone() == 0 {
		w.Next()
		steps++
	}
	if steps != 2 {
		t.Fatalf("resumed worker took %d chunks to finish, want 2", steps)
	}
}

func TestFiniteWorkerTerminates(t *testing.T) {
	wu := WorkUnit{ID: "t", Seed: 1, Chunks: 4, CheckpointEvery: 2}
	f := NewFiniteWorker(Progress{WorkUnit: wu}, 2)
	n := 0
	for {
		_, ok := f.Next()
		if !ok {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("finite worker never terminated")
		}
	}
	if f.UnitsDone() != 2 {
		t.Fatalf("units = %d", f.UnitsDone())
	}
}

func TestNewWorkerRejectsEmptyUnit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty work unit")
		}
	}()
	NewWorker(Progress{})
}

func TestEstimateUnitSeconds(t *testing.T) {
	wu := DefaultWorkUnit("wu", 1)
	s := EstimateUnitSeconds(wu, 2.4e9)
	if s <= 0 || s > 3600 {
		t.Fatalf("estimate = %vs", s)
	}
}
