package trace

import (
	"strings"
	"testing"

	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	s := sim.New()
	r := Attach(s, 0)
	s.At(1, "a", func() {})
	s.At(2, "b", func() {})
	s.At(3, "a", func() {})
	s.Run()
	if r.Total() != 3 || r.Count("a") != 2 || r.Count("b") != 1 {
		t.Fatalf("counts: total=%d a=%d b=%d", r.Total(), r.Count("a"), r.Count("b"))
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Label != "a" || ev[1].Label != "b" {
		t.Fatalf("events = %v", ev)
	}
	if got := r.Between(2, 3); len(got) != 1 || got[0].Label != "b" {
		t.Fatalf("Between = %v", got)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	s := sim.New()
	r := Attach(s, 4)
	for i := sim.Time(1); i <= 10; i++ {
		s.At(i, "e", func() {})
	}
	s.Run()
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	// The newest four events, in order.
	for i, e := range ev {
		if want := sim.Time(7 + i); e.At != want {
			t.Fatalf("event %d at %v, want %v", i, e.At, want)
		}
	}
}

func TestSummary(t *testing.T) {
	s := sim.New()
	r := Attach(s, 0)
	for i := 0; i < 5; i++ {
		s.At(sim.Time(i+1), "frequent", func() {})
	}
	s.At(100, "rare", func() {})
	s.Run()
	out := r.Summary()
	if !strings.Contains(out, "frequent") || !strings.Contains(out, "rare") {
		t.Fatalf("summary:\n%s", out)
	}
	if strings.Index(out, "frequent") > strings.Index(out, "rare") {
		t.Fatal("summary not sorted by frequency")
	}
}

func TestRecorderObservesScheduler(t *testing.T) {
	s := sim.New()
	m, err := hw.NewMachine(s, hw.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := Attach(s, 1024)
	o := hostos.Boot(m)
	p := o.NewProcess("w")
	for i := 0; i < 3; i++ {
		prof := &cost.Profile{Name: "w", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: 3e8, Mix: cost.Mix{Int: 1}},
		}}
		o.Spawn(p, "w", hostos.PrioNormal, prof.Iter())
	}
	s.Run()
	if r.Count("quantum") == 0 {
		t.Fatal("no quantum expiries traced for a 3-on-2 contended run")
	}
	if r.Count("step-done") == 0 {
		t.Fatal("no step completions traced")
	}
}
