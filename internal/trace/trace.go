package trace

import (
	"fmt"
	"sort"
	"strings"

	"vmdg/internal/sim"
)

// Event is one recorded firing.
type Event struct {
	At    sim.Time
	Label string
}

// Recorder accumulates events up to a bound (a ring: the newest events
// win once the bound is hit, since recent history is what debugging
// needs).
type Recorder struct {
	max    int
	events []Event
	start  int // ring start index once saturated
	total  uint64
	counts map[string]uint64
}

// Attach installs a recorder on s keeping at most max events (0 means an
// unbounded log — use only in tests).
func Attach(s *sim.Simulator, max int) *Recorder {
	r := &Recorder{max: max, counts: map[string]uint64{}}
	s.SetTracer(r.record)
	return r
}

func (r *Recorder) record(at sim.Time, label string) {
	r.total++
	r.counts[label]++
	if r.max > 0 && len(r.events) == r.max {
		r.events[r.start] = Event{At: at, Label: label}
		r.start = (r.start + 1) % r.max
		return
	}
	r.events = append(r.events, Event{At: at, Label: label})
}

// Total returns how many events were observed (including evicted ones).
func (r *Recorder) Total() uint64 { return r.total }

// Count returns how many events carried the given label.
func (r *Recorder) Count(label string) uint64 { return r.counts[label] }

// Events returns the retained events in firing order.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		out = append(out, r.events[(r.start+i)%len(r.events)])
	}
	return out
}

// Between filters retained events to the half-open interval [from, to).
func (r *Recorder) Between(from, to sim.Time) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// Summary renders a per-label frequency table, most frequent first.
func (r *Recorder) Summary() string {
	type row struct {
		label string
		n     uint64
	}
	rows := make([]row, 0, len(r.counts))
	for l, n := range r.counts {
		rows = append(rows, row{l, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].label < rows[j].label
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%d events, %d labels\n", r.total, len(rows))
	for _, row := range rows {
		fmt.Fprintf(&b, "%10d  %s\n", row.n, row.label)
	}
	return b.String()
}
