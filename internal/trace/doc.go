// Package trace records labelled simulator events for debugging and for
// the experiment harness's visibility into scheduler behaviour: which
// events fired, how often, and when.
//
// A Recorder attaches to the sim kernel's tracer hook and costs nothing
// when detached — the hook is a nil check on the hot path. Recorded
// events carry the virtual timestamp and the label the scheduling code
// gave them ("quantum", "irq", "user-think", ...), and the package can
// render a histogram of label frequencies or the raw timeline.
//
// Because each experiment shard runs its own sim instance, a Recorder
// observes exactly one deterministic simulation; traces from the same
// seed are identical run to run, which makes them diffable when a model
// change moves a scheduling decision.
package trace
