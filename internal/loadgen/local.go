package loadgen

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"runtime"

	"vmdg/internal/engine"
	"vmdg/internal/serve"
)

// Local stands up an in-process serve daemon — its own worker pool, a
// mem-tiered shard cache at cacheDir, resume on — behind an httptest
// listener, and returns its base URL plus a shutdown func. Pointing the
// harness at a fresh cacheDir guarantees a cold start, which is what
// makes the Σmisses accounting exact from zero; `dgrid loadtest` uses
// this unless -addr targets a real daemon.
func Local(workers, maxRuns int, cacheDir string, logTo io.Writer) (baseURL string, shutdown func(), err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := engine.NewPool(workers)
	fc, err := engine.NewFileCache(cacheDir)
	if err != nil {
		pool.Close()
		return "", nil, err
	}
	fc.EnableMemTier(engine.DefaultMemTierBytes)
	if logTo == nil {
		logTo = io.Discard
	}
	s := &serve.Server{
		Pool: pool, Cache: fc, MaxRuns: maxRuns, Resume: true,
		Log: slog.New(slog.NewTextHandler(logTo, nil)),
	}
	ts := httptest.NewServer(s.Handler())
	return ts.URL, func() {
		ts.Close()
		pool.Close()
	}, nil
}
