package loadgen

import (
	"math/bits"
	"time"
)

// The histogram is log-linear, HDR-style: values (latencies in
// nanoseconds) land in 2^histSubBits linear sub-buckets per power of
// two, so recording is one bit-scan and one increment, the memory
// footprint is fixed (~15 KiB), and reconstructed quantiles carry at
// most one sub-bucket of error — a bounded ~3% relative error at any
// magnitude from nanoseconds to hours. Per-client histograms merge by
// element-wise addition, which is what lets hundreds of clients record
// without sharing a lock.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// Group 0 holds values below histSub verbatim; group g > 0 holds
	// [histSub<<(g-1), histSub<<g) at 1<<(g-1) granularity.
	histGroups = 64 - histSubBits
)

// Hist is a fixed-size log-linear latency histogram. The zero value is
// empty and ready to record. Hist is not safe for concurrent use; give
// each goroutine its own and Merge them.
type Hist struct {
	counts [histGroups][histSub]uint64
	n      uint64
	min    int64 // exact, so quantile tails clamp to observed values
	max    int64
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	g, s := histIndex(v)
	h.counts[g][s]++
	h.n++
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded observations.
func (h *Hist) Count() int { return int(h.n) }

// Max reports the largest recorded observation (exact, not bucketed).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Merge folds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	for g := range h.counts {
		for s := range h.counts[g] {
			h.counts[g][s] += o.counts[g][s]
		}
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}

// Quantile reconstructs the q-quantile (q in [0, 1]) to within one
// sub-bucket, clamped to the exact observed min and max so p0/p100
// never invent values outside the data.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for g := range h.counts {
		for s, c := range h.counts[g] {
			if c == 0 {
				continue
			}
			seen += c
			if seen >= rank {
				v := histValue(g, s)
				if v > h.max {
					v = h.max
				}
				if v < h.min {
					v = h.min
				}
				return time.Duration(v)
			}
		}
	}
	return time.Duration(h.max)
}

// histIndex maps a non-negative value to its (group, sub-bucket) cell.
func histIndex(v int64) (g, s int) {
	if v < histSub {
		return 0, int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // MSB position, >= histSubBits
	return exp - histSubBits + 1, int(v>>uint(exp-histSubBits)) - histSub
}

// histValue is the midpoint of a cell — the reconstruction Quantile
// reports for observations that landed in it.
func histValue(g, s int) int64 {
	if g == 0 {
		return int64(s)
	}
	width := int64(1) << uint(g-1)
	return (histSub+int64(s))*width + width/2
}

// Summary is the wire form of one histogram: the percentile block the
// bench artifact's serve section commits per outcome class.
type Summary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Summarize renders the histogram's percentile block.
func (h *Hist) Summarize() Summary {
	if h.n == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.Count(),
		P50Ms: ms(h.Quantile(0.50)),
		P90Ms: ms(h.Quantile(0.90)),
		P99Ms: ms(h.Quantile(0.99)),
		MaxMs: ms(h.Max()),
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
