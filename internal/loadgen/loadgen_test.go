package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"vmdg/internal/serve"
)

// startLocal wires a fresh in-process daemon for one test.
func startLocal(t *testing.T, workers, maxRuns int) string {
	t.Helper()
	url, shutdown, err := Local(workers, maxRuns, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	return url
}

// TestFleetColdWarmDedupAccounting: a small fleet over a two-spec mix
// against a cold daemon. Exactly one run per spec computes (the cold
// class), every other request is warm or deduped, nothing fails, and
// every cross-check in the accounting contract holds.
func TestFleetColdWarmDedupAccounting(t *testing.T) {
	url := startLocal(t, 2, 8)
	rep, err := Run(context.Background(), Config{
		BaseURL:  url,
		Clients:  8,
		Requests: 3,
		Specs:    DefaultSpecMix(2),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check() = %v\nreport: %+v", err, rep)
	}
	if rep.Requests != 24 || rep.Failed != 0 {
		t.Fatalf("requests %d failed %d, want 24/0", rep.Requests, rep.Failed)
	}
	// maxRuns 8 admits the whole fleet: no request should see a 429,
	// so the classes partition into cold/warm/deduped only.
	if rep.Rejected429 != 0 || rep.Rejected.Count != 0 {
		t.Errorf("unsaturated daemon rejected %d requests", rep.Rejected429)
	}
	if rep.Cold.Count != 2 {
		t.Errorf("cold count = %d, want exactly 2 (one leader per spec)", rep.Cold.Count)
	}
	if got := rep.Warm.Count + rep.Deduped.Count; got != 22 {
		t.Errorf("warm %d + deduped %d = %d, want 22", rep.Warm.Count, rep.Deduped.Count, got)
	}
	a := rep.Accounting
	if a.SumMisses != 2 || a.NewCacheEntries != 2 {
		t.Errorf("Σmisses %d, new entries %d, want 2/2", a.SumMisses, a.NewCacheEntries)
	}
	if a.Admitted != 24 || a.Completed != 24 || a.Canceled != 0 || a.FailedRuns != 0 {
		t.Errorf("counter deltas %+v, want 24 admitted == 24 completed", a)
	}
	// Half the requests streamed (SSEFraction default 0.5, seeded), so
	// time-to-first-frame has observations and sane percentiles.
	if rep.TTFF.Count == 0 || rep.TTFF.P50Ms <= 0 {
		t.Errorf("TTFF = %+v, want streamed observations", rep.TTFF)
	}
	if rep.Warm.Count > 0 && rep.Warm.P99Ms <= 0 {
		t.Errorf("warm p99 = %v, want > 0", rep.Warm.P99Ms)
	}
}

// TestSaturated429AllClientsEventuallySucceed is the explicit 429-path
// test: one admission slot, six clients arriving at once. The daemon
// must turn the excess away with Retry-After, the clients must honor
// it with jittered backoff, and every request must eventually succeed
// — zero hard failures, with the daemon's rejected counter agreeing
// with the clients' count of 429s seen.
func TestSaturated429AllClientsEventuallySucceed(t *testing.T) {
	url := startLocal(t, 1, 1)
	rep, err := Run(context.Background(), Config{
		BaseURL:      url,
		Clients:      6,
		Requests:     2,
		Specs:        DefaultSpecMix(2),
		Seed:         7,
		BackoffScale: 0.05, // compress the 1s Retry-After hints to ~25-75ms
		MaxRetries:   500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("Check() = %v\nreport: %+v", err, rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed under saturation: %v", rep.Failed, rep.FailureSamples)
	}
	if rep.Rejected429 == 0 {
		t.Fatal("six clients through one admission slot saw zero 429s — the saturation path was not exercised")
	}
	if rep.Retries != rep.Rejected429 {
		t.Errorf("retries %d != rejections %d: some 429 was not retried", rep.Retries, rep.Rejected429)
	}
	if rep.Rejected.Count == 0 {
		t.Error("no request classified rejected despite 429s")
	}
	if got := rep.Accounting.Rejected; got != uint64(rep.Rejected429) {
		t.Errorf("daemon counted %d rejections, clients saw %d", got, rep.Rejected429)
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{"3", 3 * time.Second},
		{" 2 ", 2 * time.Second},
		{"", time.Second},
		{"soon", time.Second},
		{"-4", time.Second},
		{"0", time.Second},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		sawReject bool
		st        serve.RunStats
		want      string
	}{
		{false, serve.RunStats{Misses: 4}, ClassCold},
		{false, serve.RunStats{Misses: 1, FlightHits: 3}, ClassCold},
		{false, serve.RunStats{Hits: 2, FlightHits: 2}, ClassDeduped},
		{false, serve.RunStats{Hits: 4}, ClassWarm},
		{false, serve.RunStats{}, ClassWarm},
		{true, serve.RunStats{Misses: 4}, ClassRejected},
	} {
		if got := classify(tc.sawReject, tc.st); got != tc.want {
			t.Errorf("classify(%v, %+v) = %q, want %q", tc.sawReject, tc.st, got, tc.want)
		}
	}
}

// TestReportCheck: the hard half of the gate judges exactly the
// failure modes it names.
func TestReportCheck(t *testing.T) {
	clean := func() *Report {
		return &Report{
			Requests: 10,
			Accounting: Accounting{
				MissesMatch: true, ActiveRunsDrained: true,
				RunLocksDrained: true, CountersConsistent: true,
			},
		}
	}
	if err := clean().Check(); err != nil {
		t.Fatalf("clean report failed Check: %v", err)
	}
	for name, breakIt := range map[string]func(*Report){
		"failed request":   func(r *Report) { r.Failed = 1; r.FailureSamples = []string{"boom"} },
		"misses mismatch":  func(r *Report) { r.Accounting.MissesMatch = false },
		"active runs":      func(r *Report) { r.Accounting.ActiveRunsDrained = false },
		"stale run lock":   func(r *Report) { r.Accounting.RunLocksDrained = false },
		"counter mismatch": func(r *Report) { r.Accounting.CountersConsistent = false },
	} {
		r := clean()
		breakIt(r)
		if err := r.Check(); err == nil {
			t.Errorf("%s: Check() = nil, want error", name)
		}
	}
}

// TestDefaultSpecMixDistinct: every spec in the mix is valid JSON-ish
// and distinct — distinct cache key spaces are what make the mix's
// cold budget exactly len(mix).
func TestDefaultSpecMixDistinct(t *testing.T) {
	specs := DefaultSpecMix(8)
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s] {
			t.Errorf("duplicate spec in mix: %s", s)
		}
		seen[s] = true
		if !strings.Contains(s, `"quick":true`) {
			t.Errorf("mix spec not quick: %s", s)
		}
	}
	if len(specs) != 8 {
		t.Errorf("len = %d, want 8", len(specs))
	}
}
