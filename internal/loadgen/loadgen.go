// Package loadgen is the serve daemon's load-generation harness: a
// self-contained fleet of concurrent HTTP clients that drives POST
// /v1/sweeps with an overlapping spec mix — so the cold, warm-cache,
// and single-flight-deduped paths are all exercised — while recording
// end-to-end latency, time-to-first-SSE-frame, and 429 backoff retries
// into mergeable log-linear histograms.
//
// The harness does not trust its own bookkeeping: after the fleet
// drains it cross-checks the client-side tallies against the daemon's
// operational surface. The contract it enforces:
//
//   - Σ misses over every successful response == new /v1/cache entries
//     (the single-flight exactly-once guarantee, observed end to end);
//   - /healthz active_runs drains to 0 and /v1/cache active_runs
//     (manifest run locks) drains to 0 — no stale locks;
//   - the daemon's cumulative counters reconcile: Δadmitted ==
//     Δcompleted + Δcanceled + Δfailed, Δcompleted == client successes,
//     and Δrejected == the 429s the clients saw.
//
// Counter deltas (not absolutes) are compared, so the harness can also
// point at a long-lived daemon — provided no other tenant is driving
// it during the measurement.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"vmdg/internal/serve"
)

// Config shapes one load run. BaseURL is required; zero values
// elsewhere mean the defaults noted per field.
type Config struct {
	// BaseURL is the daemon under test ("http://127.0.0.1:8787").
	BaseURL string
	// Clients is the concurrent client count (default 200). All
	// clients are released on one barrier, so the daemon sees the full
	// fleet at once.
	Clients int
	// Requests each client issues sequentially (default 5).
	Requests int
	// Specs is the overlapping mix clients draw from uniformly; with
	// len(Specs) << Clients the same key space is requested many times
	// over, which is what makes the warm and deduped classes dominate.
	// Default: DefaultSpecMix(8).
	Specs []string
	// SSEFraction of requests stream (Accept: text/event-stream) and
	// record time-to-first-frame; the rest take the buffered path.
	// Default 0.5; set negative for 0.
	SSEFraction float64
	// Seed drives every client's RNG (spec choice, SSE choice, backoff
	// jitter); the request schedule is reproducible even though the
	// measured latencies are not. Default 1.
	Seed uint64
	// MaxRetries bounds one request's 429 retries before it counts as
	// failed (default 100 — a saturated daemon is the expected state
	// under this harness, so clients are patient).
	MaxRetries int
	// BackoffScale multiplies every Retry-After sleep (default 1.0);
	// tests compress waiting, the CLI never sets it.
	BackoffScale float64
	// DrainTimeout bounds the post-run wait for active_runs and the
	// daemon counters to settle (default 30s).
	DrainTimeout time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Clients <= 0 {
		cfg.Clients = 200
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 5
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = DefaultSpecMix(8)
	}
	if cfg.SSEFraction == 0 {
		cfg.SSEFraction = 0.5
	} else if cfg.SSEFraction < 0 {
		cfg.SSEFraction = 0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 100
	}
	if cfg.BackoffScale <= 0 {
		cfg.BackoffScale = 1.0
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	return cfg
}

// DefaultSpecMix builds n one-point, one-shard quick scenarios that
// differ only in population size. Distinct specs share no cache keys,
// so n is exactly the cold-shard budget of a fresh-cache run; every
// repeat lands warm or deduped.
func DefaultSpecMix(n int) []string {
	if n <= 0 {
		n = 8
	}
	specs := make([]string, n)
	for i := range specs {
		specs[i] = fmt.Sprintf(
			`{"version":1,"quick":true,"envs":["vmplayer"],"machines":[%d],"minutes":[30],"churn":[true],"policy":["fifo"]}`,
			60+15*i)
	}
	return specs
}

// Outcome classes. A request that saw at least one 429 is "rejected"
// (its latency includes the backoff it was told to take); otherwise
// the daemon's own per-run stats classify it: computing any shard is
// "cold", receiving a shard from another in-flight run is "deduped",
// and a pure cache replay is "warm".
const (
	ClassCold     = "cold"
	ClassWarm     = "warm"
	ClassDeduped  = "deduped"
	ClassRejected = "rejected"
)

func classify(sawReject bool, st serve.RunStats) string {
	switch {
	case sawReject:
		return ClassRejected
	case st.Misses > 0:
		return ClassCold
	case st.FlightHits > 0:
		return ClassDeduped
	default:
		return ClassWarm
	}
}

// Report is one load run's measurement: the artifact committed as
// BENCH_fleet.json's "serve" section and the input to the -check gate.
type Report struct {
	Clients           int     `json:"clients"`
	RequestsPerClient int     `json:"requests_per_client"`
	Requests          int     `json:"requests"`
	SpecMix           int     `json:"spec_mix"`
	SSEFraction       float64 `json:"sse_fraction"`
	// Workers and MaxRuns are the daemon's, read from /healthz.
	Workers int `json:"workers"`
	MaxRuns int `json:"max_runs"`

	ElapsedSec     float64 `json:"elapsed_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`

	// Failed counts requests that never succeeded (transport errors,
	// non-200/429 answers, exhausted retries, artifact mismatches);
	// the acceptance bar is exactly 0.
	Failed         int      `json:"failed"`
	FailureSamples []string `json:"failure_samples,omitempty"`
	// Rejected429 counts 429 answers; Retries counts the retry sleeps
	// taken (== Rejected429 when every rejection was retried).
	Rejected429 int `json:"rejected_429"`
	Retries     int `json:"retries"`

	// End-to-end latency percentiles per outcome class.
	Cold     Summary `json:"cold"`
	Warm     Summary `json:"warm"`
	Deduped  Summary `json:"deduped"`
	Rejected Summary `json:"rejected"`
	// TTFF is time-to-first-SSE-frame over every streamed request.
	TTFF Summary `json:"ttff"`

	Accounting Accounting `json:"accounting"`
}

// Accounting is the client-vs-daemon cross-check block; see the
// package comment for the contract.
type Accounting struct {
	SumMisses       int  `json:"sum_misses"`
	NewCacheEntries int  `json:"new_cache_entries"`
	MissesMatch     bool `json:"misses_match"`
	// ActiveRunsDrained: /healthz active_runs returned to 0 within the
	// drain timeout. RunLocksDrained: /v1/cache active_runs (manifest
	// run locks) did too — no stale lock survived the load.
	ActiveRunsDrained bool `json:"active_runs_drained"`
	RunLocksDrained   bool `json:"run_locks_drained"`
	// Daemon counter deltas over the run.
	Admitted   uint64 `json:"admitted"`
	Completed  uint64 `json:"completed"`
	Canceled   uint64 `json:"canceled"`
	FailedRuns uint64 `json:"failed_runs"`
	Rejected   uint64 `json:"rejected"`
	// CountersConsistent: admitted == completed+canceled+failed,
	// completed == client-side successes, rejected == client-side 429s.
	CountersConsistent bool `json:"counters_consistent"`
}

// Check is the SLO gate's hard half (the latency half needs a
// committed baseline and lives with the CLI): any failed request or
// any accounting mismatch is an error.
func (r *Report) Check() error {
	if r.Failed > 0 {
		return fmt.Errorf("loadtest: %d of %d requests failed (first: %s)",
			r.Failed, r.Requests, strings.Join(r.FailureSamples, "; "))
	}
	a := r.Accounting
	if !a.MissesMatch {
		return fmt.Errorf("loadtest: accounting mismatch: Σmisses %d != %d new cache entries — the single-flight exactly-once contract broke under load",
			a.SumMisses, a.NewCacheEntries)
	}
	if !a.ActiveRunsDrained {
		return fmt.Errorf("loadtest: active_runs did not drain to 0")
	}
	if !a.RunLocksDrained {
		return fmt.Errorf("loadtest: manifest run locks did not drain to 0 (stale lock)")
	}
	if !a.CountersConsistent {
		return fmt.Errorf("loadtest: daemon counters inconsistent: Δadmitted %d, Δcompleted %d, Δcanceled %d, Δfailed %d, Δrejected %d vs client 429s %d",
			a.Admitted, a.Completed, a.Canceled, a.FailedRuns, a.Rejected, r.Rejected429)
	}
	return nil
}

// clientTally is one client's private measurement state, merged after
// the fleet drains; nothing here is shared while clients run.
type clientTally struct {
	hists     map[string]*Hist // class → end-to-end latency
	ttff      Hist
	rejected  int
	retries   int
	misses    int
	successes int
	failures  []string
}

func newTally() *clientTally {
	return &clientTally{hists: map[string]*Hist{
		ClassCold: {}, ClassWarm: {}, ClassDeduped: {}, ClassRejected: {},
	}}
}

// Run drives the configured fleet against cfg.BaseURL and returns the
// merged report. The error return covers harness-level trouble (the
// daemon unreachable, ctx canceled); per-request trouble is data, not
// error — it lands in Report.Failed for Check to judge.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	base := strings.TrimRight(cfg.BaseURL, "/")
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients,
		MaxIdleConnsPerHost: cfg.Clients,
	}}
	defer hc.CloseIdleConnections()

	// Pre-flight snapshots: the deltas anchor every cross-check.
	var h0 serve.Health
	if err := getJSON(ctx, hc, base+"/healthz", &h0); err != nil {
		return nil, fmt.Errorf("loadgen: daemon unreachable: %w", err)
	}
	var c0 serve.CacheReport
	if err := getJSON(ctx, hc, base+"/v1/cache", &c0); err != nil {
		return nil, fmt.Errorf("loadgen: reading /v1/cache: %w", err)
	}

	// Artifact integrity across the fleet: the first success per spec
	// pins a digest every later answer for that spec must match.
	pins := &artifactPins{digests: make(map[int][32]byte)}

	tallies := make([]*clientTally, cfg.Clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		tallies[i] = newTally()
		wg.Add(1)
		go func(id int, tally *clientTally) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(id)*1_000_003))
			<-start
			for r := 0; r < cfg.Requests; r++ {
				specIdx := rng.Intn(len(cfg.Specs))
				sse := rng.Float64() < cfg.SSEFraction
				runOne(ctx, hc, base, cfg, rng, tally, pins, specIdx, sse)
			}
		}(i, tallies[i])
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	// Merge the fleet.
	rep := &Report{
		Clients:           cfg.Clients,
		RequestsPerClient: cfg.Requests,
		Requests:          cfg.Clients * cfg.Requests,
		SpecMix:           len(cfg.Specs),
		SSEFraction:       cfg.SSEFraction,
		Workers:           h0.Workers,
		MaxRuns:           h0.MaxRuns,
		ElapsedSec:        elapsed.Seconds(),
	}
	rep.RequestsPerSec = float64(rep.Requests) / elapsed.Seconds()
	merged := map[string]*Hist{
		ClassCold: {}, ClassWarm: {}, ClassDeduped: {}, ClassRejected: {},
	}
	var ttff Hist
	successes := 0
	for _, tally := range tallies {
		for class, h := range tally.hists {
			merged[class].Merge(h)
		}
		ttff.Merge(&tally.ttff)
		rep.Rejected429 += tally.rejected
		rep.Retries += tally.retries
		rep.Accounting.SumMisses += tally.misses
		successes += tally.successes
		for _, f := range tally.failures {
			rep.Failed++
			if len(rep.FailureSamples) < 5 {
				rep.FailureSamples = append(rep.FailureSamples, f)
			}
		}
	}
	rep.Cold = merged[ClassCold].Summarize()
	rep.Warm = merged[ClassWarm].Summarize()
	rep.Deduped = merged[ClassDeduped].Summarize()
	rep.Rejected = merged[ClassRejected].Summarize()
	rep.TTFF = ttff.Summarize()

	// Drain, then cross-check. The daemon finishes its bookkeeping
	// (semaphore release, journal seal) moments after the last response
	// body closes, so poll rather than assert instantly.
	h1, drained := awaitDrain(ctx, hc, base, cfg.DrainTimeout)
	var c1 serve.CacheReport
	if err := getJSON(ctx, hc, base+"/v1/cache", &c1); err != nil {
		return nil, fmt.Errorf("loadgen: reading /v1/cache after load: %w", err)
	}
	a := &rep.Accounting
	a.NewCacheEntries = c1.Entries - c0.Entries
	a.MissesMatch = a.SumMisses == a.NewCacheEntries
	a.ActiveRunsDrained = drained
	a.RunLocksDrained = c1.ActiveRuns == 0
	a.Admitted = h1.Sweeps.Admitted - h0.Sweeps.Admitted
	a.Completed = h1.Sweeps.Completed - h0.Sweeps.Completed
	a.Canceled = h1.Sweeps.Canceled - h0.Sweeps.Canceled
	a.FailedRuns = h1.Sweeps.Failed - h0.Sweeps.Failed
	a.Rejected = h1.Sweeps.Rejected - h0.Sweeps.Rejected
	a.CountersConsistent = a.Admitted == a.Completed+a.Canceled+a.FailedRuns &&
		a.Completed == uint64(successes) &&
		a.Rejected == uint64(rep.Rejected429)
	return rep, nil
}

// runOne issues one logical request — 429s are retried with jittered
// backoff inside it — and records the outcome into tally.
func runOne(ctx context.Context, hc *http.Client, base string, cfg Config,
	rng *rand.Rand, tally *clientTally, pins *artifactPins, specIdx int, sse bool) {
	body := `{"spec":` + cfg.Specs[specIdx] + `}`
	t0 := time.Now()
	sawReject := false
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/sweeps", strings.NewReader(body))
		if err != nil {
			tally.fail("building request: " + err.Error())
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if sse {
			req.Header.Set("Accept", "text/event-stream")
		}
		resp, err := hc.Do(req)
		if err != nil {
			tally.fail("transport: " + err.Error())
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			tally.rejected++
			sawReject = true
			if attempt >= cfg.MaxRetries {
				tally.fail(fmt.Sprintf("429 retries exhausted after %d attempts", attempt+1))
				return
			}
			tally.retries++
			// Jittered backoff: the daemon's hint scaled by a uniform
			// [0.5, 1.5) factor, so a rejected thundering herd does not
			// re-arrive as a thundering herd.
			sleep := time.Duration(float64(retryAfter) * (0.5 + rng.Float64()) * cfg.BackoffScale)
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				tally.fail("canceled during backoff: " + ctx.Err().Error())
				return
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			tally.fail(fmt.Sprintf("status %s: %s", resp.Status, bytes.TrimSpace(b)))
			return
		}
		var res *serve.SweepResult
		if sse {
			res, err = readSSEResult(resp.Body, t0, &tally.ttff)
		} else {
			res = new(serve.SweepResult)
			err = json.NewDecoder(resp.Body).Decode(res)
		}
		resp.Body.Close()
		if err != nil {
			tally.fail("reading response: " + err.Error())
			return
		}
		e2e := time.Since(t0)
		if err := pins.verify(specIdx, res); err != nil {
			tally.fail(err.Error())
			return
		}
		tally.hists[classify(sawReject, res.Stats)].Record(e2e)
		tally.misses += res.Stats.Misses
		tally.successes++
		return
	}
}

func (t *clientTally) fail(msg string) { t.failures = append(t.failures, msg) }

// parseRetryAfter reads the header's delay-seconds form; an absent or
// malformed header falls back to one second (the daemon always sends
// "1", but the client should not hot-loop against one that does not).
func parseRetryAfter(v string) time.Duration {
	if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
		return time.Duration(n) * time.Second
	}
	return time.Second
}

// readSSEResult consumes a stream, recording time-to-first-frame
// against t0, and returns the terminal result frame.
func readSSEResult(r io.Reader, t0 time.Time, ttff *Hist) (*serve.SweepResult, error) {
	sc := newSSEScanner(r)
	first := true
	for {
		event, data, err := sc.next()
		if err != nil {
			return nil, fmt.Errorf("SSE stream: %w", err)
		}
		if first {
			ttff.Record(time.Since(t0))
			first = false
		}
		switch event {
		case "result":
			res := new(serve.SweepResult)
			if err := json.Unmarshal([]byte(data), res); err != nil {
				return nil, fmt.Errorf("result frame: %w", err)
			}
			return res, nil
		case "error":
			return nil, fmt.Errorf("server error frame: %s", data)
		}
	}
}

// artifactPins detects cross-client divergence: every answer for one
// spec must be byte-identical (table, CSV, and embedded JSON) to the
// first answer the fleet saw for it — the served twin of the engine's
// worker-count-invariance contract.
type artifactPins struct {
	mu      sync.Mutex
	digests map[int][32]byte
}

func (p *artifactPins) verify(specIdx int, res *serve.SweepResult) error {
	h := sha256.New()
	io.WriteString(h, res.Table)
	io.WriteString(h, res.CSV)
	h.Write(res.JSON)
	var sum [32]byte
	h.Sum(sum[:0])
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.digests[specIdx]; ok {
		if prev != sum {
			return fmt.Errorf("artifact mismatch: spec %d answered with different bytes than an earlier response", specIdx)
		}
		return nil
	}
	p.digests[specIdx] = sum
	return nil
}

// awaitDrain polls /healthz until active_runs is 0 and the cumulative
// counters reconcile (every admitted run reached a terminal state), or
// the timeout expires. It returns the last health snapshot.
func awaitDrain(ctx context.Context, hc *http.Client, base string, timeout time.Duration) (serve.Health, bool) {
	deadline := time.Now().Add(timeout)
	var h serve.Health
	for {
		if err := getJSON(ctx, hc, base+"/healthz", &h); err == nil &&
			h.ActiveRuns == 0 &&
			h.Sweeps.Admitted == h.Sweeps.Completed+h.Sweeps.Canceled+h.Sweeps.Failed {
			return h, true
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return h, false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// sseScanner yields SSE frames; the buffer cap accommodates result
// frames carrying whole sweep artifacts.
type sseScanner struct{ s *bufio.Scanner }

func newSSEScanner(r io.Reader) *sseScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64<<10), 8<<20)
	return &sseScanner{s: s}
}

// next returns the next complete frame. A stream ending without a
// terminal frame surfaces as io.ErrUnexpectedEOF so callers never
// mistake a truncated stream for success.
func (r *sseScanner) next() (event, data string, err error) {
	for r.s.Scan() {
		line := r.s.Text()
		switch {
		case line == "":
			if event != "" || data != "" {
				return event, data, nil
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := r.s.Err(); err != nil {
		return "", "", err
	}
	return "", "", io.ErrUnexpectedEOF
}
