package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistExactSmallValues: group 0 stores sub-histSub values verbatim,
// so tiny histograms reconstruct exactly.
func TestHistExactSmallValues(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 5, 31} {
		h.Record(time.Duration(v))
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %v, want 0", got)
	}
	if got := h.Quantile(1); got != 31 {
		t.Errorf("p100 = %v, want 31", got)
	}
	if got := h.Max(); got != 31 {
		t.Errorf("Max = %v, want 31", got)
	}
}

// TestHistNegativeClamps: negative observations count as zero rather
// than corrupting the bucket index.
func TestHistNegativeClamps(t *testing.T) {
	var h Hist
	h.Record(-time.Second)
	if h.Count() != 1 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("negative record: count %d p50 %v max %v, want 1/0/0",
			h.Count(), h.Quantile(0.5), h.Max())
	}
}

// TestHistQuantileAccuracy: reconstructed quantiles stay within the
// sub-bucket resolution (~3% relative error, one sub-bucket width) of
// the exact quantiles of the same data, across magnitudes from
// microseconds to minutes.
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Hist
	var exact []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1µs, 60s): every group gets traffic.
		v := int64(float64(time.Microsecond) * math.Pow(6e7, rng.Float64()))
		exact = append(exact, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(q*float64(len(exact))+0.5) - 1
		want := float64(exact[idx])
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("p%g = %.0f, exact %.0f: relative error %.3f > 0.05", q*100, got, want, rel)
		}
	}
}

// TestHistMergeEquivalence: recording observations across k histograms
// and merging reproduces the single-histogram quantiles and extremes
// exactly — the property that makes per-client histograms safe.
func TestHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var whole Hist
	parts := make([]Hist, 4)
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(int64(10 * time.Second)))
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merged count/max %d/%v != whole %d/%v",
			merged.Count(), merged.Max(), whole.Count(), whole.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("p%g: merged %v != whole %v", q*100, m, w)
		}
	}
}

// TestHistSummaryEmpty: an empty histogram summarizes to all zeros
// rather than panicking or reporting sentinel garbage.
func TestHistSummaryEmpty(t *testing.T) {
	var h Hist
	if s := h.Summarize(); s != (Summary{}) {
		t.Errorf("empty Summarize = %+v, want zero", s)
	}
}
