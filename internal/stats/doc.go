// Package stats provides the measurement statistics of the paper's
// methodology: every test runs repeatedly (≥50 times in the paper) and
// the reported value summarizes the sample.
//
// Sample accumulates repeated measurements of one quantity and exposes
// the summaries the experiment layer reports: mean, 95% confidence
// half-width (the error bars of Figures 1–4), and percentiles (the
// interactive-latency quantiles of the dgrid fleet scenario). GeoMean
// aggregates rate ratios the way NBench composes its indices — the
// geometric mean, so that reciprocal ratios cancel.
//
// The summaries are deterministic functions of the inserted values in
// insertion order, which the experiment engine relies on: assembling
// shard payloads in shard order reproduces the serial path bit for bit.
package stats
