package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates repeated measurements of one quantity.
type Sample struct {
	vals []float64
}

// Add appends a measurement.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// N is the number of measurements.
func (s *Sample) N() int { return len(s.vals) }

// Values returns a copy of the raw measurements.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.vals...) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Median returns the middle value (average of the middle two for even n).
func (s *Sample) Median() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Stddev returns the sample standard deviation (n−1 denominator).
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation.
func (s *Sample) CI95() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(n))
}

// Min returns the smallest measurement (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String formats mean ± stddev (n).
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.Stddev(), s.N())
}

// Of builds a sample from values.
func Of(vals ...float64) *Sample {
	s := &Sample{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// Ratio divides two samples element-wise when lengths match (paired
// measurements), falling back to the ratio of means otherwise.
func Ratio(num, den *Sample) *Sample {
	out := &Sample{}
	if num.N() == den.N() && num.N() > 0 {
		for i := range num.vals {
			if den.vals[i] != 0 {
				out.Add(num.vals[i] / den.vals[i])
			}
		}
		return out
	}
	if d := den.Mean(); d != 0 {
		out.Add(num.Mean() / d)
	}
	return out
}

// GeoMean returns the geometric mean of positive values; zero or negative
// inputs are skipped (matching how benchmark indexes handle bad runs).
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) by nearest-rank on the
// sorted sample; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
