package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 || s.CI95() != 0 ||
		s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Fatal("empty sample not all-zero")
	}
}

func TestBasicMoments(t *testing.T) {
	s := Of(2, 4, 4, 4, 5, 5, 7, 9)
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 4.5 {
		t.Fatalf("median = %v", s.Median())
	}
	if Of(1, 2, 3).Median() != 2 {
		t.Fatal("odd median")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Of(1, 2, 3, 4)
	big := &Sample{}
	for i := 0; i < 16; i++ {
		big.Add(float64(1 + i%4))
	}
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	s := Of(1, 1, 1, 1, 1000)
	if s.Median() != 1 {
		t.Fatalf("median = %v", s.Median())
	}
	if s.Mean() < 100 {
		t.Fatalf("mean should be dragged by the outlier: %v", s.Mean())
	}
}

func TestStatsOrderInvariantProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		fwd := &Sample{}
		rev := &Sample{}
		for _, v := range raw {
			fwd.Add(float64(v))
		}
		for i := len(raw) - 1; i >= 0; i-- {
			rev.Add(float64(raw[i]))
		}
		return fwd.Mean() == rev.Mean() && fwd.Median() == rev.Median() &&
			fwd.Min() == rev.Min() && fwd.Max() == rev.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMeanMaxOrderingProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Sample{}
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioPaired(t *testing.T) {
	num := Of(10, 20, 30)
	den := Of(5, 10, 10)
	r := Ratio(num, den)
	if r.N() != 3 || r.Mean() != (2+2+3)/3.0 {
		t.Fatalf("paired ratio = %v", r)
	}
}

func TestRatioUnpairedFallsBackToMeans(t *testing.T) {
	r := Ratio(Of(10, 20), Of(5))
	if r.N() != 1 || r.Mean() != 3 {
		t.Fatalf("unpaired ratio = %v", r)
	}
	if Ratio(Of(1), Of(0)).N() != 0 {
		t.Fatal("division by zero produced a value")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("geomean = %v", got)
	}
	if got := GeoMean([]float64{2, 0, 8, -5}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean skipping nonpositive = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean nonzero")
	}
}

func TestSampleString(t *testing.T) {
	if Of(1, 2).String() == "" {
		t.Fatal("empty string")
	}
}

func TestPercentile(t *testing.T) {
	s := Of(5, 1, 4, 2, 3)
	if s.Percentile(0) != 1 || s.Percentile(1) != 5 {
		t.Fatalf("extremes: %v %v", s.Percentile(0), s.Percentile(1))
	}
	if s.Percentile(0.5) != 3 {
		t.Fatalf("median percentile = %v", s.Percentile(0.5))
	}
	if (&Sample{}).Percentile(0.5) != 0 {
		t.Fatal("empty percentile nonzero")
	}
	if s.Percentile(-1) != 1 || s.Percentile(2) != 5 {
		t.Fatal("clamping broken")
	}
}
