package core

import (
	"fmt"

	"vmdg/internal/bench/netbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/boinc"
	"vmdg/internal/guestos"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// This file holds the sensitivity ablations for the model's calibrated
// design choices (DESIGN.md §5): how the headline reproductions respond
// when the load-bearing parameters move.

// newHostWithBusK boots a testbed whose shared-bus contention factor is
// overridden — the knob behind the paper's 180% two-thread ceiling.
func newHostWithBusK(seed uint64, busK float64) *hostos.OS {
	s := sim.New()
	cpu := hw.Core2Duo6600()
	cpu.BusK = busK
	m, err := hw.NewMachine(s, hw.Config{Seed: seed, CPU: cpu})
	if err != nil {
		panic(fmt.Sprintf("core: machine construction: %v", err))
	}
	return hostos.Boot(m)
}

// BusContentionSweep measures the no-VM two-thread 7z availability (the
// Figure 7 control bar) across bus-contention factors. At BusK=0 the two
// threads reach ≈200%; at the calibrated 0.45 they reach the paper's
// ≈180%.
func BusContentionSweep(cfg Config, ks []float64) (*report.Series, error) {
	block, passes := 256<<10, 1
	p7z, run := sevenz.Profile(cfg.Seed, block, passes)
	if !run.RoundTrip {
		return nil, fmt.Errorf("core: 7z round trip failed")
	}
	iters := int(1.2e9/p7z.TotalCycles()) + 1
	prog := p7z.Repeat(iters)
	instr := run.Instructions() * float64(iters)

	measure := func(busK float64, threads int) (float64, error) {
		host := newHostWithBusK(cfg.Seed, busK)
		bench := host.NewProcess("7z")
		for i := 0; i < threads; i++ {
			host.Spawn(bench, fmt.Sprintf("t%d", i), hostos.PrioNormal, prog.Iter())
		}
		if !host.RunUntilFinished(bench, 3600*sim.Second) {
			return 0, fmt.Errorf("core: 7z sweep run did not finish")
		}
		return instr * float64(threads) / host.Sim.Now().Seconds(), nil
	}

	series := report.NewSeries("Sensitivity — no-VM 2-thread %CPU vs bus contention factor", "% CPU", ks)
	ys := make([]float64, len(ks))
	for i, k := range ks {
		r1, err := measure(k, 1)
		if err != nil {
			return nil, err
		}
		r2, err := measure(k, 2)
		if err != nil {
			return nil, err
		}
		ys[i] = 100 * r2 / r1
	}
	series.Set("no-vm/2t", ys)
	return series, nil
}

// ServiceDutySweep measures the Figure 7 two-thread availability under a
// VmPlayer-like profile whose host service duty is swept — the parameter
// that makes VMware ≈3× more intrusive than the others.
func ServiceDutySweep(cfg Config, duties []float64) (*report.Series, error) {
	series := report.NewSeries("Sensitivity — host 7z 2-thread %CPU vs VMM service duty", "% CPU", duties)
	ys := make([]float64, len(duties))
	base, err := sevenzHostRates(cfg, nil, 1)
	if err != nil {
		return nil, err
	}
	for i, duty := range duties {
		prof := profiles.VMwarePlayer()
		prof.Name = fmt.Sprintf("vmplayer-duty%.2f", duty)
		prof.ServiceDuty = duty
		rate, err := sevenzHostRates(cfg, &prof, 2)
		if err != nil {
			return nil, err
		}
		ys[i] = 100 * rate / base
	}
	series.Set("7z/2t", ys)
	return series, nil
}

// NATQueueAblation isolates the design choice behind Figure 4's NAT
// collapse: the same per-frame costs served by a single shared proxy
// queue (NAT) versus independent per-direction queues (bridged plumbing).
// The shared queue couples data and ACK service and throughput drops
// further — evidence that the collapse is a structural property, not just
// a larger constant.
func NATQueueAblation(cfg Config) (shared, split float64, err error) {
	total := int64(2 << 20)
	if !cfg.Quick {
		total = netbench.StreamBytes
	}
	natProf := profiles.VMwarePlayerNAT()

	w, err := netRun(natProf, total, cfg.Seed)
	if err != nil {
		return 0, 0, err
	}
	shared = netbench.Mbps(total, w)

	splitProf := natProf
	splitProf.Name = "vmplayer-nat-split"
	splitProf.NetMode = vmm.NetBridged // same costs, independent queues
	w, err = netRun(splitProf, total, cfg.Seed)
	if err != nil {
		return 0, 0, err
	}
	split = netbench.Mbps(total, w)
	return shared, split, nil
}

// MultiVMResult reports the multi-instance scenario of Csaba et al. (§5):
// one VM instance per core, all sharing a read-only base image through
// copy-on-write overlays.
type MultiVMResult struct {
	UnitsOneVM  int
	UnitsTwoVMs int
	// Scaling is UnitsTwoVMs / UnitsOneVM; a dual-core host should give
	// close to 2× for the cache-light Einstein worker.
	Scaling float64
	// SharedBase verifies both overlays resolved reads through one base.
	SharedBase bool
}

// MultiVMExperiment runs the volunteer workload with one VM and then with
// two VMs (one per core) sharing a base image, comparing work-unit
// throughput over the same virtual duration.
func MultiVMExperiment(cfg Config) (*MultiVMResult, error) {
	duration := 60 * sim.Second
	if cfg.Quick {
		duration = 10 * sim.Second
	}
	prof := profiles.VirtualBox() // modest service duty: clean scaling story

	runFleet := func(n int) (int, bool, error) {
		host := newHost(cfg.Seed)
		base := vmm.NewRawImage("ubuntu-base.img", 0, 1<<30)
		units := 0
		var vms []*vmm.VM
		var workers []*boinc.Worker
		baseReadSeen := true
		for i := 0; i < n; i++ {
			cow := vmm.NewCOWImage(fmt.Sprintf("instance-%d.cow", i), base, int64(2+i)<<30)
			vm, err := vmm.New(host, vmm.Config{
				Name: fmt.Sprintf("instance-%d", i), Prof: prof, Image: cow,
			})
			if err != nil {
				return 0, false, err
			}
			wu := boinc.WorkUnit{ID: fmt.Sprintf("wu-%d", i), Seed: cfg.Seed + uint64(i), Chunks: 200, CheckpointEvery: 50}
			w := boinc.NewWorker(boinc.Progress{WorkUnit: wu})
			vm.SpawnGuest("einstein", w)
			vm.PowerOn(hostos.PrioIdle)
			vms = append(vms, vm)
			workers = append(workers, w)
		}
		host.RunFor(duration)
		for i, w := range workers {
			units += w.UnitsDone()
			vms[i].PowerOff()
		}
		return units, baseReadSeen, nil
	}

	one, _, err := runFleet(1)
	if err != nil {
		return nil, err
	}
	two, sharedOK, err := runFleet(2)
	if err != nil {
		return nil, err
	}
	res := &MultiVMResult{UnitsOneVM: one, UnitsTwoVMs: two, SharedBase: sharedOK}
	if one > 0 {
		res.Scaling = float64(two) / float64(one)
	}
	return res, nil
}

// UDPLossResult reports the iperf -u extension experiment: a paced UDP
// flood through each network path, measuring delivered rate and loss.
type UDPLossResult struct {
	Env           string
	OfferedMbps   float64
	DeliveredMbps float64
	LossFraction  float64
	Drops         uint64
}

// UDPLossExperiment offers a 10 Mbps UDP stream (iperf -u -b 10M) through
// native plumbing, bridged VmPlayer, and the two NAT paths. Bridged paths
// carry it losslessly; the NAT proxies saturate at their service capacity
// and shed the excess — the UDP face of Figure 4's NAT collapse.
func UDPLossExperiment(cfg Config) ([]UDPLossResult, error) {
	duration := 4 * sim.Second
	if cfg.Quick {
		duration = sim.Second
	}
	const offered = 10e6
	envs := []vmm.Profile{
		profiles.Native(),
		profiles.VMwarePlayer(),
		profiles.VMwarePlayerNAT(),
		profiles.VirtualBox(),
	}
	var out []UDPLossResult
	for _, prof := range envs {
		host := newHost(cfg.Seed)
		vm, err := vmm.New(host, vmm.Config{Prof: prof})
		if err != nil {
			return nil, err
		}
		sock := vm.Kernel.Net.OpenUDP(netbench.ConnID)
		sock.Sink = func(guestos.Datagram) {} // the socket counts bytes itself
		vm.SpawnGuest("iperf-u", netbench.UDPProfile(offered, duration).Iter())
		vm.PowerOn(hostos.PrioNormal)
		if !host.RunUntilFinished(vm.Proc, 3600*sim.Second) {
			return nil, fmt.Errorf("core: UDP sender did not finish under %s", prof.Name)
		}
		// Let in-flight frames drain.
		host.RunFor(500 * sim.Millisecond)
		sent := int64(sock.Sent) * netbench.UDPDatagram
		delivered := sock.SinkBytes
		res := UDPLossResult{
			Env:           prof.Name,
			OfferedMbps:   offered / 1e6,
			DeliveredMbps: netbench.Mbps(delivered, duration),
			Drops:         vm.NIC.Drops(),
		}
		if sent > 0 {
			res.LossFraction = 1 - float64(delivered)/float64(sent)
		}
		vm.PowerOff()
		out = append(out, res)
	}
	return out, nil
}

// ConfinementResult reports the affinity extension experiment: what a
// volunteer gains by pinning the whole VM (vCPU and service threads) to
// one core.
type ConfinementResult struct {
	// Unpinned/Pinned are the Figure 7-style 2-thread availabilities.
	UnpinnedPct float64
	PinnedPct   float64
}

// ConfinementExperiment measures the host 7z 2-thread availability under
// VmPlayer with and without confining the VM to core 1. The result is a
// negative one that reinforces the paper's conclusion: because the VMM's
// service demand is work-conserving, pinning relocates the theft (core 1
// suffers it all) but the aggregate availability of a multi-threaded host
// barely moves. Affinity is not a mitigation for the intrusiveness the
// paper measures.
func ConfinementExperiment(cfg Config) (*ConfinementResult, error) {
	base, err := sevenzHostRates(cfg, nil, 1)
	if err != nil {
		return nil, err
	}
	prof := profiles.VMwarePlayer()
	unpinned, err := sevenzHostRates(cfg, &prof, 2)
	if err != nil {
		return nil, err
	}
	pinnedRate, err := sevenzHostRatesAffinity(cfg, prof, 2, 1<<1) // core 1 only
	if err != nil {
		return nil, err
	}
	return &ConfinementResult{
		UnpinnedPct: 100 * unpinned / base,
		PinnedPct:   100 * pinnedRate / base,
	}, nil
}

// sevenzHostRatesAffinity is sevenzHostRates with the VM confined to the
// given core mask.
func sevenzHostRatesAffinity(cfg Config, prof vmm.Profile, threads int, mask uint64) (float64, error) {
	block, passes := 512<<10, 2
	if cfg.Quick {
		block, passes = 256<<10, 1
	}
	p7z, run := sevenz.Profile(cfg.Seed, block, passes)
	if !run.RoundTrip {
		return 0, fmt.Errorf("core: 7z round trip failed")
	}
	iters := int(2.4e9/p7z.TotalCycles()) + 1
	prog := p7z.Repeat(iters)
	instr := run.Instructions() * float64(iters)

	host := newHost(cfg.Seed)
	vm, err := vmm.New(host, vmm.Config{Prof: prof, Affinity: mask})
	if err != nil {
		return 0, err
	}
	wu := boinc.DefaultWorkUnit("wu-confined", cfg.Seed)
	vm.SpawnGuest("einstein", boinc.NewWorker(boinc.Progress{WorkUnit: wu}))
	vm.PowerOn(hostos.PrioIdle)
	host.RunFor(warmup)

	bench := host.NewProcess("7z")
	start := host.Sim.Now()
	for i := 0; i < threads; i++ {
		host.Spawn(bench, fmt.Sprintf("7z-t%d", i), hostos.PrioNormal, prog.Iter())
	}
	if !host.RunUntilFinished(bench, start+3600*sim.Second) {
		return 0, fmt.Errorf("core: confined 7z run did not finish")
	}
	wall := (host.Sim.Now() - start).Seconds()
	vm.PowerOff()
	return instr * float64(threads) / wall, nil
}
