package core

import (
	"fmt"

	"vmdg/internal/bench/iobench"
	"vmdg/internal/bench/matrix"
	"vmdg/internal/bench/netbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/stats"
	"vmdg/internal/vmm"
)

// slowdownVsNative measures, for each guest environment, the wall-time
// ratio of running the rep-indexed profiles under that environment versus
// under the native profile — the normalization of Figures 1–3. Profiles
// are paired per repetition: profs[r] runs under every environment with
// machine seed Seed+r.
func slowdownVsNative(cfg Config, profs []*cost.Profile, setup func(*vmm.VM)) (map[string]*stats.Sample, error) {
	natWalls := make([]float64, len(profs))
	for r, p := range profs {
		w, err := guestRun(vmm.Native(), p.Iter(), cfg.Seed+uint64(r), setup)
		if err != nil {
			return nil, err
		}
		natWalls[r] = w.Seconds()
	}
	out := map[string]*stats.Sample{}
	for _, prof := range GuestEnvironments() {
		s := &stats.Sample{}
		for r, p := range profs {
			w, err := guestRun(prof, p.Iter(), cfg.Seed+uint64(r), setup)
			if err != nil {
				return nil, err
			}
			s.Add(w.Seconds() / natWalls[r])
		}
		out[prof.Name] = s
	}
	return out, nil
}

// Figure1 regenerates "Relative performance of 7z on virtual machines":
// the real LZ77+range-coder benchmark runs in each guest; bars are wall
// time normalized to native (1.0 = native, bigger = slower).
func Figure1(cfg Config) (*Result, error) {
	block, passes := 512<<10, 2
	if cfg.Quick {
		block, passes = 128<<10, 1
	}
	profs := make([]*cost.Profile, cfg.reps())
	for r := range profs {
		p, run := sevenz.Profile(cfg.Seed+uint64(r), block, passes)
		if !run.RoundTrip {
			return nil, fmt.Errorf("7z codec round trip failed at rep %d", r)
		}
		profs[r] = p
	}
	samples, err := slowdownVsNative(cfg, profs, nil)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title:    "Figure 1 — Relative performance of 7z on virtual machines",
		Unit:     "x native",
		Baseline: 1,
	}
	res := newResult("fig1", fig)
	res.add("native", 1.0, 0)
	for _, prof := range GuestEnvironments() {
		s := samples[prof.Name]
		res.add(prof.Name, s.Mean(), s.CI95())
	}
	return res, nil
}

// Figure2 regenerates "Relative performance of Matrix on virtual
// machines": the naive double-precision matrix multiply at the paper's
// 512² and 1024² sizes (scaled down in Quick mode), normalized to native.
func Figure2(cfg Config) (*Result, error) {
	sizes := []int{matrix.Small, matrix.Large}
	reps := 1 // the multiply is deterministic for a size; envs pair on it
	if cfg.Quick {
		sizes = []int{96, 160}
	}
	fig := &report.Figure{
		Title:    "Figure 2 — Relative performance of Matrix on virtual machines",
		Unit:     "x native",
		Baseline: 1,
	}
	res := newResult("fig2", fig)
	res.add("native", 1.0, 0)

	perEnv := map[string]*stats.Sample{}
	for _, n := range sizes {
		prof, _ := matrix.Profile(cfg.Seed, n, reps)
		profs := []*cost.Profile{prof}
		samples, err := slowdownVsNative(cfg, profs, nil)
		if err != nil {
			return nil, err
		}
		for env, s := range samples {
			if perEnv[env] == nil {
				perEnv[env] = &stats.Sample{}
			}
			perEnv[env].Add(s.Mean())
		}
	}
	for _, prof := range GuestEnvironments() {
		s := perEnv[prof.Name]
		res.add(prof.Name, s.Mean(), s.CI95())
	}
	return res, nil
}

// figure3Sizes is the file-size sweep, trimmed in Quick mode.
func figure3Sizes(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{128 << 10, 1 << 20, 4 << 20}
	}
	return iobench.Sizes()
}

// Figure3 regenerates "Relative performance of IOBench on virtual
// machines": write+fsync then drop-caches+read for each file size through
// the guest filesystem and the emulated disk. The bar is the slowdown of
// the whole sweep; the attached Series holds the per-size detail.
func Figure3(cfg Config) (*Result, error) {
	sizes := figure3Sizes(cfg)
	envs := append([]vmm.Profile{vmm.Native()}, GuestEnvironments()...)

	// wall[env][size] = mean seconds over reps.
	wall := map[string][]float64{}
	for _, prof := range envs {
		wall[prof.Name] = make([]float64, len(sizes))
		for i, size := range sizes {
			prog := &cost.Profile{Name: "iobench"}
			prog.Steps = append(prog.Steps, iobench.WriteProfile(size).Steps...)
			prog.Steps = append(prog.Steps, iobench.ReadProfile(size).Steps...)
			s := &stats.Sample{}
			for r := 0; r < cfg.reps(); r++ {
				w, err := guestRun(prof, prog.Iter(), cfg.Seed+uint64(r), nil)
				if err != nil {
					return nil, err
				}
				s.Add(w.Seconds())
			}
			wall[prof.Name][i] = s.Mean()
		}
	}

	fig := &report.Figure{
		Title:    "Figure 3 — Relative performance of IOBench on virtual machines",
		Unit:     "x native",
		Baseline: 1,
	}
	res := newResult("fig3", fig)
	res.add("native", 1.0, 0)

	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s >> 10) // KB
	}
	series := report.NewSeries("IOBench sweep — wall seconds per file size (write+read)", "s", xs)
	series.Set("native", wall["native"])
	var natTotal float64
	for _, w := range wall["native"] {
		natTotal += w
	}
	for _, prof := range GuestEnvironments() {
		series.Set(prof.Name, wall[prof.Name])
		var total float64
		for _, w := range wall[prof.Name] {
			total += w
		}
		res.add(prof.Name, total/natTotal, 0)
	}
	res.Series = series
	return res, nil
}

// netRun transfers total bytes from a guest under prof to the LAN peer
// and returns the wall time until the last byte is acknowledged (iperf
// measures the full stream, not just the final socket write).
func netRun(prof vmm.Profile, total int64, seed uint64) (sim.Time, error) {
	host := newHost(seed)
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return 0, err
	}
	conn := vm.Kernel.Net.Dial(netbench.ConnID)
	vm.SpawnGuest("iperf", netbench.Profile(total).Iter())
	vm.PowerOn(hostos.PrioNormal)
	deadline := 3600 * sim.Second
	for host.Sim.Now() < deadline {
		if conn.Drained() && conn.Acked == total {
			break
		}
		next, ok := host.Sim.NextEventTime()
		if !ok || next > deadline {
			break
		}
		host.Sim.RunUntil(next)
	}
	if conn.Acked != total {
		return 0, fmt.Errorf("core: %s acked %d of %d bytes", prof.Name, conn.Acked, total)
	}
	done := host.Sim.Now()
	vm.PowerOff()
	return done, nil
}

// Figure4 regenerates "Absolute performance for NetBench on virtual
// machines": a 10 MB TCP stream (iperf-style) from the guest to a LAN
// station; bars are achieved Mbps, absolute (higher is better).
func Figure4(cfg Config) (*Result, error) {
	total := int64(netbench.StreamBytes)
	if cfg.Quick {
		total = 2 << 20
	}
	fig := &report.Figure{
		Title: "Figure 4 — Absolute performance for NetBench on virtual machines",
		Unit:  "Mbps",
	}
	res := newResult("fig4", fig)
	for _, prof := range NetEnvironments() {
		s := &stats.Sample{}
		for r := 0; r < cfg.reps(); r++ {
			w, err := netRun(prof, total, cfg.Seed+uint64(r))
			if err != nil {
				return nil, err
			}
			s.Add(netbench.Mbps(total, w))
		}
		res.add(prof.Name, s.Mean(), s.CI95())
	}
	return res, nil
}
