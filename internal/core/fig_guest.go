package core

import (
	"fmt"

	"vmdg/internal/bench/iobench"
	"vmdg/internal/bench/matrix"
	"vmdg/internal/bench/netbench"
	"vmdg/internal/bench/sevenz"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/stats"
	"vmdg/internal/vmm"
)

// envAndNative returns the native profile followed by the four guest
// environments — the run set of Figures 1–3.
func envAndNative() []vmm.Profile {
	return append([]vmm.Profile{vmm.Native()}, GuestEnvironments()...)
}

// envWallSeconds runs p once under native and once under each guest
// environment with the given machine seed, returning wall seconds per
// environment name — the raw material of the slowdown-vs-native
// normalization of Figures 1–3.
func envWallSeconds(p *cost.Profile, seed uint64) (ShardPayload, error) {
	out := ShardPayload{}
	for _, prof := range envAndNative() {
		w, err := guestRun(prof, p.Iter(), seed, nil)
		if err != nil {
			return nil, err
		}
		out[prof.Name] = []float64{w.Seconds()}
	}
	return out, nil
}

// Figure captions (paper presentation titles).
const (
	fig1Title = "Figure 1 — Relative performance of 7z on virtual machines"
	fig2Title = "Figure 2 — Relative performance of Matrix on virtual machines"
	fig3Title = "Figure 3 — Relative performance of IOBench on virtual machines"
	fig4Title = "Figure 4 — Absolute performance for NetBench on virtual machines"
)

// ---- Figure 1 — 7z guest slowdown ----

// fig1Workload sizes the 7z benchmark input.
func fig1Workload(cfg Config) (block, passes int) {
	if cfg.Quick {
		return 128 << 10, 1
	}
	return 512 << 10, 2
}

// fig1Shard measures one repetition: the 7z cost profile captured with
// seed Seed+r runs under native and every guest environment on the
// machine seeded Seed+r.
func fig1Shard(cfg Config, r int) (ShardPayload, error) {
	block, passes := fig1Workload(cfg)
	p, run := sevenz.Profile(cfg.Seed+uint64(r), block, passes)
	if !run.RoundTrip {
		return nil, fmt.Errorf("7z codec round trip failed at rep %d", r)
	}
	return envWallSeconds(p, cfg.Seed+uint64(r))
}

// slowdownAssemble builds a Figures 1/2-style slowdown figure: every
// shard holds one native+environments wall set, and each environment's
// bar is the mean ± CI of its per-shard env/native ratios.
func slowdownAssemble(id, title string, shards []ShardPayload) (*Result, error) {
	fig := &report.Figure{Title: title, Unit: "x native", Baseline: 1}
	res := newResult(id, fig)
	res.add("native", 1.0, 0)
	for _, prof := range GuestEnvironments() {
		s := &stats.Sample{}
		for _, sh := range shards {
			nat, err := sh.one("native")
			if err != nil {
				return nil, err
			}
			env, err := sh.one(prof.Name)
			if err != nil {
				return nil, err
			}
			s.Add(env / nat)
		}
		res.add(prof.Name, s.Mean(), s.CI95())
	}
	return res, nil
}

var fig1Def = Sharded{
	ID:     "fig1",
	Title:  fig1Title,
	Shards: func(cfg Config) int { return cfg.reps() },
	Run:    fig1Shard,
	Assemble: func(cfg Config, shards []ShardPayload) (*Result, error) {
		return slowdownAssemble("fig1", fig1Title, shards)
	},
}

// Figure1 regenerates "Relative performance of 7z on virtual machines":
// the real LZ77+range-coder benchmark runs in each guest; bars are wall
// time normalized to native (1.0 = native, bigger = slower).
func Figure1(cfg Config) (*Result, error) { return fig1Def.RunSerial(cfg) }

// ---- Figure 2 — Matrix guest slowdown ----

// fig2Sizes returns the paper's 512² and 1024² multiply sizes, scaled
// down in Quick mode.
func fig2Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{96, 160}
	}
	return []int{matrix.Small, matrix.Large}
}

// fig2Shard measures one matrix size under native and every guest
// environment. The multiply is deterministic for a size, so environments
// pair on a single capture.
func fig2Shard(cfg Config, i int) (ShardPayload, error) {
	prof, _ := matrix.Profile(cfg.Seed, fig2Sizes(cfg)[i], 1)
	return envWallSeconds(prof, cfg.Seed)
}

var fig2Def = Sharded{
	ID:     "fig2",
	Title:  fig2Title,
	Shards: func(cfg Config) int { return len(fig2Sizes(cfg)) },
	Run:    fig2Shard,
	// Each shard is one matrix size; the bars average the per-size
	// slowdowns per environment.
	Assemble: func(cfg Config, shards []ShardPayload) (*Result, error) {
		return slowdownAssemble("fig2", fig2Title, shards)
	},
}

// Figure2 regenerates "Relative performance of Matrix on virtual
// machines": the naive double-precision matrix multiply at the paper's
// 512² and 1024² sizes (scaled down in Quick mode), normalized to native.
func Figure2(cfg Config) (*Result, error) { return fig2Def.RunSerial(cfg) }

// ---- Figure 3 — IOBench guest slowdown ----

// figure3Sizes is the file-size sweep, trimmed in Quick mode.
func figure3Sizes(cfg Config) []int64 {
	if cfg.Quick {
		return []int64{128 << 10, 1 << 20, 4 << 20}
	}
	return iobench.Sizes()
}

// fig3Shard measures one environment (shard 0 is native) across the
// whole file-size sweep, averaging each size over the repetitions.
func fig3Shard(cfg Config, e int) (ShardPayload, error) {
	prof := envAndNative()[e]
	sizes := figure3Sizes(cfg)
	walls := make([]float64, len(sizes))
	for i, size := range sizes {
		prog := &cost.Profile{Name: "iobench"}
		prog.Steps = append(prog.Steps, iobench.WriteProfile(size).Steps...)
		prog.Steps = append(prog.Steps, iobench.ReadProfile(size).Steps...)
		s := &stats.Sample{}
		for r := 0; r < cfg.reps(); r++ {
			w, err := guestRun(prof, prog.Iter(), cfg.Seed+uint64(r), nil)
			if err != nil {
				return nil, err
			}
			s.Add(w.Seconds())
		}
		walls[i] = s.Mean()
	}
	return ShardPayload{"walls": walls}, nil
}

// fig3Assemble turns the per-environment sweeps into the headline
// whole-sweep slowdown bar plus the per-size detail series.
func fig3Assemble(cfg Config, shards []ShardPayload) (*Result, error) {
	sizes := figure3Sizes(cfg)
	envs := envAndNative()
	wall := map[string][]float64{}
	for e, prof := range envs {
		w, err := shards[e].vec("walls", len(sizes))
		if err != nil {
			return nil, err
		}
		wall[prof.Name] = w
	}

	fig := &report.Figure{Title: fig3Title, Unit: "x native", Baseline: 1}
	res := newResult("fig3", fig)
	res.add("native", 1.0, 0)

	xs := make([]float64, len(sizes))
	for i, s := range sizes {
		xs[i] = float64(s >> 10) // KB
	}
	series := report.NewSeries("IOBench sweep — wall seconds per file size (write+read)", "s", xs)
	series.Set("native", wall["native"])
	var natTotal float64
	for _, w := range wall["native"] {
		natTotal += w
	}
	for _, prof := range GuestEnvironments() {
		series.Set(prof.Name, wall[prof.Name])
		var total float64
		for _, w := range wall[prof.Name] {
			total += w
		}
		res.add(prof.Name, total/natTotal, 0)
	}
	res.Series = series
	return res, nil
}

var fig3Def = Sharded{
	ID:       "fig3",
	Title:    fig3Title,
	Shards:   func(cfg Config) int { return len(envAndNative()) },
	Run:      fig3Shard,
	Assemble: fig3Assemble,
}

// Figure3 regenerates "Relative performance of IOBench on virtual
// machines": write+fsync then drop-caches+read for each file size through
// the guest filesystem and the emulated disk. The bar is the slowdown of
// the whole sweep; the attached Series holds the per-size detail.
func Figure3(cfg Config) (*Result, error) { return fig3Def.RunSerial(cfg) }

// ---- Figure 4 — NetBench throughput ----

// netRun transfers total bytes from a guest under prof to the LAN peer
// and returns the wall time until the last byte is acknowledged (iperf
// measures the full stream, not just the final socket write).
func netRun(prof vmm.Profile, total int64, seed uint64) (sim.Time, error) {
	host := newHost(seed)
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return 0, err
	}
	conn := vm.Kernel.Net.Dial(netbench.ConnID)
	vm.SpawnGuest("iperf", netbench.Profile(total).Iter())
	vm.PowerOn(hostos.PrioNormal)
	deadline := 3600 * sim.Second
	for host.Sim.Now() < deadline {
		if conn.Drained() && conn.Acked == total {
			break
		}
		next, ok := host.Sim.NextEventTime()
		if !ok || next > deadline {
			break
		}
		host.Sim.RunUntil(next)
	}
	if conn.Acked != total {
		return 0, fmt.Errorf("core: %s acked %d of %d bytes", prof.Name, conn.Acked, total)
	}
	done := host.Sim.Now()
	vm.PowerOff()
	return done, nil
}

// fig4Stream sizes the TCP stream.
func fig4Stream(cfg Config) int64 {
	if cfg.Quick {
		return 2 << 20
	}
	return int64(netbench.StreamBytes)
}

// fig4Shard measures one network environment over every repetition.
func fig4Shard(cfg Config, e int) (ShardPayload, error) {
	prof := NetEnvironments()[e]
	total := fig4Stream(cfg)
	mbps := make([]float64, cfg.reps())
	for r := range mbps {
		w, err := netRun(prof, total, cfg.Seed+uint64(r))
		if err != nil {
			return nil, err
		}
		mbps[r] = netbench.Mbps(total, w)
	}
	return ShardPayload{"mbps": mbps}, nil
}

// fig4Assemble reports mean ± CI Mbps per environment.
func fig4Assemble(cfg Config, shards []ShardPayload) (*Result, error) {
	fig := &report.Figure{Title: fig4Title, Unit: "Mbps"}
	res := newResult("fig4", fig)
	for e, prof := range NetEnvironments() {
		mbps, err := shards[e].vec("mbps", cfg.reps())
		if err != nil {
			return nil, err
		}
		s := &stats.Sample{}
		for _, v := range mbps {
			s.Add(v)
		}
		res.add(prof.Name, s.Mean(), s.CI95())
	}
	return res, nil
}

var fig4Def = Sharded{
	ID:       "fig4",
	Title:    fig4Title,
	Shards:   func(cfg Config) int { return len(NetEnvironments()) },
	Run:      fig4Shard,
	Assemble: fig4Assemble,
}

// Figure4 regenerates "Absolute performance for NetBench on virtual
// machines": a 10 MB TCP stream (iperf-style) from the guest to a LAN
// station; bars are achieved Mbps, absolute (higher is better).
func Figure4(cfg Config) (*Result, error) { return fig4Def.RunSerial(cfg) }
