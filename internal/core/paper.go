package core

// Band is an acceptance interval for a reproduced value, bracketing the
// paper's published number. Bands are deliberately wide enough to absorb
// simulator idiosyncrasy while still pinning the paper's *shape*: who
// wins, by roughly what factor.
type Band struct {
	Paper  float64 // the value read off the paper's figure or text
	Lo, Hi float64 // acceptance interval for the reproduction
}

// In reports whether v falls inside the band.
func (b Band) In(v float64) bool { return v >= b.Lo && v <= b.Hi }

// PaperTargets collects every quantitative claim the reproduction is
// tested against, keyed by figure then by bar label. Sources: §4.1 and
// §4.2 of the paper (values quoted in the text where available, read off
// the plots otherwise).
var PaperTargets = map[string]map[string]Band{
	// Figure 1 — 7z guest slowdown vs native (text: 15%, 20%, 36%, >2×).
	"fig1": {
		"vmplayer":   {Paper: 1.15, Lo: 1.05, Hi: 1.30},
		"virtualbox": {Paper: 1.20, Lo: 1.08, Hi: 1.35},
		"virtualpc":  {Paper: 1.36, Lo: 1.20, Hi: 1.55},
		"qemu":       {Paper: 2.10, Lo: 1.70, Hi: 2.60},
	},
	// Figure 2 — Matrix guest slowdown (text: QEMU 30%, others < 20%).
	"fig2": {
		"vmplayer":   {Paper: 1.10, Lo: 1.00, Hi: 1.20},
		"virtualbox": {Paper: 1.12, Lo: 1.00, Hi: 1.22},
		"virtualpc":  {Paper: 1.18, Lo: 1.02, Hi: 1.28},
		"qemu":       {Paper: 1.30, Lo: 1.15, Hi: 1.55},
	},
	// Figure 3 — IOBench guest slowdown (text: 30%, ≈2×, ≈2×, ≈5×).
	"fig3": {
		"vmplayer":   {Paper: 1.30, Lo: 1.10, Hi: 1.60},
		"virtualbox": {Paper: 2.00, Lo: 1.55, Hi: 2.60},
		"virtualpc":  {Paper: 2.00, Lo: 1.55, Hi: 2.60},
		"qemu":       {Paper: 4.90, Lo: 3.50, Hi: 6.50},
	},
	// Figure 4 — NetBench absolute Mbps (text: 97.60, 96.02, 3.68, 65.91,
	// 35.56, ≈native/75).
	"fig4": {
		"native":       {Paper: 97.60, Lo: 90, Hi: 98},
		"vmplayer":     {Paper: 96.02, Lo: 88, Hi: 98},
		"vmplayer-nat": {Paper: 3.68, Lo: 2.6, Hi: 5.0},
		"qemu":         {Paper: 65.91, Lo: 55, Hi: 76},
		"virtualpc":    {Paper: 35.56, Lo: 28, Hi: 44},
		"virtualbox":   {Paper: 1.30, Lo: 0.8, Hi: 2.1},
	},
	// Figure 5 — host NBench MEM overhead with VM@100% (text: worst < 5%).
	// One band per environment; the normal/idle variants must both fit.
	"fig5": {
		"vmplayer":   {Paper: 0.04, Lo: 0, Hi: 0.075},
		"virtualbox": {Paper: 0.035, Lo: 0, Hi: 0.065},
		"virtualpc":  {Paper: 0.035, Lo: 0, Hi: 0.065},
		"qemu":       {Paper: 0.045, Lo: 0, Hi: 0.075},
	},
	// Figure 6 — host NBench INT overhead (text: ≈2% average).
	"fig6": {
		"vmplayer":   {Paper: 0.02, Lo: 0, Hi: 0.05},
		"virtualbox": {Paper: 0.02, Lo: 0, Hi: 0.045},
		"virtualpc":  {Paper: 0.02, Lo: 0, Hi: 0.045},
		"qemu":       {Paper: 0.025, Lo: 0, Hi: 0.05},
	},
	// §4.2.2 — host NBench FP overhead ("practically no overhead"; the
	// paper omits the plot to conserve space).
	"figFP": {
		"vmplayer":   {Paper: 0.005, Lo: 0, Hi: 0.02},
		"virtualbox": {Paper: 0.005, Lo: 0, Hi: 0.02},
		"virtualpc":  {Paper: 0.005, Lo: 0, Hi: 0.02},
		"qemu":       {Paper: 0.005, Lo: 0, Hi: 0.025},
	},
	// Figure 7 — % CPU available to host 7z with guest at 100% vCPU.
	// Labels are "<env>/1t" and "<env>/2t"; no-vm is the control.
	"fig7": {
		"no-vm/1t":      {Paper: 100, Lo: 98, Hi: 101},
		"no-vm/2t":      {Paper: 180, Lo: 172, Hi: 188},
		"vmplayer/1t":   {Paper: 100, Lo: 93, Hi: 101},
		"vmplayer/2t":   {Paper: 120, Lo: 105, Hi: 138},
		"qemu/1t":       {Paper: 97, Lo: 90, Hi: 101},
		"qemu/2t":       {Paper: 160, Lo: 145, Hi: 172},
		"virtualbox/1t": {Paper: 100, Lo: 93, Hi: 101},
		"virtualbox/2t": {Paper: 160, Lo: 145, Hi: 172},
		"virtualpc/1t":  {Paper: 100, Lo: 93, Hi: 101},
		"virtualpc/2t":  {Paper: 160, Lo: 145, Hi: 172},
	},
	// Figure 8 — host 7z MIPS ratio vs no-VM (text: VmPlayer −30%,
	// others −10%, for the dual-threaded case).
	"fig8": {
		"vmplayer/1t":   {Paper: 0.97, Lo: 0.90, Hi: 1.01},
		"vmplayer/2t":   {Paper: 0.70, Lo: 0.58, Hi: 0.80},
		"qemu/1t":       {Paper: 0.95, Lo: 0.88, Hi: 1.01},
		"qemu/2t":       {Paper: 0.90, Lo: 0.80, Hi: 0.97},
		"virtualbox/1t": {Paper: 0.97, Lo: 0.90, Hi: 1.01},
		"virtualbox/2t": {Paper: 0.90, Lo: 0.80, Hi: 0.97},
		"virtualpc/1t":  {Paper: 0.97, Lo: 0.90, Hi: 1.01},
		"virtualpc/2t":  {Paper: 0.90, Lo: 0.80, Hi: 0.97},
	},
}
