package core

import "testing"

func TestTimesyncAblation(t *testing.T) {
	res, err := TimesyncAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueSeconds <= 0 {
		t.Fatal("no ground-truth duration")
	}
	// The guest clock must be materially wrong under host load (the paper
	// refuses to trust it), and the UDP correction must repair it.
	if res.GuestErr < 0.10 {
		t.Errorf("guest clock error only %.1f%% under saturation; drift model too weak", res.GuestErr*100)
	}
	if res.CorrectedErr > 0.02 {
		t.Errorf("UDP-corrected error %.2f%% — external reference should be ≤2%%", res.CorrectedErr*100)
	}
	if res.CorrectedErr >= res.GuestErr {
		t.Errorf("correction did not help: guest %.3f vs corrected %.3f", res.GuestErr, res.CorrectedErr)
	}
}

func TestMigrationAblation(t *testing.T) {
	res, err := MigrationAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.UnitCompleted {
		t.Fatal("migrated work unit never completed")
	}
	if res.ChunksBeforeMigration <= 0 {
		t.Fatal("no progress before migration")
	}
	if res.ChunksAfterRestore != res.ChunksBeforeMigration {
		t.Errorf("progress lost in flight: before=%d restored=%d",
			res.ChunksBeforeMigration, res.ChunksAfterRestore)
	}
	if res.CheckpointBytes <= 0 {
		t.Fatal("empty checkpoint blob")
	}
	if res.OverlayBytes <= 0 {
		t.Fatal("no COW overlay data (the worker checkpoints to disk)")
	}
}

func TestMemoryFootprint(t *testing.T) {
	res, err := MemoryFootprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range GuestEnvironments() {
		if got := res.Values[env.Name]; got != 300 {
			t.Errorf("%s commits %v MB, want the configured 300", env.Name, got)
		}
	}
}
