// Package core is the reproduction's experiment orchestrator: it wires
// benchmarks, guest/host operating systems, and VMM profiles into the
// eight figures of Domingues, Araujo & Silva, "Evaluating the Performance
// and Intrusiveness of Virtual Machines for Desktop Grid Computing"
// (IPDPS 2009 workshops), plus the methodology ablations (external UDP
// timing, checkpoint/migration, memory footprint).
//
// Every experiment follows the paper's two-part structure:
//
//   - Guest performance (Figures 1–4): a benchmark runs inside a guest
//     kernel under each environment profile; results are normalized
//     against the same guest kernel under the native (pass-through)
//     profile on the same simulated hardware.
//   - Host intrusiveness (Figures 5–8): the benchmark runs as a host
//     process while a VM executes an Einstein@home work unit at 100%
//     virtual CPU at idle host priority; results compare against the
//     benchmark with no VM present.
package core

import (
	"fmt"

	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/hw"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// Config parameterizes a reproduction run.
type Config struct {
	// Seed drives every stochastic element (disk jitter, benchmark
	// inputs). Identical configs reproduce identical results.
	Seed uint64
	// Reps is the number of measurement repetitions per data point (the
	// paper uses ≥50; the simulator's narrow jitter makes 3–5 enough for
	// stable means).
	Reps int
	// Quick trims workload sizes for use inside unit tests.
	Quick bool
}

// DefaultConfig returns the standard reproduction configuration.
func DefaultConfig() Config { return Config{Seed: 1, Reps: 3} }

// Provenance canonicalizes the config fields that can change an
// experiment payload — the config's contribution to every shard cache
// key. The engine embeds it verbatim in its keys, so a stored payload
// records exactly which configuration produced it.
func (c Config) Provenance() string {
	return fmt.Sprintf("seed=%d|reps=%d|quick=%t", c.Seed, c.reps(), c.Quick)
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

// Result is one regenerated figure.
type Result struct {
	// ID names the experiment ("fig1" ... "fig8", "figFP", ablations).
	ID string
	// Figure is the bar chart matching the paper's presentation.
	Figure *report.Figure
	// Series carries per-parameter detail where the paper's figure
	// aggregates one (IOBench file sizes).
	Series *report.Series
	// Values indexes the headline value of each bar by label.
	Values map[string]float64
}

func newResult(id string, fig *report.Figure) *Result {
	return &Result{ID: id, Figure: fig, Values: map[string]float64{}}
}

func (r *Result) add(label string, v, err float64) {
	r.Figure.AddErr(label, v, err)
	r.Values[label] = v
}

// GuestEnvironments returns the four virtualized environments of Figures
// 1–3 and 5–8, in the paper's presentation order.
func GuestEnvironments() []vmm.Profile { return profiles.All() }

// NetEnvironments returns the environments of Figure 4: native plus the
// four VMMs with VMware in both bridged and NAT modes.
func NetEnvironments() []vmm.Profile {
	return []vmm.Profile{
		profiles.Native(),
		profiles.VMwarePlayer(),
		profiles.VMwarePlayerNAT(),
		profiles.QEMU(),
		profiles.VirtualPC(),
		profiles.VirtualBox(),
	}
}

// newHost boots a fresh simulated testbed machine.
func newHost(seed uint64) *hostos.OS {
	s := sim.New()
	m, err := hw.NewMachine(s, hw.Config{Seed: seed})
	if err != nil {
		panic(fmt.Sprintf("core: machine construction: %v", err)) // static config
	}
	return hostos.Boot(m)
}

// guestRun executes prog as the sole guest workload of a VM built from
// prof on an otherwise empty host, returning the virtual wall time to
// completion. setup, if non-nil, runs after VM construction and before
// power-on (network dial-up, cache priming).
func guestRun(prof vmm.Profile, prog cost.Program, seed uint64, setup func(*vmm.VM)) (sim.Time, error) {
	host := newHost(seed)
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return 0, err
	}
	vm.SpawnGuest("bench", prog)
	if setup != nil {
		setup(vm)
	}
	vm.PowerOn(hostos.PrioNormal)
	// Generous ceiling: the slowest experiment (VirtualBox NAT, 10 MB at
	// ≈1.3 Mbps) runs for ≈65 virtual seconds.
	if !host.RunUntilFinished(vm.Proc, 3600*sim.Second) {
		return 0, fmt.Errorf("core: %s guest did not finish within 1h of virtual time", prof.Name)
	}
	done := host.Sim.Now()
	vm.PowerOff()
	return done, nil
}
