package core

import (
	"fmt"

	"vmdg/internal/boinc"
	"vmdg/internal/cost"
	"vmdg/internal/hostos"
	"vmdg/internal/report"
	"vmdg/internal/sim"
	"vmdg/internal/timesync"
	"vmdg/internal/vmm"
	"vmdg/internal/vmm/profiles"
)

// TimesyncResult quantifies the paper's methodology argument (§2, §4.2.2):
// in-guest timing of a task under host load is badly wrong, and an
// external UDP time reference repairs it.
type TimesyncResult struct {
	TrueSeconds      float64 // simulator ground truth
	GuestSeconds     float64 // measured with the guest's drifting clock
	CorrectedSeconds float64 // guest clock + UDP offset correction
	GuestErr         float64 // |guest − true| / true
	CorrectedErr     float64 // |corrected − true| / true
}

// TimesyncAblation measures one Einstein work unit inside a VmPlayer VM at
// idle priority while the host is CPU-saturated, timing it three ways.
func TimesyncAblation(cfg Config) (*TimesyncResult, error) {
	host := newHost(cfg.Seed)
	prof := profiles.VMwarePlayer()
	vm, err := vmm.New(host, vmm.Config{Prof: prof})
	if err != nil {
		return nil, err
	}
	wu := boinc.WorkUnit{ID: "wu-timing", Seed: cfg.Seed, Chunks: 6000, CheckpointEvery: 0}
	if cfg.Quick {
		wu.Chunks = 2000
	}
	worker := boinc.NewFiniteWorker(boinc.Progress{WorkUnit: wu}, 1)
	vm.SpawnGuest("einstein", worker)

	sock := vm.Kernel.Net.OpenUDP(99)
	client := timesync.NewSimClient(sock, vm, guestExactClock{host})
	vm.PowerOn(hostos.PrioIdle)

	// Record guest/corrected stamps around the unit via harness probes.
	var trueStart, trueEnd sim.Time
	var guestStart, guestEnd sim.Time
	var corrStart, corrEnd sim.Time

	// Saturate the host with two normal-priority compute hogs so the
	// idle-priority vCPU starves intermittently.
	hog := host.NewProcess("hog")
	hogProg := func() cost.Program {
		return cost.Loop(&cost.Profile{Name: "hog", Steps: []cost.Step{
			{Kind: cost.StepCompute, Cycles: 2.4e8, Mix: cost.Mix{Int: 0.8, Mem: 0.2}},
			{Kind: cost.StepSleep, Dur: 40 * sim.Millisecond},
		}})
	}
	for i := 0; i < 2; i++ {
		host.Spawn(hog, fmt.Sprintf("hog-%d", i), hostos.PrioNormal, hogProg())
	}

	// Periodic UDP sync exchanges, like a measurement daemon.
	var poker func()
	poker = func() {
		client.Poke()
		host.Sim.After(50*sim.Millisecond, "timesync-poke", poker)
	}
	host.Sim.After(5*sim.Millisecond, "timesync-start", poker)

	// Stamp the start once the VM is warm.
	host.Sim.After(50*sim.Millisecond, "stamp-start", func() {
		trueStart = host.Sim.Now()
		guestStart = vm.GuestNow()
		corrStart = client.Now()
	})

	deadline := 600 * sim.Second
	for host.Sim.Now() < deadline && !vm.GuestFinished() {
		next, ok := host.Sim.NextEventTime()
		if !ok {
			break
		}
		host.Sim.RunUntil(next)
	}
	if !vm.GuestFinished() {
		return nil, fmt.Errorf("core: timing work unit did not finish")
	}
	trueEnd = host.Sim.Now()
	guestEnd = vm.GuestNow()
	corrEnd = client.Now()
	vm.PowerOff()

	res := &TimesyncResult{
		TrueSeconds:      (trueEnd - trueStart).Seconds(),
		GuestSeconds:     (guestEnd - guestStart).Seconds(),
		CorrectedSeconds: (corrEnd - corrStart).Seconds(),
	}
	res.GuestErr = relErr(res.GuestSeconds, res.TrueSeconds)
	res.CorrectedErr = relErr(res.CorrectedSeconds, res.TrueSeconds)
	return res, nil
}

// guestExactClock adapts the host's exact simulator clock to the
// ClockSource interface the sync server needs.
type guestExactClock struct{ host *hostos.OS }

// GuestNow returns exact host time.
func (c guestExactClock) GuestNow() sim.Time { return c.host.Sim.Now() }

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// MigrationResult reports the checkpoint/restore ablation (§1: VM state
// saving enables fault tolerance and migration of volunteer tasks).
type MigrationResult struct {
	ChunksBeforeMigration int
	ChunksAfterRestore    int
	UnitCompleted         bool
	CheckpointBytes       int
	OverlayBytes          int64
}

// MigrationAblation runs half an Einstein work unit in a COW-imaged VM on
// machine A, checkpoints it, migrates the encoded checkpoint to machine B,
// restores, and finishes the unit there.
func MigrationAblation(cfg Config) (*MigrationResult, error) {
	prof := profiles.VMwarePlayer()
	wu := boinc.WorkUnit{ID: "wu-mig", Seed: cfg.Seed, Chunks: 400, CheckpointEvery: 50}
	if cfg.Quick {
		wu.Chunks = 120
	}

	// Machine A.
	hostA := newHost(cfg.Seed)
	baseA := vmm.NewRawImage("base", 0, 1<<30)
	cowA := vmm.NewCOWImage("ovl-a", baseA, 2<<30)
	vmA, err := vmm.New(hostA, vmm.Config{Name: "volunteer-a", Prof: prof, Image: cowA})
	if err != nil {
		return nil, err
	}
	workerA := boinc.NewWorker(boinc.Progress{WorkUnit: wu})
	vmA.SpawnGuest("einstein", workerA)
	vmA.PowerOn(hostos.PrioIdle)

	// Run machine A until the worker passes the halfway mark.
	deadline := 600 * sim.Second
	for hostA.Sim.Now() < deadline && workerA.State.ChunksDone < wu.Chunks/2 {
		next, ok := hostA.Sim.NextEventTime()
		if !ok {
			break
		}
		hostA.Sim.RunUntil(next)
	}
	if workerA.State.ChunksDone < wu.Chunks/2 {
		return nil, fmt.Errorf("core: machine A never reached the halfway mark")
	}
	res := &MigrationResult{ChunksBeforeMigration: workerA.State.ChunksDone}

	ck := vmA.Checkpoint(workerA.State.Marshal())
	vmA.PowerOff()
	blob, err := ck.Encode()
	if err != nil {
		return nil, err
	}
	res.CheckpointBytes = len(blob)
	res.OverlayBytes = ck.OverlayBytes

	// Machine B: decode, rebuild, restore, resume.
	ck2, err := vmm.DecodeCheckpoint(blob)
	if err != nil {
		return nil, err
	}
	progress, err := boinc.UnmarshalProgress(ck2.Payload)
	if err != nil {
		return nil, err
	}
	hostB := newHost(cfg.Seed + 1)
	baseB := vmm.NewRawImage("base", 0, 1<<30)
	cowB := vmm.NewCOWImage("ovl-a", baseB, 2<<30)
	vmB, err := vmm.New(hostB, vmm.Config{Name: "volunteer-b", Prof: prof, Image: cowB})
	if err != nil {
		return nil, err
	}
	if err := vmB.Restore(ck2); err != nil {
		return nil, err
	}
	workerB := boinc.NewFiniteWorker(progress, 1)
	vmB.SpawnGuest("einstein", workerB)
	vmB.PowerOn(hostos.PrioIdle)
	if !hostB.RunUntilFinished(vmB.Proc, deadline) {
		return nil, fmt.Errorf("core: machine B did not finish the unit")
	}
	vmB.PowerOff()

	res.ChunksAfterRestore = progress.ChunksDone
	res.UnitCompleted = workerB.UnitsDone() == 1
	return res, nil
}

// MemoryFootprint regenerates the §4.2.1 observation: every environment
// commits exactly its configured guest RAM, constant for the VM's life.
func MemoryFootprint() (*Result, error) {
	fig := &report.Figure{Title: "§4.2.1 — Committed host RAM per environment", Unit: "MB"}
	res := newResult("memory", fig)
	for _, prof := range GuestEnvironments() {
		host := newHost(1)
		vm, err := vmm.New(host, vmm.Config{Prof: prof})
		if err != nil {
			return nil, err
		}
		committed := float64(host.M.Committed()) / (1 << 20)
		res.add(prof.Name, committed, 0)
		vm.PowerOff()
	}
	return res, nil
}
