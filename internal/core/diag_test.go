package core

import "testing"

func TestDiagPrintAll(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := Config{Seed: 1, Reps: 2, Quick: true}
	results, err := AllFigures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("== %s", r.ID)
		for _, row := range r.Figure.Rows {
			t.Logf("  %-22s %8.4g", row.Label, row.Value)
		}
	}
}
