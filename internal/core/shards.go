package core

import "fmt"

// This file defines the shard decomposition of the figure generators:
// every figure is expressed as a set of independent, deterministic units
// of work (shards) plus a pure assembly step. The serial FigureN
// functions below run the shards in order and assemble; the parallel
// engine (internal/engine) runs the same shards across a worker pool and
// assembles with the same function, so both paths produce bit-identical
// results. Each shard boots its own simulated machine and never shares
// mutable state, which preserves the sim kernel's single-threaded
// determinism requirement while letting shards run concurrently.

// ShardPayload is the serializable result of one shard: named vectors of
// float64. Payloads round-trip exactly through JSON (encoding/json emits
// shortest-round-trip float literals), which makes cached shards
// bit-identical to freshly computed ones.
type ShardPayload map[string][]float64

// one extracts a single-valued entry, guarding against malformed
// payloads coming back from a cache.
func (p ShardPayload) one(key string) (float64, error) {
	v, ok := p[key]
	if !ok || len(v) != 1 {
		return 0, fmt.Errorf("core: shard payload missing scalar %q", key)
	}
	return v[0], nil
}

// vec extracts a vector entry of the expected length.
func (p ShardPayload) vec(key string, n int) ([]float64, error) {
	v, ok := p[key]
	if !ok || len(v) != n {
		return nil, fmt.Errorf("core: shard payload missing %d-vector %q", n, key)
	}
	return v, nil
}

// Sharded describes one figure generator decomposed into shards.
type Sharded struct {
	// ID is the figure's identifier ("fig1" ... "fig8", "figFP").
	ID string
	// Title is the figure's full caption.
	Title string
	// Scope names the cache-sharing domain. Experiments with the same
	// scope and configuration share shard results (Figures 7 and 8 both
	// consume the ten 7z host-rate measurements). Empty means ID.
	Scope string
	// Shards reports the number of independent units for a config.
	Shards func(Config) int
	// Run executes one shard. It must be deterministic in (cfg, shard)
	// and must not share mutable state with other shards.
	Run func(cfg Config, shard int) (ShardPayload, error)
	// Assemble folds the shard payloads (indexed by shard) into the
	// figure. It must be a pure function of its inputs.
	Assemble func(cfg Config, shards []ShardPayload) (*Result, error)
}

// CacheScope returns the effective cache-sharing scope.
func (s Sharded) CacheScope() string {
	if s.Scope != "" {
		return s.Scope
	}
	return s.ID
}

// RunSerial executes every shard in order on the calling goroutine and
// assembles the figure — the path the serial FigureN functions and the
// in-package reproduction tests use.
func (s Sharded) RunSerial(cfg Config) (*Result, error) {
	n := s.Shards(cfg)
	payloads := make([]ShardPayload, n)
	for i := 0; i < n; i++ {
		p, err := s.Run(cfg, i)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}
	return s.Assemble(cfg, payloads)
}

// ShardedFigures returns the nine figure generators in paper order.
func ShardedFigures() []Sharded {
	return []Sharded{
		fig1Def, fig2Def, fig3Def, fig4Def,
		fig5Def, fig6Def, figFPDef, fig7Def, fig8Def,
	}
}

// AllFigures regenerates every figure in paper order.
func AllFigures(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, def := range ShardedFigures() {
		r, err := def.RunSerial(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", def.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
